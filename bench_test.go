// Benchmark harness: one benchmark per table/figure of the paper (see the
// experiment index in DESIGN.md). The artifacts themselves — the formatted
// Table I, ANOVA lines and Table II — are printed by `go run
// ./cmd/userstudy`; the benchmarks here measure the cost of regenerating
// each of them and of the individual techniques.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cch"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/simstudy"
	"repro/internal/sp"
	"repro/internal/spatial"
)

var (
	benchOnce  sync.Once
	benchStudy *eval.Study
	benchErr   error
)

// benchSetup builds the three city networks once for all benchmarks.
func benchSetup(b *testing.B) *eval.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = eval.NewStudy(2022)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// benchQueries pre-samples queries of one band so the planner benchmarks
// measure planning, not workload sampling.
func benchQueries(b *testing.B, city *eval.City, band simstudy.Band, n int) []eval.Query {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	out := make([]eval.Query, 0, n)
	for len(out) < n {
		q, ok := city.SampleQuery(rng, band)
		if !ok {
			b.Fatalf("cannot sample %v-band query", band)
		}
		out = append(out, q)
	}
	return out
}

// --- Table I ----------------------------------------------------------------

// BenchmarkTableIResponse measures one full study response: sampling a
// query, running all four approaches, extracting features and producing
// the four ratings — the unit of work behind every row of Table I.
func BenchmarkTableIResponse(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	cell := simstudy.Cell{City: "Melbourne", Resident: true, Band: simstudy.Medium}
	params := simstudy.DefaultRaterParams()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := city.RunCell(cell, 1, params, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIStatistics measures the statistical pipeline of Table I
// and §IV-A on a full-size 520×4 rating matrix: grouping, means, standard
// deviations and the one-way ANOVA.
func BenchmarkTableIStatistics(b *testing.B) {
	// A deterministic synthetic record set the size of the real study.
	sched := simstudy.PaperSchedule()
	rng := rand.New(rand.NewSource(5))
	var recs []eval.Record
	for _, cc := range sched {
		for i := 0; i < cc.N; i++ {
			var rec eval.Record
			rec.Cell = cc.Cell
			for a := 0; a < eval.NumApproaches; a++ {
				rec.Ratings[a] = 1 + rng.Intn(5)
				rec.Sim[a] = rng.Float64()
				rec.NumRoutes[a] = 3
			}
			recs = append(recs, rec)
		}
	}
	cities := []string{"Melbourne", "Dhaka", "Copenhagen"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.FormatTableI(recs, cities)
		_ = eval.ANOVAReport(recs, cities)
	}
}

// --- Table II ---------------------------------------------------------------

// BenchmarkTableIISimT measures Eq. (1) Sim(T) over a 3-route set, the
// per-query measurement behind every cell of Table II.
func BenchmarkTableIISimT(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	q := benchQueries(b, city, simstudy.Medium, 1)[0]
	rs, err := city.RunPlanners(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := 0; a < eval.NumApproaches; a++ {
			_ = path.SimT(city.Graph, rs.Sets[a])
		}
	}
}

// BenchmarkTableIIFormatting measures assembling the full Table II text
// from a study-size record set.
func BenchmarkTableIIFormatting(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var recs []eval.Record
	for _, cc := range simstudy.PaperSchedule() {
		for i := 0; i < cc.N; i++ {
			var rec eval.Record
			rec.Cell = cc.Cell
			for a := 0; a < eval.NumApproaches; a++ {
				rec.Sim[a] = rng.Float64()
				rec.NumRoutes[a] = 3
			}
			recs = append(recs, rec)
		}
	}
	cities := []string{"Melbourne", "Dhaka", "Copenhagen"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.FormatTableII(recs, cities)
	}
}

// --- Fig. 1: the plateau pipeline --------------------------------------------

// BenchmarkFig1PlateauPipeline measures the full Choice Routing pipeline
// of Fig. 1: two shortest-path trees, the tree join that enumerates
// plateaus, and route assembly from the top plateaus.
func BenchmarkFig1PlateauPipeline(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Copenhagen"]
	q := benchQueries(b, city, simstudy.Medium, 1)[0]
	planner := core.NewPlateaus(city.Graph, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Alternatives(q.S, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1TreeJoin isolates the join step (§II-B notes it is linear
// in the tree size and dominated by the two Dijkstra searches).
func BenchmarkFig1TreeJoin(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Copenhagen"]
	q := benchQueries(b, city, simstudy.Medium, 1)[0]
	planner := core.NewPlateaus(city.Graph, core.Options{})
	w := city.Graph.CopyWeights()
	fwd := sp.BuildTree(city.Graph, w, q.S, sp.Forward)
	bwd := sp.BuildTree(city.Graph, w, q.T, sp.Backward)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = planner.FindPlateaus(fwd, bwd)
	}
}

// --- Figs. 2-3: the demo query processor -------------------------------------

// BenchmarkFig2QueryProcessor measures one demo-system query: nearest-
// vertex matching for both endpoints plus all four approaches, the work
// behind each "Submit" press in Fig. 2.
func BenchmarkFig2QueryProcessor(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	bb := city.Graph.BBox()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv, _ := city.Index.Nearest(bb.Center())
		tv, _ := city.Index.Nearest(bb.Center())
		_ = sv
		_ = tv
		q := eval.Query{S: graph.NodeID(i % city.Graph.NumNodes()), T: graph.NodeID((i*7 + 13) % city.Graph.NumNodes())}
		if q.S == q.T {
			continue
		}
		if _, err := city.RunPlanners(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 4: rank flips between datasets -------------------------------------

// BenchmarkFig4RankFlip measures the Fig. 4 analysis for one query:
// compute both providers' routes and re-time every route under both
// weight vectors to detect ranking flips.
func BenchmarkFig4RankFlip(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	q := benchQueries(b, city, simstudy.Medium, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gr, err1 := city.Planners[0].Alternatives(q.S, q.T)
		pr, err2 := city.Planners[1].Alternatives(q.S, q.T)
		if err1 != nil || err2 != nil {
			b.Fatal(err1, err2)
		}
		for _, a := range gr {
			for _, p := range pr {
				_ = a.TimeS > p.TimeS
				_ = a.TimeUnder(city.Traffic) < p.TimeUnder(city.Traffic)
			}
		}
	}
}

// --- Per-technique computation cost (§II) -------------------------------------

func benchPlanner(b *testing.B, mk func(city *eval.City) core.Planner) {
	study := benchSetup(b)
	for _, name := range study.CityNames() {
		city := study.Cities[name]
		queries := benchQueries(b, city, simstudy.Medium, 8)
		pl := mk(city)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := pl.Alternatives(q.S, q.T); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlannerPenalty(b *testing.B) {
	benchPlanner(b, func(c *eval.City) core.Planner { return core.NewPenalty(c.Graph, core.Options{}) })
}

func BenchmarkPlannerPlateaus(b *testing.B) {
	benchPlanner(b, func(c *eval.City) core.Planner { return core.NewPlateaus(c.Graph, core.Options{}) })
}

func BenchmarkPlannerDissimilarity(b *testing.B) {
	benchPlanner(b, func(c *eval.City) core.Planner { return core.NewDissimilarity(c.Graph, core.Options{}) })
}

func BenchmarkPlannerCommercial(b *testing.B) {
	benchPlanner(b, func(c *eval.City) core.Planner { return core.NewCommercial(c.Graph, c.Traffic, core.Options{}) })
}

// --- Hot-path microbenchmarks (workspace machinery) ---------------------------
//
// These measure the engine-level primitives on a study city with
// -benchmem: the convenience wrappers against the allocation-free ...Into
// workspace variants, plus the CH point-to-point query.

func benchCityGraph(b *testing.B) (*graph.Graph, []float64) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	return city.Graph, city.Public
}

func BenchmarkMicroShortestPath(b *testing.B) {
	g, w := benchCityGraph(b)
	dst := graph.NodeID(g.NumNodes() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.ShortestPath(g, w, 0, dst)
	}
}

func BenchmarkMicroShortestPathInto(b *testing.B) {
	g, w := benchCityGraph(b)
	dst := graph.NodeID(g.NumNodes() - 1)
	ws := sp.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.ShortestPathInto(ws, g, w, 0, dst)
	}
}

func BenchmarkMicroBuildTree(b *testing.B) {
	g, w := benchCityGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.BuildTree(g, w, 0, sp.Forward)
	}
}

func BenchmarkMicroBuildTreeInto(b *testing.B) {
	g, w := benchCityGraph(b)
	ws := sp.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.BuildTreeInto(ws, g, w, 0, sp.Forward)
	}
}

// --- Tree backends of the choice-routing planners ------------------------------
//
// The §II-B tentpole: the Plateaus planner answering the same queries on
// full Dijkstra trees vs PHAST trees swept out of the contraction
// hierarchy. Run on a uniform grid (the structure where full-tree Dijkstra
// is most heap-bound) with -benchmem to see the allocation profile.

// benchGrid builds a rows×cols grid town with a few arterials, the same
// shape the ch package benchmarks use.
func benchGrid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, rows*cols*4)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(geo.Offset(o, float64(r)*150, float64(c)*150))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			class := graph.Residential
			if r%5 == 0 {
				class = graph.Primary
			}
			if c+1 < cols {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < rows {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}

func benchPlateausBackend(b *testing.B, backend core.TreeBackend, hier core.HierarchyKind) {
	g := benchGrid(50, 50)
	planner := core.NewPlateaus(g, core.Options{TreeBackend: backend, Hierarchy: hier})
	rng := rand.New(rand.NewSource(4))
	type q struct{ s, t graph.NodeID }
	queries := make([]q, 16)
	for i := range queries {
		queries[i] = q{graph.NodeID(rng.Intn(g.NumNodes())), graph.NodeID(rng.Intn(g.NumNodes()))}
		if queries[i].s == queries[i].t {
			queries[i].t = (queries[i].t + 1) % graph.NodeID(g.NumNodes())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qq := queries[i%len(queries)]
		if _, err := planner.Alternatives(qq.s, qq.t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlateausDijkstra(b *testing.B) {
	benchPlateausBackend(b, core.TreeDijkstra, core.HierarchyWitness)
}

func BenchmarkPlateausCH(b *testing.B) { benchPlateausBackend(b, core.TreeCH, core.HierarchyWitness) }

// TestPlateausTreeSweepZeroAlloc pins the PHAST promise at the planner
// substrate: building both complete trees (upward search + downward
// sweep) on a warm workspace allocates nothing.
func TestPlateausTreeSweepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := benchGrid(40, 40)
	tb := ch.Build(g, g.CopyWeights()).NewTreeBuilder()
	ws := sp.NewWorkspace()
	s, dst := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	build := func() {
		tb.BuildTreeInto(ws, s, sp.Forward)
		tb.BuildTreeInto(ws, dst, sp.Backward)
	}
	build()
	if allocs := testing.AllocsPerRun(10, build); allocs > 0 {
		t.Errorf("PHAST tree pair: %v allocs/op after warm-up, want 0", allocs)
	}
}

// --- Restricted sweeps (RPHAST) -----------------------------------------------
//
// The PR 5 tentpole: full PHAST sweeps pay for every rank even when the
// query's ellipse covers a corner of the city. These benchmarks compare a
// full tree pair against the RPHAST restricted pair on *short* queries
// (elliptic target set ≤ 25% of the nodes), with the selection built once
// and reused — the RPHAST amortization. Run with -benchmem: restricted
// builds allocate nothing warm.

// rphastTargets replicates the serving layer's elliptic selection: every
// node whose geometric lower-bound detour fits within UpperBound × the
// fastest time.
func rphastTargets(b *testing.B, g *graph.Graph, w []float64, h *ch.Runtime, s, t graph.NodeID) []graph.NodeID {
	b.Helper()
	fastest := h.Dist(s, t)
	scale := sp.MinSecondsPerMeter(g, w)
	if scale <= 0 {
		b.Fatal("degenerate metric: no admissible geometric bound")
	}
	budget := core.DefaultUpperBound * fastest / scale
	lb := geo.NewLowerBounder(g.BBox())
	sPt, tPt := g.Point(s), g.Point(t)
	targets := []graph.NodeID{s, t}
	for v := 0; v < g.NumNodes(); v++ {
		p := g.Point(graph.NodeID(v))
		if lb.MetersLB(sPt, p)+lb.MetersLB(p, tPt) <= budget {
			targets = append(targets, graph.NodeID(v))
		}
	}
	frac := float64(len(targets)) / float64(g.NumNodes())
	b.ReportMetric(frac, "ellipse-frac")
	if frac > 0.25 {
		b.Logf("warning: ellipse covers %.0f%% of the graph; not a short query", frac*100)
	}
	return targets
}

// benchShortGridPair returns a short query on the 50×50 grid: ~10 cells
// apart near the center, an ellipse well under a quarter of the town.
func benchShortGridPair(cols int) (s, t graph.NodeID) {
	r, c := 20, 20
	return graph.NodeID(r*cols + c), graph.NodeID((r+6)*cols + c + 8)
}

func BenchmarkPHASTFullGrid50(b *testing.B) {
	g := benchGrid(50, 50)
	w := g.CopyWeights()
	tb := ch.Build(g, w).NewTreeBuilder()
	ws := sp.NewWorkspace()
	s, t := benchShortGridPair(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.BuildTreeInto(ws, s, sp.Forward)
		tb.BuildTreeInto(ws, t, sp.Backward)
	}
}

func BenchmarkRPHASTGrid50(b *testing.B) {
	g := benchGrid(50, 50)
	w := g.CopyWeights()
	h := ch.Build(g, w)
	tb := h.NewTreeBuilder()
	ws := sp.NewWorkspace()
	s, t := benchShortGridPair(50)
	sel := tb.Select(rphastTargets(b, g, w, h, s, t), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.BuildTreeRestrictedInto(ws, s, sp.Forward, sel)
		tb.BuildTreeRestrictedInto(ws, t, sp.Backward, sel)
	}
}

// BenchmarkRPHASTSelectGrid50 is the amortized half: re-selecting the
// target subgraph onto warm Selection storage — the per-ellipse price a
// serving process pays once per (s,t) pair per weight version.
func BenchmarkRPHASTSelectGrid50(b *testing.B) {
	g := benchGrid(50, 50)
	w := g.CopyWeights()
	h := ch.Build(g, w)
	tb := h.NewTreeBuilder()
	s, t := benchShortGridPair(50)
	targets := rphastTargets(b, g, w, h, s, t)
	sel := tb.Select(targets, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = tb.Select(targets, sel)
	}
}

// benchMelbourneShortPair picks two intersections ~1.2km apart in
// Melbourne — the short-band urban query the restricted sweep targets.
func benchMelbourneShortPair(b *testing.B, city *eval.City) (s, t graph.NodeID) {
	b.Helper()
	c := city.Graph.BBox().Center()
	s, _ = city.Index.Nearest(c)
	t, _ = city.Index.Nearest(geo.Offset(c, 900, 800))
	if s == t {
		b.Fatal("short pair collapsed to one intersection")
	}
	return s, t
}

func BenchmarkPHASTFullMelbourne(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	tb := ch.Build(city.Graph, city.Public).NewTreeBuilder()
	ws := sp.NewWorkspace()
	s, t := benchMelbourneShortPair(b, city)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.BuildTreeInto(ws, s, sp.Forward)
		tb.BuildTreeInto(ws, t, sp.Backward)
	}
}

func BenchmarkRPHASTMelbourne(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	h := ch.Build(city.Graph, city.Public)
	tb := h.NewTreeBuilder()
	ws := sp.NewWorkspace()
	s, t := benchMelbourneShortPair(b, city)
	sel := tb.Select(rphastTargets(b, city.Graph, city.Public, h, s, t), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.BuildTreeRestrictedInto(ws, s, sp.Forward, sel)
		tb.BuildTreeRestrictedInto(ws, t, sp.Backward, sel)
	}
}

// BenchmarkPlateausCHShort / BenchmarkPlateausRPHASTShort compare the
// full planner pipeline (trees + join + assembly, selection cache hot) on
// one short grid query across the full-sweep and restricted backends.
func benchPlateausShort(b *testing.B, backend core.TreeBackend) {
	g := benchGrid(50, 50)
	planner := core.NewPlateaus(g, core.Options{TreeBackend: backend})
	s, t := benchShortGridPair(50)
	if _, err := planner.Alternatives(s, t); err != nil { // warm the selection cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Alternatives(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlateausCHShort(b *testing.B) { benchPlateausShort(b, core.TreeCH) }

func BenchmarkPlateausRPHASTShort(b *testing.B) { benchPlateausShort(b, core.TreeCHRestricted) }

func BenchmarkMicroCHDist(b *testing.B) {
	g, w := benchCityGraph(b)
	h := ch.Build(g, w)
	dst := graph.NodeID(g.NumNodes() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Dist(0, dst)
	}
}

// --- Point-to-point query engines (elimination tree vs bidirectional) --------
//
// The CCH flavors answer Dist two ways: the heap-free elimination-tree
// ascent (the default) and the bidirectional upward Dijkstra it replaced.
// Both return bit-identical distances; these benchmarks measure the gap
// on Melbourne short- and long-range pairs under both contraction orders.
// Run with -benchmem: the elimination-tree path must stay at 0 allocs/op
// warm.

// benchMelbourneLongPair picks two intersections on opposite sides of the
// network — the long-range query whose ascents walk near-full root paths.
func benchMelbourneLongPair(b *testing.B, city *eval.City) (s, t graph.NodeID) {
	b.Helper()
	c := city.Graph.BBox().Center()
	s, _ = city.Index.Nearest(geo.Offset(c, -3500, -3500))
	t, _ = city.Index.Nearest(geo.Offset(c, 3500, 3500))
	if s == t {
		b.Fatal("long pair collapsed to one intersection")
	}
	return s, t
}

type benchPair struct{ s, t graph.NodeID }

// benchMelbourneShortPairs samples short-range (~1.2km) pairs around
// eight neighborhoods of the city, so the short-query numbers average
// over separator geometry instead of hinging on one lucky pair.
func benchMelbourneShortPairs(b *testing.B, city *eval.City) []benchPair {
	b.Helper()
	c := city.Graph.BBox().Center()
	var pairs []benchPair
	for _, off := range [][2]float64{
		{0, 0}, {2000, 0}, {-2000, 0}, {0, 2000},
		{0, -2000}, {1500, 1500}, {-1500, 1500}, {1500, -1500},
	} {
		cc := geo.Offset(c, off[0], off[1])
		s, _ := city.Index.Nearest(cc)
		t, _ := city.Index.Nearest(geo.Offset(cc, 900, 800))
		if s != t {
			pairs = append(pairs, benchPair{s, t})
		}
	}
	if len(pairs) == 0 {
		b.Fatal("all short pairs collapsed")
	}
	return pairs
}

// benchQueryEngine runs Dist on the chosen engine over both contraction
// orders and three query ranges: short is the city-center ~1.2km pair
// every per-query benchmark in this file uses (benchMelbourneShortPair),
// shortmix rotates through the eight-neighborhood sample so separator
// geometry is averaged rather than hinging on one lucky cell, and long
// is a cross-city pair.
func benchQueryEngine(b *testing.B, bidir bool) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	for _, ord := range []struct {
		name string
		kind cch.OrderKind
	}{{"geometric", cch.OrderGeometric}, {"flow", cch.OrderFlow}} {
		pre := cch.PreprocessWith(city.Graph, cch.OrderConfig{Kind: ord.kind})
		h := pre.CustomizeWith(city.Public, cch.Config{BidirQuery: bidir})
		ss, st := benchMelbourneShortPair(b, city)
		mix := benchMelbourneShortPairs(b, city)
		ls, lt := benchMelbourneLongPair(b, city)
		for _, q := range []struct {
			name  string
			pairs []benchPair
		}{{"short", []benchPair{{ss, st}}}, {"shortmix", mix}, {"long", []benchPair{{ls, lt}}}} {
			b.Run(ord.name+"/"+q.name, func(b *testing.B) {
				h.Dist(q.pairs[0].s, q.pairs[0].t) // warm the workspace pool
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := q.pairs[i%len(q.pairs)]
					h.Dist(p.s, p.t)
				}
			})
		}
	}
}

func BenchmarkElimTreeDist(b *testing.B) { benchQueryEngine(b, false) }

func BenchmarkCHDist(b *testing.B) { benchQueryEngine(b, true) }

// BenchmarkElimTreeMatrixBound measures the matrix engine's bound
// computation for one target column of k sources: the batched
// multi-source ascent (one backward ascent shared across k forward
// ascents) against the k independent Dist calls it replaced.
func BenchmarkElimTreeMatrixBound(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	pre := cch.PreprocessWith(city.Graph, cch.OrderConfig{Kind: cch.OrderFlow})
	h := pre.CustomizeWith(city.Public, cch.Config{}).(*ch.Runtime)
	rng := rand.New(rand.NewSource(7))
	const k = 16
	sources := make([]graph.NodeID, k)
	for i := range sources {
		sources[i] = graph.NodeID(rng.Intn(city.Graph.NumNodes()))
	}
	target := graph.NodeID(rng.Intn(city.Graph.NumNodes()))
	out := make([]float64, k)
	b.Run("batched", func(b *testing.B) {
		h.AscentDists(sources, target, out) // warm the workspace pool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !h.AscentDists(sources, target, out) {
				b.Fatal("runtime declined the batched ascent")
			}
		}
	})
	b.Run("per-pair", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, s := range sources {
				out[j] = h.Dist(s, target)
			}
		}
	})
}

// --- Live traffic: CH re-customization vs full rebuild ------------------------

// BenchmarkCHBuildFull is the cost of following a published weight
// snapshot the pre-refactor way: contract a fresh hierarchy from scratch
// and derive its tree builder. Compare with BenchmarkCHRecustomize.
func BenchmarkCHBuildFull(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	snap := city.Seq.WeightsAt(1) // the first rush-hour publish
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := ch.Build(city.Graph, snap)
		if h.NewTreeBuilder() == nil {
			b.Fatal("no tree builder")
		}
	}
}

// BenchmarkCHRecustomize is the live-traffic path: reuse the contraction
// order and shortcut topology of the serving hierarchy and rebuild only
// the arc weights for the published snapshot (plus the tree builder
// repacking, which every swap needs too). The per-op time here, against
// BenchmarkCHBuildFull, is the measured price of a weight-version swap.
func BenchmarkCHRecustomize(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	base := ch.Build(city.Graph, city.Seq.WeightsAt(0))
	snap := city.Seq.WeightsAt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := base.Recustomize(snap)
		if h.NewTreeBuilder() == nil {
			b.Fatal("no tree builder")
		}
	}
}

// BenchmarkCCHPreprocess is the one-off metric-independent half of the
// customizable hierarchy: nested-dissection order, chordal fill-in and
// triangle lists. Paid once per road network, never per snapshot.
func BenchmarkCCHPreprocess(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cch.Preprocess(city.Graph).NumPairs() == 0 {
			b.Fatal("empty topology")
		}
	}
}

// BenchmarkCCHCustomize is the customizable flavor's per-publish path:
// one triangle-relaxation sweep plus the tree-builder repack — exact for
// the snapshot whatever it contains, with no re-contraction. Against
// BenchmarkCHBuildFull this is the measured price of making an arbitrary
// snapshot exactly servable; against BenchmarkCHRecustomize it is the
// premium over the witness flavor's (only conditionally exact) swap.
func BenchmarkCCHCustomize(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	pre := cch.Preprocess(city.Graph)
	snap := city.Seq.WeightsAt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Workers pinned to 1: this benchmark tracks the serial sweep
		// across history; the default (parallel) publish path is
		// BenchmarkCCHCustomizeParallel.
		h := pre.CustomizeWith(snap, cch.Config{Workers: 1})
		if h.NewTreeBuilder() == nil {
			b.Fatal("no tree builder")
		}
	}
}

// BenchmarkCCHCustomizeParallel is BenchmarkCCHCustomize with the
// level-parallel fan-out enabled (GOMAXPROCS workers, the Customize
// default): the publish latency a serving deployment actually pays. The
// arcs are bit-identical to the serial sweep, so the delta to
// BenchmarkCCHCustomize is pure wall-clock.
func BenchmarkCCHCustomizeParallel(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	pre := cch.Preprocess(city.Graph)
	snap := city.Seq.WeightsAt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := pre.CustomizeWith(snap, cch.Config{Workers: runtime.GOMAXPROCS(0)})
		if h.NewTreeBuilder() == nil {
			b.Fatal("no tree builder")
		}
	}
}

// BenchmarkCCHCustomizePerfect adds the perfect post-pass: the extra
// per-publish cost of proving dominated arcs inert (read against the
// sweep savings every subsequent tree build pockets).
func BenchmarkCCHCustomizePerfect(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	pre := cch.Preprocess(city.Graph)
	snap := city.Seq.WeightsAt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := pre.CustomizeWith(snap, cch.Config{Perfect: true})
		if h.NewTreeBuilder() == nil {
			b.Fatal("no tree builder")
		}
	}
}

// BenchmarkOrderGeometric is the one-off cost of the coordinate-
// bisection nested-dissection order on Melbourne — the preprocessing
// floor every CCH build pays.
func BenchmarkOrderGeometric(b *testing.B) {
	study := benchSetup(b)
	g := study.Cities["Melbourne"].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cch.OrderWith(g, cch.OrderConfig{Kind: cch.OrderGeometric})[0] < 0 {
			b.Fatal("bad rank")
		}
	}
}

// BenchmarkOrderFlow is the flow-refined order's build cost: every split
// additionally runs an inertial-flow min vertex cut. Read against
// BenchmarkOrderGeometric for the one-off premium and against
// BenchmarkCCHCustomizeFlowOrder for what that premium buys on every
// subsequent publish.
func BenchmarkOrderFlow(b *testing.B) {
	study := benchSetup(b)
	g := study.Cities["Melbourne"].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cch.OrderWith(g, cch.OrderConfig{Kind: cch.OrderFlow})[0] < 0 {
			b.Fatal("bad rank")
		}
	}
}

// BenchmarkCCHCustomizeFlowOrder is BenchmarkCCHCustomize (serial sweep,
// Workers 1) on the flow-refined order: fewer separator nodes mean fewer
// pairs and triangles, so the same publish costs measurably less — the
// per-snapshot payoff of the more expensive preprocessing.
func BenchmarkCCHCustomizeFlowOrder(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	pre := cch.PreprocessWith(city.Graph, cch.OrderConfig{Kind: cch.OrderFlow})
	snap := city.Seq.WeightsAt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := pre.CustomizeWith(snap, cch.Config{Workers: 1})
		if h.NewTreeBuilder() == nil {
			b.Fatal("no tree builder")
		}
	}
}

// BenchmarkPlateausCCH is the grid planner benchmark on the customizable
// hierarchy — the query-time cost of the no-witness-pruning arc surplus,
// to read against BenchmarkPlateausCH and BenchmarkPlateausDijkstra.
func BenchmarkPlateausCCH(b *testing.B) {
	benchPlateausBackend(b, core.TreeCH, core.HierarchyCCH)
}

// BenchmarkServingCachedQuery measures the engine's versioned result
// cache at full heat: the same query replayed between publishes is
// answered without touching a planner.
func BenchmarkServingCachedQuery(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	queries := benchQueries(b, city, simstudy.Medium, 1)
	q := queries[0]
	if _, err := city.RunPlanners(q); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := city.RunPlanners(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWorkspaceVariantsZeroAlloc pins the headline property of this
// package's hot path: the ...Into searches allocate nothing after warm-up.
func TestWorkspaceVariantsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	study, err := eval.NewStudy(2022)
	if err != nil {
		t.Fatal(err)
	}
	city := study.Cities["Copenhagen"]
	g, w := city.Graph, city.Public
	dst := graph.NodeID(g.NumNodes() - 1)
	ws := sp.NewWorkspace()

	check := func(name string, fn func()) {
		t.Helper()
		fn()
		if allocs := testing.AllocsPerRun(10, fn); allocs > 0 {
			t.Errorf("%s: %v allocs/op after warm-up, want 0", name, allocs)
		}
	}
	check("ShortestPathInto", func() { sp.ShortestPathInto(ws, g, w, 0, dst) })
	check("BuildTreeInto", func() { sp.BuildTreeInto(ws, g, w, 0, sp.Forward) })
	check("BidirectionalShortestPathInto", func() { sp.BidirectionalShortestPathInto(ws, g, w, 0, dst) })
}

// --- The concurrent batch-query engine ----------------------------------------

// BenchmarkEngineBatch measures a loaded serving scenario: 8 pre-sampled
// queries × 4 approaches fanned out over the city's worker-pool engine —
// the unit of work a busy multi-user deployment repeats continuously.
func BenchmarkEngineBatch(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	queries := benchQueries(b, city, simstudy.Medium, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := city.RunPlannersBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatchSerial is the same workload forced through a
// one-worker engine, the before-picture of the concurrent serving layer.
func BenchmarkEngineBatchSerial(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	queries := benchQueries(b, city, simstudy.Medium, 8)
	serial := *city
	serial.Router = core.NewRouter(core.NewEngine(1), city.Planners[:], city.PublicStore, city.TrafficStore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serial.RunPlannersBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerYen runs the related-work baseline on the smallest city
// only; Yen is polynomially more expensive, which is exactly the §II-D
// point about why it is not used for alternative routes directly.
func BenchmarkPlannerYen(b *testing.B) {
	study := benchSetup(b)
	city := study.Cities["Copenhagen"]
	queries := benchQueries(b, city, simstudy.Small, 4)
	pl := core.NewYen(city.Graph, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := pl.Alternatives(q.S, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Many-to-many matrix engine (PR 6) --------------------------------------

// benchClusteredNodes samples count distinct nodes within radiusM meters
// of a center offset, so matrix benchmarks get endpoint sets whose cell
// union stays a restricted fraction of the network.
func benchClusteredNodes(b *testing.B, city *eval.City, count int, dEast, dNorth, radiusM float64, seed int64) []graph.NodeID {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	center := geo.Offset(city.Graph.BBox().Center(), dEast, dNorth)
	seen := make(map[graph.NodeID]bool, count)
	out := make([]graph.NodeID, 0, count)
	for attempts := 0; len(out) < count; attempts++ {
		if attempts > count*200 {
			b.Fatalf("cannot sample %d distinct nodes within %.0fm", count, radiusM)
		}
		p := geo.Offset(center, (rng.Float64()*2-1)*radiusM, (rng.Float64()*2-1)*radiusM)
		v, _ := city.Index.Nearest(p)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// benchMatrix times one warm k×k MatrixInto per op: the shared selection
// is cache-hot, each op runs k restricted forward sweeps. A one-worker
// engine keeps the rows inline — the zero-allocation path.
func benchMatrix(b *testing.B, m *core.MatrixEngine, sources, targets []graph.NodeID) {
	b.Helper()
	var tab core.Table
	if err := m.MatrixInto(&tab, sources, targets); err != nil {
		b.Fatal(err)
	}
	if !tab.Restricted {
		b.Logf("warning: sweeps not restricted (selection %d targets)", tab.SelectionTargets)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatrixInto(&tab, sources, targets); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tab.SelectionTargets), "sel-targets")
}

// benchMatrixPairwise is the k² baseline: the same table via independent
// point-to-point tree-pair queries through the same backend.
func benchMatrixPairwise(b *testing.B, m *core.MatrixEngine, sources, targets []graph.NodeID) {
	b.Helper()
	var tab core.Table
	if err := m.MatrixPairwise(&tab, sources, targets); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MatrixPairwise(&tab, sources, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGridCity wraps the synthetic benchmark grid in an eval.City shell
// (graph + spatial index only) so the clustered samplers work on it.
func benchGridCity(rows, cols int) *eval.City {
	g := benchGrid(rows, cols)
	return &eval.City{Graph: g, Index: spatial.NewIndex(g, 16)}
}

func benchMatrixGrid50(b *testing.B, k int, pairwise bool) {
	city := benchGridCity(50, 50)
	m := core.NewMatrixEngine(city.Graph, core.Options{TreeBackend: core.TreeCHRestricted}, core.NewEngine(1))
	sources := benchClusteredNodes(b, city, k, -800, -600, 1200, 101)
	targets := benchClusteredNodes(b, city, k, 700, 500, 1200, 102)
	if pairwise {
		benchMatrixPairwise(b, m, sources, targets)
	} else {
		benchMatrix(b, m, sources, targets)
	}
}

func BenchmarkMatrixGrid50K4(b *testing.B)  { benchMatrixGrid50(b, 4, false) }
func BenchmarkMatrixGrid50K16(b *testing.B) { benchMatrixGrid50(b, 16, false) }
func BenchmarkMatrixGrid50K64(b *testing.B) { benchMatrixGrid50(b, 64, false) }

func BenchmarkMatrixPairwiseGrid50K16(b *testing.B) { benchMatrixGrid50(b, 16, true) }

func benchMatrixMelbourne(b *testing.B, k int, pairwise bool) {
	study := benchSetup(b)
	city := study.Cities["Melbourne"]
	m := core.NewMatrixEngine(city.Graph, core.Options{TreeBackend: core.TreeCHRestricted, Hierarchy: core.HierarchyCCH}, core.NewEngine(1))
	sources := benchClusteredNodes(b, city, k, -1500, -1000, 2000, 103)
	targets := benchClusteredNodes(b, city, k, 1200, 900, 2000, 104)
	if pairwise {
		benchMatrixPairwise(b, m, sources, targets)
	} else {
		benchMatrix(b, m, sources, targets)
	}
}

// BenchmarkMatrixMelbourne is the acceptance benchmark: a warm 16×16
// table on the Melbourne study network, one shared cached selection plus
// 16 restricted sweeps per op, zero allocations. Compare against
// BenchmarkMatrixPairwiseMelbourne (the same 16² cells as independent
// point-to-point restricted queries).
func BenchmarkMatrixMelbourne(b *testing.B) { benchMatrixMelbourne(b, 16, false) }

func BenchmarkMatrixMelbourneK4(b *testing.B)  { benchMatrixMelbourne(b, 4, false) }
func BenchmarkMatrixMelbourneK64(b *testing.B) { benchMatrixMelbourne(b, 64, false) }

func BenchmarkMatrixPairwiseMelbourne(b *testing.B) { benchMatrixMelbourne(b, 16, true) }

// BenchmarkSelectionCacheAlternatingPairs measures the fixed hot path of
// the thrash bug: two alternating hot query pairs, both selections
// resident, every query a cache hit (the old single-slot cache rebuilt
// the selection on every single one of these queries).
func BenchmarkSelectionCacheAlternatingPairs(b *testing.B) {
	g := benchGrid(50, 50)
	planner := core.NewPlateaus(g, core.Options{TreeBackend: core.TreeCHRestricted})
	s1, t1 := benchShortGridPair(50)
	s2, t2 := graph.NodeID(35*50+8), graph.NodeID(42*50+14)
	queries := [2][2]graph.NodeID{{s1, t1}, {s2, t2}}
	for _, q := range queries { // both selections resident
		if _, err := planner.Alternatives(q[0], q[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%2]
		if _, err := planner.Alternatives(q[0], q[1]); err != nil {
			b.Fatal(err)
		}
	}
	st := planner.HierarchyStatus()
	if total := st.SelectionHits + st.SelectionMisses; total > 0 {
		b.ReportMetric(float64(st.SelectionHits)/float64(total), "hit-rate")
	}
}

// BenchmarkSelectionCacheSelectUnion is the miss-path cost: building the
// shared selection for a 16-target union from scratch onto warm reuse
// storage — the price amortized across every later hit.
func BenchmarkSelectionCacheSelectUnion(b *testing.B) {
	city := benchGridCity(50, 50)
	w := city.Graph.CopyWeights()
	tb := ch.Build(city.Graph, w).NewTreeBuilder()
	targets := benchClusteredNodes(b, city, 16, 700, 500, 1200, 102)
	sel := tb.Select(targets, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = tb.Select(targets, sel)
	}
}
