// Command altroutes computes alternative routes for a single query with
// all the implemented techniques and prints a comparison: travel time,
// length, stretch, turn count and the Sim(T) of each approach's route set.
//
// Usage:
//
//	altroutes -city Melbourne -s "-37.83,144.95" -t "-37.79,145.02"
//	altroutes -graph net.bin -snode 12 -tnode 988
//
// Either a built-in synthetic city (-city) or a binary road-network file
// written by osm2graph/citygen (-graph) can be used; endpoints are given
// as coordinates (matched to the nearest vertex) or as vertex IDs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geojson"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/spatial"
	"repro/internal/traffic"
)

func main() {
	city := flag.String("city", "Melbourne", "synthetic city profile (Melbourne, Dhaka, Copenhagen)")
	graphPath := flag.String("graph", "", "binary road-network file (overrides -city)")
	seed := flag.Int64("seed", 2022, "generation seed for -city")
	sCoord := flag.String("s", "", "source as lat,lon")
	tCoord := flag.String("t", "", "target as lat,lon")
	sNode := flag.Int("snode", -1, "source vertex ID (alternative to -s)")
	tNode := flag.Int("tnode", -1, "target vertex ID (alternative to -t)")
	k := flag.Int("k", core.DefaultK, "routes per approach")
	withYen := flag.Bool("yen", false, "also run Yen's k-shortest paths baseline")
	geojsonOut := flag.String("geojson", "", "write all routes as GeoJSON to this file")
	trees := flag.String("trees", "dijkstra", "tree backend for the choice-routing planners: dijkstra, ch (PHAST), ch-restricted (RPHAST) or ch-auto")
	hierarchy := flag.String("hierarchy", "witness", "hierarchy flavor behind -trees ch: witness, cch or cch-perfect")
	order := flag.String("order", "flow", "CCH contraction-order pipeline behind the cch flavors: flow (default: smaller hierarchy, faster publishes; slower one-off order build at startup) or geometric")
	query := flag.String("query", "elimtree", "point-to-point query engine on the CCH flavors: elimtree (default: heap-free elimination-tree ascents) or bidij (bidirectional upward Dijkstra); distances are bit-identical either way")
	trafficStep := flag.Int("traffic-step", 0, "rush-hour step of the commercial provider's private weights (0 = the study's base congestion field)")
	flag.Parse()

	if err := run(*city, *graphPath, *seed, *sCoord, *tCoord, *sNode, *tNode, *k, *withYen, *geojsonOut, *trees, *hierarchy, *order, *query, *trafficStep); err != nil {
		fmt.Fprintln(os.Stderr, "altroutes:", err)
		os.Exit(1)
	}
}

func run(city, graphPath string, seed int64, sCoord, tCoord string, sNode, tNode, k int, withYen bool, geojsonOut, trees, hierarchy, order, query string, trafficStep int) error {
	backend, err := core.ParseTreeBackend(trees)
	if err != nil {
		return err
	}
	hkind, err := core.ParseHierarchyKind(hierarchy)
	if err != nil {
		return err
	}
	okind, err := core.ParseOrderKind(order)
	if err != nil {
		return err
	}
	qeng, err := core.ParseQueryEngine(query)
	if err != nil {
		return err
	}
	var g *graph.Graph
	if graphPath != "" {
		g, err = graph.LoadFile(graphPath)
	} else {
		var profile citygen.Profile
		profile, err = citygen.ProfileByName(city)
		if err == nil {
			g, err = profile.Generate(seed)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("Network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	s, err := resolveEndpoint(g, sCoord, sNode, "source")
	if err != nil {
		return err
	}
	t, err := resolveEndpoint(g, tCoord, tNode, "target")
	if err != nil {
		return err
	}
	fmt.Printf("Query: %d %v -> %d %v\n\n", s, g.Point(s), t, g.Point(t))

	opts := core.Options{K: k, TreeBackend: backend, Hierarchy: hkind, Order: okind, Query: qeng}
	// The provider's private metric comes from the deterministic rush-hour
	// sequence; -traffic-step picks how far into the cycle it plans
	// (step 0 reproduces the study's static congestion field). Comparing
	// runs across steps shows the Fig. 4 rank flips live.
	seq := traffic.NewSequence(g, traffic.DefaultModel(uint64(seed)*2654435761+1), 0)
	private := seq.WeightsAt(trafficStep)
	if trafficStep != 0 {
		fmt.Printf("Commercial provider planning on rush-hour step %d of %d\n\n", trafficStep, seq.Period())
	}
	planners := []core.Planner{
		core.NewCommercial(g, private, opts),
		core.NewPlateaus(g, opts),
		core.NewDissimilarity(g, opts),
		core.NewPenalty(g, opts),
	}
	if withYen {
		planners = append(planners, core.NewYen(g, opts))
	}
	fc := geojson.NewFeatureCollection()
	for _, pl := range planners {
		routes, err := pl.Alternatives(s, t)
		if err != nil {
			fmt.Printf("%-14s error: %v\n", pl.Name(), err)
			continue
		}
		fastest := routes[0].TimeS
		fmt.Printf("%-14s Sim(T) = %.3f\n", pl.Name(), path.SimT(g, routes))
		for i, r := range routes {
			fmt.Printf("  route %d: %5.1f min  %6.2f km  stretch %.2f  %2d turns\n",
				i+1, r.TimeS/60, r.LengthM/1000, path.Stretch(r, fastest), path.TurnCount(g, r, 45))
		}
		fmt.Println()
		fc.AddRouteSet(g, pl.Name(), routes)
	}
	if geojsonOut != "" {
		f, err := os.Create(geojsonOut)
		if err != nil {
			return err
		}
		if err := fc.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote routes as GeoJSON to %s\n", geojsonOut)
	}
	return nil
}

func resolveEndpoint(g *graph.Graph, coord string, node int, what string) (graph.NodeID, error) {
	if node >= 0 {
		if node >= g.NumNodes() {
			return 0, fmt.Errorf("%s vertex %d out of range (graph has %d)", what, node, g.NumNodes())
		}
		return graph.NodeID(node), nil
	}
	if coord == "" {
		return 0, fmt.Errorf("provide the %s as -%c lat,lon or -%cnode ID", what, what[0], what[0])
	}
	var p geo.Point
	if _, err := fmt.Sscanf(coord, "%f,%f", &p.Lat, &p.Lon); err != nil {
		return 0, fmt.Errorf("parsing %s %q: %w", what, coord, err)
	}
	if !p.Valid() {
		return 0, fmt.Errorf("%s %v out of WGS84 range", what, p)
	}
	idx := spatial.NewIndex(g, 16)
	v, d := idx.Nearest(p)
	fmt.Printf("Matched %s %v to vertex %d (%.0f m away)\n", what, p, v, d)
	return v, nil
}
