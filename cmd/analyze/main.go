// Command analyze applies the paper's §IV-A statistical analysis to the
// ratings collected by the demo server: per-approach mean and standard
// deviation (overall, residents, non-residents, per city) and the one-way
// ANOVA testing whether the four approaches differ.
//
// With -orders it instead compares the two CCH contraction-order
// pipelines (geometric bisection vs inertial-flow separator refinement)
// side by side — order build time, separator-size profile per recursion
// depth, the size of the metric-independent contraction (pairs,
// triangles, arcs), the dependency-level profile that bounds
// customization parallelism, the elimination-tree shape (height and mean
// leaf depth — the root-path lengths point-to-point ascents walk), and
// the inert fraction a perfect customization retires from the sweeps —
// for the Melbourne profile and a 50×50 grid reference network.
//
// Usage:
//
//	analyze -in ratings.json
//	analyze -orders
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cch"
	"repro/internal/ch"
	"repro/internal/citygen"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/server"
)

func main() {
	in := flag.String("in", "ratings.json", "ratings file written by demoserver")
	orders := flag.Bool("orders", false, "report CCH order quality instead of ratings")
	flag.Parse()

	if *orders {
		reportOrders()
		return
	}

	subs, err := server.LoadRatings(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Print(server.AnalyzeRatings(subs))
}

func reportOrders() {
	mel, err := citygen.Melbourne().Generate(2022)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	for _, net := range []struct {
		name string
		g    *graph.Graph
	}{
		{"Melbourne", mel},
		{"grid50", grid(50, 50)},
	} {
		orderReport(net.name, net.g)
	}
}

// orderColumn is one pipeline's measurements of orderReport's
// comparison: order build time, the separator profile of the dissection,
// the contraction size the order induced, the dependency-level shape
// (depth is the serial critical path; width is available parallelism),
// and how many arcs a perfect customization of the base metric proves
// strictly dominated.
type orderColumn struct {
	build       time.Duration
	stats       cch.OrderStats
	pairs       int
	triangles   int
	levels      int
	maxWidth    int
	medWidth    int
	widePct     float64
	inertPct    float64
	etHeight    int
	etLeafDepth float64
}

func measureOrder(g *graph.Graph, kind cch.OrderKind) orderColumn {
	cfg := cch.OrderConfig{Kind: kind}
	start := time.Now()
	_, stats := cch.OrderWithStats(g, cfg)
	col := orderColumn{build: time.Since(start), stats: stats}

	pre := cch.PreprocessWith(g, cfg)
	col.pairs, col.triangles = pre.NumPairs(), pre.NumTriangles()
	// Elimination-tree shape: height bounds the worst-case point-to-point
	// ascent, mean leaf depth the typical one — the query-side quality an
	// order buys beyond customization size.
	et := pre.ElimTree()
	col.etHeight, col.etLeafDepth = et.Height(), et.AvgLeafDepth()
	widths := pre.LevelWidths()
	wide := 0
	for _, w := range widths {
		if w > col.maxWidth {
			col.maxWidth = w
		}
		if w >= 512 {
			wide += w
		}
	}
	med := append([]int(nil), widths...)
	sort.Ints(med)
	col.levels = pre.NumLevels()
	col.medWidth = med[len(med)/2]
	col.widePct = 100 * float64(wide) / float64(col.pairs)

	h := pre.CustomizeWith(g.CopyWeights(), cch.Config{Perfect: true})
	if rt, ok := h.(*ch.Runtime); ok {
		col.inertPct = 100 * float64(rt.InertCount()) / float64(2*col.pairs)
	}
	return col
}

// orderReport prints one network's geometric-vs-flow comparison. The
// delta column is flow relative to geometric; separator sizes per depth
// are the dissection's top splits — the ones that dominate fill-in.
func orderReport(name string, g *graph.Graph) {
	geo := measureOrder(g, cch.OrderGeometric)
	flow := measureOrder(g, cch.OrderFlow)

	pct := func(f, g int) string {
		if g == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", 100*(float64(f)/float64(g)-1))
	}
	fmt.Printf("%s: %d nodes, %d edges\n", name, g.NumNodes(), g.NumEdges())
	fmt.Printf("  %-14s %14s %14s %10s\n", "", "geometric", "flow", "delta")
	fmt.Printf("  %-14s %14v %14v %9.1fx\n", "order build", geo.build.Round(time.Millisecond), flow.build.Round(time.Millisecond),
		float64(flow.build)/float64(geo.build))
	fmt.Printf("  %-14s %14d %14d %10s\n", "pairs", geo.pairs, flow.pairs, pct(flow.pairs, geo.pairs))
	fmt.Printf("  %-14s %14d %14d %10s\n", "arcs", 2*geo.pairs, 2*flow.pairs, pct(flow.pairs, geo.pairs))
	fmt.Printf("  %-14s %14d %14d %10s\n", "triangles", geo.triangles, flow.triangles, pct(flow.triangles, geo.triangles))
	fmt.Printf("  %-14s %14d %14d %10s\n", "sep nodes", geo.stats.SepNodes, flow.stats.SepNodes, pct(flow.stats.SepNodes, geo.stats.SepNodes))
	fmt.Printf("  %-14s %14d %14d %10s\n", "max sep", geo.stats.MaxSep, flow.stats.MaxSep, pct(flow.stats.MaxSep, geo.stats.MaxSep))
	fmt.Printf("  %-14s %14d %14d %10s\n", "levels", geo.levels, flow.levels, pct(flow.levels, geo.levels))
	fmt.Printf("  %-14s %14d %14d %10s\n", "elim height", geo.etHeight, flow.etHeight, pct(flow.etHeight, geo.etHeight))
	fmt.Printf("  %-14s %14.1f %14.1f %10s\n", "avg leaf depth", geo.etLeafDepth, flow.etLeafDepth,
		pct(int(flow.etLeafDepth*10), int(geo.etLeafDepth*10)))
	fmt.Printf("  %-14s %13.1f%% %13.1f%%\n", "inert", geo.inertPct, flow.inertPct)
	fmt.Printf("  levels: geometric max width %d, median %d, %.1f%% of pairs in levels >= 512 wide\n",
		geo.maxWidth, geo.medWidth, geo.widePct)
	fmt.Printf("  levels: flow      max width %d, median %d, %.1f%% of pairs in levels >= 512 wide\n",
		flow.maxWidth, flow.medWidth, flow.widePct)
	depths := len(geo.stats.SepByDepth)
	if len(flow.stats.SepByDepth) > depths {
		depths = len(flow.stats.SepByDepth)
	}
	if depths > 8 {
		depths = 8
	}
	fmt.Printf("  separator nodes per depth (splits in parens):\n")
	for d := 0; d < depths; d++ {
		gs, gn := depthStat(geo.stats, d)
		fs, fn := depthStat(flow.stats, d)
		fmt.Printf("    depth %d: geometric %6d (%4d)   flow %6d (%4d)\n", d, gs, gn, fs, fn)
	}
	fmt.Println()
}

func depthStat(st cch.OrderStats, d int) (sepNodes, splits int) {
	if d < len(st.SepByDepth) {
		return st.SepByDepth[d], st.SplitsByDepth[d]
	}
	return 0, 0
}

// grid builds the reference rows×cols two-way grid (every fifth row a
// primary arterial), mirroring the package tests' reference network.
func grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, rows*cols*4)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(geo.Offset(o, float64(r)*150, float64(c)*150))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			class := graph.Residential
			if r%5 == 0 {
				class = graph.Primary
			}
			if c+1 < cols {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < rows {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}
