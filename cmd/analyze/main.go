// Command analyze applies the paper's §IV-A statistical analysis to the
// ratings collected by the demo server: per-approach mean and standard
// deviation (overall, residents, non-residents, per city) and the one-way
// ANOVA testing whether the four approaches differ.
//
// With -orders it instead reports CCH order quality — the size of the
// metric-independent contraction (pairs, triangles, arcs), the dependency-
// level profile that bounds customization parallelism, and the inert
// fraction a perfect customization retires from the sweeps — for the
// Melbourne profile and a 50×50 grid reference network.
//
// Usage:
//
//	analyze -in ratings.json
//	analyze -orders
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cch"
	"repro/internal/ch"
	"repro/internal/citygen"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/server"
)

func main() {
	in := flag.String("in", "ratings.json", "ratings file written by demoserver")
	orders := flag.Bool("orders", false, "report CCH order quality instead of ratings")
	flag.Parse()

	if *orders {
		reportOrders()
		return
	}

	subs, err := server.LoadRatings(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Print(server.AnalyzeRatings(subs))
}

func reportOrders() {
	mel, err := citygen.Melbourne().Generate(2022)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	for _, net := range []struct {
		name string
		g    *graph.Graph
	}{
		{"Melbourne", mel},
		{"grid50", grid(50, 50)},
	} {
		orderReport(net.name, net.g)
	}
}

// orderReport prints one network's contraction-quality numbers: the
// chordal fill-in the nested-dissection order produced (pairs and the
// triangles every customization enumerates), the dependency-level shape
// (depth is the serial critical path; width is available parallelism),
// and how many arcs a perfect customization of the base metric proves
// strictly dominated.
func orderReport(name string, g *graph.Graph) {
	pre := cch.Preprocess(g)
	widths := pre.LevelWidths()
	maxW, wide := 0, 0
	for _, w := range widths {
		if w > maxW {
			maxW = w
		}
		if w >= 512 {
			wide += w
		}
	}
	med := append([]int(nil), widths...)
	sort.Ints(med)

	fmt.Printf("%s: %d nodes, %d edges\n", name, g.NumNodes(), g.NumEdges())
	fmt.Printf("  pairs      %d (arcs %d)\n", pre.NumPairs(), 2*pre.NumPairs())
	fmt.Printf("  triangles  %d\n", pre.NumTriangles())
	fmt.Printf("  levels     %d (max width %d, median %d, %.1f%% of pairs in levels >= 512 wide)\n",
		pre.NumLevels(), maxW, med[len(med)/2],
		100*float64(wide)/float64(pre.NumPairs()))

	h := pre.CustomizeWith(g.CopyWeights(), cch.Config{Perfect: true})
	rt, ok := h.(*ch.Runtime)
	if !ok {
		fmt.Printf("  inert      n/a\n\n")
		return
	}
	inert := rt.InertCount()
	fmt.Printf("  inert      %d of %d arcs (%.1f%%) on the base metric\n\n",
		inert, 2*pre.NumPairs(), 100*float64(inert)/float64(2*pre.NumPairs()))
}

// grid builds the reference rows×cols two-way grid (every fifth row a
// primary arterial), mirroring the package tests' reference network.
func grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, rows*cols*4)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(geo.Offset(o, float64(r)*150, float64(c)*150))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			class := graph.Residential
			if r%5 == 0 {
				class = graph.Primary
			}
			if c+1 < cols {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < rows {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}
