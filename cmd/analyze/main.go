// Command analyze applies the paper's §IV-A statistical analysis to the
// ratings collected by the demo server: per-approach mean and standard
// deviation (overall, residents, non-residents, per city) and the one-way
// ANOVA testing whether the four approaches differ.
//
// Usage:
//
//	analyze -in ratings.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/server"
)

func main() {
	in := flag.String("in", "ratings.json", "ratings file written by demoserver")
	flag.Parse()

	subs, err := server.LoadRatings(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Print(server.AnalyzeRatings(subs))
}
