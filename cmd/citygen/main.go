// Command citygen generates a synthetic study city and writes it as a
// binary road-network file, OSM XML, or both. The synthetic networks stand
// in for the paper's Geofabrik OSM extracts of Melbourne, Dhaka and
// Copenhagen (see DESIGN.md, substitution table).
//
// Usage:
//
//	citygen -city Dhaka -seed 7 -out dhaka.bin -xml dhaka.osm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/citygen"
	"repro/internal/osm"
)

func main() {
	city := flag.String("city", "Melbourne", "city profile (Melbourne, Dhaka, Copenhagen)")
	seed := flag.Int64("seed", 2022, "generation seed")
	out := flag.String("out", "", "binary road-network output path")
	xmlOut := flag.String("xml", "", "OSM XML output path")
	flag.Parse()

	if err := run(*city, *seed, *out, *xmlOut); err != nil {
		fmt.Fprintln(os.Stderr, "citygen:", err)
		os.Exit(1)
	}
}

func run(city string, seed int64, out, xmlOut string) error {
	profile, err := citygen.ProfileByName(city)
	if err != nil {
		return err
	}
	if out == "" && xmlOut == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -xml")
	}
	data := profile.EmitData(seed)
	fmt.Printf("%s (seed %d): %d OSM nodes, %d ways\n", city, seed, len(data.Nodes), len(data.Ways))

	if xmlOut != "" {
		f, err := os.Create(xmlOut)
		if err != nil {
			return err
		}
		if err := data.WriteXML(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", xmlOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote OSM XML to %s\n", xmlOut)
	}
	if out != "" {
		g, err := osm.BuildGraph(data, nil)
		if err != nil {
			return err
		}
		if err := g.SaveFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote road network (%d nodes, %d edges) to %s\n", g.NumNodes(), g.NumEdges(), out)
	}
	return nil
}
