// Command demoserver runs the paper's web-based demonstration system
// (§III, Figs. 2-3): an interactive map where anyone can pick source and
// target locations in Melbourne, Dhaka or Copenhagen, view the alternative
// routes of the four blinded approaches (A: Google Maps stand-in,
// B: Plateaus, C: Dissimilarity, D: Penalty) and submit 1-5 ratings.
//
// Unlike the paper's frozen demo, this one serves *live traffic*: each
// city's private weights live in a versioned store, the POST /api/publish
// endpoint (or the -traffic-step auto-advance) publishes the next
// rush-hour snapshot, and the serving layer swaps planner weight versions
// atomically — CH hierarchies re-customize in the background while the
// old version keeps answering.
//
// Usage:
//
//	demoserver [-addr :8080] [-seed N] [-ratings ratings.json] [-workers N]
//	           [-trees dijkstra|ch|ch-restricted|ch-auto] [-hierarchy witness|cch|cch-perfect]
//	           [-traffic-step 30s] [-cache 4096]
//	           [-metrics] [-ingest] [-verbose]
//
// -metrics (default on) serves the Prometheus text exposition on GET
// /metrics; -ingest opens the POST /api/observations telemetry path
// (observed speeds, incident closures, deterministic scenario replay);
// -verbose restores the per-query log lines the hot handlers no longer
// emit by default.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 2022, "city generation seed")
	ratingsPath := flag.String("ratings", "ratings.json", "file the submitted ratings are stored in (empty disables)")
	workers := flag.Int("workers", 0, "concurrent planner calls per city (0 = number of CPUs)")
	trees := flag.String("trees", "ch-auto", "tree backend for the choice-routing planners: dijkstra, ch (PHAST full sweeps), ch-restricted (RPHAST) or ch-auto (default: RPHAST restricted sweeps for short queries, full sweeps otherwise)")
	hierarchy := flag.String("hierarchy", "cch", "hierarchy flavor behind -trees ch: witness (smallest, exact only under witness-preserving metrics), cch (customizable; default, exact for every published snapshot incl. closures) or cch-perfect (cch plus dominated-arc pruning per publish)")
	order := flag.String("order", "flow", "CCH contraction-order pipeline: flow (default: inertial-flow separators — smaller hierarchy, faster publishes; slower one-off order build at startup) or geometric (coordinate bisection; faster one-off preprocessing)")
	query := flag.String("query", "elimtree", "point-to-point query engine on the CCH flavors: elimtree (default: heap-free elimination-tree ascents) or bidij (bidirectional upward Dijkstra); distances are bit-identical either way")
	trafficStep := flag.Duration("traffic-step", 0, "auto-advance the rush-hour traffic sequence at this interval (0 disables; publishes also arrive via POST /api/publish)")
	cacheSize := flag.Int("cache", core.DefaultCacheSize, "versioned result-cache capacity of the serving engine (0 disables)")
	metricsOn := flag.Bool("metrics", true, "serve the Prometheus scrape endpoint on GET /metrics (query/customization latency, cache hit rates, store versions, ingest state)")
	ingest := flag.Bool("ingest", false, "accept live telemetry on POST /api/observations (observed speeds and incident closures publish into the traffic store)")
	verbose := flag.Bool("verbose", false, "log a line per /api/routes and /api/matrix request; off by default because a per-query Printf serializes the hot path under load")
	flag.Parse()

	if err := run(*addr, *seed, *ratingsPath, *workers, *trees, *hierarchy, *order, *query, *trafficStep, *cacheSize, *metricsOn, *ingest, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "demoserver:", err)
		os.Exit(1)
	}
}

func run(addr string, seed int64, ratingsPath string, workers int, trees, hierarchy, order, query string, trafficStep time.Duration, cacheSize int, metricsOn, ingest, verbose bool) error {
	backend, err := core.ParseTreeBackend(trees)
	if err != nil {
		return err
	}
	hkind, err := core.ParseHierarchyKind(hierarchy)
	if err != nil {
		return err
	}
	okind, err := core.ParseOrderKind(order)
	if err != nil {
		return err
	}
	qeng, err := core.ParseQueryEngine(query)
	if err != nil {
		return err
	}
	opts := core.Options{TreeBackend: backend, Hierarchy: hkind, Order: okind, Query: qeng}
	fmt.Printf("Generating the three city networks (seed %d, %s trees, %s hierarchy, %s order)...\n", seed, trees, hkind, okind)
	study, err := eval.NewStudyOpts(seed, opts)
	if err != nil {
		return err
	}
	// One shared engine bounds planner concurrency server-wide, so a
	// burst of requests cannot oversubscribe the machine. Its result
	// cache is keyed by (planner, weight version, s, t) and invalidated
	// on every publish.
	engine := core.NewEngine(workers)
	engine.SetCache(cacheSize)
	for _, name := range study.CityNames() {
		c := study.Cities[name]
		c.SetEngine(engine)
		log.Printf("demoserver: %-11s %5d nodes, %5d edges, trees=%s, hierarchy=%s, public weights v%d, traffic weights v%d",
			name, c.Graph.NumNodes(), c.Graph.NumEdges(), trees, hkind,
			c.PublicStore.Version(), c.TrafficStore.Version())
	}
	if trafficStep > 0 {
		go autoAdvance(study, trafficStep)
	}
	var sopts []server.Option
	if metricsOn {
		sopts = append(sopts, server.WithMetrics())
	}
	if ingest {
		sopts = append(sopts, server.WithIngest())
	}
	sopts = append(sopts, server.WithVerbose(verbose))
	srv := server.New(study.Cities, ratingsPath, sopts...)
	log.Printf("demoserver: listening on http://localhost%s (%d planner workers, cache %d, traffic-step %v, metrics %v, ingest %v, verbose %v)",
		addr, engine.Workers(), cacheSize, trafficStep, metricsOn, ingest, verbose)
	return http.ListenAndServe(addr, srv)
}

// autoAdvance publishes the next rush-hour snapshot of every city at a
// fixed cadence — the "shifting traffic" mode of the live demo.
func autoAdvance(study *eval.Study, step time.Duration) {
	ticker := time.NewTicker(step)
	defer ticker.Stop()
	for range ticker.C {
		for _, name := range study.CityNames() {
			c := study.Cities[name]
			snap := c.AdvanceTraffic()
			log.Printf("demoserver: %s traffic advanced to step %d (weights v%d)", name, c.Seq.Step(), snap.Version())
		}
	}
}
