// Command demoserver runs the paper's web-based demonstration system
// (§III, Figs. 2-3): an interactive map where anyone can pick source and
// target locations in Melbourne, Dhaka or Copenhagen, view the alternative
// routes of the four blinded approaches (A: Google Maps stand-in,
// B: Plateaus, C: Dissimilarity, D: Penalty) and submit 1-5 ratings.
//
// Usage:
//
//	demoserver [-addr :8080] [-seed N] [-ratings ratings.json] [-workers N]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 2022, "city generation seed")
	ratingsPath := flag.String("ratings", "ratings.json", "file the submitted ratings are stored in (empty disables)")
	workers := flag.Int("workers", 0, "concurrent planner calls per city (0 = number of CPUs)")
	trees := flag.String("trees", "ch", "tree backend for the choice-routing planners: dijkstra or ch (PHAST; default, the serving-optimised path)")
	flag.Parse()

	if err := run(*addr, *seed, *ratingsPath, *workers, *trees); err != nil {
		fmt.Fprintln(os.Stderr, "demoserver:", err)
		os.Exit(1)
	}
}

func run(addr string, seed int64, ratingsPath string, workers int, trees string) error {
	backend, err := core.ParseTreeBackend(trees)
	if err != nil {
		return err
	}
	opts := core.Options{TreeBackend: backend}
	fmt.Printf("Generating the three city networks (seed %d, %s trees)...\n", seed, trees)
	study, err := eval.NewStudyOpts(seed, opts)
	if err != nil {
		return err
	}
	engine := core.NewEngine(workers)
	for _, name := range study.CityNames() {
		c := study.Cities[name]
		// One shared engine bounds planner concurrency server-wide, so a
		// burst of requests cannot oversubscribe the machine.
		c.Engine = engine
		fmt.Printf("  %-11s %5d nodes, %5d edges\n", name, c.Graph.NumNodes(), c.Graph.NumEdges())
	}
	srv := server.New(study.Cities, ratingsPath)
	fmt.Printf("Demo system listening on http://localhost%s (%d planner workers)\n", addr, engine.Workers())
	return http.ListenAndServe(addr, srv)
}
