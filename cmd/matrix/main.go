// Command matrix computes a many-to-many travel-time table on a synthetic
// city (or a binary road-network file) and compares it against the k²
// independent point-to-point baseline — the amortization the shared
// RPHAST selection buys.
//
// Usage:
//
//	matrix -city Melbourne -k 16
//	matrix -graph net.bin -k 64 -trees ch-restricted -hierarchy cch
//	matrix -city Dhaka -sources "23.78,90.38;23.80,90.40" -targets "23.85,90.48"
//
// Endpoints are either sampled uniformly (-k of each) or given explicitly
// as semicolon-separated lat,lon lists.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/spatial"
)

func main() {
	city := flag.String("city", "Melbourne", "synthetic city profile (Melbourne, Dhaka, Copenhagen)")
	graphPath := flag.String("graph", "", "binary road-network file (overrides -city)")
	seed := flag.Int64("seed", 2022, "generation seed for -city and endpoint sampling")
	k := flag.Int("k", 16, "number of sampled sources and targets (ignored when -sources/-targets are given)")
	sourcesArg := flag.String("sources", "", "explicit sources as semicolon-separated lat,lon pairs")
	targetsArg := flag.String("targets", "", "explicit targets as semicolon-separated lat,lon pairs")
	trees := flag.String("trees", "ch-restricted", "tree backend: dijkstra, ch (PHAST), ch-restricted (RPHAST) or ch-auto")
	hierarchy := flag.String("hierarchy", "cch", "hierarchy flavor behind the ch backends: witness, cch or cch-perfect")
	order := flag.String("order", "flow", "CCH contraction-order pipeline behind the cch flavors: flow (default: smaller hierarchy, faster publishes; slower one-off order build at startup) or geometric")
	query := flag.String("query", "elimtree", "point-to-point query engine on the CCH flavors: elimtree (default: heap-free elimination-tree ascents, batched per target column in the pairwise baseline) or bidij (bidirectional upward Dijkstra); distances are bit-identical either way")
	reps := flag.Int("reps", 5, "warm repetitions timed per configuration")
	baseline := flag.Bool("baseline", true, "also time the k² point-to-point baseline")
	printTable := flag.Bool("print", false, "print the full table (minutes; '-' = unreachable)")
	flag.Parse()

	if err := run(*city, *graphPath, *seed, *k, *sourcesArg, *targetsArg, *trees, *hierarchy, *order, *query, *reps, *baseline, *printTable); err != nil {
		fmt.Fprintln(os.Stderr, "matrix:", err)
		os.Exit(1)
	}
}

func run(city, graphPath string, seed int64, k int, sourcesArg, targetsArg, trees, hierarchy, order, query string, reps int, baseline, printTable bool) error {
	backend, err := core.ParseTreeBackend(trees)
	if err != nil {
		return err
	}
	hkind, err := core.ParseHierarchyKind(hierarchy)
	if err != nil {
		return err
	}
	okind, err := core.ParseOrderKind(order)
	if err != nil {
		return err
	}
	qeng, err := core.ParseQueryEngine(query)
	if err != nil {
		return err
	}
	var g *graph.Graph
	if graphPath != "" {
		g, err = graph.LoadFile(graphPath)
	} else {
		var profile citygen.Profile
		profile, err = citygen.ProfileByName(city)
		if err == nil {
			g, err = profile.Generate(seed)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("Network: %d nodes, %d edges (%s trees, %s hierarchy, %s order)\n", g.NumNodes(), g.NumEdges(), trees, hkind, okind)

	rng := rand.New(rand.NewSource(seed + 1))
	sources, err := resolveEndpoints(g, sourcesArg, k, rng)
	if err != nil {
		return fmt.Errorf("sources: %w", err)
	}
	targets, err := resolveEndpoints(g, targetsArg, k, rng)
	if err != nil {
		return fmt.Errorf("targets: %w", err)
	}

	buildStart := time.Now()
	m := core.NewMatrixEngine(g, core.Options{TreeBackend: backend, Hierarchy: hkind, Order: okind, Query: qeng}, core.NewEngine(0))
	var tab core.Table
	if err := m.MatrixInto(&tab, sources, targets); err != nil {
		return err
	}
	fmt.Printf("First %dx%d table (hierarchy build + cold selection): %s\n",
		len(sources), len(targets), time.Since(buildStart).Round(time.Millisecond))
	if tab.Restricted {
		fmt.Printf("Shared selection: %d targets (%s)\n", tab.SelectionTargets, hitOrMiss(tab.SelectionHit))
	} else {
		fmt.Println("Sweeps: full (selection not restricted on this backend/batch)")
	}

	warmStart := time.Now()
	for i := 0; i < reps; i++ {
		if err := m.MatrixInto(&tab, sources, targets); err != nil {
			return err
		}
	}
	warm := time.Since(warmStart) / time.Duration(reps)
	fmt.Printf("Warm matrix: %s per table (%s per cell)\n",
		warm.Round(time.Microsecond), (warm / time.Duration(len(sources)*len(targets))).Round(time.Nanosecond))

	if baseline {
		var pw core.Table
		pwStart := time.Now()
		if err := m.MatrixPairwise(&pw, sources, targets); err != nil {
			return err
		}
		pwTime := time.Since(pwStart)
		fmt.Printf("Pairwise baseline (k² point-to-point): %s  ->  %.1fx speedup\n",
			pwTime.Round(time.Microsecond), float64(pwTime)/float64(warm))
	}

	st := m.HierarchyStatus()
	if total := st.SelectionHits + st.SelectionMisses; total > 0 {
		fmt.Printf("Selection cache: %d hits / %d misses, %d evictions\n",
			st.SelectionHits, st.SelectionMisses, st.SelectionEvictions)
	}

	if printTable {
		fmt.Print(formatTable(&tab))
	}
	return nil
}

// resolveEndpoints parses "lat,lon;lat,lon;..." (snapping each to the
// nearest vertex) or samples count distinct nodes when arg is empty.
func resolveEndpoints(g *graph.Graph, arg string, count int, rng *rand.Rand) ([]graph.NodeID, error) {
	if arg == "" {
		if count <= 0 || count > g.NumNodes() {
			return nil, fmt.Errorf("bad endpoint count %d", count)
		}
		seen := make(map[graph.NodeID]bool, count)
		out := make([]graph.NodeID, 0, count)
		for len(out) < count {
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return out, nil
	}
	idx := spatial.NewIndex(g, 16)
	var out []graph.NodeID
	for _, f := range strings.Split(arg, ";") {
		var p geo.Point
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%f,%f", &p.Lat, &p.Lon); err != nil {
			return nil, fmt.Errorf("bad coordinate %q (want lat,lon)", f)
		}
		if !p.Valid() {
			return nil, fmt.Errorf("coordinate %q out of range", f)
		}
		v, _ := idx.Nearest(p)
		out = append(out, v)
	}
	return out, nil
}

func formatTable(tab *core.Table) string {
	var sb strings.Builder
	sb.WriteString("\n        ")
	for _, t := range tab.Targets {
		fmt.Fprintf(&sb, "%8d", t)
	}
	sb.WriteString("\n")
	for i, s := range tab.Sources {
		fmt.Fprintf(&sb, "%8d", s)
		for j := range tab.Targets {
			v := tab.At(i, j)
			if math.IsInf(v, 1) {
				sb.WriteString("       -")
			} else {
				fmt.Fprintf(&sb, "%8.1f", v/60)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func hitOrMiss(hit bool) string {
	if hit {
		return "cache hit"
	}
	return "cache miss"
}
