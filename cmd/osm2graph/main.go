// Command osm2graph is the paper's Road Network Constructor as a CLI: it
// parses an OSM XML extract, optionally clips it to a rectangular area,
// builds the routable road network (travel time = length/maxspeed, ×1.3 on
// non-freeways, largest connected component only) and writes it in the
// binary road-network format.
//
// Usage:
//
//	osm2graph -in melbourne.osm -out melbourne.bin \
//	          -bbox "-37.95,144.80,-37.65,145.15"
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geo"
	"repro/internal/osm"
)

func main() {
	in := flag.String("in", "", "input OSM XML file")
	out := flag.String("out", "", "output binary road-network file")
	bboxStr := flag.String("bbox", "", "optional clip rectangle: minLat,minLon,maxLat,maxLon")
	flag.Parse()

	if err := run(*in, *out, *bboxStr); err != nil {
		fmt.Fprintln(os.Stderr, "osm2graph:", err)
		os.Exit(1)
	}
}

func run(in, out, bboxStr string) error {
	if in == "" || out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	var bbox *geo.BBox
	if bboxStr != "" {
		var b geo.BBox
		if _, err := fmt.Sscanf(bboxStr, "%f,%f,%f,%f", &b.MinLat, &b.MinLon, &b.MaxLat, &b.MaxLon); err != nil {
			return fmt.Errorf("parsing -bbox %q: %w", bboxStr, err)
		}
		if b.MinLat >= b.MaxLat || b.MinLon >= b.MaxLon {
			return fmt.Errorf("-bbox %q is empty or inverted", bboxStr)
		}
		bbox = &b
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := osm.Parse(f)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d nodes, %d ways from %s\n", len(data.Nodes), len(data.Ways), in)
	g, err := osm.BuildGraph(data, bbox)
	if err != nil {
		return err
	}
	if err := g.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote road network (%d nodes, %d edges, %.1f km of road) to %s\n",
		g.NumNodes(), g.NumEdges(), g.TotalLengthM()/1000, out)
	return nil
}
