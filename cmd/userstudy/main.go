// Command userstudy reruns the paper's user study end to end: it generates
// the three synthetic city networks, replays the 520-response schedule of
// Table I through the simulated participants, and prints Table I (mean
// ratings + ANOVA, §IV-A) and Table II (route similarity, §IV-B).
//
// Usage:
//
//	userstudy [-seed N] [-scale F] [-table 1|2|all]
//
// -scale 0.1 runs a 10% schedule for a quick look; the default replays the
// full 520 responses.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simstudy"
)

func main() {
	seed := flag.Int64("seed", 2022, "seed for networks, traffic and participants")
	scale := flag.Float64("scale", 1.0, "fraction of the paper's 520-response schedule to run")
	table := flag.String("table", "all", "which table to print: 1, 2 or all")
	ablation := flag.Bool("ablation", false, "also print the parameter/refinement ablation table")
	matrix := flag.Bool("matrix", false, "also print the many-to-many matrix ablation (shared-selection tables vs k\u00b2 point-to-point)")
	csvOut := flag.String("csv", "", "also write the raw study records to this CSV file")
	trees := flag.String("trees", "dijkstra", "tree backend for the choice-routing planners: dijkstra, ch (PHAST), ch-restricted (RPHAST) or ch-auto")
	hierarchy := flag.String("hierarchy", "witness", "hierarchy flavor behind -trees ch: witness or cch (customizable)")
	order := flag.String("order", "flow", "CCH contraction-order pipeline behind -hierarchy cch: flow (default: smaller hierarchy, faster publishes; slower one-off order build at startup) or geometric")
	query := flag.String("query", "elimtree", "point-to-point query engine on the CCH flavors: elimtree (default: heap-free elimination-tree ascents) or bidij (bidirectional upward Dijkstra); distances are bit-identical either way")
	flag.Parse()

	if err := run(*seed, *scale, *table, *ablation, *matrix, *csvOut, *trees, *hierarchy, *order, *query); err != nil {
		fmt.Fprintln(os.Stderr, "userstudy:", err)
		os.Exit(1)
	}
}

func run(seed int64, scale float64, table string, ablation, matrix bool, csvOut, trees, hierarchy, order, query string) error {
	if table != "1" && table != "2" && table != "all" {
		return fmt.Errorf("invalid -table %q (want 1, 2 or all)", table)
	}
	backend, err := core.ParseTreeBackend(trees)
	if err != nil {
		return err
	}
	hkind, err := core.ParseHierarchyKind(hierarchy)
	if err != nil {
		return err
	}
	okind, err := core.ParseOrderKind(order)
	if err != nil {
		return err
	}
	qeng, err := core.ParseQueryEngine(query)
	if err != nil {
		return err
	}
	start := time.Now()
	fmt.Printf("Generating city networks (seed %d, %s trees, %s hierarchy, %s order)...\n", seed, trees, hkind, okind)
	study, err := eval.NewStudyOpts(seed, core.Options{TreeBackend: backend, Hierarchy: hkind, Order: okind, Query: qeng})
	if err != nil {
		return err
	}
	for _, name := range study.CityNames() {
		c := study.Cities[name]
		fmt.Printf("  %-11s %5d nodes, %5d edges\n", name, c.Graph.NumNodes(), c.Graph.NumEdges())
	}

	sched := simstudy.PaperSchedule()
	if scale < 1 {
		sched = simstudy.ScaledSchedule(scale)
	}
	fmt.Printf("Replaying %d responses...\n", simstudy.TotalResponses(sched))
	if err := study.Run(sched, simstudy.DefaultRaterParams(), seed); err != nil {
		return err
	}
	fmt.Printf("Done in %.1fs.\n\n", time.Since(start).Seconds())

	cities := study.CityNames()
	if table == "1" || table == "all" {
		fmt.Println(eval.FormatTableI(study.Records, cities))
		fmt.Println(eval.ANOVAReport(study.Records, cities))
		fmt.Println(eval.RMAnovaReport(study.Records, cities))
	}
	if table == "2" || table == "all" {
		fmt.Println(eval.FormatTableII(study.Records, cities))
	}
	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		if err := eval.WriteRecordsCSV(f, study.Records); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(study.Records), csvOut)
	}
	if ablation {
		const numQueries = 25
		city := study.Cities["Melbourne"]
		rows, err := city.RunAblation(eval.DefaultAblationConfigs(city), numQueries, seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatAblation("Melbourne", rows, numQueries))
	}
	if matrix {
		city := study.Cities["Melbourne"]
		rows, err := city.RunMatrixAblation([]int{4, 16, 64}, seed)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatMatrixAblation("Melbourne", rows, city.Matrix.HierarchyStatus()))
	}
	return nil
}
