// Chspeedup demonstrates the §II-B theme of routing-engine optimisations:
// it preprocesses the Melbourne network into a contraction hierarchy,
// verifies exactness against plain Dijkstra, measures the point-to-point
// query speedup, and shows that the elliptically pruned plateau planner
// returns exactly the same alternative routes as the full-tree planner
// while exploring a fraction of the graph — the paper's claim that pruned
// trees "still yield the same choice routes".
//
// Run with:
//
//	go run ./examples/chspeedup
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/ch"
	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

func main() {
	g, err := citygen.Melbourne().Generate(2022)
	if err != nil {
		log.Fatal(err)
	}
	w := g.CopyWeights()
	fmt.Printf("Melbourne network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 1. Contraction hierarchy preprocessing.
	start := time.Now()
	h := ch.Build(g, w)
	fmt.Printf("CH preprocessing: %.1fs, %d shortcuts added (%.1f%% of edges)\n",
		time.Since(start).Seconds(), h.NumShortcuts(),
		100*float64(h.NumShortcuts())/float64(g.NumEdges()))

	// 2. Exactness + speedup over a query batch.
	rng := rand.New(rand.NewSource(1))
	const numQueries = 300
	type query struct{ s, t graph.NodeID }
	queries := make([]query, numQueries)
	for i := range queries {
		queries[i] = query{
			graph.NodeID(rng.Intn(g.NumNodes())),
			graph.NodeID(rng.Intn(g.NumNodes())),
		}
	}
	start = time.Now()
	chDists := make([]float64, numQueries)
	for i, q := range queries {
		chDists[i] = h.Dist(q.s, q.t)
	}
	chTime := time.Since(start)
	start = time.Now()
	for i, q := range queries {
		_, d := sp.ShortestPath(g, w, q.s, q.t)
		if math.Abs(d-chDists[i]) > 1e-6 && !(math.IsInf(d, 1) && math.IsInf(chDists[i], 1)) {
			log.Fatalf("query %d: CH %f != Dijkstra %f", i, chDists[i], d)
		}
	}
	dijTime := time.Since(start)
	fmt.Printf("%d queries: Dijkstra %.0f ms, CH %.0f ms -> %.1fx speedup, all distances exact\n",
		numQueries, dijTime.Seconds()*1000, chTime.Seconds()*1000,
		dijTime.Seconds()/chTime.Seconds())

	// 3. Pruned-tree plateaus: same choice routes, far less exploration.
	full := core.NewPlateaus(g, core.Options{})
	pruned := core.NewPrunedPlateaus(g, core.Options{})
	same, checked, reachedSum := 0, 0, 0
	for i := 0; i < 25; i++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		t := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == t {
			continue
		}
		a, err1 := full.Alternatives(s, t)
		b, err2 := pruned.Alternatives(s, t)
		if err1 != nil || err2 != nil {
			continue
		}
		checked++
		fwdReached, _ := pruned.LastReached()
		reachedSum += fwdReached
		identical := len(a) == len(b)
		if identical {
			for j := range a {
				if !path.Equal(a[j], b[j]) {
					identical = false
					break
				}
			}
		}
		if identical {
			same++
		}
	}
	fmt.Printf("Pruned-tree plateaus: identical route sets on %d/%d queries;\n", same, checked)
	fmt.Printf("  mean forward-tree exploration %0.f%% of the graph (full trees explore 100%%)\n",
		100*float64(reachedSum)/float64(checked*g.NumNodes()))
}
