// Datamismatch reproduces the Fig. 4 case study of the paper: because the
// commercial provider plans on different underlying data than the
// OSM-based approaches, there exist queries where a provider route looks
// like a detour — it is slower than the Plateaus route *when timed with
// OSM data* — yet is actually faster than the Plateaus route *when timed
// with the provider's own data*. A participant comparing the two maps
// would ding the provider unfairly; §IV-C calls this the study's main
// confound.
//
// The program scans random queries on the Melbourne network, reports every
// rank flip it finds, and summarizes how often the two approaches agree.
//
// Run with:
//
//	go run ./examples/datamismatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/traffic"
)

func main() {
	g, err := citygen.Melbourne().Generate(2022)
	if err != nil {
		log.Fatal(err)
	}
	private := traffic.Apply(g, traffic.DefaultModel(2022*2654435761+1))
	gmaps := core.NewCommercial(g, private, core.Options{})
	plateaus := core.NewPlateaus(g, core.Options{})

	rng := rand.New(rand.NewSource(4))
	flips, agreements, comparisons := 0, 0, 0
	fmt.Println("Scanning 60 random Melbourne queries for Fig. 4 rank flips...")
	for q := 0; q < 60 && flips < 5; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		t := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == t {
			continue
		}
		gr, err1 := gmaps.Alternatives(s, t)
		pr, err2 := plateaus.Alternatives(s, t)
		if err1 != nil || err2 != nil {
			continue
		}
		// Count shared routes (the "blue and green" of Fig. 4).
		for _, a := range gr {
			for _, b := range pr {
				if path.Equal(a, b) {
					agreements++
				}
			}
		}
		// Look for the "pink" pair: distinct routes with flipped rankings.
		for _, a := range gr {
			for _, b := range pr {
				comparisons++
				if path.Equal(a, b) {
					continue
				}
				osmA, osmB := a.TimeS, b.TimeS
				gmA := a.TimeUnder(private)
				gmB := b.TimeUnder(private)
				if osmA > osmB+30 && gmA < gmB-30 { // ≥30 s margins, as "a few minutes" at city scale
					flips++
					fmt.Printf("\nRank flip #%d on query %d->%d:\n", flips, s, t)
					fmt.Printf("  provider route:  OSM %5.1f min | provider data %5.1f min\n", osmA/60, gmA/60)
					fmt.Printf("  plateaus route:  OSM %5.1f min | provider data %5.1f min\n", osmB/60, gmB/60)
					fmt.Printf("  -> under OSM data the provider's route looks %.1f min slower (an apparent detour),\n",
						(osmA-osmB)/60)
					fmt.Printf("     under the provider's data it is actually %.1f min faster.\n", (gmB-gmA)/60)
					break
				}
			}
			if flips >= 5 {
				break
			}
		}
	}
	fmt.Printf("\nSummary: %d rank flips found; %d route agreements across %d route pair comparisons.\n",
		flips, agreements, comparisons)
	if flips == 0 {
		fmt.Println("No flips found — increase the scan budget or traffic intensity.")
	} else {
		fmt.Println("As Fig. 4 concludes: a user rating by map appearance would unfairly penalize")
		fmt.Println("the provider (or vice versa) because the two use different underlying data.")
	}
}
