// Ministudy runs a scaled-down version of the full user study (10% of the
// paper's 520-response schedule) and prints the same Table I / Table II /
// ANOVA artifacts — a fast way to see the whole pipeline without the
// full-size run of cmd/userstudy.
//
// Run with:
//
//	go run ./examples/ministudy
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/simstudy"
)

func main() {
	study, err := eval.NewStudy(7)
	if err != nil {
		log.Fatal(err)
	}
	sched := simstudy.ScaledSchedule(0.10)
	fmt.Printf("Mini study: %d responses (10%% of the paper's schedule)\n\n",
		simstudy.TotalResponses(sched))
	if err := study.Run(sched, simstudy.DefaultRaterParams(), 7); err != nil {
		log.Fatal(err)
	}
	cities := study.CityNames()
	fmt.Println(eval.FormatTableI(study.Records, cities))
	fmt.Println(eval.ANOVAReport(study.Records, cities))
	fmt.Println(eval.FormatTableII(study.Records, cities))

	// Every study artifact is also available programmatically.
	res := eval.Filter(study.Records, func(r eval.Record) bool { return r.Resident })
	fmt.Printf("Programmatic access example: %d resident responses collected.\n", len(res))
}
