// Plateauwalk reproduces Fig. 1 of the paper in text form: the full
// plateau pipeline for one query — forward shortest-path tree, backward
// tree, the plateaus found by joining them, their C−R ranking, and the
// alternative routes the top plateaus generate.
//
// Run with:
//
//	go run ./examples/plateauwalk
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sp"
)

func main() {
	g, err := citygen.Copenhagen().Generate(11)
	if err != nil {
		log.Fatal(err)
	}
	// A cross-town query: "Cambridge to Manchester" at Copenhagen scale.
	s := graph.NodeID(10)
	t := graph.NodeID(g.NumNodes() - 20)
	w := g.CopyWeights()

	// Fig. 1(a): forward tree rooted at the source.
	fwd := sp.BuildTree(g, w, s, sp.Forward)
	reached := 0
	for v := 0; v < g.NumNodes(); v++ {
		if fwd.Reached(graph.NodeID(v)) {
			reached++
		}
	}
	fmt.Printf("Forward tree from %d reaches %d/%d vertices; dist(s,t) = %.1f min\n",
		s, reached, g.NumNodes(), fwd.Dist[t]/60)

	// Fig. 1(b): backward tree rooted at the target.
	bwd := sp.BuildTree(g, w, t, sp.Backward)
	fmt.Printf("Backward tree from %d built; dist agrees: %.1f min\n\n", t, bwd.Dist[s]/60)

	// Fig. 1(c): join the trees to find the plateaus.
	planner := core.NewPlateaus(g, core.Options{})
	plateaus := planner.FindPlateaus(fwd, bwd)
	sort.Slice(plateaus, func(i, j int) bool { return plateaus[i].Score() > plateaus[j].Score() })
	fmt.Printf("Tree join found %d plateaus. The 8 longest (by C−R score):\n", len(plateaus))
	fmt.Printf("%-4s %-10s %-12s %-12s %s\n", "#", "edges", "C (min)", "route (min)", "C−R (min)")
	for i, pl := range plateaus {
		if i >= 8 {
			break
		}
		fmt.Printf("%-4d %-10d %-12.2f %-12.2f %.2f\n",
			i+1, len(pl.Edges), pl.CostS/60, pl.RouteCostS/60, pl.Score()/60)
	}

	// The best plateau is the fastest path itself: C−R = 0.
	if len(plateaus) > 0 && plateaus[0].Score() > -1e-9 {
		fmt.Println("\nThe top plateau IS the fastest path (C−R = 0), as §II-B describes.")
	}

	// Fig. 1(d): the routes the top plateaus generate.
	routes, err := planner.Alternatives(s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPlateau routes reported to the user (k=%d, upper bound %.1f):\n",
		core.DefaultK, core.DefaultUpperBound)
	for i, r := range routes {
		fmt.Printf("  route %d: %5.1f min, %5.2f km, %d vertices\n",
			i+1, r.TimeS/60, r.LengthM/1000, len(r.Nodes))
	}
}
