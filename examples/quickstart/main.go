// Quickstart: build a small road network, run the three published
// alternative-route techniques the paper implements (Penalty, Plateaus,
// Dissimilarity) on one query, and print the resulting routes with the
// paper's quality measures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/spatial"
)

func main() {
	// 1. Generate a Melbourne-like road network (a stand-in for the
	//    paper's OSM extract; see DESIGN.md).
	profile := citygen.Melbourne()
	g, err := profile.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Road network: %d intersections, %d road segments\n",
		g.NumNodes(), g.NumEdges())

	// 2. Pick a source and a target by coordinates, exactly like a demo
	//    user clicking the map: the spatial index snaps clicks to the
	//    nearest intersections.
	idx := spatial.NewIndex(g, 16)
	s, _ := idx.Nearest(profile.Center) // city center
	bb := g.BBox()
	northEast := geo.Point{
		Lat: bb.MinLat + 0.85*(bb.MaxLat-bb.MinLat),
		Lon: bb.MinLon + 0.85*(bb.MaxLon-bb.MinLon),
	}
	t, _ := idx.Nearest(northEast) // a suburb toward the corner
	fmt.Printf("Query: vertex %d -> vertex %d\n\n", s, t)

	// 3. Run each technique with the paper's parameters (k=3, penalty
	//    factor 1.4, upper bound 1.4, θ=0.5 — the Options zero value).
	planners := []core.Planner{
		core.NewPlateaus(g, core.Options{}),
		core.NewDissimilarity(g, core.Options{}),
		core.NewPenalty(g, core.Options{}),
	}
	for _, pl := range planners {
		routes, err := pl.Alternatives(s, t)
		if err != nil {
			log.Fatalf("%s: %v", pl.Name(), err)
		}
		fmt.Printf("%s returned %d routes (Sim(T) = %.3f):\n",
			pl.Name(), len(routes), path.SimT(g, routes))
		for i, r := range routes {
			fmt.Printf("  %d. %5.1f min over %5.2f km (stretch %.2f)\n",
				i+1, r.TimeS/60, r.LengthM/1000, path.Stretch(r, routes[0].TimeS))
		}
		fmt.Println()
	}

	// 4. The graph can be saved and reloaded in the binary format used by
	//    the CLI tools.
	if err := g.SaveFile("/tmp/quickstart-melbourne.bin"); err != nil {
		log.Fatal(err)
	}
	g2, err := graph.LoadFile("/tmp/quickstart-melbourne.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Round-tripped network file: %d nodes, %d edges\n",
		g2.NumNodes(), g2.NumEdges())
}
