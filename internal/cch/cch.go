// Package cch implements customizable contraction hierarchies (Dibbelt,
// Strasser, Wagner: "Customizable Contraction Hierarchies"), the
// metric-independent flavor behind the ch.Hierarchy seam.
//
// The witness flavor (ch.Build) prunes shortcuts against the build-time
// metric, so its cheap weights-only re-customization is exact only for
// metrics that preserve the witness structure — heavy road closures or
// aggressive congestion snapshots can silently degrade its distances to
// upper bounds. This package removes the metric from preprocessing
// entirely:
//
//   - Preprocess contracts nodes along a nested-dissection order (order.go)
//     with *no witness pruning*: contracting v connects all of v's
//     higher-ranked neighbours into a clique, yielding the chordal
//     supergraph. Each undirected chordal arc {x, y} carries an upward
//     (x→y) and a downward (y→x) weight slot. Preprocess also records, per
//     arc, its *lower triangles* — the vertices z below both endpoints
//     with arcs to each — and the original edges mapping onto each slot.
//   - Customize instantiates the topology for one weight vector: slots
//     start at the cheapest original edge (+Inf when none) and one
//     bottom-up sweep relaxes every lower triangle
//     (w(x→y) ≤ w(x→z) + w(z→y)). After the sweep, bidirectional upward
//     searches — and therefore PHAST sweeps and every planner consuming
//     trees — are exact for *any* weight vector, including +Inf closures,
//     because any shortest path rewrites into an equal-weight up-down path
//     by repeatedly bypassing its lowest interior vertex through the
//     relaxed triangle arc.
//
// Preprocessing is paid once per road network; following a published
// weight snapshot costs one triangle sweep (linear in the triangle count),
// which is what makes every weights.Snapshot exactly servable without
// re-contraction.
package cch

import (
	"fmt"
	"sync"

	"repro/internal/ch"
	"repro/internal/graph"
)

// Kind labels hierarchies produced by this package.
const Kind = "cch"

// Preprocessed is the metric-independent half of a customizable
// hierarchy: the nested-dissection order, the chordal arc topology, the
// lower-triangle lists and the original-edge mapping. It is immutable
// after Preprocess and safe for concurrent Customize calls; it holds no
// weights of its own.
type Preprocessed struct {
	g         *graph.Graph
	orderKind OrderKind
	rank      []int32
	// Chordal arc pairs {lo, hi} with rank[lo] < rank[hi], sorted by
	// rank[lo] ascending — the order triangle relaxation must process them
	// in (a pair's lower triangles reference only pairs with a strictly
	// lower lo-rank).
	lo, hi []graph.NodeID
	// Lower triangles per pair, CSR over pair indices: triangle k of pair
	// p is a vertex z below both endpoints, represented by its two
	// constituent pairs triLoSide[k] = {z, lo(p)} and triHiSide[k] =
	// {z, hi(p)}.
	triOff    []int32
	triLoSide []int32
	triHiSide []int32
	// Original edges mapping onto each pair's two slots, CSR per pair:
	// upEdges are lo→hi road edges, downEdges hi→lo.
	upOff, downOff     []int32
	upEdges, downEdges []graph.EdgeID
	// arcFrom is the runtime tail array (2 arcs per pair: up then down),
	// shared by every customization.
	arcFrom []graph.NodeID
	// Packed dependency-level CSR (levels.go): levelPairs grouped by
	// ascending level, levelOff bounding each level's group — the wave
	// structure level-parallel customization runs over.
	levelOff   []int32
	levelPairs []int32
	// elim is the elimination tree of the chordal supergraph (parent =
	// lowest-ranked upward neighbor), built once here and attached to
	// every customized runtime — the topology the heap-free query engine
	// walks. Metric-independent like everything else in a Preprocessed.
	elim *ch.ElimTree

	// template caches the first customized runtime so later Customize
	// calls share its adjacency arrays instead of re-deriving them.
	mu       sync.Mutex
	template *ch.Runtime
	// Double-buffered customization output (customize.go): arc buffers
	// leased to in-flight runtimes, reclaimed by finalizer.
	bufMu sync.Mutex
	bufs  []*arcBuf
	// soa pools the flat weight vectors of the triangle loops.
	soa sync.Pool
}

// Build preprocesses g metric-independently and customizes the result for
// the given weights — the drop-in counterpart of ch.Build. Keep the
// returned hierarchy's Customize for following weight snapshots; only the
// first call pays for contraction.
//
// Preprocessing is shared: because a Preprocessed depends only on the
// graph (never on weights) and is safe for concurrent Customize calls,
// Build memoizes the most recent graph's preprocessing process-wide. The
// common serving shape — several planners (public and private metric) on
// one city network — therefore contracts each network once, not once per
// planner.
func Build(g *graph.Graph, weights []float64) ch.Hierarchy {
	return PreprocessShared(g).Customize(weights)
}

// BuildWith is Build with explicit customization Config — the order
// pipeline, worker fan-out and the perfect (inert-arc marking)
// post-pass. Preprocessings are shared per (graph, order kind): two
// callers asking for different order pipelines on the same network get
// distinct (and distinctly memoized) contractions.
func BuildWith(g *graph.Graph, weights []float64, cfg Config) ch.Hierarchy {
	return PreprocessSharedWith(g, cfg.Order).CustomizeWith(weights, cfg)
}

// sharedPreCap bounds the process-wide preprocessing memo. Four entries
// cover the realistic serving shapes (a city per metric profile, a pair
// of cities in an A/B harness) while keeping a long multi-city test run
// from pinning every network it ever touched.
const sharedPreCap = 4

// preKey identifies one memoized preprocessing. The order kind is part
// of the key — a Preprocessed built on the geometric order is a
// different contraction than one built on the flow order, and a caller
// asking for one must never silently receive the other. OrderConfig's
// Workers knob is deliberately *not* in the key: every worker count
// produces bit-identical ranks, so the contractions are interchangeable.
type preKey struct {
	g    *graph.Graph
	kind OrderKind
}

// shared* memoize preprocessings keyed by (graph pointer, order kind),
// FIFO-evicted at sharedPreCap. A single graph-keyed slot used to live
// here; alternating between two cities (the common multi-city test
// shape) re-preprocessed on every switch, and two callers with different
// order settings would have silently shared one contraction.
var (
	sharedMu    sync.Mutex
	sharedPre   = map[preKey]*Preprocessed{}
	sharedOrder []preKey
)

// PreprocessShared returns the memoized default-order preprocessing of
// g, computing and caching it on first sight. A Preprocessed depends
// only on the graph and the order pipeline (never on weights) and is
// safe for concurrent Customize calls, so every consumer of one network
// can share a single contraction.
func PreprocessShared(g *graph.Graph) *Preprocessed {
	return PreprocessSharedWith(g, OrderConfig{})
}

// PreprocessSharedWith is PreprocessShared keyed by (graph, order kind).
func PreprocessSharedWith(g *graph.Graph, order OrderConfig) *Preprocessed {
	key := preKey{g, order.Kind}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if pre, ok := sharedPre[key]; ok {
		return pre
	}
	pre := PreprocessWith(g, order)
	if len(sharedOrder) >= sharedPreCap {
		delete(sharedPre, sharedOrder[0])
		sharedOrder = sharedOrder[:copy(sharedOrder, sharedOrder[1:])]
	}
	sharedPre[key] = pre
	sharedOrder = append(sharedOrder, key)
	return pre
}

// Preprocess computes the nested-dissection order, the chordal (no
// witness pruning) arc topology, the per-arc lower-triangle lists and the
// original-edge mapping. The result depends only on the graph structure
// and node coordinates, never on weights.
func Preprocess(g *graph.Graph) *Preprocessed {
	return PreprocessWith(g, OrderConfig{})
}

// PreprocessWith is Preprocess on an explicit order configuration.
func PreprocessWith(g *graph.Graph, ocfg OrderConfig) *Preprocessed {
	n := g.NumNodes()
	p := &Preprocessed{g: g, orderKind: ocfg.Kind, rank: OrderWith(g, ocfg)}
	order := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		order[p.rank[v]] = graph.NodeID(v)
	}

	// Chordal fill-in: process nodes in ascending rank; the (deduplicated)
	// higher-ranked neighbours of v become v's pairs, and every two of
	// them gain an arc — the clique contraction of v induces. upAdj may
	// hold duplicates between visits; dedup happens once per node via the
	// seen stamps.
	upAdj := make([][]graph.NodeID, n)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		l, h := ed.From, ed.To
		if p.rank[l] > p.rank[h] {
			l, h = h, l
		}
		upAdj[l] = append(upAdj[l], h)
	}
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	// A node's pairs are appended contiguously (one group per node visit,
	// in rank order) and sorted by rank of the upper endpoint, which makes
	// pair lookup a binary search over [pairStart[v], pairEnd[v]).
	pairStart := make([]int32, n)
	pairEnd := make([]int32, n)
	var nbuf []graph.NodeID
	for i := 0; i < n; i++ {
		v := order[i]
		pairStart[v] = int32(len(p.lo))
		nbuf = nbuf[:0]
		for _, u := range upAdj[v] {
			if seen[u] != int32(i) {
				seen[u] = int32(i)
				nbuf = append(nbuf, u)
			}
		}
		upAdj[v] = nil
		sortByRank(nbuf, p.rank)
		for _, u := range nbuf {
			p.lo = append(p.lo, v)
			p.hi = append(p.hi, u)
		}
		pairEnd[v] = int32(len(p.lo))
		for a := 0; a < len(nbuf); a++ {
			for b := a + 1; b < len(nbuf); b++ {
				upAdj[nbuf[a]] = append(upAdj[nbuf[a]], nbuf[b])
			}
		}
	}
	P := len(p.lo)

	findPair := func(a, b graph.NodeID) int32 {
		// Binary search b among a's pairs (sorted by rank of hi).
		loI, hiI := pairStart[a], pairEnd[a]
		rb := p.rank[b]
		for loI < hiI {
			mid := (loI + hiI) / 2
			if p.rank[p.hi[mid]] < rb {
				loI = mid + 1
			} else {
				hiI = mid
			}
		}
		if loI < pairEnd[a] && p.hi[loI] == b {
			return loI
		}
		panic(fmt.Sprintf("cch: pair {%d,%d} missing from chordal topology", a, b))
	}

	// Lower triangles: for every z, each two of z's pairs {z,a}, {z,b}
	// witness the triangle of pair {a,b} (which exists by the clique
	// property). Count, prefix-sum, fill.
	triCnt := make([]int32, P+1)
	forEachTriangle(p, pairStart, pairEnd, func(abPair, zaPair, zbPair int32) {
		triCnt[abPair+1]++
	}, findPair)
	for i := 0; i < P; i++ {
		triCnt[i+1] += triCnt[i]
	}
	p.triOff = triCnt
	p.triLoSide = make([]int32, p.triOff[P])
	p.triHiSide = make([]int32, p.triOff[P])
	cursor := make([]int32, P)
	forEachTriangle(p, pairStart, pairEnd, func(abPair, zaPair, zbPair int32) {
		k := p.triOff[abPair] + cursor[abPair]
		cursor[abPair]++
		p.triLoSide[k] = zaPair
		p.triHiSide[k] = zbPair
	}, findPair)

	// Original edges per pair and direction (parallel edges all listed —
	// which one is cheapest depends on the metric).
	upCnt := make([]int32, P+1)
	downCnt := make([]int32, P+1)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if p.rank[ed.From] < p.rank[ed.To] {
			upCnt[findPair(ed.From, ed.To)+1]++
		} else {
			downCnt[findPair(ed.To, ed.From)+1]++
		}
	}
	for i := 0; i < P; i++ {
		upCnt[i+1] += upCnt[i]
		downCnt[i+1] += downCnt[i]
	}
	p.upOff, p.downOff = upCnt, downCnt
	p.upEdges = make([]graph.EdgeID, p.upOff[P])
	p.downEdges = make([]graph.EdgeID, p.downOff[P])
	upCur := make([]int32, P)
	downCur := make([]int32, P)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if p.rank[ed.From] < p.rank[ed.To] {
			pi := findPair(ed.From, ed.To)
			p.upEdges[p.upOff[pi]+upCur[pi]] = graph.EdgeID(e)
			upCur[pi]++
		} else {
			pi := findPair(ed.To, ed.From)
			p.downEdges[p.downOff[pi]+downCur[pi]] = graph.EdgeID(e)
			downCur[pi]++
		}
	}

	p.arcFrom = make([]graph.NodeID, 2*P)
	for i := 0; i < P; i++ {
		p.arcFrom[2*i] = p.lo[i]
		p.arcFrom[2*i+1] = p.hi[i]
	}

	// Elimination tree: a node's parent is its lowest-ranked upward
	// neighbor — the first of its pair group, which is sorted ascending by
	// rank of the upper endpoint. Depths follow in one descending-rank
	// pass (a parent always outranks its children, so it is final first).
	parent := make([]graph.NodeID, n)
	depth := make([]int32, n)
	for v := 0; v < n; v++ {
		if pairStart[v] < pairEnd[v] {
			parent[v] = p.hi[pairStart[v]]
		} else {
			parent[v] = graph.InvalidNode
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if parent[v] >= 0 {
			depth[v] = depth[parent[v]] + 1
		}
	}
	p.elim = &ch.ElimTree{Parent: parent, Depth: depth}

	p.computeLevels()
	p.soa.New = func() any {
		return &soaScratch{upW: make([]float64, P), downW: make([]float64, P)}
	}
	return p
}

// forEachTriangle enumerates every lower triangle: for each node z, every
// two of its pairs {z,a}, {z,b} (rank[a] < rank[b]) are the constituent
// sides of a triangle of pair {a,b}.
func forEachTriangle(p *Preprocessed, pairStart, pairEnd []int32, visit func(abPair, zaPair, zbPair int32), findPair func(a, b graph.NodeID) int32) {
	n := p.g.NumNodes()
	for z := graph.NodeID(0); int(z) < n; z++ {
		lo, hi := pairStart[z], pairEnd[z]
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				// p.hi sorted by rank: hi[i] is the lower endpoint of the
				// target pair.
				visit(findPair(p.hi[i], p.hi[j]), i, j)
			}
		}
	}
}

// sortByRank sorts nodes ascending by rank (insertion sort: the lists are
// the upward degrees of one node, short in practice).
func sortByRank(xs []graph.NodeID, rank []int32) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && rank[xs[j]] > rank[x] {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// OrderKind reports which nested-dissection pipeline produced this
// contraction's order.
func (p *Preprocessed) OrderKind() OrderKind { return p.orderKind }

// NumPairs returns the number of chordal arc pairs (each carries an
// upward and a downward weight slot).
func (p *Preprocessed) NumPairs() int { return len(p.lo) }

// NumTriangles returns the number of precomputed lower triangles — the
// unit of Customize work.
func (p *Preprocessed) NumTriangles() int { return len(p.triLoSide) }

// Rank returns the nested-dissection contraction order (higher = more
// important). The slice aliases internal storage.
func (p *Preprocessed) Rank() []int32 { return p.rank }

// ElimTree returns the elimination tree of the chordal supergraph — the
// root-path topology the heap-free query engine ascends. Shared by every
// customization; immutable.
func (p *Preprocessed) ElimTree() *ch.ElimTree { return p.elim }
