package cch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ch"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/sp"
)

func gridCity(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, rows*cols*4)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(geo.Offset(o, float64(r)*150, float64(c)*150))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			class := graph.Residential
			if r%5 == 0 {
				class = graph.Primary
			}
			if c+1 < cols {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < rows {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}

func randomCity(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, rng.Float64()*4000, rng.Float64()*4000))
	}
	for i := 0; i < n*3; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(graph.EdgeSpec{
			From:     u,
			To:       v,
			Class:    graph.RoadClass(rng.Intn(7)),
			SpeedKmh: 20 + rng.Float64()*60,
			TwoWay:   rng.Intn(3) > 0,
		})
	}
	return b.Build()
}

func TestOrderIsPermutation(t *testing.T) {
	for _, g := range []*graph.Graph{gridCity(9, 13), randomCity(3, 200)} {
		rank := Order(g)
		if len(rank) != g.NumNodes() {
			t.Fatalf("rank length %d != %d nodes", len(rank), g.NumNodes())
		}
		seen := make([]bool, len(rank))
		for v, r := range rank {
			if r < 0 || int(r) >= len(rank) || seen[r] {
				t.Fatalf("rank[%d] = %d is not part of a permutation", v, r)
			}
			seen[r] = true
		}
	}
}

func checkDistances(t *testing.T, g *graph.Graph, h ch.Hierarchy, w []float64, queries int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < queries; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		_, want := sp.ShortestPath(g, w, s, dst)
		got := h.Dist(s, dst)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("query %d (%d->%d): reachability mismatch CCH %v dijkstra %v", q, s, dst, got, want)
		}
		if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-6 {
			t.Fatalf("query %d (%d->%d): CCH %f, dijkstra %f", q, s, dst, got, want)
		}
	}
}

func TestDistMatchesDijkstraGrid(t *testing.T) {
	g := gridCity(12, 12)
	w := g.CopyWeights()
	checkDistances(t, g, Build(g, w), w, 60, 1)
}

func TestDistMatchesDijkstraRandomDirected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCity(seed, 150)
		w := g.CopyWeights()
		checkDistances(t, g, Build(g, w), w, 40, seed+50)
	}
}

// TestCustomizeArbitraryMetricExact is the package's headline contract:
// the same preprocessed topology, customized for metrics the witness
// flavor makes no exactness promise about — ±50% congestion, random
// rescalings, and heavy +Inf closures — answers exactly on every one.
func TestCustomizeArbitraryMetricExact(t *testing.T) {
	g := randomCity(11, 150)
	base := g.CopyWeights()
	pre := Preprocess(g)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		w := make([]float64, len(base))
		for i := range w {
			w[i] = base[i] * (0.5 + rng.Float64())
		}
		// Heavy closures: ban 20% of all edges outright.
		for i := range w {
			if rng.Intn(5) == 0 {
				w[i] = math.Inf(1)
			}
		}
		checkDistances(t, g, pre.Customize(w), w, 40, int64(round))
	}
}

func TestPathUnpacksToValidRoute(t *testing.T) {
	g := gridCity(10, 10)
	w := g.CopyWeights()
	// Perturb the metric after preprocessing so unpacking exercises the
	// per-customization triangle decomposition, not the build metric.
	rng := rand.New(rand.NewSource(5))
	for i := range w {
		w[i] *= 0.6 + 0.8*rng.Float64()
	}
	h := Preprocess(g).Customize(w)
	for q := 0; q < 40; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		edges, d := h.Path(s, dst)
		if s == dst {
			if d != 0 || len(edges) != 0 {
				t.Fatalf("s==t: got %d edges at %f", len(edges), d)
			}
			continue
		}
		if edges == nil {
			t.Fatalf("grid is connected; no path %d->%d", s, dst)
		}
		cur := s
		var cost float64
		for i, e := range edges {
			ed := g.Edge(e)
			if ed.From != cur {
				t.Fatalf("unpacked path discontinuous at edge %d", i)
			}
			cur = ed.To
			cost += w[e]
		}
		if cur != dst {
			t.Fatalf("unpacked path ends at %d, want %d", cur, dst)
		}
		if math.Abs(cost-d) > 1e-6 {
			t.Fatalf("unpacked cost %f != reported %f", cost, d)
		}
		_, want := sp.ShortestPath(g, w, s, dst)
		if math.Abs(d-want) > 1e-6 {
			t.Fatalf("CCH path cost %f != optimal %f", d, want)
		}
	}
}

// TestTreeBuilderMatchesDijkstra drives the shared PHAST machinery off a
// CCH runtime, including under bans: complete trees must match Dijkstra
// distances and never route over a closed edge.
func TestTreeBuilderMatchesDijkstra(t *testing.T) {
	g := randomCity(21, 120)
	w := g.CopyWeights()
	rng := rand.New(rand.NewSource(9))
	banned := map[graph.EdgeID]bool{}
	for len(banned) < g.NumEdges()/8 {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		banned[e] = true
		w[e] = math.Inf(1)
	}
	tb := Build(g, w).NewTreeBuilder()
	ws := sp.GetWorkspace()
	defer ws.Release()
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 7 {
		for _, dir := range []sp.Direction{sp.Forward, sp.Backward} {
			// The reference tree is owned (BuildTree clones) because the two
			// builders would otherwise share the same workspace slot.
			ref := sp.BuildTree(g, w, s, dir)
			got := tb.BuildTreeInto(ws, s, dir)
			for v := 0; v < g.NumNodes(); v++ {
				dw, dg := ref.Dist[v], got.Dist[v]
				if math.IsInf(dw, 1) != math.IsInf(dg, 1) || (!math.IsInf(dw, 1) && math.Abs(dw-dg) > 1e-7) {
					t.Fatalf("root %d dir %v node %d: dijkstra %g, CCH tree %g", s, dir, v, dw, dg)
				}
				if e := got.Parent[v]; e >= 0 && banned[e] {
					t.Fatalf("root %d: tree parent of %d is banned edge %d", s, v, e)
				}
			}
		}
	}
}

// TestCustomizeChainIndependence: customizing repeatedly (the serving
// pattern) must depend only on the final weights, never on the path taken
// to them — there is no hidden metric state in the preprocessed topology.
func TestCustomizeChainIndependence(t *testing.T) {
	g := randomCity(4, 100)
	w := g.CopyWeights()
	pre := Preprocess(g)
	rng := rand.New(rand.NewSource(5))
	cur := pre.Customize(w)
	var final []float64
	for step := 0; step < 4; step++ {
		next := make([]float64, len(w))
		for i := range w {
			next[i] = w[i] * (0.5 + rng.Float64())
		}
		cur = cur.Customize(next)
		final = next
	}
	direct := Preprocess(g).Customize(final)
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 13 {
		for tt := graph.NodeID(0); int(tt) < g.NumNodes(); tt += 17 {
			if d1, d2 := cur.Dist(s, tt), direct.Dist(s, tt); d1 != d2 {
				t.Fatalf("Dist(%d,%d): chained %g, direct %g", s, tt, d1, d2)
			}
		}
	}
}

// TestWitnessInexactUnderClosuresCCHExact pins the motivation for this
// package: a heavy-closure snapshot under which the witness flavor's
// cheap Recustomize *overestimates* distances (a shortcut pruned at build
// time is missing under the new metric), while the CCH customization of
// the very same snapshot stays exactly equal to Dijkstra ground truth.
func TestWitnessInexactUnderClosuresCCHExact(t *testing.T) {
	overestimates := 0
	for seed := int64(0); seed < 8; seed++ {
		g := randomCity(seed+400, 120)
		base := g.CopyWeights()
		witness := ch.Build(g, base)
		pre := Preprocess(g)

		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, len(base))
		copy(w, base)
		for i := range w {
			if rng.Intn(6) == 0 {
				w[i] = math.Inf(1)
			}
		}
		wit := witness.Recustomize(w)
		cchH := pre.Customize(w)

		for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 5 {
			for dst := graph.NodeID(1); int(dst) < g.NumNodes(); dst += 7 {
				_, want := sp.ShortestPath(g, w, s, dst)
				gotW := wit.Dist(s, dst)
				gotC := cchH.Dist(s, dst)
				// CCH: exact, always.
				if math.IsInf(want, 1) != math.IsInf(gotC, 1) ||
					(!math.IsInf(want, 1) && math.Abs(gotC-want) > 1e-6) {
					t.Fatalf("seed %d (%d->%d): CCH %g != dijkstra %g under closures", seed, s, dst, gotC, want)
				}
				// Witness: never better than truth (it is an upper bound)...
				if !math.IsInf(gotW, 1) && gotW < want-1e-6 {
					t.Fatalf("seed %d (%d->%d): witness %g below true %g", seed, s, dst, gotW, want)
				}
				// ...and demonstrably sometimes worse.
				if gotW > want+1e-6 || (math.IsInf(gotW, 1) && !math.IsInf(want, 1)) {
					overestimates++
				}
			}
		}
	}
	if overestimates == 0 {
		t.Fatal("expected the witness flavor to overestimate at least one distance under heavy closures (the CCH motivation); found none")
	}
}

func TestSizeAccounting(t *testing.T) {
	g := gridCity(10, 10)
	pre := Preprocess(g)
	if pre.NumPairs() == 0 || pre.NumTriangles() == 0 {
		t.Fatalf("grid topology: %d pairs, %d triangles, want both positive", pre.NumPairs(), pre.NumTriangles())
	}
	h := pre.Customize(g.CopyWeights())
	if h.Kind() != Kind {
		t.Fatalf("kind = %q, want %q", h.Kind(), Kind)
	}
	if h.NumArcs() != 2*pre.NumPairs() {
		t.Fatalf("arcs %d != 2×%d pairs", h.NumArcs(), pre.NumPairs())
	}
}
