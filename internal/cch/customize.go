package cch

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ch"
)

// Config tunes one customization pass. The zero value is the serving
// default: geometric order, worker count from GOMAXPROCS, basic
// (non-perfect) output.
type Config struct {
	// Order selects the nested-dissection pipeline of the underlying
	// preprocessing. Only consulted by BuildWith (which resolves the
	// shared preprocessing); CustomizeWith on an existing Preprocessed
	// ignores it — the order is baked into the contraction.
	Order OrderConfig
	// Workers bounds the per-level fan-out of the triangle relaxation.
	// 0 (or negative) selects runtime.GOMAXPROCS(0); 1 forces the serial
	// sweep. Any value produces bit-identical arcs — levels only group
	// independent pairs — so parallelism is purely a latency knob.
	Workers int
	// Perfect enables the descending perfect-customization post-pass:
	// arcs whose basic weight is strictly dominated by a path through an
	// intermediate or upper triangle are marked inert, and queries,
	// PHAST sweeps and RPHAST selections skip them. Roughly doubles
	// customization cost; shrinks every subsequent sweep.
	Perfect bool
	// BidirQuery keeps the bidirectional upward Dijkstra for
	// point-to-point queries instead of the default elimination-tree
	// engine. Both return bit-identical distances; the toggle exists for
	// ablations and the -query flag.
	BidirQuery bool
}

// arcBuf is one generation's output storage: the packed arc array (and,
// for perfect customizations, the inert mask) a customized runtime hands
// to queries. Buffers are double-buffered on the Preprocessed — leased to
// at most one in-flight runtime at a time and reclaimed only after the
// garbage collector proves that runtime unreachable, so a store swapping
// snapshots reuses its previous generation's storage without ever
// racing a query still reading it.
type arcBuf struct {
	arcs []ch.Arc
	// arcW mirrors arcs[i].Weight — the packed view the runtime's relax
	// loops read (ch.Runtime.WithArcsInert); filled by the same loop that
	// packs the final weights into the arc records.
	arcW   []float64
	inert  []bool
	leased atomic.Bool
}

// maxArcBufs bounds how many buffers a Preprocessed retains. Steady
// state needs current + in-build per weight store sharing the topology
// (two stores — public and private metric — is the common shape);
// beyond the bound, extra concurrent customizations fall back to
// untracked allocations rather than queueing.
const maxArcBufs = 8

// soaScratch holds the flat structure-of-arrays weight vectors the
// triangle loops run over: 16 bytes per pair touched in the hot loop
// instead of two 40-byte ch.Arc records. perfUp/perfDown are allocated
// on first perfect customization only.
type soaScratch struct {
	upW, downW       []float64
	perfUp, perfDown []float64
}

// acquireBuf leases a free buffer, or allocates one (tracked while under
// the bound). withInert sizes the inert mask lazily: basic
// customizations never pay for it.
func (p *Preprocessed) acquireBuf(withInert bool) *arcBuf {
	P := len(p.lo)
	p.bufMu.Lock()
	var buf *arcBuf
	for _, b := range p.bufs {
		if b.leased.CompareAndSwap(false, true) {
			buf = b
			break
		}
	}
	if buf == nil {
		buf = &arcBuf{arcs: make([]ch.Arc, 2*P), arcW: make([]float64, 2*P)}
		buf.leased.Store(true)
		if len(p.bufs) < maxArcBufs {
			p.bufs = append(p.bufs, buf)
		}
	}
	p.bufMu.Unlock()
	if withInert && buf.inert == nil {
		buf.inert = make([]bool, 2*P)
	}
	return buf
}

// Customize instantiates the preprocessed topology for one weight vector
// with the default Config: every slot starts at its cheapest original
// edge (+Inf when none), then the lower-triangle relaxation runs level
// by level (fanned over GOMAXPROCS workers when levels are wide enough),
// recording winning decompositions so shortcut arcs unpack to original
// edge sequences. The result is exact for arbitrary weights — congestion
// of any magnitude, +Inf closures — and each call is independent, so a
// serving layer can customize in the background and swap atomically.
func (p *Preprocessed) Customize(weights []float64) ch.Hierarchy {
	return p.CustomizeWith(weights, Config{})
}

// CustomizeWith is Customize with explicit worker and perfect-pass
// control. All configurations produce bit-identical basic arcs; Perfect
// additionally marks strictly dominated arcs inert (weights and
// unpacking untouched, so route sets are unchanged too).
func (p *Preprocessed) CustomizeWith(weights []float64, cfg Config) ch.Hierarchy {
	P := len(p.lo)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	buf := p.acquireBuf(cfg.Perfect)
	arcs := buf.arcs
	sc := p.soa.Get().(*soaScratch)
	upW, downW := sc.upW, sc.downW

	// Metric init: cheapest original edge per directed slot. Weights live
	// in the SoA vectors until the pack step; arcs carry heads and
	// unpacking info from the start.
	inf := math.Inf(1)
	for i := 0; i < P; i++ {
		up := ch.Arc{To: p.hi[i], Weight: inf, Orig: -1, Skip1: -1, Skip2: -1}
		wu := inf
		for _, e := range p.upEdges[p.upOff[i]:p.upOff[i+1]] {
			if weights[e] < wu {
				wu = weights[e]
				up.Orig = e
			}
		}
		down := ch.Arc{To: p.lo[i], Weight: inf, Orig: -1, Skip1: -1, Skip2: -1}
		wd := inf
		for _, e := range p.downEdges[p.downOff[i]:p.downOff[i+1]] {
			if weights[e] < wd {
				wd = weights[e]
				down.Orig = e
			}
		}
		upW[i], downW[i] = wu, wd
		arcs[2*i], arcs[2*i+1] = up, down
	}

	// Triangle relaxation. Skip arcs record the winning decomposition in
	// path order: up (lo→hi) via z is lo→z then z→hi; down (hi→lo) is
	// hi→z then z→lo. The up arc of pair q is arc 2q, the down arc 2q+1.
	// A pair's relaxation writes only its own two slots and reads only
	// strictly lower levels, so the level grouping makes any execution
	// order within a level — serial ascending included — produce
	// bit-identical arcs.
	relax := func(pairs []int32) {
		for _, i := range pairs {
			up, down := &arcs[2*i], &arcs[2*i+1]
			wu, wd := upW[i], downW[i]
			for k := p.triOff[i]; k < p.triOff[i+1]; k++ {
				za, zb := p.triLoSide[k], p.triHiSide[k]
				if c := downW[za] + upW[zb]; c < wu {
					wu = c
					up.Orig = -1
					up.Skip1, up.Skip2 = 2*za+1, 2*zb
				}
				if c := downW[zb] + upW[za]; c < wd {
					wd = c
					down.Orig = -1
					down.Skip1, down.Skip2 = 2*zb+1, 2*za
				}
			}
			upW[i], downW[i] = wu, wd
		}
	}
	if workers == 1 {
		// Serial fast path: plain ascending pair order streams the
		// triangle arrays sequentially instead of hopping through the
		// level permutation — same arcs, much friendlier cache behavior.
		for i := int32(0); i < int32(P); i++ {
			up, down := &arcs[2*i], &arcs[2*i+1]
			wu, wd := upW[i], downW[i]
			for k := p.triOff[i]; k < p.triOff[i+1]; k++ {
				za, zb := p.triLoSide[k], p.triHiSide[k]
				if c := downW[za] + upW[zb]; c < wu {
					wu = c
					up.Orig = -1
					up.Skip1, up.Skip2 = 2*za+1, 2*zb
				}
				if c := downW[zb] + upW[za]; c < wd {
					wd = c
					down.Orig = -1
					down.Skip1, down.Skip2 = 2*zb+1, 2*za
				}
			}
			upW[i], downW[i] = wu, wd
		}
	} else {
		// parallelGrain is the minimum number of pairs per worker that
		// makes a goroutine handoff worth its latency; narrower levels
		// run inline.
		const parallelGrain = 512
		for L := 1; L < p.NumLevels(); L++ { // level 0 has no triangles
			pairs := p.levelPairs[p.levelOff[L]:p.levelOff[L+1]]
			chunks := len(pairs) / parallelGrain
			if chunks > workers {
				chunks = workers
			}
			if chunks <= 1 {
				relax(pairs)
				continue
			}
			size := (len(pairs) + chunks - 1) / chunks
			var wg sync.WaitGroup
			for c := 0; c < chunks; c++ {
				lo := c * size
				hi := lo + size
				if hi > len(pairs) {
					hi = len(pairs)
				}
				wg.Add(1)
				go func(ps []int32) {
					defer wg.Done()
					relax(ps)
				}(pairs[lo:hi])
			}
			wg.Wait()
		}
	}

	// Pack the final weights back into the arc records and the packed
	// weight view the relax loops read.
	arcW := buf.arcW
	for i := 0; i < P; i++ {
		arcs[2*i].Weight = upW[i]
		arcs[2*i+1].Weight = downW[i]
		arcW[2*i] = upW[i]
		arcW[2*i+1] = downW[i]
	}

	var inert []bool
	if cfg.Perfect {
		inert = p.perfectPass(sc, buf)
	}

	p.soa.Put(sc)

	p.mu.Lock()
	tmpl := p.template
	p.mu.Unlock()
	if tmpl == nil {
		rt := ch.NewRuntime(p.g, Kind, p.rank, p.arcFrom, arcs, nil)
		p.mu.Lock()
		if p.template == nil {
			// Cache only the shared adjacency (arcs nilled): the template
			// exists for WithArcsInert, and pinning one customization's
			// full arc array would hold megabytes per city for the
			// process lifetime.
			p.template = rt.WithArcs(nil)
		}
		tmpl = p.template
		p.mu.Unlock()
	}
	rt := tmpl.WithArcsInert(arcs, arcW, inert).WithCustomize(func(w []float64) ch.Hierarchy {
		return p.CustomizeWith(w, cfg)
	})
	if !cfg.BidirQuery {
		// The chordal supergraph's upward neighborhoods are cliques, so the
		// elimination tree carries the whole upward search space: queries
		// on this runtime walk root paths instead of running a heap.
		rt = rt.WithElimTree(p.elim)
	}
	// The runtime owns the buffer for its lifetime; the finalizer returns
	// it to the free list once no query can possibly read it anymore.
	// (A deterministic release hook would reclaim earlier, but only the
	// collector can prove in-flight queries on a swapped-out generation
	// are gone.)
	b := buf
	runtime.SetFinalizer(rt, func(*ch.Runtime) { b.leased.Store(false) })
	return rt
}

// perfectPass runs perfect customization: a descending sweep that, per
// lower triangle {z, a, b} of pair {a, b}, relaxes the four arcs
// incident to z through the pair's (already exact) arcs —
//
//	z→b ≤ z→a + a→b    b→z ≤ b→a + a→z
//	z→a ≤ z→b + b→a    a→z ≤ a→b + b→z
//
// Processing pairs in descending index order (descending rank of the
// lower endpoint), every pair's own arcs are exact shortest-path
// distances by the time its triangles are applied: all writes to a pair
// come from strictly higher groups, and the first-hop decomposition
// dist(a,b) = min over upward neighbours v of a of
// (basic w(a→v) + dist(v,b)) is realized by the triangle {a, v, b} (the
// upward neighbourhood of a is a clique, so that triangle exists and is
// applied while its upper pair is exact). The pass therefore computes,
// in perfUp/perfDown, the true directed distances between every pair's
// endpoints — against which an arc whose basic weight is strictly
// greater is provably useless (every shortest up-down path consists of
// arcs whose weight equals their endpoints' distance) and marked inert.
// Basic weights and unpacking stay untouched: distances, routes and
// unpackings are byte-identical, only the work to compute them shrinks.
//
// The write pattern (triangles of different pairs update the same
// z-incident arcs) is why this pass stays serial rather than
// level-parallel.
func (p *Preprocessed) perfectPass(sc *soaScratch, buf *arcBuf) []bool {
	P := len(p.lo)
	if sc.perfUp == nil {
		sc.perfUp = make([]float64, P)
		sc.perfDown = make([]float64, P)
	}
	perfUp, perfDown := sc.perfUp, sc.perfDown
	copy(perfUp, sc.upW[:P])
	copy(perfDown, sc.downW[:P])
	for i := P - 1; i >= 0; i-- {
		pu, pd := perfUp[i], perfDown[i]
		for k := p.triOff[i]; k < p.triOff[i+1]; k++ {
			za, zb := p.triLoSide[k], p.triHiSide[k]
			if c := perfUp[za] + pu; c < perfUp[zb] {
				perfUp[zb] = c
			}
			if c := pd + perfDown[za]; c < perfDown[zb] {
				perfDown[zb] = c
			}
			if c := perfUp[zb] + pd; c < perfUp[za] {
				perfUp[za] = c
			}
			if c := pu + perfDown[zb]; c < perfDown[za] {
				perfDown[za] = c
			}
		}
	}
	// Strict domination keeps equal-weight arcs alive, which is what
	// preserves tie-breaking (and with it byte-identical parents) in
	// every downstream sweep. +Inf slots — topology pairs the metric
	// gives no realizing path — can never win a relaxation either, so
	// perfect mode retires them from the sweeps too.
	inert := buf.inert
	upW, downW := sc.upW, sc.downW
	for i := 0; i < P; i++ {
		inert[2*i] = perfUp[i] < upW[i] || math.IsInf(upW[i], 1)
		inert[2*i+1] = perfDown[i] < downW[i] || math.IsInf(downW[i], 1)
	}
	return inert
}
