package cch

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ch"
	"repro/internal/graph"
	"repro/internal/sp"
)

// perturbedWeights returns a ±50% multiplicative perturbation of the base
// weights with the given fraction of random +Inf closures — the snapshot
// family the customization contract is stated over.
func perturbedWeights(g *graph.Graph, seed int64, closureFrac float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := g.CopyWeights()
	for i := range w {
		w[i] *= 0.5 + rng.Float64()
	}
	for i := range w {
		if rng.Float64() < closureFrac {
			w[i] = math.Inf(1)
		}
	}
	return w
}

// TestLevelParallelBitIdentical pins the customization's parallelization
// contract: the level-parallel triangle relaxation must produce arcs
// bit-identical to the serial sweep — same weights (to the bit), same
// winning decompositions — on every metric, including heavy closures.
// Anything weaker would make worker count observable in routes.
func TestLevelParallelBitIdentical(t *testing.T) {
	for gi, g := range []*graph.Graph{gridCity(14, 14), randomCity(21, 220)} {
		pre := Preprocess(g)
		for round := 0; round < 3; round++ {
			frac := 0.0
			if round == 2 {
				frac = 0.20 // a 20%-closure snapshot shatters the network
			}
			w := perturbedWeights(g, int64(gi*10+round), frac)
			serial := pre.CustomizeWith(w, Config{Workers: 1}).(*ch.Runtime)
			par := pre.CustomizeWith(w, Config{Workers: 4}).(*ch.Runtime)
			sa, pa := serial.Arcs(), par.Arcs()
			if len(sa) != len(pa) {
				t.Fatalf("graph %d round %d: arc count %d vs %d", gi, round, len(sa), len(pa))
			}
			for i := range sa {
				if sa[i] != pa[i] {
					t.Fatalf("graph %d round %d: arc %d differs: serial %+v (bits %x) parallel %+v (bits %x)",
						gi, round, i, sa[i], math.Float64bits(sa[i].Weight), pa[i], math.Float64bits(pa[i].Weight))
				}
			}
		}
	}
}

// TestPerfectCustomization checks the perfect post-pass end to end: the
// basic arcs are untouched (weights, unpacking — so routes cannot move),
// a nonzero arc fraction is proved inert, the tree builder's sweeps
// actually shrink, distances stay exact, and full PHAST trees — distances
// and parents — are identical with and without the pruning.
func TestPerfectCustomization(t *testing.T) {
	for gi, g := range []*graph.Graph{gridCity(12, 12), randomCity(33, 200)} {
		pre := Preprocess(g)
		w := perturbedWeights(g, int64(100+gi), 0.20)
		basic := pre.CustomizeWith(w, Config{}).(*ch.Runtime)
		perfect := pre.CustomizeWith(w, Config{Perfect: true}).(*ch.Runtime)

		ba, pa := basic.Arcs(), perfect.Arcs()
		for i := range ba {
			if ba[i] != pa[i] {
				t.Fatalf("graph %d: perfect pass changed arc %d: %+v vs %+v", gi, i, ba[i], pa[i])
			}
		}
		if basic.InertCount() != 0 {
			t.Fatalf("graph %d: basic customization reports %d inert arcs", gi, basic.InertCount())
		}
		inert := perfect.InertCount()
		if inert == 0 {
			t.Fatalf("graph %d: perfect customization proved nothing inert", gi)
		}

		btb, ptb := basic.NewTreeBuilder(), perfect.NewTreeBuilder()
		bf, bb := btb.NumSweepArcs()
		pf, pb := ptb.NumSweepArcs()
		if pf+pb >= bf+bb {
			t.Fatalf("graph %d: perfect sweeps not smaller: %d+%d vs basic %d+%d (inert %d)", gi, pf, pb, bf, bb, inert)
		}
		t.Logf("graph %d: %d/%d arcs inert, sweep arcs %d -> %d", gi, inert, len(pa), bf+bb, pf+pb)

		checkDistances(t, g, perfect, w, 40, int64(7*gi+1))

		// Inert arcs are strictly dominated, so they can never achieve a
		// sweep minimum — parents (not just distances) must match the
		// unpruned trees exactly, ties included.
		rng := rand.New(rand.NewSource(int64(gi)))
		for q := 0; q < 5; q++ {
			root := graph.NodeID(rng.Intn(g.NumNodes()))
			for _, dir := range []sp.Direction{sp.Forward, sp.Backward} {
				bt := btb.BuildTree(root, dir)
				pt := ptb.BuildTree(root, dir)
				for v := range bt.Dist {
					if math.Float64bits(bt.Dist[v]) != math.Float64bits(pt.Dist[v]) || bt.Parent[v] != pt.Parent[v] {
						t.Fatalf("graph %d root %d dir %v: tree differs at %d: (%f, %d) vs (%f, %d)",
							gi, root, dir, v, bt.Dist[v], bt.Parent[v], pt.Dist[v], pt.Parent[v])
					}
				}
			}
		}
	}
}

// TestConcurrentCustomizeDistinctBuffers is the race smoke for the
// double-buffered output storage: many goroutines customizing one shared
// Preprocessed concurrently must each get their own arc buffer (never a
// buffer another in-flight customization is still writing), and every
// produced hierarchy must answer exactly for its own metric. Run under
// -race this also proves the lease protocol publishes safely.
func TestConcurrentCustomizeDistinctBuffers(t *testing.T) {
	g := randomCity(31, 150)
	pre := Preprocess(g)
	const workers = 8
	hs := make([]*ch.Runtime, workers)
	ws := make([][]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i] = perturbedWeights(g, int64(i), 0.05)
			hs[i] = pre.CustomizeWith(ws[i], Config{Perfect: i%2 == 0}).(*ch.Runtime)
		}(i)
	}
	wg.Wait()
	// All runtimes are still referenced, so no buffer may be shared.
	seen := map[*ch.Arc]int{}
	for i, h := range hs {
		p := &h.Arcs()[0]
		if j, dup := seen[p]; dup {
			t.Fatalf("customizations %d and %d share an arc buffer", j, i)
		}
		seen[p] = i
	}
	for i, h := range hs {
		checkDistances(t, g, h, ws[i], 15, int64(900+i))
	}
}

// TestPreprocessSharedBounded pins the preprocessing memo's contract:
// repeated customizations of one graph share a single Preprocessed (the
// expensive contraction is paid once), and the memo holds at most
// sharedPreCap graphs — a planner churning through many graphs cannot
// pin unbounded triangle lists in memory.
func TestPreprocessSharedBounded(t *testing.T) {
	g := gridCity(8, 8)
	p1 := PreprocessShared(g)
	if p2 := PreprocessShared(g); p2 != p1 {
		t.Fatalf("PreprocessShared re-preprocessed a cached graph")
	}
	for i := 0; i < sharedPreCap+2; i++ {
		PreprocessShared(randomCity(int64(400+i), 60))
	}
	sharedMu.Lock()
	n := len(sharedPre)
	ord := len(sharedOrder)
	sharedMu.Unlock()
	if n > sharedPreCap || ord != n {
		t.Fatalf("memo holds %d entries (order list %d), cap %d", n, ord, sharedPreCap)
	}
}

// TestCustomizeConfigSurvivesRecustomize checks that the Customize hook a
// runtime carries re-applies its original Config: a perfect hierarchy
// stays perfect across weight swaps (the serving layer re-customizes
// through the seam and never re-states the config).
func TestCustomizeConfigSurvivesRecustomize(t *testing.T) {
	g := gridCity(10, 10)
	pre := Preprocess(g)
	h := pre.CustomizeWith(g.CopyWeights(), Config{Perfect: true})
	w2 := perturbedWeights(g, 5, 0.10)
	h2 := h.Customize(w2).(*ch.Runtime)
	if h2.InertCount() == 0 {
		t.Fatalf("re-customization dropped the perfect config")
	}
	checkDistances(t, g, h2, w2, 30, 77)
}

// TestLevelsCoverAllPairs sanity-checks the dependency leveling: the
// level CSR is a partition of all pairs, level 0 is exactly the
// triangle-free pairs, and every triangle's side pairs sit at strictly
// lower levels than the pair they feed.
func TestLevelsCoverAllPairs(t *testing.T) {
	g := randomCity(41, 180)
	pre := Preprocess(g)
	P := pre.NumPairs()
	level := make([]int32, P)
	seen := make([]bool, P)
	for l := 0; l < pre.NumLevels(); l++ {
		for _, i := range pre.levelPairs[pre.levelOff[l]:pre.levelOff[l+1]] {
			if seen[i] {
				t.Fatalf("pair %d listed twice", i)
			}
			seen[i] = true
			level[i] = int32(l)
		}
	}
	for i := 0; i < P; i++ {
		if !seen[i] {
			t.Fatalf("pair %d missing from level CSR", i)
		}
		hasTri := pre.triOff[i] < pre.triOff[i+1]
		if (level[i] == 0) == hasTri {
			t.Fatalf("pair %d: level %d with hasTriangles=%v", i, level[i], hasTri)
		}
		for k := pre.triOff[i]; k < pre.triOff[i+1]; k++ {
			if level[pre.triLoSide[k]] >= level[i] || level[pre.triHiSide[k]] >= level[i] {
				t.Fatalf("pair %d at level %d depends on pair at same or higher level", i, level[i])
			}
		}
	}
	widths := pre.LevelWidths()
	sum := 0
	for _, w := range widths {
		sum += w
	}
	if sum != P {
		t.Fatalf("level widths sum %d != %d pairs", sum, P)
	}
}
