package cch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ch"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/sp"
)

// twoComponentCity builds two disjoint grid components — queries across
// the gap are unreachable in both directions.
func twoComponentCity(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(2*rows*cols, 0)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(comp, r, c int) graph.NodeID { return graph.NodeID(comp*rows*cols + r*cols + c) }
	for comp := 0; comp < 2; comp++ {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				// 20km east keeps the components geometrically separate too.
				b.AddNode(geo.Offset(o, float64(r)*150, float64(comp)*20000+float64(c)*150))
			}
		}
	}
	for comp := 0; comp < 2; comp++ {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					b.AddEdge(graph.EdgeSpec{From: id(comp, r, c), To: id(comp, r, c+1), Class: graph.Residential, TwoWay: true})
				}
				if r+1 < rows {
					b.AddEdge(graph.EdgeSpec{From: id(comp, r, c), To: id(comp, r+1, c), Class: graph.Residential, TwoWay: true})
				}
			}
		}
	}
	return b.Build()
}

// TestElimTreeStructure pins the elimination tree's defining invariants
// on the preprocessed topology: the parent is the lowest-ranked upward
// neighbor, every parent outranks its child, depths increase by exactly
// one along parent pointers, and roots are exactly the nodes without
// chordal pairs.
func TestElimTreeStructure(t *testing.T) {
	for gi, g := range []*graph.Graph{gridCity(12, 12), randomCity(17, 200)} {
		pre := Preprocess(g)
		et := pre.ElimTree()
		if et == nil {
			t.Fatalf("graph %d: preprocessing built no elimination tree", gi)
		}
		rank := pre.rank
		if len(et.Parent) != g.NumNodes() || len(et.Depth) != g.NumNodes() {
			t.Fatalf("graph %d: tree sized %d/%d for %d nodes", gi, len(et.Parent), len(et.Depth), g.NumNodes())
		}
		// Recover each node's lowest-ranked upward neighbor from the raw
		// pair lists — the independent ground truth for Parent.
		minHi := make([]graph.NodeID, g.NumNodes())
		for v := range minHi {
			minHi[v] = graph.InvalidNode
		}
		for i, lo := range pre.lo {
			hi := pre.hi[i]
			if minHi[lo] == graph.InvalidNode || rank[hi] < rank[minHi[lo]] {
				minHi[lo] = hi
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			p := et.Parent[v]
			if p != minHi[v] {
				t.Fatalf("graph %d node %d: parent %d, lowest upward neighbor %d", gi, v, p, minHi[v])
			}
			if p == graph.InvalidNode {
				if et.Depth[v] != 0 {
					t.Fatalf("graph %d: root %d at depth %d", gi, v, et.Depth[v])
				}
				continue
			}
			if rank[p] <= rank[v] {
				t.Fatalf("graph %d node %d: parent %d does not outrank it (%d vs %d)", gi, v, p, rank[p], rank[v])
			}
			if et.Depth[v] != et.Depth[p]+1 {
				t.Fatalf("graph %d node %d: depth %d, parent depth %d", gi, v, et.Depth[v], et.Depth[p])
			}
		}
		if h := et.Height(); h <= 0 || h > g.NumNodes() {
			t.Fatalf("graph %d: height %d out of range", gi, h)
		}
		if d := et.AvgLeafDepth(); d < 0 || d >= float64(et.Height()) {
			t.Fatalf("graph %d: avg leaf depth %f vs height %d", gi, d, et.Height())
		}
	}
}

// TestElimVsBidijBitIdentical is the engine-equivalence contract behind
// the -query flag: the elimination-tree ascent and the bidirectional
// upward Dijkstra must return bit-identical distances on every metric —
// perturbations, heavy closures, perfect customization — so switching
// engines can never move a route or a matrix cell.
func TestElimVsBidijBitIdentical(t *testing.T) {
	for gi, g := range []*graph.Graph{gridCity(12, 12), randomCity(23, 200)} {
		pre := Preprocess(g)
		for round := 0; round < 3; round++ {
			w := perturbedWeights(g, int64(gi*10+round), 0.10*float64(round))
			elim := pre.CustomizeWith(w, Config{Perfect: round == 2}).(*ch.Runtime)
			bidij := pre.CustomizeWith(w, Config{Perfect: round == 2, BidirQuery: true}).(*ch.Runtime)
			if got := elim.QueryStats().Engine; got != "elimtree" {
				t.Fatalf("default engine %q, want elimtree", got)
			}
			if got := bidij.QueryStats().Engine; got != "bidij" {
				t.Fatalf("BidirQuery engine %q, want bidij", got)
			}
			rng := rand.New(rand.NewSource(int64(100*gi + round)))
			for q := 0; q < 60; q++ {
				s := graph.NodeID(rng.Intn(g.NumNodes()))
				dst := graph.NodeID(rng.Intn(g.NumNodes()))
				de, db := elim.Dist(s, dst), bidij.Dist(s, dst)
				if math.Float64bits(de) != math.Float64bits(db) {
					t.Fatalf("graph %d round %d (%d->%d): elimtree %v (bits %x) vs bidij %v (bits %x)",
						gi, round, s, dst, de, math.Float64bits(de), db, math.Float64bits(db))
				}
			}
			qs := elim.QueryStats()
			if qs.Queries == 0 || qs.AscentNodes == 0 {
				t.Fatalf("graph %d round %d: counters did not move: %+v", gi, round, qs)
			}
		}
	}
}

// TestElimQueryClosurePublishSwap mirrors the serving layer's live-ban
// flow on the elimination-tree engine: a node whose incident edges are
// all closed must be unreachable in both directions after the publish
// swap, stay exactly answerable everywhere else, and come back when the
// ban lifts — all through the Customize seam on one runtime chain.
func TestElimQueryClosurePublishSwap(t *testing.T) {
	g := gridCity(10, 10)
	base := g.CopyWeights()
	h := Build(g, base)
	checkDistances(t, g, h, base, 25, 1)

	victim := graph.NodeID(55)
	banned := g.CopyWeights()
	for _, e := range g.OutEdges(victim) {
		banned[e] = math.Inf(1)
	}
	for _, e := range g.InEdges(victim) {
		banned[e] = math.Inf(1)
	}
	h2 := h.Customize(banned)
	for _, other := range []graph.NodeID{0, 42, 99} {
		if d := h2.Dist(other, victim); !math.IsInf(d, 1) {
			t.Fatalf("banned node still reachable: %d->%d = %f", other, victim, d)
		}
		if d := h2.Dist(victim, other); !math.IsInf(d, 1) {
			t.Fatalf("banned node still escapes: %d->%d = %f", victim, other, d)
		}
		if edges, d := h2.Path(other, victim); edges != nil || !math.IsInf(d, 1) {
			t.Fatalf("Path over ban returned %d edges at %f", len(edges), d)
		}
	}
	checkDistances(t, g, h2, banned, 25, 2)

	h3 := h2.Customize(base)
	if d := h3.Dist(0, victim); math.IsInf(d, 1) {
		t.Fatalf("lifted ban: %d->%d still unreachable", 0, victim)
	}
	checkDistances(t, g, h3, base, 25, 3)
}

// TestElimQueryEdgeCases covers s==t and cross-component queries: zero
// distance with an empty path for the former, +Inf with a nil path for
// the latter — on both plain and perfect customizations.
func TestElimQueryEdgeCases(t *testing.T) {
	g := twoComponentCity(6, 6)
	w := g.CopyWeights()
	pre := Preprocess(g)
	for _, perfect := range []bool{false, true} {
		h := pre.CustomizeWith(w, Config{Perfect: perfect})
		for _, v := range []graph.NodeID{0, 17, 40} {
			if d := h.Dist(v, v); d != 0 {
				t.Fatalf("perfect=%v: Dist(%d,%d) = %f", perfect, v, v, d)
			}
			if edges, d := h.Path(v, v); d != 0 || len(edges) != 0 {
				t.Fatalf("perfect=%v: Path(%d,%d) = %d edges at %f", perfect, v, v, len(edges), d)
			}
		}
		half := graph.NodeID(g.NumNodes() / 2)
		for _, q := range [][2]graph.NodeID{{0, half}, {half, 0}, {half - 1, half + 1}} {
			if d := h.Dist(q[0], q[1]); !math.IsInf(d, 1) {
				t.Fatalf("perfect=%v: cross-component Dist(%d,%d) = %f", perfect, q[0], q[1], d)
			}
			if edges, d := h.Path(q[0], q[1]); edges != nil || !math.IsInf(d, 1) {
				t.Fatalf("perfect=%v: cross-component Path(%d,%d) = %d edges at %f", perfect, q[0], q[1], len(edges), d)
			}
		}
		// Within-component queries stay exact.
		checkDistances(t, g, h, w, 30, 11)
	}
}

// TestElimScratchAcrossRecustomize is the stale-scratch guard: runtimes
// from successive customizations of one chain answer interleaved queries
// without bleeding labels across each other or across their own earlier
// queries (workspace epochs, not clearing, are what isolates them), and
// each runtime's query counters start fresh.
func TestElimScratchAcrossRecustomize(t *testing.T) {
	g := randomCity(29, 150)
	w1 := perturbedWeights(g, 1, 0.05)
	w2 := perturbedWeights(g, 2, 0.15)
	h1 := Build(g, w1).(*ch.Runtime)
	checkDistances(t, g, h1, w1, 10, 21)
	if h1.QueryStats().Queries == 0 {
		t.Fatalf("h1 counters did not move")
	}
	h2 := h1.Customize(w2).(*ch.Runtime)
	if got := h2.QueryStats().Queries; got != 0 {
		t.Fatalf("re-customized runtime inherited %d queries", got)
	}
	// Interleave: the same workspace pool serves both runtimes.
	rng := rand.New(rand.NewSource(31))
	for q := 0; q < 30; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		h := h1
		w := w1
		if q%2 == 1 {
			h, w = h2, w2
		}
		_, want := sp.ShortestPath(g, w, s, dst)
		got := h.Dist(s, dst)
		if math.IsInf(want, 1) != math.IsInf(got, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > 1e-6) {
			t.Fatalf("query %d (%d->%d): got %v want %v", q, s, dst, got, want)
		}
	}
}

// TestAscentDistsMatchesDist pins the batched multi-source ascent the
// matrix engine's bound computation runs on: one shared backward ascent
// must yield, per source, exactly the bits Dist would — including s==t
// zeros and unreachable +Inf — and the capability must report false on
// a bidij runtime so callers fall back.
func TestAscentDistsMatchesDist(t *testing.T) {
	g := randomCity(37, 180)
	w := perturbedWeights(g, 3, 0.10)
	pre := Preprocess(g)
	elim := pre.CustomizeWith(w, Config{}).(*ch.Runtime)
	bidij := pre.CustomizeWith(w, Config{BidirQuery: true}).(*ch.Runtime)

	rng := rand.New(rand.NewSource(41))
	sources := make([]graph.NodeID, 12)
	for i := range sources {
		sources[i] = graph.NodeID(rng.Intn(g.NumNodes()))
	}
	out := make([]float64, len(sources))
	for q := 0; q < 10; q++ {
		target := graph.NodeID(rng.Intn(g.NumNodes()))
		if q == 0 {
			target = sources[0] // force an s==t cell
		}
		if !elim.AscentDists(sources, target, out) {
			t.Fatalf("elimtree runtime declined AscentDists")
		}
		for i, s := range sources {
			want := elim.Dist(s, target)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("target %d source %d: batched %v (bits %x) vs Dist %v (bits %x)",
					target, s, out[i], math.Float64bits(out[i]), want, math.Float64bits(want))
			}
		}
	}
	if bidij.AscentDists(sources, sources[0], out) {
		t.Fatalf("bidij runtime accepted AscentDists")
	}
}

// TestElimDistWarmZeroAlloc pins the hot path's allocation budget: a warm
// elimination-tree Dist allocates nothing — the workspace comes from the
// pool and the ascents walk parent pointers with no per-query state.
func TestElimDistWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := gridCity(12, 12)
	h := Build(g, g.CopyWeights())
	s, dst := graph.NodeID(5), graph.NodeID(138)
	h.Dist(s, dst) // warm the pool
	if allocs := testing.AllocsPerRun(50, func() { h.Dist(s, dst) }); allocs != 0 {
		t.Fatalf("warm elimination-tree Dist allocates %.1f/op", allocs)
	}
}
