package cch

// This file implements the max-flow half of the flow-based separator
// pipeline: a unit-capacity BFS-phase Dinic on the standard split-node
// transform, computing minimum *vertex* cuts between the two terminal
// blocks an inertial-flow seeding picks at each nested-dissection split.
//
// The construction (Menger via max-flow): every node v of the current
// partition becomes two flow nodes, v_in and v_out, joined by an internal
// arc of capacity 1 — cutting that arc is removing v. Every adjacency
// u ~ v of the induced subgraph (direction ignored: a separator must
// cover cut edges of either direction, because chordal fill-in is
// undirected) becomes two arcs u_out -> v_in and v_out -> u_in of
// effectively infinite capacity, so a minimum cut can only ever consist
// of internal arcs — a set of vertices. A super source feeds every
// source terminal's out-node and every sink terminal's in-node drains to
// a super sink, both over infinite arcs, which makes terminals uncuttable:
// the min cut is forced into the free middle corridor between the
// terminal blocks, which is exactly the balance guarantee inertial flow
// is built on.
//
// After the flow is maximum the residual graph encodes *every* minimum
// cut; the two canonical ones are read off the reachability sets:
//
//   - source side: S = nodes residual-reachable from the super source.
//     v is cut iff v_in ∈ S but v_out ∉ S (its internal arc is the
//     saturated boundary); v is on the A side iff v_out ∈ S.
//   - sink side: T = nodes residual-co-reachable to the super sink.
//     v is cut iff v_out ∈ T but v_in ∉ T; on the B side iff v_in ∈ T.
//
// Both cuts have exactly max-flow vertices (max-flow min-cut); they
// differ in where they sit, and with them in how balanced the two
// interiors come out. The dissector picks whichever is more balanced —
// "the most balanced minimal cut via the residual reachability sets".
//
// All state lives in a flowScratch owned by one dissector goroutine and
// reused across every split that goroutine processes: after the first
// (largest, root-level) split the arrays are at capacity and a run
// allocates nothing.

import "repro/internal/graph"

// flowInf is the capacity of the uncuttable arcs (adjacency and terminal
// attachments). Any value exceeding the node count works; flows never
// get near it.
const flowInf = int32(1) << 30

// Side labels minVertexCut leaves in flowScratch.side, indexed by
// position in the set it was called with.
const (
	flowSideA   int8 = iota // source-side interior
	flowSideCut             // separator
	flowSideB               // sink-side interior
)

// flowScratch is the reusable zero-alloc state of one dissector's Dinic
// runs. Flow nodes are numbered 2i (in) and 2i+1 (out) for the node at
// position i of the current set, with the super source at 2m and the
// super sink at 2m+1. Arcs are stored as parallel arrays chained through
// per-node head/next lists; the reverse arc of arc a is a^1.
type flowScratch struct {
	// local maps graph node -> position in the current set. Only entries
	// of current set members are valid; they are rewritten at the start
	// of every run, so no reset pass is needed.
	local []int32
	// head/next/to/rcap are the arc lists. head is indexed by flow node;
	// to, next and rcap by arc.
	head, next, to, rcap []int32
	// level doubles as the Dinic BFS level and, after the final (failed)
	// phase, as the residual source-reachability marking (level >= 0).
	level []int32
	// iter is the current-arc pointer of the blocking-flow DFS.
	iter []int32
	// queue is the BFS ring buffer.
	queue []int32
	// coreach marks residual co-reachability to the super sink (the
	// sink-side min cut's defining set).
	coreach []bool
	// side receives the chosen cut's labels, indexed by set position.
	side []int8
}

// ensure sizes every array for a graph of n nodes and a set of m members.
// The first call (the root split, m close to n) pays the allocations;
// later splits are strictly smaller and reuse everything.
func (f *flowScratch) ensure(n, m int) {
	if len(f.local) < n {
		f.local = make([]int32, n)
	}
	fn := 2*m + 2
	if len(f.head) < fn {
		f.head = make([]int32, fn)
		f.level = make([]int32, fn)
		f.iter = make([]int32, fn)
		f.queue = make([]int32, fn)
		f.coreach = make([]bool, fn)
	}
	if len(f.side) < m {
		f.side = make([]int8, m)
	}
}

// addArc appends a directed arc u -> v of the given capacity and its
// zero-capacity reverse, keeping the a^1 pairing invariant.
func (f *flowScratch) addArc(u, v, c int32) {
	f.to = append(f.to, v)
	f.rcap = append(f.rcap, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = int32(len(f.to) - 1)
	f.to = append(f.to, u)
	f.rcap = append(f.rcap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = int32(len(f.to) - 1)
}

// minVertexCut computes a minimum vertex cut of the subgraph induced by
// set that separates the first nSrc positions (the source terminal
// block) from the last nSink positions (the sink terminal block). set is
// expected sorted along the split axis, so the terminal blocks are the
// geometric extremes. Membership in the induced subgraph is tested via
// setID[u] == aID || setID[u] == bID — the side stamps the dissector has
// already issued for this split.
//
// The search aborts as soon as the flow reaches bound (the incumbent
// separator's size): a cut at least that large cannot improve on the
// fallback, so the remaining phases would be wasted work. On abort ok is
// false and side labels are not written.
//
// On success it returns the cut size, and side holds one label per set
// position: the more balanced of the source-side and sink-side minimum
// cuts, ties broken toward the source side for determinism.
func (f *flowScratch) minVertexCut(g *graph.Graph, set []graph.NodeID, nSrc, nSink int, setID []int32, aID, bID int32, bound int32) (int, bool) {
	m := len(set)
	f.ensure(g.NumNodes(), m)
	fn := 2*m + 2
	src, sink := int32(2*m), int32(2*m+1)
	for i := 0; i < fn; i++ {
		f.head[i] = -1
	}
	f.to = f.to[:0]
	f.next = f.next[:0]
	f.rcap = f.rcap[:0]
	for i, v := range set {
		f.local[v] = int32(i)
	}
	for i, v := range set {
		in, out := int32(2*i), int32(2*i+1)
		f.addArc(in, out, 1)
		if i < nSrc {
			f.addArc(src, out, flowInf)
		}
		if i >= m-nSink {
			f.addArc(in, sink, flowInf)
		}
		// Undirected adjacency: every directed edge contributes both
		// crossings. Iterating OutHeads of every member covers each edge
		// of the induced subgraph exactly once (its tail is a member).
		for _, u := range g.OutHeads(v) {
			if sid := setID[u]; sid != aID && sid != bID {
				continue // outside the current partition
			}
			j := f.local[u]
			f.addArc(out, 2*j, flowInf)
			f.addArc(2*j+1, in, flowInf)
		}
	}

	// BFS-phase Dinic. Unit internal capacities bound each phase's
	// augmentations by the eventual cut size, and the phase count by
	// O(sqrt(arcs)); the bound abort keeps hopeless splits cheap.
	flow := int32(0)
	for f.bfs(src, sink, fn) {
		copy(f.iter[:fn], f.head[:fn])
		for f.dfs(src, sink) {
			flow++
			if flow >= bound {
				return int(flow), false
			}
		}
	}

	// The final (failed) BFS left level >= 0 exactly on the nodes the
	// super source still reaches in the residual graph — the source-side
	// min cut's defining set. Compute the sink-side analogue by walking
	// residual arcs backwards from the super sink.
	for i := 0; i < fn; i++ {
		f.coreach[i] = false
	}
	f.coreach[sink] = true
	f.queue[0] = sink
	for qh, qt := 0, 1; qh < qt; {
		v := f.queue[qh]
		qh++
		for a := f.head[v]; a >= 0; a = f.next[a] {
			// Residual arc w -> v exists iff the partner of the v -> w
			// record still has capacity.
			if w := f.to[a]; f.rcap[a^1] > 0 && !f.coreach[w] {
				f.coreach[w] = true
				f.queue[qt] = w
				qt++
			}
		}
	}

	// Balance of the two canonical cuts. Terminal blocks are uncuttable
	// and stick to their own side, so both interiors always keep at
	// least their terminal quarter — the balance corridor.
	nA, cutA := 0, 0
	nB2, cutB := 0, 0
	for i := 0; i < m; i++ {
		if f.level[2*i+1] >= 0 {
			nA++
		} else if f.level[2*i] >= 0 {
			cutA++
		}
		if f.coreach[2*i] {
			nB2++
		} else if f.coreach[2*i+1] {
			cutB++
		}
	}
	nB := m - nA - cutA
	nA2 := m - nB2 - cutB
	useSource := absInt(nA-nB) <= absInt(nA2-nB2)
	cut := cutA
	if !useSource {
		cut = cutB
	}
	for i := 0; i < m; i++ {
		if useSource {
			switch {
			case f.level[2*i+1] >= 0:
				f.side[i] = flowSideA
			case f.level[2*i] >= 0:
				f.side[i] = flowSideCut
			default:
				f.side[i] = flowSideB
			}
		} else {
			switch {
			case f.coreach[2*i]:
				f.side[i] = flowSideB
			case f.coreach[2*i+1]:
				f.side[i] = flowSideCut
			default:
				f.side[i] = flowSideA
			}
		}
	}
	return cut, true
}

// bfs builds the level graph of the current Dinic phase and reports
// whether the sink is still reachable.
func (f *flowScratch) bfs(src, sink int32, fn int) bool {
	level := f.level[:fn]
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	f.queue[0] = src
	for qh, qt := 0, 1; qh < qt; {
		v := f.queue[qh]
		qh++
		for a := f.head[v]; a >= 0; a = f.next[a] {
			if w := f.to[a]; f.rcap[a] > 0 && level[w] < 0 {
				level[w] = level[v] + 1
				f.queue[qt] = w
				qt++
			}
		}
	}
	return level[sink] >= 0
}

// dfs pushes one unit of blocking flow along the level graph, advancing
// the per-node current-arc pointers so exhausted branches are never
// revisited within a phase.
func (f *flowScratch) dfs(v, sink int32) bool {
	if v == sink {
		return true
	}
	for f.iter[v] >= 0 {
		a := f.iter[v]
		if w := f.to[a]; f.rcap[a] > 0 && f.level[w] == f.level[v]+1 && f.dfs(w, sink) {
			f.rcap[a]--
			f.rcap[a^1]++
			// Do not advance iter: the arc may have residual capacity
			// left for the next augmentation of this phase.
			return true
		}
		f.iter[v] = f.next[a]
	}
	return false
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
