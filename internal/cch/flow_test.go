package cch

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
)

// flowTestGraph builds a two-way road graph from an edge list on n
// nodes. Coordinates are a dummy line — minVertexCut never reads
// geometry; the inertial seeding happens in the caller via set order.
func flowTestGraph(n int, edges [][2]int) *graph.Graph {
	b := graph.NewBuilder(n, len(edges)*2)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, 0, float64(i)*100))
	}
	for _, e := range edges {
		b.AddEdge(graph.EdgeSpec{From: graph.NodeID(e[0]), To: graph.NodeID(e[1]), Class: graph.Residential, TwoWay: true})
	}
	return b.Build()
}

// runMinCut invokes minVertexCut on the whole graph in the given set
// order, with the first nSrc and last nSink positions as terminals, and
// returns the cut size, the per-node side labels (indexed by node ID)
// and the completion flag.
func runMinCut(t *testing.T, g *graph.Graph, set []graph.NodeID, nSrc, nSink int, bound int32) (int, map[graph.NodeID]int8, bool) {
	t.Helper()
	setID := make([]int32, g.NumNodes())
	for _, v := range set {
		setID[v] = 1
	}
	var f flowScratch
	cut, ok := f.minVertexCut(g, set, nSrc, nSink, setID, 1, 2, bound)
	sides := map[graph.NodeID]int8{}
	if ok {
		for i, v := range set {
			sides[v] = f.side[i]
		}
	}
	return cut, sides, ok
}

// checkCut verifies the structural invariants of a returned labeling:
// terminals on their own side, no edge joins the A interior to the B
// interior, and the cut size matches the number of flowSideCut labels.
func checkCut(t *testing.T, g *graph.Graph, set []graph.NodeID, nSrc, nSink, cut int, sides map[graph.NodeID]int8) {
	t.Helper()
	m := len(set)
	nCut := 0
	for i, v := range set {
		switch sides[v] {
		case flowSideCut:
			nCut++
			if i < nSrc || i >= m-nSink {
				t.Errorf("terminal %d (pos %d) labeled cut — terminals must be uncuttable", v, i)
			}
		case flowSideA:
			if i >= m-nSink {
				t.Errorf("sink terminal %d labeled side A", v)
			}
		case flowSideB:
			if i < nSrc {
				t.Errorf("source terminal %d labeled side B", v)
			}
		}
	}
	if nCut != cut {
		t.Errorf("cut size %d but %d nodes labeled cut", cut, nCut)
	}
	for _, v := range set {
		if sides[v] != flowSideA {
			continue
		}
		for _, u := range g.OutHeads(v) {
			if sides[u] == flowSideB {
				t.Errorf("edge %d–%d joins the A and B interiors across the cut", v, u)
			}
		}
	}
}

// TestMinVertexCutBridge: two K4 blobs joined through one articulation
// node — the minimum vertex cut is exactly that node.
func TestMinVertexCutBridge(t *testing.T) {
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // blob A
		{3, 4}, {4, 5}, // bridge node 4
		{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8}, // blob B
	}
	g := flowTestGraph(9, edges)
	set := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}
	cut, sides, ok := runMinCut(t, g, set, 2, 2, 100)
	if !ok || cut != 1 {
		t.Fatalf("bridge cut = %d (ok %v), want 1", cut, ok)
	}
	// Any of {3}, {4}, {5} is a minimum cut; the balance tie breaks
	// toward the source side, which reaches exactly node 3.
	if sides[3] != flowSideCut {
		t.Errorf("want the source-side cut {3} on a balance tie, got labels %v", sides)
	}
	checkCut(t, g, set, 2, 2, cut, sides)
}

// TestMinVertexCutGridCorridor: a 4×8 grid, set ordered column-major
// with the first and last columns as terminals — the minimum cut is one
// full column of 4 nodes.
func TestMinVertexCutGridCorridor(t *testing.T) {
	rows, cols := 4, 8
	id := func(r, c int) int { return c*rows + r } // column-major
	var edges [][2]int
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
		}
	}
	g := flowTestGraph(rows*cols, edges)
	set := make([]graph.NodeID, rows*cols)
	for i := range set {
		set[i] = graph.NodeID(i)
	}
	cut, sides, ok := runMinCut(t, g, set, rows, rows, 100)
	if !ok || cut != rows {
		t.Fatalf("grid corridor cut = %d (ok %v), want %d", cut, ok, rows)
	}
	checkCut(t, g, set, rows, rows, cut, sides)
}

// TestMinVertexCutParallelPaths: two vertex-disjoint paths between a
// source hub and a sink hub — the cut needs one node per path.
func TestMinVertexCutParallelPaths(t *testing.T) {
	// 0 —(1-2-3)— 7 and 0 —(4-5-6)— 7.
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 7},
		{0, 4}, {4, 5}, {5, 6}, {6, 7},
	}
	g := flowTestGraph(8, edges)
	set := []graph.NodeID{0, 1, 4, 2, 5, 3, 6, 7}
	cut, sides, ok := runMinCut(t, g, set, 1, 1, 100)
	if !ok || cut != 2 {
		t.Fatalf("parallel paths cut = %d (ok %v), want 2", cut, ok)
	}
	checkCut(t, g, set, 1, 1, cut, sides)
}

// TestMinVertexCutBoundAbort: a bound at or below the true min cut makes
// the search abort without labeling — the dissector then keeps its
// geometric fallback.
func TestMinVertexCutBoundAbort(t *testing.T) {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 7},
		{0, 4}, {4, 5}, {5, 6}, {6, 7},
	}
	g := flowTestGraph(8, edges)
	set := []graph.NodeID{0, 1, 4, 2, 5, 3, 6, 7}
	if cut, _, ok := runMinCut(t, g, set, 1, 1, 2); ok {
		t.Fatalf("bound 2 with true cut 2: search completed (cut %d), want abort", cut)
	}
	if cut, _, ok := runMinCut(t, g, set, 1, 1, 1); ok {
		t.Fatalf("bound 1 with true cut 2: search completed (cut %d), want abort", cut)
	}
}

// residualChoiceGraph is the fixture of the residual-cut-selection
// tests: terminals of unequal size at the two ends of a chain with a
// bypass edge, so several size-1 cuts exist and the source-side and
// sink-side canonical cuts split the interiors with different balance.
//
//	t0, t1 — 2 — 3 — 4 — 5 — 6
//	          \______/
//
// (bypass 2–4, terminals t0=0, t1=1 both attached to 2).
func residualChoiceGraph() (*graph.Graph, []graph.NodeID) {
	edges := [][2]int{
		{0, 2}, {1, 2},
		{2, 3}, {3, 4}, {2, 4},
		{4, 5}, {5, 6},
	}
	return flowTestGraph(7, edges), []graph.NodeID{0, 1, 2, 3, 4, 5, 6}
}

// TestMinVertexCutPicksBalancedResidualCut: with the two-node terminal
// block at the source end, the source-side cut {2} leaves interiors of
// 2 and 4 nodes (diff 2) while the sink-side cut {5} leaves 5 and 1
// (diff 4) — the source-side cut must win.
func TestMinVertexCutPicksBalancedResidualCut(t *testing.T) {
	g, set := residualChoiceGraph()
	cut, sides, ok := runMinCut(t, g, set, 2, 1, 100)
	if !ok || cut != 1 {
		t.Fatalf("cut = %d (ok %v), want 1", cut, ok)
	}
	if sides[2] != flowSideCut {
		t.Errorf("want source-side cut {2} (more balanced), got cut at %v", sides)
	}
	checkCut(t, g, set, 2, 1, cut, sides)
}

// TestMinVertexCutPicksBalancedResidualCutMirror mirrors the fixture
// (two-node terminal block at the sink end): now the sink-side cut is
// the more balanced one and must be chosen.
func TestMinVertexCutPicksBalancedResidualCutMirror(t *testing.T) {
	g, set := residualChoiceGraph()
	// Reverse the set: positions flip, terminals swap roles.
	rev := make([]graph.NodeID, len(set))
	for i, v := range set {
		rev[len(set)-1-i] = v
	}
	cut, sides, ok := runMinCut(t, g, rev, 1, 2, 100)
	if !ok || cut != 1 {
		t.Fatalf("cut = %d (ok %v), want 1", cut, ok)
	}
	if sides[2] != flowSideCut {
		t.Errorf("want sink-side cut {2} (more balanced), got cut at %v", sides)
	}
	checkCut(t, g, rev, 1, 2, cut, sides)
}

// TestMinVertexCutScratchReuse runs two different cuts through one
// scratch back to back — the zero-alloc reuse path of the dissector —
// and checks the second run is uncontaminated by the first.
func TestMinVertexCutScratchReuse(t *testing.T) {
	bridgeEdges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {4, 5},
		{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
	}
	gBridge := flowTestGraph(9, bridgeEdges)
	pathEdges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 7},
		{0, 4}, {4, 5}, {5, 6}, {6, 7},
	}
	gPaths := flowTestGraph(8, pathEdges)

	var f flowScratch
	setA := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}
	idsA := make([]int32, 9)
	for i := range idsA {
		idsA[i] = 1
	}
	if cut, ok := f.minVertexCut(gBridge, setA, 2, 2, idsA, 1, 2, 100); !ok || cut != 1 {
		t.Fatalf("first run: cut = %d (ok %v), want 1", cut, ok)
	}
	setB := []graph.NodeID{0, 1, 4, 2, 5, 3, 6, 7}
	idsB := make([]int32, 8)
	for i := range idsB {
		idsB[i] = 1
	}
	if cut, ok := f.minVertexCut(gPaths, setB, 1, 1, idsB, 1, 2, 100); !ok || cut != 2 {
		t.Fatalf("reused scratch: cut = %d (ok %v), want 2", cut, ok)
	}
}
