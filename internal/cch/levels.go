package cch

// This file derives the dependency levels that make triangle relaxation
// parallel. Pair {a,b}'s lower triangles reference only pairs {z,a} and
// {z,b} with rank[z] < rank[a] — strictly smaller pair indices — so the
// pairs form a DAG, and the minimal-depth leveling of that DAG groups
// them into waves of mutually independent relaxations:
//
//	level(p) = 0                                 when p has no lower triangles
//	level(p) = 1 + max over triangles (z, p) of
//	           max(level({z, lo(p)}), level({z, hi(p)}))  otherwise
//
// Every pair a level-L relaxation reads lives at a level < L, so a
// customization can process levels in ascending order and fan each
// level's pairs over a worker pool: within a level all reads hit
// finalized lower levels, writes touch only the pair's own two slots,
// and the result is bit-identical to the serial ascending sweep
// whatever the worker count or interleaving. This is the elimination-
// tree-level parallelization of Customizable Contraction Hierarchies,
// tightened from tree depth to exact triangle dependencies (a pair with
// no triangles is level 0 no matter how deep its endpoints sit).

// computeLevels fills the packed level CSR: levelPairs lists all pair
// indices grouped by ascending level (ascending pair index within a
// level, which keeps the serial sweep's relative order), levelOff[L] ..
// levelOff[L+1] bounding level L's group.
func (p *Preprocessed) computeLevels() {
	P := len(p.lo)
	level := make([]int32, P)
	numLevels := int32(0)
	for i := 0; i < P; i++ {
		lv := int32(0)
		for k := p.triOff[i]; k < p.triOff[i+1]; k++ {
			if l := level[p.triLoSide[k]] + 1; l > lv {
				lv = l
			}
			if l := level[p.triHiSide[k]] + 1; l > lv {
				lv = l
			}
		}
		level[i] = lv
		if lv+1 > numLevels {
			numLevels = lv + 1
		}
	}
	// Counting sort by level, stable in pair index.
	p.levelOff = make([]int32, numLevels+1)
	for _, lv := range level {
		p.levelOff[lv+1]++
	}
	for l := int32(0); l < numLevels; l++ {
		p.levelOff[l+1] += p.levelOff[l]
	}
	p.levelPairs = make([]int32, P)
	cursor := make([]int32, numLevels)
	for i := 0; i < P; i++ {
		lv := level[i]
		p.levelPairs[p.levelOff[lv]+cursor[lv]] = int32(i)
		cursor[lv]++
	}
}

// NumLevels returns the depth of the pair dependency DAG — how many
// sequential waves a level-parallel customization needs.
func (p *Preprocessed) NumLevels() int { return len(p.levelOff) - 1 }

// LevelWidths returns the number of pairs at each dependency level
// (index = level). Width at low levels is the available parallelism of
// the customization's hot phase.
func (p *Preprocessed) LevelWidths() []int {
	widths := make([]int, p.NumLevels())
	for l := range widths {
		widths[l] = int(p.levelOff[l+1] - p.levelOff[l])
	}
	return widths
}
