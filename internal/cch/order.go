package cch

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Order computes the metric-independent contraction order the customizable
// hierarchy is built on: a nested-dissection order from recursive geometric
// bisection. Road networks are near-planar with small geometric separators,
// so cutting the node set along the longer bounding-box axis and ordering
// the separator *after* both halves yields the small-fill, balanced
// elimination orders CCH preprocessing wants (every chordal arc stays
// within one side or touches the separator, so fill-in cannot cross the
// cut). The order depends only on the topology and node coordinates —
// never on edge weights — which is what makes the contraction reusable
// across arbitrary weight snapshots.
//
// The returned slice maps node -> rank; higher rank = contracted later =
// more important, matching the ch package's convention.
func Order(g *graph.Graph) []int32 {
	n := g.NumNodes()
	rank := make([]int32, n)
	if n == 0 {
		return rank
	}
	nodes := make([]graph.NodeID, n)
	for v := range nodes {
		nodes[v] = graph.NodeID(v)
	}
	// setID stamps which current partition a node belongs to, so separator
	// detection can test "neighbour on the other side" in O(1) without
	// per-level sets. IDs are issued fresh for every split.
	d := &dissector{g: g, setID: make([]int32, n), rank: rank}
	// Scale longitude distances to latitude degrees so the axis choice
	// reflects metric extent, not raw degree spans.
	d.lonScale = math.Cos(g.BBox().Center().Lat * math.Pi / 180)
	d.dissect(nodes)
	return rank
}

type dissector struct {
	g        *graph.Graph
	setID    []int32
	nextID   int32
	nextRank int32
	lonScale float64
	rank     []int32
}

// leafSize is the partition size below which nodes are ordered directly;
// small enough that worst-case clique fill on a leaf is negligible.
const leafSize = 24

// dissect orders the given node set into ranks [d.nextRank, d.nextRank +
// len(set)): both halves first (recursively), the separator last, so
// separator nodes end up the most important nodes of their subtree.
func (d *dissector) dissect(set []graph.NodeID) {
	if len(set) <= leafSize {
		for _, v := range set {
			d.rank[v] = d.nextRank
			d.nextRank++
		}
		return
	}
	// Split along the longer axis at the median node. Splitting by sorted
	// position (not coordinate value) keeps the halves balanced even when
	// many nodes share a coordinate.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, v := range set {
		p := d.g.Point(v)
		minLat, maxLat = math.Min(minLat, p.Lat), math.Max(maxLat, p.Lat)
		minLon, maxLon = math.Min(minLon, p.Lon), math.Max(maxLon, p.Lon)
	}
	byLon := (maxLon-minLon)*d.lonScale > maxLat-minLat
	sort.Slice(set, func(i, j int) bool {
		pi, pj := d.g.Point(set[i]), d.g.Point(set[j])
		if byLon {
			if pi.Lon != pj.Lon {
				return pi.Lon < pj.Lon
			}
			return pi.Lat < pj.Lat
		}
		if pi.Lat != pj.Lat {
			return pi.Lat < pj.Lat
		}
		return pi.Lon < pj.Lon
	})
	mid := len(set) / 2
	a, b := set[:mid], set[mid:]

	aID := d.freshID()
	bID := d.freshID()
	for _, v := range a {
		d.setID[v] = aID
	}
	for _, v := range b {
		d.setID[v] = bID
	}
	// Vertex separator: every A node with an (undirected) neighbour in B.
	// Removing it disconnects A' = A \ sep from B, which is all nested
	// dissection needs; taking it from one side keeps it small.
	var interior, sep []graph.NodeID
	for _, v := range a {
		if d.touches(v, bID) {
			sep = append(sep, v)
		} else {
			interior = append(interior, v)
		}
	}
	// Degenerate split (the whole A side is separator): order only the
	// stuck half directly and keep dissecting B — abandoning recursion for
	// the full set would hand the chordal fill-in an arbitrary order over
	// up to n nodes.
	if len(interior) == 0 {
		for _, v := range a {
			d.rank[v] = d.nextRank
			d.nextRank++
		}
		d.dissect(b)
		return
	}
	d.dissect(interior)
	d.dissect(b)
	for _, v := range sep {
		d.rank[v] = d.nextRank
		d.nextRank++
	}
}

func (d *dissector) freshID() int32 {
	d.nextID++
	return d.nextID
}

// touches reports whether v has an out- or in-neighbour currently stamped
// with the given partition id.
func (d *dissector) touches(v graph.NodeID, id int32) bool {
	for _, u := range d.g.OutHeads(v) {
		if d.setID[u] == id {
			return true
		}
	}
	for _, u := range d.g.InTails(v) {
		if d.setID[u] == id {
			return true
		}
	}
	return false
}
