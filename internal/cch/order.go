package cch

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Order computes the metric-independent contraction order the customizable
// hierarchy is built on: a nested-dissection order from recursive geometric
// bisection. Road networks are near-planar with small geometric separators,
// so cutting the node set along the longer bounding-box axis and ordering
// the separator *after* both halves yields the small-fill, balanced
// elimination orders CCH preprocessing wants (every chordal arc stays
// within one side or touches the separator, so fill-in cannot cross the
// cut). The order depends only on the topology and node coordinates —
// never on edge weights — which is what makes the contraction reusable
// across arbitrary weight snapshots.
//
// The returned slice maps node -> rank; higher rank = contracted later =
// more important, matching the ch package's convention.
func Order(g *graph.Graph) []int32 {
	n := g.NumNodes()
	rank := make([]int32, n)
	if n == 0 {
		return rank
	}
	nodes := make([]graph.NodeID, n)
	for v := range nodes {
		nodes[v] = graph.NodeID(v)
	}
	// setID stamps which current partition a node belongs to, so separator
	// detection can test "neighbour on the other side" in O(1) without
	// per-level sets. IDs are issued fresh for every split.
	d := &dissector{g: g, setID: make([]int32, n), cover: make([]int32, n), rank: rank}
	// Scale longitude distances to latitude degrees so the axis choice
	// reflects metric extent, not raw degree spans.
	d.lonScale = math.Cos(g.BBox().Center().Lat * math.Pi / 180)
	d.dissect(nodes)
	return rank
}

type dissector struct {
	g     *graph.Graph
	setID []int32
	// cover stamps cover membership during separator refinement on a
	// separate array so setID keeps holding side membership (the greedy
	// drop check needs to tell cut partners from same-side boundary
	// neighbours).
	cover    []int32
	nextID   int32
	nextRank int32
	lonScale float64
	rank     []int32
}

// leafSize is the partition size below which nodes are ordered directly;
// small enough that worst-case clique fill on a leaf is negligible.
const leafSize = 24

// dissect orders the given node set into ranks [d.nextRank, d.nextRank +
// len(set)): both halves first (recursively), the separator last, so
// separator nodes end up the most important nodes of their subtree.
func (d *dissector) dissect(set []graph.NodeID) {
	if len(set) <= leafSize {
		for _, v := range set {
			d.rank[v] = d.nextRank
			d.nextRank++
		}
		return
	}
	// Split along the longer axis at the median node. Splitting by sorted
	// position (not coordinate value) keeps the halves balanced even when
	// many nodes share a coordinate.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, v := range set {
		p := d.g.Point(v)
		minLat, maxLat = math.Min(minLat, p.Lat), math.Max(maxLat, p.Lat)
		minLon, maxLon = math.Min(minLon, p.Lon), math.Max(maxLon, p.Lon)
	}
	byLon := (maxLon-minLon)*d.lonScale > maxLat-minLat
	sort.Slice(set, func(i, j int) bool {
		pi, pj := d.g.Point(set[i]), d.g.Point(set[j])
		if byLon {
			if pi.Lon != pj.Lon {
				return pi.Lon < pj.Lon
			}
			return pi.Lat < pj.Lat
		}
		if pi.Lat != pj.Lat {
			return pi.Lat < pj.Lat
		}
		return pi.Lon < pj.Lon
	})
	mid := len(set) / 2
	a, b := set[:mid], set[mid:]

	aID := d.freshID()
	bID := d.freshID()
	for _, v := range a {
		d.setID[v] = aID
	}
	for _, v := range b {
		d.setID[v] = bID
	}
	// Vertex separator covering every A–B cut edge. The baseline is
	// one-sided (every A node with an undirected neighbour in B); the
	// refinement pass (refineSeparator) instead covers the cut from both
	// boundaries and greedily drops redundant nodes, and the smaller of
	// the two wins — separator size is what drives chordal fill-in, so a
	// node shaved here removes a whole clique row of pairs and triangles.
	sep := d.refineSeparator(set, a, b, aID, bID)
	// Degenerate split (everything is separator): recursion cannot make
	// progress, so order the set directly — abandoning recursion for the
	// full set would hand the chordal fill-in an arbitrary order over up
	// to n nodes, but this only happens for dense blobs the leaf path
	// handles acceptably.
	if len(sep) == len(set) {
		for _, v := range set {
			d.rank[v] = d.nextRank
			d.nextRank++
		}
		return
	}
	// Both interiors recurse first; the separator is ranked last, making
	// its nodes the most important of this subtree. sepID stamps let the
	// interior split run in one pass per side.
	sepID := d.freshID()
	for _, v := range sep {
		d.setID[v] = sepID
	}
	interior := make([]graph.NodeID, 0, len(a))
	for _, v := range a {
		if d.setID[v] != sepID {
			interior = append(interior, v)
		}
	}
	bInterior := make([]graph.NodeID, 0, len(b))
	for _, v := range b {
		if d.setID[v] != sepID {
			bInterior = append(bInterior, v)
		}
	}
	d.dissect(interior)
	d.dissect(bInterior)
	for _, v := range sep {
		d.rank[v] = d.nextRank
		d.nextRank++
	}
}

// refineSeparator returns a vertex separator of the a/b split: a set of
// nodes covering every cut edge, ranked after both interiors. It builds
// the two-sided boundary (every endpoint of a cut edge), greedily drops
// nodes whose cut edges are all still covered from the other side
// (ascending cut-degree, so chain endpoints and other cheap nodes go
// first), and falls back to the one-sided A boundary when that greedy
// cover comes out larger — the refinement is monotone: never worse than
// the pre-refinement separator.
func (d *dissector) refineSeparator(set, a, b []graph.NodeID, aID, bID int32) []graph.NodeID {
	otherOf := func(v graph.NodeID) int32 {
		if d.setID[v] == bID {
			return aID
		}
		return bID
	}
	// Two-sided boundary with cut degrees. Iterating the coordinate-sorted
	// set keeps everything deterministic.
	var boundary []graph.NodeID
	var oneSided int
	for _, v := range set {
		if d.cutDegree(v, otherOf(v)) > 0 {
			boundary = append(boundary, v)
			if d.setID[v] == aID {
				oneSided++
			}
		}
	}
	if len(boundary) == 0 {
		return nil // disconnected halves: no separator needed
	}
	sort.SliceStable(boundary, func(i, j int) bool {
		vi, vj := boundary[i], boundary[j]
		return d.cutDegree(vi, otherOf(vi)) < d.cutDegree(vj, otherOf(vj))
	})
	// Greedy redundant-node removal over the cover stamps (setID keeps
	// holding side membership): drop v when every cut edge at v is still
	// covered by its other endpoint. A drop makes the partners
	// load-bearing, so each cut edge keeps at least one endpoint — the
	// result is a minimal (not minimum) vertex cover of the cut, visited
	// in ascending cut-degree so cheap chain endpoints go first.
	inCover := d.freshID()
	for _, v := range boundary {
		d.cover[v] = inCover
	}
	cover := len(boundary)
	for _, v := range boundary {
		other := otherOf(v)
		redundant := true
		for _, u := range d.g.OutHeads(v) {
			if d.setID[u] == other && d.cover[u] != inCover {
				redundant = false
				break
			}
		}
		if redundant {
			for _, u := range d.g.InTails(v) {
				if d.setID[u] == other && d.cover[u] != inCover {
					redundant = false
					break
				}
			}
		}
		if redundant {
			d.cover[v] = 0
			cover--
		}
	}
	if cover < oneSided {
		sep := make([]graph.NodeID, 0, cover)
		for _, v := range set { // set order: deterministic
			if d.cover[v] == inCover {
				sep = append(sep, v)
			}
		}
		return sep
	}
	// One-sided fallback: every A node touching B (the pre-refinement
	// separator) — the refinement never returns a larger separator than
	// the geometric split alone produced.
	sep := make([]graph.NodeID, 0, oneSided)
	for _, v := range a {
		if d.touches(v, bID) {
			sep = append(sep, v)
		}
	}
	return sep
}

// cutDegree counts v's (out + in) neighbours currently stamped with the
// given partition id — v's number of cut edge endpoints, counting
// parallel and two-way edges as they appear in the adjacency.
func (d *dissector) cutDegree(v graph.NodeID, id int32) int {
	deg := 0
	for _, u := range d.g.OutHeads(v) {
		if d.setID[u] == id {
			deg++
		}
	}
	for _, u := range d.g.InTails(v) {
		if d.setID[u] == id {
			deg++
		}
	}
	return deg
}

func (d *dissector) freshID() int32 {
	d.nextID++
	return d.nextID
}

// touches reports whether v has an out- or in-neighbour currently stamped
// with the given partition id.
func (d *dissector) touches(v graph.NodeID, id int32) bool {
	for _, u := range d.g.OutHeads(v) {
		if d.setID[u] == id {
			return true
		}
	}
	for _, u := range d.g.InTails(v) {
		if d.setID[u] == id {
			return true
		}
	}
	return false
}
