package cch

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
)

// This file computes the metric-independent contraction order the
// customizable hierarchy is built on: a nested-dissection order from
// recursive bisection. Road networks are near-planar with small
// separators, so cutting the node set and ordering the separator *after*
// both halves yields the small-fill, balanced elimination orders CCH
// preprocessing wants (every chordal arc stays within one side or touches
// the separator, so fill-in cannot cross the cut). The order depends only
// on the topology and node coordinates — never on edge weights — which is
// what makes the contraction reusable across arbitrary weight snapshots.
//
// Two pipelines share the recursion, selected by OrderConfig.Kind:
//
//   - OrderGeometric splits along the longer bounding-box axis at the
//     median node and covers the coordinate cut with a greedy minimal
//     vertex cover (refineSeparator).
//   - OrderFlow additionally runs an inertial-flow refinement per split:
//     the sorted set's extreme quarters become source and sink terminals,
//     a unit-capacity Dinic (flow.go) computes the minimum vertex cut
//     between them, and the more balanced of the residual graph's two
//     canonical minimum cuts replaces the geometric separator — but only
//     when it is strictly smaller, so the flow order is never worse than
//     the geometric one at any split.
//
// Separator size drives everything downstream — chordal pairs, triangles,
// customization time, PHAST/RPHAST sweep arcs, matrix fill — which is why
// the flow refinement pays for itself across every weight snapshot the
// preprocessing ever serves.
//
// The recursion is parallel: the two interiors of a split share no nodes
// and no rank slots (each branch's rank range is pre-reserved before it
// is descended into), so branches fan out over OrderConfig.Workers
// goroutines with output bit-identical to the serial recursion.

// OrderKind selects the nested-dissection separator pipeline.
type OrderKind uint8

const (
	// OrderGeometric is the coordinate-bisection pipeline: median split
	// along the longer axis, greedy vertex-cover separator refinement.
	OrderGeometric OrderKind = iota
	// OrderFlow refines every split with an inertial-flow minimum vertex
	// cut between the split's extreme quarters, falling back to the
	// geometric separator whenever the cut is not strictly smaller.
	// Smaller separators, fewer pairs and triangles, slower (one-off)
	// preprocessing.
	OrderFlow
)

// ParseOrderKind maps the shared command-line flag spelling ("geometric"
// or "flow") onto an OrderKind.
func ParseOrderKind(s string) (OrderKind, error) {
	switch s {
	case "geometric":
		return OrderGeometric, nil
	case "flow":
		return OrderFlow, nil
	}
	return 0, fmt.Errorf("cch: invalid order kind %q (want geometric or flow)", s)
}

// String implements fmt.Stringer.
func (k OrderKind) String() string {
	if k == OrderFlow {
		return "flow"
	}
	return "geometric"
}

// OrderConfig tunes one nested-dissection run. The zero value is the
// historical default: geometric separators, GOMAXPROCS-parallel
// recursion. Every configuration of Workers produces bit-identical
// ranks — branch rank ranges are pre-reserved, so parallelism is purely
// a wall-clock knob.
type OrderConfig struct {
	Kind OrderKind
	// Workers bounds the recursion fan-out. 0 (or negative) selects
	// runtime.GOMAXPROCS(0); 1 forces serial recursion.
	Workers int
}

// Order computes the nested-dissection contraction order with the
// default configuration (geometric separators). The returned slice maps
// node -> rank; higher rank = contracted later = more important,
// matching the ch package's convention.
func Order(g *graph.Graph) []int32 { return OrderWith(g, OrderConfig{}) }

// OrderWith is Order with explicit pipeline and worker control.
func OrderWith(g *graph.Graph, cfg OrderConfig) []int32 {
	return orderImpl(g, cfg, nil)
}

// OrderStats summarizes the splits of one nested-dissection run — the
// separator-size profile the -orders report prints. Depth is recursion
// depth: depth 0 is the single top-level split, and the per-depth totals
// at small depths are the separators that dominate fill-in.
type OrderStats struct {
	// Splits counts the recursive splits that produced a separator.
	Splits int
	// SepNodes is the total number of nodes ranked as separators.
	SepNodes int
	// MaxSep is the largest single separator.
	MaxSep int
	// SepByDepth[d] is the total separator size over all splits at
	// recursion depth d; SplitsByDepth[d] the number of such splits.
	SepByDepth    []int
	SplitsByDepth []int
}

// OrderWithStats is OrderWith plus the split-profile statistics. The
// instrumented run is serial (stats aggregation must not observe
// scheduling), so use OrderWith for production builds.
func OrderWithStats(g *graph.Graph, cfg OrderConfig) ([]int32, OrderStats) {
	var st OrderStats
	rank := orderImpl(g, cfg, func(depth int, set, intA, intB, sep []graph.NodeID) {
		st.Splits++
		st.SepNodes += len(sep)
		if len(sep) > st.MaxSep {
			st.MaxSep = len(sep)
		}
		for len(st.SepByDepth) <= depth {
			st.SepByDepth = append(st.SepByDepth, 0)
			st.SplitsByDepth = append(st.SplitsByDepth, 0)
		}
		st.SepByDepth[depth] += len(sep)
		st.SplitsByDepth[depth]++
	})
	return rank, st
}

// orderImpl runs the dissection. onSplit, when non-nil (stats and the
// package tests), receives every non-degenerate split before its
// interiors recurse and forces serial recursion so observation order is
// deterministic.
func orderImpl(g *graph.Graph, cfg OrderConfig, onSplit func(depth int, set, intA, intB, sep []graph.NodeID)) []int32 {
	n := g.NumNodes()
	rank := make([]int32, n)
	if n == 0 {
		return rank
	}
	nodes := make([]graph.NodeID, n)
	for v := range nodes {
		nodes[v] = graph.NodeID(v)
	}
	st := &orderState{g: g, kind: cfg.Kind, rank: rank, onSplit: onSplit}
	// Scale longitude distances to latitude degrees so the axis choice
	// reflects metric extent, not raw degree spans.
	st.lonScale = math.Cos(g.BBox().Center().Lat * math.Pi / 180)
	st.pool.New = func() any {
		return &dissector{st: st, setID: make([]int32, n), cover: make([]int32, n)}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && onSplit == nil {
		// The calling goroutine is worker #0; the semaphore holds the
		// extra slots branches may claim.
		st.sem = make(chan struct{}, workers-1)
	}
	d := st.pool.Get().(*dissector)
	d.dissect(nodes, 0, 0)
	st.pool.Put(d)
	st.wg.Wait()
	return rank
}

// orderState is the shared state of one OrderWith run: the output rank
// array (branches write disjoint pre-reserved ranges), the worker
// semaphore, and a pool of per-goroutine dissector scratches.
type orderState struct {
	g        *graph.Graph
	kind     OrderKind
	lonScale float64
	rank     []int32
	sem      chan struct{}
	wg       sync.WaitGroup
	pool     sync.Pool
	onSplit  func(depth int, set, intA, intB, sep []graph.NodeID)
}

// dissector is one goroutine's private scratch state. setID stamps which
// current partition a node belongs to, so separator detection can test
// "neighbour on the other side" in O(1) without per-level sets; IDs are
// issued fresh for every split and are only ever compared against stamps
// this same scratch wrote, so a branch running on its own scratch never
// observes (or races with) a sibling's stamps.
type dissector struct {
	st    *orderState
	setID []int32
	// cover stamps cover membership during separator refinement on a
	// separate array so setID keeps holding side membership (the greedy
	// drop check needs to tell cut partners from same-side boundary
	// neighbours).
	cover  []int32
	nextID int32
	// flow is the zero-alloc Dinic scratch of the OrderFlow pipeline,
	// lazily sized at the first refined split.
	flow flowScratch
}

// leafSize is the partition size below which nodes are ordered directly;
// small enough that worst-case clique fill on a leaf is negligible.
const leafSize = 24

// parallelDissectMin is the interior size below which a branch is not
// worth handing to another goroutine.
const parallelDissectMin = 2048

// dissect orders the given node set into ranks [base, base+len(set)):
// both interiors first (recursively), the separator last, so separator
// nodes end up the most important nodes of their subtree. Rank ranges
// are fully determined before any recursion starts, which is what makes
// branch-parallel execution bit-identical to serial.
func (d *dissector) dissect(set []graph.NodeID, base int32, depth int) {
	st := d.st
	if len(set) <= leafSize {
		for i, v := range set {
			st.rank[v] = base + int32(i)
		}
		return
	}
	// Split along the longer axis at the median node. Splitting by sorted
	// position (not coordinate value) keeps the halves balanced even when
	// many nodes share a coordinate.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, v := range set {
		p := st.g.Point(v)
		minLat, maxLat = math.Min(minLat, p.Lat), math.Max(maxLat, p.Lat)
		minLon, maxLon = math.Min(minLon, p.Lon), math.Max(maxLon, p.Lon)
	}
	byLon := (maxLon-minLon)*st.lonScale > maxLat-minLat
	sort.Slice(set, func(i, j int) bool {
		pi, pj := st.g.Point(set[i]), st.g.Point(set[j])
		if byLon {
			if pi.Lon != pj.Lon {
				return pi.Lon < pj.Lon
			}
			return pi.Lat < pj.Lat
		}
		if pi.Lat != pj.Lat {
			return pi.Lat < pj.Lat
		}
		return pi.Lon < pj.Lon
	})
	mid := len(set) / 2
	a, b := set[:mid], set[mid:]

	aID := d.freshID()
	bID := d.freshID()
	for _, v := range a {
		d.setID[v] = aID
	}
	for _, v := range b {
		d.setID[v] = bID
	}
	sep, intA, intB := d.separate(set, a, b, aID, bID)
	// Degenerate split (everything is separator): recursion cannot make
	// progress, so order the set directly — abandoning recursion for the
	// full set would hand the chordal fill-in an arbitrary order over up
	// to n nodes, but this only happens for dense blobs the leaf path
	// handles acceptably.
	if len(sep) == len(set) {
		for i, v := range set {
			st.rank[v] = base + int32(i)
		}
		return
	}
	if st.onSplit != nil {
		st.onSplit(depth, set, intA, intB, sep)
	}
	// Pre-reserve every range: interiors pack [base, base+|intA|+|intB|),
	// the separator takes the top of the subtree — its nodes become the
	// most important of this split whatever order the branches run in.
	for i, v := range sep {
		st.rank[v] = base + int32(len(set)-len(sep)+i)
	}
	baseB := base + int32(len(intA))
	if st.sem != nil && len(intA) >= parallelDissectMin {
		select {
		case st.sem <- struct{}{}:
			st.wg.Add(1)
			go func(branch []graph.NodeID, branchBase int32) {
				defer st.wg.Done()
				d2 := st.pool.Get().(*dissector)
				d2.dissect(branch, branchBase, depth+1)
				st.pool.Put(d2)
				<-st.sem
			}(intA, base)
			intA = nil
		default:
			// No free worker: recurse inline below.
		}
	}
	if intA != nil {
		d.dissect(intA, base, depth+1)
	}
	d.dissect(intB, baseB, depth+1)
}

// separate computes the split's vertex separator and the two interiors
// it leaves. The geometric baseline covers the coordinate cut with the
// greedy vertex-cover refinement; the flow pipeline then tries to beat
// it with an inertial-flow minimum cut and keeps whichever is smaller —
// the refinement is monotone: never worse than the geometric separator.
// A degenerate result (separator == set) is signalled by nil interiors.
func (d *dissector) separate(set, a, b []graph.NodeID, aID, bID int32) (sep, intA, intB []graph.NodeID) {
	sep = d.refineSeparator(set, a, b, aID, bID)
	if d.st.kind == OrderFlow && len(sep) > 0 {
		if fsep, fa, fb, ok := d.flowRefine(set, aID, bID, len(sep)); ok {
			return fsep, fa, fb
		}
	}
	if len(sep) == len(set) {
		return sep, nil, nil
	}
	// Interiors of the geometric halves. sepID stamps let the membership
	// test run in one pass per side.
	sepID := d.freshID()
	for _, v := range sep {
		d.setID[v] = sepID
	}
	intA = make([]graph.NodeID, 0, len(a))
	for _, v := range a {
		if d.setID[v] != sepID {
			intA = append(intA, v)
		}
	}
	intB = make([]graph.NodeID, 0, len(b))
	for _, v := range b {
		if d.setID[v] != sepID {
			intB = append(intB, v)
		}
	}
	return sep, intA, intB
}

// flowMinBalanceDen is the balance corridor: each flow interior must keep
// at least len(set)/flowMinBalanceDen nodes. The terminal construction
// (uncuttable extreme quarters) guarantees this structurally; the check
// is the safety net that keeps a surprising cut from degenerating the
// recursion.
const flowMinBalanceDen = 4

// flowRefine runs the inertial-flow refinement of one split: the sorted
// set's extreme quarters become terminals, Dinic computes the minimum
// vertex cut between them (aborting at bound, the incumbent geometric
// separator's size), and the most balanced minimal cut's sides become
// the interiors. ok is false when the cut is no improvement or falls
// outside the balance corridor — the caller then keeps the geometric
// separator, making the refinement monotone.
func (d *dissector) flowRefine(set []graph.NodeID, aID, bID int32, bound int) (sep, intA, intB []graph.NodeID, ok bool) {
	m := len(set)
	nTerm := m / 4
	if nTerm < 1 {
		return nil, nil, nil, false
	}
	cut, done := d.flow.minVertexCut(d.st.g, set, nTerm, nTerm, d.setID, aID, bID, int32(bound))
	if !done || cut >= bound {
		return nil, nil, nil, false
	}
	intA = make([]graph.NodeID, 0, m-cut)
	intB = make([]graph.NodeID, 0, m-cut)
	sep = make([]graph.NodeID, 0, cut)
	for i, v := range set { // set order: deterministic
		switch d.flow.side[i] {
		case flowSideA:
			intA = append(intA, v)
		case flowSideCut:
			sep = append(sep, v)
		default:
			intB = append(intB, v)
		}
	}
	if len(intA) < m/flowMinBalanceDen || len(intB) < m/flowMinBalanceDen {
		return nil, nil, nil, false
	}
	return sep, intA, intB, true
}

// refineSeparator returns a vertex separator of the a/b split: a set of
// nodes covering every cut edge, ranked after both interiors. It builds
// the two-sided boundary (every endpoint of a cut edge), greedily drops
// nodes whose cut edges are all still covered from the other side
// (ascending cut-degree, so chain endpoints and other cheap nodes go
// first), and falls back to the one-sided A boundary when that greedy
// cover comes out larger — the refinement is monotone: never worse than
// the pre-refinement separator.
func (d *dissector) refineSeparator(set, a, b []graph.NodeID, aID, bID int32) []graph.NodeID {
	otherOf := func(v graph.NodeID) int32 {
		if d.setID[v] == bID {
			return aID
		}
		return bID
	}
	// Two-sided boundary with cut degrees. Iterating the coordinate-sorted
	// set keeps everything deterministic.
	var boundary []graph.NodeID
	var oneSided int
	for _, v := range set {
		if d.cutDegree(v, otherOf(v)) > 0 {
			boundary = append(boundary, v)
			if d.setID[v] == aID {
				oneSided++
			}
		}
	}
	if len(boundary) == 0 {
		return nil // disconnected halves: no separator needed
	}
	sort.SliceStable(boundary, func(i, j int) bool {
		vi, vj := boundary[i], boundary[j]
		return d.cutDegree(vi, otherOf(vi)) < d.cutDegree(vj, otherOf(vj))
	})
	// Greedy redundant-node removal over the cover stamps (setID keeps
	// holding side membership): drop v when every cut edge at v is still
	// covered by its other endpoint. A drop makes the partners
	// load-bearing, so each cut edge keeps at least one endpoint — the
	// result is a minimal (not minimum) vertex cover of the cut, visited
	// in ascending cut-degree so cheap chain endpoints go first.
	inCover := d.freshID()
	for _, v := range boundary {
		d.cover[v] = inCover
	}
	cover := len(boundary)
	for _, v := range boundary {
		other := otherOf(v)
		redundant := true
		for _, u := range d.st.g.OutHeads(v) {
			if d.setID[u] == other && d.cover[u] != inCover {
				redundant = false
				break
			}
		}
		if redundant {
			for _, u := range d.st.g.InTails(v) {
				if d.setID[u] == other && d.cover[u] != inCover {
					redundant = false
					break
				}
			}
		}
		if redundant {
			d.cover[v] = 0
			cover--
		}
	}
	if cover < oneSided {
		sep := make([]graph.NodeID, 0, cover)
		for _, v := range set { // set order: deterministic
			if d.cover[v] == inCover {
				sep = append(sep, v)
			}
		}
		return sep
	}
	// One-sided fallback: every A node touching B (the pre-refinement
	// separator) — the refinement never returns a larger separator than
	// the geometric split alone produced.
	sep := make([]graph.NodeID, 0, oneSided)
	for _, v := range a {
		if d.touches(v, bID) {
			sep = append(sep, v)
		}
	}
	return sep
}

// cutDegree counts v's (out + in) neighbours currently stamped with the
// given partition id — v's number of cut edge endpoints, counting
// parallel and two-way edges as they appear in the adjacency.
func (d *dissector) cutDegree(v graph.NodeID, id int32) int {
	deg := 0
	for _, u := range d.st.g.OutHeads(v) {
		if d.setID[u] == id {
			deg++
		}
	}
	for _, u := range d.st.g.InTails(v) {
		if d.setID[u] == id {
			deg++
		}
	}
	return deg
}

func (d *dissector) freshID() int32 {
	d.nextID++
	return d.nextID
}

// touches reports whether v has an out- or in-neighbour currently stamped
// with the given partition id.
func (d *dissector) touches(v graph.NodeID, id int32) bool {
	for _, u := range d.st.g.OutHeads(v) {
		if d.setID[u] == id {
			return true
		}
	}
	for _, u := range d.st.g.InTails(v) {
		if d.setID[u] == id {
			return true
		}
	}
	return false
}
