package cch

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/citygen"
	"repro/internal/graph"
)

// melbourneGraph memoizes the citygen Melbourne network for the order
// tests — generation is deterministic, so sharing one graph across tests
// is safe and keeps the package's test time down.
var melbourneOnce struct {
	g *graph.Graph
}

func melbourneGraph(t testing.TB) *graph.Graph {
	if melbourneOnce.g == nil {
		g, err := citygen.Melbourne().Generate(2022)
		if err != nil {
			t.Fatalf("generate Melbourne: %v", err)
		}
		melbourneOnce.g = g
	}
	return melbourneOnce.g
}

// TestFlowOrderBeatsGeometricMelbourne pins the point of the flow
// pipeline: on the Melbourne profile the inertial-flow separators must
// shrink the contraction by at least 10% in both chordal pairs and
// triangles relative to the geometric order (ISSUE 8 acceptance
// criterion; geometric baseline 146,950 pairs / 3.44M triangles).
func TestFlowOrderBeatsGeometricMelbourne(t *testing.T) {
	g := melbourneGraph(t)
	geo := PreprocessWith(g, OrderConfig{Kind: OrderGeometric})
	flow := PreprocessWith(g, OrderConfig{Kind: OrderFlow})
	t.Logf("geometric: %d pairs, %d triangles", geo.NumPairs(), geo.NumTriangles())
	t.Logf("flow:      %d pairs, %d triangles", flow.NumPairs(), flow.NumTriangles())
	if flow.NumPairs() > geo.NumPairs()*9/10 {
		t.Errorf("flow order pairs %d > 90%% of geometric %d", flow.NumPairs(), geo.NumPairs())
	}
	if flow.NumTriangles() > geo.NumTriangles()*9/10 {
		t.Errorf("flow order triangles %d > 90%% of geometric %d", flow.NumTriangles(), geo.NumTriangles())
	}
}

// orderSplit is one recorded dissection split: the node sets the
// validity test re-checks against the final ranks.
type orderSplit struct {
	set, intA, intB, sep []graph.NodeID
}

// TestOrderValidity is the property test of both order pipelines: the
// returned rank must be a permutation, and at every recorded split (a)
// the separator and interiors partition the split's set, (b) no graph
// edge joins the two interiors — every cut edge has a separator
// endpoint, the invariant chordal fill-in containment rests on — and
// (c) the set occupies one contiguous rank block whose top |sep| ranks
// are exactly the separator, so elimination respects side containment.
func TestOrderValidity(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid30", gridCity(30, 30)},
		{"random1", randomCity(1, 800)},
		{"random7", randomCity(7, 800)},
		{"Melbourne", melbourneGraph(t)},
	}
	for _, tc := range graphs {
		for _, kind := range []OrderKind{OrderGeometric, OrderFlow} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				var splits []orderSplit
				rank := orderImpl(tc.g, OrderConfig{Kind: kind}, func(_ int, set, intA, intB, sep []graph.NodeID) {
					splits = append(splits, orderSplit{
						set:  append([]graph.NodeID(nil), set...),
						intA: append([]graph.NodeID(nil), intA...),
						intB: append([]graph.NodeID(nil), intB...),
						sep:  append([]graph.NodeID(nil), sep...),
					})
				})
				n := tc.g.NumNodes()
				seen := make([]bool, n)
				for v := 0; v < n; v++ {
					r := rank[v]
					if r < 0 || int(r) >= n || seen[r] {
						t.Fatalf("rank is not a permutation: node %d has rank %d", v, r)
					}
					seen[r] = true
				}
				if len(splits) == 0 && n > leafSize {
					t.Fatalf("no splits recorded on %d nodes", n)
				}
				side := make(map[graph.NodeID]int8, n)
				for _, s := range splits {
					if len(s.intA)+len(s.intB)+len(s.sep) != len(s.set) {
						t.Fatalf("split does not partition its set: |A|=%d |B|=%d |sep|=%d |set|=%d",
							len(s.intA), len(s.intB), len(s.sep), len(s.set))
					}
					for k := range side {
						delete(side, k)
					}
					for _, v := range s.intA {
						side[v] = 1
					}
					for _, v := range s.intB {
						side[v] = 2
					}
					for _, v := range s.intA {
						for _, u := range tc.g.OutHeads(v) {
							if side[u] == 2 {
								t.Fatalf("cut edge %d–%d has no separator endpoint", v, u)
							}
						}
						for _, u := range tc.g.InTails(v) {
							if side[u] == 2 {
								t.Fatalf("cut edge %d–%d has no separator endpoint", u, v)
							}
						}
					}
					// Contiguity + separator-on-top: sorting the set's ranks
					// must give one dense block ending in the separator.
					ranks := make([]int, 0, len(s.set))
					for _, v := range s.set {
						ranks = append(ranks, int(rank[v]))
					}
					sort.Ints(ranks)
					for i := 1; i < len(ranks); i++ {
						if ranks[i] != ranks[i-1]+1 {
							t.Fatalf("split ranks not contiguous at %d..%d", ranks[i-1], ranks[i])
						}
					}
					sepFloor := ranks[0] + len(s.set) - len(s.sep)
					for _, v := range s.sep {
						if int(rank[v]) < sepFloor {
							t.Fatalf("separator node %d ranked %d below its interiors (floor %d)",
								v, rank[v], sepFloor)
						}
					}
				}
			})
		}
	}
}

// TestOrderParallelMatchesSerial pins the determinism contract of the
// parallel dissection: every worker count yields bit-identical ranks,
// because branch rank ranges are pre-reserved before any branch runs.
func TestOrderParallelMatchesSerial(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid40", gridCity(40, 40)},
		{"Melbourne", melbourneGraph(t)},
	}
	for _, tc := range graphs {
		for _, kind := range []OrderKind{OrderGeometric, OrderFlow} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				serial := OrderWith(tc.g, OrderConfig{Kind: kind, Workers: 1})
				for _, workers := range []int{0, 2, 4} {
					got := OrderWith(tc.g, OrderConfig{Kind: kind, Workers: workers})
					for v := range got {
						if got[v] != serial[v] {
							t.Fatalf("workers=%d: rank[%d] = %d, serial %d", workers, v, got[v], serial[v])
						}
					}
				}
			})
		}
	}
}

// TestPreprocessSharedKeyedByOrder pins the memo fix: two callers asking
// for different order pipelines on the same graph must get distinct
// preprocessings (previously the second caller silently received the
// first's), while repeat calls with the same kind share one.
func TestPreprocessSharedKeyedByOrder(t *testing.T) {
	g := gridCity(20, 20)
	geo := PreprocessSharedWith(g, OrderConfig{Kind: OrderGeometric})
	flow := PreprocessSharedWith(g, OrderConfig{Kind: OrderFlow})
	if geo == flow {
		t.Fatalf("geometric and flow preprocessings share one memo entry")
	}
	if geo.OrderKind() != OrderGeometric || flow.OrderKind() != OrderFlow {
		t.Fatalf("order kinds not recorded: geo=%v flow=%v", geo.OrderKind(), flow.OrderKind())
	}
	if again := PreprocessSharedWith(g, OrderConfig{Kind: OrderFlow}); again != flow {
		t.Fatalf("repeat flow preprocessing not shared")
	}
	if again := PreprocessShared(g); again != geo {
		t.Fatalf("default-order PreprocessShared not keyed to the geometric entry")
	}
}
