//go:build !race

package cch

const raceEnabled = false
