//go:build race

package cch

// raceEnabled reports that the race detector is active; its
// instrumentation can allocate, so allocation-count assertions are
// skipped.
const raceEnabled = true
