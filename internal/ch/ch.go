// Package ch implements contraction hierarchies (Geisberger et al.), the
// classic routing-engine speedup technique. §II-B of the paper discusses
// how plateau-based alternative routing must stay compatible with such
// optimisations ("many routing engines compute only a subset of the source
// or destination tree"); this package provides the optimisation itself:
// after a one-off preprocessing phase that contracts nodes in importance
// order and inserts shortcuts, point-to-point queries run as bidirectional
// upward searches that settle a tiny fraction of the graph, returning
// exact shortest paths that unpack to original edge sequences.
//
// The package is split along the Hierarchy seam (seam.go): Build here is
// the *witness* flavor — metric-dependent contraction with bounded witness
// searches — while the customizable flavor with metric-independent
// contraction lives in repro/internal/cch. Both compile to the shared
// Runtime that the queries, the PHAST TreeBuilder and the serving layer
// consume.
package ch

import (
	"math"

	"repro/internal/graph"
	"repro/internal/sp"
)

// KindWitness labels hierarchies contracted with witness pruning.
const KindWitness = "witness"

// buildGraph is the mutable adjacency used during contraction.
type buildGraph struct {
	arcs       []Arc
	out        [][]int32 // arc indices leaving each node
	in         [][]int32 // arc indices entering each node (arc.To == node owner is implicit for out; for in we store the arc plus its from node)
	inFrom     [][]graph.NodeID
	contracted []bool
	// wit is the reusable scratch state of the bounded witness searches;
	// the epoch reset makes the thousands of searches a contraction run
	// performs allocation-free instead of building maps per call.
	wit sp.SearchState
}

func (b *buildGraph) addArc(from, to graph.NodeID, w float64, orig graph.EdgeID, skip1, skip2 int32) int32 {
	idx := int32(len(b.arcs))
	b.arcs = append(b.arcs, Arc{To: to, Weight: w, Orig: orig, Skip1: skip1, Skip2: skip2})
	b.out[from] = append(b.out[from], idx)
	b.in[to] = append(b.in[to], idx)
	b.inFrom[to] = append(b.inFrom[to], from)
	return idx
}

// Build preprocesses the graph under the given weights. Typical cost is a
// few node-degrees of work per node; the witness searches are bounded, so
// preprocessing may insert slightly more shortcuts than strictly necessary
// (hurting nothing but memory).
func Build(g *graph.Graph, weights []float64) *Runtime {
	n := g.NumNodes()
	bg := &buildGraph{
		out:        make([][]int32, n),
		in:         make([][]int32, n),
		inFrom:     make([][]graph.NodeID, n),
		contracted: make([]bool, n),
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		bg.addArc(ed.From, ed.To, weights[e], graph.EdgeID(e), -1, -1)
	}

	// Priority queue over contraction priority with lazy updates, on the
	// shared unboxed heap rather than container/heap's interface{} API.
	pq := &sp.Heap{}
	for v := 0; v < n; v++ {
		pq.Push(graph.NodeID(v), priority(bg, graph.NodeID(v), 0))
	}
	rank := make([]int32, n)
	contractedCount := 0
	neighborsContracted := make([]int, n)
	for pq.Len() > 0 {
		v, _ := pq.Pop()
		if bg.contracted[v] {
			continue
		}
		// Lazy update: if the recomputed priority is no longer minimal,
		// requeue.
		cur := priority(bg, v, neighborsContracted[v])
		if pq.Len() > 0 && cur > pq.MinPrio() {
			pq.Push(v, cur)
			continue
		}
		contract(bg, v)
		rank[v] = int32(contractedCount)
		contractedCount++
		bg.contracted[v] = true
		for _, ai := range bg.out[v] {
			neighborsContracted[bg.arcs[ai].To]++
		}
		for _, u := range bg.inFrom[v] {
			neighborsContracted[u]++
		}
	}

	from := make([]graph.NodeID, len(bg.arcs))
	for v := 0; v < n; v++ {
		for _, ai := range bg.out[v] {
			from[ai] = graph.NodeID(v)
		}
	}
	return NewRuntime(g, KindWitness, rank, from, bg.arcs, nil)
}

// priority is the contraction order heuristic: edge difference plus the
// contracted-neighbors term that spreads contraction evenly.
func priority(bg *buildGraph, v graph.NodeID, contractedNeighbors int) float64 {
	shortcuts := countShortcuts(bg, v)
	removed := 0
	for _, ai := range bg.out[v] {
		if !bg.contracted[bg.arcs[ai].To] {
			removed++
		}
	}
	for i, ai := range bg.in[v] {
		_ = ai
		if !bg.contracted[bg.inFrom[v][i]] {
			removed++
		}
	}
	return float64(shortcuts-removed) + 0.7*float64(contractedNeighbors)
}

// countShortcuts estimates how many shortcuts contracting v would insert.
func countShortcuts(bg *buildGraph, v graph.NodeID) int {
	count := 0
	forEachPair(bg, v, func(_, _ graph.NodeID, _ float64, needed bool) {
		if needed {
			count++
		}
	})
	return count
}

// contract removes v from the remaining graph, inserting shortcuts for
// every (u, w) pair whose shortest connection runs through v.
func contract(bg *buildGraph, v graph.NodeID) {
	type sc struct {
		u, w    graph.NodeID
		weight  float64
		in, out int32
	}
	var add []sc
	inArc := make(map[graph.NodeID]int32)
	for i, ai := range bg.in[v] {
		u := bg.inFrom[v][i]
		if bg.contracted[u] || u == v {
			continue
		}
		if prev, ok := inArc[u]; !ok || bg.arcs[ai].Weight < bg.arcs[prev].Weight {
			inArc[u] = ai
		}
	}
	forEachPair(bg, v, func(u, w graph.NodeID, weight float64, needed bool) {
		if needed {
			add = append(add, sc{u: u, w: w, weight: weight, in: inArc[u], out: outArc(bg, v, w)})
		}
	})
	for _, s := range add {
		bg.addArc(s.u, s.w, s.weight, -1, s.in, s.out)
	}
}

func outArc(bg *buildGraph, v, w graph.NodeID) int32 {
	best := int32(-1)
	bestW := math.Inf(1)
	for _, ai := range bg.out[v] {
		if bg.arcs[ai].To == w && bg.arcs[ai].Weight < bestW {
			best, bestW = ai, bg.arcs[ai].Weight
		}
	}
	return best
}

// forEachPair visits every (u, w) neighbour pair of v among uncontracted
// nodes and reports whether a shortcut u->w of the combined weight is
// needed (no witness path avoiding v is as short).
func forEachPair(bg *buildGraph, v graph.NodeID, visit func(u, w graph.NodeID, weight float64, needed bool)) {
	// Cheapest in/out arcs per distinct neighbour.
	inW := make(map[graph.NodeID]float64)
	for i, ai := range bg.in[v] {
		u := bg.inFrom[v][i]
		if bg.contracted[u] || u == v {
			continue
		}
		if w, ok := inW[u]; !ok || bg.arcs[ai].Weight < w {
			inW[u] = bg.arcs[ai].Weight
		}
	}
	outW := make(map[graph.NodeID]float64)
	for _, ai := range bg.out[v] {
		w := bg.arcs[ai].To
		if bg.contracted[w] || w == v {
			continue
		}
		if cur, ok := outW[w]; !ok || bg.arcs[ai].Weight < cur {
			outW[w] = bg.arcs[ai].Weight
		}
	}
	for u, wu := range inW {
		// One bounded witness search from u covers all targets.
		var maxVia float64
		for w, wv := range outW {
			if w == u {
				continue
			}
			if wu+wv > maxVia {
				maxVia = wu + wv
			}
		}
		if maxVia == 0 {
			continue
		}
		dist := witnessSearch(bg, u, v, maxVia)
		for w, wv := range outW {
			if w == u {
				continue
			}
			via := wu + wv
			needed := dist.DistOf(w) > via+1e-12
			visit(u, w, via, needed)
		}
	}
}

// witnessSearch runs a bounded Dijkstra from u among uncontracted nodes,
// skipping v, cut off at maxDist and a settle budget. It returns the
// build graph's reusable epoch-stamped scratch state, valid until the
// next witness search; unreached nodes read as +Inf.
func witnessSearch(bg *buildGraph, u, v graph.NodeID, maxDist float64) *sp.SearchState {
	const settleBudget = 60
	s := &bg.wit
	s.Begin(len(bg.out))
	s.Update(u, 0, -1)
	s.Heap.Push(u, 0)
	count := 0
	for s.Heap.Len() > 0 && count < settleBudget {
		node, prio := s.Heap.Pop()
		if s.Settled(node) || prio > maxDist {
			if prio > maxDist {
				break
			}
			continue
		}
		s.Settle(node)
		count++
		for _, ai := range bg.out[node] {
			a := bg.arcs[ai]
			if a.To == v || bg.contracted[a.To] {
				continue
			}
			nd := prio + a.Weight
			if nd <= maxDist && nd < s.DistOf(a.To) {
				s.Update(a.To, nd, -1)
				s.Heap.Push(a.To, nd)
			}
		}
	}
	return s
}
