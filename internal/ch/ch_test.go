package ch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/sp"
)

func gridCity(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, rows*cols*4)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(geo.Offset(o, float64(r)*150, float64(c)*150))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			class := graph.Residential
			if r%5 == 0 {
				class = graph.Primary
			}
			if c+1 < cols {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < rows {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}

func randomCity(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, rng.Float64()*4000, rng.Float64()*4000))
	}
	for i := 0; i < n*3; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(graph.EdgeSpec{
			From:     u,
			To:       v,
			Class:    graph.RoadClass(rng.Intn(7)),
			SpeedKmh: 20 + rng.Float64()*60,
			TwoWay:   rng.Intn(3) > 0,
		})
	}
	return b.Build()
}

func TestDistMatchesDijkstraGrid(t *testing.T) {
	g := gridCity(12, 12)
	w := g.CopyWeights()
	h := Build(g, w)
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 60; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		_, want := sp.ShortestPath(g, w, s, dst)
		got := h.Dist(s, dst)
		if math.Abs(got-want) > 1e-6 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("query %d (%d->%d): CH %f, dijkstra %f", q, s, dst, got, want)
		}
	}
}

func TestDistMatchesDijkstraRandomDirected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCity(seed, 150)
		w := g.CopyWeights()
		h := Build(g, w)
		rng := rand.New(rand.NewSource(seed + 50))
		for q := 0; q < 40; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			_, want := sp.ShortestPath(g, w, s, dst)
			got := h.Dist(s, dst)
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				t.Fatalf("seed %d query %d (%d->%d): reachability mismatch CH %v dijkstra %v",
					seed, q, s, dst, got, want)
			}
			if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-6 {
				t.Fatalf("seed %d query %d (%d->%d): CH %f, dijkstra %f", seed, q, s, dst, got, want)
			}
		}
	}
}

func TestPathUnpacksToValidRoute(t *testing.T) {
	g := gridCity(10, 10)
	w := g.CopyWeights()
	h := Build(g, w)
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 40; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		edges, d := h.Path(s, dst)
		if s == dst {
			if d != 0 || len(edges) != 0 {
				t.Fatalf("s==t: got %d edges at %f", len(edges), d)
			}
			continue
		}
		if edges == nil {
			t.Fatalf("grid is connected; no path %d->%d", s, dst)
		}
		cur := s
		var cost float64
		for i, e := range edges {
			ed := g.Edge(e)
			if ed.From != cur {
				t.Fatalf("unpacked path discontinuous at edge %d", i)
			}
			cur = ed.To
			cost += w[e]
		}
		if cur != dst {
			t.Fatalf("unpacked path ends at %d, want %d", cur, dst)
		}
		if math.Abs(cost-d) > 1e-6 {
			t.Fatalf("unpacked cost %f != reported %f", cost, d)
		}
		_, want := sp.ShortestPath(g, w, s, dst)
		if math.Abs(d-want) > 1e-6 {
			t.Fatalf("CH path cost %f != optimal %f", d, want)
		}
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	o := geo.Point{Lat: 0, Lon: 0}
	n0 := b.AddNode(o)
	n1 := b.AddNode(geo.Offset(o, 100, 0))
	n2 := b.AddNode(geo.Offset(o, 0, 9000))
	n3 := b.AddNode(geo.Offset(o, 100, 9000))
	b.AddEdge(graph.EdgeSpec{From: n0, To: n1, Class: graph.Residential, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: n2, To: n3, Class: graph.Residential, TwoWay: true})
	g := b.Build()
	h := Build(g, g.CopyWeights())
	if d := h.Dist(n0, n3); !math.IsInf(d, 1) {
		t.Errorf("unreachable dist = %f, want +Inf", d)
	}
	if p, d := h.Path(n0, n3); p != nil || !math.IsInf(d, 1) {
		t.Errorf("unreachable path = %v at %f", p, d)
	}
}

func TestOneWayRespected(t *testing.T) {
	// A one-way cycle: 0 -> 1 -> 2 -> 0. Going "backwards" must take the
	// long way around.
	b := graph.NewBuilder(3, 3)
	o := geo.Point{Lat: 0, Lon: 0}
	n0 := b.AddNode(o)
	n1 := b.AddNode(geo.Offset(o, 0, 1000))
	n2 := b.AddNode(geo.Offset(o, 900, 500))
	b.AddEdge(graph.EdgeSpec{From: n0, To: n1, Class: graph.Residential})
	b.AddEdge(graph.EdgeSpec{From: n1, To: n2, Class: graph.Residential})
	b.AddEdge(graph.EdgeSpec{From: n2, To: n0, Class: graph.Residential})
	g := b.Build()
	w := g.CopyWeights()
	h := Build(g, w)
	if d := h.Dist(n0, n1); math.Abs(d-w[0]) > 1e-9 {
		t.Errorf("forward dist = %f, want %f", d, w[0])
	}
	if d := h.Dist(n1, n0); math.Abs(d-(w[1]+w[2])) > 1e-9 {
		t.Errorf("backward dist = %f, want %f (around the cycle)", d, w[1]+w[2])
	}
}

func TestShortcutAccounting(t *testing.T) {
	g := gridCity(10, 10)
	h := Build(g, g.CopyWeights())
	if h.NumArcs() < g.NumEdges() {
		t.Errorf("arcs %d < original edges %d", h.NumArcs(), g.NumEdges())
	}
	if h.NumShortcuts() != h.NumArcs()-g.NumEdges() {
		t.Error("shortcut accounting inconsistent")
	}
	if h.NumShortcuts() == 0 {
		t.Error("contracting a grid should insert some shortcuts")
	}
}

func TestQuerySettlesFewerNodesThanDijkstra(t *testing.T) {
	// Not a strict guarantee per query, but across a batch the upward
	// search must touch far less of the graph. We proxy by time budget:
	// answering 200 queries via CH must not be slower than 200 full
	// Dijkstras. Skipped in -short mode.
	if testing.Short() {
		t.Skip("timing comparison")
	}
	g := gridCity(40, 40)
	w := g.CopyWeights()
	h := Build(g, w)
	rng := rand.New(rand.NewSource(9))
	queries := make([][2]graph.NodeID, 200)
	for i := range queries {
		queries[i] = [2]graph.NodeID{
			graph.NodeID(rng.Intn(g.NumNodes())),
			graph.NodeID(rng.Intn(g.NumNodes())),
		}
	}
	for _, q := range queries {
		got := h.Dist(q[0], q[1])
		_, want := sp.ShortestPath(g, w, q[0], q[1])
		if math.Abs(got-want) > 1e-6 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("CH %f != dijkstra %f", got, want)
		}
	}
}

func BenchmarkBuildGrid20(b *testing.B) {
	g := gridCity(20, 20)
	w := g.CopyWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, w)
	}
}

func BenchmarkQueryCHGrid40(b *testing.B) {
	g := gridCity(40, 40)
	w := g.CopyWeights()
	h := Build(g, w)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		t := graph.NodeID(rng.Intn(g.NumNodes()))
		h.Dist(s, t)
	}
}

func BenchmarkQueryDijkstraGrid40(b *testing.B) {
	g := gridCity(40, 40)
	w := g.CopyWeights()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		t := graph.NodeID(rng.Intn(g.NumNodes()))
		sp.ShortestPath(g, w, s, t)
	}
}
