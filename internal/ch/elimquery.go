package ch

import (
	"math"
	mbits "math/bits"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sp"
)

// The elimination-tree query engine: on a hierarchy whose upward
// neighborhoods are cliques (the CCH chordal supergraph), the upward
// search space of any node is contained in its elimination-tree root path
// (elimtree.go), so a point-to-point query needs no heap, no decrease-key
// and no stopping criterion — it walks the two root paths in ascending
// rank, relaxing upward arcs, and the answer is the best meeting label.
// The witness flavor has no elimination tree (its search spaces are not
// path-shaped), so it keeps the bidirectional search of query.go.
//
// Both engines compute every label as the same minimum over the same
// float sums, so their distances are bit-identical — the backend-matrix
// tests pin route sets and tables across engines byte-for-byte.

// elimCounters is the engine's concurrency-safe observability (plain
// atomics, cumulative per customized runtime — a weight swap installs a
// fresh runtime and with it fresh counters, like a selection cache).
type elimCounters struct {
	queries     atomic.Uint64
	truncated   atomic.Uint64
	ascentNodes atomic.Uint64
	lastAscent  atomic.Int64
}

// QueryStats reports which point-to-point engine a runtime answers with
// and, for the elimination-tree engine, its ascent telemetry.
type QueryStats struct {
	// Engine is "elimtree" or "bidij".
	Engine string
	// Queries counts point-to-point queries (Dist/Path) since this
	// runtime was customized; Truncated counts those whose forward ascent
	// was abandoned early because no remaining path node could beat the
	// incumbent; AscentNodes accumulates processed ascent nodes across
	// queries (AscentNodes/Queries is the mean ascent length).
	Queries     uint64
	Truncated   uint64
	AscentNodes uint64
	// LastAscent is the most recent query's processed node count (both
	// ascents), last writer wins.
	LastAscent int
}

// QueryStats returns the runtime's engine name and counters.
func (h *Runtime) QueryStats() QueryStats {
	if h.elim == nil || h.elimStats == nil {
		return QueryStats{Engine: "bidij"}
	}
	return QueryStats{
		Engine:      "elimtree",
		Queries:     h.elimStats.queries.Load(),
		Truncated:   h.elimStats.truncated.Load(),
		AscentNodes: h.elimStats.ascentNodes.Load(),
		LastAscent:  int(h.elimStats.lastAscent.Load()),
	}
}

// elimSearchInto is the elimination-tree counterpart of searchInto: same
// workspace, same parent-arc conventions (so Path reconstruction is
// shared), no heap. The walk is frontier-driven: each side keeps a bitmap
// of root-path depths holding a pending label (sp.AscentScratch), and the
// loop settles the deepest pending label of either side — jumping from
// label to label rather than chasing parent pointers through unlabeled
// ancestors, so the walk is O(labeled nodes), not O(path length). Depths
// strictly decrease, and every relax target is a strict ancestor of the
// node being settled (the clique property), so a settled label is final —
// Dijkstra's invariant without the heap. A node pending in both frontiers
// at once is a meet candidate (below the LCA the chains are node-disjoint
// and the equality check rejects the pairing); both directions prune
// relaxations against the incumbent, which is what lets short-range
// queries abandon the shared tail toward the root. Endpoints in different
// elimination-forest components never co-label a node and fall out as
// +Inf; a side whose frontier drains while the other still has work ends
// the walk (a meet needs labels from both directions).
func (h *Runtime) elimSearchInto(ws *sp.Workspace, s, t graph.NodeID) (float64, graph.NodeID) {
	if s == t {
		h.recordQuery(0, false)
		return 0, s
	}
	n := h.g.NumNodes()
	f, b := &ws.F, &ws.B
	f.Begin(n)
	b.Begin(n)
	f.Update(s, 0, -1)
	b.Update(t, 0, -1)

	dep := h.elim.Depth
	inert, arcTo, arcW, arcFrom := h.inert, h.arcTo, h.arcW, h.arcFrom
	fa, ba := &ws.FA, &ws.BA
	ds, dt := int(dep[s]), int(dep[t])
	top := max(ds, dt)
	fa.Begin(top)
	ba.Begin(top)
	fa.Mark(ds, s)
	ba.Mark(dt, t)
	// The frontier bitmaps and chains, fused inline (marks and scans run
	// per relaxation — keeping the slice headers in registers matters).
	fbits, fchain := fa.Raw()
	bbits, bchain := ba.Raw()

	nodes := 0
	fLive, bLive := 1, 1
	best := math.Inf(1)
	meet := graph.InvalidNode
	for d := top; ; d-- {
		// Scan both bitmaps down from d for the next pending depth.
		w, mask := d>>6, uint64(2)<<uint(d&63)-1
		bs := (fbits[w] | bbits[w]) & mask
		for bs == 0 {
			if w == 0 {
				h.recordQuery(nodes, false)
				return best, meet
			}
			w--
			bs = fbits[w] | bbits[w]
		}
		d = w<<6 + mbits.Len64(bs) - 1
		bit := uint64(1) << uint(d&63)
		var fx, bx graph.NodeID
		df, db := math.Inf(1), math.Inf(1)
		fok := fbits[w]&bit != 0
		if fok {
			fbits[w] &^= bit
			fx = fchain[d]
			fLive--
			nodes++
			df = f.DistOf(fx)
		}
		bok := bbits[w]&bit != 0
		if bok {
			bbits[w] &^= bit
			bx = bchain[d]
			bLive--
			nodes++
			db = b.DistOf(bx)
		}
		if fok && bok && fx == bx {
			if dd := df + db; dd < best {
				best = dd
				meet = fx
			}
		}
		// Relaxations peek the opposite direction's current label at every
		// node they improve: any labeled pairing is a valid path length, so
		// the incumbent forms as soon as the frontiers first overlap — high
		// in a shared separator clique, typically within the first settles —
		// and the nd < best gate then starves the rest of the walk. The last
		// write on either side of a co-labeled node always sees the other
		// side's final label, so best converges to the exact minimum even
		// when the walk stops before settling every pending label.
		if df < best {
			for _, ai := range h.upFwdAt(fx) {
				if inert != nil && inert[ai] {
					continue
				}
				to := arcTo[ai]
				nd := df + arcW[ai]
				if nd < best {
					improved, fresh := f.Improve(to, nd, graph.EdgeID(ai))
					if improved {
						if dd := nd + b.DistOf(to); dd < best {
							best = dd
							meet = to
						}
					}
					if fresh {
						fLive++
						dto := int(dep[to])
						fbits[dto>>6] |= 1 << uint(dto&63)
						fchain[dto] = to
					}
				}
			}
		}
		if db < best {
			for _, ai := range h.upBwdAt(bx) {
				if inert != nil && inert[ai] {
					continue
				}
				from := arcFrom[ai]
				nd := db + arcW[ai]
				if nd < best {
					improved, fresh := b.Improve(from, nd, graph.EdgeID(ai))
					if improved {
						if dd := nd + f.DistOf(from); dd < best {
							best = dd
							meet = from
						}
					}
					if fresh {
						bLive++
						dfrom := int(dep[from])
						bbits[dfrom>>6] |= 1 << uint(dfrom&63)
						bchain[dfrom] = from
					}
				}
			}
		}
		// Depth 0 is a root: nothing relaxes below it, the walk is complete.
		if d == 0 {
			h.recordQuery(nodes, false)
			return best, meet
		}
		// A meet needs labels from BOTH directions, and a drained side can
		// never label another node — either drain ends the walk.
		if fLive == 0 || bLive == 0 {
			h.recordQuery(nodes, true)
			return best, meet
		}
	}
}

func (h *Runtime) recordQuery(nodes int, truncated bool) {
	st := h.elimStats
	st.queries.Add(1)
	st.ascentNodes.Add(uint64(nodes))
	st.lastAscent.Store(int64(nodes))
	if truncated {
		st.truncated.Add(1)
	}
}

// elimAscendBackward settles t's complete backward search space — every
// labeled node of t's root path, unpruned, so the labels serve any source
// — by draining ba's pending frontier in descending depth order. Every
// relax target is a strict ancestor of the settled node (clique
// property), hence settles later, so settled labels are final.
func (h *Runtime) elimAscendBackward(ba *sp.AscentScratch, b *sp.SearchState, t graph.NodeID) (nodes int) {
	dep := h.elim.Depth
	inert, arcW, arcFrom := h.inert, h.arcW, h.arcFrom
	dt := int(dep[t])
	ba.Begin(dt)
	ba.Mark(dt, t)
	bbits, bchain := ba.Raw()
	for d := dt; ; d-- {
		w, mask := d>>6, uint64(2)<<uint(d&63)-1
		bs := bbits[w] & mask
		for bs == 0 {
			if w == 0 {
				return nodes
			}
			w--
			bs = bbits[w]
		}
		d = w<<6 + mbits.Len64(bs) - 1
		bbits[w] &^= 1 << uint(d&63)
		x := bchain[d]
		nodes++
		dx := b.DistOf(x)
		for _, ai := range h.upBwdAt(x) {
			if inert != nil && inert[ai] {
				continue
			}
			from := arcFrom[ai]
			if _, fresh := b.Improve(from, dx+arcW[ai], graph.EdgeID(ai)); fresh {
				dfrom := int(dep[from])
				bbits[dfrom>>6] |= 1 << uint(dfrom&63)
				bchain[dfrom] = from
			}
		}
		if d == 0 { // root settled: nothing pends below it
			return nodes
		}
	}
}

// elimAscendForward settles s's forward labels against the frozen
// backward labels: every settled node x first tries to improve the
// incumbent (df(x) + db(x); db is +Inf off t's search space), then
// relaxes its upward forward arcs — pruned against the incumbent, since
// a label that cannot beat it can never produce a better meet. truncated
// reports whether the frontier starved above depth 0 (incumbent pruning
// cut the tail, or s's reachable space ended below the root).
func (h *Runtime) elimAscendForward(fa *sp.AscentScratch, f, b *sp.SearchState, s graph.NodeID) (best float64, meet graph.NodeID, nodes int, truncated bool) {
	dep := h.elim.Depth
	inert, arcTo, arcW := h.inert, h.arcTo, h.arcW
	best = math.Inf(1)
	meet = graph.InvalidNode
	ds := int(dep[s])
	fa.Begin(ds)
	fa.Mark(ds, s)
	fbits, fchain := fa.Raw()
	last := ds
	for d := ds; ; d-- {
		w, mask := d>>6, uint64(2)<<uint(d&63)-1
		bs := fbits[w] & mask
		for bs == 0 {
			if w == 0 {
				return best, meet, nodes, last > 0
			}
			w--
			bs = fbits[w]
		}
		d = w<<6 + mbits.Len64(bs) - 1
		fbits[w] &^= 1 << uint(d&63)
		x := fchain[d]
		last = d
		nodes++
		dx := f.DistOf(x)
		if dx >= best {
			if d == 0 {
				return best, meet, nodes, false
			}
			continue
		}
		if dd := dx + b.DistOf(x); dd < best {
			best = dd
			meet = x
		}
		for _, ai := range h.upFwdAt(x) {
			if inert != nil && inert[ai] {
				continue
			}
			to := arcTo[ai]
			nd := dx + arcW[ai]
			if nd < best {
				improved, fresh := f.Improve(to, nd, graph.EdgeID(ai))
				if improved {
					// The frozen backward labels are final, so the peeked
					// pairing is exact — the incumbent tightens at write time
					// and starves the ascent that much sooner.
					if dd := nd + b.DistOf(to); dd < best {
						best = dd
						meet = to
					}
				}
				if fresh {
					dto := int(dep[to])
					fbits[dto>>6] |= 1 << uint(dto&63)
					fchain[dto] = to
				}
			}
		}
		if d == 0 { // root settled: nothing pends below it
			return best, meet, nodes, false
		}
	}
}

// AscentDists computes the point-to-point distances from every source to
// one target with a single shared backward ascent of t plus one truncated
// forward ascent per source — the bounded multi-source engine behind the
// matrix baseline's per-row bound computation. out[i] receives
// Dist(sources[i], t) (bit-identical to per-pair Dist; +Inf when
// unreachable) and must have len(sources) capacity. It reports false —
// and computes nothing — when the runtime carries no elimination tree;
// callers then fall back to per-pair Dist.
func (h *Runtime) AscentDists(sources []graph.NodeID, t graph.NodeID, out []float64) bool {
	if h.elim == nil {
		return false
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	n := h.g.NumNodes()
	f, b := &ws.F, &ws.B
	b.Begin(n)
	b.Update(t, 0, -1)
	bNodes := h.elimAscendBackward(&ws.BA, b, t)
	for i, s := range sources {
		if s == t {
			out[i] = 0
			h.recordQuery(0, false)
			continue
		}
		f.Begin(n) // O(1) epoch bump: the backward labels stay frozen
		f.Update(s, 0, -1)
		best, _, fNodes, truncated := h.elimAscendForward(&ws.FA, f, b, s)
		out[i] = best
		h.recordQuery(bNodes+fNodes, truncated)
	}
	return true
}
