package ch

import "repro/internal/graph"

// ElimTree is the elimination tree of a chordal supergraph: Parent[v] is
// v's lowest-ranked upward neighbor (graph.InvalidNode at the roots —
// nodes with no upward arcs, one per connected component). Because a
// node's upward neighborhood forms a clique, every upward neighbor of v —
// and transitively every node reachable from v by upward arcs — lies on
// v's unique root path, which is what lets a point-to-point query walk
// two root paths instead of running a priority-queue search (elimquery.go).
//
// The tree depends only on the contraction topology, never on weights, so
// one tree (built once per preprocessing) is shared by every
// customization. It is immutable and safe for concurrent use.
type ElimTree struct {
	// Parent[v] is the next node on v's root path, InvalidNode at roots.
	Parent []graph.NodeID
	// Depth[v] counts v's ancestors (0 at roots). Depth bounds every
	// ascent: a query from v touches at most Depth[v]+1 nodes.
	Depth []int32
}

// Height returns the number of nodes on the longest root path — the
// worst-case ascent length of any query.
func (t *ElimTree) Height() int {
	max := int32(-1)
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return int(max) + 1
}

// AvgLeafDepth returns the mean depth over the tree's leaves (nodes that
// are nobody's parent) — the typical ascent length of a query rooted at
// an unimportant node, which is what most real endpoints are.
func (t *ElimTree) AvgLeafDepth() float64 {
	isParent := make([]bool, len(t.Parent))
	for _, p := range t.Parent {
		if p >= 0 {
			isParent[p] = true
		}
	}
	var sum, leaves int
	for v, d := range t.Depth {
		if !isParent[v] {
			sum += int(d)
			leaves++
		}
	}
	if leaves == 0 {
		return 0
	}
	return float64(sum) / float64(leaves)
}
