package ch

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/sp"
)

// TreeBuilder computes complete one-to-all shortest-path trees from the
// hierarchy with the PHAST scheme (Delling et al., "PHAST: Hardware-
// accelerated shortest path trees"): instead of a heap-driven Dijkstra
// over the whole graph, a query is two near-linear array passes over the
// nodes in contraction order — an ascending pass that settles the upward
// search space of the root, and a descending pass that relaxes every
// downward arc once. Both passes are heap-free: arcs sorted by rank form
// a DAG, so processing nodes in rank order finalizes distances without
// any priority queue. This is the optimisation §II-B of the paper
// attributes to commercial choice-routing engines: the source and target
// trees the plateau join needs come out of the hierarchy's search spaces
// rather than from scratch.
//
// The produced trees are drop-in *sp.Tree values: distances are exact
// (banned +Inf edges stay unreachable walls) and parent pointers are
// *original-graph* edges — shortcut arcs are resolved to the original
// edge adjacent to each node via first/last-edge arrays computed at
// construction — so tree consumers (plateau join, path reconstruction)
// cannot tell them from Dijkstra-built trees.
//
// A TreeBuilder is immutable after construction and safe for concurrent
// use; per-query state lives in the caller's sp.Workspace plus a pooled
// rank-space scratch, so warm queries allocate nothing.
type TreeBuilder struct {
	n int
	// order lists all nodes in descending contraction rank; pos is the
	// inverse permutation. Both passes scan positions monotonically so
	// every arc is relaxed exactly once, after its upper endpoint's
	// distance is final.
	order []graph.NodeID
	pos   []int32
	// Two packed CSRs over the hierarchy's arcs, indexed by position.
	// fwdOff/fwdArcs holds, per node v, the arcs u→v with rank[u] >
	// rank[v]; bwdOff/bwdArcs the arcs v→w with rank[w] > rank[v]. Each
	// serves both directions: a Forward tree pushes along bwdArcs in
	// ascending rank (the upward search) and pulls along fwdArcs in
	// descending rank (the downward sweep); a Backward tree swaps the
	// two, which is exactly PHAST on the reverse graph. Arc endpoints are
	// stored as *positions*, so the hot loops touch sequential CSR memory
	// plus a rank-space distance array whose read side is the
	// already-processed, cache-warm region.
	fwdOff  []int32
	fwdArcs []downArc
	bwdOff  []int32
	bwdArcs []downArc
	// fwdEnds/bwdEnds give, aligned with the arc arrays, the original
	// edges at the two ends of each (possibly shortcut) arc: the parent
	// edge a tree stores when the arc wins a relaxation is the end
	// adjacent to the tree node — last for Forward trees, first for
	// Backward. They live apart from the hot records because they are
	// read only on improvement.
	fwdEnds []arcEnds
	bwdEnds []arcEnds
	// scratch pools the rank-space dist/parent arrays, so concurrent
	// queries stay allocation-free after warm-up.
	scratch sync.Pool
	// selScratch pools the position-space mark arrays of RPHAST target
	// selections (rphast.go), so concurrent Select calls stay
	// allocation-free after warm-up too.
	selScratch sync.Pool
}

// downArc is one packed CSR record: the position of the arc's
// higher-ranked endpoint and the arc weight.
type downArc struct {
	up int32
	w  float64
}

// arcEnds resolves an arc to its boundary original edges.
type arcEnds struct {
	first, last graph.EdgeID
}

// sweepScratch is the rank-space view of one tree build.
type sweepScratch struct {
	dist   []float64
	parent []graph.EdgeID
}

// initFor resets the scratch for a build over n positions rooted at
// position rootPos and returns the working views.
func (sc *sweepScratch) initFor(n int, rootPos int32) ([]float64, []graph.EdgeID) {
	distR, parentR := sc.dist[:n], sc.parent[:n]
	inf := math.Inf(1)
	for i := range distR {
		distR[i] = inf
		parentR[i] = -1
	}
	distR[rootPos] = 0
	return distR, parentR
}

// upwardPass is phase 1 of a PHAST build, shared by the full and the
// restricted (RPHAST) sweeps: positions in ascending rank. The upward arc
// set is a DAG ordered by rank, so by the time a node is scanned every
// upward path into it has been relaxed — no heap needed. Nodes outside
// the root's upward cone sit at +Inf and are skipped.
func upwardPass(distR []float64, parentR []graph.EdgeID, upOff []int32, upArcs []downArc, upEnds []arcEnds, useLast bool) {
	for i := len(distR) - 1; i >= 0; i-- {
		d := distR[i]
		if math.IsInf(d, 1) {
			continue
		}
		lo, hi := upOff[i], upOff[i+1]
		arcs := upArcs[lo:hi]
		for k := range arcs {
			a := arcs[k]
			if cand := d + a.w; cand < distR[a.up] {
				distR[a.up] = cand
				e := upEnds[lo+int32(k)]
				if useLast {
					parentR[a.up] = e.last
				} else {
					parentR[a.up] = e.first
				}
			}
		}
	}
}

// NewTreeBuilder derives the one-shot PHAST ordering and packed
// adjacency from the hierarchy. The work is a few linear passes over the
// arc set, negligible next to Build itself.
func (h *Runtime) NewTreeBuilder() *TreeBuilder {
	n := h.g.NumNodes()
	tb := &TreeBuilder{n: n}

	// Resolve every arc's boundary original edges. Shortcut constituents
	// are always inserted before the shortcut referencing them, so one
	// forward pass suffices.
	m := len(h.arcs)
	firstEdge := make([]graph.EdgeID, m)
	lastEdge := make([]graph.EdgeID, m)
	for ai := range h.arcs {
		a := &h.arcs[ai]
		switch {
		case a.Orig >= 0:
			firstEdge[ai] = a.Orig
			lastEdge[ai] = a.Orig
		case a.Skip1 >= 0:
			firstEdge[ai] = firstEdge[a.Skip1]
			lastEdge[ai] = lastEdge[a.Skip2]
		default:
			// An inert arc: the pair exists in the topology but the current
			// metric gives it no realizing path (CCH only). It carries +Inf
			// and can never win a relaxation, so it resolves to no edge.
			firstEdge[ai] = -1
			lastEdge[ai] = -1
		}
	}

	// Nodes in descending contraction rank (rank is a permutation).
	tb.order = make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		tb.order[n-1-int(h.rank[v])] = graph.NodeID(v)
	}
	tb.pos = make([]int32, n)
	for i, v := range tb.order {
		tb.pos[v] = int32(i)
	}

	// Pack the position-space CSRs. upBwdAt(v) holds exactly the arcs
	// entering v from higher-ranked tails, upFwdAt(v) the arcs leaving v
	// toward higher-ranked heads. Inert arcs (strictly dominated under
	// the current metric, perfect-customized CCH only) are dropped here,
	// so both full PHAST sweeps and RPHAST selections skip them without
	// a per-arc check in the hot loops.
	tb.fwdOff = make([]int32, n+1)
	tb.bwdOff = make([]int32, n+1)
	for i, v := range tb.order {
		nf, nb := int32(0), int32(0)
		for _, ai := range h.upBwdAt(v) {
			if !h.arcInert(ai) {
				nf++
			}
		}
		for _, ai := range h.upFwdAt(v) {
			if !h.arcInert(ai) {
				nb++
			}
		}
		tb.fwdOff[i+1] = tb.fwdOff[i] + nf
		tb.bwdOff[i+1] = tb.bwdOff[i] + nb
	}
	tb.fwdArcs = make([]downArc, tb.fwdOff[n])
	tb.fwdEnds = make([]arcEnds, tb.fwdOff[n])
	tb.bwdArcs = make([]downArc, tb.bwdOff[n])
	tb.bwdEnds = make([]arcEnds, tb.bwdOff[n])
	for i, v := range tb.order {
		k := tb.fwdOff[i]
		for _, ai := range h.upBwdAt(v) {
			if h.arcInert(ai) {
				continue
			}
			tb.fwdArcs[k] = downArc{up: tb.pos[h.arcFrom[ai]], w: h.arcs[ai].Weight}
			tb.fwdEnds[k] = arcEnds{first: firstEdge[ai], last: lastEdge[ai]}
			k++
		}
		k = tb.bwdOff[i]
		for _, ai := range h.upFwdAt(v) {
			if h.arcInert(ai) {
				continue
			}
			tb.bwdArcs[k] = downArc{up: tb.pos[h.arcs[ai].To], w: h.arcs[ai].Weight}
			tb.bwdEnds[k] = arcEnds{first: firstEdge[ai], last: lastEdge[ai]}
			k++
		}
	}
	tb.scratch.New = func() any {
		return &sweepScratch{dist: make([]float64, n), parent: make([]graph.EdgeID, n)}
	}
	tb.selScratch.New = func() any { return &selectScratch{mark: make([]bool, n)} }
	return tb
}

// arcInert reports whether the runtime's customization marked arc ai
// inert (strictly dominated; safe for queries and sweeps to skip).
func (h *Runtime) arcInert(ai int32) bool { return h.inert != nil && h.inert[ai] }

// NumSweepArcs returns how many arcs the full forward and backward
// downward sweeps relax — the per-tree work a customization's topology
// implies. Perfect CCH customization shrinks both by dropping inert arcs.
func (tb *TreeBuilder) NumSweepArcs() (fwd, bwd int) {
	return len(tb.fwdArcs), len(tb.bwdArcs)
}

// BuildTree computes the complete shortest-path tree rooted at root and
// returns an independently owned copy. Distances equal full-Dijkstra
// distances on the original graph under the hierarchy's weights.
func (tb *TreeBuilder) BuildTree(root graph.NodeID, dir sp.Direction) *sp.Tree {
	ws := sp.GetWorkspace()
	defer ws.Release()
	return tb.BuildTreeInto(ws, root, dir).Clone()
}

// BuildTreeInto is BuildTree on workspace memory: the returned Tree
// aliases ws's tree slot for dir and is valid until the next search using
// that slot. After warm-up (workspace and scratch pool) a build allocates
// nothing.
func (tb *TreeBuilder) BuildTreeInto(ws *sp.Workspace, root graph.NodeID, dir sp.Direction) *sp.Tree {
	t, st := ws.TreeSlot(dir)
	n := tb.n
	dist, parent := st.DenseArrays(n)

	upOff, upArcs, upEnds := tb.bwdOff, tb.bwdArcs, tb.bwdEnds
	downOff, downArcs, downEnds := tb.fwdOff, tb.fwdArcs, tb.fwdEnds
	if dir == sp.Backward {
		upOff, upArcs, upEnds = tb.fwdOff, tb.fwdArcs, tb.fwdEnds
		downOff, downArcs, downEnds = tb.bwdOff, tb.bwdArcs, tb.bwdEnds
	}
	useLast := dir == sp.Forward

	sc := tb.scratch.Get().(*sweepScratch)
	distR, parentR := sc.initFor(n, tb.pos[root])

	// Phase 1, the upward search.
	upwardPass(distR, parentR, upOff, upArcs, upEnds, useLast)

	// Phase 2, the downward sweep: positions in descending rank, one pull
	// min-fold per node. Every downward arc's upper endpoint is final when
	// its lower endpoint is scanned; +Inf distances propagate harmlessly
	// (Inf + w never beats a finite candidate, and Inf-only nodes stay
	// unreachable).
	for i := 0; i < n; i++ {
		d := distR[i]
		lo, hi := downOff[i], downOff[i+1]
		arcs := downArcs[lo:hi]
		best := -1
		for k := range arcs {
			a := arcs[k]
			if cand := distR[a.up] + a.w; cand < d {
				d = cand
				best = k
			}
		}
		if best >= 0 {
			distR[i] = d
			e := downEnds[lo+int32(best)]
			if useLast {
				parentR[i] = e.last
			} else {
				parentR[i] = e.first
			}
		}
	}

	// Scatter the rank-space result into the node-indexed workspace
	// arrays the Tree exposes.
	for i, v := range tb.order {
		dist[v] = distR[i]
		parent[v] = parentR[i]
	}
	tb.scratch.Put(sc)
	t.Root, t.Dir = root, dir
	t.Dist, t.Parent = dist, parent
	return t
}
