package ch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sp"
)

// The tentpole property: PHAST trees are indistinguishable from Dijkstra
// trees. Dist must match exactly (same reachability, same values up to
// float summation order), and Parent must be cost-equivalent: an original
// edge adjacent to the node whose endpoints' distances differ by exactly
// the edge weight, chaining back to the root.

const distTol = 1e-9 // relative; shortcut weights are pre-summed, so
// association order of the float additions can differ from Dijkstra's
// left-to-right fold by a few ulps.

func distEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= distTol*scale
}

// checkTreeEquivalence verifies got (a PHAST tree) against want (the
// Dijkstra tree with identical root/dir) on g under weights.
func checkTreeEquivalence(t *testing.T, g *graph.Graph, weights []float64, got, want *sp.Tree) {
	t.Helper()
	if got.Root != want.Root || got.Dir != want.Dir {
		t.Fatalf("tree header mismatch: root %d/%d dir %d/%d", got.Root, want.Root, got.Dir, want.Dir)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if !distEqual(got.Dist[v], want.Dist[v]) {
			t.Fatalf("root %d dir %d node %d: CH dist %v, dijkstra %v", got.Root, got.Dir, v, got.Dist[v], want.Dist[v])
		}
		if !got.Reached(v) {
			if got.Parent[v] != -1 {
				t.Fatalf("node %d unreachable but parent %d", v, got.Parent[v])
			}
			continue
		}
		if v == got.Root {
			if got.Parent[v] != -1 {
				t.Fatalf("root %d has parent %d", v, got.Parent[v])
			}
			continue
		}
		// Parent cost-equivalence: the recorded original edge must be
		// adjacent with the right orientation and lie on a shortest path.
		e := got.Parent[v]
		if e < 0 {
			t.Fatalf("reached node %d has no parent", v)
		}
		ed := g.Edge(e)
		var prev graph.NodeID
		if got.Dir == sp.Forward {
			if ed.To != v {
				t.Fatalf("forward parent edge %d of node %d ends at %d", e, v, ed.To)
			}
			prev = ed.From
		} else {
			if ed.From != v {
				t.Fatalf("backward parent edge %d of node %d starts at %d", e, v, ed.From)
			}
			prev = ed.To
		}
		if !distEqual(got.Dist[prev]+weights[e], got.Dist[v]) {
			t.Fatalf("node %d parent edge %d not on a shortest path: %v + %v != %v",
				v, e, got.Dist[prev], weights[e], got.Dist[v])
		}
	}
	// Parent chains must reconstruct to the root for every reached node.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if !got.Reached(v) {
			continue
		}
		if got.PathTo(g, v) == nil && v != got.Root {
			t.Fatalf("node %d reached but PathTo failed", v)
		}
	}
}

func checkBothTrees(t *testing.T, g *graph.Graph, weights []float64, tb *TreeBuilder, root graph.NodeID) {
	t.Helper()
	for _, dir := range []sp.Direction{sp.Forward, sp.Backward} {
		got := tb.BuildTree(root, dir)
		want := sp.BuildTree(g, weights, root, dir)
		checkTreeEquivalence(t, g, weights, got, want)
	}
}

func TestTreeBuilderMatchesDijkstraGrid(t *testing.T) {
	g := gridCity(12, 12)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 12; q++ {
		checkBothTrees(t, g, w, tb, graph.NodeID(rng.Intn(g.NumNodes())))
	}
}

func TestTreeBuilderMatchesDijkstraRandomDirected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCity(seed, 150)
		w := g.CopyWeights()
		tb := Build(g, w).NewTreeBuilder()
		rng := rand.New(rand.NewSource(seed + 77))
		for q := 0; q < 8; q++ {
			checkBothTrees(t, g, w, tb, graph.NodeID(rng.Intn(g.NumNodes())))
		}
	}
}

// TestTreeBuilderBannedEdges pins the +Inf ban semantics: a hierarchy
// built on weights with banned edges must produce trees that never cross
// them, matching Dijkstra's reachability exactly.
func TestTreeBuilderBannedEdges(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := randomCity(seed+20, 120)
		w := g.CopyWeights()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < g.NumEdges()/5; i++ {
			w[rng.Intn(g.NumEdges())] = math.Inf(1)
		}
		tb := Build(g, w).NewTreeBuilder()
		for q := 0; q < 6; q++ {
			checkBothTrees(t, g, w, tb, graph.NodeID(rng.Intn(g.NumNodes())))
		}
	}
}

// TestTreeBuilderZeroAlloc asserts the headline PHAST property: with a
// warm workspace, the upward search + downward sweep allocate nothing.
func TestTreeBuilderZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := gridCity(20, 20)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	ws := sp.NewWorkspace()
	root := graph.NodeID(g.NumNodes() / 2)
	for _, dir := range []sp.Direction{sp.Forward, sp.Backward} {
		dir := dir
		tb.BuildTreeInto(ws, root, dir) // warm up
		if allocs := testing.AllocsPerRun(20, func() { tb.BuildTreeInto(ws, root, dir) }); allocs > 0 {
			t.Errorf("BuildTreeInto dir %d: %v allocs/op after warm-up, want 0", dir, allocs)
		}
	}
}

// TestTreeBuilderConcurrent drives one shared TreeBuilder from many
// goroutines (as core.Engine does); run with -race to verify immutability.
func TestTreeBuilderConcurrent(t *testing.T) {
	g := gridCity(10, 10)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ws := sp.NewWorkspace()
			for q := 0; q < 20; q++ {
				root := graph.NodeID(rng.Intn(g.NumNodes()))
				tree := tb.BuildTreeInto(ws, root, sp.Forward)
				if tree.Dist[root] != 0 {
					done <- errDistRoot
					return
				}
			}
			done <- nil
		}(int64(i))
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errDistRoot = errRoot{}

type errRoot struct{}

func (errRoot) Error() string { return "root distance nonzero" }

func BenchmarkTreePHASTGrid40(b *testing.B) {
	g := gridCity(40, 40)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	ws := sp.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.BuildTreeInto(ws, 0, sp.Forward)
	}
}

func BenchmarkTreeDijkstraGrid40(b *testing.B) {
	g := gridCity(40, 40)
	w := g.CopyWeights()
	ws := sp.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.BuildTreeInto(ws, g, w, 0, sp.Forward)
	}
}
