package ch

import (
	"math"

	"repro/internal/graph"
	"repro/internal/sp"
)

// Dist returns the exact shortest travel time from s to t, or +Inf if t is
// unreachable. With an elimination tree attached (the CCH flavors) the
// query walks the two root paths heap-free (elimquery.go); otherwise it
// runs the standard bidirectional upward Dijkstra: the forward frontier
// climbs rank-increasing arcs from s, the backward frontier climbs from
// t, and the best meeting node gives the answer. Both engines return
// bit-identical distances.
func (h *Runtime) Dist(s, t graph.NodeID) float64 {
	ws := sp.GetWorkspace()
	defer ws.Release()
	var d float64
	if h.elim != nil {
		d, _ = h.elimSearchInto(ws, s, t)
	} else {
		d, _ = h.searchInto(ws, s, t)
	}
	return d
}

// Path returns the shortest s-t path as original graph edges together with
// its travel time. Shortcuts are unpacked recursively. It returns
// (nil, +Inf) when t is unreachable.
func (h *Runtime) Path(s, t graph.NodeID) ([]graph.EdgeID, float64) {
	ws := sp.GetWorkspace()
	defer ws.Release()
	var d float64
	var meet graph.NodeID
	if h.elim != nil {
		d, meet = h.elimSearchInto(ws, s, t)
	} else {
		d, meet = h.searchInto(ws, s, t)
	}
	if math.IsInf(d, 1) {
		return nil, d
	}
	if s == t {
		return []graph.EdgeID{}, 0
	}
	// Forward chain: arcs from s up to the meeting node, then backward
	// chain from the meeting node down to t.
	var upArcs []int32
	for cur := meet; cur != s; {
		ai := int32(ws.F.ParentOf(cur))
		upArcs = append(upArcs, ai)
		cur = h.arcFrom[ai]
	}
	reverseInt32(upArcs)
	var downArcs []int32
	for cur := meet; cur != t; {
		ai := int32(ws.B.ParentOf(cur))
		downArcs = append(downArcs, ai)
		cur = h.arcs[ai].To
	}
	var edges []graph.EdgeID
	for _, ai := range upArcs {
		h.unpack(ai, &edges)
	}
	for _, ai := range downArcs {
		h.unpack(ai, &edges)
	}
	return edges, d
}

// unpack appends the original edges of an arc, expanding shortcuts.
func (h *Runtime) unpack(ai int32, out *[]graph.EdgeID) {
	a := h.arcs[ai]
	if a.Orig >= 0 {
		*out = append(*out, a.Orig)
		return
	}
	h.unpack(a.Skip1, out)
	h.unpack(a.Skip2, out)
}

// searchInto runs the bidirectional upward search on the workspace's two
// epoch-stamped search states (parent slots hold arc indices rather than
// graph edges) and returns the distance and meeting node. Earlier versions
// allocated four maps and two container/heap queues per query; the
// workspace makes repeated queries allocation-free.
func (h *Runtime) searchInto(ws *sp.Workspace, s, t graph.NodeID) (float64, graph.NodeID) {
	if s == t {
		return 0, s
	}
	n := h.g.NumNodes()
	f, b := &ws.F, &ws.B
	f.Begin(n)
	b.Begin(n)
	f.Update(s, 0, -1)
	f.Heap.Push(s, 0)
	b.Update(t, 0, -1)
	b.Heap.Push(t, 0)

	best := math.Inf(1)
	meet := graph.InvalidNode
	inert, arcTo, arcW, arcFrom := h.inert, h.arcTo, h.arcW, h.arcFrom

	for f.Heap.Len() > 0 || b.Heap.Len() > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if f.Heap.Len() > 0 {
			topF = f.Heap.MinPrio()
		}
		if b.Heap.Len() > 0 {
			topB = b.Heap.MinPrio()
		}
		if math.Min(topF, topB) >= best {
			break
		}
		if topF <= topB && f.Heap.Len() > 0 {
			u, du := f.Heap.Pop()
			if f.Settled(u) {
				continue
			}
			f.Settle(u)
			if d := du + b.DistOf(u); d < best {
				best = d
				meet = u
			}
			for _, ai := range h.upFwdAt(u) {
				if inert != nil && inert[ai] {
					continue
				}
				to := arcTo[ai]
				nd := du + arcW[ai]
				if nd < f.DistOf(to) {
					f.Update(to, nd, graph.EdgeID(ai))
					f.Heap.Push(to, nd)
				}
			}
		} else if b.Heap.Len() > 0 {
			u, du := b.Heap.Pop()
			if b.Settled(u) {
				continue
			}
			b.Settle(u)
			if d := du + f.DistOf(u); d < best {
				best = d
				meet = u
			}
			for _, ai := range h.upBwdAt(u) {
				if inert != nil && inert[ai] {
					continue
				}
				from := arcFrom[ai]
				nd := du + arcW[ai]
				if nd < b.DistOf(from) {
					b.Update(from, nd, graph.EdgeID(ai))
					b.Heap.Push(from, nd)
				}
			}
		}
	}
	return best, meet
}

// NumArcs returns the hierarchy's arc count (original edges + shortcuts),
// a preprocessing size measure.
func (h *Runtime) NumArcs() int { return len(h.arcs) }

// NumShortcuts returns the number of arcs not backed by a single original
// edge. For the witness flavor this equals NumArcs minus the graph's edge
// count; for the CCH flavor the split is metric-dependent (an arc counts
// as a shortcut when the current customization resolved it through a
// lower triangle, or left it impassable).
func (h *Runtime) NumShortcuts() int {
	count := 0
	for i := range h.arcs {
		if h.arcs[i].Orig < 0 {
			count++
		}
	}
	return count
}

func reverseInt32(xs []int32) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
