package ch

import (
	"container/heap"
	"math"

	"repro/internal/graph"
)

// Dist returns the exact shortest travel time from s to t, or +Inf if t is
// unreachable. The search is the standard bidirectional upward Dijkstra:
// the forward frontier climbs rank-increasing arcs from s, the backward
// frontier climbs from t, and the best meeting node gives the answer.
func (h *Hierarchy) Dist(s, t graph.NodeID) float64 {
	d, _, _, _ := h.query(s, t)
	return d
}

// Path returns the shortest s-t path as original graph edges together with
// its travel time. Shortcuts are unpacked recursively. It returns
// (nil, +Inf) when t is unreachable.
func (h *Hierarchy) Path(s, t graph.NodeID) ([]graph.EdgeID, float64) {
	d, meet, parF, parB := h.query(s, t)
	if math.IsInf(d, 1) {
		return nil, d
	}
	if s == t {
		return []graph.EdgeID{}, 0
	}
	// Forward chain: arcs from s up to the meeting node, then backward
	// chain from the meeting node down to t.
	var upArcs []int32
	for cur := meet; cur != s; {
		ai := parF[cur]
		upArcs = append(upArcs, ai)
		cur = h.arcFrom[ai]
	}
	reverseInt32(upArcs)
	var downArcs []int32
	for cur := meet; cur != t; {
		ai := parB[cur]
		downArcs = append(downArcs, ai)
		cur = h.arcs[ai].to
	}
	var edges []graph.EdgeID
	for _, ai := range upArcs {
		h.unpack(ai, &edges)
	}
	for _, ai := range downArcs {
		h.unpack(ai, &edges)
	}
	return edges, d
}

// unpack appends the original edges of an arc, expanding shortcuts.
func (h *Hierarchy) unpack(ai int32, out *[]graph.EdgeID) {
	a := h.arcs[ai]
	if a.orig >= 0 {
		*out = append(*out, a.orig)
		return
	}
	h.unpack(a.skip1, out)
	h.unpack(a.skip2, out)
}

// query runs the bidirectional upward search and returns the distance,
// meeting node and both parent-arc maps.
func (h *Hierarchy) query(s, t graph.NodeID) (float64, graph.NodeID, map[graph.NodeID]int32, map[graph.NodeID]int32) {
	if s == t {
		return 0, s, nil, nil
	}
	distF := map[graph.NodeID]float64{s: 0}
	distB := map[graph.NodeID]float64{t: 0}
	parF := map[graph.NodeID]int32{}
	parB := map[graph.NodeID]int32{}
	pqF, pqB := &nodePQ{}, &nodePQ{}
	heap.Init(pqF)
	heap.Init(pqB)
	heap.Push(pqF, pqItem{node: s, prio: 0})
	heap.Push(pqB, pqItem{node: t, prio: 0})
	setF := map[graph.NodeID]bool{}
	setB := map[graph.NodeID]bool{}

	best := math.Inf(1)
	meet := graph.InvalidNode
	improve := func(v graph.NodeID) {
		df, okF := distF[v]
		db, okB := distB[v]
		if okF && okB && df+db < best {
			best = df + db
			meet = v
		}
	}

	for pqF.Len() > 0 || pqB.Len() > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if pqF.Len() > 0 {
			topF = (*pqF)[0].prio
		}
		if pqB.Len() > 0 {
			topB = (*pqB)[0].prio
		}
		if math.Min(topF, topB) >= best {
			break
		}
		if topF <= topB && pqF.Len() > 0 {
			it := heap.Pop(pqF).(pqItem)
			if setF[it.node] {
				continue
			}
			setF[it.node] = true
			improve(it.node)
			for _, ai := range h.upFwd[it.node] {
				a := h.arcs[ai]
				nd := it.prio + a.weight
				if cur, ok := distF[a.to]; !ok || nd < cur {
					distF[a.to] = nd
					parF[a.to] = ai
					heap.Push(pqF, pqItem{node: a.to, prio: nd})
				}
			}
		} else if pqB.Len() > 0 {
			it := heap.Pop(pqB).(pqItem)
			if setB[it.node] {
				continue
			}
			setB[it.node] = true
			improve(it.node)
			for _, ai := range h.upBwd[it.node] {
				u := h.arcFrom[ai]
				nd := it.prio + h.arcs[ai].weight
				if cur, ok := distB[u]; !ok || nd < cur {
					distB[u] = nd
					parB[u] = ai
					heap.Push(pqB, pqItem{node: u, prio: nd})
				}
			}
		}
	}
	if meet == graph.InvalidNode {
		return math.Inf(1), meet, nil, nil
	}
	return best, meet, parF, parB
}

// NumArcs returns the hierarchy's arc count (original edges + shortcuts),
// a preprocessing size measure.
func (h *Hierarchy) NumArcs() int { return len(h.arcs) }

// NumShortcuts returns the number of inserted shortcut arcs.
func (h *Hierarchy) NumShortcuts() int { return len(h.arcs) - h.g.NumEdges() }

func reverseInt32(xs []int32) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
