package ch

import (
	"testing"

	"repro/internal/graph"
)

// TestDistNearZeroAlloc asserts the workspace-backed CH query allocates
// (almost) nothing per call once the pooled workspace is warm. The old
// map-and-container/heap implementation spent ~450 allocations per query.
// "Almost" because sync.Pool may be drained by a GC between runs, forcing
// a one-off workspace rebuild.
func TestDistNearZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := gridCity(20, 20)
	h := Build(g, g.CopyWeights())
	s, d := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	h.Dist(s, d) // warm the pooled workspace
	if allocs := testing.AllocsPerRun(50, func() { h.Dist(s, d) }); allocs >= 1 {
		t.Errorf("Dist: %v allocs/op after warm-up, want ~0", allocs)
	}
}
