//go:build !race

package ch

const raceEnabled = false
