package ch

// Recustomize returns a hierarchy over the same graph, contraction order
// and shortcut topology, with every arc weight recomputed for a new weight
// vector: original arcs read weights[orig] directly, shortcut arcs become
// the sum of their two constituent arcs (constituents are always inserted
// before the shortcut referencing them, so a single forward pass
// suffices). This is the witness flavor's live-traffic path: a full Build
// spends almost all of its time in bounded witness searches, while
// re-customization is one linear pass over the arc array — orders of
// magnitude cheaper — so a serving layer can follow a stream of weight
// snapshots by re-customizing in the background and double-buffering the
// hierarchy swap.
//
// Semantics under the new metric:
//
//   - Every arc weight is the exact weight of a real path in the graph, so
//     distances out of the re-customized hierarchy are always *upper
//     bounds* on true shortest distances, and any unpacked path is a real
//     path with exactly the reported weight.
//   - Banned edges (+Inf) stay impassable: a shortcut containing a banned
//     edge sums to +Inf and can never win a relaxation, so no search
//     through the hierarchy ever routes over a closure.
//   - Distances are *exact* whenever the new metric preserves the witness
//     structure the hierarchy was contracted under — in particular for any
//     uniform rescaling, and in practice for the bounded congestion
//     multipliers the traffic model produces. A metric that flips many
//     witnesses can leave some node pairs with over-estimated (even +Inf)
//     distances because a shortcut pruned at Build time is missing; the
//     guaranteed-exact fix is the customizable flavor (repro/internal/cch),
//     contracted without witness pruning.
//
// The receiver is not modified; the returned hierarchy shares the
// immutable order/topology arrays with it and is safe for concurrent
// queries once returned.
//
// Recustomize is the witness-flavor path only and refuses runtimes
// carrying a flavor customize hook (CCH): summing a CCH runtime's stale
// triangle decomposition under a new metric would silently demote its
// exactness guarantee to the witness flavor's upper bounds. Metric swaps
// on any flavor go through Customize.
func (h *Runtime) Recustomize(weights []float64) *Runtime {
	if h.customize != nil {
		panic("ch: Recustomize is the witness-flavor path; use Customize on a " + h.kind + " hierarchy")
	}
	arcs := make([]Arc, len(h.arcs))
	copy(arcs, h.arcs)
	for i := range arcs {
		a := &arcs[i]
		switch {
		case a.Orig >= 0:
			a.Weight = weights[a.Orig]
		case a.Skip1 >= 0:
			a.Weight = arcs[a.Skip1].Weight + arcs[a.Skip2].Weight
		}
	}
	return h.WithArcs(arcs)
}
