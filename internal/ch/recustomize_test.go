package ch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sp"
)

// recustomizeTestGraph reuses the random network generator of ch_test.go;
// not every pair is reachable, which the assertions below tolerate.
func recustomizeTestGraph(t *testing.T, seed int64) (*graph.Graph, []float64) {
	t.Helper()
	g := randomCity(seed, 60)
	return g, g.CopyWeights()
}

func TestRecustomizeSameWeightsIsIdentical(t *testing.T) {
	g, w := recustomizeTestGraph(t, 1)
	h := Build(g, w)
	rh := h.Recustomize(w)
	if rh.NumArcs() != h.NumArcs() || rh.NumShortcuts() != h.NumShortcuts() {
		t.Fatalf("topology changed: %d/%d arcs, %d/%d shortcuts",
			rh.NumArcs(), h.NumArcs(), rh.NumShortcuts(), h.NumShortcuts())
	}
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 7 {
		for tt := graph.NodeID(0); int(tt) < g.NumNodes(); tt += 11 {
			if d1, d2 := h.Dist(s, tt), rh.Dist(s, tt); d1 != d2 {
				t.Fatalf("Dist(%d,%d): original %g, re-customized %g", s, tt, d1, d2)
			}
		}
	}
}

// TestRecustomizeScaledWeightsExact: uniform rescaling preserves every
// witness, so the re-customized hierarchy must be exactly as good as a
// from-scratch Dijkstra on the new metric — distances AND tree parents.
func TestRecustomizeScaledWeightsExact(t *testing.T) {
	g, w := recustomizeTestGraph(t, 2)
	h := Build(g, w)

	scaled := make([]float64, len(w))
	for i := range w {
		scaled[i] = 1.7 * w[i]
	}
	rh := h.Recustomize(scaled)
	tb := rh.NewTreeBuilder()

	ws := sp.GetWorkspace()
	defer ws.Release()
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 9 {
		want := sp.BuildTree(g, scaled, s, sp.Forward)
		got := tb.BuildTreeInto(ws, s, sp.Forward)
		for v := 0; v < g.NumNodes(); v++ {
			dw, dg := want.Dist[v], got.Dist[v]
			if math.IsInf(dw, 1) != math.IsInf(dg, 1) || (!math.IsInf(dw, 1) && math.Abs(dw-dg) > 1e-7) {
				t.Fatalf("root %d node %d: dijkstra %g, re-customized CH %g", s, v, dw, dg)
			}
		}
	}
}

// TestRecustomizeBanIsImpassable: +Inf edges in the new snapshot must stay
// walls — no tree out of the re-customized hierarchy may use a banned
// edge, and fully disconnected targets must read +Inf.
func TestRecustomizeBanIsImpassable(t *testing.T) {
	g, w := recustomizeTestGraph(t, 3)
	h := Build(g, w)

	rng := rand.New(rand.NewSource(77))
	banned := map[graph.EdgeID]bool{}
	bw := make([]float64, len(w))
	copy(bw, w)
	for len(banned) < g.NumEdges()/10 {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		banned[e] = true
		bw[e] = math.Inf(1)
	}
	rh := h.Recustomize(bw)
	tb := rh.NewTreeBuilder()
	ws := sp.GetWorkspace()
	defer ws.Release()
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 5 {
		tree := tb.BuildTreeInto(ws, s, sp.Forward)
		for v := 0; v < g.NumNodes(); v++ {
			if e := tree.Parent[v]; e >= 0 && banned[e] {
				t.Fatalf("root %d: tree parent of %d is banned edge %d", s, v, e)
			}
			if e := tree.Parent[v]; e >= 0 && !math.IsInf(tree.Dist[v], 1) && math.IsInf(bw[e], 1) {
				t.Fatalf("root %d: finite distance through banned parent at %d", s, v)
			}
		}
		// Anything Dijkstra cannot reach under the banned metric, the
		// hierarchy must not claim to reach either (upper-bound property).
		want := sp.BuildTree(g, bw, s, sp.Forward)
		for v := 0; v < g.NumNodes(); v++ {
			if math.IsInf(want.Dist[v], 1) && !math.IsInf(tree.Dist[v], 1) {
				t.Fatalf("root %d: CH reaches %d which is disconnected under bans", s, v)
			}
			if !math.IsInf(tree.Dist[v], 1) && tree.Dist[v] < want.Dist[v]-1e-7 {
				t.Fatalf("root %d node %d: CH distance %g below true %g", s, v, tree.Dist[v], want.Dist[v])
			}
		}
	}
}

// TestRecustomizeChainFollowsSnapshots re-customizes repeatedly (the
// serving pattern: each publish re-customizes the previous hierarchy's
// *base* topology) and checks the result depends only on the final
// weights, not the path taken to them.
func TestRecustomizeChainFollowsSnapshots(t *testing.T) {
	g, w := recustomizeTestGraph(t, 4)
	h := Build(g, w)

	rng := rand.New(rand.NewSource(5))
	cur := h
	var final []float64
	for step := 0; step < 4; step++ {
		next := make([]float64, len(w))
		for i := range w {
			next[i] = w[i] * (0.9 + 0.2*rng.Float64())
		}
		cur = cur.Recustomize(next)
		final = next
	}
	direct := h.Recustomize(final)
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s += 13 {
		for tt := graph.NodeID(0); int(tt) < g.NumNodes(); tt += 17 {
			if d1, d2 := cur.Dist(s, tt), direct.Dist(s, tt); d1 != d2 {
				t.Fatalf("Dist(%d,%d): chained %g, direct %g", s, tt, d1, d2)
			}
		}
	}
}
