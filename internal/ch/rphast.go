package ch

import (
	"math"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/sp"
)

// This file implements restricted PHAST (RPHAST, Delling et al., "Faster
// batched shortest paths in road networks"): the TreeBuilder's downward
// sweep limited to the part of the hierarchy that can influence a given
// target node set. A full PHAST build relaxes every downward arc once;
// for the short queries the choice-routing planners prune elliptically,
// almost all of that work computes distances nobody reads. RPHAST splits
// the work in two:
//
//   - a *selection* phase (Select) that, once per target set, extracts the
//     restricted downward sub-CSR — the upward closure of the targets in
//     the pull DAG, in sweep order — and
//   - a *restricted build* (BuildTreeRestrictedInto) that runs the usual
//     upward search but sweeps only the selected positions.
//
// The produced trees equal full PHAST trees exactly on every selected
// node (same distances, same parent edges) and report every other node
// unreached, which is precisely the contract of an elliptically pruned
// tree (sp.BuildPrunedTree): as long as the target set covers the query's
// ellipse, the plateau join yields the same choice routes. Both hierarchy
// flavors get this for free — the TreeBuilder is compiled from the
// ch.Hierarchy seam, so witness and cch runtimes share one implementation.

// Selection is the reusable restricted-sweep state for one target set. It
// is immutable after Select returns and safe for concurrent restricted
// builds from any root (the RPHAST amortization: one selection serves
// every query whose relevant nodes lie inside the same target set). It is
// valid only for the TreeBuilder that produced it; using it with another
// builder — e.g. keeping a selection across a weight customization, whose
// arcs it no longer matches — is a bug and panics rather than degrading
// silently.
type Selection struct {
	tb      *TreeBuilder
	targets int // distinct target nodes requested
	// covered is the position-space bitset of the *requested* targets
	// (before upward closure) — the coverage query behind selection
	// sharing: trees built through the selection are guaranteed exact on
	// exactly these nodes, in both directions, from any root.
	covered []uint64
	fwd     restrictedCSR
	bwd     restrictedCSR
}

// restrictedCSR is the position-space sub-CSR of one direction's downward
// sweep: the selected positions in sweep order (ascending position =
// descending rank) and, per selected position, its pull arcs. Arc upper
// endpoints stay global positions, so the restricted sweep indexes the
// same rank-space scratch a full sweep uses — no per-selection remapping.
type restrictedCSR struct {
	nodes []int32
	off   []int32
	arcs  []downArc
	ends  []arcEnds
}

// selectScratch is the pooled mark array of the selection passes.
type selectScratch struct{ mark []bool }

// Targets returns the number of distinct target nodes the selection was
// built for.
func (sel *Selection) Targets() int { return sel.targets }

// SweptNodes returns how many positions the restricted forward and
// backward sweeps process — the targets plus their upward closures, the
// measure of how much of the graph a restricted build still touches.
func (sel *Selection) SweptNodes() (fwd, bwd int) {
	return len(sel.fwd.nodes), len(sel.bwd.nodes)
}

// Covers reports whether every given node was a requested target of this
// selection: a query or batch sweep whose relevant node set passes Covers
// can reuse the selection and still read exact distances and parents at
// those nodes — the invariant selection-sharing caches rely on. It never
// allocates.
func (sel *Selection) Covers(targets []graph.NodeID) bool {
	pos, covered := sel.tb.pos, sel.covered
	for _, v := range targets {
		p := uint32(pos[v])
		if covered[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// MemoryBytes reports the approximate retained size of the selection's
// backing arrays — what a byte-budgeted selection cache charges per
// entry. Capacities (not lengths) are counted, since a reused Selection
// keeps its grown backing.
func (sel *Selection) MemoryBytes() int {
	const (
		arcBytes  = int(unsafe.Sizeof(downArc{}))
		endBytes  = int(unsafe.Sizeof(arcEnds{}))
		int32Size = 4
	)
	csr := func(r *restrictedCSR) int {
		return int32Size*(cap(r.nodes)+cap(r.off)) + (arcBytes+endBytes)*cap(r.arcs)
	}
	return 8*cap(sel.covered) + csr(&sel.fwd) + csr(&sel.bwd)
}

// resetCovered sizes and clears the coverage bitset for n positions,
// reusing the backing on a warm Selection.
func (sel *Selection) resetCovered(n int) {
	words := (n + 63) >> 6
	if cap(sel.covered) >= words {
		sel.covered = sel.covered[:words]
		for i := range sel.covered {
			sel.covered[i] = 0
		}
	} else {
		sel.covered = make([]uint64, words)
	}
}

// Select builds the restricted sweep state for the given target set:
// distances and parent edges of every target are exact in trees built
// through the selection (from any root, in either direction); all other
// nodes may be reported unreached. Passing a previous Selection reuses
// its backing arrays, so re-selecting on a warm Selection allocates only
// on growth. The target slice is not retained; duplicate entries are
// deduplicated.
func (tb *TreeBuilder) Select(targets []graph.NodeID, reuse *Selection) *Selection {
	sel := selectionFor(tb, reuse)
	sc := tb.selScratch.Get().(*selectScratch)
	sel.targets = tb.markTargets(targets, sc.mark, sel.covered)
	sel.fwd.closeAndEmit(tb, tb.fwdOff, tb.fwdArcs, tb.fwdEnds, sc.mark)
	tb.markTargets(targets, sc.mark, sel.covered)
	sel.bwd.closeAndEmit(tb, tb.bwdOff, tb.bwdArcs, tb.bwdEnds, sc.mark)
	tb.selScratch.Put(sc)
	return sel
}

// SelectUnion is Select over the union of several target groups — the
// many-to-many entry point: one selection over a *cell union* (each group
// typically being one spatial cell's vertices) provably serves every
// query whose elliptic target set lies inside the union, which is what
// lets a selection cache share one Select across nearby query pairs and
// whole source batches. Groups may overlap; the union is deduplicated
// like Select's target slice, and reuse semantics are identical.
func (tb *TreeBuilder) SelectUnion(groups [][]graph.NodeID, reuse *Selection) *Selection {
	sel := selectionFor(tb, reuse)
	sc := tb.selScratch.Get().(*selectScratch)
	distinct := 0
	for _, g := range groups {
		distinct += tb.markTargets(g, sc.mark, sel.covered)
	}
	sel.targets = distinct
	sel.fwd.closeAndEmit(tb, tb.fwdOff, tb.fwdArcs, tb.fwdEnds, sc.mark)
	for _, g := range groups {
		tb.markTargets(g, sc.mark, sel.covered)
	}
	sel.bwd.closeAndEmit(tb, tb.bwdOff, tb.bwdArcs, tb.bwdEnds, sc.mark)
	tb.selScratch.Put(sc)
	return sel
}

// selectionFor readies a Selection (fresh or reused) for tb.
func selectionFor(tb *TreeBuilder, reuse *Selection) *Selection {
	sel := reuse
	if sel == nil {
		sel = &Selection{}
	}
	sel.tb = tb
	sel.resetCovered(tb.n)
	return sel
}

// markTargets marks the targets' positions in mark and records them in
// the covered bitset, returning how many were newly marked. It runs once
// per direction (the emit pass clears mark), so covered writes are
// idempotent by design.
func (tb *TreeBuilder) markTargets(targets []graph.NodeID, mark []bool, covered []uint64) int {
	distinct := 0
	for _, v := range targets {
		p := uint32(tb.pos[v])
		covered[p>>6] |= 1 << (p & 63)
		if !mark[p] {
			mark[p] = true
			distinct++
		}
	}
	return distinct
}

// closeAndEmit computes one direction's restricted CSR from the marked
// target positions: close the marks upward along the pull arcs (an up
// endpoint has a smaller position, so one descending scan reaches a
// fixed point), then emit the marked positions and their pull lists in
// sweep order. +Inf arcs (bans, inert CCH pairs) can never win a pull,
// so they are dropped from both the closure and the copy — under heavy
// closures the restricted subgraph shrinks further. Leaves mark fully
// cleared.
func (r *restrictedCSR) closeAndEmit(tb *TreeBuilder, off []int32, arcs []downArc, ends []arcEnds, mark []bool) {
	n := tb.n
	for p := n - 1; p >= 0; p-- {
		if !mark[p] {
			continue
		}
		lo, hi := off[p], off[p+1]
		for k := lo; k < hi; k++ {
			if a := arcs[k]; !math.IsInf(a.w, 1) {
				mark[a.up] = true
			}
		}
	}
	r.nodes = r.nodes[:0]
	r.off = append(r.off[:0], 0)
	r.arcs = r.arcs[:0]
	r.ends = r.ends[:0]
	for p := 0; p < n; p++ {
		if !mark[p] {
			continue
		}
		mark[p] = false
		r.nodes = append(r.nodes, int32(p))
		lo, hi := off[p], off[p+1]
		for k := lo; k < hi; k++ {
			if math.IsInf(arcs[k].w, 1) {
				continue
			}
			r.arcs = append(r.arcs, arcs[k])
			r.ends = append(r.ends, ends[k])
		}
		r.off = append(r.off, int32(len(r.arcs)))
	}
}

// BuildTreeRestrictedInto is BuildTreeInto with the downward sweep
// limited to sel: the returned tree (aliasing ws's slot for dir, same
// rules as BuildTreeInto) carries exact distances and original-graph
// parent edges for every node of the selection's sweep set and reports
// everything else unreached — an elliptically-pruned-tree drop-in. The
// upward search is unrestricted (it already touches only the root's
// upward cone). After warm-up a restricted build allocates nothing.
func (tb *TreeBuilder) BuildTreeRestrictedInto(ws *sp.Workspace, root graph.NodeID, dir sp.Direction, sel *Selection) *sp.Tree {
	if sel.tb != tb {
		panic("ch: Selection used with a TreeBuilder it was not derived from (stale selection kept across a customization?)")
	}
	t, st := ws.TreeSlot(dir)
	n := tb.n
	dist, parent := st.DenseArrays(n)

	upOff, upArcs, upEnds := tb.bwdOff, tb.bwdArcs, tb.bwdEnds
	r := &sel.fwd
	if dir == sp.Backward {
		upOff, upArcs, upEnds = tb.fwdOff, tb.fwdArcs, tb.fwdEnds
		r = &sel.bwd
	}
	useLast := dir == sp.Forward

	sc := tb.scratch.Get().(*sweepScratch)
	distR, parentR := sc.initFor(n, tb.pos[root])

	// Phase 1, the upward search — identical to the full build.
	upwardPass(distR, parentR, upOff, upArcs, upEnds, useLast)

	// Phase 2, the restricted downward sweep: selected positions in
	// descending rank. Every pull's upper endpoint is in the selection
	// (the closure invariant) and precedes the puller in sweep order, so
	// its distance is final when read — exactly the full sweep's argument
	// on the sub-DAG.
	nodes := r.nodes
	for k := range nodes {
		i := nodes[k]
		d := distR[i]
		lo, hi := r.off[k], r.off[k+1]
		arcs := r.arcs[lo:hi]
		best := -1
		for j := range arcs {
			a := arcs[j]
			if cand := distR[a.up] + a.w; cand < d {
				d = cand
				best = j
			}
		}
		if best >= 0 {
			distR[i] = d
			e := r.ends[lo+int32(best)]
			if useLast {
				parentR[i] = e.last
			} else {
				parentR[i] = e.first
			}
		}
	}

	// Scatter only the selection; everything else — including nodes the
	// upward search touched, whose distances phase 2 never finalized — is
	// reported unreached, like outside an elliptic pruning budget.
	inf := math.Inf(1)
	for v := range dist {
		dist[v] = inf
		parent[v] = -1
	}
	order := tb.order
	for k := range nodes {
		i := nodes[k]
		v := order[i]
		dist[v] = distR[i]
		parent[v] = parentR[i]
	}
	tb.scratch.Put(sc)
	// The root's distance is 0 by definition even when the caller's
	// target set (unusually) excludes it.
	dist[root] = 0
	parent[root] = -1
	t.Root, t.Dir = root, dir
	t.Dist, t.Parent = dist, parent
	return t
}
