package ch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sp"
)

// The RPHAST contract under test: a restricted build agrees with the full
// PHAST build exactly on every selected node, reports no garbage anywhere
// else, and parent chains of selected nodes reconstruct whenever every
// node of the shortest path is itself selected.

// checkRestrictedAgainstFull verifies restricted trees for one target set
// against full builds from the same builder.
func checkRestrictedAgainstFull(t *testing.T, g *graph.Graph, tb *TreeBuilder, targets []graph.NodeID, root graph.NodeID) {
	t.Helper()
	sel := tb.Select(targets, nil)
	isTarget := make(map[graph.NodeID]bool, len(targets))
	for _, v := range targets {
		isTarget[v] = true
	}
	for _, dir := range []sp.Direction{sp.Forward, sp.Backward} {
		full := tb.BuildTree(root, dir)
		wsR := sp.NewWorkspace()
		got := tb.BuildTreeRestrictedInto(wsR, root, dir, sel)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if isTarget[v] {
				if !distEqual(got.Dist[v], full.Dist[v]) {
					t.Fatalf("dir %d target %d: restricted dist %v, full %v", dir, v, got.Dist[v], full.Dist[v])
				}
				if got.Reached(v) && v != root && got.Parent[v] != full.Parent[v] {
					t.Fatalf("dir %d target %d: restricted parent %d, full %d", dir, v, got.Parent[v], full.Parent[v])
				}
				continue
			}
			// Non-targets may be unreached, but whatever is reported must
			// equal the full build (the sweep set is a superset of the
			// targets, never an approximation).
			if got.Reached(v) && !distEqual(got.Dist[v], full.Dist[v]) {
				t.Fatalf("dir %d swept node %d: restricted dist %v, full %v", dir, v, got.Dist[v], full.Dist[v])
			}
		}
	}
}

func TestRestrictedTreeMatchesFullOnTargetsGrid(t *testing.T) {
	g := gridCity(12, 12)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 8; q++ {
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		targets := []graph.NodeID{root}
		for len(targets) < 24 {
			targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		checkRestrictedAgainstFull(t, g, tb, targets, root)
	}
}

func TestRestrictedTreeMatchesFullOnTargetsRandomDirected(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomCity(seed+40, 150)
		w := g.CopyWeights()
		tb := Build(g, w).NewTreeBuilder()
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 5; q++ {
			root := graph.NodeID(rng.Intn(g.NumNodes()))
			targets := []graph.NodeID{root}
			for len(targets) < 30 {
				targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
			}
			checkRestrictedAgainstFull(t, g, tb, targets, root)
		}
	}
}

// TestRestrictedTreeBannedEdges pins the +Inf semantics: banned arcs are
// dropped from the restricted subgraph entirely, and target distances
// still match the full build (unreachable stays unreachable).
func TestRestrictedTreeBannedEdges(t *testing.T) {
	g := randomCity(9, 120)
	w := g.CopyWeights()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < g.NumEdges()/5; i++ {
		w[rng.Intn(g.NumEdges())] = math.Inf(1)
	}
	tb := Build(g, w).NewTreeBuilder()
	for q := 0; q < 6; q++ {
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		targets := []graph.NodeID{root}
		for len(targets) < 25 {
			targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		checkRestrictedAgainstFull(t, g, tb, targets, root)
	}
}

// TestSelectionReusedAcrossRoots is the RPHAST amortization: one
// selection, many roots — every build stays exact on the targets. It also
// verifies parent chains reconstruct when the whole graph is selected.
func TestSelectionReusedAcrossRoots(t *testing.T) {
	g := gridCity(10, 10)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	all := make([]graph.NodeID, g.NumNodes())
	for v := range all {
		all[v] = graph.NodeID(v)
	}
	sel := tb.Select(all, nil)
	if f, b := sel.SweptNodes(); f != g.NumNodes() || b != g.NumNodes() {
		t.Fatalf("full-graph selection sweeps %d/%d nodes, want %d", f, b, g.NumNodes())
	}
	ws := sp.NewWorkspace()
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 6; q++ {
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		got := tb.BuildTreeRestrictedInto(ws, root, sp.Forward, sel)
		want := sp.BuildTree(g, w, root, sp.Forward)
		checkTreeEquivalence(t, g, w, got.Clone(), want)
	}
}

// TestSelectionReuseRebuild verifies Select with a reuse argument reuses
// the backing arrays and produces a correct fresh selection.
func TestSelectionReuseRebuild(t *testing.T) {
	g := gridCity(8, 8)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	sel := tb.Select([]graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}, nil)
	sel = tb.Select([]graph.NodeID{10, 20, 30, 0, 63}, sel)
	if sel.Targets() != 5 {
		t.Fatalf("reused selection reports %d targets, want 5", sel.Targets())
	}
	checkRestrictedAgainstFull(t, g, tb, []graph.NodeID{10, 20, 30, 0, 63}, 0)
}

// TestStaleSelectionPanics pins the misuse guard: a selection must not
// survive into a different TreeBuilder (the stale-selection-after-
// customize bug class this PR's serving layer must never hit).
func TestStaleSelectionPanics(t *testing.T) {
	g := gridCity(6, 6)
	w := g.CopyWeights()
	h := Build(g, w)
	tb1 := h.NewTreeBuilder()
	tb2 := h.Customize(w).NewTreeBuilder()
	sel := tb1.Select([]graph.NodeID{0, 1, 2}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("restricted build with a stale selection did not panic")
		}
	}()
	ws := sp.NewWorkspace()
	tb2.BuildTreeRestrictedInto(ws, 0, sp.Forward, sel)
}

// TestRestrictedZeroAlloc: with a warm workspace and a prebuilt
// selection, a restricted build allocates nothing; re-selecting onto a
// warm Selection allocates nothing either.
func TestRestrictedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := gridCity(20, 20)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	ws := sp.NewWorkspace()
	rng := rand.New(rand.NewSource(2))
	targets := make([]graph.NodeID, 0, 80)
	for len(targets) < 80 {
		targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
	}
	sel := tb.Select(targets, nil)
	root := targets[0]
	build := func() {
		tb.BuildTreeRestrictedInto(ws, root, sp.Forward, sel)
		tb.BuildTreeRestrictedInto(ws, root, sp.Backward, sel)
	}
	build()
	if allocs := testing.AllocsPerRun(20, build); allocs > 0 {
		t.Errorf("restricted tree pair: %v allocs/op after warm-up, want 0", allocs)
	}
	reselect := func() { tb.Select(targets, sel) }
	reselect()
	if allocs := testing.AllocsPerRun(20, reselect); allocs > 0 {
		t.Errorf("warm re-selection: %v allocs/op, want 0", allocs)
	}
}

// TestSelectionCoverage pins the Covers contract: exactly the requested
// targets are covered — swept closure nodes are not, since only requested
// targets carry the both-directions exactness guarantee.
func TestSelectionCoverage(t *testing.T) {
	g := gridCity(10, 10)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	targets := []graph.NodeID{3, 17, 42, 99}
	sel := tb.Select(targets, nil)
	if !sel.Covers(targets) {
		t.Fatal("selection does not cover its own targets")
	}
	if !sel.Covers(targets[1:3]) {
		t.Fatal("selection does not cover a subset of its targets")
	}
	requested := map[graph.NodeID]bool{3: true, 17: true, 42: true, 99: true}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if !requested[v] && sel.Covers([]graph.NodeID{v}) {
			t.Fatalf("selection covers node %d that was never requested", v)
		}
	}
	// Coverage resets on reuse: the old targets must not leak through.
	sel = tb.Select([]graph.NodeID{7}, sel)
	if sel.Covers([]graph.NodeID{3}) {
		t.Fatal("reused selection still covers a previous target")
	}
	if !sel.Covers([]graph.NodeID{7}) {
		t.Fatal("reused selection does not cover its new target")
	}
}

// TestSelectUnionMatchesFlattenedSelect: a union selection is exactly the
// selection of the flattened, deduplicated target set — same target
// count, same sweep sets, byte-identical restricted trees.
func TestSelectUnionMatchesFlattenedSelect(t *testing.T) {
	g := randomCity(77, 150)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	groups := [][]graph.NodeID{{1, 2, 3}, {3, 4, 5, 60}, {90, 91, 2}}
	var flat []graph.NodeID
	for _, gr := range groups {
		flat = append(flat, gr...)
	}
	flatSel := tb.Select(flat, nil)
	unionSel := tb.SelectUnion(groups, nil)
	if flatSel.Targets() != unionSel.Targets() {
		t.Fatalf("union targets %d, flat targets %d", unionSel.Targets(), flatSel.Targets())
	}
	ff, fb := flatSel.SweptNodes()
	uf, ub := unionSel.SweptNodes()
	if ff != uf || fb != ub {
		t.Fatalf("union sweeps (%d,%d), flat sweeps (%d,%d)", uf, ub, ff, fb)
	}
	if !unionSel.Covers(flat) {
		t.Fatal("union selection does not cover the flattened target set")
	}
	wsA, wsB := sp.NewWorkspace(), sp.NewWorkspace()
	for _, root := range []graph.NodeID{0, 60, 120} {
		for _, dir := range []sp.Direction{sp.Forward, sp.Backward} {
			a := tb.BuildTreeRestrictedInto(wsA, root, dir, flatSel)
			b := tb.BuildTreeRestrictedInto(wsB, root, dir, unionSel)
			for v := 0; v < g.NumNodes(); v++ {
				if !distEqual(a.Dist[v], b.Dist[v]) || a.Parent[v] != b.Parent[v] {
					t.Fatalf("root %d dir %d node %d: flat (%v,%d) union (%v,%d)",
						root, dir, v, a.Dist[v], a.Parent[v], b.Dist[v], b.Parent[v])
				}
			}
		}
	}
}

// TestSelectionMemoryBytes sanity-checks the cache charging measure: a
// bigger target set retains at least as many bytes, and nothing is free.
func TestSelectionMemoryBytes(t *testing.T) {
	g := gridCity(12, 12)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	small := tb.Select([]graph.NodeID{0, 1}, nil)
	all := make([]graph.NodeID, g.NumNodes())
	for v := range all {
		all[v] = graph.NodeID(v)
	}
	big := tb.Select(all, nil)
	if small.MemoryBytes() <= 0 {
		t.Fatalf("small selection reports %d bytes", small.MemoryBytes())
	}
	if big.MemoryBytes() < small.MemoryBytes() {
		t.Fatalf("full-graph selection (%d B) smaller than 2-target selection (%d B)",
			big.MemoryBytes(), small.MemoryBytes())
	}
}

// TestRestrictedConcurrent shares one selection across goroutines (as the
// engine's workers share a cached selection); run under -race.
func TestRestrictedConcurrent(t *testing.T) {
	g := gridCity(10, 10)
	w := g.CopyWeights()
	tb := Build(g, w).NewTreeBuilder()
	all := make([]graph.NodeID, g.NumNodes())
	for v := range all {
		all[v] = graph.NodeID(v)
	}
	sel := tb.Select(all, nil)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ws := sp.NewWorkspace()
			for q := 0; q < 20; q++ {
				root := graph.NodeID(rng.Intn(g.NumNodes()))
				tree := tb.BuildTreeRestrictedInto(ws, root, sp.Forward, sel)
				if tree.Dist[root] != 0 {
					done <- errDistRoot
					return
				}
			}
			done <- nil
		}(int64(i))
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
