package ch

import "repro/internal/graph"

// Hierarchy is the seam between hierarchy *flavors* and hierarchy
// *consumers*. Everything downstream of preprocessing — the bidirectional
// point-to-point query, the PHAST tree builder, core's double-buffered
// weight-version provider — consumes this interface and never a concrete
// contraction algorithm, so the serving stack can swap how the hierarchy
// was built without touching a single consumer:
//
//   - ch.Build contracts with bounded witness searches (the classic
//     Geisberger et al. scheme): smallest arc count, and Customize
//     (weights-only re-customization) is exact only for metrics that
//     preserve the build-time witness structure.
//   - cch.Build (package repro/internal/cch) contracts metric-independently
//     on a nested-dissection order with no witness pruning (the
//     customizable-CH scheme of Dibbelt et al.): more arcs, but Customize
//     runs a triangle relaxation that is exact for *any* weight vector,
//     including +Inf closures.
//
// Implementations are immutable after construction and safe for
// concurrent queries.
type Hierarchy interface {
	// Graph returns the road network the hierarchy was built over.
	Graph() *graph.Graph
	// Kind names the flavor ("witness" or "cch") for logging and ablation
	// tables.
	Kind() string
	// Rank returns the contraction order (higher rank = more important).
	// The returned slice aliases internal storage and must not be modified.
	Rank() []int32
	// Dist returns the exact-under-this-flavor's-contract shortest travel
	// time from s to t (+Inf if unreachable).
	Dist(s, t graph.NodeID) float64
	// Path returns the shortest s-t path as original graph edges plus its
	// travel time, unpacking shortcuts.
	Path(s, t graph.NodeID) ([]graph.EdgeID, float64)
	// NewTreeBuilder derives the PHAST one-to-all tree builder.
	NewTreeBuilder() *TreeBuilder
	// Customize returns a hierarchy over the same contraction order and
	// topology with arc weights rebuilt for the given vector — the cheap
	// live-traffic path (no re-contraction). The witness flavor sums
	// frozen shortcut constituents (exact only under witness-preserving
	// metrics, always a ban-respecting upper bound); the CCH flavor runs
	// the triangle relaxation (exact for any metric). The receiver is not
	// modified.
	Customize(weights []float64) Hierarchy
	// NumArcs returns the arc count (original edges + shortcuts), a
	// preprocessing size measure.
	NumArcs() int
	// NumShortcuts returns the number of arcs not backed by a single
	// original edge.
	NumShortcuts() int
}

// Arc is one directed edge of a hierarchy runtime: either an original road
// edge or a shortcut replacing two lower arcs. Exported so external
// preprocessors (package cch) can assemble runtimes; consumers never see
// it through the Hierarchy seam.
type Arc struct {
	To     graph.NodeID
	Weight float64
	// Orig is the original edge ID when the arc is (resolved by) a single
	// road edge, -1 otherwise.
	Orig graph.EdgeID
	// Skip1, Skip2 are the two constituent arcs (indices into the runtime
	// arc array, in path order) when the arc is a shortcut, -1 otherwise.
	// Constituents always precede the arc referencing them.
	Skip1, Skip2 int32
}

// Runtime is the packed representation both hierarchy flavors compile to:
// the contraction order, the arc array with its unpacking table
// (Orig/Skip1/Skip2), and the upward forward/backward adjacency the
// queries and the tree builder walk. It is immutable after construction
// and implements Hierarchy; flavors differ only in who built the arcs and
// in the customize hook a metric swap dispatches to.
type Runtime struct {
	g    *graph.Graph
	kind string
	rank []int32 // contraction order; higher rank = more important
	arcs []Arc
	// Packed upward adjacency, CSR over nodes:
	// upFwdArcs[upFwdOff[v]:upFwdOff[v+1]] lists arcs v->w with
	// rank[w] > rank[v]; upBwdArcs[upBwdOff[v]:upBwdOff[v+1]] lists arcs
	// u->v (stored at v) with rank[u] > rank[v]. CSR instead of per-node
	// slices keeps NewRuntime at a handful of allocations (it used to pay
	// two append-grown slices per node, ~2n allocations per city).
	upFwdOff  []int32
	upFwdArcs []int32
	upBwdOff  []int32
	upBwdArcs []int32
	// arcFrom[i] is the tail node of arcs[i].
	arcFrom []graph.NodeID
	// arcTo/arcW are packed copies of arcs[i].To and arcs[i].Weight — the
	// only fields the relax loops read. A 32-byte Arc record drags the
	// unpacking table through the cache on every relaxation; the packed
	// views keep the hot loops at 12 bytes per arc. arcTo is
	// topology-fixed and shared across customizations; arcW follows the
	// arc array (WithArcs/WithArcsInert re-derive or adopt it).
	arcTo []graph.NodeID
	arcW  []float64
	// inert, when non-nil, flags arcs a perfect customization proved
	// strictly dominated by an up-down path through other arcs: queries
	// and tree-builder packings skip them without losing exactness (the
	// dominating path always survives, because every arc on a shortest
	// up-down path has weight equal to the distance of its endpoints and
	// is therefore never strictly dominated itself). Indexed like arcs;
	// nil means no arc is inert.
	inert []bool
	// customize, when non-nil, handles Customize calls (the CCH triangle
	// relaxation); nil dispatches to the witness-flavor Recustomize.
	customize func([]float64) Hierarchy
	// elim, when non-nil, switches Dist/Path to the elimination-tree
	// engine (elimquery.go). Only sound on hierarchies whose upward
	// neighborhoods are cliques — package cch attaches it, the witness
	// flavor never does. elimStats is allocated alongside it.
	elim      *ElimTree
	elimStats *elimCounters
}

// NewRuntime assembles a hierarchy runtime from externally built arcs:
// rank is the contraction order (a permutation), from[i] the tail of
// arcs[i], and customize the flavor's metric-swap hook (nil selects the
// witness-style constituent-sum Recustomize). The adjacency split is
// derived here; the input slices are owned by the runtime afterwards.
func NewRuntime(g *graph.Graph, kind string, rank []int32, from []graph.NodeID, arcs []Arc, customize func([]float64) Hierarchy) *Runtime {
	n := g.NumNodes()
	h := &Runtime{
		g:         g,
		kind:      kind,
		rank:      rank,
		arcs:      arcs,
		upFwdOff:  make([]int32, n+1),
		upBwdOff:  make([]int32, n+1),
		arcFrom:   from,
		arcTo:     make([]graph.NodeID, len(arcs)),
		arcW:      make([]float64, len(arcs)),
		customize: customize,
	}
	for ai := range arcs {
		h.arcTo[ai] = arcs[ai].To
		h.arcW[ai] = arcs[ai].Weight
	}
	// Count, prefix-sum, fill.
	for ai := range arcs {
		u := from[ai]
		w := arcs[ai].To
		if rank[u] < rank[w] {
			h.upFwdOff[u+1]++
		} else if rank[u] > rank[w] {
			h.upBwdOff[w+1]++
		}
	}
	for v := 0; v < n; v++ {
		h.upFwdOff[v+1] += h.upFwdOff[v]
		h.upBwdOff[v+1] += h.upBwdOff[v]
	}
	h.upFwdArcs = make([]int32, h.upFwdOff[n])
	h.upBwdArcs = make([]int32, h.upBwdOff[n])
	fwdCur := make([]int32, n)
	bwdCur := make([]int32, n)
	for ai := range arcs {
		u := from[ai]
		w := arcs[ai].To
		if rank[u] < rank[w] {
			h.upFwdArcs[h.upFwdOff[u]+fwdCur[u]] = int32(ai)
			fwdCur[u]++
		} else if rank[u] > rank[w] {
			h.upBwdArcs[h.upBwdOff[w]+bwdCur[w]] = int32(ai)
			bwdCur[w]++
		}
	}
	return h
}

// upFwdAt returns the upward forward arc list of v (arc indices v->w with
// rank[w] > rank[v]).
func (h *Runtime) upFwdAt(v graph.NodeID) []int32 {
	return h.upFwdArcs[h.upFwdOff[v]:h.upFwdOff[v+1]]
}

// upBwdAt returns the upward backward arc list of v (arc indices u->v with
// rank[u] > rank[v]).
func (h *Runtime) upBwdAt(v graph.NodeID) []int32 {
	return h.upBwdArcs[h.upBwdOff[v]:h.upBwdOff[v+1]]
}

// WithArcs returns a runtime sharing this runtime's graph, order,
// adjacency, tails and customize hook, with the arc array replaced — the
// zero-re-indexing path a customization pass uses to publish new weights
// on a frozen topology. The new arcs must be index-compatible with the
// old (same tails and heads).
func (h *Runtime) WithArcs(arcs []Arc) *Runtime {
	rt := *h
	rt.arcs = arcs
	if arcs == nil {
		rt.arcW = nil // template form: adjacency only, no metric
		return &rt
	}
	rt.arcW = make([]float64, len(arcs))
	for ai := range arcs {
		rt.arcW[ai] = arcs[ai].Weight
	}
	return &rt
}

// WithCustomize returns a runtime identical to this one except for the
// customize hook — how package cch tells a basic-customized runtime apart
// from a perfect-customized one (each re-customizes through the pass that
// produced it).
func (h *Runtime) WithCustomize(fn func([]float64) Hierarchy) *Runtime {
	rt := *h
	rt.customize = fn
	return &rt
}

// WithArcsInert is WithArcs plus a packed weight view and an inert-arc
// mask (both aligned with arcs; nil inert clears the mask) — the handoff
// from a customization pass. arcW must hold arcs[i].Weight for every i;
// passing the customization's own buffer keeps the swap allocation-free.
// A nil arcW is derived here instead.
func (h *Runtime) WithArcsInert(arcs []Arc, arcW []float64, inert []bool) *Runtime {
	rt := *h
	rt.arcs = arcs
	rt.inert = inert
	if arcW == nil {
		arcW = make([]float64, len(arcs))
		for ai := range arcs {
			arcW[ai] = arcs[ai].Weight
		}
	}
	rt.arcW = arcW
	return &rt
}

// WithElimTree returns a runtime answering Dist/Path with the
// elimination-tree engine over et (nil restores the bidirectional
// search). The caller vouches that et is the elimination tree of this
// runtime's topology and that upward neighborhoods are cliques — package
// cch's chordal supergraph satisfies this by construction; a witness
// hierarchy does not. Counters start fresh: each customized runtime
// reports its own query telemetry, like a selection cache does.
func (h *Runtime) WithElimTree(et *ElimTree) *Runtime {
	rt := *h
	rt.elim = et
	if et != nil {
		rt.elimStats = &elimCounters{}
	} else {
		rt.elimStats = nil
	}
	return &rt
}

// Arcs exposes the runtime's arc array for bit-identity tests and
// topology reports. The slice aliases internal storage: callers must not
// modify it, and it is valid only while they hold the runtime.
func (h *Runtime) Arcs() []Arc { return h.arcs }

// InertCount returns how many arcs the runtime's customization marked
// inert (strictly dominated; skipped by queries and sweeps). Zero for
// basic customizations and the witness flavor.
func (h *Runtime) InertCount() int {
	count := 0
	for _, in := range h.inert {
		if in {
			count++
		}
	}
	return count
}

// Graph implements Hierarchy.
func (h *Runtime) Graph() *graph.Graph { return h.g }

// Kind implements Hierarchy.
func (h *Runtime) Kind() string { return h.kind }

// Rank implements Hierarchy.
func (h *Runtime) Rank() []int32 { return h.rank }

// Customize implements Hierarchy: the CCH flavor dispatches to its
// triangle relaxation, the witness flavor to Recustomize.
func (h *Runtime) Customize(weights []float64) Hierarchy {
	if h.customize != nil {
		return h.customize(weights)
	}
	return h.Recustomize(weights)
}
