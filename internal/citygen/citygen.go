// Package citygen generates synthetic road networks for the three study
// cities. The paper extracts Melbourne, Dhaka and Copenhagen from
// OpenStreetMap via Geofabrik; those downloads are unavailable offline, so
// this package substitutes city-scale synthetic networks whose profiles
// mirror what the paper highlights about the cities — "widely different
// population, traffic congestion, and density":
//
//   - Melbourne: a large regular grid with arterial roads, a motorway
//     bypass ring with spaced ramps, a CBD block of alternating one-way
//     streets, and an east-west river crossed only at bridges.
//   - Dhaka: a very dense, irregular low-speed street mesh with sparse
//     arterials, no motorways, and a river with few crossings.
//   - Copenhagen: a medium-density grid with ring arterials, a northwest
//     orientation of one-ways absent, lower speeds, and a north-south
//     harbor with bridge crossings.
//
// The generator emits an osm.Data extract (and can therefore also write
// OSM XML), so graphs are produced through the same Road Network
// Constructor code path the paper uses for real data.
package citygen

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/osm"
)

// RiverSpec carves a river through the grid: all street segments crossing
// the river line are removed except at bridge columns/rows.
type RiverSpec struct {
	// Present enables the river.
	Present bool
	// Vertical selects a north-south river (harbor); default east-west.
	Vertical bool
	// PositionFrac locates the river line as a fraction of the grid extent.
	PositionFrac float64
	// BridgeEvery keeps every Nth crossing as a bridge.
	BridgeEvery int
}

// MotorwaySpec adds a motorway bypass ring around the grid with ramps.
type MotorwaySpec struct {
	// Present enables the ring.
	Present bool
	// OffsetMeters is the ring's distance outside the grid boundary.
	OffsetMeters float64
	// RampEvery connects the ring to the grid at every Nth perimeter node.
	RampEvery int
	// SpeedKmh is the ring speed (default 100).
	SpeedKmh float64
}

// Profile parameterizes a synthetic city.
type Profile struct {
	Name   string
	Center geo.Point
	// Rows and Cols define the street grid; BlockMeters the spacing.
	Rows, Cols  int
	BlockMeters float64
	// JitterFrac randomly displaces intersections by up to this fraction
	// of a block, turning the grid into an irregular mesh (Dhaka).
	JitterFrac float64
	// KeepStreetProb is the probability that a grid street segment exists.
	KeepStreetProb float64
	// ArterialEvery makes every Nth row and column a primary road
	// (0 disables arterials).
	ArterialEvery int
	ArterialSpeed float64
	StreetSpeed   float64
	StreetClass   graph.RoadClass
	// OnewayRows applies alternating one-way directions to this many
	// central rows (a CBD pattern).
	OnewayRows int
	River      RiverSpec
	Motorway   MotorwaySpec
}

// Melbourne returns the Melbourne-like profile: large grid, arterials,
// motorway ring, CBD one-ways, east-west river (the Yarra).
func Melbourne() Profile {
	return Profile{
		Name:           "Melbourne",
		Center:         geo.Point{Lat: -37.8136, Lon: 144.9631},
		Rows:           80,
		Cols:           80,
		BlockMeters:    280,
		JitterFrac:     0.10,
		KeepStreetProb: 0.97,
		ArterialEvery:  10,
		ArterialSpeed:  80,
		StreetSpeed:    40,
		StreetClass:    graph.Residential,
		OnewayRows:     6,
		River: RiverSpec{
			Present:      true,
			PositionFrac: 0.45,
			BridgeEvery:  6,
		},
		Motorway: MotorwaySpec{
			Present:      true,
			OffsetMeters: 600,
			RampEvery:    14,
			SpeedKmh:     100,
		},
	}
}

// Dhaka returns the Dhaka-like profile: very dense irregular low-speed
// mesh, sparse arterials, no motorway, river with few crossings.
func Dhaka() Profile {
	return Profile{
		Name:           "Dhaka",
		Center:         geo.Point{Lat: 23.8103, Lon: 90.4125},
		Rows:           72,
		Cols:           72,
		BlockMeters:    120,
		JitterFrac:     0.30,
		KeepStreetProb: 0.88,
		ArterialEvery:  12,
		ArterialSpeed:  50,
		StreetSpeed:    20,
		StreetClass:    graph.Residential,
		OnewayRows:     0,
		River: RiverSpec{
			Present:      true,
			PositionFrac: 0.75,
			BridgeEvery:  12,
		},
	}
}

// Copenhagen returns the Copenhagen-like profile: medium grid, ring
// arterials, moderate speeds, north-south harbor with bridges.
func Copenhagen() Profile {
	return Profile{
		Name:           "Copenhagen",
		Center:         geo.Point{Lat: 55.6761, Lon: 12.5683},
		Rows:           68,
		Cols:           68,
		BlockMeters:    240,
		JitterFrac:     0.12,
		KeepStreetProb: 0.95,
		ArterialEvery:  7,
		ArterialSpeed:  70,
		StreetSpeed:    35,
		StreetClass:    graph.Residential,
		OnewayRows:     4,
		River: RiverSpec{
			Present:      true,
			Vertical:     true,
			PositionFrac: 0.55,
			BridgeEvery:  8,
		},
		Motorway: MotorwaySpec{
			Present:      true,
			OffsetMeters: 500,
			RampEvery:    16,
			SpeedKmh:     90,
		},
	}
}

// Profiles returns the three study cities in the paper's order.
func Profiles() []Profile {
	return []Profile{Melbourne(), Dhaka(), Copenhagen()}
}

// ProfileByName returns the named city profile (case-sensitive).
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("citygen: unknown city %q (have Melbourne, Dhaka, Copenhagen)", name)
}

// EmitData generates the city as an OSM extract, deterministically in
// (profile, seed).
func (p Profile) EmitData(seed int64) *osm.Data {
	rng := rand.New(rand.NewSource(seed))
	data := &osm.Data{}
	rows, cols := p.Rows, p.Cols
	half := func(n int) float64 { return float64(n-1) / 2 }

	// Grid intersections; OSM node IDs are 1-based row-major.
	nodeID := func(r, c int) int64 { return int64(r*cols+c) + 1 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jn := (rng.Float64()*2 - 1) * p.JitterFrac * p.BlockMeters
			je := (rng.Float64()*2 - 1) * p.JitterFrac * p.BlockMeters
			pt := geo.Offset(p.Center,
				(float64(r)-half(rows))*p.BlockMeters+jn,
				(float64(c)-half(cols))*p.BlockMeters+je)
			data.Nodes = append(data.Nodes, osm.Node{ID: nodeID(r, c), Lat: pt.Lat, Lon: pt.Lon})
		}
	}

	riverRow, riverCol := -1, -1
	if p.River.Present {
		if p.River.Vertical {
			riverCol = int(float64(cols) * p.River.PositionFrac)
		} else {
			riverRow = int(float64(rows) * p.River.PositionFrac)
		}
	}
	// crossesRiver reports whether the segment between grid positions
	// crosses the river line, and whether that crossing is a bridge.
	crossesRiver := func(r1, c1, r2, c2 int) (crosses, bridge bool) {
		if riverRow >= 0 && ((r1 < riverRow && r2 >= riverRow) || (r2 < riverRow && r1 >= riverRow)) {
			return true, p.River.BridgeEvery > 0 && c1%p.River.BridgeEvery == 0
		}
		if riverCol >= 0 && ((c1 < riverCol && c2 >= riverCol) || (c2 < riverCol && c1 >= riverCol)) {
			return true, p.River.BridgeEvery > 0 && r1%p.River.BridgeEvery == 0
		}
		return false, false
	}

	onewayLo := rows/2 - p.OnewayRows/2
	onewayHi := onewayLo + p.OnewayRows

	wayID := int64(1_000_000)
	addWay := func(a, b int64, class graph.RoadClass, speed float64, lanes int, oneway string) {
		tags := map[string]string{
			"highway":  highwayTag(class),
			"maxspeed": fmt.Sprintf("%.0f", speed),
		}
		if lanes > 0 {
			tags["lanes"] = fmt.Sprintf("%d", lanes)
		}
		if oneway != "" {
			tags["oneway"] = oneway
		}
		data.Ways = append(data.Ways, osm.Way{ID: wayID, NodeIDs: []int64{a, b}, Tags: tags})
		wayID++
	}

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Horizontal segment to the east neighbour.
			if c+1 < cols {
				cross, bridge := crossesRiver(r, c, r, c+1)
				keep := !cross || bridge
				if keep && (cross || rng.Float64() < p.KeepStreetProb) {
					class, speed, lanes := p.streetKind(r, -1)
					oneway := ""
					if p.OnewayRows > 0 && r >= onewayLo && r < onewayHi && class == p.StreetClass {
						if r%2 == 0 {
							oneway = "yes"
						} else {
							oneway = "-1"
						}
					}
					addWay(nodeID(r, c), nodeID(r, c+1), class, speed, lanes, oneway)
				}
			}
			// Vertical segment to the north neighbour.
			if r+1 < rows {
				cross, bridge := crossesRiver(r, c, r+1, c)
				keep := !cross || bridge
				if keep && (cross || rng.Float64() < p.KeepStreetProb) {
					class, speed, lanes := p.streetKind(-1, c)
					addWay(nodeID(r, c), nodeID(r+1, c), class, speed, lanes, "")
				}
			}
		}
	}

	// Motorway bypass ring with ramps.
	if p.Motorway.Present {
		speed := p.Motorway.SpeedKmh
		if speed <= 0 {
			speed = 100
		}
		ringID := int64(rows*cols) + 1
		var ringNodes []int64
		addRingNode := func(north, east float64) int64 {
			pt := geo.Offset(p.Center, north, east)
			data.Nodes = append(data.Nodes, osm.Node{ID: ringID, Lat: pt.Lat, Lon: pt.Lon})
			ringNodes = append(ringNodes, ringID)
			ringID++
			return ringID - 1
		}
		extN := (half(rows))*p.BlockMeters + p.Motorway.OffsetMeters
		extE := (half(cols))*p.BlockMeters + p.Motorway.OffsetMeters
		// Corner-to-corner ring nodes every RampEvery blocks along each side.
		step := p.Motorway.RampEvery
		if step <= 0 {
			step = 8
		}
		type ramp struct {
			ring int64
			grid int64
		}
		var ramps []ramp
		// South and north sides (varying column), then west and east sides.
		for c := 0; c < cols; c += step {
			east := (float64(c) - half(cols)) * p.BlockMeters
			s := addRingNode(-extN, east)
			n := addRingNode(extN, east)
			ramps = append(ramps, ramp{s, nodeID(0, c)}, ramp{n, nodeID(rows-1, c)})
		}
		for r := step; r < rows-1; r += step {
			north := (float64(r) - half(rows)) * p.BlockMeters
			w := addRingNode(north, -extE)
			e := addRingNode(north, extE)
			ramps = append(ramps, ramp{w, nodeID(r, 0)}, ramp{e, nodeID(r, cols-1)})
		}
		// Chain ring nodes into a loop ordered by angle around the center.
		ordered := orderByAngle(data, ringNodes, p.Center)
		for i := range ordered {
			a := ordered[i]
			b := ordered[(i+1)%len(ordered)]
			tags := map[string]string{
				"highway":  "motorway",
				"maxspeed": fmt.Sprintf("%.0f", speed),
				"lanes":    "3",
				"oneway":   "no", // bidirectional carriageway pair, simplified
			}
			data.Ways = append(data.Ways, osm.Way{ID: wayID, NodeIDs: []int64{a, b}, Tags: tags})
			wayID++
		}
		for _, rp := range ramps {
			tags := map[string]string{
				"highway":  "motorway_link",
				"maxspeed": "60",
				"oneway":   "no",
			}
			data.Ways = append(data.Ways, osm.Way{ID: wayID, NodeIDs: []int64{rp.ring, rp.grid}, Tags: tags})
			wayID++
		}
	}
	return data
}

// streetKind classifies a grid street: arterial rows/columns are primary.
func (p Profile) streetKind(row, col int) (graph.RoadClass, float64, int) {
	if p.ArterialEvery > 0 {
		if (row >= 0 && row%p.ArterialEvery == 0) || (col >= 0 && col%p.ArterialEvery == 0) {
			return graph.Primary, p.ArterialSpeed, 2
		}
	}
	return p.StreetClass, p.StreetSpeed, 1
}

func highwayTag(c graph.RoadClass) string {
	// RoadClass.String values match OSM highway tag values by construction.
	return c.String()
}

// orderByAngle sorts ring node IDs by bearing around center so the ring
// forms a simple loop.
func orderByAngle(d *osm.Data, ids []int64, center geo.Point) []int64 {
	pos := make(map[int64]geo.Point, len(ids))
	for _, n := range d.Nodes {
		pos[n.ID] = geo.Point{Lat: n.Lat, Lon: n.Lon}
	}
	out := append([]int64(nil), ids...)
	angle := func(id int64) float64 {
		return geo.Bearing(center, pos[id])
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && angle(out[j]) < angle(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Generate builds the city's road-network graph through the OSM
// constructor pipeline.
func (p Profile) Generate(seed int64) (*graph.Graph, error) {
	g, err := osm.BuildGraph(p.EmitData(seed), nil)
	if err != nil {
		return nil, fmt.Errorf("citygen: generating %s: %w", p.Name, err)
	}
	return g, nil
}
