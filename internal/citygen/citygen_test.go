package citygen

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/osm"
	"repro/internal/sp"
)

func TestProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := p.Generate(1)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() < 500 {
				t.Errorf("%s: only %d nodes; city too small", p.Name, g.NumNodes())
			}
			if g.NumEdges() < 2*g.NumNodes()-100 {
				t.Errorf("%s: %d edges for %d nodes; too sparse", p.Name, g.NumEdges(), g.NumNodes())
			}
			bb := g.BBox()
			if !bb.Contains(p.Center) {
				t.Errorf("%s: center %v outside network bbox", p.Name, p.Center)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Melbourne()
	g1, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed must reproduce the same city")
	}
	for e := 0; e < g1.NumEdges(); e++ {
		if g1.Edge(graph.EdgeID(e)) != g2.Edge(graph.EdgeID(e)) {
			t.Fatalf("edge %d differs between identical seeds", e)
		}
	}
	g3, err := p.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() == g1.NumEdges() && g3.NumNodes() == g1.NumNodes() {
		same := true
		for e := 0; e < g1.NumEdges() && same; e++ {
			if g1.Edge(graph.EdgeID(e)) != g3.Edge(graph.EdgeID(e)) {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical cities")
		}
	}
}

func TestCityCharacteristicsDiffer(t *testing.T) {
	mel, err := Melbourne().Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	dha, err := Dhaka().Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Dhaka is denser: more nodes per km².
	melArea := mel.BBox().WidthMeters() * mel.BBox().HeightMeters() / 1e6
	dhaArea := dha.BBox().WidthMeters() * dha.BBox().HeightMeters() / 1e6
	melDensity := float64(mel.NumNodes()) / melArea
	dhaDensity := float64(dha.NumNodes()) / dhaArea
	if dhaDensity <= melDensity {
		t.Errorf("Dhaka density %.1f should exceed Melbourne %.1f nodes/km²", dhaDensity, melDensity)
	}
	// Dhaka is slower: mean speed strictly below Melbourne's.
	meanSpeed := func(g *graph.Graph) float64 {
		var s float64
		for e := 0; e < g.NumEdges(); e++ {
			s += g.Edge(graph.EdgeID(e)).SpeedKmh
		}
		return s / float64(g.NumEdges())
	}
	if meanSpeed(dha) >= meanSpeed(mel) {
		t.Errorf("Dhaka mean speed %.1f should be below Melbourne %.1f", meanSpeed(dha), meanSpeed(mel))
	}
	// Melbourne has motorway edges, Dhaka none.
	hasMotorway := func(g *graph.Graph) bool {
		for e := 0; e < g.NumEdges(); e++ {
			if g.Edge(graph.EdgeID(e)).Class == graph.Motorway {
				return true
			}
		}
		return false
	}
	if !hasMotorway(mel) {
		t.Error("Melbourne should have a motorway ring")
	}
	if hasMotorway(dha) {
		t.Error("Dhaka should not have motorways")
	}
}

func TestCitiesAreWellConnected(t *testing.T) {
	// Random vertex pairs should almost always be mutually reachable
	// (BuildGraph keeps the largest weak component; one-way CBD rows are
	// alternating, so strong connectivity should hold broadly).
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := p.Generate(3)
			if err != nil {
				t.Fatal(err)
			}
			w := g.CopyWeights()
			rng := rand.New(rand.NewSource(5))
			fail := 0
			const trials = 40
			for i := 0; i < trials; i++ {
				s := graph.NodeID(rng.Intn(g.NumNodes()))
				d := graph.NodeID(rng.Intn(g.NumNodes()))
				if s == d {
					continue
				}
				if _, dist := sp.ShortestPath(g, w, s, d); math.IsInf(dist, 1) {
					fail++
				}
			}
			if fail > trials/10 {
				t.Errorf("%s: %d/%d random pairs unreachable", p.Name, fail, trials)
			}
		})
	}
}

func TestRiverLimitsCrossings(t *testing.T) {
	// Count vertical edges crossing the Melbourne river latitude: must be
	// far fewer than the grid width.
	p := Melbourne()
	data := p.EmitData(1)
	g, err := osm.BuildGraph(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	riverFrac := p.River.PositionFrac
	// River latitude: row index riverRow at (riverRow - (rows-1)/2) blocks north.
	riverRow := int(float64(p.Rows) * riverFrac)
	riverOffset := (float64(riverRow) - float64(p.Rows-1)/2 - 0.5) * p.BlockMeters
	riverLat := p.Center.Lat + riverOffset/111320.0*1 // approximate degrees
	crossings := 0
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		a, b := g.Point(ed.From).Lat, g.Point(ed.To).Lat
		if (a < riverLat) != (b < riverLat) {
			crossings++
		}
	}
	// Two-way bridges: crossings counts directed edges; bridge count is
	// crossings/2. With BridgeEvery=5 over 40 columns: 8 bridges.
	if crossings == 0 {
		t.Fatal("river should have at least one bridge")
	}
	if crossings/2 > p.Cols/2 {
		t.Errorf("too many river crossings (%d bridges for %d columns)", crossings/2, p.Cols)
	}
}

func TestOnewayCBDPresent(t *testing.T) {
	p := Melbourne()
	data := p.EmitData(1)
	oneway := 0
	for i := range data.Ways {
		if v, ok := data.Ways[i].Tags["oneway"]; ok && (v == "yes" || v == "-1") {
			oneway++
		}
	}
	if oneway == 0 {
		t.Error("Melbourne profile should emit one-way CBD streets")
	}
	// Dhaka has none.
	data = Dhaka().EmitData(1)
	for i := range data.Ways {
		if v, ok := data.Ways[i].Tags["oneway"]; ok && (v == "yes" || v == "-1") {
			t.Fatal("Dhaka profile should not emit one-way streets")
		}
	}
}

func TestEmitXMLPipeline(t *testing.T) {
	// citygen -> XML -> Parse -> BuildGraph must equal citygen -> BuildGraph.
	p := Copenhagen()
	data := p.EmitData(2)
	var buf bytes.Buffer
	if err := data.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := osm.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := osm.BuildGraph(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := osm.BuildGraph(parsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("XML pipeline mismatch: %d/%d vs %d/%d nodes/edges",
			g1.NumNodes(), g1.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"Melbourne", "Dhaka", "Copenhagen"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := ProfileByName("Atlantis"); err == nil {
		t.Error("unknown city should error")
	}
}

func TestArterialsPresent(t *testing.T) {
	for _, p := range Profiles() {
		g, err := p.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		primaries := 0
		for e := 0; e < g.NumEdges(); e++ {
			if g.Edge(graph.EdgeID(e)).Class == graph.Primary {
				primaries++
			}
		}
		if primaries == 0 {
			t.Errorf("%s: no primary arterials", p.Name)
		}
	}
}

func BenchmarkGenerateMelbourne(b *testing.B) {
	p := Melbourne()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
