package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

// AlternativeGraph is the §II-D representation of Bader et al. ("Alternative
// route graphs in road networks"): instead of k discrete routes, a compact
// subgraph that is the union of good s-t paths. Alternative routes can
// then be extracted with different ranking functions depending on user
// preference.
//
// The quality measures follow Bader et al.'s trio:
//
//   - TotalDistance: the summed weight of the subgraph's edges, normalized
//     by the fastest s-t travel time — how much road the graph offers.
//   - AverageDistance: the mean stretch of the distinct s-t paths in the
//     subgraph — how reasonable those offers are.
//   - DecisionEdges: the number of branching choices a driver faces.
type AlternativeGraph struct {
	g *graph.Graph
	// weights are the travel-time weights the graph was built with.
	weights []float64
	S, T    graph.NodeID
	// FastestS is the fastest s-t travel time.
	FastestS float64
	// Edges is the set of edges in the alternative graph.
	Edges map[graph.EdgeID]bool
	// out is the adjacency restricted to the subgraph.
	out map[graph.NodeID][]graph.EdgeID
}

// BuildAlternativeGraph unions the routes of the given planners into an
// alternative graph for the query. Planner errors other than ErrNoRoute
// are returned; if no planner finds any route, ErrNoRoute is returned.
func BuildAlternativeGraph(g *graph.Graph, weights []float64, s, t graph.NodeID, planners ...Planner) (*AlternativeGraph, error) {
	if err := validateQuery(g, s, t); err != nil {
		return nil, err
	}
	_, fastest := sp.ShortestPath(g, weights, s, t)
	if math.IsInf(fastest, 1) {
		return nil, ErrNoRoute
	}
	ag := &AlternativeGraph{
		g:        g,
		weights:  weights,
		S:        s,
		T:        t,
		FastestS: fastest,
		Edges:    make(map[graph.EdgeID]bool),
		out:      make(map[graph.NodeID][]graph.EdgeID),
	}
	got := false
	for _, pl := range planners {
		routes, err := pl.Alternatives(s, t)
		if err == ErrNoRoute {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("core: alternative graph via %s: %w", pl.Name(), err)
		}
		got = true
		for _, r := range routes {
			ag.AddRoute(r)
		}
	}
	if !got {
		return nil, ErrNoRoute
	}
	return ag, nil
}

// AddRoute merges a route's edges into the graph.
func (ag *AlternativeGraph) AddRoute(r path.Path) {
	for _, e := range r.Edges {
		if ag.Edges[e] {
			continue
		}
		ag.Edges[e] = true
		from := ag.g.Edge(e).From
		ag.out[from] = append(ag.out[from], e)
	}
}

// NumEdges returns the number of edges in the alternative graph.
func (ag *AlternativeGraph) NumEdges() int { return len(ag.Edges) }

// TotalDistance is Bader et al.'s normalized size measure: the summed edge
// weight of the subgraph divided by the fastest s-t travel time. 1.0 means
// the graph is exactly the fastest path; larger values offer more road.
func (ag *AlternativeGraph) TotalDistance() float64 {
	if ag.FastestS <= 0 {
		return math.Inf(1)
	}
	var sum float64
	for e := range ag.Edges {
		sum += ag.weights[e]
	}
	return sum / ag.FastestS
}

// DecisionEdges counts the driver's branching choices: for every node in
// the subgraph, each outgoing subgraph edge beyond the first is a decision.
func (ag *AlternativeGraph) DecisionEdges() int {
	d := 0
	for _, out := range ag.out {
		if len(out) > 1 {
			d += len(out) - 1
		}
	}
	return d
}

// Paths enumerates up to maxPaths distinct simple s-t paths in the
// subgraph by depth-first search, in discovery order.
func (ag *AlternativeGraph) Paths(maxPaths int) []path.Path {
	var out []path.Path
	var edges []graph.EdgeID
	onPath := make(map[graph.NodeID]bool)
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		if len(out) >= maxPaths {
			return
		}
		if v == ag.T {
			if p, err := path.New(ag.g, ag.weights, ag.S, append([]graph.EdgeID(nil), edges...)); err == nil {
				out = append(out, p)
			}
			return
		}
		onPath[v] = true
		// Deterministic order: cheapest continuation first.
		nexts := append([]graph.EdgeID(nil), ag.out[v]...)
		sort.Slice(nexts, func(i, j int) bool { return ag.weights[nexts[i]] < ag.weights[nexts[j]] })
		for _, e := range nexts {
			to := ag.g.Edge(e).To
			if onPath[to] {
				continue
			}
			edges = append(edges, e)
			dfs(to)
			edges = edges[:len(edges)-1]
			if len(out) >= maxPaths {
				break
			}
		}
		onPath[v] = false
	}
	dfs(ag.S)
	return out
}

// AverageDistance is the mean stretch (path time over fastest time) of the
// subgraph's distinct s-t paths, sampled up to the given enumeration
// budget. It returns +Inf if the subgraph contains no s-t path.
func (ag *AlternativeGraph) AverageDistance(maxPaths int) float64 {
	paths := ag.Paths(maxPaths)
	if len(paths) == 0 || ag.FastestS <= 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range paths {
		sum += p.TimeS / ag.FastestS
	}
	return sum / float64(len(paths))
}
