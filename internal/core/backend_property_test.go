package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/weights"
)

// The cross-backend equivalence harness — the permanent safety net for
// restricted sweeps and every future tree backend. Restricted sweeps are
// exactly the kind of optimization that silently drops nodes: a selection
// one node too small produces plausible-but-wrong route sets that no
// smoke test notices. So the matrix is pinned property-style: on seeded
// random tie-free networks (continuous random speeds make shortest-path
// ties measure-zero, so route sets are forced) under randomized ±50%
// traffic plus +Inf closure snapshots, every tree backend × hierarchy
// flavor must return byte-identical route sets for the study planners.
//
// Hierarchies are contracted fresh at the pinned snapshot, so the witness
// flavor is exact here too (its inexactness arises only when *customizing*
// across snapshots, which TestRestrictedSelectionInvalidatedOnPublish and
// the cch package's regression tests cover).

// closureSnapshot publishes a ±50% perturbation of the base weights plus
// ~3% random +Inf closures and returns the pinned snapshot.
func closureSnapshot(g *graph.Graph, seed int64) *weights.Snapshot {
	rng := rand.New(rand.NewSource(seed))
	store := weights.NewStore(g.BaseWeights())
	w := make([]float64, len(g.BaseWeights()))
	for i, base := range g.BaseWeights() {
		w[i] = base * (0.5 + rng.Float64())
	}
	store.Publish(w)
	var bans []graph.EdgeID
	for e := 0; e < g.NumEdges(); e++ {
		if rng.Float64() < 0.03 {
			bans = append(bans, graph.EdgeID(e))
		}
	}
	if len(bans) > 0 {
		store.Ban(bans...)
	}
	return store.Latest()
}

func TestBackendMatrix(t *testing.T) {
	type config struct {
		name    string
		backend TreeBackend
		hkind   HierarchyKind
		order   OrderKind
		query   QueryEngine
	}
	// The CCH flavors run on both contraction-order pipelines — the flow
	// order produces a different (smaller) hierarchy, and its routes must
	// still be byte-identical to the Dijkstra baseline. Witness rows have
	// no order dimension (theirs is metric-driven). CCH rows default to
	// the elimination-tree query engine; the restricted backend — whose
	// selection bounds come straight from hier.Dist — additionally runs
	// bidij rows, pinning byte-identical routes across both engines on
	// both flavors and both orders.
	configs := []config{
		{"ch/witness", TreeCH, HierarchyWitness, OrderGeometric, QueryElimTree},
		{"ch/cch", TreeCH, HierarchyCCH, OrderGeometric, QueryElimTree},
		{"ch/cch-perfect", TreeCH, HierarchyCCHPerfect, OrderGeometric, QueryElimTree},
		{"ch/cch/flow", TreeCH, HierarchyCCH, OrderFlow, QueryElimTree},
		{"ch/cch-perfect/flow", TreeCH, HierarchyCCHPerfect, OrderFlow, QueryElimTree},
		{"ch-restricted/witness", TreeCHRestricted, HierarchyWitness, OrderGeometric, QueryElimTree},
		{"ch-restricted/cch", TreeCHRestricted, HierarchyCCH, OrderGeometric, QueryElimTree},
		{"ch-restricted/cch-perfect", TreeCHRestricted, HierarchyCCHPerfect, OrderGeometric, QueryElimTree},
		{"ch-restricted/cch/flow", TreeCHRestricted, HierarchyCCH, OrderFlow, QueryElimTree},
		{"ch-restricted/cch-perfect/flow", TreeCHRestricted, HierarchyCCHPerfect, OrderFlow, QueryElimTree},
		{"ch-restricted/cch/bidij", TreeCHRestricted, HierarchyCCH, OrderGeometric, QueryBidij},
		{"ch-restricted/cch-perfect/bidij", TreeCHRestricted, HierarchyCCHPerfect, OrderGeometric, QueryBidij},
		{"ch-restricted/cch/flow/bidij", TreeCHRestricted, HierarchyCCH, OrderFlow, QueryBidij},
		{"ch-restricted/cch-perfect/flow/bidij", TreeCHRestricted, HierarchyCCHPerfect, OrderFlow, QueryBidij},
		{"ch-auto/witness", TreeCHAuto, HierarchyWitness, OrderGeometric, QueryElimTree},
		{"ch-auto/cch", TreeCHAuto, HierarchyCCH, OrderGeometric, QueryElimTree},
		{"ch-auto/cch-perfect", TreeCHAuto, HierarchyCCHPerfect, OrderGeometric, QueryElimTree},
		{"ch-auto/cch/flow", TreeCHAuto, HierarchyCCH, OrderFlow, QueryElimTree},
		{"ch-auto/cch-perfect/flow", TreeCHAuto, HierarchyCCHPerfect, OrderFlow, QueryElimTree},
	}
	plannerNames := []string{"Plateaus", "PrunedPlateaus", "Dissimilarity", "Penalty", "Commercial"}
	mk := func(g *graph.Graph, snap *weights.Snapshot, cfg config) []Planner {
		o := Options{TreeBackend: cfg.backend, Hierarchy: cfg.hkind, Order: cfg.order, Query: cfg.query, Weights: snap}
		return []Planner{
			NewPlateaus(g, o),
			NewPrunedPlateaus(g, o),
			NewDissimilarity(g, o),
			NewPenalty(g, o),
			// Commercial's private metric is the closure snapshot itself:
			// its hierarchy and its elliptic/restricted selections must
			// respect the same bans as everyone else's.
			NewCommercial(g, nil, o),
		}
	}
	for seed := int64(0); seed < 3; seed++ {
		g := randomRoadNetwork(seed+500, 140)
		snap := closureSnapshot(g, seed+900)
		baseline := mk(g, snap, config{backend: TreeDijkstra, hkind: HierarchyWitness})
		for _, cfg := range configs {
			other := mk(g, snap, cfg)
			for i := range baseline {
				t.Run(cfg.name+"/"+plannerNames[i], func(t *testing.T) {
					comparePlannersExact(t, baseline[i], other[i], g, 6, seed*31+int64(i))
				})
			}
		}
	}
}

// TestBackendMatrixObservability spot-checks the restricted backends'
// serving telemetry: after a query, the planner reports a selection size
// and sweep time, and the auto mode reports whether it restricted.
func TestBackendMatrixObservability(t *testing.T) {
	g := randomRoadNetwork(7, 140)
	pl := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted})
	s, dst, _ := banFastestRoute(t, g, pl, 5)
	if _, err := pl.Alternatives(s, dst); err != nil {
		t.Fatal(err)
	}
	st := pl.HierarchyStatus()
	if st.Kind != "witness" {
		t.Fatalf("restricted backend reports hierarchy %q", st.Kind)
	}
	if !st.LastRestricted || st.LastSelection <= 0 || st.LastSelection > g.NumNodes() {
		t.Fatalf("restricted query telemetry: restricted=%v selection=%d", st.LastRestricted, st.LastSelection)
	}
	if st.LastSweep <= 0 {
		t.Fatalf("restricted query reported no sweep time")
	}
}
