package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/weights"
)

// cacheKey identifies one cached answer: which planner, under which
// weight version, for which query. Keying by version is what makes the
// cache safe under live traffic — an answer computed under snapshot N can
// only ever be returned to a lookup that resolved version N.
type cacheKey struct {
	planner Planner
	version weights.Version
	s, t    graph.NodeID
}

// resultCache is the engine's fastest-path/result cache: a bounded map
// with FIFO eviction. Hot (version, s, t) pairs — the fastest route and
// its alternatives — are served without touching a planner. Eviction on
// publish is per store generation (evictStale), not wholesale: a
// double-buffered CH planner keeps serving — and therefore keeps hitting
// on — the previous version's entries until its background customization
// swaps, so only versions no planner can look up again are dropped.
//
// Cached route slices are shared between all readers; callers must treat
// Result.Routes as immutable (every consumer in this repository does).
type resultCache struct {
	mu      sync.Mutex
	entries map[cacheKey][]path.Path
	order   []cacheKey // FIFO eviction ring
	next    int
	filled  bool

	hits, misses atomic.Uint64
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		entries: make(map[cacheKey][]path.Path, capacity),
		order:   make([]cacheKey, capacity),
	}
}

func (c *resultCache) get(k cacheKey) ([]path.Path, bool) {
	c.mu.Lock()
	routes, ok := c.entries[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return routes, ok
}

func (c *resultCache) put(k cacheKey, routes []path.Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return
	}
	if _, dup := c.entries[k]; dup {
		return
	}
	if c.filled {
		delete(c.entries, c.order[c.next])
	}
	c.entries[k] = routes
	c.order[c.next] = k
	c.next++
	if c.next == len(c.order) {
		c.next, c.filled = 0, true
	}
}

// clear drops every entry (InvalidateCache, the blunt instrument).
func (c *resultCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
	c.next, c.filled = 0, false
}

// evictStale drops, in one sweep, every entry older than its planner's
// serving-version floor — the per-generation publish eviction. Entries at
// the floor itself survive: that is the version a double-buffered
// planner's view is still serving (and will keep answering cache lookups
// with) until its background refresh completes. Planners absent from
// floors keep all their entries. Evicted keys may linger in the FIFO
// ring; put() tolerates deleting an already-gone key, so they merely age
// out.
func (c *resultCache) evictStale(floors map[Planner]weights.Version) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if min, ok := floors[k.planner]; ok && k.version < min {
			delete(c.entries, k)
		}
	}
}
