package core

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/weights"
)

// stubVersionedPlanner simulates a double-buffered planner for the cache
// generation tests: its serving version is set explicitly, standing in
// for "background customization has (not yet) completed".
type stubVersionedPlanner struct {
	serving atomic.Uint64
	calls   atomic.Int64
}

func (s *stubVersionedPlanner) Name() string { return "stub" }

func (s *stubVersionedPlanner) Alternatives(a, b graph.NodeID) ([]path.Path, error) {
	routes, _, err := s.AlternativesVersioned(a, b)
	return routes, err
}

func (s *stubVersionedPlanner) AlternativesVersioned(a, b graph.NodeID) ([]path.Path, weights.Version, error) {
	s.calls.Add(1)
	return []path.Path{{}}, weights.Version(s.serving.Load()), nil
}

func (s *stubVersionedPlanner) WeightsVersion() weights.Version {
	return weights.Version(s.serving.Load())
}

func (s *stubVersionedPlanner) servingVersion() weights.Version {
	return weights.Version(s.serving.Load())
}

// TestCachePerGenerationEviction pins the publish-time cache policy: a
// publish evicts only generations older than what each planner still
// serves, so a double-buffered planner keeps hitting its previous-version
// entries until its swap completes — and loses them on the publish after.
func TestCachePerGenerationEviction(t *testing.T) {
	g := testCity(t)
	store := weights.NewStore(g.BaseWeights())
	stub := &stubVersionedPlanner{}
	stub.serving.Store(1)

	engine := NewEngine(1)
	engine.SetCache(32)
	router := NewRouter(engine, []Planner{stub}, store)
	_ = router

	query := func() {
		engine.AlternativesBatch([]Job{{Planner: stub, S: 0, T: 1}})
	}
	query() // miss: seeds the version-1 entry
	if calls := stub.calls.Load(); calls != 1 {
		t.Fatalf("priming calls = %d, want 1", calls)
	}

	// Publish v2 while the stub still serves v1 (swap pending): the v1
	// entry must survive and keep answering without a planner call.
	store.Publish(g.BaseWeights())
	query()
	if calls := stub.calls.Load(); calls != 1 {
		t.Fatalf("post-publish calls = %d, want 1 (v1 entry must survive while v1 still serves)", calls)
	}
	if hits, _ := engine.CacheStats(); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}

	// The swap completes (stub now serves v2): the next publish evicts the
	// v1 generation, and a v2 lookup misses into a fresh planner call.
	stub.serving.Store(2)
	store.Publish(g.BaseWeights())
	query()
	if calls := stub.calls.Load(); calls != 2 {
		t.Fatalf("post-swap calls = %d, want 2 (v1 generation must be gone, v2 is a miss)", calls)
	}
	// And the v2 entry serves repeats.
	query()
	if calls := stub.calls.Load(); calls != 2 {
		t.Fatalf("repeat calls = %d, want 2", calls)
	}
}

// TestEvictStaleScopesToPlanner: eviction must not touch planners outside
// the floors map.
func TestEvictStaleScopesToPlanner(t *testing.T) {
	a, b := &stubVersionedPlanner{}, &stubVersionedPlanner{}
	a.serving.Store(1)
	b.serving.Store(1)
	c := newResultCache(8)
	c.put(cacheKey{planner: a, version: 1, s: 0, t: 1}, []path.Path{{}})
	c.put(cacheKey{planner: b, version: 1, s: 0, t: 1}, []path.Path{{}})
	c.evictStale(map[Planner]weights.Version{a: 2})
	if _, ok := c.get(cacheKey{planner: a, version: 1, s: 0, t: 1}); ok {
		t.Fatal("a's stale entry survived eviction")
	}
	if _, ok := c.get(cacheKey{planner: b, version: 1, s: 0, t: 1}); !ok {
		t.Fatal("b's entry was evicted by a's sweep")
	}
}

// --- prunedTrees scan sharing ------------------------------------------------

func minRatioEdge(g *graph.Graph, w []float64) (graph.EdgeID, float64) {
	best, bestR := graph.EdgeID(-1), math.Inf(1)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.LengthM <= 0 {
			continue
		}
		if r := w[e] / ed.LengthM; r < bestR {
			best, bestR = graph.EdgeID(e), r
		}
	}
	return best, bestR
}

func TestRescaleFromDelta(t *testing.T) {
	g := testCity(t)
	base := g.CopyWeights()
	argmin, scale := minRatioEdge(g, base)

	// Raising a non-minimum edge keeps the old scale.
	other := graph.EdgeID(0)
	if other == argmin {
		other = 1
	}
	next := append([]float64(nil), base...)
	next[other] = math.Inf(1)
	got, ok := rescaleFromDelta(g, base, next, []graph.EdgeID{other}, scale)
	if !ok || got != scale {
		t.Fatalf("ban of non-min edge: got (%g, %v), want (%g, true)", got, ok, scale)
	}

	// Lowering an edge below the minimum lowers the scale to it.
	next = append([]float64(nil), base...)
	next[other] = base[other] / 100
	lowered := next[other] / g.Edge(other).LengthM
	got, ok = rescaleFromDelta(g, base, next, []graph.EdgeID{other}, scale)
	if !ok || math.Abs(got-math.Min(scale, lowered)) > 1e-15 {
		t.Fatalf("lowering: got (%g, %v), want (%g, true)", got, ok, math.Min(scale, lowered))
	}

	// Touching the argmin edge forces a rescan.
	next = append([]float64(nil), base...)
	next[argmin] = math.Inf(1)
	if _, ok = rescaleFromDelta(g, base, next, []graph.EdgeID{argmin}, scale); ok {
		t.Fatal("touching the argmin edge must force a rescan")
	}
}

// TestPrunedScaleSharedAcrossBanPublish drives the whole chain: a Ban on
// the live store carries a delta, the provider's next pruned view derives
// its scale incrementally, and the result equals (and prunes exactly
// like) a from-scratch planner at the new snapshot.
func TestPrunedScaleSharedAcrossBanPublish(t *testing.T) {
	g := testCity(t)
	store := weights.NewStore(g.BaseWeights())
	com := NewCommercial(g, nil, Options{Weights: store})

	argmin, _ := minRatioEdge(g, store.Latest().Weights())
	banned := graph.EdgeID(0)
	if banned == argmin {
		banned = 1
	}
	store.Ban(banned)
	com.refreshSync()

	cur := com.prov.cur.Load()
	if cur.pruned == nil {
		t.Fatal("commercial provider lost its pruned source")
	}
	fresh := newPrunedTrees(g, store.Latest().Weights(), DefaultUpperBound)
	if cur.pruned.scale != fresh.scale {
		t.Fatalf("delta-derived scale %g != full-scan scale %g", cur.pruned.scale, fresh.scale)
	}
	// Route sets must be unaffected by the sharing.
	pinned := NewCommercial(g, store.Latest().Weights(), Options{})
	comparePlannersExact(t, pinned, com, g, 8, 21)
}
