package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
	"repro/internal/weights"
)

// The CCH half of the tree-backend claim: planners on the customizable
// hierarchy return byte-identical route sets to the Dijkstra backend on
// tie-free networks — and, unlike the witness flavor, keep doing so for
// *any* published snapshot, including heavy closures.

func TestPlateausCCHMatchesDijkstraBackend(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomRoadNetwork(seed+500, 150)
		dij := NewPlateaus(g, Options{})
		cchP := NewPlateaus(g, Options{TreeBackend: TreeCH, Hierarchy: HierarchyCCH})
		comparePlannersExact(t, dij, cchP, g, 12, seed)
	}
}

func TestCommercialCCHMatchesFullTrees(t *testing.T) {
	g := randomRoadNetwork(301, 150)
	private := traffic.Apply(g, traffic.DefaultModel(33))
	full := NewCommercial(g, private, Options{DisablePrunedTrees: true})
	cchC := NewCommercial(g, private, Options{TreeBackend: TreeCH, Hierarchy: HierarchyCCH})
	comparePlannersExact(t, full, cchC, g, 12, 5)
}

// TestCCHServingExactUnderClosures pins the acceptance criterion through
// the whole serving stack: after publishing a heavy-closure snapshot to a
// live store, the CCH-backed planner's route sets stay byte-identical to
// the Dijkstra backend's — no re-contraction, only the triangle
// customization the publish triggered.
func TestCCHServingExactUnderClosures(t *testing.T) {
	g := randomRoadNetwork(55, 150)
	store := weights.NewStore(g.BaseWeights())
	cchP := NewPlateaus(g, Options{Weights: store, TreeBackend: TreeCH, Hierarchy: HierarchyCCH})
	dij := NewPlateaus(g, Options{Weights: store})
	router := NewRouter(NewEngine(2), []Planner{cchP, dij}, store)

	rng := rand.New(rand.NewSource(8))
	var closed []graph.EdgeID
	for len(closed) < g.NumEdges()/12 {
		closed = append(closed, graph.EdgeID(rng.Intn(g.NumEdges())))
	}
	store.Ban(closed...)
	// And a ±50% congestion republish on top of the closures.
	next := make([]float64, len(g.BaseWeights()))
	for i, w := range g.BaseWeights() {
		next[i] = w * (0.5 + rng.Float64())
	}
	store.Publish(next)
	router.Sync()

	if v := cchP.WeightsVersion(); v != store.Version() {
		t.Fatalf("post-sync CCH planner at version %d, store at %d", v, store.Version())
	}
	comparePlannersExact(t, dij, cchP, g, 12, 9)
}

// TestHierarchyStatusReporting covers the observability seam the server
// logs per query: flavor names and customization latencies per planner.
func TestHierarchyStatusReporting(t *testing.T) {
	g := testCity(t)
	wit := NewPlateaus(g, Options{TreeBackend: TreeCH})
	cchP := NewPrunedPlateaus(g, Options{TreeBackend: TreeCH, Hierarchy: HierarchyCCH})
	dij := NewPlateaus(g, Options{})

	if st := wit.HierarchyStatus(); st.Kind != "witness" || st.LastCustomize <= 0 {
		t.Fatalf("witness status = %+v, want kind witness with positive latency", st)
	}
	if st := cchP.HierarchyStatus(); st.Kind != "cch" || st.LastCustomize <= 0 {
		t.Fatalf("cch status = %+v, want kind cch with positive latency", st)
	}
	if st := dij.HierarchyStatus(); st.Kind != "" || st.LastCustomize != 0 {
		t.Fatalf("dijkstra-backend status = %+v, want zero", st)
	}

	router := NewRouter(nil, []Planner{wit, cchP, dij, NewPenalty(g, Options{})})
	sts := router.HierarchyStatuses()
	if len(sts) != 4 {
		t.Fatalf("HierarchyStatuses length %d, want 4", len(sts))
	}
	if sts[0].Kind != "witness" || sts[1].Kind != "cch" || sts[2].Kind != "" || sts[3].Kind != "" {
		t.Fatalf("statuses = %+v", sts)
	}
}

// TestConcurrentPublishWithBatchQueriesCCH is the CCH twin of the
// live-serving race smoke CI runs under -race: rush-hour publishes and
// closures land while the engine answers batches across CCH-backed
// planners, and the post-sync state must match a planner built fresh at
// the final snapshot.
func TestConcurrentPublishWithBatchQueriesCCH(t *testing.T) {
	g := randomRoadNetwork(37, 120)
	pubStore := weights.NewStore(g.BaseWeights())
	seq := traffic.NewSequence(g, traffic.DefaultModel(5), 8)
	privStore := weights.NewStore(seq.WeightsAt(0))

	cchOpts := Options{Weights: pubStore, TreeBackend: TreeCH, Hierarchy: HierarchyCCH}
	planners := []Planner{
		NewPlateaus(g, cchOpts),
		NewPrunedPlateaus(g, cchOpts),
		NewPlateaus(g, Options{Weights: pubStore}),
		NewCommercial(g, nil, Options{Weights: privStore, TreeBackend: TreeCH, Hierarchy: HierarchyCCH}),
	}
	engine := NewEngine(4)
	router := NewRouter(engine, planners, pubStore, privStore)

	const publishes = 6
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := make([]float64, len(g.BaseWeights()))
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < publishes; i++ {
			seq.Advance(privStore)
			for j, w := range g.BaseWeights() {
				next[j] = w * (1 + 0.2*rng.Float64())
			}
			pubStore.Publish(next)
			if i == publishes/2 {
				// A closure mid-churn: the CCH swap must stay exact through it.
				pubStore.Ban(graph.EdgeID(rng.Intn(g.NumEdges())))
			}
		}
	}()

	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 10; round++ {
		jobs := make([]Job, 0, 3*len(planners))
		for q := 0; q < 3; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			for _, pl := range planners {
				jobs = append(jobs, Job{Planner: pl, S: s, T: dst})
			}
		}
		for _, r := range router.AlternativesBatch(jobs) {
			if r.Err != nil && r.Err != ErrNoRoute {
				t.Fatalf("batch under publish churn: %v", r.Err)
			}
		}
	}
	wg.Wait()
	router.Sync()

	// Steady state: the CCH planner must agree exactly with a fresh
	// Dijkstra-backend planner pinned at the final snapshot — the
	// "arbitrary snapshot, no re-contraction" guarantee.
	fresh := NewPlateaus(g, Options{Weights: pubStore.Latest()})
	comparePlannersExact(t, fresh, planners[0].(*Plateaus), g, 6, 3)
	if v := planners[0].(*Plateaus).WeightsVersion(); v != pubStore.Version() {
		t.Fatalf("post-sync version %d != store version %d", v, pubStore.Version())
	}
}

// TestCCHRecustomizeChainStaysExact follows several publishes through one
// provider (each Customize reuses the frozen contraction) and checks the
// final distances against ground truth — there is no drift across swaps.
func TestCCHRecustomizeChainStaysExact(t *testing.T) {
	g := randomRoadNetwork(71, 120)
	store := weights.NewStore(g.BaseWeights())
	pl := NewPlateaus(g, Options{Weights: store, TreeBackend: TreeCH, Hierarchy: HierarchyCCH})
	rng := rand.New(rand.NewSource(6))
	var final []float64
	for step := 0; step < 4; step++ {
		next := make([]float64, len(g.BaseWeights()))
		for i, w := range g.BaseWeights() {
			next[i] = w * (0.5 + rng.Float64())
			if rng.Intn(20) == 0 {
				next[i] = math.Inf(1)
			}
		}
		store.Publish(next)
		final = next
	}
	pl.refreshSync()
	fresh := NewPlateaus(g, Options{Weights: weights.Pin(final)})
	comparePlannersExact(t, fresh, pl, g, 8, 11)
}
