package core

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/weights"
)

// Commercial simulates the commercial navigation provider of the study
// (Google Maps). The real provider could not be reproduced: its routing
// data is proprietary real-time/historical traffic, and it cannot be
// forced to run on OpenStreetMap data (paper footnote 1). This stand-in
// preserves the two properties the study identifies as the provider's
// distinguishing behaviour:
//
//  1. It plans on *different underlying data* — a private traffic-aware
//     weight metric (see the traffic package) rather than the public
//     OSM-derived weights. Its routes are optimal under its own data but
//     may look like detours when judged under OSM data, recreating the
//     Fig. 4 confound. Under live serving that private metric is a
//     versioned store: every query resolves the provider's current
//     traffic snapshot, exactly the "route rankings flip as traffic
//     changes" behaviour the paper could only observe from outside.
//  2. It applies extra ranking criteria beyond travel time — fewer turns
//     and wider roads — the refinements §IV-C speculates a commercial
//     product would have engineered.
//
// Internally it generates a large candidate pool with the plateau method
// on its private weights, scores candidates by private travel time
// inflated by turn-count and narrow-road penalties, greedily picks a
// diverse top-K, and finally reports travel times under the public
// weights, exactly as the paper's query processor timed Google's routes
// with OSM data.
//
// Like a real engine it also applies the §II-B tree optimisations: by
// default its plateau trees are elliptically pruned to the UpperBound
// reachable region (sp.BuildPrunedTree) — disable with
// Options.DisablePrunedTrees — and Options.TreeBackend == TreeCH switches
// to full PHAST trees swept out of a contraction hierarchy over the
// private weights (re-customized in the background as traffic versions
// are published).
type Commercial struct {
	g      *graph.Graph
	public []float64 // OSM-derived weights used for reported travel times
	opts   Options
	prov   *provider // private-metric snapshots + per-version trees
	// ranking criteria weights
	turnPenalty   float64 // fractional cost increase per significant turn
	narrowPenalty float64 // fractional cost increase for single-lane average
	maxPairwise   float64 // candidate diversity cutoff
	diversityBias float64 // score inflation per unit of overlap with picks
	poolSize      int     // plateau candidates considered before ranking
}

// NewCommercial returns the simulated commercial provider. The private
// metric it plans on comes from Options.Weights (a live store or pinned
// snapshot); when that is nil, private must hold one weight per edge (the
// provider's own view of travel times, typically produced by
// traffic.Apply) and is pinned.
func NewCommercial(g *graph.Graph, private []float64, opts Options) *Commercial {
	opts = opts.withDefaults()
	src := opts.Weights
	if src == nil {
		src = weights.Pin(private)
	}
	c := &Commercial{
		g:             g,
		public:        g.BaseWeights(),
		opts:          opts,
		turnPenalty:   0.015,
		narrowPenalty: 0.10,
		maxPairwise:   0.80,
		diversityBias: 0.45,
		poolSize:      16,
	}
	pruned := !opts.TreeBackend.usesHierarchy() && !opts.DisablePrunedTrees
	c.prov = newProvider(g, src, true, pruned, nil, opts)
	return c
}

// Name implements Planner.
func (c *Commercial) Name() string { return "GMaps" }

// WeightsVersion implements VersionedPlanner: the version of the
// *private* traffic metric, the one that changes under live serving.
func (c *Commercial) WeightsVersion() weights.Version { return c.prov.weightsVersion() }

func (c *Commercial) refreshAsync() { c.prov.refreshAsync() }
func (c *Commercial) refreshSync()  { c.prov.refreshSync() }

func (c *Commercial) servingVersion() weights.Version { return c.prov.servingVersion() }

func (c *Commercial) weightsSource() weights.Source { return c.prov.src }

// HierarchyStatus reports the hierarchy flavor serving this planner and
// its last customization latency (zero off the TreeCH backend).
func (c *Commercial) HierarchyStatus() HierarchyStatus { return c.prov.hierarchyStatus() }

// setMetrics sinks the bundle's customization and selection observers
// into the private-metric provider (Router.SetMetrics fan-out).
func (c *Commercial) setMetrics(m *Metrics) {
	c.prov.setMetrics(m.customizeObserver(c.Name()), m.selectionObserver())
}

// Alternatives implements Planner.
func (c *Commercial) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := c.AlternativesVersioned(s, t)
	return routes, err
}

// AlternativesVersioned implements VersionedPlanner.
func (c *Commercial) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	if err := validateQuery(c.g, s, t); err != nil {
		return nil, 0, err
	}
	v := c.prov.view()
	private := v.snap.Weights()
	ver := v.snap.Version()
	if s == t {
		return trivialQuery(c.g, c.public, s), ver, nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	fwd, bwd, ok := v.trees.BuildTrees(ws, s, t)
	if !ok {
		return nil, ver, ErrNoRoute
	}
	fastestPrivate := fwd.Dist[t]

	// Candidate pool: plateau routes under the provider's private data.
	sc := getPlateauScratch()
	defer putPlateauScratch(sc)
	plateaus := findPlateausInto(sc, c.g, private, fwd, bwd)
	sortPlateaus(plateaus)

	type scored struct {
		p     path.Path // timed under private weights during selection
		score float64
	}
	var pool []scored
	buf := ws.PathBuf()
	for _, pl := range plateaus {
		if len(pool) >= c.poolSize {
			break
		}
		if pl.RouteCostS > c.opts.UpperBound*fastestPrivate+1e-9 {
			continue
		}
		var cand path.Path
		buf, cand, ok = assemblePlateauRoute(buf, c.g, private, fwd, bwd, pl)
		if !ok {
			continue
		}
		dup := false
		for i := range pool {
			if path.Equal(cand, pool[i].p) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// The pool outlives the assembly buffer; own the edges.
		cand.Edges = append([]graph.EdgeID(nil), cand.Edges...)
		pool = append(pool, scored{p: cand, score: c.score(cand)})
	}
	ws.KeepPathBuf(buf)
	if len(pool) == 0 {
		return nil, ver, ErrNoRoute
	}
	// The provider's best route (its fastest) always comes first; the rest
	// of the pool is re-ranked by the engineered goodness score.
	sort.SliceStable(pool[1:], func(i, j int) bool {
		return pool[1+i].score < pool[1+j].score
	})

	// Greedy diverse selection: the provider's fastest route first, then
	// repeatedly the candidate with the best similarity-inflated score —
	// overlap with already-picked routes makes a candidate less
	// attractive, and near-duplicates (above the pairwise cutoff) are
	// excluded outright.
	selected := []path.Path{pool[0].p}
	remaining := pool[1:]
	for len(selected) < c.opts.K {
		bestIdx := -1
		bestEff := math.Inf(1)
		for i := range remaining {
			if remaining[i].p.Edges == nil {
				continue
			}
			sim := path.MaxSimilarityTo(c.g, remaining[i].p, selected)
			if sim > c.maxPairwise {
				continue
			}
			if eff := remaining[i].score * (1 + c.diversityBias*sim); eff < bestEff {
				bestEff, bestIdx = eff, i
			}
		}
		if bestIdx < 0 {
			break
		}
		selected = append(selected, remaining[bestIdx].p)
		remaining[bestIdx].p.Edges = nil // consumed
	}
	// Report with public (OSM) travel times, as the study's query
	// processor does for every approach.
	out := make([]path.Path, len(selected))
	for i, p := range selected {
		out[i] = path.MustNew(c.g, c.public, s, p.Edges)
	}
	return out, ver, nil
}

// score is the provider's goodness function: private travel time inflated
// by zig-zag and narrow-road penalties.
func (c *Commercial) score(p path.Path) float64 {
	turns := float64(path.TurnCount(c.g, p, 45))
	lanes := path.MeanLanes(c.g, p)
	narrow := 0.0
	if lanes > 0 {
		narrow = c.narrowPenalty / lanes
	}
	return p.TimeS * (1 + c.turnPenalty*turns) * (1 + narrow)
}
