package core

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

// Commercial simulates the commercial navigation provider of the study
// (Google Maps). The real provider could not be reproduced: its routing
// data is proprietary real-time/historical traffic, and it cannot be
// forced to run on OpenStreetMap data (paper footnote 1). This stand-in
// preserves the two properties the study identifies as the provider's
// distinguishing behaviour:
//
//  1. It plans on *different underlying data* — a private traffic-aware
//     weight vector (see the traffic package) rather than the public
//     OSM-derived weights. Its routes are optimal under its own data but
//     may look like detours when judged under OSM data, recreating the
//     Fig. 4 confound.
//  2. It applies extra ranking criteria beyond travel time — fewer turns
//     and wider roads — the refinements §IV-C speculates a commercial
//     product would have engineered.
//
// Internally it generates a large candidate pool with the plateau method
// on its private weights, scores candidates by private travel time
// inflated by turn-count and narrow-road penalties, greedily picks a
// diverse top-K, and finally reports travel times under the public
// weights, exactly as the paper's query processor timed Google's routes
// with OSM data.
//
// Like a real engine it also applies the §II-B tree optimisations: by
// default its plateau trees are elliptically pruned to the UpperBound
// reachable region (sp.BuildPrunedTree) — disable with
// Options.DisablePrunedTrees — and Options.TreeBackend == TreeCH switches
// to full PHAST trees swept out of a contraction hierarchy over the
// private weights.
type Commercial struct {
	g       *graph.Graph
	public  []float64 // OSM-derived weights used for reported travel times
	private []float64 // the provider's own traffic-aware weights
	opts    Options
	trees   TreeSource // tree factory over the private weights
	// ranking criteria weights
	turnPenalty   float64 // fractional cost increase per significant turn
	narrowPenalty float64 // fractional cost increase for single-lane average
	maxPairwise   float64 // candidate diversity cutoff
	diversityBias float64 // score inflation per unit of overlap with picks
	poolSize      int     // plateau candidates considered before ranking
}

// NewCommercial returns the simulated commercial provider. private must
// have one weight per edge; it is the provider's own view of travel times
// (typically produced by traffic.Apply).
func NewCommercial(g *graph.Graph, private []float64, opts Options) *Commercial {
	opts = opts.withDefaults()
	c := &Commercial{
		g:             g,
		public:        g.CopyWeights(),
		private:       private,
		opts:          opts,
		turnPenalty:   0.015,
		narrowPenalty: 0.10,
		maxPairwise:   0.80,
		diversityBias: 0.45,
		poolSize:      16,
	}
	switch {
	case opts.TreeBackend == TreeCH:
		c.trees = newTreeSource(g, private, TreeCH)
	case opts.DisablePrunedTrees:
		c.trees = newTreeSource(g, private, TreeDijkstra)
	default:
		c.trees = newPrunedTrees(g, private, opts.UpperBound)
	}
	return c
}

// Name implements Planner.
func (c *Commercial) Name() string { return "GMaps" }

// Alternatives implements Planner.
func (c *Commercial) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(c.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(c.g, c.public, s), nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	fwd, bwd, ok := c.trees.BuildTrees(ws, s, t)
	if !ok {
		return nil, ErrNoRoute
	}
	fastestPrivate := fwd.Dist[t]

	// Candidate pool: plateau routes under the provider's private data.
	inner := &Plateaus{g: c.g, base: c.private, opts: c.opts}
	plateaus := inner.FindPlateaus(fwd, bwd)
	sortPlateaus(plateaus)

	type scored struct {
		p     path.Path // timed under private weights during selection
		score float64
	}
	var pool []scored
	buf := ws.PathBuf()
	for _, pl := range plateaus {
		if len(pool) >= c.poolSize {
			break
		}
		if pl.RouteCostS > c.opts.UpperBound*fastestPrivate+1e-9 {
			continue
		}
		var cand path.Path
		buf, cand, ok = inner.assembleInto(buf, fwd, bwd, pl)
		if !ok {
			continue
		}
		dup := false
		for i := range pool {
			if path.Equal(cand, pool[i].p) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// The pool outlives the assembly buffer; own the edges.
		cand.Edges = append([]graph.EdgeID(nil), cand.Edges...)
		pool = append(pool, scored{p: cand, score: c.score(cand)})
	}
	ws.KeepPathBuf(buf)
	if len(pool) == 0 {
		return nil, ErrNoRoute
	}
	// The provider's best route (its fastest) always comes first; the rest
	// of the pool is re-ranked by the engineered goodness score.
	sort.SliceStable(pool[1:], func(i, j int) bool {
		return pool[1+i].score < pool[1+j].score
	})

	// Greedy diverse selection: the provider's fastest route first, then
	// repeatedly the candidate with the best similarity-inflated score —
	// overlap with already-picked routes makes a candidate less
	// attractive, and near-duplicates (above the pairwise cutoff) are
	// excluded outright.
	selected := []path.Path{pool[0].p}
	remaining := pool[1:]
	for len(selected) < c.opts.K {
		bestIdx := -1
		bestEff := math.Inf(1)
		for i := range remaining {
			if remaining[i].p.Edges == nil {
				continue
			}
			sim := path.MaxSimilarityTo(c.g, remaining[i].p, selected)
			if sim > c.maxPairwise {
				continue
			}
			if eff := remaining[i].score * (1 + c.diversityBias*sim); eff < bestEff {
				bestEff, bestIdx = eff, i
			}
		}
		if bestIdx < 0 {
			break
		}
		selected = append(selected, remaining[bestIdx].p)
		remaining[bestIdx].p.Edges = nil // consumed
	}
	// Report with public (OSM) travel times, as the study's query
	// processor does for every approach.
	out := make([]path.Path, len(selected))
	for i, p := range selected {
		out[i] = path.MustNew(c.g, c.public, s, p.Edges)
	}
	return out, nil
}

// score is the provider's goodness function: private travel time inflated
// by zig-zag and narrow-road penalties.
func (c *Commercial) score(p path.Path) float64 {
	turns := float64(path.TurnCount(c.g, p, 45))
	lanes := path.MeanLanes(c.g, p)
	narrow := 0.0
	if lanes > 0 {
		narrow = c.narrowPenalty / lanes
	}
	return p.TimeS * (1 + c.turnPenalty*turns) * (1 + narrow)
}
