// Package core implements the alternative-route planning techniques the
// paper compares:
//
//   - Penalty (Akgün et al.; Chen et al.): iterated shortest paths with
//     multiplicative edge penalties (penalty.go),
//   - Plateaus (Cotares "Choice Routing"; Abraham et al.): joining forward
//     and backward shortest-path trees and growing routes from the longest
//     plateaus (plateaus.go),
//   - Dissimilarity (Chondrogiannis et al., SSVP-D+): via-node paths in
//     ascending cost order thresholded on pairwise similarity
//     (dissimilarity.go),
//   - Commercial (the stand-in for Google Maps): plans on its own private
//     traffic-aware weight data and applies extra ranking criteria
//     (commercial.go),
//
// plus Yen's k-shortest-paths algorithm as the classic baseline whose
// routes are too similar to serve as alternatives (yen.go).
//
// All planners return routes whose displayed travel time (Path.TimeS) is
// computed under the public OSM-derived weights, exactly as the paper's
// query processor does for all four approaches, whatever data the planner
// used internally.
package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/weights"
)

// Paper parameter defaults (§III "Parameter Details").
const (
	// DefaultK is the number of routes displayed per approach, including
	// the fastest route.
	DefaultK = 3
	// DefaultPenaltyFactor multiplies the weight of every edge of a found
	// path before the next Penalty iteration.
	DefaultPenaltyFactor = 1.4
	// DefaultUpperBound caps an alternative's travel time at this multiple
	// of the fastest travel time (Plateaus, Dissimilarity).
	DefaultUpperBound = 1.4
	// DefaultTheta is the Dissimilarity admission threshold: a route joins
	// the result set only if its similarity to every selected route is
	// below θ.
	DefaultTheta = 0.5
)

// ErrNoRoute is returned when the target is unreachable from the source.
var ErrNoRoute = errors.New("core: no route between source and target")

// Planner generates up to K alternative routes between two vertices. The
// first returned route is always the planner's best route; all returned
// routes are pairwise distinct edge sequences.
type Planner interface {
	// Name returns the technique's display name.
	Name() string
	// Alternatives returns 1..K routes from s to t. It returns ErrNoRoute
	// if t is unreachable from s. s == t yields a single empty route.
	Alternatives(s, t graph.NodeID) ([]path.Path, error)
}

// Options configures a planner. The zero value selects the paper's
// parameters via the Default* constants.
type Options struct {
	// Weights is the weight source the planner resolves per query: a
	// *weights.Store for live traffic (each query plans on the store's
	// latest snapshot) or a *weights.Snapshot to pin one version forever.
	// nil pins the graph's base travel-time weights — the static
	// configuration of the paper's experiments. For the Commercial
	// planner this source is its *private* (traffic-aware) metric; all
	// other planners plan on the public metric.
	Weights weights.Source
	// K is the maximum number of routes to return (default 3).
	K int
	// UpperBound caps alternative travel time at UpperBound × fastest
	// (default 1.4). Ignored by the Penalty planner, matching the paper,
	// unless ApplyUpperBoundToPenalty is set.
	UpperBound float64
	// PenaltyFactor is the per-iteration weight multiplier of the Penalty
	// planner (default 1.4).
	PenaltyFactor float64
	// Theta is the Dissimilarity admission threshold (default 0.5).
	Theta float64
	// TreeBackend selects how the choice-routing planners (Plateaus,
	// Commercial, PrunedPlateaus) build their shortest-path trees: full
	// Dijkstra searches (TreeDijkstra, the default, matching the paper's
	// description), PHAST downward sweeps over a contraction hierarchy
	// (TreeCH, the §II-B optimisation commercial engines apply), RPHAST
	// restricted sweeps over the query's elliptic target set
	// (TreeCHRestricted — sublinear tree builds for short queries), or
	// the auto mode that restricts only while the ellipse stays small
	// (TreeCHAuto). All backends produce equivalent route sets; the CH
	// family trades a one-off preprocessing at planner construction for
	// much cheaper queries.
	TreeBackend TreeBackend
	// Hierarchy selects the contraction-hierarchy flavor behind the CH
	// backends: HierarchyWitness (the default) contracts with witness
	// pruning — smallest hierarchy, weights-only customization exact only
	// under witness-preserving metrics — while HierarchyCCH contracts
	// metric-independently on a nested-dissection order and customizes by
	// triangle relaxation, staying exact for every published snapshot
	// including +Inf closures. HierarchyCCHPerfect adds the perfect-
	// customization post-pass on every publish. Ignored on TreeDijkstra.
	Hierarchy HierarchyKind
	// Order selects the nested-dissection pipeline behind the CCH
	// hierarchy flavors: OrderGeometric (the default) bisects on
	// coordinates with a greedy vertex-cover separator; OrderFlow refines
	// every split with an inertial-flow minimum vertex cut — smaller
	// separators, fewer triangles, measurably faster customization on
	// every publish, at the cost of a slower one-off preprocessing.
	// Preprocessings are shared per (graph, order kind). Ignored off the
	// CCH flavors.
	Order OrderKind
	// Query selects the point-to-point distance engine on the CCH
	// hierarchy flavors: QueryElimTree (the default) answers Dist/Path —
	// including the fastest-time bound seeding every restricted selection
	// — by walking the elimination-tree root paths heap-free; QueryBidij
	// keeps the bidirectional upward Dijkstra. Distances are
	// bit-identical either way. Ignored by HierarchyWitness and the
	// Dijkstra backend.
	Query QueryEngine
	// CustomizeWorkers bounds the per-level worker fan-out of CCH
	// customization (the triangle relaxation behind every CCH publish).
	// 0 selects GOMAXPROCS; 1 forces the serial sweep. Any value yields
	// bit-identical hierarchies — it is purely a publish-latency knob.
	// Ignored off the CCH hierarchy flavors.
	CustomizeWorkers int
	// SelectionCacheBytes is the total byte budget of the restricted
	// backends' selection cache (per planner, per weight version): cached
	// RPHAST selections keyed by spatial cell signature, clock-evicted
	// once the budget is exceeded. 0 selects DefaultSelectionCacheBytes;
	// negative degenerates to holding a single entry per shard. Ignored
	// off TreeCHRestricted/TreeCHAuto.
	SelectionCacheBytes int
	// DisablePrunedTrees makes the Commercial planner build full trees
	// instead of the elliptically pruned trees (sp.BuildPrunedTree) it
	// uses by default. Pruned and full trees yield the same routes (the
	// §II-B claim, verified by the test suite); the toggle exists for
	// ablations. Ignored on the hierarchy backends.
	DisablePrunedTrees bool
	// ApplyUpperBoundToPenalty additionally filters Penalty routes by the
	// upper bound — one of the "easily included" refinements of §IV-C.
	ApplyUpperBoundToPenalty bool
	// SimilarityCutoff, when positive, drops any candidate whose
	// similarity to an already selected route exceeds the cutoff. The
	// paper notes (§IV-B) this constraint "can be easily integrated" into
	// Penalty and Plateaus; it is off by default to match the studied
	// configuration.
	SimilarityCutoff float64
	// LocalOptimalityWindow, when positive, drops candidates that are not
	// locally optimal: every subpath whose travel time is at most
	// LocalOptimalityWindow × the fastest s-t time must itself be within
	// LocalOptimalityTolerance of a shortest path. §IV-C lists this as a
	// refinement the study did not apply ("we could filter the routes in
	// Penalty and Dissimilarity approaches that did not satisfy local
	// optimality"); it is off by default to match the studied
	// configuration.
	LocalOptimalityWindow float64
	// LocalOptimalityTolerance is the allowed relative excess of a
	// windowed subpath over the true shortest path (default 0.02 when the
	// window is enabled).
	LocalOptimalityTolerance float64
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = DefaultK
	}
	if o.UpperBound <= 0 {
		o.UpperBound = DefaultUpperBound
	}
	if o.PenaltyFactor <= 0 {
		o.PenaltyFactor = DefaultPenaltyFactor
	}
	if o.Theta <= 0 {
		o.Theta = DefaultTheta
	}
	if o.LocalOptimalityWindow > 0 && o.LocalOptimalityTolerance <= 0 {
		o.LocalOptimalityTolerance = 0.02
	}
	return o
}

// resolveSource defaults a nil Options.Weights to a pin of the graph's
// own base travel-time weights — the paper's static configuration.
func resolveSource(g *graph.Graph, src weights.Source) weights.Source {
	if src == nil {
		return weights.Pin(g.BaseWeights())
	}
	return src
}

func validateQuery(g *graph.Graph, s, t graph.NodeID) error {
	n := graph.NodeID(g.NumNodes())
	if s < 0 || s >= n {
		return fmt.Errorf("core: source %d out of range [0,%d)", s, n)
	}
	if t < 0 || t >= n {
		return fmt.Errorf("core: target %d out of range [0,%d)", t, n)
	}
	return nil
}

// trivialQuery handles the s == t case shared by all planners.
func trivialQuery(g *graph.Graph, weights []float64, s graph.NodeID) []path.Path {
	return []path.Path{path.MustNew(g, weights, s, nil)}
}

// admit reports whether candidate is acceptable given the already selected
// routes under the optional similarity cutoff, and is not a duplicate.
func admit(g *graph.Graph, cand path.Path, selected []path.Path, simCutoff float64) bool {
	for i := range selected {
		if path.Equal(cand, selected[i]) {
			return false
		}
	}
	if simCutoff > 0 && path.MaxSimilarityTo(g, cand, selected) > simCutoff {
		return false
	}
	return true
}

// admitLocalOpt applies the optional local-optimality refinement: with a
// zero window it always accepts, otherwise the candidate's windowed
// subpaths must all be near-shortest under the given weights. fastest is
// the s-t fastest travel time, which scales the window.
func admitLocalOpt(g *graph.Graph, weights []float64, cand path.Path, fastest float64, o Options) bool {
	if o.LocalOptimalityWindow <= 0 || fastest <= 0 {
		return true
	}
	window := o.LocalOptimalityWindow * fastest
	return path.IsLocallyOptimal(g, weights, cand, window, o.LocalOptimalityTolerance)
}
