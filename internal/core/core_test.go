package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/traffic"
)

// testCity builds a 12×12 grid town (200 m blocks) with two primary
// arterials and one motorway bypass along the southern edge — enough
// structure for genuinely different alternative routes to exist.
func testCity(t testing.TB) *graph.Graph {
	t.Helper()
	const n = 12
	b := graph.NewBuilder(n*n+2, 0)
	o := geo.Point{Lat: -37.84, Lon: 144.93}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(o, float64(r)*200, float64(c)*200))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			class := graph.Residential
			if r == 4 || r == 8 {
				class = graph.Primary
			}
			if c == 6 {
				class = graph.Secondary
			}
			if c+1 < n {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < n {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	// Motorway bypass south of the grid with ramps at both ends.
	w := b.AddNode(geo.Offset(o, -400, -200))
	e := b.AddNode(geo.Offset(o, -400, float64(n)*200))
	b.AddEdge(graph.EdgeSpec{From: id(0, 0), To: w, Class: graph.MotorwayLink, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: w, To: e, Class: graph.Motorway, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: e, To: id(0, n-1), Class: graph.MotorwayLink, TwoWay: true})
	return b.Build()
}

// disconnectedPair returns a graph with two components and a node from each.
func disconnectedPair(t *testing.T) (*graph.Graph, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(4, 2)
	o := geo.Point{Lat: 0, Lon: 0}
	a := b.AddNode(o)
	a2 := b.AddNode(geo.Offset(o, 100, 0))
	c := b.AddNode(geo.Offset(o, 0, 9000))
	c2 := b.AddNode(geo.Offset(o, 100, 9000))
	b.AddEdge(graph.EdgeSpec{From: a, To: a2, Class: graph.Residential, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: c, To: c2, Class: graph.Residential, TwoWay: true})
	return b.Build(), a, c
}

// allPlanners instantiates each studied technique over g.
func allPlanners(g *graph.Graph, opts Options) []Planner {
	private := traffic.Apply(g, traffic.DefaultModel(99))
	return []Planner{
		NewCommercial(g, private, opts),
		NewPlateaus(g, opts),
		NewDissimilarity(g, opts),
		NewPenalty(g, opts),
	}
}

func checkRouteSet(t *testing.T, g *graph.Graph, name string, routes []path.Path, s, dst graph.NodeID, k int) {
	t.Helper()
	if len(routes) == 0 {
		t.Fatalf("%s: no routes", name)
	}
	if len(routes) > k {
		t.Fatalf("%s: %d routes, want at most %d", name, len(routes), k)
	}
	for i, r := range routes {
		if r.Source() != s || r.Target() != dst {
			t.Fatalf("%s route %d: endpoints %d->%d, want %d->%d",
				name, i, r.Source(), r.Target(), s, dst)
		}
		cur := s
		for j, e := range r.Edges {
			ed := g.Edge(e)
			if ed.From != cur {
				t.Fatalf("%s route %d: discontinuity at edge %d", name, i, j)
			}
			cur = ed.To
		}
		for j := 0; j < i; j++ {
			if path.Equal(routes[i], routes[j]) {
				t.Fatalf("%s: routes %d and %d identical", name, i, j)
			}
		}
	}
}

func TestAllPlannersBasicContract(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	_, fastest := sp.ShortestPath(g, w, s, dst)
	for _, pl := range allPlanners(g, Options{}) {
		t.Run(pl.Name(), func(t *testing.T) {
			routes, err := pl.Alternatives(s, dst)
			if err != nil {
				t.Fatalf("Alternatives: %v", err)
			}
			checkRouteSet(t, g, pl.Name(), routes, s, dst, DefaultK)
			// Every route's displayed time is computed under public weights.
			for i, r := range routes {
				if math.Abs(r.TimeUnder(w)-r.TimeS) > 1e-6 {
					t.Errorf("route %d TimeS not under public weights: %f vs %f",
						i, r.TimeS, r.TimeUnder(w))
				}
				if r.TimeS < fastest-1e-6 {
					t.Errorf("route %d faster (%f) than the fastest path (%f)", i, r.TimeS, fastest)
				}
			}
		})
	}
}

func TestPlannersProduceMultipleRoutes(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	for _, pl := range allPlanners(g, Options{}) {
		routes, err := pl.Alternatives(s, dst)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if len(routes) < 2 {
			t.Errorf("%s returned %d routes on a grid city; want ≥ 2", pl.Name(), len(routes))
		}
	}
}

func TestSameSourceTarget(t *testing.T) {
	g := testCity(t)
	for _, pl := range append(allPlanners(g, Options{}), NewYen(g, Options{})) {
		routes, err := pl.Alternatives(5, 5)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if len(routes) != 1 || !routes[0].Empty() {
			t.Errorf("%s: s==t should yield one empty route, got %d routes", pl.Name(), len(routes))
		}
	}
}

func TestUnreachableTarget(t *testing.T) {
	g, s, dst := disconnectedPair(t)
	private := traffic.Apply(g, traffic.DefaultModel(1))
	planners := []Planner{
		NewPenalty(g, Options{}),
		NewPlateaus(g, Options{}),
		NewDissimilarity(g, Options{}),
		NewCommercial(g, private, Options{}),
		NewYen(g, Options{}),
	}
	for _, pl := range planners {
		if _, err := pl.Alternatives(s, dst); err != ErrNoRoute {
			t.Errorf("%s: want ErrNoRoute, got %v", pl.Name(), err)
		}
	}
}

func TestInvalidNodes(t *testing.T) {
	g := testCity(t)
	for _, pl := range allPlanners(g, Options{}) {
		if _, err := pl.Alternatives(-1, 5); err == nil {
			t.Errorf("%s: negative source should error", pl.Name())
		}
		if _, err := pl.Alternatives(5, graph.NodeID(g.NumNodes())); err == nil {
			t.Errorf("%s: out-of-range target should error", pl.Name())
		}
	}
}

func TestFirstRouteIsFastestForOSMPlanners(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(3), graph.NodeID(11*12+8)
	_, fastest := sp.ShortestPath(g, w, s, dst)
	for _, pl := range []Planner{NewPenalty(g, Options{}), NewPlateaus(g, Options{}), NewDissimilarity(g, Options{})} {
		routes, err := pl.Alternatives(s, dst)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if math.Abs(routes[0].TimeS-fastest) > 1e-6 {
			t.Errorf("%s first route time %f, want fastest %f", pl.Name(), routes[0].TimeS, fastest)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.K != DefaultK || o.UpperBound != DefaultUpperBound ||
		o.PenaltyFactor != DefaultPenaltyFactor || o.Theta != DefaultTheta {
		t.Errorf("withDefaults = %+v", o)
	}
	// Explicit values survive.
	o = Options{K: 5, UpperBound: 2, PenaltyFactor: 1.1, Theta: 0.3}.withDefaults()
	if o.K != 5 || o.UpperBound != 2 || o.PenaltyFactor != 1.1 || o.Theta != 0.3 {
		t.Errorf("withDefaults clobbered explicit values: %+v", o)
	}
}

func TestRandomQueriesAllPlanners(t *testing.T) {
	g := testCity(t)
	rng := rand.New(rand.NewSource(17))
	planners := allPlanners(g, Options{})
	for q := 0; q < 25; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == dst {
			continue
		}
		for _, pl := range planners {
			routes, err := pl.Alternatives(s, dst)
			if err != nil {
				t.Fatalf("query %d %s (%d->%d): %v", q, pl.Name(), s, dst, err)
			}
			checkRouteSet(t, g, pl.Name(), routes, s, dst, DefaultK)
		}
	}
}
