package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/weights"
)

// Dissimilarity implements the SSVP-D+ technique of Chondrogiannis et al.
// ("Finding k-dissimilar paths with minimum collective length", SIGSPATIAL
// 2018): generate candidate routes through via-nodes — the concatenation
// sp(s,u)+sp(u,t) for a via-node u — consider them in ascending order of
// their total travel time, and admit a candidate only if its similarity to
// every already-selected route is below the threshold θ. The fastest path
// (via-node = any node on it) is always selected first, so the result is a
// set of short routes that are pairwise dissimilar by construction.
//
// Both shortest-path trees are built once per query; every via-path is
// assembled from tree pointers, which keeps the approximation fast enough
// for interactive use (the exact problem is NP-hard). Each query resolves
// the current weight snapshot from Options.Weights, so the planner
// follows live traffic without per-version state.
type Dissimilarity struct {
	g    *graph.Graph
	src  weights.Source
	opts Options
}

// NewDissimilarity returns a Dissimilarity planner over g planning on
// Options.Weights (nil pins the graph's base travel-time weights).
func NewDissimilarity(g *graph.Graph, opts Options) *Dissimilarity {
	o := opts.withDefaults()
	return &Dissimilarity{g: g, src: resolveSource(g, o.Weights), opts: o}
}

// Name implements Planner.
func (d *Dissimilarity) Name() string { return "Dissimilarity" }

// WeightsVersion implements VersionedPlanner.
func (d *Dissimilarity) WeightsVersion() weights.Version { return d.src.Snapshot().Version() }

func (d *Dissimilarity) weightsSource() weights.Source { return d.src }

// Alternatives implements Planner.
func (d *Dissimilarity) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := d.AlternativesVersioned(s, t)
	return routes, err
}

// AlternativesVersioned implements VersionedPlanner.
func (d *Dissimilarity) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	if err := validateQuery(d.g, s, t); err != nil {
		return nil, 0, err
	}
	snap := d.src.Snapshot()
	base := snap.Weights()
	ver := snap.Version()
	if s == t {
		return trivialQuery(d.g, base, s), ver, nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	fwd := sp.BuildTreeInto(ws, d.g, base, s, sp.Forward)
	if !fwd.Reached(t) {
		return nil, ver, ErrNoRoute
	}
	bwd := sp.BuildTreeInto(ws, d.g, base, t, sp.Backward)
	fastest := fwd.Dist[t]
	bound := d.opts.UpperBound * fastest

	// Candidate via-nodes: every node whose via-path meets the upper
	// bound, in ascending via-path cost order. The target itself yields
	// the fastest path and sorts first (cost == fastest).
	type viaCand struct {
		node graph.NodeID
		cost float64
	}
	cands := make([]viaCand, 0, 256)
	for v := graph.NodeID(0); int(v) < d.g.NumNodes(); v++ {
		if !fwd.Reached(v) || !bwd.Reached(v) {
			continue
		}
		c := fwd.Dist[v] + bwd.Dist[v]
		if c <= bound+1e-9 {
			cands = append(cands, viaCand{v, c})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].node < cands[j].node
	})

	// onSelected marks nodes interior to already-selected routes; via-nodes
	// on a selected route regenerate (a superpath of) that route, so they
	// are skipped cheaply — the "+" pruning of SSVP-D+.
	onSelected := make([]bool, d.g.NumNodes())

	var routes []path.Path
	for _, c := range cands {
		if len(routes) >= d.opts.K {
			break
		}
		if onSelected[c.node] {
			continue
		}
		cand, ok := d.viaPath(base, fwd, bwd, s, c.node)
		if !ok {
			continue
		}
		// Admission: dis(p, P) > θ, with dis = 1 − (fraction of p running
		// on roads already used by P). Equivalently the candidate must be
		// more than θ new road. This also bounds every pairwise Eq. (1)
		// similarity below θ.
		if path.UnionShare(d.g, cand, routes) >= 1-d.opts.Theta {
			continue
		}
		if !admit(d.g, cand, routes, d.opts.SimilarityCutoff) {
			continue
		}
		if !admitLocalOpt(d.g, base, cand, fastest, d.opts) {
			continue
		}
		routes = append(routes, cand)
		for _, v := range cand.Nodes {
			onSelected[v] = true
		}
	}
	if len(routes) == 0 {
		return nil, ver, ErrNoRoute
	}
	return routes, ver, nil
}

// viaPath assembles sp(s,u) + sp(u,t) from the two trees. Via-paths that
// revisit a node (the two halves overlap) are rejected as malformed
// candidates, mirroring SSVP's simple-path requirement.
func (d *Dissimilarity) viaPath(base []float64, fwd, bwd *sp.Tree, s, u graph.NodeID) (path.Path, bool) {
	head := fwd.PathTo(d.g, u)
	if head == nil && u != s {
		return path.Path{}, false
	}
	tail := bwd.PathTo(d.g, u)
	if tail == nil && u != bwd.Root {
		return path.Path{}, false
	}
	edges := make([]graph.EdgeID, 0, len(head)+len(tail))
	edges = append(edges, head...)
	edges = append(edges, tail...)
	cand, err := path.New(d.g, base, s, edges)
	if err != nil {
		return path.Path{}, false
	}
	seen := make(map[graph.NodeID]bool, len(cand.Nodes))
	for _, v := range cand.Nodes {
		if seen[v] {
			return path.Path{}, false
		}
		seen[v] = true
	}
	return cand, true
}
