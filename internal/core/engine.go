package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/path"
)

// Engine is the concurrent serving-layer entry point: it fans a batch of
// Alternatives calls out over a bounded worker pool, the execution model a
// multi-user deployment needs (§III's demo system answers four approaches
// per submit, and the evaluation harness replays hundreds of queries).
//
// The engine itself holds no per-query state; each in-flight call draws a
// warm sp.Workspace from the shared pool, so a saturated engine runs
// steady-state query processing without allocating search arrays. Planners
// used through an Engine must be safe for concurrent use — every planner
// in this package is (PrunedPlateaus records its per-query instrumentation
// through atomics).
type Engine struct {
	sem chan struct{}
}

// NewEngine returns an engine running at most workers concurrent planner
// calls; workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{sem: make(chan struct{}, workers)}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Job is one Alternatives call of a batch.
type Job struct {
	Planner Planner
	S, T    graph.NodeID
}

// Result is the outcome of one Job, in batch order.
type Result struct {
	Routes []path.Path
	Err    error
}

// AlternativesBatch answers all jobs concurrently (bounded by the worker
// limit) and returns results in job order. It blocks until the whole
// batch is done; per-job failures are reported in Result.Err, never as a
// panic across goroutines.
func (e *Engine) AlternativesBatch(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 1 {
		// A singleton batch runs inline — no goroutine handoff on the
		// latency-critical single-query path — but still under the
		// semaphore so the worker bound holds across concurrent callers.
		e.sem <- struct{}{}
		runJob(&jobs[0], &results[0])
		<-e.sem
		return results
	}
	var wg sync.WaitGroup
	for i := range jobs {
		e.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-e.sem
				wg.Done()
			}()
			runJob(&jobs[i], &results[i])
		}(i)
	}
	wg.Wait()
	return results
}

// runJob executes one planner call, converting a panic into the job's
// error: a worker goroutine must never take the whole process down (the
// HTTP handler's own recover cannot reach it).
func runJob(job *Job, res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res.Routes = nil
			res.Err = fmt.Errorf("core: planner %s panicked on %d->%d: %v", job.Planner.Name(), job.S, job.T, r)
		}
	}()
	res.Routes, res.Err = job.Planner.Alternatives(job.S, job.T)
}

// Alternatives answers one query with every planner concurrently — the
// fan-out behind each "Submit" press of the demo system, where the four
// approaches' answers are independent.
func (e *Engine) Alternatives(planners []Planner, s, t graph.NodeID) []Result {
	jobs := make([]Job, len(planners))
	for i, pl := range planners {
		jobs[i] = Job{Planner: pl, S: s, T: t}
	}
	return e.AlternativesBatch(jobs)
}
