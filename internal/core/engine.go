package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/weights"
)

// Engine is the concurrent serving-layer entry point: it fans a batch of
// Alternatives calls out over a bounded worker pool, the execution model a
// multi-user deployment needs (§III's demo system answers four approaches
// per submit, and the evaluation harness replays hundreds of queries).
//
// The engine itself holds no per-query state; each in-flight call draws a
// warm sp.Workspace from the shared pool, so a saturated engine runs
// steady-state query processing without allocating search arrays. Planners
// used through an Engine must be safe for concurrent use — every planner
// in this package is (PrunedPlateaus records its per-query instrumentation
// through atomics).
//
// With SetCache the engine additionally memoizes answers keyed by
// (planner, weight version, s, t): under live traffic the same hot
// queries recur between publishes, and a versioned key guarantees a hit
// can never serve routes from a superseded snapshot. The serving layer
// (core.Router) invalidates the cache on every publish.
type Engine struct {
	sem   chan struct{}
	cache atomic.Pointer[resultCache]
	// cacheSet records that SetCache was called explicitly, so a Router
	// only installs its default cache on engines whose owner never chose
	// (an explicit SetCache(0) stays disabled).
	cacheSet atomic.Bool
	// metrics maps each planner to its instrument bundle (nil map or
	// missing planner: record nothing). Queries and cache lookups are
	// recorded here, at the engine, because the engine is the one place
	// every query passes exactly once — a planner-level hook would double
	// count when planners call each other. The map is keyed by planner
	// rather than held as a single bundle because one engine is commonly
	// shared by several cities (demoserver pools its workers): planners
	// are per-city, so the planner identity is what carries the city
	// label. Copy-on-write under metricsMu; lookups are one atomic load.
	metrics   atomic.Pointer[map[Planner]*Metrics]
	metricsMu sync.Mutex
}

// NewEngine returns an engine running at most workers concurrent planner
// calls; workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{sem: make(chan struct{}, workers)}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// SetCache equips the engine with a result cache holding up to capacity
// answers (capacity <= 0 removes the cache). Only planners implementing
// VersionedPlanner are cached — without a version the key would alias
// answers across weight swaps.
func (e *Engine) SetCache(capacity int) {
	e.cacheSet.Store(true)
	if capacity <= 0 {
		e.cache.Store(nil)
		return
	}
	e.cache.Store(newResultCache(capacity))
}

// InvalidateCache drops every cached answer — the blunt full-reset hook
// (harmless and a no-op without a cache). The Router's publish path uses
// the finer EvictCacheStale instead.
func (e *Engine) InvalidateCache() {
	if c := e.cache.Load(); c != nil {
		c.clear()
	}
}

// EvictCacheStale drops, in one sweep, the cached answers computed under
// versions older than each planner's floor (its currently *serving*
// version), keeping the generation a double-buffered planner still
// serves alive across a publish. The Router calls it once per publish.
func (e *Engine) EvictCacheStale(floors map[Planner]weights.Version) {
	if len(floors) == 0 {
		return
	}
	if c := e.cache.Load(); c != nil {
		c.evictStale(floors)
	}
}

// CacheStats reports cumulative cache hits and misses (zeros without a
// cache) — the serving metric the demo server logs per query.
func (e *Engine) CacheStats() (hits, misses uint64) {
	if c := e.cache.Load(); c != nil {
		return c.hits.Load(), c.misses.Load()
	}
	return 0, 0
}

// SetMetrics installs the instrument bundle recording per-query latency
// and result-cache traffic for the given planners (m == nil uninstalls
// them). Registrations from different cities accumulate, so a shared
// engine attributes each query to the city owning its planner. Safe to
// call while serving.
func (e *Engine) SetMetrics(m *Metrics, planners ...Planner) {
	e.metricsMu.Lock()
	defer e.metricsMu.Unlock()
	next := make(map[Planner]*Metrics)
	if old := e.metrics.Load(); old != nil {
		for pl, b := range *old {
			next[pl] = b
		}
	}
	for _, pl := range planners {
		if m == nil {
			delete(next, pl)
		} else {
			next[pl] = m
		}
	}
	if len(next) == 0 {
		e.metrics.Store(nil)
		return
	}
	e.metrics.Store(&next)
}

// metricsFor returns the bundle observing this planner's queries (nil
// for unregistered planners — every observer method is nil-safe).
func (e *Engine) metricsFor(pl Planner) *Metrics {
	if reg := e.metrics.Load(); reg != nil {
		return (*reg)[pl]
	}
	return nil
}

// Job is one Alternatives call of a batch.
type Job struct {
	Planner Planner
	S, T    graph.NodeID
}

// Result is the outcome of one Job, in batch order.
type Result struct {
	Routes []path.Path
	// Version is the weight snapshot the answer was computed under (0 for
	// planners that are not VersionedPlanner). Treat Routes as immutable:
	// cached results are shared between callers.
	Version weights.Version
	Err     error
}

// AlternativesBatch answers all jobs concurrently (bounded by the worker
// limit) and returns results in job order. It blocks until the whole
// batch is done; per-job failures are reported in Result.Err, never as a
// panic across goroutines.
func (e *Engine) AlternativesBatch(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 1 {
		// A singleton batch runs inline — no goroutine handoff on the
		// latency-critical single-query path — but still under the
		// semaphore so the worker bound holds across concurrent callers.
		e.sem <- struct{}{}
		e.runJob(&jobs[0], &results[0])
		<-e.sem
		return results
	}
	var wg sync.WaitGroup
	for i := range jobs {
		e.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-e.sem
				wg.Done()
			}()
			e.runJob(&jobs[i], &results[i])
		}(i)
	}
	wg.Wait()
	return results
}

// Run executes fn(0) .. fn(n-1) under the engine's worker bound — the
// generic fan-out behind batched tree sweeps (core.MatrixEngine). With a
// single worker or a single item the calls run inline on the caller's
// goroutine (still acquiring the semaphore per call, so the bound holds
// against concurrent callers) — no goroutine handoff, which is what lets
// a warm matrix sweep run allocation-free on a one-worker engine. A panic
// in fn is recovered and returned as an error (first one wins) rather
// than crashing a worker goroutine; the remaining calls still run.
func (e *Engine) Run(n int, fn func(int)) error {
	if n <= 0 {
		return nil
	}
	if n == 1 || cap(e.sem) == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			e.sem <- struct{}{}
			err := protectCall(fn, i)
			<-e.sem
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		e.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-e.sem
				wg.Done()
			}()
			if err := protectCall(fn, i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// protectCall runs fn(i), converting a panic into an error.
func protectCall(fn func(int), i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: engine task %d panicked: %v", i, r)
		}
	}()
	fn(i)
	return nil
}

// acquire/release expose the worker semaphore to same-package batch
// drivers that loop inline instead of handing fn to Run (avoiding the
// closure allocation on their zero-alloc paths).
func (e *Engine) acquire() { e.sem <- struct{}{} }
func (e *Engine) release() { <-e.sem }

// runJob executes one planner call, recording its latency and outcome
// when an instrument bundle is installed. Timing wraps doJob from the
// outside so a recovered panic is still observed with its error counted.
func (e *Engine) runJob(job *Job, res *Result) {
	m := e.metricsFor(job.Planner)
	if m == nil {
		e.doJob(job, res)
		return
	}
	start := time.Now()
	e.doJob(job, res)
	m.observeQuery(job.Planner.Name(), time.Since(start), res.Err)
}

// doJob executes one planner call, converting a panic into the job's
// error: a worker goroutine must never take the whole process down (the
// HTTP handler's own recover cannot reach it).
func (e *Engine) doJob(job *Job, res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res.Routes = nil
			res.Err = fmt.Errorf("core: planner %s panicked on %d->%d: %v", job.Planner.Name(), job.S, job.T, r)
		}
	}()
	vp, versioned := job.Planner.(VersionedPlanner)
	cache := e.cache.Load()
	if cache == nil || !versioned {
		if versioned {
			res.Routes, res.Version, res.Err = vp.AlternativesVersioned(job.S, job.T)
			return
		}
		res.Routes, res.Err = job.Planner.Alternatives(job.S, job.T)
		return
	}
	// Look up under the version the planner would serve right now; store
	// under the version it actually used. A lookup that hits therefore
	// always returns routes computed under exactly its own version, even
	// if a publish lands mid-flight.
	key := cacheKey{planner: job.Planner, version: vp.WeightsVersion(), s: job.S, t: job.T}
	if routes, ok := cache.get(key); ok {
		e.metricsFor(job.Planner).observeCache(true)
		res.Routes, res.Version = routes, key.version
		return
	}
	e.metricsFor(job.Planner).observeCache(false)
	res.Routes, res.Version, res.Err = vp.AlternativesVersioned(job.S, job.T)
	if res.Err == nil {
		key.version = res.Version
		cache.put(key, res.Routes)
	}
}

// Alternatives answers one query with every planner concurrently — the
// fan-out behind each "Submit" press of the demo system, where the four
// approaches' answers are independent.
func (e *Engine) Alternatives(planners []Planner, s, t graph.NodeID) []Result {
	jobs := make([]Job, len(planners))
	for i, pl := range planners {
		jobs[i] = Job{Planner: pl, S: s, T: t}
	}
	return e.AlternativesBatch(jobs)
}
