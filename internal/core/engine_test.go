package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/path"
)

func routesEqual(t *testing.T, want, got []path.Path, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d routes, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !path.Equal(want[i], got[i]) {
			t.Fatalf("%s: route %d differs", label, i)
		}
		if want[i].TimeS != got[i].TimeS {
			t.Fatalf("%s: route %d time %v, want %v", label, i, got[i].TimeS, want[i].TimeS)
		}
	}
}

// TestEngineMatchesSerial compares a batched engine run against direct
// serial planner calls: same routes, same order, same errors.
func TestEngineMatchesSerial(t *testing.T) {
	g := testCity(t)
	planners := allPlanners(g, Options{})
	e := NewEngine(4)

	var jobs []Job
	for q := 0; q < 10; q++ {
		s := graph.NodeID((q * 13) % g.NumNodes())
		d := graph.NodeID((q*29 + 7) % g.NumNodes())
		for _, pl := range planners {
			jobs = append(jobs, Job{Planner: pl, S: s, T: d})
		}
	}
	results := e.AlternativesBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, job := range jobs {
		want, wantErr := job.Planner.Alternatives(job.S, job.T)
		if (wantErr == nil) != (results[i].Err == nil) {
			t.Fatalf("job %d: err %v, want %v", i, results[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		routesEqual(t, want, results[i].Routes, "batched job")
	}
}

// TestEngineConcurrentHammer slams one engine (and therefore the shared
// workspace pool) from many goroutines at once and checks every result
// against a serial oracle. Run with -race this is the data-race guard for
// the whole workspace machinery.
func TestEngineConcurrentHammer(t *testing.T) {
	g := testCity(t)
	planners := allPlanners(g, Options{})
	e := NewEngine(8)

	type query struct{ s, d graph.NodeID }
	queries := make([]query, 12)
	for i := range queries {
		queries[i] = query{
			s: graph.NodeID((i * 17) % g.NumNodes()),
			d: graph.NodeID((i*31 + 3) % g.NumNodes()),
		}
	}
	// Serial oracle, computed once up front.
	oracle := make([][][]path.Path, len(queries))
	for qi, q := range queries {
		oracle[qi] = make([][]path.Path, len(planners))
		for pi, pl := range planners {
			routes, err := pl.Alternatives(q.s, q.d)
			if err != nil && err != ErrNoRoute {
				t.Fatalf("oracle %d/%d: %v", qi, pi, err)
			}
			oracle[qi][pi] = routes
		}
	}

	const hammers = 16
	var wg sync.WaitGroup
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				qi := (h + round) % len(queries)
				results := e.Alternatives(planners, queries[qi].s, queries[qi].d)
				for pi, r := range results {
					if r.Err != nil && r.Err != ErrNoRoute {
						t.Errorf("hammer %d: planner %d: %v", h, pi, r.Err)
						return
					}
					want := oracle[qi][pi]
					if len(r.Routes) != len(want) {
						t.Errorf("hammer %d q%d p%d: %d routes, want %d", h, qi, pi, len(r.Routes), len(want))
						return
					}
					for ri := range want {
						if !path.Equal(want[ri], r.Routes[ri]) || want[ri].TimeS != r.Routes[ri].TimeS {
							t.Errorf("hammer %d q%d p%d: route %d differs from serial oracle", h, qi, pi, ri)
							return
						}
					}
				}
			}
		}(h)
	}
	wg.Wait()
}

// TestEngineSingletonInline checks the single-job fast path.
func TestEngineSingletonInline(t *testing.T) {
	g := testCity(t)
	pl := NewPlateaus(g, Options{})
	e := NewEngine(2)
	res := e.AlternativesBatch([]Job{{Planner: pl, S: 0, T: graph.NodeID(g.NumNodes() - 1)}})
	if len(res) != 1 || res[0].Err != nil || len(res[0].Routes) == 0 {
		t.Fatalf("singleton batch: %+v", res)
	}
	if math.IsInf(res[0].Routes[0].TimeS, 1) {
		t.Fatal("singleton batch returned infinite travel time")
	}
}

// TestEngineWorkerBound checks worker-count defaulting.
func TestEngineWorkerBound(t *testing.T) {
	if w := NewEngine(3).Workers(); w != 3 {
		t.Errorf("Workers() = %d, want 3", w)
	}
	if w := NewEngine(0).Workers(); w < 1 {
		t.Errorf("default Workers() = %d, want >= 1", w)
	}
}
