package core

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/weights"
)

// ESX implements the edge-exclusion heuristic for k-shortest paths with
// limited overlap from the Dissimilarity family (Chondrogiannis et al.,
// "Alternative routing: k-shortest paths with limited overlap" and the
// VLDB J. follow-up). Starting from the fastest path, each round searches
// for the next path whose similarity to every selected path is below θ by
// repeatedly excluding edges of the current shortest path that overlap the
// selected set — longest shared segments first — and re-running Dijkstra
// until the result is sufficiently dissimilar or the exclusion budget is
// exhausted.
//
// Compared with the study's SSVP-D+ (see Dissimilarity), ESX explores a
// different trade-off: it needs no backward tree but pays one Dijkstra per
// exclusion step. It is included as a §II-D related-work baseline and for
// the ablation benchmarks.
type ESX struct {
	g    *graph.Graph
	src  weights.Source
	opts Options
	// maxExclusionsPerRound bounds the Dijkstra re-runs per result path.
	maxExclusionsPerRound int
}

// NewESX returns an ESX planner over g planning on Options.Weights (nil
// pins the graph's base travel-time weights).
func NewESX(g *graph.Graph, opts Options) *ESX {
	o := opts.withDefaults()
	return &ESX{g: g, src: resolveSource(g, o.Weights), opts: o, maxExclusionsPerRound: 24}
}

// Name implements Planner.
func (x *ESX) Name() string { return "ESX" }

// WeightsVersion implements VersionedPlanner.
func (x *ESX) WeightsVersion() weights.Version { return x.src.Snapshot().Version() }

func (x *ESX) weightsSource() weights.Source { return x.src }

// AlternativesVersioned implements VersionedPlanner: the snapshot is
// resolved exactly once, so the reported version always matches the
// weights the routes were computed under, even when a publish races.
func (x *ESX) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	snap := x.src.Snapshot()
	routes, err := x.alternatives(snap.Weights(), s, t)
	return routes, snap.Version(), err
}

// Alternatives implements Planner.
func (x *ESX) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := x.AlternativesVersioned(s, t)
	return routes, err
}

func (x *ESX) alternatives(base []float64, s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(x.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(x.g, base, s), nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	first, d := sp.ShortestPathInto(ws, x.g, base, s, t)
	if first == nil || math.IsInf(d, 1) {
		return nil, ErrNoRoute
	}
	routes := []path.Path{path.MustNew(x.g, base, s, append([]graph.EdgeID(nil), first...))}
	fastest := routes[0].TimeS

	excluded := make(map[graph.EdgeID]bool)
	for len(routes) < x.opts.K {
		next, ok := x.nextDissimilar(ws, base, s, t, routes, fastest, excluded)
		if !ok {
			break
		}
		routes = append(routes, next)
	}
	return routes, nil
}

// nextDissimilar runs the exclusion loop for one result path. The
// exclusion set persists across rounds (as in ESX) so progress is not
// re-derived from scratch for every k.
func (x *ESX) nextDissimilar(ws *sp.Workspace, base []float64, s, t graph.NodeID, selected []path.Path, fastest float64, excluded map[graph.EdgeID]bool) (path.Path, bool) {
	work := make([]float64, len(base))
	rebuild := func() {
		copy(work, base)
		for e := range excluded {
			work[e] = math.Inf(1)
		}
	}
	rebuild()
	for iter := 0; iter < x.maxExclusionsPerRound; iter++ {
		edges, d := sp.ShortestPathInto(ws, x.g, work, s, t)
		if edges == nil || math.IsInf(d, 1) {
			return path.Path{}, false
		}
		cand := path.MustNew(x.g, base, s, edges)
		if cand.TimeS > x.opts.UpperBound*fastest+1e-9 {
			return path.Path{}, false // already beyond the bound; giving up
		}
		if path.UnionShare(x.g, cand, selected) < 1-x.opts.Theta &&
			admit(x.g, cand, selected, x.opts.SimilarityCutoff) {
			cand.Edges = append([]graph.EdgeID(nil), edges...)
			return cand, true
		}
		// Exclude the longest candidate edges that overlap the selected
		// set, pushing the next Dijkstra off the shared corridor.
		shared := x.sharedEdges(cand, selected)
		if len(shared) == 0 {
			// Overlap came entirely from previously excluded edges'
			// parallels; exclude the candidate's longest edge instead.
			shared = cand.Edges
		}
		sort.Slice(shared, func(i, j int) bool {
			return x.g.Edge(shared[i]).LengthM > x.g.Edge(shared[j]).LengthM
		})
		takes := 2
		for _, e := range shared {
			if takes == 0 {
				break
			}
			if !excluded[e] {
				excluded[e] = true
				work[e] = math.Inf(1)
				takes--
			}
		}
		if takes == 2 {
			return path.Path{}, false // nothing left to exclude
		}
	}
	return path.Path{}, false
}

// sharedEdges returns the candidate's edges that run on road segments used
// by any selected path.
func (x *ESX) sharedEdges(cand path.Path, selected []path.Path) []graph.EdgeID {
	used := make(map[[2]graph.NodeID]bool)
	for i := range selected {
		for _, e := range selected[i].Edges {
			ed := x.g.Edge(e)
			a, b := ed.From, ed.To
			if a > b {
				a, b = b, a
			}
			used[[2]graph.NodeID{a, b}] = true
		}
	}
	var out []graph.EdgeID
	for _, e := range cand.Edges {
		ed := x.g.Edge(e)
		a, b := ed.From, ed.To
		if a > b {
			a, b = b, a
		}
		if used[[2]graph.NodeID{a, b}] {
			out = append(out, e)
		}
	}
	return out
}
