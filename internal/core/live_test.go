package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/traffic"
	"repro/internal/weights"
)

// --- Refactor equivalence ---------------------------------------------------

// TestStoreBackedPlannersMatchPinned is the refactor's acceptance gate:
// for a fixed snapshot, a planner resolving weights from a live store
// must return byte-identical route sets to one pinned at construction
// (the pre-refactor behaviour), on both tree backends.
func TestStoreBackedPlannersMatchPinned(t *testing.T) {
	g := randomRoadNetwork(42, 150)
	store := weights.NewStore(g.BaseWeights())
	private := traffic.Apply(g, traffic.DefaultModel(9))
	privStore := weights.NewStore(private)

	for _, backend := range []TreeBackend{TreeDijkstra, TreeCH} {
		pinnedOpts := Options{TreeBackend: backend}
		storeOpts := Options{TreeBackend: backend, Weights: store}
		cases := []struct {
			name           string
			pinned, stored Planner
		}{
			{"Plateaus", NewPlateaus(g, pinnedOpts), NewPlateaus(g, storeOpts)},
			{"PrunedPlateaus", NewPrunedPlateaus(g, pinnedOpts), NewPrunedPlateaus(g, storeOpts)},
			{"Dissimilarity", NewDissimilarity(g, pinnedOpts), NewDissimilarity(g, storeOpts)},
			{"Penalty", NewPenalty(g, pinnedOpts), NewPenalty(g, storeOpts)},
			{"Commercial", NewCommercial(g, private, pinnedOpts),
				NewCommercial(g, nil, Options{TreeBackend: backend, Weights: privStore})},
		}
		for _, tc := range cases {
			comparePlannersExact(t, tc.pinned, tc.stored, g, 8, 77)
		}
	}
}

// --- Ban semantics across version swaps -------------------------------------

// banFastestRoute finds a query with a route and returns it along with
// the edges of the planner's first route (the ones we will close).
func banFastestRoute(t *testing.T, g *graph.Graph, pl Planner, seed int64) (s, dst graph.NodeID, edges []graph.EdgeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < 200; q++ {
		s = graph.NodeID(rng.Intn(g.NumNodes()))
		dst = graph.NodeID(rng.Intn(g.NumNodes()))
		if s == dst {
			continue
		}
		routes, err := pl.Alternatives(s, dst)
		if err != nil || len(routes) == 0 || len(routes[0].Edges) < 3 {
			continue
		}
		return s, dst, append([]graph.EdgeID(nil), routes[0].Edges...)
	}
	t.Fatal("no suitable query found")
	return
}

// TestBanSurvivesSnapshotSwap closes the fastest route's edges in
// snapshot N, then publishes a fresh traffic vector as snapshot N+1: the
// bans must still be impassable for every planner on both tree backends
// (the +Inf mask is re-applied by the store on every publish, and the CH
// backend must re-customize it into its hierarchy).
func TestBanSurvivesSnapshotSwap(t *testing.T) {
	g := randomRoadNetwork(5, 150)
	for _, backend := range []TreeBackend{TreeDijkstra, TreeCH} {
		store := weights.NewStore(g.BaseWeights())
		opts := Options{TreeBackend: backend, Weights: store}
		planners := []Planner{
			NewPlateaus(g, opts),
			NewPrunedPlateaus(g, opts),
			NewDissimilarity(g, opts),
			NewPenalty(g, opts),
			NewCommercial(g, nil, opts), // plans on the same store as its private metric
		}
		router := NewRouter(NewEngine(2), planners, store)

		s, dst, banned := banFastestRoute(t, g, planners[0], int64(backend)+11)
		store.Ban(banned...) // snapshot N: closures take effect

		// Snapshot N+1: a whole new (perturbed) weight vector, no mention
		// of the bans — the store must carry them forward.
		next := make([]float64, len(g.BaseWeights()))
		rng := rand.New(rand.NewSource(99))
		for i, w := range g.BaseWeights() {
			next[i] = w * (1 + 0.3*rng.Float64())
		}
		store.Publish(next)
		router.Sync() // wait out the background re-customization

		isBanned := make(map[graph.EdgeID]bool, len(banned))
		for _, e := range banned {
			isBanned[e] = true
		}
		for _, pl := range planners {
			routes, err := pl.Alternatives(s, dst)
			if err == ErrNoRoute {
				continue // acceptable: the closure disconnected the pair for this planner
			}
			if err != nil {
				t.Fatalf("backend %v %s: %v", backend, pl.Name(), err)
			}
			for ri, r := range routes {
				if math.IsInf(r.TimeS, 1) {
					t.Errorf("backend %v %s route %d has infinite travel time", backend, pl.Name(), ri)
				}
				for _, e := range r.Edges {
					if isBanned[e] {
						t.Errorf("backend %v %s route %d uses banned edge %d after snapshot swap",
							backend, pl.Name(), ri, e)
					}
				}
			}
		}
	}
}

// --- Versioned result cache -------------------------------------------------

func TestEngineCacheVersionedHitsAndInvalidation(t *testing.T) {
	g := randomRoadNetwork(8, 150)
	store := weights.NewStore(g.BaseWeights())
	pl := NewPlateaus(g, Options{Weights: store})
	engine := NewEngine(2)
	router := NewRouter(engine, []Planner{pl}, store)

	s, dst, _ := banFastestRoute(t, g, pl, 3)
	first := router.Alternatives(s, dst)[0]
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Version != 1 {
		t.Fatalf("first answer at version %d, want 1", first.Version)
	}
	again := router.Alternatives(s, dst)[0]
	hits, _ := engine.CacheStats()
	if hits == 0 {
		t.Fatal("repeat query did not hit the cache")
	}
	if len(again.Routes) != len(first.Routes) {
		t.Fatal("cached answer differs from computed answer")
	}
	for i := range first.Routes {
		if !path.Equal(first.Routes[i], again.Routes[i]) {
			t.Fatalf("cached route %d differs", i)
		}
	}

	// A publish invalidates: the same query recomputes under version 2.
	store.Publish(g.BaseWeights())
	router.Sync()
	after := router.Alternatives(s, dst)[0]
	if after.Err != nil {
		t.Fatal(after.Err)
	}
	if after.Version != 2 {
		t.Fatalf("post-publish answer at version %d, want 2", after.Version)
	}
	// Identical weights were republished, so the routes themselves match.
	for i := range first.Routes {
		if !path.Equal(first.Routes[i], after.Routes[i]) {
			t.Fatalf("route %d changed across an identical-weights republish", i)
		}
	}
}

func TestUnversionedPlannersBypassCache(t *testing.T) {
	g := testCity(t)
	engine := NewEngine(1)
	engine.SetCache(16)
	// A planner that does not implement VersionedPlanner must run every
	// time and report version 0.
	pl := plainPlanner{inner: NewPlateaus(g, Options{})}
	r1 := engine.Alternatives([]Planner{pl}, 0, graph.NodeID(g.NumNodes()-1))[0]
	r2 := engine.Alternatives([]Planner{pl}, 0, graph.NodeID(g.NumNodes()-1))[0]
	if r1.Version != 0 || r2.Version != 0 {
		t.Fatalf("unversioned planner reported versions %d/%d", r1.Version, r2.Version)
	}
	if hits, _ := engine.CacheStats(); hits != 0 {
		t.Fatal("unversioned planner was served from the cache")
	}
}

// TestRouterHonoursExplicitCacheDisable: SetCache(0) is a deliberate
// choice; the Router's default cache must only land on engines whose
// owner never called SetCache.
func TestRouterHonoursExplicitCacheDisable(t *testing.T) {
	g := testCity(t)
	store := weights.NewStore(g.BaseWeights())
	pl := NewPlateaus(g, Options{Weights: store})

	disabled := NewEngine(1)
	disabled.SetCache(0)
	router := NewRouter(disabled, []Planner{pl}, store)
	router.Alternatives(0, graph.NodeID(g.NumNodes()-1))
	router.Alternatives(0, graph.NodeID(g.NumNodes()-1))
	if hits, misses := disabled.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("explicitly disabled cache served traffic: %d hits / %d misses", hits, misses)
	}

	fresh := NewEngine(1)
	router.SetEngine(fresh) // never configured: gets the default cache
	router.Alternatives(0, graph.NodeID(g.NumNodes()-1))
	if _, misses := fresh.CacheStats(); misses == 0 {
		t.Fatal("unconfigured engine did not get the router's default cache")
	}
}

// plainPlanner strips the VersionedPlanner interface off a planner.
type plainPlanner struct{ inner *Plateaus }

func (p plainPlanner) Name() string { return "plain" }
func (p plainPlanner) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	return p.inner.Alternatives(s, t)
}

// --- Double-buffered CH swap ------------------------------------------------

// TestCHSwapServesOldThenNew publishes a uniformly scaled snapshot (which
// re-customization handles exactly) and verifies that (a) queries before
// Sync never fail or block on the rebuild, and (b) after Sync the planner
// serves the new version with route sets identical to a from-scratch
// planner pinned at the new snapshot.
func TestCHSwapServesOldThenNew(t *testing.T) {
	g := randomRoadNetwork(21, 150)
	store := weights.NewStore(g.BaseWeights())
	pl := NewPlateaus(g, Options{TreeBackend: TreeCH, Weights: store})
	router := NewRouter(NewEngine(2), []Planner{pl}, store)

	s, dst, _ := banFastestRoute(t, g, pl, 13)

	scaled := make([]float64, len(g.BaseWeights()))
	for i, w := range g.BaseWeights() {
		scaled[i] = 1.5 * w
	}
	store.Publish(scaled)
	// Mid-swap: the query must answer immediately under *some* version.
	routes, ver, err := pl.AlternativesVersioned(s, dst)
	if err != nil || len(routes) == 0 {
		t.Fatalf("mid-swap query failed: %v", err)
	}
	if ver != 1 && ver != 2 {
		t.Fatalf("mid-swap version = %d, want 1 or 2", ver)
	}

	router.Sync()
	if v := pl.WeightsVersion(); v != 2 {
		t.Fatalf("post-sync version = %d, want 2", v)
	}
	fresh := NewPlateaus(g, Options{TreeBackend: TreeCH, Weights: weights.Pin(scaled)})
	comparePlannersExact(t, fresh, pl, g, 8, 29)
}

// --- Race smoke: publishes racing batch queries -----------------------------

// TestConcurrentPublishWithBatchQueries is the live-serving smoke test CI
// runs under -race: a rush-hour producer publishes snapshots while the
// engine answers batches across all planners and both backends. Every
// answer must be a coherent single-version result (no torn reads, no
// panics); correctness of the final state is pinned by a post-Sync
// equality check against a planner built fresh at the final snapshot.
func TestConcurrentPublishWithBatchQueries(t *testing.T) {
	g := randomRoadNetwork(31, 120)
	pubStore := weights.NewStore(g.BaseWeights())
	seq := traffic.NewSequence(g, traffic.DefaultModel(4), 8)
	privStore := weights.NewStore(seq.WeightsAt(0))

	opts := Options{Weights: pubStore}
	chOpts := Options{Weights: pubStore, TreeBackend: TreeCH}
	planners := []Planner{
		NewPlateaus(g, opts),
		NewPlateaus(g, chOpts),
		NewPrunedPlateaus(g, chOpts),
		NewDissimilarity(g, opts),
		NewPenalty(g, opts),
		NewCommercial(g, nil, Options{Weights: privStore, TreeBackend: TreeCH}),
	}
	engine := NewEngine(4)
	router := NewRouter(engine, planners, pubStore, privStore)

	const publishes = 6
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := make([]float64, len(g.BaseWeights()))
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < publishes; i++ {
			seq.Advance(privStore)
			for j, w := range g.BaseWeights() {
				next[j] = w * (1 + 0.2*rng.Float64())
			}
			pubStore.Publish(next)
		}
	}()

	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 10; round++ {
		jobs := make([]Job, 0, 3*len(planners))
		for q := 0; q < 3; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			for _, pl := range planners {
				jobs = append(jobs, Job{Planner: pl, S: s, T: dst})
			}
		}
		for _, r := range router.AlternativesBatch(jobs) {
			if r.Err != nil && r.Err != ErrNoRoute {
				t.Fatalf("batch under publish churn: %v", r.Err)
			}
		}
	}
	wg.Wait()
	router.Sync()

	// Steady state: the Dijkstra-backed store planner must now agree
	// exactly with a fresh planner pinned at the final snapshot.
	fresh := NewPlateaus(g, Options{Weights: pubStore.Latest()})
	comparePlannersExact(t, fresh, planners[0].(*Plateaus), g, 6, 3)
	if v := planners[0].(*Plateaus).WeightsVersion(); v != pubStore.Version() {
		t.Fatalf("post-sync version %d != store version %d", v, pubStore.Version())
	}
}

// --- Cross-store swap atomicity ----------------------------------------------

// stubVersioned is a minimal versioned planner for provoking the
// mixed-version interleaving deterministically: a "live" stub swings to
// the store's latest snapshot on every call, a "laggy" stub keeps serving
// its installed version until a Sync barrier (refreshSync) lands —
// exactly the double-buffered CH planner's window, but with a swap that
// never completes on its own.
type stubVersioned struct {
	name    string
	src     *weights.Store
	lag     bool
	serving atomic.Uint64
	calls   atomic.Int64
}

func (p *stubVersioned) Name() string { return p.name }

func (p *stubVersioned) version() weights.Version {
	if !p.lag {
		return p.src.Version()
	}
	return weights.Version(p.serving.Load())
}

func (p *stubVersioned) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := p.AlternativesVersioned(s, t)
	return routes, err
}

func (p *stubVersioned) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	p.calls.Add(1)
	return []path.Path{{}}, p.version(), nil
}

func (p *stubVersioned) WeightsVersion() weights.Version { return p.version() }
func (p *stubVersioned) servingVersion() weights.Version { return p.version() }
func (p *stubVersioned) weightsSource() weights.Source   { return p.src }
func (p *stubVersioned) refreshAsync()                   {} // the lag: background refresh never lands by itself
func (p *stubVersioned) refreshSync() {
	p.serving.Store(uint64(p.src.Version()))
}

// TestRouterResponseVersionConsistency is the regression test for the
// cross-store swap atomicity fix: a publish between two planners' swap
// points used to let one response carry adjacent versions for approaches
// on the same store. The router must detect the mix and re-run the batch
// behind a Sync barrier.
func TestRouterResponseVersionConsistency(t *testing.T) {
	store := weights.NewStore([]float64{1, 2, 3, 4})
	live := &stubVersioned{name: "live", src: store}
	laggy := &stubVersioned{name: "laggy", src: store, lag: true}
	laggy.refreshSync() // serving v1
	router := NewRouter(NewEngine(2), []Planner{live, laggy}, store)

	store.Publish([]float64{2, 3, 4, 5}) // v2; laggy keeps serving v1

	// Provoke the old interleaving at the engine layer (no consistency
	// pass there): the response mixes v2 and v1.
	mixed := router.Engine().Alternatives([]Planner{live, laggy}, 0, 1)
	if mixed[0].Version == mixed[1].Version {
		t.Fatalf("expected the provoked engine response to mix versions, got %d/%d",
			mixed[0].Version, mixed[1].Version)
	}

	// The router repairs it: one Sync + retry, and the response is
	// whole-set consistent at the latest version.
	res := router.Alternatives(0, 1)
	if res[0].Version != res[1].Version {
		t.Fatalf("router response mixes versions %d vs %d after the fix", res[0].Version, res[1].Version)
	}
	if res[0].Version != weights.Version(store.Version()) {
		t.Fatalf("consistent response at version %d, want store latest %d", res[0].Version, store.Version())
	}

	// Planners on *different* stores may legitimately differ: no retry
	// storm, the response returns at first attempt.
	other := weights.NewStore([]float64{9, 9, 9, 9})
	foreign := &stubVersioned{name: "foreign", src: other}
	router2 := NewRouter(NewEngine(2), []Planner{live, foreign}, store, other)
	store.Publish([]float64{3, 4, 5, 6})
	before := live.calls.Load()
	res2 := router2.Alternatives(0, 1)
	if res2[0].Version == res2[1].Version {
		t.Fatalf("distinct stores coincidentally at the same version breaks the test setup")
	}
	if live.calls.Load() != before+1 {
		t.Fatalf("cross-store version difference triggered retries: %d calls", live.calls.Load()-before)
	}
}

// --- Restricted-sweep selection invalidation ---------------------------------

// TestRestrictedSelectionInvalidatedOnPublish guards the RPHAST
// selection-reuse bug class: the per-(s,t) cached target-subgraph
// selection must not survive a weight publish. A stale selection would
// either index the superseded tree builder's arcs (loud: the ch guard
// panics) or silently restrict the sweep to the old metric's ellipse; in
// both cases the post-swap routes would diverge from a planner built
// fresh at the new snapshot.
func TestRestrictedSelectionInvalidatedOnPublish(t *testing.T) {
	g := randomRoadNetwork(17, 150)
	cases := []struct {
		name  string
		hkind HierarchyKind
		next  func(rng *rand.Rand, banned []graph.EdgeID) []float64
		ban   bool
	}{
		// Uniform scaling: witness re-customization is exact for it, and a
		// stale selection object would hit the builder-mismatch panic.
		{"witness-uniform", HierarchyWitness, func(_ *rand.Rand, _ []graph.EdgeID) []float64 {
			next := make([]float64, len(g.BaseWeights()))
			for i, w := range g.BaseWeights() {
				next[i] = 1.7 * w
			}
			return next
		}, false},
		// Arbitrary perturbation + closures: CCH customization stays
		// exact, and the ellipse genuinely moves, so reusing the old
		// membership would change route sets.
		{"cch-perturbed-banned", HierarchyCCH, func(rng *rand.Rand, _ []graph.EdgeID) []float64 {
			next := make([]float64, len(g.BaseWeights()))
			for i, w := range g.BaseWeights() {
				next[i] = w * (0.5 + rng.Float64())
			}
			return next
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := weights.NewStore(g.BaseWeights())
			pl := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted, Hierarchy: tc.hkind, Weights: store})
			router := NewRouter(NewEngine(1), []Planner{pl}, store)

			s, dst, firstRoute := banFastestRoute(t, g, pl, 23)
			// Prime the (s,t) selection cache under version 1.
			if _, _, err := pl.AlternativesVersioned(s, dst); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(55))
			if tc.ban {
				store.Ban(firstRoute[0])
			}
			store.Publish(tc.next(rng, firstRoute))
			router.Sync()

			fresh := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted, Hierarchy: tc.hkind, Weights: store.Latest()})
			truth := NewPlateaus(g, Options{Weights: store.Latest()})
			got, err1 := pl.Alternatives(s, dst)
			want, err2 := fresh.Alternatives(s, dst)
			base, err3 := truth.Alternatives(s, dst)
			if (err1 == nil) != (err2 == nil) || (err1 == nil) != (err3 == nil) {
				t.Fatalf("error mismatch after publish: %v / %v / %v", err1, err2, err3)
			}
			if err1 != nil {
				return
			}
			if len(got) != len(want) || len(got) != len(base) {
				t.Fatalf("route count %d after publish, fresh %d, dijkstra %d", len(got), len(want), len(base))
			}
			for i := range got {
				if !path.Equal(got[i], want[i]) || !path.Equal(got[i], base[i]) {
					t.Fatalf("route %d served off a stale selection after the publish", i)
				}
			}
		})
	}
}

// --- Live-traffic soak: restricted sweeps under publish churn ----------------

// TestLiveTrafficSoakRestrictedSweeps is the permanent safety net for
// restricted sweeps (and every future backend) under live traffic: a
// deterministic rush-hour publish loop races engine batches with RPHAST
// backends on, and every answer must (a) carry a version the store
// actually published, (b) never walk an edge banned in an earlier
// version — the store re-applies the closure mask on every publish, and
// the hierarchies must carry it through each customization — and (c)
// never regress to an older version within one caller's sequence, which
// is exactly what a result cache serving a stale generation would look
// like. CI runs it under -race.
func TestLiveTrafficSoakRestrictedSweeps(t *testing.T) {
	g := randomRoadNetwork(61, 140)
	pubStore := weights.NewStore(g.BaseWeights())
	seq := traffic.NewSequence(g, traffic.DefaultModel(7), 8)
	privStore := weights.NewStore(seq.WeightsAt(0))

	planners := []Planner{
		NewPlateaus(g, Options{Weights: pubStore, TreeBackend: TreeCHRestricted, Hierarchy: HierarchyCCH}),
		NewPrunedPlateaus(g, Options{Weights: pubStore, TreeBackend: TreeCHAuto, Hierarchy: HierarchyCCH}),
		NewDissimilarity(g, Options{Weights: pubStore}),
		NewCommercial(g, nil, Options{Weights: privStore, TreeBackend: TreeCHRestricted, Hierarchy: HierarchyCCH}),
	}
	storeOf := map[Planner]*weights.Store{
		planners[0]: pubStore, planners[1]: pubStore, planners[2]: pubStore, planners[3]: privStore,
	}
	engine := NewEngine(4)
	router := NewRouter(engine, planners, pubStore, privStore)

	// Close the fastest route's edges on both metrics before the churn
	// starts: every raced answer is computed at a post-ban version and
	// must treat them as walls throughout the publish sequence.
	s0, t0, banned := banFastestRoute(t, g, planners[0], 3)
	_ = s0
	_ = t0
	pubStore.Ban(banned...)
	privStore.Ban(banned...)
	router.Sync()
	isBanned := make(map[graph.EdgeID]bool, len(banned))
	for _, e := range banned {
		isBanned[e] = true
	}

	const publishes = 6
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := make([]float64, len(g.BaseWeights()))
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < publishes; i++ {
			seq.Advance(privStore)
			for j, w := range g.BaseWeights() {
				next[j] = w * (1 + 0.3*rng.Float64())
			}
			pubStore.Publish(next)
		}
	}()

	var qwg sync.WaitGroup
	for worker := 0; worker < 3; worker++ {
		qwg.Add(1)
		go func(seed int64) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(seed))
			lastSeen := make(map[Planner]weights.Version, len(planners))
			for round := 0; round < 8; round++ {
				s := graph.NodeID(rng.Intn(g.NumNodes()))
				dst := graph.NodeID(rng.Intn(g.NumNodes()))
				jobs := make([]Job, 0, len(planners))
				for _, pl := range planners {
					jobs = append(jobs, Job{Planner: pl, S: s, T: dst})
				}
				for i, r := range router.AlternativesBatch(jobs) {
					pl := planners[i]
					if r.Err != nil {
						if r.Err != ErrNoRoute {
							t.Errorf("%s under churn: %v", pl.Name(), r.Err)
						}
						continue
					}
					// (a) the version was actually published by this
					// planner's store (versions are dense 1..latest).
					if r.Version < 2 || r.Version > storeOf[pl].Version() {
						t.Errorf("%s answered at unpublished version %d (store at %d)",
							pl.Name(), r.Version, storeOf[pl].Version())
					}
					// (c) no caller ever observes a planner going back in
					// time — the stale-cache-generation signature.
					if r.Version < lastSeen[pl] {
						t.Errorf("%s regressed from version %d to %d (stale cache generation?)",
							pl.Name(), lastSeen[pl], r.Version)
					}
					lastSeen[pl] = r.Version
					// (b) bans from version 2 stay impassable forever.
					for ri, route := range r.Routes {
						if math.IsInf(route.TimeS, 1) {
							t.Errorf("%s route %d has infinite travel time", pl.Name(), ri)
						}
						for _, e := range route.Edges {
							if isBanned[e] {
								t.Errorf("%s route %d uses banned edge %d at version %d",
									pl.Name(), ri, e, r.Version)
							}
						}
					}
				}
			}
		}(int64(worker + 1))
	}
	qwg.Wait()
	wg.Wait()
	router.Sync()

	// Steady state: the restricted planner agrees byte-for-byte with a
	// fresh Dijkstra planner pinned at the final snapshot.
	fresh := NewPlateaus(g, Options{Weights: pubStore.Latest()})
	comparePlannersExact(t, fresh, planners[0].(*Plateaus), g, 6, 13)
	if v := planners[0].(*Plateaus).WeightsVersion(); v != pubStore.Version() {
		t.Fatalf("post-sync version %d != store version %d", v, pubStore.Version())
	}
}
