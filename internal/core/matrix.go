package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ch"
	"repro/internal/graph"
	"repro/internal/sp"
	"repro/internal/weights"
)

// Table is a |Sources| × |Targets| travel-time matrix computed under one
// weight snapshot. Seconds is row-major (Seconds[i*len(Targets)+j] is
// sources[i] → targets[j]); unreachable pairs carry +Inf. Every cell of
// one Table is computed under the single Version reported — the matrix
// engine resolves exactly one weight view per call, so publishes racing
// the computation can never mix metrics inside a response.
type Table struct {
	Sources []graph.NodeID
	Targets []graph.NodeID
	Seconds []float64
	Version weights.Version
	// SelectionTargets is the size of the shared target selection the
	// sweeps ran on (0 on non-hierarchy backends); SelectionHit reports
	// whether it came out of the selection cache; Restricted reports
	// whether the sweeps actually ran restricted (false: full sweeps, via
	// the auto cutover or a non-restricted backend).
	SelectionTargets int
	SelectionHit     bool
	Restricted       bool
}

// At returns the travel time from Sources[i] to Targets[j] in seconds.
func (t *Table) At(i, j int) float64 { return t.Seconds[i*len(t.Targets)+j] }

// MatrixEngine computes many-to-many travel-time tables. On a restricted
// hierarchy backend it is the RPHAST batch scheme the selection phase
// exists for: ONE shared selection covering the target set (cached by
// cell signature, like point-to-point selections), then one restricted
// forward sweep per source fanned over the serving Engine's worker pool —
// k sweeps and at most one Select instead of the k×k tree pairs of
// independent point-to-point queries. Distances are exact (byte-identical
// to per-pair Dijkstra); on non-hierarchy backends the engine falls back
// to one full Dijkstra tree per source.
//
// A MatrixEngine is safe for concurrent use; per-call state lives in
// pooled scratch, so a warm engine computes tables with zero steady-state
// allocations through MatrixInto on a single-worker Engine.
type MatrixEngine struct {
	g    *graph.Graph
	eng  *Engine
	prov *provider
	// metrics is the optional instrument bundle (nil: record nothing).
	metrics atomic.Pointer[Metrics]
}

// NewMatrixEngine builds a standalone matrix engine over g. Options are
// interpreted as for NewPlateaus (weights source, tree backend, hierarchy
// flavor, selection-cache budget); eng bounds the sweep fan-out and may
// be nil for unbounded inline execution.
func NewMatrixEngine(g *graph.Graph, opts Options, eng *Engine) *MatrixEngine {
	opts = opts.withDefaults()
	return &MatrixEngine{
		g:    g,
		eng:  eng,
		prov: newProvider(g, opts.Weights, true, false, nil, opts),
	}
}

// NewMatrixEngineFor builds a matrix engine sharing an existing Plateaus
// planner's weight provider: same hierarchy, same weight views, same
// selection cache — the server wiring, where point-to-point queries and
// matrix requests must serve identical versions without contracting the
// hierarchy twice.
func NewMatrixEngineFor(p *Plateaus, eng *Engine) *MatrixEngine {
	return &MatrixEngine{g: p.g, eng: eng, prov: p.prov}
}

// WeightsVersion reports the version the next table would be computed
// under (nudging a background refresh along, like the planners do).
func (m *MatrixEngine) WeightsVersion() weights.Version { return m.prov.weightsVersion() }

// HierarchyStatus reports the backing hierarchy's serving state,
// selection-cache counters included.
func (m *MatrixEngine) HierarchyStatus() HierarchyStatus { return m.prov.hierarchyStatus() }

// SetMetrics installs the instrument bundle recording per-table latency
// and size (nil uninstalls). A matrix engine sharing a Plateaus
// planner's provider (NewMatrixEngineFor) inherits that planner's
// customization/selection observers through the shared provider; this
// call only adds the matrix-side histograms.
func (m *MatrixEngine) SetMetrics(b *Metrics) { m.metrics.Store(b) }

// rowBuilder carries the immutable inputs of one matrix computation; it
// is pooled so MatrixInto's fan-out closure captures a single long-lived
// pointer instead of forcing per-call heap state.
type rowBuilder struct {
	g       *graph.Graph
	w       []float64       // Dijkstra-fallback weights (nil on hierarchy backends)
	tb      *ch.TreeBuilder // hierarchy sweeps (nil on Dijkstra fallback)
	sel     *ch.Selection   // restricted sweeps (nil: full sweeps)
	sources []graph.NodeID
	targets []graph.NodeID
	seconds []float64
}

var rowBuilderPool = sync.Pool{New: func() any { return new(rowBuilder) }}

// buildRow computes one source's row: a single forward tree (restricted,
// full PHAST, or Dijkstra) read at every target.
func (rb *rowBuilder) buildRow(ws *sp.Workspace, i int) {
	src := rb.sources[i]
	var tree *sp.Tree
	switch {
	case rb.sel != nil:
		tree = rb.tb.BuildTreeRestrictedInto(ws, src, sp.Forward, rb.sel)
	case rb.tb != nil:
		tree = rb.tb.BuildTreeInto(ws, src, sp.Forward)
	default:
		tree = sp.BuildTreeInto(ws, rb.g, rb.w, src, sp.Forward)
	}
	row := rb.seconds[i*len(rb.targets) : (i+1)*len(rb.targets)]
	for j, t := range rb.targets {
		row[j] = tree.Dist[t]
	}
}

// Matrix computes the sources × targets table into fresh storage.
func (m *MatrixEngine) Matrix(sources, targets []graph.NodeID) (*Table, error) {
	tab := &Table{}
	if err := m.MatrixInto(tab, sources, targets); err != nil {
		return nil, err
	}
	return tab, nil
}

// OneToMany computes the 1 × targets table — isochrone-style fan-out
// from a single source on one shared selection and one restricted sweep.
func (m *MatrixEngine) OneToMany(source graph.NodeID, targets []graph.NodeID) (*Table, error) {
	return m.Matrix([]graph.NodeID{source}, targets)
}

// MatrixInto computes the table into tab, reusing its backing slices. On
// a warm engine with a selection-cache hit this is the zero-allocation
// path (single-worker Engine: rows run inline, no fan-out goroutines).
func (m *MatrixEngine) MatrixInto(tab *Table, sources, targets []graph.NodeID) error {
	if b := m.metrics.Load(); b != nil {
		start := time.Now()
		defer func() { b.observeMatrix(time.Since(start), len(sources)*len(targets)) }()
	}
	v, err := m.prepare(tab, sources, targets)
	if err != nil {
		return err
	}

	rb := rowBuilderPool.Get().(*rowBuilder)
	rb.g, rb.sources, rb.targets, rb.seconds = m.g, tab.Sources, tab.Targets, tab.Seconds

	switch tr := unwrapTrees(v.trees).(type) {
	case *restrictedTrees:
		e, hit := tr.selectTargets(tab.Targets)
		rb.tb, rb.sel = tr.tb, e.sel
		if e.sel != nil && !e.sel.Covers(tab.Targets) {
			// Defensive: a selection that does not cover every target must
			// never produce a table; select the targets directly instead.
			rb.sel = tr.tb.Select(tab.Targets, nil)
		}
		tab.SelectionTargets = e.targets
		tab.SelectionHit = hit
		tab.Restricted = rb.sel != nil
	case chTrees:
		rb.tb = tr.tb
	case dijkstraTrees:
		rb.w = tr.weights
	default:
		rb.w = v.snap.Weights()
	}

	if m.eng == nil || m.eng.Workers() == 1 || len(rb.sources) == 1 {
		// Inline: one workspace serves every row, and no fan-out closure is
		// created — the zero-allocation path on a one-worker engine.
		ws := sp.GetWorkspace()
		for i := range rb.sources {
			if m.eng != nil {
				m.eng.acquire()
			}
			rb.buildRow(ws, i)
			if m.eng != nil {
				m.eng.release()
			}
		}
		ws.Release()
	} else {
		err = m.eng.Run(len(rb.sources), func(i int) {
			ws := sp.GetWorkspace()
			defer ws.Release()
			rb.buildRow(ws, i)
		})
	}

	*rb = rowBuilder{}
	rowBuilderPool.Put(rb)
	return err
}

// elimAscender is the capability a hierarchy exposes when it can batch
// point-to-point distance bounds: one backward elimination-tree ascent of
// the target shared across forward ascents of every source. The CCH
// runtimes implement it (ch.Runtime.AscentDists); it reports false when
// the elimination-tree engine is disabled, in which case callers fall
// back to per-pair Dist.
type elimAscender interface {
	AscentDists(sources []graph.NodeID, t graph.NodeID, out []float64) bool
}

// MatrixPairwise fills tab with len(sources) × len(targets) independent
// point-to-point tree-pair queries through the planner's own tree source
// — the k² baseline the matrix engine amortizes away. Exposed for the
// eval ablations and benchmarks that quantify the amortization.
//
// On a restricted CCH backend with the elimination-tree engine the k
// fastest-time bounds of each target column are batched through one
// shared backward ascent (AscentDists) instead of k independent
// bidirectional searches; the resulting cells are bit-identical either
// way, since bounds only seed the restricted selections.
func (m *MatrixEngine) MatrixPairwise(tab *Table, sources, targets []graph.NodeID) error {
	v, err := m.prepare(tab, sources, targets)
	if err != nil {
		return err
	}
	if rt, ok := unwrapTrees(v.trees).(*restrictedTrees); ok {
		if asc, ok := rt.hier.(elimAscender); ok {
			if m.pairwiseBatchedBounds(tab, rt, asc) {
				return nil
			}
		}
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	inf := math.Inf(1)
	for i, s := range tab.Sources {
		row := tab.Seconds[i*len(tab.Targets) : (i+1)*len(tab.Targets)]
		for j, t := range tab.Targets {
			if s == t {
				row[j] = 0
				continue
			}
			fwd, _, ok := v.trees.BuildTrees(ws, s, t)
			if !ok {
				row[j] = inf
				continue
			}
			row[j] = fwd.Dist[t]
		}
	}
	return nil
}

// pairwiseBatchedBounds runs the column-batched variant of MatrixPairwise:
// for each target, one multi-source elimination-tree ascent yields every
// source's fastest-time bound, and each cell is then filled by the same
// bounded tree-pair build the per-pair path would have run. Reports false
// when the ascender declines (it does so before any cell is written: the
// capability is constant per runtime), so the caller can fall back.
func (m *MatrixEngine) pairwiseBatchedBounds(tab *Table, rt *restrictedTrees, asc elimAscender) bool {
	bounds := make([]float64, len(tab.Sources))
	ws := sp.GetWorkspace()
	defer ws.Release()
	inf := math.Inf(1)
	for j, t := range tab.Targets {
		if !asc.AscentDists(tab.Sources, t, bounds) {
			return false
		}
		for i, s := range tab.Sources {
			cell := &tab.Seconds[i*len(tab.Targets)+j]
			if s == t {
				*cell = 0
				continue
			}
			fwd, _, ok := rt.buildTreesBounded(ws, s, t, bounds[i])
			if !ok {
				*cell = inf
				continue
			}
			*cell = fwd.Dist[t]
		}
	}
	return true
}

// prepare validates the endpoints, resolves the single weight view of the
// computation and sizes tab's backing storage.
func (m *MatrixEngine) prepare(tab *Table, sources, targets []graph.NodeID) (*view, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, errors.New("core: matrix needs at least one source and one target")
	}
	n := graph.NodeID(m.g.NumNodes())
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("core: matrix source %d out of range [0,%d)", s, n)
		}
	}
	for _, t := range targets {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("core: matrix target %d out of range [0,%d)", t, n)
		}
	}
	v := m.prov.view()
	tab.Sources = append(tab.Sources[:0], sources...)
	tab.Targets = append(tab.Targets[:0], targets...)
	k := len(sources) * len(targets)
	if cap(tab.Seconds) < k {
		tab.Seconds = make([]float64, k)
	} else {
		tab.Seconds = tab.Seconds[:k]
	}
	tab.Version = v.snap.Version()
	tab.SelectionTargets, tab.SelectionHit, tab.Restricted = 0, false, false
	return v, nil
}

// unwrapTrees strips the counting decoration so the matrix engine can
// reach the underlying backend-specific source.
func unwrapTrees(src TreeSource) TreeSource {
	if ct, ok := src.(*countingTrees); ok {
		return ct.src
	}
	return src
}
