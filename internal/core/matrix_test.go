package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/sp"
	"repro/internal/weights"
)

// sampleNodes draws count distinct node ids from g.
func sampleNodes(g *graph.Graph, count int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.NodeID]bool, count)
	out := make([]graph.NodeID, 0, count)
	for len(out) < count {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// dijkstraMatrix computes the reference table: one full Dijkstra tree per
// source under w, read at every target.
func dijkstraMatrix(g *graph.Graph, w []float64, sources, targets []graph.NodeID) []float64 {
	ws := sp.GetWorkspace()
	defer ws.Release()
	out := make([]float64, len(sources)*len(targets))
	for i, s := range sources {
		tree := sp.BuildTreeInto(ws, g, w, s, sp.Forward)
		for j, t := range targets {
			out[i*len(targets)+j] = tree.Dist[t]
		}
	}
	return out
}

// matrixDistTol is the relative tolerance against the flat-Dijkstra
// reference, matching the ch package's exactness standard: hierarchy
// sweeps sum pre-added shortcut weights, so the association order differs
// from edge-by-edge Dijkstra in the last ulp. Within one backend,
// distances are compared bit-identically instead (requireTableBitEqual).
const matrixDistTol = 1e-9

func matrixDistEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= matrixDistTol*scale
}

// requireTableEqual asserts cell-by-cell agreement with the Dijkstra
// reference within the ch package's exactness tolerance (+Inf must match
// exactly — no spurious reachability either way).
func requireTableEqual(t *testing.T, tab *Table, ref []float64, label string) {
	t.Helper()
	if len(tab.Seconds) != len(ref) {
		t.Fatalf("%s: table has %d cells, reference %d", label, len(tab.Seconds), len(ref))
	}
	for i, got := range tab.Seconds {
		if !matrixDistEqual(got, ref[i]) {
			t.Fatalf("%s: cell %d (source %d → target %d) = %v, reference %v",
				label, i, tab.Sources[i/len(tab.Targets)], tab.Targets[i%len(tab.Targets)], got, ref[i])
		}
	}
}

// requireTableBitEqual asserts bit-identical cells — the right comparison
// between two computations through the same backend, where the shared
// selection must lose nothing at all versus independent per-pair queries.
func requireTableBitEqual(t *testing.T, tab *Table, ref []float64, label string) {
	t.Helper()
	if len(tab.Seconds) != len(ref) {
		t.Fatalf("%s: table has %d cells, reference %d", label, len(tab.Seconds), len(ref))
	}
	for i, got := range tab.Seconds {
		if math.Float64bits(got) != math.Float64bits(ref[i]) {
			t.Fatalf("%s: cell %d (source %d → target %d) = %v, reference %v",
				label, i, tab.Sources[i/len(tab.Targets)], tab.Targets[i%len(tab.Targets)], got, ref[i])
		}
	}
}

// TestMatrixExactness is the many-to-many correctness pin: on seeded
// tie-free networks under perturbed + banned snapshots, every backend ×
// hierarchy flavor must produce tables byte-identical to k² independent
// Dijkstra trees. This is the RPHAST exactness theorem applied to matrix
// rows — a shared selection covering the target set loses no distance at
// any requested target from any root.
func TestMatrixExactness(t *testing.T) {
	type config struct {
		name    string
		backend TreeBackend
		hkind   HierarchyKind
		query   QueryEngine
	}
	// The CCH rows run under both point-to-point query engines: elimtree
	// routes MatrixPairwise through the batched multi-source ascent,
	// bidij through per-pair bidirectional searches — and the tables must
	// come out byte-identical either way (the bounds only gate selection;
	// cells come from the sweeps).
	configs := []config{
		{"dijkstra", TreeDijkstra, HierarchyWitness, QueryElimTree},
		{"ch/witness", TreeCH, HierarchyWitness, QueryElimTree},
		{"ch-restricted/witness", TreeCHRestricted, HierarchyWitness, QueryElimTree},
		{"ch-restricted/cch", TreeCHRestricted, HierarchyCCH, QueryElimTree},
		{"ch-restricted/cch/bidij", TreeCHRestricted, HierarchyCCH, QueryBidij},
		{"ch-restricted/cch-perfect", TreeCHRestricted, HierarchyCCHPerfect, QueryElimTree},
		{"ch-restricted/cch-perfect/bidij", TreeCHRestricted, HierarchyCCHPerfect, QueryBidij},
		{"ch-auto/cch", TreeCHAuto, HierarchyCCH, QueryElimTree},
	}
	for _, netSeed := range []int64{7, 19} {
		g := randomRoadNetwork(netSeed, 160)
		snap := closureSnapshot(g, netSeed+100)
		sources := sampleNodes(g, 6, netSeed+1)
		targets := sampleNodes(g, 5, netSeed+2)
		ref := dijkstraMatrix(g, snap.Weights(), sources, targets)
		tables := map[string][]float64{}
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("net%d/%s", netSeed, cfg.name), func(t *testing.T) {
				m := NewMatrixEngine(g, Options{
					Weights:     snap,
					TreeBackend: cfg.backend,
					Hierarchy:   cfg.hkind,
					Query:       cfg.query,
				}, NewEngine(2))
				// Two passes: the second runs on a warm selection cache, so
				// a hit must be just as exact as the miss that built it.
				var last *Table
				for pass := 0; pass < 2; pass++ {
					tab, err := m.Matrix(sources, targets)
					if err != nil {
						t.Fatalf("pass %d: %v", pass, err)
					}
					if cfg.backend == TreeDijkstra {
						requireTableBitEqual(t, tab, ref, fmt.Sprintf("pass %d", pass))
					} else {
						requireTableEqual(t, tab, ref, fmt.Sprintf("pass %d", pass))
					}
					if tab.Version != snap.Version() {
						t.Fatalf("pass %d: table version %d, snapshot %d", pass, tab.Version, snap.Version())
					}
					last = tab
				}
				// The k² point-to-point baseline through the same backend
				// must agree bit-for-bit: the shared selection loses nothing
				// versus independent per-pair queries.
				var pw Table
				if err := m.MatrixPairwise(&pw, sources, targets); err != nil {
					t.Fatal(err)
				}
				requireTableBitEqual(t, &pw, last.Seconds, "pairwise-vs-matrix")
				// Query engines must be invisible in the output: a bidij
				// row's table is compared bit-for-bit against its elimtree
				// sibling (which ran just before it in config order).
				tables[cfg.name] = append([]float64(nil), last.Seconds...)
				if sibling, ok := tables[strings.TrimSuffix(cfg.name, "/bidij")]; ok && cfg.query == QueryBidij {
					requireTableBitEqual(t, last, sibling, "bidij-vs-elimtree")
				}
			})
		}
	}
}

// TestOneToMany checks the single-source convenience and that its table
// is the corresponding matrix row.
func TestOneToMany(t *testing.T) {
	g := randomRoadNetwork(11, 140)
	targets := sampleNodes(g, 8, 3)
	src := sampleNodes(g, 1, 4)[0]
	m := NewMatrixEngine(g, Options{TreeBackend: TreeCHRestricted}, nil)
	tab, err := m.OneToMany(src, targets)
	if err != nil {
		t.Fatal(err)
	}
	ref := dijkstraMatrix(g, g.BaseWeights(), []graph.NodeID{src}, targets)
	requireTableEqual(t, tab, ref, "one-to-many")
	if len(tab.Sources) != 1 || tab.Sources[0] != src {
		t.Fatalf("table sources = %v, want [%d]", tab.Sources, src)
	}
	if !tab.Restricted || tab.SelectionTargets == 0 {
		t.Fatalf("restricted backend served Restricted=%v SelectionTargets=%d", tab.Restricted, tab.SelectionTargets)
	}
}

// TestMatrixSharesPlateausProvider checks NewMatrixEngineFor: the matrix
// engine serves the planner's exact weight version (shared provider, no
// second hierarchy) and its tables stay exact.
func TestMatrixSharesPlateausProvider(t *testing.T) {
	g := randomRoadNetwork(13, 140)
	store := weights.NewStore(g.BaseWeights())
	p := NewPlateaus(g, Options{Weights: store, TreeBackend: TreeCHRestricted, Hierarchy: HierarchyCCH})
	m := NewMatrixEngineFor(p, nil)
	sources := sampleNodes(g, 4, 5)
	targets := sampleNodes(g, 4, 6)

	tab, err := m.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	requireTableEqual(t, tab, dijkstraMatrix(g, store.Latest().Weights(), sources, targets), "v1")

	// Publish, refresh synchronously (as the Router does), and the matrix
	// must serve the new version exactly.
	rng := rand.New(rand.NewSource(99))
	w := make([]float64, len(g.BaseWeights()))
	for i, base := range g.BaseWeights() {
		w[i] = base * (0.5 + rng.Float64())
	}
	snap := store.Publish(w)
	p.refreshSync()
	tab2, err := m.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Version != snap.Version() {
		t.Fatalf("post-publish table version %d, want %d", tab2.Version, snap.Version())
	}
	requireTableEqual(t, tab2, dijkstraMatrix(g, w, sources, targets), "v2")
	if pv := p.WeightsVersion(); pv != m.WeightsVersion() {
		t.Fatalf("shared provider disagrees: planner %d, matrix %d", pv, m.WeightsVersion())
	}
}

// TestMatrixValidation checks the error paths: empty endpoint sets and
// out-of-range ids are rejected before any sweep runs.
func TestMatrixValidation(t *testing.T) {
	g := randomRoadNetwork(17, 60)
	m := NewMatrixEngine(g, Options{}, nil)
	n := graph.NodeID(g.NumNodes())
	cases := []struct {
		name             string
		sources, targets []graph.NodeID
	}{
		{"no-sources", nil, []graph.NodeID{0}},
		{"no-targets", []graph.NodeID{0}, nil},
		{"source-oob", []graph.NodeID{n}, []graph.NodeID{0}},
		{"target-oob", []graph.NodeID{0}, []graph.NodeID{-1}},
	}
	for _, c := range cases {
		if _, err := m.Matrix(c.sources, c.targets); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestMatrixWarmZeroAlloc pins the zero-allocation steady state: on a
// one-worker engine, a warm MatrixInto with a selection-cache hit runs
// rows inline off pooled scratch and must not allocate.
func TestMatrixWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := randomRoadNetwork(23, 160)
	m := NewMatrixEngine(g, Options{TreeBackend: TreeCHRestricted}, NewEngine(1))
	sources := sampleNodes(g, 4, 7)
	targets := sampleNodes(g, 4, 8)
	var tab Table
	if err := m.MatrixInto(&tab, sources, targets); err != nil {
		t.Fatal(err)
	}
	if !tab.Restricted {
		t.Fatalf("warm-up table not restricted; the zero-alloc claim is about restricted sweeps")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.MatrixInto(&tab, sources, targets); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm MatrixInto allocates %v times per call, want 0", allocs)
	}
	if !tab.SelectionHit {
		t.Fatalf("warm MatrixInto missed the selection cache")
	}
}

// TestMatrixPublishSoak hammers the matrix engine from several goroutines
// while a publisher races weight swaps, and checks every response is
// internally single-version: each table's cells must equal a Dijkstra
// recompute under exactly the weight vector of the version the table
// reports. A torn read (selection from one version, sweep from another,
// or rows under mixed snapshots) shows up as a cell that matches no
// single published vector.
func TestMatrixPublishSoak(t *testing.T) {
	g := randomRoadNetwork(31, 150)
	store := weights.NewStore(g.BaseWeights())

	// Record every published weight vector by version (the store only
	// exposes Latest, so the soak keeps its own history). Subscribe runs
	// under the publisher lock, before any query can observe the version.
	history := sync.Map{}
	history.Store(store.Latest().Version(), append([]float64(nil), store.Latest().Weights()...))
	store.Subscribe(func(s *weights.Snapshot) {
		history.Store(s.Version(), append([]float64(nil), s.Weights()...))
	})

	m := NewMatrixEngine(g, Options{
		Weights:     store,
		TreeBackend: TreeCHRestricted,
		Hierarchy:   HierarchyCCH, // stays exact across all published metrics
	}, NewEngine(2))
	sources := sampleNodes(g, 3, 9)
	targets := sampleNodes(g, 3, 10)

	const publishes = 8
	const queriers = 3
	const queriesEach = 12

	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < publishes; i++ {
			w := make([]float64, len(g.BaseWeights()))
			for j, base := range g.BaseWeights() {
				w[j] = base * (0.5 + rng.Float64())
			}
			store.Publish(w)
			m.prov.refreshSync()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, queriers*queriesEach)
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				tab, err := m.Matrix(sources, targets)
				if err != nil {
					errs <- err
					return
				}
				wRec, ok := history.Load(tab.Version)
				if !ok {
					errs <- fmt.Errorf("table reports unknown version %d", tab.Version)
					return
				}
				// Tolerance comparison (hierarchy sweeps vs flat Dijkstra
				// differ in the last ulp); a torn snapshot mixes ±50%
				// perturbations, orders of magnitude above it.
				ref := dijkstraMatrix(g, wRec.([]float64), tab.Sources, tab.Targets)
				for c, got := range tab.Seconds {
					if !matrixDistEqual(got, ref[c]) {
						errs <- fmt.Errorf("version %d: cell %d = %v, recompute %v (torn snapshot?)", tab.Version, c, got, ref[c])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
