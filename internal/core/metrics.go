package core

import (
	"time"

	"repro/internal/metrics"
)

// customizeBuckets spans hierarchy (re)customization latencies: sub-ms
// CCH re-customizations of town networks up to multi-second from-scratch
// contractions of country graphs.
var customizeBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Metrics is the serving-layer instrument bundle: one per city, all
// families registered on a shared metrics.Registry (re-registration is
// idempotent, so every city binds the same families under its own city
// label). Wire it in with Router.SetMetrics / MatrixEngine.SetMetrics —
// a nil *Metrics is valid everywhere and records nothing, so the serving
// path carries no instrumentation cost unless observability is switched
// on.
//
// The bundle covers the *event-driven* signals: latencies and sizes that
// must be observed at the moment they happen (histograms cannot be
// reconstructed at scrape time). Counters whose source of truth already
// lives in serving-layer atomics — versions served, publish counts,
// elimination-tree query counters, selection-cache hit rates — are
// exported by scrape-time collectors over Router/HierarchyStatus instead
// (see the server's /metrics wiring), so they are never double-counted.
type Metrics struct {
	city string

	querySeconds     *metrics.HistogramVec // city, planner
	queryErrors      *metrics.CounterVec   // city, planner
	cacheHits        *metrics.Counter      // city
	cacheMisses      *metrics.Counter      // city
	customizeSeconds *metrics.HistogramVec // city, planner
	selectionNodes   *metrics.Histogram    // city
	matrixSeconds    *metrics.Histogram    // city
	matrixCells      *metrics.Histogram    // city
}

// NewMetrics registers (or re-binds) the serving-metric families on reg
// for one city.
func NewMetrics(reg *metrics.Registry, city string) *Metrics {
	return &Metrics{
		city: city,
		querySeconds: reg.HistogramVec("routing_query_seconds",
			"Latency of one planner Alternatives call, result-cache hits included.",
			nil, "city", "planner"),
		queryErrors: reg.CounterVec("routing_query_errors_total",
			"Planner calls that returned an error (no-route answers included).",
			"city", "planner"),
		cacheHits: reg.CounterVec("routing_result_cache_hits_total",
			"Versioned result-cache hits.", "city").With(city),
		cacheMisses: reg.CounterVec("routing_result_cache_misses_total",
			"Versioned result-cache misses.", "city").With(city),
		customizeSeconds: reg.HistogramVec("routing_customize_seconds",
			"Hierarchy build or re-customization latency per publish swap.",
			customizeBuckets, "city", "planner"),
		selectionNodes: reg.HistogramVec("routing_selection_nodes",
			"Size (selected nodes) of each RPHAST selection resolved for a query or matrix batch.",
			metrics.SizeBuckets, "city").With(city),
		matrixSeconds: reg.HistogramVec("routing_matrix_seconds",
			"Latency of one many-to-many table computation.",
			nil, "city").With(city),
		matrixCells: reg.HistogramVec("routing_matrix_cells",
			"Cells (sources × targets) per many-to-many table.",
			metrics.SizeBuckets, "city").With(city),
	}
}

// observeQuery records one planner call. Nil-safe.
func (m *Metrics) observeQuery(planner string, d time.Duration, err error) {
	if m == nil {
		return
	}
	m.querySeconds.With(m.city, planner).Observe(d.Seconds())
	if err != nil {
		m.queryErrors.With(m.city, planner).Inc()
	}
}

// observeCache records one result-cache lookup. Nil-safe.
func (m *Metrics) observeCache(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
}

// observeMatrix records one table computation. Nil-safe.
func (m *Metrics) observeMatrix(d time.Duration, cells int) {
	if m == nil {
		return
	}
	m.matrixSeconds.Observe(d.Seconds())
	m.matrixCells.Observe(float64(cells))
}

// customizeObserver returns the per-planner customization histogram (nil
// receiver: nil observer).
func (m *Metrics) customizeObserver(planner string) *metrics.Histogram {
	if m == nil {
		return nil
	}
	return m.customizeSeconds.With(m.city, planner)
}

// selectionObserver returns the selection-size histogram (nil receiver:
// nil observer).
func (m *Metrics) selectionObserver() *metrics.Histogram {
	if m == nil {
		return nil
	}
	return m.selectionNodes
}

// metricsSetter is implemented by planners that can sink the bundle's
// per-planner observers (the provider-backed ones).
type metricsSetter interface {
	setMetrics(*Metrics)
}
