package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/traffic"
	"repro/internal/weights"
)

// TestRouterMetricsWiring drives a metrics-equipped router through
// queries, a publish swap and a matrix call, and checks every
// event-driven family fills in: query latency per planner, cache
// hits/misses, customization latency, selection sizes, matrix tables.
func TestRouterMetricsWiring(t *testing.T) {
	g := testCity(t)
	st := weights.NewStore(g.BaseWeights())
	opts := Options{Weights: st, TreeBackend: TreeCHRestricted, Hierarchy: HierarchyCCH, Query: QueryElimTree}
	pl := NewPlateaus(g, opts)
	r := NewRouter(nil, []Planner{pl, NewPenalty(g, Options{Weights: st})}, st)

	reg := metrics.NewRegistry()
	m := NewMetrics(reg, "grid")
	r.SetMetrics(m)
	mx := NewMatrixEngineFor(pl, r.Engine())
	mx.SetMetrics(m)

	for i := 0; i < 3; i++ { // third round hits the result cache
		r.Alternatives(0, 143)
	}
	traffic.NewSequence(g, traffic.DefaultModel(5), 0).Advance(st)
	r.Sync()
	r.Alternatives(13, 130)
	if _, err := mx.Matrix([]graph.NodeID{0, 5}, []graph.NodeID{130, 143}); err != nil {
		t.Fatalf("matrix: %v", err)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`routing_query_seconds_count{city="grid",planner="Plateaus"}`,
		`routing_query_seconds_count{city="grid",planner="Penalty"}`,
		`routing_result_cache_hits_total{city="grid"}`,
		`routing_result_cache_misses_total{city="grid"}`,
		`routing_customize_seconds_count{city="grid",planner="Plateaus"}`,
		`routing_selection_nodes_count{city="grid"}`,
		`routing_matrix_seconds_count{city="grid"}`,
		`routing_matrix_cells_sum{city="grid"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `routing_query_seconds_count{city="grid",planner="Plateaus"} 0`) {
		t.Fatalf("Plateaus query latency never observed:\n%s", text)
	}
	if hits := m.cacheHits.Value(); hits == 0 {
		t.Fatalf("repeated identical query never hit the result cache")
	}
	// The constructor's initial build predates SetMetrics, so exactly the
	// publish-swap re-customizations are observed — at least one here.
	if c := m.customizeSeconds.With("grid", "Plateaus").Count(); c < 1 {
		t.Fatalf("customize histogram count = %d, want ≥ 1 (publish swap)", c)
	}
	// A second city binds the same families on the same registry without
	// panicking, under its own label.
	m2 := NewMetrics(reg, "other")
	m2.observeQuery("Plateaus", 0, nil)
	sb.Reset()
	reg.WriteTo(&sb)
	if !strings.Contains(sb.String(), `routing_query_seconds_count{city="other",planner="Plateaus"} 1`) {
		t.Fatalf("second city's samples missing")
	}
}

// TestSharedEngineAttributesPerCity pins the multi-city wiring: one
// engine pooled across two routers (the demoserver shape) must
// attribute each query to the city owning its planner. A single
// engine-level bundle made the last SetMetrics win — every city's
// queries landed under one city label.
func TestSharedEngineAttributesPerCity(t *testing.T) {
	g := testCity(t)
	shared := NewEngine(2)
	reg := metrics.NewRegistry()
	type city struct {
		r *Router
		m *Metrics
	}
	mk := func(name string) city {
		st := weights.NewStore(g.BaseWeights())
		r := NewRouter(nil, []Planner{NewPenalty(g, Options{Weights: st})}, st)
		r.SetEngine(shared)
		m := NewMetrics(reg, name)
		r.SetMetrics(m)
		return city{r, m}
	}
	a, b := mk("alpha"), mk("beta")

	a.r.Alternatives(0, 143)
	a.r.Alternatives(13, 130)
	b.r.Alternatives(0, 143)

	var sb strings.Builder
	reg.WriteTo(&sb)
	text := sb.String()
	for _, want := range []string{
		`routing_query_seconds_count{city="alpha",planner="Penalty"} 2`,
		`routing_query_seconds_count{city="beta",planner="Penalty"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q (misattributed across the shared engine):\n%s", want, text)
		}
	}
	// Cache traffic follows the planner's city too: both routers probe
	// the shared engine's cache, so alpha has 2 misses, beta 1.
	if a.m.cacheMisses.Value() != 2 || b.m.cacheMisses.Value() != 1 {
		t.Fatalf("cache misses alpha=%v beta=%v, want 2/1",
			a.m.cacheMisses.Value(), b.m.cacheMisses.Value())
	}
}
