package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/weights"
)

// Pareto implements the skyline-paths baseline of §II-D (Barth & Funke;
// Barth, Funke & Storandt): report s-t paths that are Pareto-optimal with
// respect to two criteria — travel time and geometric distance. A path is
// dominated if another path is at least as good in both criteria and
// strictly better in one; the skyline is the set of non-dominated paths.
//
// The search is a bicriteria label-setting algorithm: each node keeps a
// Pareto frontier of (time, distance) labels with parent pointers; labels
// dominated at their node are pruned, and labels whose travel time already
// exceeds UpperBound × the fastest time are cut (alternative routes beyond
// the bound are never reported anyway, and the bound keeps the otherwise
// exponential frontier small). A per-node label cap bounds worst-case
// memory on adversarial graphs.
type Pareto struct {
	g    *graph.Graph
	src  weights.Source
	opts Options
	// maxLabelsPerNode caps each node's frontier; the skyline of real road
	// networks is narrow, so 32 is generous.
	maxLabelsPerNode int
}

// NewPareto returns a Pareto (skyline) planner over g using travel time
// and distance as the two criteria.
func NewPareto(g *graph.Graph, opts Options) *Pareto {
	o := opts.withDefaults()
	return &Pareto{g: g, src: resolveSource(g, o.Weights), opts: o, maxLabelsPerNode: 32}
}

// Name implements Planner.
func (p *Pareto) Name() string { return "Pareto" }

// WeightsVersion implements VersionedPlanner.
func (p *Pareto) WeightsVersion() weights.Version { return p.src.Snapshot().Version() }

func (p *Pareto) weightsSource() weights.Source { return p.src }

// AlternativesVersioned implements VersionedPlanner: the snapshot is
// resolved exactly once, so the reported version always matches the
// weights the routes were computed under, even when a publish races.
func (p *Pareto) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	snap := p.src.Snapshot()
	routes, err := p.alternatives(snap.Weights(), s, t)
	return routes, snap.Version(), err
}

// label is one partial path in the bicriteria search.
type label struct {
	node   graph.NodeID
	timeS  float64
	distM  float64
	parent int          // index into the label arena; -1 at the source
	via    graph.EdgeID // edge that produced this label
}

// dominates reports whether (t1, d1) weakly dominates (t2, d2) with at
// least one strict improvement.
func dominates(t1, d1, t2, d2 float64) bool {
	if t1 > t2 || d1 > d2 {
		return false
	}
	return t1 < t2 || d1 < d2
}

// labelHeap orders open labels lexicographically by time then distance.
type labelHeap struct {
	idx   []int // arena indices
	arena *[]label
}

func (h *labelHeap) less(a, b int) bool {
	la, lb := (*h.arena)[h.idx[a]], (*h.arena)[h.idx[b]]
	if la.timeS != lb.timeS {
		return la.timeS < lb.timeS
	}
	return la.distM < lb.distM
}

func (h *labelHeap) push(i int) {
	h.idx = append(h.idx, i)
	c := len(h.idx) - 1
	for c > 0 {
		parent := (c - 1) / 2
		if !h.less(c, parent) {
			break
		}
		h.idx[c], h.idx[parent] = h.idx[parent], h.idx[c]
		c = parent
	}
}

func (h *labelHeap) pop() int {
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		smallest := c
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == c {
			break
		}
		h.idx[c], h.idx[smallest] = h.idx[smallest], h.idx[c]
		c = smallest
	}
	return top
}

// Alternatives implements Planner: it returns up to K skyline paths in
// ascending travel-time order (the fastest path is always the first).
func (p *Pareto) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := p.AlternativesVersioned(s, t)
	return routes, err
}

func (p *Pareto) alternatives(base []float64, s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(p.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(p.g, base, s), nil
	}
	skyline := p.skyline(base, s, t)
	if len(skyline) == 0 {
		return nil, ErrNoRoute
	}
	if len(skyline) > p.opts.K {
		skyline = skyline[:p.opts.K]
	}
	return skyline, nil
}

// Skyline returns the full Pareto frontier of s-t paths within the travel
// time upper bound, in ascending travel-time (descending distance) order,
// under the current weight snapshot.
func (p *Pareto) Skyline(s, t graph.NodeID) []path.Path {
	return p.skyline(p.src.Snapshot().Weights(), s, t)
}

func (p *Pareto) skyline(base []float64, s, t graph.NodeID) []path.Path {
	arena := make([]label, 0, 1024)
	frontier := make(map[graph.NodeID][]int) // node -> arena indices of non-dominated labels
	h := &labelHeap{arena: &arena}

	arena = append(arena, label{node: s, parent: -1, via: -1})
	frontier[s] = []int{0}
	h.push(0)

	// First pass bound: the fastest time to t is discovered during the
	// search itself (labels pop in time order), so the UB prune activates
	// as soon as the first label reaches t.
	bestT := -1.0
	var results []int

	for len(h.idx) > 0 {
		li := h.pop()
		lab := arena[li]
		if bestT > 0 && lab.timeS > p.opts.UpperBound*bestT+1e-9 {
			break // all remaining labels are beyond the bound
		}
		if stale(frontier[lab.node], arena, li, lab) {
			continue
		}
		if lab.node == t {
			if bestT < 0 {
				bestT = lab.timeS
			}
			results = append(results, li)
			continue
		}
		for _, e := range p.g.OutEdges(lab.node) {
			ed := p.g.Edge(e)
			nt := lab.timeS + base[e]
			nd := lab.distM + ed.LengthM
			if bestT > 0 && nt > p.opts.UpperBound*bestT+1e-9 {
				continue
			}
			if !p.insert(frontier, &arena, ed.To, nt, nd, li, e) {
				continue
			}
			h.push(len(arena) - 1)
		}
	}

	// Reconstruct, dropping results that became dominated by later-found
	// target labels (cannot happen with time-ordered pops, but keep the
	// check cheap and defensive) and paths with repeated nodes.
	out := make([]path.Path, 0, len(results))
	for _, li := range results {
		edges := reconstruct(arena, li)
		cand, err := path.New(p.g, base, s, edges)
		if err != nil {
			continue
		}
		if hasRepeatedNode(cand) {
			continue
		}
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeS < out[j].TimeS })
	// Post-filter exact-tie dominance (a later equal-time label can slip
	// into results before the tie is resolved at the frontier).
	kept := out[:0]
	for _, cand := range out {
		dominated := false
		for _, k := range kept {
			if dominates(k.TimeS, k.LengthM, cand.TimeS, cand.LengthM) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, cand)
		}
	}
	return kept
}

// insert adds a candidate label to node's frontier unless dominated; it
// also evicts labels the newcomer dominates. Returns false if rejected.
func (p *Pareto) insert(frontier map[graph.NodeID][]int, arena *[]label, node graph.NodeID, nt, nd float64, parent int, via graph.EdgeID) bool {
	cur := frontier[node]
	kept := cur[:0]
	for _, i := range cur {
		l := (*arena)[i]
		if dominates(l.timeS, l.distM, nt, nd) || (l.timeS == nt && l.distM == nd) {
			return false
		}
		if !dominates(nt, nd, l.timeS, l.distM) {
			kept = append(kept, i)
		}
	}
	if len(kept) >= p.maxLabelsPerNode {
		frontier[node] = kept
		return false
	}
	*arena = append(*arena, label{node: node, timeS: nt, distM: nd, parent: parent, via: via})
	frontier[node] = append(kept, len(*arena)-1)
	return true
}

// stale reports whether the popped label has been evicted from its node's
// frontier (superseded by a dominating label pushed later).
func stale(front []int, arena []label, li int, lab label) bool {
	for _, i := range front {
		if i == li {
			return false
		}
	}
	// Not in frontier anymore: it was dominated after being pushed.
	_ = arena
	_ = lab
	return true
}

func reconstruct(arena []label, li int) []graph.EdgeID {
	var edges []graph.EdgeID
	for cur := li; arena[cur].parent >= 0; cur = arena[cur].parent {
		edges = append(edges, arena[cur].via)
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return edges
}

func hasRepeatedNode(p path.Path) bool {
	seen := make(map[graph.NodeID]bool, len(p.Nodes))
	for _, v := range p.Nodes {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	return false
}
