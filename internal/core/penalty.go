package core

import (
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/weights"
)

// Penalty implements the penalty-based alternative-route technique
// (Akgün et al. 2000; Chen et al. 2007): iteratively compute the shortest
// path, then multiply the weight of every edge on it by the penalty factor
// so the next iteration is steered onto different roads. The iteration
// stops once K distinct routes are collected or the iteration budget is
// exhausted.
//
// Following the paper's configuration, routes are reported with travel
// times under the *original* weights and no upper-bound filter is applied
// unless Options.ApplyUpperBoundToPenalty is set. Each query resolves the
// current weight snapshot from Options.Weights and penalizes a private
// working copy of it, so the planner follows live traffic without any
// per-version state of its own.
type Penalty struct {
	g    *graph.Graph
	src  weights.Source
	opts Options
	// maxIterations bounds the search when penalised reroutes keep
	// rediscovering known paths; 4·K+4 is generous for road networks.
	maxIterations int
}

// NewPenalty returns a Penalty planner over g planning on Options.Weights
// (nil pins the graph's base travel-time weights).
func NewPenalty(g *graph.Graph, opts Options) *Penalty {
	o := opts.withDefaults()
	return &Penalty{
		g:             g,
		src:           resolveSource(g, o.Weights),
		opts:          o,
		maxIterations: 4*o.K + 4,
	}
}

// Name implements Planner.
func (p *Penalty) Name() string { return "Penalty" }

// WeightsVersion implements VersionedPlanner.
func (p *Penalty) WeightsVersion() weights.Version { return p.src.Snapshot().Version() }

func (p *Penalty) weightsSource() weights.Source { return p.src }

// Alternatives implements Planner.
func (p *Penalty) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := p.AlternativesVersioned(s, t)
	return routes, err
}

// AlternativesVersioned implements VersionedPlanner.
func (p *Penalty) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	if err := validateQuery(p.g, s, t); err != nil {
		return nil, 0, err
	}
	snap := p.src.Snapshot()
	base := snap.Weights()
	ver := snap.Version()
	if s == t {
		return trivialQuery(p.g, base, s), ver, nil
	}
	work := make([]float64, len(base))
	copy(work, base)
	ws := sp.GetWorkspace()
	defer ws.Release()

	var routes []path.Path
	var fastest float64
	for iter := 0; iter < p.maxIterations && len(routes) < p.opts.K; iter++ {
		// The returned edge slice aliases the workspace and stays valid
		// until the next search; admitted routes copy it below.
		edges, _ := sp.ShortestPathInto(ws, p.g, work, s, t)
		if edges == nil {
			break
		}
		// Evaluate and report the route under the original weights.
		cand := path.MustNew(p.g, base, s, edges)
		if iter == 0 {
			fastest = cand.TimeS
		}
		ok := admit(p.g, cand, routes, p.opts.SimilarityCutoff)
		if ok && p.opts.ApplyUpperBoundToPenalty && fastest > 0 &&
			cand.TimeS > p.opts.UpperBound*fastest {
			ok = false
		}
		if ok && !admitLocalOpt(p.g, base, cand, fastest, p.opts) {
			ok = false
		}
		if ok {
			cand.Edges = append([]graph.EdgeID(nil), edges...)
			routes = append(routes, cand)
		}
		// Penalize the found path's edges (both directions of each road
		// segment) so the next iteration prefers different streets.
		p.penalize(work, edges)
	}
	if len(routes) == 0 {
		return nil, ver, ErrNoRoute
	}
	return routes, ver, nil
}

func (p *Penalty) penalize(work []float64, edges []graph.EdgeID) {
	for _, e := range edges {
		work[e] *= p.opts.PenaltyFactor
		ed := p.g.Edge(e)
		if rev := p.g.FindEdge(ed.To, ed.From); rev >= 0 {
			work[rev] *= p.opts.PenaltyFactor
		}
	}
}
