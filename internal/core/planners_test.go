package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/traffic"
)

func TestPenaltyRoutesDiverge(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewPenalty(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("want 3 penalty routes on grid city, got %d", len(routes))
	}
	// Later routes must not be copies: pairwise similarity strictly < 1.
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if sim := path.Jaccard(g, routes[i], routes[j]); sim >= 1-1e-9 {
				t.Errorf("penalty routes %d,%d are identical roads (sim=%f)", i, j, sim)
			}
		}
	}
}

func TestPenaltyRespectsOptionalUpperBound(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	opts := Options{ApplyUpperBoundToPenalty: true}
	routes, err := NewPenalty(g, opts).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	fastest := routes[0].TimeS
	for i, r := range routes {
		if r.TimeS > DefaultUpperBound*fastest+1e-6 {
			t.Errorf("route %d stretch %f exceeds bound %f", i, r.TimeS/fastest, DefaultUpperBound)
		}
	}
}

func TestPenaltyFactorGrowth(t *testing.T) {
	// A stronger penalty factor must steer away from the fastest route at
	// least as quickly: with factor 1.0 (no penalty) all iterations return
	// the same path, so only one route comes back.
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	p := NewPenalty(g, Options{})
	p.opts.PenaltyFactor = 1.0 // degenerate: no penalty applied
	routes, err := p.Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Errorf("factor 1.0 should rediscover the same path forever, got %d routes", len(routes))
	}
}

func TestPenaltySimilarityCutoff(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewPenalty(g, Options{SimilarityCutoff: 0.6}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if sim := path.Jaccard(g, routes[i], routes[j]); sim > 0.6+1e-9 {
				t.Errorf("similarity cutoff violated: routes %d,%d sim %f", i, j, sim)
			}
		}
	}
}

func TestPlateausShortestPathIsTopPlateau(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(2), graph.NodeID(11*12+9)
	pl := NewPlateaus(g, Options{})
	fwd := sp.BuildTree(g, w, s, sp.Forward)
	bwd := sp.BuildTree(g, w, dst, sp.Backward)
	plateaus := pl.FindPlateaus(fwd, bwd)
	if len(plateaus) == 0 {
		t.Fatal("no plateaus found")
	}
	best := plateaus[0]
	for _, p := range plateaus[1:] {
		if p.Score() > best.Score() {
			best = p
		}
	}
	// The fastest path is itself a plateau, and its score C−R = 0 is
	// maximal.
	if math.Abs(best.Score()) > 1e-6 {
		t.Errorf("best plateau score = %f, want 0 (the fastest path)", best.Score())
	}
	if math.Abs(best.RouteCostS-fwd.Dist[dst]) > 1e-6 {
		t.Errorf("best plateau route cost %f, want fastest %f", best.RouteCostS, fwd.Dist[dst])
	}
}

func TestPlateausAreNodeDisjoint(t *testing.T) {
	// The paper notes plateaus do not intersect each other.
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	pl := NewPlateaus(g, Options{})
	fwd := sp.BuildTree(g, w, s, sp.Forward)
	bwd := sp.BuildTree(g, w, dst, sp.Backward)
	plateaus := pl.FindPlateaus(fwd, bwd)
	seen := map[graph.NodeID]int{}
	for pi, p := range plateaus {
		nodes := []graph.NodeID{p.Start}
		for _, e := range p.Edges {
			nodes = append(nodes, g.Edge(e).To)
		}
		for _, v := range nodes {
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d appears in plateaus %d and %d", v, prev, pi)
			}
			seen[v] = pi
		}
	}
}

func TestPlateauChainsAreMaximalAndContiguous(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(14), graph.NodeID(130)
	pl := NewPlateaus(g, Options{})
	fwd := sp.BuildTree(g, w, s, sp.Forward)
	bwd := sp.BuildTree(g, w, dst, sp.Backward)
	for i, p := range pl.FindPlateaus(fwd, bwd) {
		cur := p.Start
		var cost float64
		for j, e := range p.Edges {
			ed := g.Edge(e)
			if ed.From != cur {
				t.Fatalf("plateau %d: edge %d discontinuous", i, j)
			}
			cur = ed.To
			cost += w[e]
		}
		if cur != p.End {
			t.Fatalf("plateau %d: ends at %d, recorded End %d", i, cur, p.End)
		}
		if math.Abs(cost-p.CostS) > 1e-6 {
			t.Fatalf("plateau %d: cost %f, recorded %f", i, cost, p.CostS)
		}
		if p.Score() > 1e-9 {
			t.Fatalf("plateau %d: score %f > 0 impossible (C ≤ R)", i, p.Score())
		}
	}
}

func TestPlateausRespectUpperBound(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewPlateaus(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	fastest := routes[0].TimeS
	for i, r := range routes {
		if r.TimeS > DefaultUpperBound*fastest+1e-6 {
			t.Errorf("plateau route %d stretch %f exceeds 1.4", i, r.TimeS/fastest)
		}
	}
}

func TestDissimilarityPairwiseBelowTheta(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewDissimilarity(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if sim := path.Jaccard(g, routes[i], routes[j]); sim >= DefaultTheta {
				t.Errorf("routes %d,%d similarity %f ≥ θ=%f", i, j, sim, DefaultTheta)
			}
		}
	}
}

func TestDissimilarityAscendingCostAndBound(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewDissimilarity(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	fastest := routes[0].TimeS
	for i := 1; i < len(routes); i++ {
		if routes[i].TimeS < routes[i-1].TimeS-1e-6 {
			t.Errorf("routes not in ascending cost order: %f then %f", routes[i-1].TimeS, routes[i].TimeS)
		}
	}
	for i, r := range routes {
		if r.TimeS > DefaultUpperBound*fastest+1e-6 {
			t.Errorf("dissimilarity route %d stretch %f exceeds 1.4", i, r.TimeS/fastest)
		}
	}
}

func TestDissimilarityTightThetaYieldsFewerRoutes(t *testing.T) {
	// The paper's criterion admits p only if dis(p, P) > θ, so a larger θ
	// demands more dissimilar routes and can only shrink the result set.
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	loose, err := NewDissimilarity(g, Options{Theta: 0.05}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewDissimilarity(g, Options{Theta: 0.9}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) > len(loose) {
		t.Errorf("tight θ=0.9 produced more routes (%d) than loose θ=0.05 (%d)", len(tight), len(loose))
	}
}

func TestDissimilarityRoutesAreSimple(t *testing.T) {
	g := testCity(t)
	routes, err := NewDissimilarity(g, Options{}).Alternatives(0, 11*12+11)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range routes {
		seen := map[graph.NodeID]bool{}
		for _, v := range r.Nodes {
			if seen[v] {
				t.Errorf("route %d revisits node %d", i, v)
			}
			seen[v] = true
		}
	}
}

func TestCommercialPlansOnPrivateData(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	private := traffic.Apply(g, traffic.DefaultModel(99))
	c := NewCommercial(g, private, Options{})
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := c.Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Its first route is optimal under private data...
	_, privBest := sp.ShortestPath(g, private, s, dst)
	if got := routes[0].TimeUnder(private); math.Abs(got-privBest) > 1e-6 {
		t.Errorf("first route private time %f, want private optimum %f", got, privBest)
	}
	// ...but is reported with public travel times.
	if math.Abs(routes[0].TimeS-routes[0].TimeUnder(w)) > 1e-9 {
		t.Error("commercial routes must be timed under public weights")
	}
}

func TestCommercialDiffersFromPlateausSomewhere(t *testing.T) {
	// With different underlying data, the providers must disagree on at
	// least one of a set of queries (this is the premise of Fig. 4).
	g := testCity(t)
	private := traffic.Apply(g, traffic.DefaultModel(99))
	c := NewCommercial(g, private, Options{})
	p := NewPlateaus(g, Options{})
	queries := [][2]graph.NodeID{
		{0, 143}, {5, 138}, {12, 131}, {60, 83}, {3, 140}, {24, 119},
	}
	differs := false
	for _, q := range queries {
		cr, err1 := c.Alternatives(q[0], q[1])
		pr, err2 := p.Alternatives(q[0], q[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("query %v: %v / %v", q, err1, err2)
		}
		if !path.Equal(cr[0], pr[0]) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("commercial provider agreed with Plateaus on every query — private data has no effect")
	}
}

func TestYenAscendingAndLoopless(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(60)
	routes, err := NewYen(g, Options{K: 5}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 5 {
		t.Fatalf("want 5 Yen routes, got %d", len(routes))
	}
	for i := 1; i < len(routes); i++ {
		if routes[i].TimeS < routes[i-1].TimeS-1e-9 {
			t.Errorf("Yen routes out of order: %f then %f", routes[i-1].TimeS, routes[i].TimeS)
		}
	}
	for i, r := range routes {
		seen := map[graph.NodeID]bool{}
		for _, v := range r.Nodes {
			if seen[v] {
				t.Errorf("Yen route %d contains a loop at node %d", i, v)
			}
			seen[v] = true
		}
	}
}

func TestYenOnHandcraftedGraph(t *testing.T) {
	// Classic example: three known shortest paths with known costs.
	//
	//	s --10--> a --10--> t
	//	s --15--> b --10--> t
	//	a --3---> b
	//
	// Paths: s-a-t (20), s-a-b-t (23), s-b-t (25).
	b := graph.NewBuilder(4, 5)
	o := geo.Point{Lat: 0, Lon: 0}
	s := b.AddNode(o)
	na := b.AddNode(geo.Offset(o, 1000, 1000))
	nb := b.AddNode(geo.Offset(o, -1000, 1000))
	dst := b.AddNode(geo.Offset(o, 0, 2000))
	// Use Length+Speed to produce the desired costs: residential 1.3
	// factor applies uniformly, so ratios are preserved; simpler to just
	// use proportional lengths at a fixed speed.
	add := func(u, v graph.NodeID, units float64) {
		if _, err := b.AddEdge(graph.EdgeSpec{From: u, To: v, LengthM: units * 100, SpeedKmh: 36, Class: graph.Residential}); err != nil {
			t.Fatal(err)
		}
	}
	add(s, na, 10)
	add(na, dst, 10)
	add(s, nb, 15)
	add(nb, dst, 10)
	add(na, nb, 3)
	g := b.Build()

	routes, err := NewYen(g, Options{K: 3}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("want 3 routes, got %d", len(routes))
	}
	// Cost unit: 100m at 36km/h × 1.3 = 13 s per unit.
	unit := 13.0
	wantCosts := []float64{20 * unit, 23 * unit, 25 * unit}
	for i, want := range wantCosts {
		if math.Abs(routes[i].TimeS-want) > 1e-6 {
			t.Errorf("route %d cost %f, want %f", i, routes[i].TimeS, want)
		}
	}
	wantNodes := [][]graph.NodeID{
		{s, na, dst},
		{s, na, nb, dst},
		{s, nb, dst},
	}
	for i, want := range wantNodes {
		if len(routes[i].Nodes) != len(want) {
			t.Errorf("route %d nodes %v, want %v", i, routes[i].Nodes, want)
			continue
		}
		for j := range want {
			if routes[i].Nodes[j] != want[j] {
				t.Errorf("route %d nodes %v, want %v", i, routes[i].Nodes, want)
				break
			}
		}
	}
}

func TestYenRoutesAreMoreSimilarThanAlternativeTechniques(t *testing.T) {
	// The reason the study exists: trivially applying Yen gives nearly
	// identical routes. Its Sim(T) should exceed Dissimilarity's.
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	yen, err := NewYen(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := NewDissimilarity(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(yen) < 2 || len(dis) < 2 {
		t.Skip("need ≥2 routes from both techniques")
	}
	if path.SimT(g, yen) <= path.SimT(g, dis) {
		t.Errorf("Yen Sim(T)=%f should exceed Dissimilarity Sim(T)=%f",
			path.SimT(g, yen), path.SimT(g, dis))
	}
}
