package core

import (
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

// Plateaus implements Cotares' Choice Routing technique (Jones, US patent
// 8,249,810; Abraham et al. 2013): build a forward shortest-path tree from
// the source and a backward tree from the target, join them, and extract
// "plateaus" — maximal chains of edges used by *both* trees. Every plateau
// spawns a candidate route: shortest path from s to the plateau's start,
// the plateau itself, then the shortest path from its end to t. Plateaus
// are ranked by the Cotares goodness score C − R (plateau cost minus
// generated route cost; 0 is best and is achieved exactly by the fastest
// path, which is itself a plateau).
//
// How the two trees are built is pluggable (TreeSource): full Dijkstra
// searches by default, or PHAST sweeps over a contraction hierarchy with
// Options.TreeBackend == TreeCH — the §II-B optimisation that makes tree
// construction near-linear after a one-off preprocessing.
type Plateaus struct {
	g     *graph.Graph
	base  []float64
	opts  Options
	trees TreeSource
}

// NewPlateaus returns a Plateaus planner over g using the graph's base
// travel-time weights. With Options.TreeBackend == TreeCH the constructor
// contracts the graph into a hierarchy (a few ms per city network) so
// every query can build its trees with downward sweeps.
func NewPlateaus(g *graph.Graph, opts Options) *Plateaus {
	opts = opts.withDefaults()
	base := g.CopyWeights()
	return &Plateaus{g: g, base: base, opts: opts, trees: newTreeSource(g, base, opts.TreeBackend)}
}

// Name implements Planner.
func (p *Plateaus) Name() string { return "Plateaus" }

// Plateau is a maximal chain of edges that appears in both the forward and
// the backward shortest-path tree. Exposed for visualization (Fig. 1 of
// the paper) and tests.
type Plateau struct {
	Edges []graph.EdgeID
	Start graph.NodeID // end closer to the source
	End   graph.NodeID // end closer to the target
	CostS float64      // summed weight of the chain ("length" in the paper)
	// RouteCostS is the travel time of the route this plateau generates:
	// distF(Start) + CostS + distB(End).
	RouteCostS float64
}

// Score is the Cotares ranking quantity C − R: plateau cost minus route
// cost. It is ≤ 0; closer to 0 is better.
func (pl Plateau) Score() float64 { return pl.CostS - pl.RouteCostS }

// sortPlateaus ranks by score descending (closest to zero first); ties by
// route cost.
func sortPlateaus(plateaus []Plateau) {
	slices.SortFunc(plateaus, func(a, b Plateau) int {
		sa, sb := a.Score(), b.Score()
		switch {
		case sa > sb:
			return -1
		case sa < sb:
			return 1
		case a.RouteCostS < b.RouteCostS:
			return -1
		case a.RouteCostS > b.RouteCostS:
			return 1
		}
		return 0
	})
}

// Alternatives implements Planner.
func (p *Plateaus) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(p.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(p.g, p.base, s), nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	fwd, bwd, ok := p.trees.BuildTrees(ws, s, t)
	if !ok {
		return nil, ErrNoRoute
	}
	fastest := fwd.Dist[t]

	plateaus := p.FindPlateaus(fwd, bwd)
	sortPlateaus(plateaus)

	var routes []path.Path
	buf := ws.PathBuf()
	for _, pl := range plateaus {
		if len(routes) >= p.opts.K {
			break
		}
		if pl.RouteCostS > p.opts.UpperBound*fastest+1e-9 {
			continue
		}
		var cand path.Path
		buf, cand, ok = p.assembleInto(buf, fwd, bwd, pl)
		if !ok {
			continue
		}
		if admit(p.g, cand, routes, p.opts.SimilarityCutoff) {
			cand.Edges = append([]graph.EdgeID(nil), cand.Edges...)
			routes = append(routes, cand)
		}
	}
	ws.KeepPathBuf(buf)
	if len(routes) == 0 {
		return nil, ErrNoRoute
	}
	return routes, nil
}

// FindPlateaus joins a forward and a backward shortest-path tree and
// returns all maximal plateau chains, unranked. Exposed for the Fig. 1
// walkthrough example and for tests of the plateau invariants.
func (p *Plateaus) FindPlateaus(fwd, bwd *sp.Tree) []Plateau {
	g := p.g
	// An edge e = (u,v) is a plateau edge iff it is the forward-tree edge
	// into v and the backward-tree edge out of u. Each node therefore has
	// at most one incoming plateau edge (its fwd parent) and one outgoing
	// plateau edge (its bwd parent), so chains are simple paths walkable
	// along bwd.Parent pointers — no scratch maps needed.
	isPlateau := func(e graph.EdgeID) bool {
		if e < 0 {
			return false
		}
		ed := g.Edge(e)
		return fwd.Parent[ed.To] == e && bwd.Parent[ed.From] == e
	}
	isHead := func(v graph.NodeID) bool {
		return isPlateau(bwd.Parent[v]) && !isPlateau(fwd.Parent[v])
	}
	// Pass 1: count chains and their total edges, so the result needs
	// exactly two allocations (the chains, one shared edge backing) rather
	// than one growing slice per plateau.
	nChains, nEdges := 0, 0
	for start := graph.NodeID(0); int(start) < g.NumNodes(); start++ {
		if !isHead(start) {
			continue // no chain leaving here, or interior/tail of one
		}
		nChains++
		cur := start
		for e := bwd.Parent[cur]; isPlateau(e); e = bwd.Parent[cur] {
			nEdges++
			cur = g.Edge(e).To
		}
	}
	if nChains == 0 {
		return nil
	}
	out := make([]Plateau, 0, nChains)
	backing := make([]graph.EdgeID, 0, nEdges)
	// Pass 2: walk the same chains again, filling in place.
	for start := graph.NodeID(0); int(start) < g.NumNodes(); start++ {
		if !isHead(start) {
			continue
		}
		pl := Plateau{Start: start}
		mark := len(backing)
		cur := start
		for e := bwd.Parent[cur]; isPlateau(e); e = bwd.Parent[cur] {
			backing = append(backing, e)
			pl.CostS += p.base[e]
			cur = g.Edge(e).To
		}
		pl.Edges = backing[mark:len(backing):len(backing)]
		pl.End = cur
		if math.IsInf(fwd.Dist[pl.Start], 1) || math.IsInf(bwd.Dist[pl.End], 1) {
			continue // defensive; tree edges imply reachability
		}
		pl.RouteCostS = fwd.Dist[pl.Start] + pl.CostS + bwd.Dist[pl.End]
		out = append(out, pl)
	}
	return out
}

// assembleInto builds the full route for a plateau on buf: s →(fwd tree)
// Start, plateau chain, End →(bwd tree) t. The returned Path's Edges
// alias buf — callers keeping the route beyond the next call must copy
// them — so rejected candidates cost no edge-slice allocations.
func (p *Plateaus) assembleInto(buf []graph.EdgeID, fwd, bwd *sp.Tree, pl Plateau) ([]graph.EdgeID, path.Path, bool) {
	buf = buf[:0]
	var ok bool
	if buf, ok = fwd.PathInto(buf, p.g, pl.Start); !ok {
		return buf, path.Path{}, false
	}
	buf = append(buf, pl.Edges...)
	if buf, ok = bwd.PathInto(buf, p.g, pl.End); !ok {
		return buf, path.Path{}, false
	}
	cand, err := path.New(p.g, p.base, fwd.Root, buf)
	if err != nil {
		return buf, path.Path{}, false
	}
	return buf, cand, true
}
