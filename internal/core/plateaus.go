package core

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

// Plateaus implements Cotares' Choice Routing technique (Jones, US patent
// 8,249,810; Abraham et al. 2013): build a forward shortest-path tree from
// the source and a backward tree from the target, join them, and extract
// "plateaus" — maximal chains of edges used by *both* trees. Every plateau
// spawns a candidate route: shortest path from s to the plateau's start,
// the plateau itself, then the shortest path from its end to t. Plateaus
// are ranked by the Cotares goodness score C − R (plateau cost minus
// generated route cost; 0 is best and is achieved exactly by the fastest
// path, which is itself a plateau).
type Plateaus struct {
	g    *graph.Graph
	base []float64
	opts Options
}

// NewPlateaus returns a Plateaus planner over g using the graph's base
// travel-time weights.
func NewPlateaus(g *graph.Graph, opts Options) *Plateaus {
	return &Plateaus{g: g, base: g.CopyWeights(), opts: opts.withDefaults()}
}

// Name implements Planner.
func (p *Plateaus) Name() string { return "Plateaus" }

// Plateau is a maximal chain of edges that appears in both the forward and
// the backward shortest-path tree. Exposed for visualization (Fig. 1 of
// the paper) and tests.
type Plateau struct {
	Edges []graph.EdgeID
	Start graph.NodeID // end closer to the source
	End   graph.NodeID // end closer to the target
	CostS float64      // summed weight of the chain ("length" in the paper)
	// RouteCostS is the travel time of the route this plateau generates:
	// distF(Start) + CostS + distB(End).
	RouteCostS float64
}

// Score is the Cotares ranking quantity C − R: plateau cost minus route
// cost. It is ≤ 0; closer to 0 is better.
func (pl Plateau) Score() float64 { return pl.CostS - pl.RouteCostS }

// Alternatives implements Planner.
func (p *Plateaus) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(p.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(p.g, p.base, s), nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	fwd := sp.BuildTreeInto(ws, p.g, p.base, s, sp.Forward)
	if !fwd.Reached(t) {
		return nil, ErrNoRoute
	}
	bwd := sp.BuildTreeInto(ws, p.g, p.base, t, sp.Backward)
	fastest := fwd.Dist[t]

	plateaus := p.FindPlateaus(fwd, bwd)
	// Rank by score descending (closest to zero first); ties by route cost.
	sort.Slice(plateaus, func(i, j int) bool {
		si, sj := plateaus[i].Score(), plateaus[j].Score()
		if si != sj {
			return si > sj
		}
		return plateaus[i].RouteCostS < plateaus[j].RouteCostS
	})

	var routes []path.Path
	for _, pl := range plateaus {
		if len(routes) >= p.opts.K {
			break
		}
		if pl.RouteCostS > p.opts.UpperBound*fastest+1e-9 {
			continue
		}
		cand, ok := p.assemble(fwd, bwd, pl, s)
		if !ok {
			continue
		}
		if admit(p.g, cand, routes, p.opts.SimilarityCutoff) {
			routes = append(routes, cand)
		}
	}
	if len(routes) == 0 {
		return nil, ErrNoRoute
	}
	return routes, nil
}

// FindPlateaus joins a forward and a backward shortest-path tree and
// returns all maximal plateau chains, unranked. Exposed for the Fig. 1
// walkthrough example and for tests of the plateau invariants.
func (p *Plateaus) FindPlateaus(fwd, bwd *sp.Tree) []Plateau {
	g := p.g
	// An edge e = (u,v) is a plateau edge iff it is the forward-tree edge
	// into v and the backward-tree edge out of u.
	isPlateau := func(e graph.EdgeID) bool {
		ed := g.Edge(e)
		return fwd.Parent[ed.To] == e && bwd.Parent[ed.From] == e
	}
	// next[u] = the plateau edge leaving u, if any. Because plateau edges
	// come from trees, each node has at most one incoming and one outgoing
	// plateau edge, so chains are simple paths.
	next := make(map[graph.NodeID]graph.EdgeID)
	hasIncoming := make(map[graph.NodeID]bool)
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if isPlateau(id) {
			ed := g.Edge(id)
			next[ed.From] = id
			hasIncoming[ed.To] = true
		}
	}
	var out []Plateau
	for start, first := range next {
		if hasIncoming[start] {
			continue // interior of a chain; walk starts only at heads
		}
		pl := Plateau{Start: start}
		cur := start
		e, ok := first, true
		for ok {
			pl.Edges = append(pl.Edges, e)
			pl.CostS += p.base[e]
			cur = g.Edge(e).To
			e, ok = next[cur]
		}
		pl.End = cur
		if math.IsInf(fwd.Dist[pl.Start], 1) || math.IsInf(bwd.Dist[pl.End], 1) {
			continue // defensive; tree edges imply reachability
		}
		pl.RouteCostS = fwd.Dist[pl.Start] + pl.CostS + bwd.Dist[pl.End]
		out = append(out, pl)
	}
	return out
}

// assemble builds the full route for a plateau: s →(fwd tree) Start,
// plateau chain, End →(bwd tree) t.
func (p *Plateaus) assemble(fwd, bwd *sp.Tree, pl Plateau, s graph.NodeID) (path.Path, bool) {
	head := fwd.PathTo(p.g, pl.Start)
	if head == nil {
		return path.Path{}, false
	}
	tail := bwd.PathTo(p.g, pl.End)
	if tail == nil {
		return path.Path{}, false
	}
	edges := make([]graph.EdgeID, 0, len(head)+len(pl.Edges)+len(tail))
	edges = append(edges, head...)
	edges = append(edges, pl.Edges...)
	edges = append(edges, tail...)
	cand, err := path.New(p.g, p.base, s, edges)
	if err != nil {
		return path.Path{}, false
	}
	return cand, true
}
