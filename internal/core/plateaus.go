package core

import (
	"math"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/weights"
)

// Plateaus implements Cotares' Choice Routing technique (Jones, US patent
// 8,249,810; Abraham et al. 2013): build a forward shortest-path tree from
// the source and a backward tree from the target, join them, and extract
// "plateaus" — maximal chains of edges used by *both* trees. Every plateau
// spawns a candidate route: shortest path from s to the plateau's start,
// the plateau itself, then the shortest path from its end to t. Plateaus
// are ranked by the Cotares goodness score C − R (plateau cost minus
// generated route cost; 0 is best and is achieved exactly by the fastest
// path, which is itself a plateau).
//
// The planner resolves its weights per query from Options.Weights (a
// live-traffic store or a pinned snapshot; nil pins the graph's base
// weights), and how the two trees are built is pluggable (TreeSource):
// full Dijkstra searches by default, or PHAST sweeps over a contraction
// hierarchy with Options.TreeBackend == TreeCH — the §II-B optimisation
// that makes tree construction near-linear after a one-off preprocessing.
// Under TreeCH a new weight version re-customizes the hierarchy in the
// background while the old one keeps serving (see provider).
type Plateaus struct {
	g    *graph.Graph
	opts Options
	prov *provider
}

// NewPlateaus returns a Plateaus planner over g. With Options.TreeBackend
// == TreeCH the constructor contracts the current snapshot's hierarchy (a
// few ms per city network) so every query can build its trees with
// downward sweeps.
func NewPlateaus(g *graph.Graph, opts Options) *Plateaus {
	return newPlateaus(g, opts, false, nil)
}

// newPlateaus is the shared constructor: pruned selects elliptic tree
// pruning (ignored under TreeCH), wrap decorates each version's tree
// source (PrunedPlateaus' counting instrumentation).
func newPlateaus(g *graph.Graph, opts Options, pruned bool, wrap func(TreeSource) TreeSource) *Plateaus {
	opts = opts.withDefaults()
	return &Plateaus{
		g:    g,
		opts: opts,
		prov: newProvider(g, opts.Weights, true, pruned, wrap, opts),
	}
}

// Name implements Planner.
func (p *Plateaus) Name() string { return "Plateaus" }

// WeightsVersion implements VersionedPlanner.
func (p *Plateaus) WeightsVersion() weights.Version { return p.prov.weightsVersion() }

func (p *Plateaus) refreshAsync() { p.prov.refreshAsync() }
func (p *Plateaus) refreshSync()  { p.prov.refreshSync() }

func (p *Plateaus) servingVersion() weights.Version { return p.prov.servingVersion() }

func (p *Plateaus) weightsSource() weights.Source { return p.prov.src }

// HierarchyStatus reports the hierarchy flavor serving this planner and
// its last customization latency (zero off the TreeCH backend).
func (p *Plateaus) HierarchyStatus() HierarchyStatus { return p.prov.hierarchyStatus() }

// setMetrics sinks the bundle's customization and selection observers
// into the planner's weight provider (Router.SetMetrics fan-out).
func (p *Plateaus) setMetrics(m *Metrics) {
	p.prov.setMetrics(m.customizeObserver(p.Name()), m.selectionObserver())
}

// Plateau is a maximal chain of edges that appears in both the forward and
// the backward shortest-path tree. Exposed for visualization (Fig. 1 of
// the paper) and tests.
type Plateau struct {
	Edges []graph.EdgeID
	Start graph.NodeID // end closer to the source
	End   graph.NodeID // end closer to the target
	CostS float64      // summed weight of the chain ("length" in the paper)
	// RouteCostS is the travel time of the route this plateau generates:
	// distF(Start) + CostS + distB(End).
	RouteCostS float64
}

// Score is the Cotares ranking quantity C − R: plateau cost minus route
// cost. It is ≤ 0; closer to 0 is better.
func (pl Plateau) Score() float64 { return pl.CostS - pl.RouteCostS }

// sortPlateaus ranks by score descending (closest to zero first); ties by
// route cost.
func sortPlateaus(plateaus []Plateau) {
	slices.SortFunc(plateaus, func(a, b Plateau) int {
		sa, sb := a.Score(), b.Score()
		switch {
		case sa > sb:
			return -1
		case sa < sb:
			return 1
		case a.RouteCostS < b.RouteCostS:
			return -1
		case a.RouteCostS > b.RouteCostS:
			return 1
		}
		return 0
	})
}

// Alternatives implements Planner.
func (p *Plateaus) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := p.AlternativesVersioned(s, t)
	return routes, err
}

// AlternativesVersioned implements VersionedPlanner. The whole query —
// trees, plateau costs, bounds, reported times — runs under the single
// snapshot its view resolved, so answers stay internally consistent while
// publishes race.
func (p *Plateaus) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	if err := validateQuery(p.g, s, t); err != nil {
		return nil, 0, err
	}
	v := p.prov.view()
	base := v.snap.Weights()
	ver := v.snap.Version()
	if s == t {
		return trivialQuery(p.g, base, s), ver, nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	fwd, bwd, ok := v.trees.BuildTrees(ws, s, t)
	if !ok {
		return nil, ver, ErrNoRoute
	}
	fastest := fwd.Dist[t]

	sc := getPlateauScratch()
	defer putPlateauScratch(sc)
	plateaus := findPlateausInto(sc, p.g, base, fwd, bwd)
	sortPlateaus(plateaus)

	var routes []path.Path
	buf := ws.PathBuf()
	for _, pl := range plateaus {
		if len(routes) >= p.opts.K {
			break
		}
		if pl.RouteCostS > p.opts.UpperBound*fastest+1e-9 {
			continue
		}
		var cand path.Path
		buf, cand, ok = assemblePlateauRoute(buf, p.g, base, fwd, bwd, pl)
		if !ok {
			continue
		}
		if admit(p.g, cand, routes, p.opts.SimilarityCutoff) {
			cand.Edges = append([]graph.EdgeID(nil), cand.Edges...)
			routes = append(routes, cand)
		}
	}
	ws.KeepPathBuf(buf)
	if len(routes) == 0 {
		return nil, ver, ErrNoRoute
	}
	return routes, ver, nil
}

// FindPlateaus joins a forward and a backward shortest-path tree and
// returns all maximal plateau chains, unranked, with chain costs taken
// from the planner's current weight snapshot — callers on a live store
// should pin a snapshot (Options.Weights = weights.Pin(...)) and build
// their trees under it, or a publish between the tree builds and this
// call can mix metrics in the reported costs. Exposed for the Fig. 1
// walkthrough example and for tests of the plateau invariants; the
// returned plateaus own their storage. (The query path uses the pooled
// scratch variant findPlateausInto instead, under a single resolved
// view.)
func (p *Plateaus) FindPlateaus(fwd, bwd *sp.Tree) []Plateau {
	sc := getPlateauScratch()
	defer putPlateauScratch(sc)
	pls := findPlateausInto(sc, p.g, p.prov.view().snap.Weights(), fwd, bwd)
	if len(pls) == 0 {
		return nil
	}
	out := make([]Plateau, len(pls))
	copy(out, pls)
	backing := make([]graph.EdgeID, 0, len(sc.edges))
	for i := range out {
		mark := len(backing)
		backing = append(backing, out[i].Edges...)
		out[i].Edges = backing[mark:len(backing):len(backing)]
	}
	return out
}

// plateauScratch is the reusable storage of one plateau join: the chains,
// one shared edge backing, and the per-chain edge counts the single-pass
// walk records before the backing stops growing. Pooled so a warmed-up
// serving process joins trees with zero allocations.
type plateauScratch struct {
	plateaus []Plateau
	edges    []graph.EdgeID
	counts   []int32
}

var plateauPool = sync.Pool{New: func() any { return new(plateauScratch) }}

func getPlateauScratch() *plateauScratch { return plateauPool.Get().(*plateauScratch) }
func putPlateauScratch(sc *plateauScratch) {
	sc.plateaus = sc.plateaus[:0]
	sc.edges = sc.edges[:0]
	sc.counts = sc.counts[:0]
	plateauPool.Put(sc)
}

// findPlateausInto joins the trees in a single pass over the node set,
// writing into sc and returning its plateau slice (valid until the
// scratch is released). An edge e = (u,v) is a plateau edge iff it is the
// forward-tree edge into v and the backward-tree edge out of u. Each node
// therefore has at most one incoming plateau edge (its fwd parent) and
// one outgoing plateau edge (its bwd parent), so chains are simple paths
// walkable along bwd.Parent pointers — no maps, and each chain is walked
// exactly once: edges append to the shared scratch backing and the Edges
// views are fixed up after the walk, when the backing is final.
func findPlateausInto(sc *plateauScratch, g *graph.Graph, base []float64, fwd, bwd *sp.Tree) []Plateau {
	sc.plateaus = sc.plateaus[:0]
	sc.edges = sc.edges[:0]
	sc.counts = sc.counts[:0]
	isPlateau := func(e graph.EdgeID) bool {
		if e < 0 {
			return false
		}
		ed := g.Edge(e)
		return fwd.Parent[ed.To] == e && bwd.Parent[ed.From] == e
	}
	isHead := func(v graph.NodeID) bool {
		return isPlateau(bwd.Parent[v]) && !isPlateau(fwd.Parent[v])
	}
	for start := graph.NodeID(0); int(start) < g.NumNodes(); start++ {
		if !isHead(start) {
			continue // no chain leaving here, or interior/tail of one
		}
		pl := Plateau{Start: start}
		mark := len(sc.edges)
		cur := start
		for e := bwd.Parent[cur]; isPlateau(e); e = bwd.Parent[cur] {
			sc.edges = append(sc.edges, e)
			pl.CostS += base[e]
			cur = g.Edge(e).To
		}
		pl.End = cur
		if math.IsInf(fwd.Dist[pl.Start], 1) || math.IsInf(bwd.Dist[pl.End], 1) {
			sc.edges = sc.edges[:mark] // defensive; tree edges imply reachability
			continue
		}
		pl.RouteCostS = fwd.Dist[pl.Start] + pl.CostS + bwd.Dist[pl.End]
		sc.plateaus = append(sc.plateaus, pl)
		sc.counts = append(sc.counts, int32(len(sc.edges)-mark))
	}
	// Chains landed in the backing in discovery order, so the spans are
	// contiguous; materialize the Edges views now that appends are done.
	off := 0
	for i := range sc.plateaus {
		n := int(sc.counts[i])
		sc.plateaus[i].Edges = sc.edges[off : off+n : off+n]
		off += n
	}
	return sc.plateaus
}

// assemblePlateauRoute builds the full route for a plateau on buf: s
// →(fwd tree) Start, plateau chain, End →(bwd tree) t, evaluated under
// base. The returned Path's Edges alias buf — callers keeping the route
// beyond the next call must copy them — so rejected candidates cost no
// edge-slice allocations.
func assemblePlateauRoute(buf []graph.EdgeID, g *graph.Graph, base []float64, fwd, bwd *sp.Tree, pl Plateau) ([]graph.EdgeID, path.Path, bool) {
	buf = buf[:0]
	var ok bool
	if buf, ok = fwd.PathInto(buf, g, pl.Start); !ok {
		return buf, path.Path{}, false
	}
	buf = append(buf, pl.Edges...)
	if buf, ok = bwd.PathInto(buf, g, pl.End); !ok {
		return buf, path.Path{}, false
	}
	cand, err := path.New(g, base, fwd.Root, buf)
	if err != nil {
		return buf, path.Path{}, false
	}
	return buf, cand, true
}
