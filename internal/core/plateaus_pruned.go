package core

import (
	"repro/internal/graph"
	"repro/internal/path"
)

// PrunedPlateaus is the §II-B "compatibility with routing optimisations"
// variant of the Plateaus planner: instead of two full Dijkstra trees it
// builds elliptically pruned trees that only explore nodes able to lie on
// a route within UpperBound × the fastest travel time. As the paper
// argues, such trees "must still cover all feasible routes... and so when
// they are combined, they still yield the same choice routes" — which the
// test suite verifies against the full-tree planner.
//
// With Options.TreeBackend == TreeCH the planner instead builds full
// PHAST trees from a contraction hierarchy (pruning is moot there: the
// downward sweep is already near-linear), keeping the same instrumented
// interface. The exploration counters are atomics, so the planner is safe
// under core.Engine workers.
type PrunedPlateaus struct {
	inner *Plateaus
	src   *countingTrees
}

// NewPrunedPlateaus returns the pruned-tree plateau planner.
func NewPrunedPlateaus(g *graph.Graph, opts Options) *PrunedPlateaus {
	opts = opts.withDefaults()
	base := g.CopyWeights()
	var src TreeSource
	if opts.TreeBackend == TreeCH {
		src = newTreeSource(g, base, TreeCH)
	} else {
		src = newPrunedTrees(g, base, opts.UpperBound)
	}
	counting := &countingTrees{src: src}
	return &PrunedPlateaus{
		inner: &Plateaus{g: g, base: base, opts: opts, trees: counting},
		src:   counting,
	}
}

// Name implements Planner.
func (p *PrunedPlateaus) Name() string { return "Plateaus(pruned)" }

// Alternatives implements Planner.
func (p *PrunedPlateaus) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	return p.inner.Alternatives(s, t)
}

// LastReached reports how many nodes the most recent query's forward and
// backward trees explored — instrumentation for tests and the chspeedup
// example. Under concurrent use the values reflect some recent query
// (each query's counts are stored atomically; the last writer wins).
func (p *PrunedPlateaus) LastReached() (fwd, bwd int) {
	return int(p.src.lastFwd.Load()), int(p.src.lastBwd.Load())
}
