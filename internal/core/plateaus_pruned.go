package core

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/weights"
)

// PrunedPlateaus is the §II-B "compatibility with routing optimisations"
// variant of the Plateaus planner: instead of two full Dijkstra trees it
// builds elliptically pruned trees that only explore nodes able to lie on
// a route within UpperBound × the fastest travel time. As the paper
// argues, such trees "must still cover all feasible routes... and so when
// they are combined, they still yield the same choice routes" — which the
// test suite verifies against the full-tree planner.
//
// With Options.TreeBackend == TreeCH the planner instead builds full
// PHAST trees from a contraction hierarchy (pruning is moot there: the
// downward sweep is already near-linear), keeping the same instrumented
// interface. The exploration counters are atomics shared by every weight
// version's tree source, so the planner is safe under core.Engine workers
// and across live snapshot swaps.
type PrunedPlateaus struct {
	inner  *Plateaus
	counts *treeCounts
}

// NewPrunedPlateaus returns the pruned-tree plateau planner.
func NewPrunedPlateaus(g *graph.Graph, opts Options) *PrunedPlateaus {
	counts := &treeCounts{}
	wrap := func(src TreeSource) TreeSource { return &countingTrees{src: src, counts: counts} }
	pruned := !opts.withDefaults().TreeBackend.usesHierarchy()
	return &PrunedPlateaus{
		inner:  newPlateaus(g, opts, pruned, wrap),
		counts: counts,
	}
}

// Name implements Planner.
func (p *PrunedPlateaus) Name() string { return "Plateaus(pruned)" }

// WeightsVersion implements VersionedPlanner.
func (p *PrunedPlateaus) WeightsVersion() weights.Version { return p.inner.WeightsVersion() }

func (p *PrunedPlateaus) refreshAsync() { p.inner.refreshAsync() }
func (p *PrunedPlateaus) refreshSync()  { p.inner.refreshSync() }

func (p *PrunedPlateaus) servingVersion() weights.Version { return p.inner.servingVersion() }

func (p *PrunedPlateaus) weightsSource() weights.Source { return p.inner.weightsSource() }

// HierarchyStatus reports the hierarchy flavor serving this planner and
// its last customization latency (zero off the TreeCH backend).
func (p *PrunedPlateaus) HierarchyStatus() HierarchyStatus { return p.inner.HierarchyStatus() }

// setMetrics sinks the observers under this planner's own name (not the
// inner Plateaus', which may also be serving separately).
func (p *PrunedPlateaus) setMetrics(m *Metrics) {
	p.inner.prov.setMetrics(m.customizeObserver(p.Name()), m.selectionObserver())
}

// Alternatives implements Planner.
func (p *PrunedPlateaus) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	return p.inner.Alternatives(s, t)
}

// AlternativesVersioned implements VersionedPlanner.
func (p *PrunedPlateaus) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	return p.inner.AlternativesVersioned(s, t)
}

// treeCounts is the concurrency-safe exploration instrumentation shared
// by all of a planner's per-version tree sources.
type treeCounts struct {
	lastFwd, lastBwd atomic.Int64
}

// LastReached reports how many nodes the most recent query's forward and
// backward trees explored — instrumentation for tests and the chspeedup
// example. Under concurrent use the values reflect some recent query
// (each query's counts are stored atomically; the last writer wins).
func (p *PrunedPlateaus) LastReached() (fwd, bwd int) {
	return int(p.counts.lastFwd.Load()), int(p.counts.lastBwd.Load())
}
