package core

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

// PrunedPlateaus is the §II-B "compatibility with routing optimisations"
// variant of the Plateaus planner: instead of two full Dijkstra trees it
// builds elliptically pruned trees that only explore nodes able to lie on
// a route within UpperBound × the fastest travel time. As the paper
// argues, such trees "must still cover all feasible routes... and so when
// they are combined, they still yield the same choice routes" — which the
// test suite verifies against the full-tree planner.
type PrunedPlateaus struct {
	g     *graph.Graph
	base  []float64
	opts  Options
	scale float64 // admissible seconds-per-meter lower bound
	// LastReachedFwd/Bwd record how many nodes the last query's trees
	// explored, for instrumentation and tests.
	LastReachedFwd int
	LastReachedBwd int
}

// NewPrunedPlateaus returns the pruned-tree plateau planner.
func NewPrunedPlateaus(g *graph.Graph, opts Options) *PrunedPlateaus {
	base := g.CopyWeights()
	return &PrunedPlateaus{
		g:     g,
		base:  base,
		opts:  opts.withDefaults(),
		scale: sp.MinSecondsPerMeter(g, base),
	}
}

// Name implements Planner.
func (p *PrunedPlateaus) Name() string { return "Plateaus(pruned)" }

// Alternatives implements Planner.
func (p *PrunedPlateaus) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(p.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(p.g, p.base, s), nil
	}
	// The ellipse needs the fastest time first; a bidirectional search is
	// cheap relative to tree building.
	ws := sp.GetWorkspace()
	defer ws.Release()
	_, fastest := sp.BidirectionalShortestPathInto(ws, p.g, p.base, s, t)
	if math.IsInf(fastest, 1) {
		return nil, ErrNoRoute
	}
	maxCost := p.opts.UpperBound * fastest
	fwd := sp.BuildPrunedTreeInto(ws, p.g, p.base, s, sp.Forward, t, maxCost, p.scale)
	bwd := sp.BuildPrunedTreeInto(ws, p.g, p.base, t, sp.Backward, s, maxCost, p.scale)
	p.LastReachedFwd = sp.CountReached(fwd)
	p.LastReachedBwd = sp.CountReached(bwd)
	if !fwd.Reached(t) {
		return nil, ErrNoRoute
	}

	inner := &Plateaus{g: p.g, base: p.base, opts: p.opts}
	plateaus := inner.FindPlateaus(fwd, bwd)
	sort.Slice(plateaus, func(i, j int) bool {
		si, sj := plateaus[i].Score(), plateaus[j].Score()
		if si != sj {
			return si > sj
		}
		return plateaus[i].RouteCostS < plateaus[j].RouteCostS
	})
	var routes []path.Path
	for _, pl := range plateaus {
		if len(routes) >= p.opts.K {
			break
		}
		if pl.RouteCostS > maxCost+1e-9 {
			continue
		}
		cand, ok := inner.assemble(fwd, bwd, pl, s)
		if !ok {
			continue
		}
		if admit(p.g, cand, routes, p.opts.SimilarityCutoff) {
			routes = append(routes, cand)
		}
	}
	if len(routes) == 0 {
		return nil, ErrNoRoute
	}
	return routes, nil
}
