package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/path"
)

// The §II-B claim under test: pruned elliptical trees "still yield the
// same choice routes" as full trees, because every route within the upper
// bound lies inside the ellipse.

func TestPrunedPlateausMatchesFullTreePlanner(t *testing.T) {
	g := testCity(t)
	full := NewPlateaus(g, Options{})
	pruned := NewPrunedPlateaus(g, Options{})
	rng := rand.New(rand.NewSource(21))
	for q := 0; q < 20; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == dst {
			continue
		}
		a, err1 := full.Alternatives(s, dst)
		b, err2 := pruned.Alternatives(s, dst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d (%d->%d): error mismatch %v vs %v", q, s, dst, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(a) != len(b) {
			t.Fatalf("query %d (%d->%d): %d vs %d routes", q, s, dst, len(a), len(b))
		}
		for i := range a {
			if !path.Equal(a[i], b[i]) {
				t.Fatalf("query %d route %d differs between full and pruned trees", q, i)
			}
		}
	}
}

func TestPrunedPlateausExploresFewerNodes(t *testing.T) {
	g := testCity(t)
	pruned := NewPrunedPlateaus(g, Options{})
	// A short corner-to-adjacent query: the ellipse is small.
	if _, err := pruned.Alternatives(0, 2); err != nil {
		t.Fatal(err)
	}
	fwd, bwd := pruned.LastReached()
	if fwd >= g.NumNodes() {
		t.Errorf("forward pruned tree reached all %d nodes; pruning ineffective", g.NumNodes())
	}
	if bwd >= g.NumNodes() {
		t.Errorf("backward pruned tree reached all nodes; pruning ineffective")
	}
}

func TestPrunedPlateausContract(t *testing.T) {
	g := testCity(t)
	p := NewPrunedPlateaus(g, Options{})
	if _, err := p.Alternatives(-1, 4); err == nil {
		t.Error("invalid source should error")
	}
	routes, err := p.Alternatives(6, 6)
	if err != nil || len(routes) != 1 || !routes[0].Empty() {
		t.Error("s==t should yield one empty route")
	}
	gd, a, c := disconnectedPair(t)
	if _, err := NewPrunedPlateaus(gd, Options{}).Alternatives(a, c); err != ErrNoRoute {
		t.Errorf("unreachable: want ErrNoRoute, got %v", err)
	}
}
