package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/traffic"
)

// Property tests: every planner must uphold the Planner contract on
// arbitrary (possibly disconnected, one-way-heavy) random road networks,
// not just the curated grid city.

func randomRoadNetwork(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	o := geo.Point{Lat: 23.8, Lon: 90.4}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, rng.Float64()*6000, rng.Float64()*6000))
	}
	m := n * 5 / 2
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(graph.EdgeSpec{
			From:     u,
			To:       v,
			Class:    graph.RoadClass(rng.Intn(int(graph.Service) + 1)),
			SpeedKmh: 15 + rng.Float64()*85,
			Lanes:    1 + rng.Intn(3),
			TwoWay:   rng.Intn(4) > 0, // 25% one-way
		})
	}
	return b.Build()
}

func TestPlannerContractOnRandomNetworks(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomRoadNetwork(seed, 120)
		w := g.CopyWeights()
		private := traffic.Apply(g, traffic.DefaultModel(uint64(seed)+5))
		planners := []Planner{
			NewPenalty(g, Options{}),
			NewPlateaus(g, Options{}),
			NewPrunedPlateaus(g, Options{}),
			NewDissimilarity(g, Options{}),
			NewCommercial(g, private, Options{}),
			NewESX(g, Options{}),
			NewPareto(g, Options{}),
			NewYen(g, Options{}),
		}
		rng := rand.New(rand.NewSource(seed * 31))
		for q := 0; q < 12; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			if s == dst {
				continue
			}
			_, fastest := sp.ShortestPath(g, w, s, dst)
			reachable := !math.IsInf(fastest, 1)
			for _, pl := range planners {
				routes, err := pl.Alternatives(s, dst)
				if !reachable {
					if err != ErrNoRoute {
						t.Fatalf("seed %d %s: unreachable pair gave %v", seed, pl.Name(), err)
					}
					continue
				}
				// Commercial plans on private data: reachability can
				// differ only if traffic weights disconnect pairs, which
				// multiplicative weights cannot do.
				if err != nil {
					t.Fatalf("seed %d %s (%d->%d): %v", seed, pl.Name(), s, dst, err)
				}
				if len(routes) == 0 || len(routes) > DefaultK+2 {
					t.Fatalf("seed %d %s: %d routes", seed, pl.Name(), len(routes))
				}
				for i, r := range routes {
					// Contiguity and endpoints.
					cur := s
					for _, e := range r.Edges {
						ed := g.Edge(e)
						if ed.From != cur {
							t.Fatalf("seed %d %s route %d: discontinuous", seed, pl.Name(), i)
						}
						cur = ed.To
					}
					if cur != dst {
						t.Fatalf("seed %d %s route %d: ends at %d", seed, pl.Name(), i, cur)
					}
					// No route may beat the true fastest time.
					if r.TimeS < fastest-1e-6 {
						t.Fatalf("seed %d %s route %d: time %f below optimum %f",
							seed, pl.Name(), i, r.TimeS, fastest)
					}
					// Duplicates are forbidden.
					for j := 0; j < i; j++ {
						if path.Equal(routes[i], routes[j]) {
							t.Fatalf("seed %d %s: duplicate routes %d/%d", seed, pl.Name(), i, j)
						}
					}
				}
			}
		}
	}
}

func TestPlannersDeterministic(t *testing.T) {
	g := randomRoadNetwork(3, 100)
	private := traffic.Apply(g, traffic.DefaultModel(8))
	mk := func() []Planner {
		return []Planner{
			NewPenalty(g, Options{}),
			NewPlateaus(g, Options{}),
			NewDissimilarity(g, Options{}),
			NewCommercial(g, private, Options{}),
		}
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(77))
	for q := 0; q < 10; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		for i := range a {
			r1, err1 := a[i].Alternatives(s, dst)
			r2, err2 := b[i].Alternatives(s, dst)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: nondeterministic error", a[i].Name())
			}
			if err1 != nil {
				continue
			}
			if len(r1) != len(r2) {
				t.Fatalf("%s: nondeterministic route count %d vs %d", a[i].Name(), len(r1), len(r2))
			}
			for j := range r1 {
				if !path.Equal(r1[j], r2[j]) {
					t.Fatalf("%s: nondeterministic route %d", a[i].Name(), j)
				}
			}
		}
	}
}
