package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/path"
)

// These tests cover the §IV-C refinement options the paper lists as "can
// be easily included" but deliberately left out of the studied
// configuration: similarity cutoffs and local-optimality filtering.

func TestLocalOptimalityFilterKeepsOnlyCleanRoutes(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	opts := Options{LocalOptimalityWindow: 0.5}
	for _, pl := range []Planner{NewPenalty(g, opts), NewDissimilarity(g, opts)} {
		routes, err := pl.Alternatives(s, dst)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		fastest := routes[0].TimeS
		for i, r := range routes {
			ratio := path.CheckLocalOptimality(g, w, r, 0.5*fastest)
			if ratio > 1.02+1e-9 {
				t.Errorf("%s route %d local-optimality ratio %f exceeds tolerance", pl.Name(), i, ratio)
			}
		}
	}
}

func TestLocalOptimalityFilterNeverDropsTheFastestRoute(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(3), graph.NodeID(130)
	strict := Options{LocalOptimalityWindow: 1.0, LocalOptimalityTolerance: 0.001}
	routes, err := NewPenalty(g, strict).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 1 {
		t.Fatal("the fastest route is always locally optimal and must survive")
	}
	base, err := NewPenalty(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !path.Equal(routes[0], base[0]) {
		t.Error("filtering must not change the fastest route")
	}
}

func TestLocalOptimalityFilterIsRestrictive(t *testing.T) {
	// Across a set of queries, the filtered planner must return at most as
	// many routes as the unfiltered one, and strictly fewer somewhere
	// (penalty detours on a grid are rarely all locally optimal).
	g := testCity(t)
	queries := [][2]graph.NodeID{{0, 143}, {5, 138}, {12, 131}, {60, 83}, {3, 140}}
	plain := NewPenalty(g, Options{})
	filtered := NewPenalty(g, Options{LocalOptimalityWindow: 0.6, LocalOptimalityTolerance: 0.001})
	droppedSomewhere := false
	for _, q := range queries {
		a, err1 := plain.Alternatives(q[0], q[1])
		b, err2 := filtered.Alternatives(q[0], q[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v / %v", q, err1, err2)
		}
		if len(b) > len(a) {
			t.Errorf("query %v: filter added routes (%d > %d)", q, len(b), len(a))
		}
		if len(b) < len(a) {
			droppedSomewhere = true
		}
	}
	if !droppedSomewhere {
		t.Log("filter dropped nothing on these queries (acceptable but unusual)")
	}
}

func TestLocalOptimalityToleranceDefault(t *testing.T) {
	o := Options{LocalOptimalityWindow: 0.5}.withDefaults()
	if o.LocalOptimalityTolerance != 0.02 {
		t.Errorf("tolerance default = %f, want 0.02", o.LocalOptimalityTolerance)
	}
	o = Options{}.withDefaults()
	if o.LocalOptimalityTolerance != 0 {
		t.Errorf("tolerance without window = %f, want 0", o.LocalOptimalityTolerance)
	}
	o = Options{LocalOptimalityWindow: 0.5, LocalOptimalityTolerance: 0.1}.withDefaults()
	if o.LocalOptimalityTolerance != 0.1 {
		t.Error("explicit tolerance clobbered")
	}
}

func TestSimilarityCutoffOnPlateaus(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewPlateaus(g, Options{SimilarityCutoff: 0.5}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if sim := path.Jaccard(g, routes[i], routes[j]); sim > 0.5+1e-9 {
				t.Errorf("plateau routes %d,%d similarity %f > cutoff", i, j, sim)
			}
		}
	}
}

func TestRefinementsComposable(t *testing.T) {
	// All refinements together still produce at least the fastest route.
	g := testCity(t)
	opts := Options{
		SimilarityCutoff:         0.6,
		LocalOptimalityWindow:    0.5,
		ApplyUpperBoundToPenalty: true,
	}
	routes, err := NewPenalty(g, opts).Alternatives(0, 143)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 1 {
		t.Fatal("composed refinements must keep the fastest route")
	}
}
