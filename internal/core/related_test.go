package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
)

// Tests for the §II-D related-work baselines: Pareto (skyline paths), ESX
// (edge-exclusion kSPwLO) and alternative graphs (Bader et al.).

func TestParetoFirstRouteIsFastest(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewPareto(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	_, fastest := sp.ShortestPath(g, w, s, dst)
	if math.Abs(routes[0].TimeS-fastest) > 1e-6 {
		t.Errorf("first skyline path time %f, want fastest %f", routes[0].TimeS, fastest)
	}
}

func TestParetoSkylineIsNonDominated(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(3), graph.NodeID(130)
	sky := NewPareto(g, Options{}).Skyline(s, dst)
	if len(sky) == 0 {
		t.Fatal("empty skyline on a connected grid")
	}
	for i := range sky {
		for j := range sky {
			if i == j {
				continue
			}
			if dominates(sky[i].TimeS, sky[i].LengthM, sky[j].TimeS, sky[j].LengthM) {
				t.Fatalf("skyline member %d dominates member %d: (%f,%f) vs (%f,%f)",
					i, j, sky[i].TimeS, sky[i].LengthM, sky[j].TimeS, sky[j].LengthM)
			}
		}
	}
	// Ascending time implies descending distance on a clean skyline.
	for i := 1; i < len(sky); i++ {
		if sky[i].TimeS < sky[i-1].TimeS-1e-9 {
			t.Error("skyline not in ascending time order")
		}
		if sky[i].LengthM > sky[i-1].LengthM+1e-6 {
			t.Errorf("skyline distance not descending: %f then %f", sky[i-1].LengthM, sky[i].LengthM)
		}
	}
}

func TestParetoFindsShorterButSlowerPath(t *testing.T) {
	// Handcrafted: a fast long motorway route vs a short slow street.
	b := graph.NewBuilder(4, 4)
	o := geo.Point{Lat: 0, Lon: 0}
	s := b.AddNode(o)
	m := b.AddNode(geo.Offset(o, 3000, 2500)) // motorway dogleg via the north
	dst := b.AddNode(geo.Offset(o, 0, 5000))
	b.AddEdge(graph.EdgeSpec{From: s, To: m, Class: graph.Motorway})
	b.AddEdge(graph.EdgeSpec{From: m, To: dst, Class: graph.Motorway})
	b.AddEdge(graph.EdgeSpec{From: s, To: dst, Class: graph.Residential, SpeedKmh: 30})
	g := b.Build()
	// Direct: 5 km at 30/1.3 → 780 s. Via motorway: ~7.8 km at 100 → ~281 s.
	sky := NewPareto(g, Options{UpperBound: 4}).Skyline(s, dst)
	if len(sky) != 2 {
		t.Fatalf("skyline size = %d, want 2 (fast-long and slow-short)", len(sky))
	}
	if sky[0].LengthM < sky[1].LengthM {
		t.Error("faster skyline path should be the longer one here")
	}
}

func TestParetoContract(t *testing.T) {
	g := testCity(t)
	p := NewPareto(g, Options{})
	if _, err := p.Alternatives(-1, 3); err == nil {
		t.Error("invalid source should error")
	}
	routes, err := p.Alternatives(5, 5)
	if err != nil || len(routes) != 1 || !routes[0].Empty() {
		t.Error("s==t should yield one empty route")
	}
	gd, a, c := disconnectedPair(t)
	if _, err := NewPareto(gd, Options{}).Alternatives(a, c); err != ErrNoRoute {
		t.Errorf("unreachable: want ErrNoRoute, got %v", err)
	}
}

func TestParetoRespectsUpperBound(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(143)
	sky := NewPareto(g, Options{}).Skyline(s, dst)
	fastest := sky[0].TimeS
	for i, p := range sky {
		if p.TimeS > DefaultUpperBound*fastest+1e-6 {
			t.Errorf("skyline path %d stretch %f exceeds bound", i, p.TimeS/fastest)
		}
	}
}

func TestESXPairwiseDissimilarity(t *testing.T) {
	g := testCity(t)
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	routes, err := NewESX(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 2 {
		t.Fatalf("ESX found only %d routes on a grid city", len(routes))
	}
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if sim := path.Jaccard(g, routes[i], routes[j]); sim >= DefaultTheta {
				t.Errorf("ESX routes %d,%d similarity %f ≥ θ", i, j, sim)
			}
		}
	}
}

func TestESXFirstRouteIsFastestAndBounded(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(3), graph.NodeID(130)
	routes, err := NewESX(g, Options{}).Alternatives(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	_, fastest := sp.ShortestPath(g, w, s, dst)
	if math.Abs(routes[0].TimeS-fastest) > 1e-6 {
		t.Errorf("first ESX route %f, want fastest %f", routes[0].TimeS, fastest)
	}
	for i, r := range routes {
		if r.TimeS > DefaultUpperBound*fastest+1e-6 {
			t.Errorf("ESX route %d stretch %f exceeds bound", i, r.TimeS/fastest)
		}
	}
}

func TestESXContract(t *testing.T) {
	g := testCity(t)
	x := NewESX(g, Options{})
	routes, err := x.Alternatives(7, 7)
	if err != nil || len(routes) != 1 || !routes[0].Empty() {
		t.Error("s==t should yield one empty route")
	}
	gd, a, c := disconnectedPair(t)
	if _, err := NewESX(gd, Options{}).Alternatives(a, c); err != ErrNoRoute {
		t.Errorf("unreachable: want ErrNoRoute, got %v", err)
	}
}

func TestAlternativeGraphMeasures(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(0), graph.NodeID(11*12+11)
	ag, err := BuildAlternativeGraph(g, w, s, dst,
		NewPlateaus(g, Options{}), NewPenalty(g, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if ag.NumEdges() == 0 {
		t.Fatal("alternative graph has no edges")
	}
	// TotalDistance ≥ 1: the union includes at least the fastest path.
	if td := ag.TotalDistance(); td < 1-1e-9 {
		t.Errorf("TotalDistance = %f, want ≥ 1", td)
	}
	// With two planners' routes merged there must be decision points.
	if ag.DecisionEdges() == 0 {
		t.Error("union of 6 routes should contain decision edges")
	}
	paths := ag.Paths(50)
	if len(paths) < 2 {
		t.Fatalf("alternative graph yields %d paths, want ≥ 2", len(paths))
	}
	for i, p := range paths {
		if p.Source() != s || p.Target() != dst {
			t.Errorf("path %d endpoints wrong", i)
		}
	}
	avg := ag.AverageDistance(50)
	if avg < 1-1e-9 || math.IsInf(avg, 1) {
		t.Errorf("AverageDistance = %f, want finite ≥ 1", avg)
	}
}

func TestAlternativeGraphSingleRouteDegenerate(t *testing.T) {
	// Union of just the fastest path: TotalDistance 1, no decisions.
	g := testCity(t)
	w := g.CopyWeights()
	s, dst := graph.NodeID(0), graph.NodeID(60)
	ag, err := BuildAlternativeGraph(g, w, s, dst, NewYen(g, Options{K: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if td := ag.TotalDistance(); math.Abs(td-1) > 1e-9 {
		t.Errorf("single-path TotalDistance = %f, want 1", td)
	}
	if ag.DecisionEdges() != 0 {
		t.Errorf("single-path DecisionEdges = %d, want 0", ag.DecisionEdges())
	}
	if got := ag.AverageDistance(10); math.Abs(got-1) > 1e-9 {
		t.Errorf("single-path AverageDistance = %f, want 1", got)
	}
}

func TestAlternativeGraphErrors(t *testing.T) {
	g := testCity(t)
	w := g.CopyWeights()
	if _, err := BuildAlternativeGraph(g, w, -1, 5, NewPlateaus(g, Options{})); err == nil {
		t.Error("invalid source should error")
	}
	gd, a, c := disconnectedPair(t)
	wd := gd.CopyWeights()
	if _, err := BuildAlternativeGraph(gd, wd, a, c, NewPlateaus(gd, Options{})); err != ErrNoRoute {
		t.Errorf("unreachable: want ErrNoRoute, got %v", err)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		t1, d1, t2, d2 float64
		want           bool
	}{
		{1, 1, 2, 2, true},
		{1, 2, 2, 2, true},
		{2, 2, 2, 2, false}, // equal: no strict improvement
		{1, 3, 2, 2, false}, // trade-off
		{3, 1, 2, 2, false},
	}
	for _, c := range cases {
		if got := dominates(c.t1, c.d1, c.t2, c.d2); got != c.want {
			t.Errorf("dominates(%v,%v,%v,%v) = %v, want %v", c.t1, c.d1, c.t2, c.d2, got, c.want)
		}
	}
}
