package core

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/weights"
)

// DefaultCacheSize is the result-cache capacity a Router installs on its
// engine when the engine has none: roomy enough for the hot query set of
// one demo city between publishes, small enough to be irrelevant next to
// the graph itself.
const DefaultCacheSize = 4096

// Router is the live-traffic serving layer: it owns a planner set, the
// weight stores they plan on, and the engine that answers queries. It
// subscribes to every store, so a publish
//
//  1. evicts the stale generations of the engine's versioned result
//     cache (keeping what double-buffered planners still serve), and
//  2. kicks background re-customization in every planner that derives
//     per-version state (the CH hierarchies of TreeCH planners),
//
// after which each planner's view swings to the new version by an atomic
// pointer swap — old state keeps serving until its replacement is ready,
// so an *individual planner query* never blocks on a rebuild.
//
// Swap granularity is per planner, but *responses* are version-
// consistent: Alternatives and AlternativesBatch check that every planner
// resolving the same weight store answered under the same snapshot
// version, and when a publish lands mid-response (a double-buffered
// planner still serving version N while a direct resolver already swung
// to N+1), the router syncs the planner set and re-runs the batch — the
// versioned result cache makes the repeated jobs nearly free. A response
// therefore never mixes adjacent versions between approaches. The price
// is deliberate: a fanned-out response arriving inside a publish window
// waits out the in-flight customization (Sync) instead of returning a
// mixed set — bounded by versionRetries, after which the final round's
// answers are returned as-is under adversarial publish churn, each still
// internally single-version with its version in Result.Version. Sync
// remains the explicit barrier for callers that additionally need the
// *latest* version.
type Router struct {
	engine   atomic.Pointer[Engine]
	planners []Planner
	stores   []*weights.Store
	// metrics is the installed instrument bundle (nil: none); kept so a
	// SetEngine swap inherits it like the cache.
	metrics atomic.Pointer[Metrics]
}

// versionRetries bounds the response-consistency loop: how many times a
// mixed-version batch is re-run (after a Sync barrier) before the last
// round is returned as-is. One retry suffices whenever publishes pause
// long enough for a Sync to complete — the steady state of any real
// traffic feed.
const versionRetries = 3

// NewRouter wires the serving layer together. A nil engine gets a fresh
// default-sized one; an engine whose owner never called SetCache gets a
// DefaultCacheSize cache (an explicit SetCache(0) is honoured). The
// router subscribes to the given stores — every store a planner resolves
// from should be listed, or its publishes won't trigger invalidation and
// re-customization.
func NewRouter(engine *Engine, planners []Planner, stores ...*weights.Store) *Router {
	if engine == nil {
		engine = NewEngine(0)
	}
	if !engine.cacheSet.Load() {
		engine.SetCache(DefaultCacheSize)
	}
	r := &Router{
		planners: append([]Planner(nil), planners...),
		stores:   stores,
	}
	r.engine.Store(engine)
	for _, st := range stores {
		st.Subscribe(func(*weights.Snapshot) { r.onPublish() })
	}
	return r
}

// Engine returns the engine currently answering this router's queries.
func (r *Router) Engine() *Engine { return r.engine.Load() }

// SetEngine swaps the serving engine (a deployment sharing one worker
// pool across cities installs it here). The new engine inherits cache
// duty: it gets a DefaultCacheSize cache unless its owner already called
// SetCache (including SetCache(0) to run uncached).
func (r *Router) SetEngine(e *Engine) {
	if !e.cacheSet.Load() {
		e.SetCache(DefaultCacheSize)
	}
	e.SetMetrics(r.metrics.Load(), r.planners...)
	r.engine.Store(e)
}

// SetMetrics installs the instrument bundle across the whole serving
// layer: the engine records query latency and cache traffic, and every
// provider-backed planner sinks its customization-latency and
// selection-size observers. Nil uninstalls. Call once at wiring time
// (typically right after NewRouter); installs race benignly with serving
// queries — an in-flight query simply records under whichever bundle it
// loaded first.
func (r *Router) SetMetrics(m *Metrics) {
	r.metrics.Store(m)
	// Registered per planner: an engine shared by several cities keeps
	// attributing each query to the city whose planner ran it.
	r.Engine().SetMetrics(m, r.planners...)
	for _, p := range r.planners {
		if ms, ok := p.(metricsSetter); ok {
			ms.setMetrics(m)
		}
	}
}

// Planners returns the planner set, in registration order.
func (r *Router) Planners() []Planner { return r.planners }

// Stores returns the weight stores the router is subscribed to.
func (r *Router) Stores() []*weights.Store { return r.stores }

// Alternatives answers one query with every planner concurrently. The
// response is version-consistent across planners sharing a weight store
// (see the type comment).
func (r *Router) Alternatives(s, t graph.NodeID) []Result {
	jobs := make([]Job, len(r.planners))
	for i, pl := range r.planners {
		jobs[i] = Job{Planner: pl, S: s, T: t}
	}
	return r.AlternativesBatch(jobs)
}

// AlternativesBatch fans an arbitrary job batch out over the engine,
// re-running it behind a Sync barrier while planners on a shared store
// disagree on the version they answered under (bounded by
// versionRetries).
func (r *Router) AlternativesBatch(jobs []Job) []Result {
	results := r.Engine().AlternativesBatch(jobs)
	for attempt := 0; attempt < versionRetries && mixedVersions(jobs, results); attempt++ {
		r.Sync()
		results = r.Engine().AlternativesBatch(jobs)
	}
	return results
}

// mixedVersions reports whether two answers of one batch were computed
// under different snapshot versions of the *same* weight source. Planners
// on distinct sources (the Commercial provider's private traffic metric
// vs the public metric) legitimately report different versions; answers
// without a version (unversioned planners, panicked jobs) are exempt.
func mixedVersions(jobs []Job, results []Result) bool {
	var seen map[weights.Source]weights.Version
	for i := range jobs {
		if results[i].Version == 0 {
			continue
		}
		sp, ok := jobs[i].Planner.(sourced)
		if !ok {
			continue
		}
		src := sp.weightsSource()
		if src == nil {
			continue
		}
		if seen == nil {
			seen = make(map[weights.Source]weights.Version, len(jobs))
		}
		if v, dup := seen[src]; dup {
			if v != results[i].Version {
				return true
			}
		} else {
			seen[src] = results[i].Version
		}
	}
	return false
}

// onPublish is the store subscription hook. It must not block the
// publisher: cache eviction is one O(entries) map sweep, and planner
// refreshes only CAS a flag and spawn (at most one) rebuild goroutine.
//
// Eviction is per store generation, not a wholesale clear: each planner
// drops only the cache entries older than the version it is *currently
// serving* (read passively — never nudging a rebuild from the publish
// path). A double-buffered CH planner therefore keeps its
// previous-version entries hot until its background customization swaps;
// planners that resolve the store directly swing to the new version
// immediately, so their floor is the fresh latest and their stale
// generations go at once. Entries of a superseded generation linger at
// most until the next publish and are bounded by the cache capacity.
func (r *Router) onPublish() {
	floors := make(map[Planner]weights.Version, len(r.planners))
	for _, p := range r.planners {
		if vp, ok := p.(VersionedPlanner); ok {
			floors[p] = servingVersionOf(vp)
		}
	}
	r.Engine().EvictCacheStale(floors)
	for _, p := range r.planners {
		if rf, ok := p.(refresher); ok {
			rf.refreshAsync()
		}
	}
}

// servingVersionOf reads the version a planner currently serves without
// triggering rebuilds: the passive servingVersioned hook when available,
// else WeightsVersion (which for direct store resolvers is a cheap atomic
// load of the latest snapshot).
func servingVersionOf(vp VersionedPlanner) weights.Version {
	if sv, ok := vp.(servingVersioned); ok {
		return sv.servingVersion()
	}
	return vp.WeightsVersion()
}

// Sync blocks until every planner serves its source's latest snapshot —
// the barrier behind deterministic tests and maintenance endpoints that
// must observe a completed swap.
func (r *Router) Sync() {
	for _, p := range r.planners {
		if rf, ok := p.(refresher); ok {
			rf.refreshSync()
		}
	}
}

// Versions reports, per planner, the weight version currently serving (0
// for planners without version tracking) — the observability hook the
// demo server logs per query.
func (r *Router) Versions() []weights.Version {
	out := make([]weights.Version, len(r.planners))
	for i, p := range r.planners {
		if vp, ok := p.(VersionedPlanner); ok {
			out[i] = vp.WeightsVersion()
		}
	}
	return out
}

// ServingVersions reports, per planner, the weight version currently
// *installed*, read passively — unlike Versions it never nudges a
// rebuild, so it is safe on scrape paths that must not perturb serving
// (the /metrics collectors call it on every scrape). Planners without
// version tracking report 0.
func (r *Router) ServingVersions() []weights.Version {
	out := make([]weights.Version, len(r.planners))
	for i, p := range r.planners {
		if vp, ok := p.(VersionedPlanner); ok {
			out[i] = servingVersionOf(vp)
		}
	}
	return out
}

// hierarchyReporter is implemented by planners backed by a hierarchy
// provider (the choice-routing planners on TreeCH).
type hierarchyReporter interface {
	HierarchyStatus() HierarchyStatus
}

// HierarchyStatuses reports, per planner, the hierarchy flavor currently
// answering and its most recent customization latency (zero-value entries
// for planners without a hierarchy backend) — the second observability
// hook behind the demo server's per-query log line.
func (r *Router) HierarchyStatuses() []HierarchyStatus {
	out := make([]HierarchyStatus, len(r.planners))
	for i, p := range r.planners {
		if hr, ok := p.(hierarchyReporter); ok {
			out[i] = hr.HierarchyStatus()
		}
	}
	return out
}
