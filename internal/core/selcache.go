package core

import (
	"sync"

	"repro/internal/ch"
)

// DefaultSelectionCacheBytes is the total byte budget of one restricted
// planner's selection cache when Options.SelectionCacheBytes is zero. A
// city-scale selection retains tens to hundreds of kilobytes, so the
// default holds on the order of a hundred warm cell unions.
const DefaultSelectionCacheBytes = 32 << 20

// selCacheShards is the shard count of the selection cache; must be a
// power of two (the shard is picked by masking the signature hash).
const selCacheShards = 8

// selEntryOverhead approximates the fixed per-entry bookkeeping bytes
// charged against the budget on top of the selection's own arrays.
const selEntryOverhead = 96

// selEntry is one cached selection keyed by the spatial cell signature it
// was built from. Entries are immutable after insertion except for the
// clock reference bit, which is only touched under the owning shard's
// mutex; the ch.Selection itself is safe for concurrent restricted
// builds, so readers use entries without any lock.
type selEntry struct {
	sig     []int32 // ascending cell ids, owned by the entry
	hash    uint64
	full    bool          // sweep everything: auto cutover or no usable bound
	targets int           // distinct requested target nodes
	sel     *ch.Selection // nil when full
	bytes   int
	ref     bool // clock reference bit (shard-mutex guarded)
}

// selShard is one mutex-guarded slice of entries with its own byte
// accounting and clock hand.
type selShard struct {
	mu      sync.Mutex
	entries []*selEntry
	bytes   int
	hand    int
}

// selectionCache is the size-bounded, sharded multi-entry selection cache
// behind restrictedTrees: entries are keyed by cell signature (so every
// query pair quantizing to the same cell union shares one Select), found
// by exact signature match or by a covering probe (any entry whose cell
// union contains the probe's cells serves it exactly — selections built
// on supersets stay exact on the subset), and evicted clock-wise under a
// per-shard byte budget. A cache instance lives and dies with one weight
// version, preserving the stale-selection guarantees of the single-slot
// design it replaces.
type selectionCache struct {
	perShard int // byte budget per shard; <= 0 degenerates to one entry per shard
	stats    *selectionStats
	shards   [selCacheShards]selShard
}

func newSelectionCache(totalBytes int, stats *selectionStats) *selectionCache {
	if totalBytes == 0 {
		totalBytes = DefaultSelectionCacheBytes
	}
	if totalBytes < 0 {
		totalBytes = 0
	}
	return &selectionCache{perShard: totalBytes / selCacheShards, stats: stats}
}

// sigHash is FNV-1a over the signature's cell ids.
func sigHash(cells []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cells {
		v := uint32(c)
		for i := 0; i < 4; i++ {
			h ^= uint64(v & 0xff)
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

func sigEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sigSuperset reports whether sup contains every cell of sub; both must
// be sorted ascending.
func sigSuperset(sup, sub []int32) bool {
	i := 0
	for _, c := range sub {
		for i < len(sup) && sup[i] < c {
			i++
		}
		if i >= len(sup) || sup[i] != c {
			return false
		}
		i++
	}
	return true
}

// lookup returns a usable entry for the signature, or nil on a miss: the
// exact entry in the signature's home shard first, then — across all
// shards — any non-full entry whose cell union covers the probe's cells.
// Full entries match only exactly (a long query's everything-marker must
// not hijack short queries into full sweeps).
func (c *selectionCache) lookup(sig []int32, hash uint64) *selEntry {
	home := &c.shards[hash&(selCacheShards-1)]
	home.mu.Lock()
	for _, e := range home.entries {
		if e.hash == hash && sigEqual(e.sig, sig) {
			e.ref = true
			home.mu.Unlock()
			return e
		}
	}
	home.mu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if !e.full && len(e.sig) >= len(sig) && sigSuperset(e.sig, sig) {
				e.ref = true
				sh.mu.Unlock()
				return e
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// insert adds e to its home shard and returns the canonical entry: when a
// racing query inserted the same signature first, the existing entry wins
// and e is discarded. The newcomer is never evicted by its own insertion;
// older entries are clock-evicted until the shard fits its budget (or
// only the newcomer remains).
func (c *selectionCache) insert(e *selEntry) *selEntry {
	sh := &c.shards[e.hash&(selCacheShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, old := range sh.entries {
		if old.hash == e.hash && sigEqual(old.sig, e.sig) {
			old.ref = true
			return old
		}
	}
	e.ref = true
	sh.entries = append(sh.entries, e)
	sh.bytes += e.bytes
	for len(sh.entries) > 1 && sh.bytes > c.perShard {
		if sh.hand >= len(sh.entries) {
			sh.hand = 0
		}
		victim := sh.entries[sh.hand]
		if victim == e {
			sh.hand++
			continue
		}
		if victim.ref {
			victim.ref = false
			sh.hand++
			continue
		}
		sh.bytes -= victim.bytes
		sh.entries = append(sh.entries[:sh.hand], sh.entries[sh.hand+1:]...)
		if c.stats != nil {
			c.stats.selEvictions.Add(1)
		}
	}
	return e
}

// entryCount reports how many entries the cache currently holds (test and
// diagnostics hook).
func (c *selectionCache) entryCount() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
