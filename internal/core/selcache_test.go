package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// findConnectedPairs samples distinct connected query pairs on g using a
// Dijkstra-backed probe planner, so tests exercising the restricted
// backends can pick their hot pairs without touching the selection stats
// under test.
func findConnectedPairs(t *testing.T, g *graph.Graph, want int, seed int64) [][2]graph.NodeID {
	t.Helper()
	probe := NewPlateaus(g, Options{})
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]graph.NodeID
	for attempts := 0; len(pairs) < want; attempts++ {
		if attempts > want*100 {
			t.Fatalf("could not sample %d connected pairs", want)
		}
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		d := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == d {
			continue
		}
		dup := false
		for _, p := range pairs {
			if p == [2]graph.NodeID{s, d} {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if _, err := probe.Alternatives(s, d); err != nil {
			continue
		}
		pairs = append(pairs, [2]graph.NodeID{s, d})
	}
	return pairs
}

// TestSelectionCacheAlternatingHotPairs pins the selection-cache thrash
// bug: with a single-slot cache keyed by the exact (s,t) pair, two
// alternating hot pairs evict each other forever and every query pays a
// full Select. The hit/miss counters on HierarchyStatus make the thrash
// observable; this test documents the current (buggy) behavior and is
// flipped to assert a >90% hit rate when the multi-entry cache lands.
func TestSelectionCacheAlternatingHotPairs(t *testing.T) {
	g := randomRoadNetwork(42, 150)
	pairs := findConnectedPairs(t, g, 2, 1)
	p := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted})

	const rounds = 20
	for i := 0; i < rounds; i++ {
		for _, q := range pairs {
			if _, err := p.Alternatives(q[0], q[1]); err != nil {
				t.Fatalf("query %d->%d: %v", q[0], q[1], err)
			}
		}
	}
	st := p.HierarchyStatus()
	total := st.SelectionHits + st.SelectionMisses
	if total != 2*rounds {
		t.Fatalf("selection lookups = %d, want %d", total, 2*rounds)
	}
	if st.SelectionHits != 0 {
		t.Fatalf("single-slot cache reported %d hits on alternating pairs; the thrash this test pins is gone — flip it to assert the hit rate instead", st.SelectionHits)
	}
	if st.SelectionMisses != 2*rounds {
		t.Fatalf("alternating hot pairs: misses = %d, want every query (%d) to rebuild its selection", st.SelectionMisses, 2*rounds)
	}
}
