package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// findConnectedPairs samples distinct connected query pairs on g using a
// Dijkstra-backed probe planner, so tests exercising the restricted
// backends can pick their hot pairs without touching the selection stats
// under test.
func findConnectedPairs(t *testing.T, g *graph.Graph, want int, seed int64) [][2]graph.NodeID {
	t.Helper()
	probe := NewPlateaus(g, Options{})
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]graph.NodeID
	for attempts := 0; len(pairs) < want; attempts++ {
		if attempts > want*100 {
			t.Fatalf("could not sample %d connected pairs", want)
		}
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		d := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == d {
			continue
		}
		dup := false
		for _, p := range pairs {
			if p == [2]graph.NodeID{s, d} {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if _, err := probe.Alternatives(s, d); err != nil {
			continue
		}
		pairs = append(pairs, [2]graph.NodeID{s, d})
	}
	return pairs
}

// TestSelectionCacheAlternatingHotPairs pins the fix for the
// selection-cache thrash bug: the old single-slot cache keyed by the
// exact (s,t) pair let two alternating hot pairs evict each other
// forever, so every query paid a full Select (this test asserted 0 hits
// in 40 lookups when it pinned the bug). The multi-entry cache keys by
// cell signature and holds both pairs' entries, so after each pair's
// first miss every later query hits.
func TestSelectionCacheAlternatingHotPairs(t *testing.T) {
	g := randomRoadNetwork(42, 150)
	pairs := findConnectedPairs(t, g, 2, 1)
	p := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted})

	const rounds = 20
	for i := 0; i < rounds; i++ {
		for _, q := range pairs {
			if _, err := p.Alternatives(q[0], q[1]); err != nil {
				t.Fatalf("query %d->%d: %v", q[0], q[1], err)
			}
		}
	}
	st := p.HierarchyStatus()
	total := st.SelectionHits + st.SelectionMisses
	if total != 2*rounds {
		t.Fatalf("selection lookups = %d, want %d", total, 2*rounds)
	}
	if st.SelectionMisses > 2 {
		t.Fatalf("alternating hot pairs: misses = %d, want at most one cold miss per pair (2)", st.SelectionMisses)
	}
	if rate := float64(st.SelectionHits) / float64(total); rate < 0.90 {
		t.Fatalf("alternating hot pairs: hit rate = %.2f (hits=%d misses=%d), want > 0.90", rate, st.SelectionHits, st.SelectionMisses)
	}
	if st.SelectionEvictions != 0 {
		t.Fatalf("two hot entries must fit the default budget; got %d evictions", st.SelectionEvictions)
	}
}

// TestSelectionCacheEviction drives a degenerate one-entry-per-shard
// budget (SelectionCacheBytes < 0) through many distinct query pairs and
// checks the clock hand actually evicts: the entry count stays bounded by
// the shard count while the eviction counter climbs.
func TestSelectionCacheEviction(t *testing.T) {
	g := randomRoadNetwork(43, 200)
	pairs := findConnectedPairs(t, g, 12, 2)
	p := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted, SelectionCacheBytes: -1})

	for _, q := range pairs {
		if _, err := p.Alternatives(q[0], q[1]); err != nil {
			t.Fatalf("query %d->%d: %v", q[0], q[1], err)
		}
	}
	st := p.HierarchyStatus()
	tr, ok := unwrapTrees(p.prov.view().trees).(*restrictedTrees)
	if !ok {
		t.Fatalf("restricted backend did not yield *restrictedTrees")
	}
	if n := tr.cache.entryCount(); n > selCacheShards {
		t.Fatalf("degenerate budget holds %d entries, want <= %d (one per shard)", n, selCacheShards)
	}
	if st.SelectionEvictions == 0 && st.SelectionMisses > selCacheShards {
		t.Fatalf("%d misses on a one-entry-per-shard cache produced no evictions", st.SelectionMisses)
	}
}

// TestSelectionCacheSupersetHit checks the covering probe: once a query's
// cell union is cached, a second query whose union is a subset of it (and
// whose endpoints lie inside) reuses the covering selection instead of
// building its own.
func TestSelectionCacheSupersetHit(t *testing.T) {
	g := randomRoadNetwork(44, 150)
	pairs := findConnectedPairs(t, g, 6, 3)
	p := NewPlateaus(g, Options{TreeBackend: TreeCHRestricted})

	// Warm the cache with every pair, then replay: every replayed query's
	// signature is already resident (exact hit at worst), so the second
	// sweep must be all hits.
	for sweep := 0; sweep < 2; sweep++ {
		for _, q := range pairs {
			if _, err := p.Alternatives(q[0], q[1]); err != nil {
				t.Fatalf("query %d->%d: %v", q[0], q[1], err)
			}
		}
	}
	st := p.HierarchyStatus()
	if st.SelectionHits < uint64(len(pairs)) {
		t.Fatalf("replay sweep produced %d hits, want >= %d", st.SelectionHits, len(pairs))
	}
}
