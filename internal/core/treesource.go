package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ch"
	"repro/internal/graph"
	"repro/internal/sp"
	"repro/internal/weights"
)

// TreeBackend selects how the choice-routing planners (Plateaus,
// Commercial, PrunedPlateaus) obtain the forward/backward shortest-path
// trees their plateau join consumes.
type TreeBackend uint8

const (
	// TreeDijkstra builds trees with full Dijkstra searches, the paper's
	// baseline description of Choice Routing.
	TreeDijkstra TreeBackend = iota
	// TreeCH builds trees from a contraction hierarchy with PHAST
	// downward sweeps (ch.TreeBuilder) — the §II-B optimisation commercial
	// engines apply. Trees are bit-compatible drop-ins for Dijkstra trees;
	// the hierarchy is preprocessed once at planner construction.
	TreeCH
)

// ParseTreeBackend maps the shared command-line flag spelling ("dijkstra"
// or "ch") onto a TreeBackend.
func ParseTreeBackend(s string) (TreeBackend, error) {
	switch s {
	case "dijkstra":
		return TreeDijkstra, nil
	case "ch":
		return TreeCH, nil
	}
	return 0, fmt.Errorf("core: invalid tree backend %q (want dijkstra or ch)", s)
}

// HierarchyKind selects which contraction-hierarchy flavor backs the
// TreeCH tree backend — both implement the ch.Hierarchy seam, so every
// consumer downstream of preprocessing is identical.
type HierarchyKind uint8

const (
	// HierarchyWitness is the classic witness-pruned contraction
	// (ch.Build): smallest hierarchy, but its cheap weights-only
	// customization is exact only under metrics that preserve the
	// build-time witness structure — heavy closures can degrade it to
	// upper bounds.
	HierarchyWitness HierarchyKind = iota
	// HierarchyCCH is the customizable flavor (cch.Build):
	// metric-independent contraction on a nested-dissection order with no
	// witness pruning, customized by triangle relaxation — exact for any
	// published snapshot, including +Inf closures.
	HierarchyCCH
)

// ParseHierarchyKind maps the shared command-line flag spelling
// ("witness" or "cch") onto a HierarchyKind.
func ParseHierarchyKind(s string) (HierarchyKind, error) {
	switch s {
	case "witness":
		return HierarchyWitness, nil
	case "cch":
		return HierarchyCCH, nil
	}
	return 0, fmt.Errorf("core: invalid hierarchy kind %q (want witness or cch)", s)
}

// String implements fmt.Stringer.
func (k HierarchyKind) String() string {
	if k == HierarchyCCH {
		return "cch"
	}
	return "witness"
}

// HierarchyStatus is the serving-layer observability record of one
// planner's hierarchy backend: which flavor answers queries right now and
// how long the most recent (re)customization took. Zero for planners not
// running on a hierarchy.
type HierarchyStatus struct {
	Kind          string
	LastCustomize time.Duration
}

// TreeSource abstracts the tree factory behind the choice-routing
// planners. Implementations must be safe for concurrent use: all per-call
// scratch state lives in the passed workspace.
type TreeSource interface {
	// BuildTrees writes a forward tree rooted at s and a backward tree
	// rooted at t into ws (aliasing its tree slots, like
	// sp.BuildTreeInto). ok is false when t is unreachable from s, in
	// which case the trees must not be used.
	BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool)
}

// dijkstraTrees is the paper-baseline source: two full Dijkstra trees.
// (Per-version sources are constructed by provider.buildView, which owns
// the backend selection and the CH re-customization chain.)
type dijkstraTrees struct {
	g       *graph.Graph
	weights []float64
}

func (d dijkstraTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	fwd = sp.BuildTreeInto(ws, d.g, d.weights, s, sp.Forward)
	if !fwd.Reached(t) {
		return fwd, nil, false
	}
	bwd = sp.BuildTreeInto(ws, d.g, d.weights, t, sp.Backward)
	return fwd, bwd, true
}

// chTrees is the PHAST source: complete trees out of the contraction
// hierarchy's search spaces, two near-linear passes per tree.
type chTrees struct {
	tb *ch.TreeBuilder
}

func (c chTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	fwd = c.tb.BuildTreeInto(ws, s, sp.Forward)
	if !fwd.Reached(t) {
		return fwd, nil, false
	}
	bwd = c.tb.BuildTreeInto(ws, t, sp.Backward)
	return fwd, bwd, true
}

// prunedTrees is the §II-B elliptic source: a bidirectional probe finds
// the fastest time, then both trees explore only nodes that can lie on a
// route within upperBound × fastest. Within that budget the trees'
// distances equal the full trees', so the choice routes are preserved.
type prunedTrees struct {
	g          *graph.Graph
	weights    []float64
	scale      float64 // admissible seconds-per-meter lower bound
	upperBound float64
}

// newPrunedTrees builds the elliptic source, deriving the admissible
// scale from the same weights the trees will search — the invariant the
// pruning bound depends on.
func newPrunedTrees(g *graph.Graph, weights []float64, upperBound float64) *prunedTrees {
	return &prunedTrees{
		g:          g,
		weights:    weights,
		scale:      sp.MinSecondsPerMeter(g, weights),
		upperBound: upperBound,
	}
}

// newPrunedTreesFrom is newPrunedTrees with cross-version scan sharing:
// when the snapshot carries a changed-edge delta relative to exactly the
// previous view's snapshot (closures, spot republishes), the admissible
// scale is updated from the previous one in O(|delta|) instead of
// rescanning every edge — the minimum-speed scan survives any publish
// that leaves the minima untouched. Bulk publishes (full traffic steps)
// carry no delta and fall back to the full scan.
func newPrunedTreesFrom(g *graph.Graph, snap *weights.Snapshot, upperBound float64, prev *prunedTrees, prevSnap *weights.Snapshot) *prunedTrees {
	w := snap.Weights()
	if prev != nil && prevSnap != nil {
		if since, changed, ok := snap.Delta(); ok && since == prevSnap.Version() {
			if scale, ok := rescaleFromDelta(g, prevSnap.Weights(), w, changed, prev.scale); ok {
				return &prunedTrees{g: g, weights: w, scale: scale, upperBound: upperBound}
			}
		}
	}
	return newPrunedTrees(g, w, upperBound)
}

// rescaleFromDelta derives the new minimum seconds-per-meter from the
// previous one given that only the changed edges differ. It is sound
// exactly when the previous minimum was achieved on an *unchanged* edge:
// then the old scale is still attained and only the changed edges can
// lower it. If any changed edge sat at the old minimum (it may have been
// the sole argmin, and raising it would raise the true minimum), ok is
// false and the caller must rescan.
func rescaleFromDelta(g *graph.Graph, prevW, w []float64, changed []graph.EdgeID, prevScale float64) (float64, bool) {
	scale := prevScale
	for _, e := range changed {
		ed := g.Edge(e)
		if ed.LengthM <= 0 {
			continue
		}
		if prevW[e]/ed.LengthM <= prevScale {
			return 0, false
		}
		if r := w[e] / ed.LengthM; r < scale {
			scale = r
		}
	}
	return scale, true
}

func (p *prunedTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	_, fastest := sp.BidirectionalShortestPathInto(ws, p.g, p.weights, s, t)
	if math.IsInf(fastest, 1) {
		return nil, nil, false
	}
	maxCost := p.upperBound * fastest
	fwd = sp.BuildPrunedTreeInto(ws, p.g, p.weights, s, sp.Forward, t, maxCost, p.scale)
	bwd = sp.BuildPrunedTreeInto(ws, p.g, p.weights, t, sp.Backward, s, maxCost, p.scale)
	if !fwd.Reached(t) {
		return fwd, bwd, false
	}
	return fwd, bwd, true
}

// countingTrees decorates a source with concurrency-safe instrumentation:
// how many nodes the last query's trees reached. The counts live in a
// treeCounts shared across weight versions (plain atomics — concurrent
// queries each record their own trees, last writer wins), so planners
// carrying this instrumentation stay safe under core.Engine workers.
type countingTrees struct {
	src    TreeSource
	counts *treeCounts
}

func (c *countingTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	fwd, bwd, ok = c.src.BuildTrees(ws, s, t)
	if fwd != nil {
		c.counts.lastFwd.Store(int64(sp.CountReached(fwd)))
	}
	if bwd != nil {
		c.counts.lastBwd.Store(int64(sp.CountReached(bwd)))
	}
	return fwd, bwd, ok
}
