package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cch"
	"repro/internal/ch"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sp"
	"repro/internal/spatial"
	"repro/internal/weights"
)

// TreeBackend selects how the choice-routing planners (Plateaus,
// Commercial, PrunedPlateaus) obtain the forward/backward shortest-path
// trees their plateau join consumes.
type TreeBackend uint8

const (
	// TreeDijkstra builds trees with full Dijkstra searches, the paper's
	// baseline description of Choice Routing.
	TreeDijkstra TreeBackend = iota
	// TreeCH builds trees from a contraction hierarchy with PHAST
	// downward sweeps (ch.TreeBuilder) — the §II-B optimisation commercial
	// engines apply. Trees are bit-compatible drop-ins for Dijkstra trees;
	// the hierarchy is preprocessed once at planner construction.
	TreeCH
	// TreeCHRestricted is TreeCH with RPHAST restricted sweeps: per query
	// an elliptic target region (the nodes able to lie on a route within
	// UpperBound × the fastest time, by the admissible geometric bound) is
	// quantized to a spatial cell union, the union's vertices are selected
	// once, and both downward sweeps run only over the selection's upward
	// closure. Route sets are identical to TreeCH; tree builds are
	// sublinear for short queries. Selections are cached per cell
	// signature in a size-bounded multi-entry cache (nearby pairs share
	// one Select) and rebuilt — never reused — across weight versions.
	TreeCHRestricted
	// TreeCHAuto is TreeCHRestricted with a fallback: when the elliptic
	// target set exceeds RestrictedAutoFraction of the graph (long queries,
	// where selection overhead eats the sweep savings), the query runs
	// full PHAST sweeps instead.
	TreeCHAuto
)

// RestrictedAutoFraction is the TreeCHAuto cutover: restricted sweeps are
// used while the elliptic target set stays at or below this fraction of
// the graph's nodes.
const RestrictedAutoFraction = 0.25

// ParseTreeBackend maps the shared command-line flag spelling onto a
// TreeBackend: "dijkstra", "ch", "ch-restricted" (alias "rphast") or
// "ch-auto" (alias "auto").
func ParseTreeBackend(s string) (TreeBackend, error) {
	switch s {
	case "dijkstra":
		return TreeDijkstra, nil
	case "ch":
		return TreeCH, nil
	case "ch-restricted", "rphast":
		return TreeCHRestricted, nil
	case "ch-auto", "auto":
		return TreeCHAuto, nil
	}
	return 0, fmt.Errorf("core: invalid tree backend %q (want dijkstra, ch, ch-restricted or ch-auto)", s)
}

// String implements fmt.Stringer.
func (b TreeBackend) String() string {
	switch b {
	case TreeCH:
		return "ch"
	case TreeCHRestricted:
		return "ch-restricted"
	case TreeCHAuto:
		return "ch-auto"
	}
	return "dijkstra"
}

// usesHierarchy reports whether the backend preprocesses a contraction
// hierarchy (and therefore double-buffers weight swaps instead of
// resolving snapshots inline).
func (b TreeBackend) usesHierarchy() bool {
	return b == TreeCH || b == TreeCHRestricted || b == TreeCHAuto
}

// HierarchyKind selects which contraction-hierarchy flavor backs the
// TreeCH tree backend — both implement the ch.Hierarchy seam, so every
// consumer downstream of preprocessing is identical.
type HierarchyKind uint8

const (
	// HierarchyWitness is the classic witness-pruned contraction
	// (ch.Build): smallest hierarchy, but its cheap weights-only
	// customization is exact only under metrics that preserve the
	// build-time witness structure — heavy closures can degrade it to
	// upper bounds.
	HierarchyWitness HierarchyKind = iota
	// HierarchyCCH is the customizable flavor (cch.Build):
	// metric-independent contraction on a nested-dissection order with no
	// witness pruning, customized by triangle relaxation — exact for any
	// published snapshot, including +Inf closures.
	HierarchyCCH
	// HierarchyCCHPerfect is HierarchyCCH with the perfect-customization
	// post-pass: each publish additionally proves which shortcut arcs are
	// strictly dominated under the snapshot's metric and marks them
	// inert, so queries and tree sweeps skip them. Same routes, costlier
	// customization, cheaper everything after.
	HierarchyCCHPerfect
)

// ParseHierarchyKind maps the shared command-line flag spelling
// ("witness", "cch" or "cch-perfect") onto a HierarchyKind.
func ParseHierarchyKind(s string) (HierarchyKind, error) {
	switch s {
	case "witness":
		return HierarchyWitness, nil
	case "cch":
		return HierarchyCCH, nil
	case "cch-perfect":
		return HierarchyCCHPerfect, nil
	}
	return 0, fmt.Errorf("core: invalid hierarchy kind %q (want witness, cch or cch-perfect)", s)
}

// String implements fmt.Stringer.
func (k HierarchyKind) String() string {
	switch k {
	case HierarchyCCH:
		return "cch"
	case HierarchyCCHPerfect:
		return "cch-perfect"
	}
	return "witness"
}

// OrderKind selects the nested-dissection separator pipeline behind the
// CCH hierarchy flavors — the cch package's type re-exported so command
// wiring needs only one spelling. OrderGeometric is the coordinate-
// bisection baseline; OrderFlow refines every split with an inertial-flow
// minimum vertex cut (smaller separators, fewer triangles, faster
// customization; slower one-off preprocessing). Ignored by
// HierarchyWitness and the Dijkstra backend.
type OrderKind = cch.OrderKind

const (
	OrderGeometric = cch.OrderGeometric
	OrderFlow      = cch.OrderFlow
)

// ParseOrderKind maps the shared command-line flag spelling ("geometric"
// or "flow") onto an OrderKind.
func ParseOrderKind(s string) (OrderKind, error) { return cch.ParseOrderKind(s) }

// QueryEngine selects the point-to-point distance engine behind the CCH
// hierarchy flavors' Dist/Path — the searches that seed every restricted
// selection's elliptic bound and the matrix baseline. Both engines return
// bit-identical distances; the witness flavor ignores the knob (its
// search spaces are not path-shaped, so it always runs bidirectional).
type QueryEngine uint8

const (
	// QueryElimTree (the default) walks the two elimination-tree root
	// paths heap-free — no priority queue, no decrease-key, no stopping
	// criterion; ascent lengths are bounded by the tree height the order
	// pipeline produced.
	QueryElimTree QueryEngine = iota
	// QueryBidij keeps the classic bidirectional upward Dijkstra.
	QueryBidij
)

// ParseQueryEngine maps the shared command-line flag spelling ("elimtree"
// or "bidij") onto a QueryEngine.
func ParseQueryEngine(s string) (QueryEngine, error) {
	switch s {
	case "elimtree":
		return QueryElimTree, nil
	case "bidij":
		return QueryBidij, nil
	}
	return 0, fmt.Errorf("core: invalid query engine %q (want elimtree or bidij)", s)
}

// String implements fmt.Stringer.
func (q QueryEngine) String() string {
	if q == QueryBidij {
		return "bidij"
	}
	return "elimtree"
}

// HierarchyStatus is the serving-layer observability record of one
// planner's hierarchy backend: which flavor answers queries right now,
// how long the most recent (re)customization took, and — for restricted-
// sweep backends — the most recent query's selection size and tree-pair
// sweep time. Zero for planners not running on a hierarchy.
type HierarchyStatus struct {
	Kind string
	// Order is the contraction-order pipeline ("geometric" or "flow")
	// behind a CCH-flavored hierarchy; empty for witness hierarchies,
	// whose order is metric-driven.
	Order         string
	LastCustomize time.Duration
	// LastSelection is the elliptic target-set size of the most recent
	// query on a restricted backend (0 off such backends); LastRestricted
	// reports whether that query actually ran restricted sweeps (false:
	// the auto mode fell back to full sweeps); LastSweep is the query's
	// tree-pair build time, selection included when one was built.
	LastSelection  int
	LastRestricted bool
	LastSweep      time.Duration
	// SelectionHits / SelectionMisses count, cumulatively across weight
	// versions, how many restricted queries reused a cached selection vs
	// had to build one (a Select pass); SelectionEvictions counts entries
	// dropped under the cache's byte budget. The hit rate is the headline
	// amortization metric of the selection cache.
	SelectionHits      uint64
	SelectionMisses    uint64
	SelectionEvictions uint64
	// LastUnionCells is the spatial cell-union size (number of grid cells)
	// of the most recent query's selection signature; LastHit reports
	// whether that query's selection came out of the cache.
	LastUnionCells int
	LastHit        bool
	// LastQueryEngine names the point-to-point engine of the serving
	// hierarchy ("elimtree" or "bidij"; empty off hierarchy backends).
	// The Elim* counters are cumulative over the serving customization
	// (they reset on a weight swap, like the selection entries):
	// ElimQueries point-to-point ascent queries, ElimTruncated of them
	// abandoned early by the incumbent bound, ElimAscentNodes total
	// processed ascent nodes (mean ascent = nodes/queries). LastAscent is
	// the most recent query's processed node count.
	LastQueryEngine string
	ElimQueries     uint64
	ElimTruncated   uint64
	ElimAscentNodes uint64
	LastAscent      int
}

// TreeSource abstracts the tree factory behind the choice-routing
// planners. Implementations must be safe for concurrent use: all per-call
// scratch state lives in the passed workspace.
type TreeSource interface {
	// BuildTrees writes a forward tree rooted at s and a backward tree
	// rooted at t into ws (aliasing its tree slots, like
	// sp.BuildTreeInto). ok is false when t is unreachable from s, in
	// which case the trees must not be used.
	BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool)
}

// dijkstraTrees is the paper-baseline source: two full Dijkstra trees.
// (Per-version sources are constructed by provider.buildView, which owns
// the backend selection and the CH re-customization chain.)
type dijkstraTrees struct {
	g       *graph.Graph
	weights []float64
}

func (d dijkstraTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	fwd = sp.BuildTreeInto(ws, d.g, d.weights, s, sp.Forward)
	if !fwd.Reached(t) {
		return fwd, nil, false
	}
	bwd = sp.BuildTreeInto(ws, d.g, d.weights, t, sp.Backward)
	return fwd, bwd, true
}

// chTrees is the PHAST source: complete trees out of the contraction
// hierarchy's search spaces, two near-linear passes per tree.
type chTrees struct {
	tb *ch.TreeBuilder
}

func (c chTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	fwd = c.tb.BuildTreeInto(ws, s, sp.Forward)
	if !fwd.Reached(t) {
		return fwd, nil, false
	}
	bwd = c.tb.BuildTreeInto(ws, t, sp.Backward)
	return fwd, bwd, true
}

// selectionStats is the concurrency-safe observability shared by every
// weight version of one planner's restricted source (plain atomics, last
// writer wins — the same discipline as treeCounts).
type selectionStats struct {
	lastSelection  atomic.Int64
	lastRestricted atomic.Bool
	lastSweepNS    atomic.Int64
	lastUnion      atomic.Int64
	lastHit        atomic.Bool
	// Cumulative selection-cache counters (never reset on weight swaps, so
	// serving dashboards see monotone rates).
	selHits      atomic.Uint64
	selMisses    atomic.Uint64
	selEvictions atomic.Uint64
	// selObs, when set, receives the size of every selection resolved
	// (hits and misses both — it distributes what queries *ran on*, not
	// what was built). Installed by Router.SetMetrics.
	selObs atomic.Pointer[metrics.Histogram]
}

// restrictedTrees is the RPHAST source: the point-to-point hierarchy
// query yields the fastest time, the admissible geometric bound
// (geo.LowerBounder × the metric's minimum seconds-per-meter, the same
// pair prunedTrees searches with) bounds the elliptic region of nodes
// able to lie on a route within UpperBound × fastest, and both trees are
// built with downward sweeps restricted to a selection covering that
// region (ch.Selection). Distances on the ellipse equal the full sweep's,
// so the plateau join yields byte-identical route sets; outside it the
// trees are simply unreached, like an elliptically pruned Dijkstra tree.
//
// Selections are shared through a spatial quantization: the ellipse is
// covered by a union of grid cells (spatial.Index.EllipseCells), the
// union's vertices — a superset of the ellipse, so exactness is
// preserved — are selected with ch.SelectUnion, and the result is cached
// in a size-bounded multi-entry cache keyed by the cell signature. Every
// pair quantizing to the same cell union (alternating hot pairs, nearby
// endpoints) shares one Select; a covering cache probe additionally
// reuses any selection whose union contains the query's cells. The
// source, and with it every cached selection, lives and dies with one
// weight version: the provider builds a fresh restrictedTrees per
// customization, and ch.Selection's own builder guard panics if a stale
// selection ever crossed over.
type restrictedTrees struct {
	g          *graph.Graph
	hier       ch.Hierarchy
	tb         *ch.TreeBuilder
	lb         geo.LowerBounder
	scale      float64 // admissible seconds-per-meter lower bound; 0 disables selection
	upperBound float64
	auto       bool // fall back to full sweeps for large ellipses (TreeCHAuto)
	stats      *selectionStats
	grid       *spatial.Index
	cache      *selectionCache
	// fullAll is the shared everything-marker used when no admissible
	// geometric bound exists (zero-length edges): every query sweeps the
	// whole graph, no per-query state.
	fullAll *selEntry
	// scratch pools the per-query cell/target buffers (*selBuf), keeping
	// the warm lookup path allocation-free.
	scratch sync.Pool
}

// selBuf is the pooled per-query scratch of the selection-cache path.
type selBuf struct {
	cells   []int32
	targets []graph.NodeID
}

func newRestrictedTrees(g *graph.Graph, hier ch.Hierarchy, tb *ch.TreeBuilder, weights []float64, upperBound float64, auto bool, stats *selectionStats, grid *spatial.Index, cacheBytes int) *restrictedTrees {
	if stats == nil {
		stats = &selectionStats{}
	}
	if grid == nil {
		grid = spatial.NewIndex(g, 0)
	}
	r := &restrictedTrees{
		g:          g,
		hier:       hier,
		tb:         tb,
		lb:         geo.NewLowerBounder(g.BBox()),
		scale:      sp.MinSecondsPerMeter(g, weights),
		upperBound: upperBound,
		auto:       auto,
		stats:      stats,
		grid:       grid,
		cache:      newSelectionCache(cacheBytes, stats),
		fullAll:    &selEntry{full: true, targets: g.NumNodes()},
	}
	r.scratch.New = func() any { return new(selBuf) }
	return r
}

func (r *restrictedTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	// On the CCH flavors hier.Dist is the heap-free elimination-tree
	// ascent, so a selection-cache hit no longer pays a priority-queue
	// search for its elliptic bound.
	return r.buildTreesBounded(ws, s, t, r.hier.Dist(s, t))
}

// buildTreesBounded is BuildTrees with the fastest-time bound already
// computed — the batched entry point of MatrixPairwise, whose shared
// multi-source ascent derives one column of bounds at a time.
func (r *restrictedTrees) buildTreesBounded(ws *sp.Workspace, s, t graph.NodeID, fastest float64) (fwd, bwd *sp.Tree, ok bool) {
	if math.IsInf(fastest, 1) {
		return nil, nil, false
	}
	start := time.Now()
	cs := r.entryForPair(s, t, fastest)
	if cs.full {
		fwd = r.tb.BuildTreeInto(ws, s, sp.Forward)
		if !fwd.Reached(t) {
			return fwd, nil, false
		}
		bwd = r.tb.BuildTreeInto(ws, t, sp.Backward)
	} else {
		fwd = r.tb.BuildTreeRestrictedInto(ws, s, sp.Forward, cs.sel)
		if !fwd.Reached(t) {
			return fwd, nil, false
		}
		bwd = r.tb.BuildTreeRestrictedInto(ws, t, sp.Backward, cs.sel)
	}
	r.stats.lastSelection.Store(int64(cs.targets))
	r.stats.lastRestricted.Store(!cs.full)
	r.stats.lastSweepNS.Store(int64(time.Since(start)))
	return fwd, bwd, true
}

// entryForPair resolves the selection entry of one query pair: quantize
// the pair's elliptic region — every node v with LB(s,v) + LB(v,t) within
// (UpperBound × fastest) / scale; since scale·LB admissibly understates
// true travel times, any node on any route within the budget, plateau
// chains and tree paths included, lies inside it (the §II-B covering
// argument) — to its covering cell union and look that signature up in
// the cache, building the union's selection on a miss.
func (r *restrictedTrees) entryForPair(s, t graph.NodeID, fastest float64) *selEntry {
	if r.scale <= 0 {
		// No admissible geometric bound (zero-length edges exist): every
		// node may lie on a feasible route; sweep everything.
		return r.fullAll
	}
	budget := r.upperBound * fastest / r.scale
	sPt, tPt := r.g.Point(s), r.g.Point(t)
	sb := r.scratch.Get().(*selBuf)
	cells := r.grid.EllipseCells(sPt, tPt, budget, r.lb, sb.cells)
	// The endpoints' cells satisfy the bound analytically; keep them in
	// the signature even under adversarial float rounding.
	cells = insertCellSorted(cells, int32(r.grid.CellOf(sPt)))
	cells = insertCellSorted(cells, int32(r.grid.CellOf(tPt)))
	sb.cells = cells
	e, _ := r.entryForCells(sb, s, t)
	r.scratch.Put(sb)
	return e
}

// selectTargets resolves the selection entry covering an explicit target
// set — the many-to-many entry point: the signature is the union of the
// targets' cells, so one selection serves every source sweep of a matrix
// batch and every batch hitting the same cells. hit reports whether the
// entry came out of the cache.
func (r *restrictedTrees) selectTargets(targets []graph.NodeID) (e *selEntry, hit bool) {
	sb := r.scratch.Get().(*selBuf)
	cells := sb.cells[:0]
	for _, t := range targets {
		cells = insertCellSorted(cells, int32(r.grid.CellOf(r.g.Point(t))))
	}
	sb.cells = cells
	e, hit = r.entryForCells(sb, targets...)
	r.scratch.Put(sb)
	return e, hit
}

// entryForCells is the shared cache transaction: look up sb.cells'
// signature, and on a miss select the cell union's vertices (plus the
// must nodes, defensively — they are cell members already) and insert.
// Hit/miss/union observability is recorded here.
func (r *restrictedTrees) entryForCells(sb *selBuf, must ...graph.NodeID) (*selEntry, bool) {
	cells := sb.cells
	hash := sigHash(cells)
	if e := r.cache.lookup(cells, hash); e != nil {
		r.stats.selHits.Add(1)
		r.stats.lastHit.Store(true)
		r.stats.lastUnion.Store(int64(len(cells)))
		if h := r.stats.selObs.Load(); h != nil {
			h.Observe(float64(e.targets))
		}
		return e, true
	}
	r.stats.selMisses.Add(1)
	r.stats.lastHit.Store(false)
	r.stats.lastUnion.Store(int64(len(cells)))
	tgts := sb.targets[:0]
	for _, c := range cells {
		tgts = append(tgts, r.grid.CellNodes(int(c))...)
	}
	distinct := len(tgts)
	tgts = append(tgts, must...)
	sb.targets = tgts
	e := &selEntry{sig: append([]int32(nil), cells...), hash: hash}
	if r.auto && distinct > int(RestrictedAutoFraction*float64(r.g.NumNodes())) {
		e.full = true
		e.targets = distinct
		e.bytes = 4*len(e.sig) + selEntryOverhead
	} else {
		e.sel = r.tb.Select(tgts, nil)
		e.targets = e.sel.Targets()
		e.bytes = e.sel.MemoryBytes() + 4*len(e.sig) + selEntryOverhead
	}
	if h := r.stats.selObs.Load(); h != nil {
		h.Observe(float64(e.targets))
	}
	return r.cache.insert(e), false
}

// insertCellSorted inserts c into the ascending slice cells unless
// already present, in place (cells must have spare capacity or grow).
func insertCellSorted(cells []int32, c int32) []int32 {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if cells[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cells) && cells[lo] == c {
		return cells
	}
	cells = append(cells, 0)
	copy(cells[lo+1:], cells[lo:])
	cells[lo] = c
	return cells
}

// prunedTrees is the §II-B elliptic source: a bidirectional probe finds
// the fastest time, then both trees explore only nodes that can lie on a
// route within upperBound × fastest. Within that budget the trees'
// distances equal the full trees', so the choice routes are preserved.
type prunedTrees struct {
	g          *graph.Graph
	weights    []float64
	scale      float64 // admissible seconds-per-meter lower bound
	upperBound float64
}

// newPrunedTrees builds the elliptic source, deriving the admissible
// scale from the same weights the trees will search — the invariant the
// pruning bound depends on.
func newPrunedTrees(g *graph.Graph, weights []float64, upperBound float64) *prunedTrees {
	return &prunedTrees{
		g:          g,
		weights:    weights,
		scale:      sp.MinSecondsPerMeter(g, weights),
		upperBound: upperBound,
	}
}

// newPrunedTreesFrom is newPrunedTrees with cross-version scan sharing:
// when the snapshot carries a changed-edge delta relative to exactly the
// previous view's snapshot (closures, spot republishes), the admissible
// scale is updated from the previous one in O(|delta|) instead of
// rescanning every edge — the minimum-speed scan survives any publish
// that leaves the minima untouched. Bulk publishes (full traffic steps)
// carry no delta and fall back to the full scan.
func newPrunedTreesFrom(g *graph.Graph, snap *weights.Snapshot, upperBound float64, prev *prunedTrees, prevSnap *weights.Snapshot) *prunedTrees {
	w := snap.Weights()
	if prev != nil && prevSnap != nil {
		if since, changed, ok := snap.Delta(); ok && since == prevSnap.Version() {
			if scale, ok := rescaleFromDelta(g, prevSnap.Weights(), w, changed, prev.scale); ok {
				return &prunedTrees{g: g, weights: w, scale: scale, upperBound: upperBound}
			}
		}
	}
	return newPrunedTrees(g, w, upperBound)
}

// rescaleFromDelta derives the new minimum seconds-per-meter from the
// previous one given that only the changed edges differ. It is sound
// exactly when the previous minimum was achieved on an *unchanged* edge:
// then the old scale is still attained and only the changed edges can
// lower it. If any changed edge sat at the old minimum (it may have been
// the sole argmin, and raising it would raise the true minimum), ok is
// false and the caller must rescan.
func rescaleFromDelta(g *graph.Graph, prevW, w []float64, changed []graph.EdgeID, prevScale float64) (float64, bool) {
	scale := prevScale
	for _, e := range changed {
		ed := g.Edge(e)
		if ed.LengthM <= 0 {
			continue
		}
		if prevW[e]/ed.LengthM <= prevScale {
			return 0, false
		}
		if r := w[e] / ed.LengthM; r < scale {
			scale = r
		}
	}
	return scale, true
}

func (p *prunedTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	_, fastest := sp.BidirectionalShortestPathInto(ws, p.g, p.weights, s, t)
	if math.IsInf(fastest, 1) {
		return nil, nil, false
	}
	maxCost := p.upperBound * fastest
	fwd = sp.BuildPrunedTreeInto(ws, p.g, p.weights, s, sp.Forward, t, maxCost, p.scale)
	bwd = sp.BuildPrunedTreeInto(ws, p.g, p.weights, t, sp.Backward, s, maxCost, p.scale)
	if !fwd.Reached(t) {
		return fwd, bwd, false
	}
	return fwd, bwd, true
}

// countingTrees decorates a source with concurrency-safe instrumentation:
// how many nodes the last query's trees reached. The counts live in a
// treeCounts shared across weight versions (plain atomics — concurrent
// queries each record their own trees, last writer wins), so planners
// carrying this instrumentation stay safe under core.Engine workers.
type countingTrees struct {
	src    TreeSource
	counts *treeCounts
}

func (c *countingTrees) BuildTrees(ws *sp.Workspace, s, t graph.NodeID) (fwd, bwd *sp.Tree, ok bool) {
	fwd, bwd, ok = c.src.BuildTrees(ws, s, t)
	if fwd != nil {
		c.counts.lastFwd.Store(int64(sp.CountReached(fwd)))
	}
	if bwd != nil {
		c.counts.lastBwd.Store(int64(sp.CountReached(bwd)))
	}
	return fwd, bwd, ok
}
