package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/traffic"
)

// The tree-backend claim under test: the choice-routing planners return
// the same routes whether their trees come from full Dijkstra searches,
// elliptic pruning, or PHAST sweeps over a contraction hierarchy.
//
// Exact route-set equality requires tie-free shortest paths (with ties,
// equally correct trees may pick different parents and therefore different
// plateaus), so these tests run on randomRoadNetwork graphs whose
// continuous random speeds make ties measure-zero. On the tied grid city
// the planners are exercised by the contract tests instead.

func comparePlannersExact(t *testing.T, a, b Planner, g *graph.Graph, queries int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	checked := 0
	for q := 0; checked < queries && q < queries*4; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == dst {
			continue
		}
		ra, err1 := a.Alternatives(s, dst)
		rb, err2 := b.Alternatives(s, dst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d->%d: error mismatch %v vs %v", s, dst, err1, err2)
		}
		if err1 != nil {
			continue
		}
		checked++
		if len(ra) != len(rb) {
			t.Fatalf("query %d->%d: %d vs %d routes", s, dst, len(ra), len(rb))
		}
		for i := range ra {
			if !path.Equal(ra[i], rb[i]) {
				t.Fatalf("query %d->%d route %d differs between backends", s, dst, i)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no connected queries sampled")
	}
}

func TestPlateausCHMatchesDijkstraBackend(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomRoadNetwork(seed+100, 150)
		dij := NewPlateaus(g, Options{})
		chp := NewPlateaus(g, Options{TreeBackend: TreeCH})
		comparePlannersExact(t, dij, chp, g, 12, seed)
	}
}

func TestPrunedPlateausCHBackend(t *testing.T) {
	g := randomRoadNetwork(7, 150)
	dij := NewPrunedPlateaus(g, Options{})
	chp := NewPrunedPlateaus(g, Options{TreeBackend: TreeCH})
	comparePlannersExact(t, dij, chp, g, 12, 7)
	// The CH variant builds full trees; instrumentation must still report.
	if fwd, bwd := chp.LastReached(); fwd <= 0 || bwd <= 0 {
		t.Errorf("CH-backend LastReached = (%d, %d), want positive", fwd, bwd)
	}
}

func TestCommercialPrunedMatchesFullTrees(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomRoadNetwork(seed+200, 150)
		private := traffic.Apply(g, traffic.DefaultModel(uint64(seed)+9))
		pruned := NewCommercial(g, private, Options{})
		full := NewCommercial(g, private, Options{DisablePrunedTrees: true})
		comparePlannersExact(t, full, pruned, g, 12, seed)
	}
}

func TestCommercialCHMatchesFullTrees(t *testing.T) {
	g := randomRoadNetwork(300, 150)
	private := traffic.Apply(g, traffic.DefaultModel(33))
	full := NewCommercial(g, private, Options{DisablePrunedTrees: true})
	chc := NewCommercial(g, private, Options{TreeBackend: TreeCH})
	comparePlannersExact(t, full, chc, g, 12, 5)
}

// TestEngineDrivesCHAndPrunedPlanners hammers the CH-backed and pruned
// planners through the concurrent engine; with -race it verifies the
// shared TreeBuilder, the pruned tree source and the atomic
// instrumentation are data-race free.
func TestEngineDrivesCHAndPrunedPlanners(t *testing.T) {
	g := testCity(t)
	e := NewEngine(4)
	planners := []Planner{
		NewPlateaus(g, Options{TreeBackend: TreeCH}),
		NewPrunedPlateaus(g, Options{}),
		NewPrunedPlateaus(g, Options{TreeBackend: TreeCH}),
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 15; q++ {
				s := graph.NodeID(rng.Intn(g.NumNodes()))
				dst := graph.NodeID(rng.Intn(g.NumNodes()))
				if s == dst {
					continue
				}
				for _, r := range e.Alternatives(planners, s, dst) {
					if r.Err != nil && r.Err != ErrNoRoute {
						t.Errorf("engine CH query %d->%d: %v", s, dst, r.Err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
