package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cch"
	"repro/internal/ch"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/path"
	"repro/internal/spatial"
	"repro/internal/weights"
)

// VersionedPlanner is a Planner that resolves its weights from a
// weights.Source per query and can report which snapshot version an
// answer was computed under. Every planner in this package implements it;
// the engine's result cache requires it (an unversioned planner's answers
// cannot be keyed, so they are never cached).
type VersionedPlanner interface {
	Planner
	// WeightsVersion returns the version the next query would plan on.
	// For a CH-backed planner mid-swap this is the version of the
	// hierarchy currently serving, which may trail the source's latest
	// until background re-customization completes.
	WeightsVersion() weights.Version
	// AlternativesVersioned is Alternatives plus the snapshot version the
	// routes were computed under.
	AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error)
}

// refresher is implemented by planners that derive per-version state
// (contraction hierarchies, pruning bounds) from their weight source. The
// Router uses it to start background re-customization on publish and to
// block until every planner serves the latest version.
type refresher interface {
	refreshAsync()
	refreshSync()
}

// sourced exposes the weight source a planner resolves its queries from.
// The Router's response-consistency pass groups a batch's answers by
// source: two planners on the same source must answer one fanned-out
// response under the same snapshot version. Every versioned planner in
// this package implements it.
type sourced interface {
	weightsSource() weights.Source
}

// servingVersioned is the passive counterpart of WeightsVersion: the
// version currently *installed*, read without nudging any rebuild. The
// Router's publish path uses it to decide which cache generations are
// still live — it must never trigger the synchronous rebuild a
// WeightsVersion call can imply for cheap backends.
type servingVersioned interface {
	servingVersion() weights.Version
}

// view is one fully resolved weight version: the snapshot itself plus
// whatever per-version state the planner's tree backend needs. Views are
// immutable once installed; a query resolves exactly one view and uses it
// for everything (trees, plateau costs, admission bounds), so its answer
// is consistent under a single snapshot even while publishes race.
type view struct {
	snap  *weights.Snapshot
	trees TreeSource
	// hier is kept for the TreeCH backend so the next version can be
	// customized — a weights-only rebuild through the ch.Hierarchy seam
	// (witness constituent sums or CCH triangle relaxation, whichever
	// flavor is installed) — instead of contracted from scratch.
	hier ch.Hierarchy
	// pruned is the undecorated elliptic source (when the backend uses
	// one), kept so the next version can share its minimum-speed scan.
	pruned *prunedTrees
}

// provider resolves a weights.Source into views, caching the current one
// behind an atomic pointer. Cheap backends (Dijkstra, pruned) rebuild
// synchronously on the first query that sees a new version; the CH
// backend is double-buffered: the stale view keeps serving while a single
// background goroutine re-customizes the hierarchy, and the pointer swap
// is atomic.
type provider struct {
	g       *graph.Graph
	src     weights.Source
	backend TreeBackend
	hkind   HierarchyKind // which hierarchy flavor backs the CH backends
	// order selects the nested-dissection pipeline of a CCH contraction
	// (geometric or flow-refined separators). Baked into the shared
	// preprocessing at first build; ignored by the witness flavor.
	order OrderKind
	// query selects the CCH point-to-point engine (elimination-tree
	// ascents by default). Carried into the hierarchy's customize hook,
	// so every later re-customization inherits it.
	query QueryEngine
	// customizeWorkers bounds CCH customization's per-level fan-out
	// (0: GOMAXPROCS). Carried into the hierarchy's customize hook, so
	// every later re-customization inherits it.
	customizeWorkers int
	pruned           bool    // elliptic pruning (ignored on hierarchy backends)
	upperBound       float64 // pruning budget
	needTrees        bool    // planners without a tree seam skip tree state
	// wrap optionally decorates each version's tree source (the counting
	// instrumentation of PrunedPlateaus).
	wrap func(TreeSource) TreeSource
	// selCacheBytes is the per-version selection-cache byte budget of the
	// restricted backends (0: DefaultSelectionCacheBytes).
	selCacheBytes int
	// grid is the spatial quantization shared by every weight version's
	// restricted source — geometry only, so it never goes stale. Nil off
	// the restricted backends.
	grid *spatial.Index

	cur      atomic.Pointer[view]
	mu       sync.Mutex  // serializes rebuilds
	inflight atomic.Bool // coalesces concurrent async refreshes
	// lastCustomize is the wall time (ns) of the most recent hierarchy
	// build or customization — the per-swap latency the server logs.
	lastCustomize atomic.Int64
	// selStats is the restricted-sweep observability shared across weight
	// versions (nil off the restricted backends).
	selStats *selectionStats
	// custObs, when set, receives the wall-clock seconds of every
	// hierarchy build/customization (the per-planner histogram installed
	// by Router.SetMetrics).
	custObs atomic.Pointer[metrics.Histogram]

	// Query-engine counters accumulated from superseded hierarchies. Each
	// customized runtime starts its QueryStats at zero (ch.WithElimTree
	// allocates fresh counters), so reading them off the current view alone
	// made ElimQueries/ElimTruncated/ElimAscentNodes drop to zero on every
	// publish swap. Instead the swap folds the outgoing view's counters
	// into acc* and status reports acc + current view. accGen is a seqlock
	// generation (odd while a fold+swap is in flight): hierarchyStatus
	// retries until it observes a stable generation, so it never pairs a
	// pre-fold accumulator with a post-swap (zeroed) runtime — the read
	// that would make the counters go backwards. The fields are atomics
	// only so the racing reads are well-defined; writers already serialize
	// under p.mu.
	accGen         atomic.Uint64
	accQueries     atomic.Uint64
	accTruncated   atomic.Uint64
	accAscentNodes atomic.Uint64
}

// newProvider builds the resolver and synchronously installs the view of
// the source's current snapshot, so construction keeps its pre-refactor
// meaning: a TreeCH planner leaves its constructor with a ready hierarchy.
// The backend/hierarchy/order/worker/bound/cache knobs come from opts; a
// nil src pins the graph's own base weights (note the Commercial planner
// passes its private metric here, not opts.Weights).
func newProvider(g *graph.Graph, src weights.Source, needTrees, pruned bool, wrap func(TreeSource) TreeSource, opts Options) *provider {
	if src == nil {
		src = weights.Pin(g.BaseWeights())
	}
	p := &provider{
		g:                g,
		src:              src,
		backend:          opts.TreeBackend,
		hkind:            opts.Hierarchy,
		order:            opts.Order,
		query:            opts.Query,
		customizeWorkers: opts.CustomizeWorkers,
		pruned:           pruned,
		upperBound:       opts.UpperBound,
		needTrees:        needTrees,
		wrap:             wrap,
		selCacheBytes:    opts.SelectionCacheBytes,
	}
	if needTrees && (opts.TreeBackend == TreeCHRestricted || opts.TreeBackend == TreeCHAuto) {
		p.selStats = &selectionStats{}
		p.grid = spatial.NewIndex(g, 0)
	}
	p.refreshSync()
	return p
}

// view resolves the view a query should run on. When the source has moved
// past the installed view, Dijkstra-style backends rebuild inline (their
// per-version state is a few cheap scans); the CH backend kicks a
// background customization and keeps serving the installed view — the
// double-buffer half of the live-swap design.
func (p *provider) view() *view {
	cur := p.cur.Load()
	snap := p.src.Snapshot()
	if cur != nil && cur.snap.Version() >= snap.Version() {
		return cur
	}
	if cur == nil || !p.backend.usesHierarchy() || !p.needTrees {
		return p.rebuildTo(snap)
	}
	p.refreshAsync()
	return cur
}

// weightsVersion reports the serving view's version without forcing a
// rebuild (but nudging one along if the source has moved).
func (p *provider) weightsVersion() weights.Version {
	return p.view().snap.Version()
}

// servingVersion reports the installed view's version without touching
// the source at all — the publish-path read behind per-generation cache
// eviction.
func (p *provider) servingVersion() weights.Version {
	if v := p.cur.Load(); v != nil {
		return v.snap.Version()
	}
	return 0
}

// hierarchyStatus reports the serving hierarchy flavor and the latency of
// the most recent (re)customization; zero when the backend runs no
// hierarchy.
func (p *provider) hierarchyStatus() HierarchyStatus {
	if !p.backend.usesHierarchy() || !p.needTrees {
		return HierarchyStatus{}
	}
	st := HierarchyStatus{LastCustomize: time.Duration(p.lastCustomize.Load())}
	// Seqlock read of the accumulated + current-runtime query counters:
	// retry while a swap's fold is in flight or completed underneath us,
	// so the sum is always taken against one consistent (acc, view) pair
	// and stays monotone across publishes. Never takes p.mu — a rebuild
	// can hold it for seconds.
	var v *view
	var qs ch.QueryStats
	var accQ, accT, accA uint64
	for {
		g1 := p.accGen.Load()
		if g1&1 != 0 {
			runtime.Gosched()
			continue
		}
		accQ, accT, accA = p.accQueries.Load(), p.accTruncated.Load(), p.accAscentNodes.Load()
		qs = ch.QueryStats{}
		v = p.cur.Load()
		if v != nil && v.hier != nil {
			// Query-engine telemetry is a capability of the runtime, not
			// part of the Hierarchy seam: flavors without it report nothing.
			if qr, ok := v.hier.(interface{ QueryStats() ch.QueryStats }); ok {
				qs = qr.QueryStats()
			}
		}
		if p.accGen.Load() == g1 {
			break
		}
	}
	if v != nil && v.hier != nil {
		st.Kind = v.hier.Kind()
		if p.hkind == HierarchyCCH || p.hkind == HierarchyCCHPerfect {
			st.Order = p.order.String()
		}
	}
	st.LastQueryEngine = qs.Engine
	st.ElimQueries = accQ + qs.Queries
	st.ElimTruncated = accT + qs.Truncated
	st.ElimAscentNodes = accA + qs.AscentNodes
	st.LastAscent = qs.LastAscent
	if p.selStats != nil {
		st.LastSelection = int(p.selStats.lastSelection.Load())
		st.LastRestricted = p.selStats.lastRestricted.Load()
		st.LastSweep = time.Duration(p.selStats.lastSweepNS.Load())
		st.SelectionHits = p.selStats.selHits.Load()
		st.SelectionMisses = p.selStats.selMisses.Load()
		st.SelectionEvictions = p.selStats.selEvictions.Load()
		st.LastUnionCells = int(p.selStats.lastUnion.Load())
		st.LastHit = p.selStats.lastHit.Load()
	}
	return st
}

// setMetrics sinks the provider-relevant observers of a bundle: the
// planner's customization histogram and, on restricted backends, the
// selection-size histogram. A nil bundle clears both.
func (p *provider) setMetrics(cust, sel *metrics.Histogram) {
	p.custObs.Store(cust)
	if p.selStats != nil {
		p.selStats.selObs.Store(sel)
	}
}

// rebuildTo synchronously installs a view for at least the given
// snapshot's version. Concurrent callers coalesce: whoever takes the lock
// first builds, the rest observe the result.
func (p *provider) rebuildTo(snap *weights.Snapshot) *view {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.cur.Load()
	if cur != nil && cur.snap.Version() >= snap.Version() {
		return cur
	}
	v := p.buildView(snap, cur)
	p.installView(v, cur)
	return v
}

// installView swings the view pointer, folding the outgoing runtime's
// query counters into the provider accumulators first so
// hierarchyStatus stays monotone across the swap. The odd/even accGen
// window makes fold+swap atomic for seqlock readers; it spans only this
// function (buildView runs outside it), so readers spin briefly at
// worst. Queries still draining on the old view after the fold add to
// counters nobody reads again — a bounded undercount, never a
// backwards step. Caller holds p.mu.
func (p *provider) installView(v, old *view) {
	p.accGen.Add(1)
	if old != nil && old.hier != nil {
		if qr, ok := old.hier.(interface{ QueryStats() ch.QueryStats }); ok {
			qs := qr.QueryStats()
			p.accQueries.Add(qs.Queries)
			p.accTruncated.Add(qs.Truncated)
			p.accAscentNodes.Add(qs.AscentNodes)
		}
	}
	p.cur.Store(v)
	p.accGen.Add(1)
}

// refreshAsync starts (at most one) background rebuild toward the
// source's latest snapshot. Queries keep resolving the old view until the
// atomic swap; a publish arriving mid-rebuild is picked up by the next
// query's view() call, so the provider converges without a scheduler.
func (p *provider) refreshAsync() {
	if !p.inflight.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.inflight.Store(false)
		p.rebuildTo(p.src.Snapshot())
	}()
}

// refreshSync blocks until the provider serves the source's latest
// snapshot — the Router's barrier for tests and deterministic swaps.
func (p *provider) refreshSync() {
	p.rebuildTo(p.src.Snapshot())
}

// buildView constructs the per-version state. For TreeCH, prev's
// hierarchy (when available) is customized through the ch.Hierarchy seam
// — a weights-only pass on the frozen contraction, constituent sums for
// the witness flavor, the always-exact triangle relaxation for CCH —
// instead of contracting from scratch. For the elliptic backend, prev's
// minimum-speed scan is shared when the snapshot's delta proves it still
// valid.
func (p *provider) buildView(snap *weights.Snapshot, prev *view) *view {
	v := &view{snap: snap}
	if !p.needTrees {
		return v
	}
	w := snap.Weights()
	switch {
	case p.backend.usesHierarchy():
		start := time.Now()
		switch {
		case prev != nil && prev.hier != nil:
			// The customize hook closes over the original Config, so the
			// perfect/worker choices survive every re-customization.
			v.hier = prev.hier.Customize(w)
		case p.hkind == HierarchyCCH || p.hkind == HierarchyCCHPerfect:
			v.hier = cch.BuildWith(p.g, w, cch.Config{
				Order:      cch.OrderConfig{Kind: p.order},
				Workers:    p.customizeWorkers,
				Perfect:    p.hkind == HierarchyCCHPerfect,
				BidirQuery: p.query == QueryBidij,
			})
		default:
			v.hier = ch.Build(p.g, w)
		}
		tb := v.hier.NewTreeBuilder()
		if p.backend == TreeCH {
			v.trees = chTrees{tb: tb}
		} else {
			// A fresh restricted source per version: its selection cache
			// must never survive a weight swap (the selections index the
			// old tree builder's arcs). The spatial grid is geometry-only
			// and shared across versions.
			v.trees = newRestrictedTrees(p.g, v.hier, tb, w, p.upperBound, p.backend == TreeCHAuto, p.selStats, p.grid, p.selCacheBytes)
		}
		elapsed := time.Since(start)
		p.lastCustomize.Store(int64(elapsed))
		if h := p.custObs.Load(); h != nil {
			h.Observe(elapsed.Seconds())
		}
	case p.pruned:
		var prevPruned *prunedTrees
		var prevSnap *weights.Snapshot
		if prev != nil {
			prevPruned, prevSnap = prev.pruned, prev.snap
		}
		v.pruned = newPrunedTreesFrom(p.g, snap, p.upperBound, prevPruned, prevSnap)
		v.trees = v.pruned
	default:
		v.trees = dijkstraTrees{g: p.g, weights: w}
	}
	if p.wrap != nil {
		v.trees = p.wrap(v.trees)
	}
	return v
}
