package core

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
	"repro/internal/weights"
)

// TestQueryStatsMonotoneAcrossPublishes pins the satellite fix for the
// counters that lied across publishes: each customized runtime starts
// its QueryStats at zero, so reading them off the current view alone
// made ElimQueries/ElimTruncated/ElimAscentNodes collapse on every view
// swap. The provider now folds the outgoing runtime's counters into its
// own accumulators at swap time; this test publishes mid-query-stream
// across ≥3 swaps and asserts the reported counters only ever grow and
// account for every query issued.
func TestQueryStatsMonotoneAcrossPublishes(t *testing.T) {
	g := testCity(t)
	st := weights.NewStore(g.BaseWeights())
	pl := NewPlateaus(g, Options{
		Weights:     st,
		TreeBackend: TreeCHRestricted,
		Hierarchy:   HierarchyCCH,
		Query:       QueryElimTree,
	})

	pairs := [][2]int{{0, 143}, {13, 130}, {5, 138}, {60, 83}, {2, 141}}
	query := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			p := pairs[i%len(pairs)]
			if _, err := pl.Alternatives(graph.NodeID(p[0]), graph.NodeID(p[1])); err != nil {
				t.Fatalf("query %v: %v", p, err)
			}
		}
	}

	query(len(pairs))
	prev := pl.HierarchyStatus()
	if prev.LastQueryEngine != "elimtree" {
		t.Skipf("elimination-tree engine not serving (engine %q)", prev.LastQueryEngine)
	}
	if prev.ElimQueries == 0 {
		t.Fatalf("no elim queries counted before first swap")
	}

	seq := traffic.NewSequence(g, traffic.DefaultModel(11), 0)
	const swaps = 4
	for i := 0; i < swaps; i++ {
		seq.Advance(st)
		pl.prov.refreshSync()
		if got := pl.prov.servingVersion(); got != st.Version() {
			t.Fatalf("swap %d: serving version %d, want %d", i, got, st.Version())
		}
		query(len(pairs))
		cur := pl.HierarchyStatus()
		if cur.ElimQueries < prev.ElimQueries || cur.ElimTruncated < prev.ElimTruncated || cur.ElimAscentNodes < prev.ElimAscentNodes {
			t.Fatalf("swap %d: counters went backwards: %+v -> %+v", i, prev, cur)
		}
		if cur.ElimQueries == prev.ElimQueries {
			t.Fatalf("swap %d: queries after the swap not counted (stuck at %d)", i, cur.ElimQueries)
		}
		prev = cur
	}
	// Every query ran ≥1 elimination-tree distance computation, and none
	// may have been dropped by the folds: with 5 pairs queried before the
	// first swap and after each of 4 swaps, the final count must cover at
	// least those 25 planner calls.
	if prev.ElimQueries < uint64(len(pairs)*(swaps+1)) {
		t.Fatalf("final ElimQueries = %d, want ≥ %d (folds dropped queries)", prev.ElimQueries, len(pairs)*(swaps+1))
	}
}

// TestQueryStatsMonotoneUnderRacingSwaps is the same pin under -race and
// live concurrency: a query stream, a publish/refresh stream, and a
// status reader run together; every status read must observe
// monotonically non-decreasing counters.
func TestQueryStatsMonotoneUnderRacingSwaps(t *testing.T) {
	g := testCity(t)
	st := weights.NewStore(g.BaseWeights())
	pl := NewPlateaus(g, Options{
		Weights:     st,
		TreeBackend: TreeCHRestricted,
		Hierarchy:   HierarchyCCH,
		Query:       QueryElimTree,
	})
	if pl.HierarchyStatus().LastQueryEngine == "bidij" {
		t.Skip("elimination-tree engine not serving")
	}
	// Seed some counted queries before the racing phase so the monotone
	// floor is non-trivial even if the swap stream finishes first.
	for _, p := range [][2]int{{0, 143}, {13, 130}} {
		if _, err := pl.Alternatives(graph.NodeID(p[0]), graph.NodeID(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	floor := pl.HierarchyStatus()
	if floor.ElimQueries == 0 {
		t.Fatalf("seed queries not counted")
	}

	seq := traffic.NewSequence(g, traffic.DefaultModel(13), 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // query stream
		defer wg.Done()
		pairs := [][2]int{{0, 143}, {13, 130}, {60, 83}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := pairs[i%len(pairs)]
			pl.Alternatives(graph.NodeID(p[0]), graph.NodeID(p[1]))
		}
	}()
	wg.Add(1)
	go func() { // publish + swap stream: ≥3 swaps, synchronously installed
		defer wg.Done()
		for i := 0; i < 6; i++ {
			seq.Advance(st)
			pl.prov.refreshSync()
		}
		close(stop)
	}()

	last := floor
	for reads := 0; ; reads++ {
		select {
		case <-stop:
			wg.Wait()
			final := pl.HierarchyStatus()
			if final.ElimQueries < last.ElimQueries || final.ElimQueries < floor.ElimQueries {
				t.Fatalf("final counters below floor: %+v (floor %+v, last %+v)", final, floor, last)
			}
			return
		default:
		}
		cur := pl.HierarchyStatus()
		if cur.ElimQueries < last.ElimQueries || cur.ElimTruncated < last.ElimTruncated || cur.ElimAscentNodes < last.ElimAscentNodes {
			t.Fatalf("read %d: counters went backwards: %+v -> %+v", reads, last, cur)
		}
		last = cur
	}
}
