package core

import (
	"container/heap"
	"math"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/sp"
	"repro/internal/weights"
)

// Yen implements Yen's classic k-shortest loopless paths algorithm
// (Management Science, 1971). The paper's related-work section uses it as
// the cautionary baseline: the k shortest paths of a road network are
// nearly identical to each other, so Yen applied trivially does not
// produce useful alternatives. It is included to reproduce that
// observation (its route sets score far higher Sim(T) than any of the
// four studied techniques) and as a correctness oracle in tests.
type Yen struct {
	g    *graph.Graph
	src  weights.Source
	opts Options
}

// NewYen returns a Yen planner over g planning on Options.Weights (nil
// pins the graph's base travel-time weights).
func NewYen(g *graph.Graph, opts Options) *Yen {
	o := opts.withDefaults()
	return &Yen{g: g, src: resolveSource(g, o.Weights), opts: o}
}

// Name implements Planner.
func (y *Yen) Name() string { return "Yen" }

// WeightsVersion implements VersionedPlanner.
func (y *Yen) WeightsVersion() weights.Version { return y.src.Snapshot().Version() }

func (y *Yen) weightsSource() weights.Source { return y.src }

// AlternativesVersioned implements VersionedPlanner: the snapshot is
// resolved exactly once, so the reported version always matches the
// weights the routes were computed under, even when a publish races.
func (y *Yen) AlternativesVersioned(s, t graph.NodeID) ([]path.Path, weights.Version, error) {
	snap := y.src.Snapshot()
	routes, err := y.alternatives(snap.Weights(), s, t)
	return routes, snap.Version(), err
}

// candidateHeap orders candidate paths by travel time.
type candidateHeap []path.Path

func (h candidateHeap) Len() int           { return len(h) }
func (h candidateHeap) Less(i, j int) bool { return h[i].TimeS < h[j].TimeS }
func (h candidateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)        { *h = append(*h, x.(path.Path)) }
func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Alternatives implements Planner. It returns the K shortest loopless
// paths in ascending travel-time order.
func (y *Yen) Alternatives(s, t graph.NodeID) ([]path.Path, error) {
	routes, _, err := y.AlternativesVersioned(s, t)
	return routes, err
}

func (y *Yen) alternatives(base []float64, s, t graph.NodeID) ([]path.Path, error) {
	if err := validateQuery(y.g, s, t); err != nil {
		return nil, err
	}
	if s == t {
		return trivialQuery(y.g, base, s), nil
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	first, d := sp.ShortestPathInto(ws, y.g, base, s, t)
	if first == nil || math.IsInf(d, 1) {
		return nil, ErrNoRoute
	}
	result := []path.Path{path.MustNew(y.g, base, s, append([]graph.EdgeID(nil), first...))}
	cands := &candidateHeap{}

	for len(result) < y.opts.K {
		prev := result[len(result)-1]
		// Spur from every node of the previous path except the target.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootEdges := prev.Edges[:i]

			// Ban edges that would recreate a known path with this root,
			// and ban revisiting root nodes, by inflating weights.
			work := make([]float64, len(base))
			copy(work, base)
			for _, r := range result {
				if len(r.Edges) > i && sharesPrefix(r.Edges, rootEdges, i) {
					work[r.Edges[i]] = math.Inf(1)
				}
			}
			blocked := make(map[graph.NodeID]bool, i)
			for _, v := range prev.Nodes[:i] {
				blocked[v] = true
			}
			for v := range blocked {
				for _, e := range y.g.OutEdges(v) {
					work[e] = math.Inf(1)
				}
				for _, e := range y.g.InEdges(v) {
					work[e] = math.Inf(1)
				}
			}

			spurEdges, spurCost := sp.ShortestPathInto(ws, y.g, work, spurNode, t)
			if spurEdges == nil || math.IsInf(spurCost, 1) {
				continue
			}
			total := make([]graph.EdgeID, 0, i+len(spurEdges))
			total = append(total, rootEdges...)
			total = append(total, spurEdges...)
			cand, err := path.New(y.g, base, s, total)
			if err != nil || math.IsInf(cand.TimeS, 1) {
				continue
			}
			known := false
			for _, r := range result {
				if path.Equal(cand, r) {
					known = true
					break
				}
			}
			if !known {
				heap.Push(cands, cand)
			}
		}
		// Pop the best unseen candidate.
		var next path.Path
		found := false
		for cands.Len() > 0 {
			c := heap.Pop(cands).(path.Path)
			dup := false
			for _, r := range result {
				if path.Equal(c, r) {
					dup = true
					break
				}
			}
			if !dup {
				next, found = c, true
				break
			}
		}
		if !found {
			break
		}
		result = append(result, next)
	}
	return result, nil
}

func sharesPrefix(edges, prefix []graph.EdgeID, n int) bool {
	if len(edges) < n || len(prefix) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if edges[i] != prefix[i] {
			return false
		}
	}
	return true
}
