package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/path"
	"repro/internal/simstudy"
	"repro/internal/stats"
)

// Ablation quantifies the design choices the paper discusses but holds
// fixed in the study: the penalty factor (1.4, from Bader et al.), the
// dissimilarity threshold θ (0.5), and the §IV-C refinements (similarity
// cutoff, local-optimality filter) that were deliberately not applied.
// For each configuration it reports, over a shared query sample: the mean
// number of routes, mean Sim(T), mean stretch of the slowest reported
// route, and the fraction of route sets containing a near-duplicate pair
// (similarity > 0.8).

// AblationRow is one configuration's aggregate quality measures.
type AblationRow struct {
	Name           string
	MeanRoutes     float64
	MeanSimT       float64
	MeanMaxStretch float64
	NearDupFrac    float64
}

// AblationConfig names a planner factory to evaluate.
type AblationConfig struct {
	Name string
	Make func() core.Planner
}

// DefaultAblationConfigs returns the sweep evaluated by cmd/userstudy
// -ablation: the studied configuration of each technique plus the
// variations the paper calls out.
func DefaultAblationConfigs(c *City) []AblationConfig {
	g := c.Graph
	return []AblationConfig{
		{"Penalty (paper, factor 1.4)", func() core.Planner { return core.NewPenalty(g, core.Options{}) }},
		{"Penalty factor 1.1", func() core.Planner { return core.NewPenalty(g, core.Options{PenaltyFactor: 1.1}) }},
		{"Penalty factor 2.0", func() core.Planner { return core.NewPenalty(g, core.Options{PenaltyFactor: 2.0}) }},
		{"Penalty + sim cutoff 0.6", func() core.Planner { return core.NewPenalty(g, core.Options{SimilarityCutoff: 0.6}) }},
		{"Penalty + local-opt filter", func() core.Planner {
			return core.NewPenalty(g, core.Options{LocalOptimalityWindow: 0.5})
		}},
		{"Plateaus (paper, UB 1.4)", func() core.Planner { return core.NewPlateaus(g, core.Options{}) }},
		{"Plateaus UB 1.2", func() core.Planner { return core.NewPlateaus(g, core.Options{UpperBound: 1.2}) }},
		{"Plateaus + sim cutoff 0.6", func() core.Planner { return core.NewPlateaus(g, core.Options{SimilarityCutoff: 0.6}) }},
		{"Plateaus pruned trees (§II-B)", func() core.Planner { return core.NewPrunedPlateaus(g, core.Options{}) }},
		{"Plateaus CH trees (PHAST)", func() core.Planner {
			return core.NewPlateaus(g, core.Options{TreeBackend: core.TreeCH})
		}},
		{"Plateaus CCH trees (customizable)", func() core.Planner {
			return core.NewPlateaus(g, core.Options{TreeBackend: core.TreeCH, Hierarchy: core.HierarchyCCH})
		}},
		{"Plateaus RPHAST trees (§II-B)", func() core.Planner {
			return core.NewPlateaus(g, core.Options{TreeBackend: core.TreeCHRestricted})
		}},
		{"Plateaus RPHAST auto cutover", func() core.Planner {
			return core.NewPlateaus(g, core.Options{TreeBackend: core.TreeCHAuto})
		}},
		{"GMaps (pruned trees, default)", func() core.Planner { return core.NewCommercial(g, c.Traffic, core.Options{}) }},
		{"GMaps full trees", func() core.Planner {
			return core.NewCommercial(g, c.Traffic, core.Options{DisablePrunedTrees: true})
		}},
		{"GMaps CH trees (PHAST)", func() core.Planner {
			return core.NewCommercial(g, c.Traffic, core.Options{TreeBackend: core.TreeCH})
		}},
		{"GMaps CCH trees (customizable)", func() core.Planner {
			return core.NewCommercial(g, c.Traffic, core.Options{TreeBackend: core.TreeCH, Hierarchy: core.HierarchyCCH})
		}},
		{"GMaps RPHAST trees (restricted)", func() core.Planner {
			return core.NewCommercial(g, c.Traffic, core.Options{TreeBackend: core.TreeCHRestricted})
		}},
		{"Dissimilarity (paper, θ 0.5)", func() core.Planner { return core.NewDissimilarity(g, core.Options{}) }},
		{"Dissimilarity θ 0.3", func() core.Planner { return core.NewDissimilarity(g, core.Options{Theta: 0.3}) }},
		{"Dissimilarity θ 0.7", func() core.Planner { return core.NewDissimilarity(g, core.Options{Theta: 0.7}) }},
		{"ESX θ 0.5 (related work)", func() core.Planner { return core.NewESX(g, core.Options{}) }},
		{"Pareto skyline (related work)", func() core.Planner { return core.NewPareto(g, core.Options{}) }},
		{"Yen k-shortest (baseline)", func() core.Planner { return core.NewYen(g, core.Options{}) }},
	}
}

// RunAblation evaluates every configuration on numQueries medium-band
// queries of the city.
func (c *City) RunAblation(configs []AblationConfig, numQueries int, seed int64) ([]AblationRow, error) {
	rng := rand.New(rand.NewSource(seed))
	queries := make([]Query, 0, numQueries)
	for len(queries) < numQueries {
		q, ok := c.SampleQuery(rng, simstudy.Medium)
		if !ok {
			return nil, fmt.Errorf("eval: ablation cannot sample medium queries on %s", c.Profile.Name)
		}
		queries = append(queries, q)
	}
	rows := make([]AblationRow, 0, len(configs))
	for _, cfg := range configs {
		pl := cfg.Make()
		var nRoutes, simT, maxStretch []float64
		nearDup := 0
		for _, q := range queries {
			routes, err := pl.Alternatives(q.S, q.T)
			if err != nil {
				continue
			}
			nRoutes = append(nRoutes, float64(len(routes)))
			st := path.SimT(c.Graph, routes)
			simT = append(simT, st)
			worst := 1.0
			for _, r := range routes {
				if s := r.TimeS / q.FastestS; s > worst {
					worst = s
				}
			}
			maxStretch = append(maxStretch, worst)
			if st > 0.8 {
				nearDup++
			}
		}
		row := AblationRow{Name: cfg.Name}
		if len(nRoutes) > 0 {
			row.MeanRoutes = stats.Mean(nRoutes)
			row.MeanSimT = stats.Mean(simT)
			row.MeanMaxStretch = stats.Mean(maxStretch)
			row.NearDupFrac = float64(nearDup) / float64(len(nRoutes))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(city string, rows []AblationRow, numQueries int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ABLATION (%s, %d medium-band queries): effect of the studied parameters and the §IV-C refinements\n",
		city, numQueries)
	fmt.Fprintf(&sb, "%-32s %-8s %-10s %-12s %s\n", "configuration", "routes", "Sim(T)", "max stretch", "near-dup sets")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-32s %-8.2f %-10.3f %-12.3f %.0f%%\n",
			r.Name, r.MeanRoutes, r.MeanSimT, r.MeanMaxStretch, r.NearDupFrac*100)
	}
	return sb.String()
}
