// Package eval is the experiment harness: it assembles the per-city study
// setup (network, planners, traffic data), samples query workloads
// stratified by the paper's route-length bands, replays the 520-response
// study schedule through the simulated raters, and formats Table I
// (ratings + ANOVA) and Table II (route similarity) in the paper's layout.
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/simstudy"
	"repro/internal/sp"
	"repro/internal/spatial"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/weights"
)

// NumApproaches is the number of compared techniques (Table I columns).
const NumApproaches = 4

// City bundles everything needed to answer study queries for one city:
// the network, the versioned weight stores, the planner set, and the
// Router that serves them under live traffic.
type City struct {
	Profile citygen.Profile
	Graph   *graph.Graph
	Index   *spatial.Index
	// Public is the OSM-derived weight vector (displayed travel times),
	// as initially published to PublicStore.
	Public []float64
	// Traffic is the initial real-traffic weight vector (rush-hour step
	// 0): the commercial provider plans on the TrafficStore this vector
	// seeds, and resident raters partially judge by the store's current
	// snapshot (TrafficNow).
	Traffic []float64
	// PublicStore versions the public OSM metric (road closures publish
	// here); Plateaus, Dissimilarity and Penalty plan on it.
	PublicStore *weights.Store
	// TrafficStore versions the provider's private traffic metric; the
	// Commercial planner plans on it and Seq publishes into it.
	TrafficStore *weights.Store
	// Seq is the deterministic rush-hour producer feeding TrafficStore.
	Seq *traffic.Sequence
	// Planners in Table I column order: GMaps, Plateaus, Dissimilarity,
	// Penalty.
	Planners [NumApproaches]core.Planner
	// Router is the serving layer: it owns the engine (with its versioned
	// result cache), subscribes to both stores, and swaps planner weight
	// versions atomically on publish. A nil Router falls back to a shared
	// process-wide engine, so hand-assembled Cities keep working.
	Router *core.Router
	// Matrix is the many-to-many engine behind POST /api/matrix and the
	// matrix ablations. It shares the Plateaus planner's weight provider
	// (same hierarchy, same versions, same selection cache), so matrix
	// responses and point-to-point answers can never disagree on the
	// serving snapshot. Nil on hand-assembled Cities.
	Matrix *core.MatrixEngine
	// Ingest is the telemetry ingest path behind POST /api/observations:
	// streamed per-edge observations (observed speeds, incident closures)
	// publish into TrafficStore and decay back to the step-0 baseline.
	// It shares the store with Seq — the store's Update serialization
	// keeps the two producers' versions gapless. Nil on hand-assembled
	// Cities.
	Ingest *telemetry.Ingestor
}

// defaultEngine serves Cities assembled without NewCity.
var defaultEngine = core.NewEngine(0)

func (c *City) engine() *core.Engine {
	if c.Router != nil {
		return c.Router.Engine()
	}
	return defaultEngine
}

// SetEngine installs a shared engine (a multi-city deployment pools its
// workers this way) while keeping the Router's publish subscriptions.
// The matrix engine follows, so its sweep fan-out draws from the same
// worker pool as the planners.
func (c *City) SetEngine(e *core.Engine) {
	if c.Router != nil {
		c.Router.SetEngine(e)
	}
	if c.Matrix != nil {
		if pl, ok := c.Planners[1].(*core.Plateaus); ok {
			c.Matrix = core.NewMatrixEngineFor(pl, e)
		}
	}
}

// NewCity generates the city network and constructs the four planners
// with the paper's default options. seed controls both the synthetic
// network and the traffic field.
func NewCity(profile citygen.Profile, seed int64) (*City, error) {
	return NewCityOpts(profile, seed, core.Options{})
}

// NewCityOpts is NewCity with explicit planner options — the hook for
// deployment knobs like Options.TreeBackend (Dijkstra vs CH trees in the
// choice-routing planners). Options.Weights is overridden per planner:
// the public store for the three OSM-metric approaches, the traffic
// store for the commercial stand-in.
func NewCityOpts(profile citygen.Profile, seed int64, opts core.Options) (*City, error) {
	g, err := profile.Generate(seed)
	if err != nil {
		return nil, err
	}
	seq := traffic.NewSequence(g, traffic.DefaultModel(uint64(seed)*2654435761+1), 0)
	tw := seq.WeightsAt(0)
	c := &City{
		Profile:      profile,
		Graph:        g,
		Index:        spatial.NewIndex(g, 16),
		Public:       g.BaseWeights(),
		Traffic:      tw,
		PublicStore:  weights.NewStore(g.BaseWeights()),
		TrafficStore: weights.NewStore(tw),
		Seq:          seq,
	}
	popts := opts
	popts.Weights = c.PublicStore
	topts := opts
	topts.Weights = c.TrafficStore
	plateaus := core.NewPlateaus(g, popts)
	c.Planners = [NumApproaches]core.Planner{
		core.NewCommercial(g, nil, topts),
		plateaus,
		core.NewDissimilarity(g, popts),
		core.NewPenalty(g, popts),
	}
	c.Router = core.NewRouter(core.NewEngine(0), c.Planners[:], c.PublicStore, c.TrafficStore)
	c.Matrix = core.NewMatrixEngineFor(plateaus, c.Router.Engine())
	c.Ingest = telemetry.NewIngestor(c.TrafficStore, tw, telemetry.Config{})
	return c, nil
}

// TrafficNow returns the provider's current private weight snapshot —
// what resident raters judge against under live traffic. It falls back
// to the initial Traffic vector for hand-assembled Cities.
func (c *City) TrafficNow() []float64 {
	if c.TrafficStore != nil {
		return c.TrafficStore.Latest().Weights()
	}
	return c.Traffic
}

// AdvanceTraffic produces the next rush-hour step and publishes it to the
// traffic store: the engine cache is invalidated, the commercial
// planner's hierarchy re-customizes in the background, and subsequent
// queries plan on the new snapshot.
func (c *City) AdvanceTraffic() *weights.Snapshot {
	return c.Seq.Advance(c.TrafficStore)
}

// Query is one s–t study query with its fastest (public) travel time and
// the route-length band it belongs to.
type Query struct {
	S, T       graph.NodeID
	FastestS   float64 // seconds, public weights
	FastestMin float64
	Band       simstudy.Band
}

// SampleQuery draws a uniform query whose fastest travel time falls in the
// given band for this city. It returns ok=false if no such pair was found
// within the attempt budget (which indicates a band unreachable on this
// network).
func (c *City) SampleQuery(rng *rand.Rand, band simstudy.Band) (Query, bool) {
	lo, hi := simstudy.BandBounds(c.Profile.Name, band)
	const maxAttempts = 40
	ws := sp.GetWorkspace()
	defer ws.Release()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		s := graph.NodeID(rng.Intn(c.Graph.NumNodes()))
		tree := sp.BuildTreeInto(ws, c.Graph, c.Public, s, sp.Forward)
		var candidates []graph.NodeID
		for v := graph.NodeID(0); int(v) < c.Graph.NumNodes(); v++ {
			if v == s || !tree.Reached(v) {
				continue
			}
			min := tree.Dist[v] / 60
			if min > lo && min <= hi {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		t := candidates[rng.Intn(len(candidates))]
		return Query{
			S:          s,
			T:          t,
			FastestS:   tree.Dist[t],
			FastestMin: tree.Dist[t] / 60,
			Band:       band,
		}, true
	}
	return Query{}, false
}

// RouteSets holds the four approaches' answers to one query, plus the
// weight snapshot version each answer was computed under (0 for planners
// without version tracking).
type RouteSets struct {
	Query
	Sets     [NumApproaches][]path.Path
	Versions [NumApproaches]weights.Version
}

// RunPlanners answers q with all four approaches, fanned out concurrently
// over the city's Engine. A planner error other than "no route" is
// returned; an empty set is recorded if a planner finds nothing (which
// cannot happen for queries sampled from the public weights, but is
// tolerated defensively).
func (c *City) RunPlanners(q Query) (RouteSets, error) {
	rs := RouteSets{Query: q}
	results := c.engine().Alternatives(c.Planners[:], q.S, q.T)
	for i, r := range results {
		rs.Versions[i] = r.Version
		if r.Err == core.ErrNoRoute {
			continue
		}
		if r.Err != nil {
			return rs, fmt.Errorf("eval: %s on %d->%d: %w", c.Planners[i].Name(), q.S, q.T, r.Err)
		}
		rs.Sets[i] = r.Routes
	}
	return rs, nil
}

// RunPlannersBatch answers many queries through the engine at once,
// keeping every worker busy across query boundaries — the shape of a
// heavily loaded deployment. Results are in query order.
func (c *City) RunPlannersBatch(qs []Query) ([]RouteSets, error) {
	jobs := make([]core.Job, 0, len(qs)*NumApproaches)
	for _, q := range qs {
		for _, pl := range c.Planners {
			jobs = append(jobs, core.Job{Planner: pl, S: q.S, T: q.T})
		}
	}
	results := c.engine().AlternativesBatch(jobs)
	out := make([]RouteSets, len(qs))
	for qi := range qs {
		out[qi].Query = qs[qi]
		for i := 0; i < NumApproaches; i++ {
			r := results[qi*NumApproaches+i]
			out[qi].Versions[i] = r.Version
			if r.Err == core.ErrNoRoute {
				continue
			}
			if r.Err != nil {
				return nil, fmt.Errorf("eval: %s on %d->%d: %w", c.Planners[i].Name(), qs[qi].S, qs[qi].T, r.Err)
			}
			out[qi].Sets[i] = r.Routes
		}
	}
	return out, nil
}

// FastestPrivate returns the fastest s–t travel time under the traffic
// weights, for feature extraction.
func (c *City) FastestPrivate(s, t graph.NodeID) float64 {
	ws := sp.GetWorkspace()
	defer ws.Release()
	_, d := sp.BidirectionalShortestPathInto(ws, c.Graph, c.TrafficNow(), s, t)
	return d
}

// Record is one study response with the objective measurements Table II
// needs alongside the ratings.
type Record struct {
	simstudy.Response
	// Sim is Eq. (1) Sim(T) per approach for this query's route sets.
	Sim [NumApproaches]float64
	// NumRoutes is the number of routes each approach reported.
	NumRoutes [NumApproaches]int
}

// RunCell generates n responses for one schedule cell on this city.
func (c *City) RunCell(cell simstudy.Cell, n int, params simstudy.RaterParams, rng *rand.Rand) ([]Record, error) {
	out := make([]Record, 0, n)
	for len(out) < n {
		q, ok := c.SampleQuery(rng, cell.Band)
		if !ok {
			return nil, fmt.Errorf("eval: %s: no %s-band queries exist on this network", c.Profile.Name, cell.Band)
		}
		rs, err := c.RunPlanners(q)
		if err != nil {
			return nil, err
		}
		fastPriv := c.FastestPrivate(q.S, q.T)
		if math.IsInf(fastPriv, 1) {
			continue // not mutually reachable under traffic weights; resample
		}
		rater := simstudy.NewRater(rng, cell.Resident, params)
		rec := Record{
			Response: simstudy.Response{
				Cell:       cell,
				FastestMin: q.FastestMin,
			},
		}
		var feats [NumApproaches]simstudy.Features
		for i := 0; i < NumApproaches; i++ {
			feats[i] = simstudy.ExtractFeatures(c.Graph, c.TrafficNow(), rs.Sets[i], q.FastestS, fastPriv)
			rec.Ratings[i] = rater.Rate(feats[i])
			rec.Sim[i] = path.SimT(c.Graph, rs.Sets[i])
			rec.NumRoutes[i] = len(rs.Sets[i])
		}
		rec.Comment = simstudy.Comment(rng, feats)
		out = append(out, rec)
	}
	return out, nil
}
