package eval

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/simstudy"
	"repro/internal/stats"
)

// sharedStudy is built once; city generation plus planner setup is the
// expensive part and is read-only across tests.
var sharedStudy *Study

func getStudy(t testing.TB) *Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := NewStudy(2022)
		if err != nil {
			t.Fatalf("NewStudy: %v", err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func TestNewStudyHasThreeCities(t *testing.T) {
	s := getStudy(t)
	if len(s.Cities) != 3 {
		t.Fatalf("cities = %d, want 3", len(s.Cities))
	}
	want := []string{"Melbourne", "Dhaka", "Copenhagen"}
	got := s.CityNames()
	for i, name := range want {
		if got[i] != name {
			t.Errorf("CityNames[%d] = %s, want %s", i, got[i], name)
		}
		if s.Cities[name] == nil {
			t.Errorf("city %s missing", name)
		}
	}
}

func TestSampleQueryRespectsBands(t *testing.T) {
	s := getStudy(t)
	for _, cityName := range s.CityNames() {
		city := s.Cities[cityName]
		rng := rand.New(rand.NewSource(7))
		for b := simstudy.Small; b < simstudy.NumBands; b++ {
			q, ok := city.SampleQuery(rng, b)
			if !ok {
				t.Fatalf("%s: cannot sample %s-band query — network extent wrong", cityName, b)
			}
			lo, hi := simstudy.BandBounds(cityName, b)
			if q.FastestMin <= lo || q.FastestMin > hi {
				t.Errorf("%s %s: fastest %.2f min outside (%g, %g]", cityName, b, q.FastestMin, lo, hi)
			}
			if got, ok2 := simstudy.BandOf(cityName, q.FastestMin); !ok2 || got != b {
				t.Errorf("%s: BandOf(%.2f) = %v,%v want %v", cityName, q.FastestMin, got, ok2, b)
			}
		}
	}
}

func TestRunPlannersProducesSets(t *testing.T) {
	s := getStudy(t)
	city := s.Cities["Melbourne"]
	rng := rand.New(rand.NewSource(3))
	q, ok := city.SampleQuery(rng, simstudy.Medium)
	if !ok {
		t.Fatal("no medium query")
	}
	rs, err := city.RunPlanners(q)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range rs.Sets {
		if len(set) == 0 {
			t.Errorf("approach %d returned no routes", i)
		}
		if len(set) > 3 {
			t.Errorf("approach %d returned %d routes, want ≤3", i, len(set))
		}
		for _, r := range set {
			if r.Source() != q.S || r.Target() != q.T {
				t.Errorf("approach %d route endpoints wrong", i)
			}
		}
	}
}

func TestStudyRunMatchesSchedule(t *testing.T) {
	s := getStudy(t)
	sched := simstudy.ScaledSchedule(0.04) // 1-3 responses per cell
	if err := s.Run(sched, simstudy.DefaultRaterParams(), 5); err != nil {
		t.Fatal(err)
	}
	if got, want := len(s.Records), simstudy.TotalResponses(sched); got != want {
		t.Fatalf("records = %d, want %d", got, want)
	}
	// Per-cell counts must match exactly.
	counts := map[simstudy.Cell]int{}
	for _, r := range s.Records {
		counts[r.Cell]++
	}
	for _, cc := range sched {
		if counts[cc.Cell] != cc.N {
			t.Errorf("cell %+v: %d records, want %d", cc.Cell, counts[cc.Cell], cc.N)
		}
	}
	for _, r := range s.Records {
		for a := 0; a < NumApproaches; a++ {
			if r.Ratings[a] < 1 || r.Ratings[a] > 5 {
				t.Fatalf("rating %d out of range", r.Ratings[a])
			}
			if r.Sim[a] < 0 || r.Sim[a] > 1 {
				t.Fatalf("Sim %f out of range", r.Sim[a])
			}
			if r.NumRoutes[a] < 0 || r.NumRoutes[a] > 3 {
				t.Fatalf("NumRoutes %d out of range", r.NumRoutes[a])
			}
		}
		if r.FastestMin <= 0 || r.FastestMin > 80 {
			t.Fatalf("fastest %.2f min out of study range", r.FastestMin)
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	s := getStudy(t)
	sched := simstudy.ScaledSchedule(0.02)
	params := simstudy.DefaultRaterParams()
	if err := s.Run(sched, params, 9); err != nil {
		t.Fatal(err)
	}
	first := append([]Record(nil), s.Records...)
	if err := s.Run(sched, params, 9); err != nil {
		t.Fatal(err)
	}
	if len(first) != len(s.Records) {
		t.Fatal("rerun changed record count")
	}
	for i := range first {
		if first[i] != s.Records[i] {
			t.Fatalf("record %d differs between identical runs:\n%+v\n%+v", i, first[i], s.Records[i])
		}
	}
}

func TestDissimilaritySimAlwaysBelowTheta(t *testing.T) {
	s := getStudy(t)
	sched := simstudy.ScaledSchedule(0.04)
	if err := s.Run(sched, simstudy.DefaultRaterParams(), 11); err != nil {
		t.Fatal(err)
	}
	const dissimIdx = 2
	for _, r := range s.Records {
		if r.NumRoutes[dissimIdx] >= 2 && r.Sim[dissimIdx] >= 0.5 {
			t.Errorf("Dissimilarity Sim(T) = %.3f ≥ θ=0.5 in %s", r.Sim[dissimIdx], r.City)
		}
	}
}

func TestTablesRender(t *testing.T) {
	s := getStudy(t)
	sched := simstudy.ScaledSchedule(0.04)
	if err := s.Run(sched, simstudy.DefaultRaterParams(), 13); err != nil {
		t.Fatal(err)
	}
	t1 := FormatTableI(s.Records, s.CityNames())
	for _, want := range []string{
		"TABLE I", "All Cities", "Melbourne", "Dhaka", "Copenhagen",
		"Google Maps", "Plateaus", "Dissimilarity", "Penalty",
		"All responses", "Small Routes (0, 10] (mins)",
		"Medium Routes (10, 20] (mins)", // Dhaka's split
		"Residents", "Non-resd.",
	} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := FormatTableII(s.Records, s.CityNames())
	for _, want := range []string{"TABLE II", "Sim(T)", "All Cities", "Long Routes"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	an := ANOVAReport(s.Records, s.CityNames())
	for _, want := range []string{"ANOVA", "Melbourne (all)", "Dhaka (residents)", "F(3, "} {
		if !strings.Contains(an, want) {
			t.Errorf("ANOVA report missing %q", want)
		}
	}
}

func TestRatingsLandInPaperRegime(t *testing.T) {
	// With a moderately sized sample, per-approach means across all
	// records must fall in Table I's observed range.
	s := getStudy(t)
	sched := simstudy.ScaledSchedule(0.15)
	if err := s.Run(sched, simstudy.DefaultRaterParams(), 17); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < NumApproaches; a++ {
		xs := RatingsOf(s.Records, a)
		m, sd := stats.Mean(xs), stats.StdDev(xs)
		if m < 2.7 || m > 4.1 {
			t.Errorf("approach %s mean %.2f outside plausible range", simstudy.ApproachNames[a], m)
		}
		if sd < 0.9 || sd > 1.6 {
			t.Errorf("approach %s sd %.2f outside plausible range", simstudy.ApproachNames[a], sd)
		}
	}
}

func TestScheduleUnknownCityErrors(t *testing.T) {
	s := getStudy(t)
	bad := []simstudy.CellCount{{Cell: simstudy.Cell{City: "Atlantis", Resident: true, Band: simstudy.Small}, N: 1}}
	if err := s.Run(bad, simstudy.DefaultRaterParams(), 1); err == nil {
		t.Error("unknown city in schedule should error")
	}
}

func TestAblation(t *testing.T) {
	s := getStudy(t)
	city := s.Cities["Melbourne"]
	configs := DefaultAblationConfigs(city)
	rows, err := city.RunAblation(configs, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(configs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(configs))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.MeanRoutes <= 0 {
			t.Errorf("%s: no routes", r.Name)
		}
		if r.MeanSimT < 0 || r.MeanSimT > 1 {
			t.Errorf("%s: Sim(T) %f out of range", r.Name, r.MeanSimT)
		}
		if r.MeanMaxStretch < 1-1e-9 {
			t.Errorf("%s: max stretch %f below 1", r.Name, r.MeanMaxStretch)
		}
		byName[r.Name] = r
	}
	// Directional checks that make the ablation meaningful:
	// weaker penalties give more similar routes; Yen is the most similar.
	if byName["Penalty factor 1.1"].MeanSimT <= byName["Penalty factor 2.0"].MeanSimT {
		t.Error("penalty 1.1 should yield more similar routes than 2.0")
	}
	if byName["Yen k-shortest (baseline)"].MeanSimT <= byName["Dissimilarity (paper, θ 0.5)"].MeanSimT {
		t.Error("Yen should be far more similar than Dissimilarity")
	}
	// A small θ is a loose dissimilarity demand (more similarity allowed);
	// a large θ is strict.
	if byName["Dissimilarity θ 0.3"].MeanSimT <= byName["Dissimilarity θ 0.7"].MeanSimT {
		t.Error("θ 0.3 (loose) should allow more similarity than θ 0.7 (strict)")
	}
	out := FormatAblation("Melbourne", rows, 15)
	if !strings.Contains(out, "ABLATION") || !strings.Contains(out, "Penalty factor 2.0") {
		t.Error("ablation table missing content")
	}
}

func TestSubsetAndExtractors(t *testing.T) {
	recs := []Record{
		{Response: simstudy.Response{Cell: simstudy.Cell{City: "Melbourne", Resident: true, Band: simstudy.Small}, Ratings: [4]int{5, 4, 3, 2}}, Sim: [4]float64{0.5, 0, 0, 0}, NumRoutes: [4]int{3, 2, 3, 3}},
		{Response: simstudy.Response{Cell: simstudy.Cell{City: "Dhaka", Resident: false, Band: simstudy.Long}, Ratings: [4]int{1, 2, 3, 4}}, Sim: [4]float64{0.9, 0, 0, 0}, NumRoutes: [4]int{2, 3, 3, 3}},
	}
	if got := subset(recs, "Melbourne", nil, nil); len(got) != 1 {
		t.Errorf("city subset = %d, want 1", len(got))
	}
	res := true
	if got := subset(recs, "", &res, nil); len(got) != 1 || got[0].City != "Melbourne" {
		t.Error("resident subset wrong")
	}
	b := simstudy.Long
	if got := subset(recs, "", nil, &b); len(got) != 1 || got[0].City != "Dhaka" {
		t.Error("band subset wrong")
	}
	if got := RatingsOf(recs, 0); got[0] != 5 || got[1] != 1 {
		t.Errorf("RatingsOf = %v", got)
	}
	// Approach 0 reported 3 routes only in the first record.
	if got := SimsOf(recs, 0, 3); len(got) != 1 || got[0] != 0.5 {
		t.Errorf("SimsOf = %v", got)
	}
}
