package eval

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/osm"
	"repro/internal/path"
	"repro/internal/simstudy"
	"repro/internal/traffic"
)

// TestEndToEndPipeline exercises the full stack exactly as the paper's
// system does: generate a city as OSM data, serialize it to OSM XML, parse
// it back through the Road Network Constructor, build the four planners on
// the parsed graph, answer queries, rate them, and run the statistics.
func TestEndToEndPipeline(t *testing.T) {
	// 1. City -> OSM XML -> parse -> graph (the paper's data path).
	profile := citygen.Copenhagen()
	profile.Rows, profile.Cols = 24, 24 // small for test speed
	data := profile.EmitData(5)
	var xmlBuf bytes.Buffer
	if err := data.WriteXML(&xmlBuf); err != nil {
		t.Fatal(err)
	}
	parsed, err := osm.Parse(&xmlBuf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := osm.BuildGraph(parsed, nil)
	if err != nil {
		t.Fatal(err)
	}

	// 2. All planners (studied + related work) answer the same query.
	tw := traffic.Apply(g, traffic.DefaultModel(99))
	planners := []core.Planner{
		core.NewCommercial(g, tw, core.Options{}),
		core.NewPlateaus(g, core.Options{}),
		core.NewPrunedPlateaus(g, core.Options{}),
		core.NewDissimilarity(g, core.Options{}),
		core.NewPenalty(g, core.Options{}),
		core.NewESX(g, core.Options{}),
		core.NewPareto(g, core.Options{}),
		core.NewYen(g, core.Options{}),
	}
	rng := rand.New(rand.NewSource(8))
	answered := 0
	for q := 0; q < 10; q++ {
		s := g.NumNodes() / 7 * (q + 1) % g.NumNodes()
		dst := rng.Intn(g.NumNodes())
		if s == dst {
			continue
		}
		for _, pl := range planners {
			routes, err := pl.Alternatives(int32ID(s), int32ID(dst))
			if err == core.ErrNoRoute {
				continue
			}
			if err != nil {
				t.Fatalf("%s on %d->%d: %v", pl.Name(), s, dst, err)
			}
			answered++
			for i, r := range routes {
				if r.Source() != int32ID(s) || r.Target() != int32ID(dst) {
					t.Fatalf("%s route %d endpoints wrong", pl.Name(), i)
				}
			}
			if sim := path.SimT(g, routes); sim < 0 || sim > 1 {
				t.Fatalf("%s Sim(T) out of range: %f", pl.Name(), sim)
			}
		}
	}
	if answered == 0 {
		t.Fatal("no planner answered any query")
	}

	// 3. Study statistics over a mini schedule on the XML-derived city.
	city := &City{
		Profile: profile,
		Graph:   g,
		Public:  g.CopyWeights(),
		Traffic: tw,
	}
	city.Planners = [NumApproaches]core.Planner{
		core.NewCommercial(g, tw, core.Options{}),
		core.NewPlateaus(g, core.Options{}),
		core.NewDissimilarity(g, core.Options{}),
		core.NewPenalty(g, core.Options{}),
	}
	recs, err := city.RunCell(simstudy.Cell{City: "Copenhagen", Resident: true, Band: simstudy.Small}, 6,
		simstudy.DefaultRaterParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("records = %d, want 6", len(recs))
	}
	table := FormatTableI(recs, []string{"Copenhagen"})
	if !strings.Contains(table, "Copenhagen") {
		t.Error("table missing city section")
	}

	// 4. Records survive CSV round trip.
	var csvBuf bytes.Buffer
	if err := WriteRecordsCSV(&csvBuf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("CSV round trip lost records: %d vs %d", len(back), len(recs))
	}
}

func int32ID(v int) graph.NodeID { return graph.NodeID(v) }
