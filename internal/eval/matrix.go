package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// The matrix ablation quantifies the many-to-many engine against the
// k × k independent point-to-point baseline it amortizes away: one shared
// RPHAST selection plus k restricted forward sweeps versus k² tree-pair
// queries through the same backend. Both sides run through the same
// MatrixEngine (MatrixInto vs MatrixPairwise), so the measured gap is the
// batching scheme, not a backend difference.

// MatrixAblationRow is one batch size's timing comparison.
type MatrixAblationRow struct {
	K                int           // sources == targets == K
	MatrixTime       time.Duration // warm MatrixInto, per call
	PairwiseTime     time.Duration // k² point-to-point baseline, per call
	Speedup          float64
	SelectionTargets int  // shared selection size (0: full sweeps)
	Restricted       bool // whether the sweeps ran restricted
}

// RunMatrixAblation times warm matrix computations against the pairwise
// baseline for each batch size, on endpoint sets sampled uniformly from
// the network.
func (c *City) RunMatrixAblation(ks []int, seed int64) ([]MatrixAblationRow, error) {
	if c.Matrix == nil {
		return nil, fmt.Errorf("eval: %s has no matrix engine", c.Profile.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]MatrixAblationRow, 0, len(ks))
	var tab core.Table
	for _, k := range ks {
		sources := sampleDistinctNodes(c.Graph, k, rng)
		targets := sampleDistinctNodes(c.Graph, k, rng)

		// Warm up: first call builds (and caches) the shared selection.
		if err := c.Matrix.MatrixInto(&tab, sources, targets); err != nil {
			return nil, err
		}
		row := MatrixAblationRow{
			K:                k,
			SelectionTargets: tab.SelectionTargets,
			Restricted:       tab.Restricted,
		}
		row.MatrixTime = timePerCall(repsFor(k), func() error {
			return c.Matrix.MatrixInto(&tab, sources, targets)
		})
		// The baseline is slow enough that one rep is representative.
		row.PairwiseTime = timePerCall(1, func() error {
			return c.Matrix.MatrixPairwise(&tab, sources, targets)
		})
		if row.MatrixTime > 0 {
			row.Speedup = float64(row.PairwiseTime) / float64(row.MatrixTime)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// repsFor scales repetitions down as the batch grows so the ablation
// stays quick at k=64.
func repsFor(k int) int {
	if k >= 32 {
		return 3
	}
	return 10
}

func timePerCall(reps int, fn func() error) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if fn() != nil {
			return 0
		}
	}
	return time.Since(start) / time.Duration(reps)
}

func sampleDistinctNodes(g *graph.Graph, count int, rng *rand.Rand) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, count)
	out := make([]graph.NodeID, 0, count)
	for len(out) < count {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// FormatMatrixAblation renders the matrix-vs-pairwise table, with the
// cumulative selection-cache hit rate of the serving hierarchy appended.
func FormatMatrixAblation(city string, rows []MatrixAblationRow, st core.HierarchyStatus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MATRIX ABLATION (%s): k×k table via shared selection vs k² point-to-point\n", city)
	fmt.Fprintf(&sb, "%-6s %-14s %-14s %-9s %-10s %s\n", "k", "matrix/call", "pairwise/call", "speedup", "selection", "sweeps")
	sb.WriteString(strings.Repeat("-", 66) + "\n")
	for _, r := range rows {
		sweeps := "full"
		if r.Restricted {
			sweeps = "restricted"
		}
		fmt.Fprintf(&sb, "%-6d %-14s %-14s %-9.1f %-10d %s\n",
			r.K, r.MatrixTime.Round(time.Microsecond), r.PairwiseTime.Round(time.Microsecond),
			r.Speedup, r.SelectionTargets, sweeps)
	}
	if total := st.SelectionHits + st.SelectionMisses; total > 0 {
		fmt.Fprintf(&sb, "selection cache: %d hits / %d misses (%.0f%% hit rate), %d evictions\n",
			st.SelectionHits, st.SelectionMisses,
			100*float64(st.SelectionHits)/float64(total), st.SelectionEvictions)
	}
	return sb.String()
}
