package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sp"
)

// smallRestrictedCity builds one small city on the restricted backend for
// matrix-engine wiring tests.
func smallRestrictedCity(t testing.TB) *City {
	t.Helper()
	p := citygen.Copenhagen()
	p.Rows, p.Cols = 16, 16
	p.Motorway.Present = false
	c, err := NewCityOpts(p, 5, core.Options{TreeBackend: core.TreeCHRestricted, Hierarchy: core.HierarchyCCH})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCityMatrixEngine checks the NewCityOpts wiring: the city carries a
// matrix engine that shares the Plateaus planner's provider (same weight
// version) and produces tables matching Dijkstra under the public store.
func TestCityMatrixEngine(t *testing.T) {
	c := smallRestrictedCity(t)
	if c.Matrix == nil {
		t.Fatal("NewCityOpts left Matrix nil")
	}
	if pv, mv := c.Planners[1].(*core.Plateaus).WeightsVersion(), c.Matrix.WeightsVersion(); pv != mv {
		t.Fatalf("matrix engine version %d, Plateaus %d (provider not shared?)", mv, pv)
	}
	sources := []graph.NodeID{0, 5, 11}
	targets := []graph.NodeID{20, 31, 44, 57}
	tab, err := c.Matrix.Matrix(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	ws := sp.GetWorkspace()
	defer ws.Release()
	w := c.PublicStore.Latest().Weights()
	for i, s := range sources {
		tree := sp.BuildTreeInto(ws, c.Graph, w, s, sp.Forward)
		for j, tgt := range targets {
			got, want := tab.At(i, j), tree.Dist[tgt]
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				t.Fatalf("cell %d,%d reachability mismatch: %v vs %v", i, j, got, want)
			}
			if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("cell %d,%d = %v, Dijkstra %v", i, j, got, want)
			}
		}
	}

	// SetEngine keeps the shared provider (version still agrees).
	c.SetEngine(core.NewEngine(2))
	if pv, mv := c.Planners[1].(*core.Plateaus).WeightsVersion(), c.Matrix.WeightsVersion(); pv != mv {
		t.Fatalf("after SetEngine: matrix version %d, Plateaus %d", mv, pv)
	}
}

// TestRunMatrixAblation runs the smallest sweep end to end and checks the
// rows and formatting carry the measurements.
func TestRunMatrixAblation(t *testing.T) {
	c := smallRestrictedCity(t)
	rows, err := c.RunMatrixAblation([]int{2, 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.MatrixTime <= 0 || r.PairwiseTime <= 0 {
			t.Fatalf("k=%d: non-positive timings %v / %v", r.K, r.MatrixTime, r.PairwiseTime)
		}
		if r.Speedup <= 0 {
			t.Fatalf("k=%d: speedup %v", r.K, r.Speedup)
		}
	}
	out := FormatMatrixAblation("Copenhagen", rows, c.Matrix.HierarchyStatus())
	for _, want := range []string{"MATRIX ABLATION", "speedup", "selection cache:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted ablation missing %q:\n%s", want, out)
		}
	}
}
