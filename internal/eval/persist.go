package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/simstudy"
	"repro/internal/stats"
)

// CSV persistence of study records, for external analysis (R, pandas) and
// for re-running the statistics without re-running the routing.

var csvHeader = []string{
	"city", "resident", "band", "fastest_min",
	"rating_gmaps", "rating_plateaus", "rating_dissimilarity", "rating_penalty",
	"sim_gmaps", "sim_plateaus", "sim_dissimilarity", "sim_penalty",
	"nroutes_gmaps", "nroutes_plateaus", "nroutes_dissimilarity", "nroutes_penalty",
}

// WriteRecordsCSV writes study records in a flat CSV layout.
func WriteRecordsCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("eval: writing CSV header: %w", err)
	}
	for i, r := range recs {
		row := []string{
			r.City,
			strconv.FormatBool(r.Resident),
			r.Band.String(),
			strconv.FormatFloat(r.FastestMin, 'f', 4, 64),
		}
		for a := 0; a < NumApproaches; a++ {
			row = append(row, strconv.Itoa(r.Ratings[a]))
		}
		for a := 0; a < NumApproaches; a++ {
			row = append(row, strconv.FormatFloat(r.Sim[a], 'f', 6, 64))
		}
		for a := 0; a < NumApproaches; a++ {
			row = append(row, strconv.Itoa(r.NumRoutes[a]))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eval: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRecordsCSV reads records written by WriteRecordsCSV.
func ReadRecordsCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("eval: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != "city" {
		return nil, fmt.Errorf("eval: unexpected CSV header %v", header)
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("eval: reading CSV line %d: %w", line, err)
		}
		var rec Record
		rec.City = row[0]
		rec.Resident, err = strconv.ParseBool(row[1])
		if err != nil {
			return nil, fmt.Errorf("eval: line %d resident: %w", line, err)
		}
		band, err := parseBand(row[2])
		if err != nil {
			return nil, fmt.Errorf("eval: line %d: %w", line, err)
		}
		rec.Band = band
		rec.FastestMin, err = strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("eval: line %d fastest: %w", line, err)
		}
		for a := 0; a < NumApproaches; a++ {
			v, err := strconv.Atoi(row[4+a])
			if err != nil || v < 1 || v > 5 {
				return nil, fmt.Errorf("eval: line %d rating %d invalid: %q", line, a, row[4+a])
			}
			rec.Ratings[a] = v
		}
		for a := 0; a < NumApproaches; a++ {
			v, err := strconv.ParseFloat(row[8+a], 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("eval: line %d sim %d invalid: %q", line, a, row[8+a])
			}
			rec.Sim[a] = v
		}
		for a := 0; a < NumApproaches; a++ {
			v, err := strconv.Atoi(row[12+a])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("eval: line %d nroutes %d invalid: %q", line, a, row[12+a])
			}
			rec.NumRoutes[a] = v
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseBand(s string) (simstudy.Band, error) {
	switch s {
	case "Small":
		return simstudy.Small, nil
	case "Medium":
		return simstudy.Medium, nil
	case "Long":
		return simstudy.Long, nil
	default:
		return 0, fmt.Errorf("unknown band %q", s)
	}
}

// RMAnovaReport renders the within-subjects (repeated measures) variant of
// the §IV-A analysis: each response's four ratings form one subject row.
// The paper names this test; its printed dfs correspond to the
// between-subjects layout, so both reports are available.
func RMAnovaReport(recs []Record, cities []string) string {
	var sb strings.Builder
	sb.WriteString("One-way repeated-measures ANOVA (subject = respondent)\n")
	line := func(label string, rs []Record) {
		data := make([][]float64, len(rs))
		for i, r := range rs {
			row := make([]float64, NumApproaches)
			for a := 0; a < NumApproaches; a++ {
				row[a] = float64(r.Ratings[a])
			}
			data[i] = row
		}
		res, err := stats.RepeatedMeasuresANOVA(data)
		if err != nil {
			fmt.Fprintf(&sb, "  %-28s (insufficient data)\n", label)
			return
		}
		verdict := "not significant at p<0.05"
		if res.P < 0.05 {
			verdict = "SIGNIFICANT at p<0.05"
		}
		fmt.Fprintf(&sb, "  %-28s F(%d, %d) = %.3f, p = %.3f  [%s]\n",
			label, res.DFTreat, res.DFError, res.F, res.P, verdict)
	}
	for _, city := range cities {
		line(city+" (all)", subset(recs, city, nil, nil))
		line(city+" (residents)", subset(recs, city, ptr(true), nil))
	}
	line("All cities (all)", recs)
	return sb.String()
}
