package eval

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/simstudy"
)

func fakeRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"Melbourne", "Dhaka", "Copenhagen"}
	recs := make([]Record, n)
	for i := range recs {
		var r Record
		r.City = cities[rng.Intn(3)]
		r.Resident = rng.Intn(2) == 0
		r.Band = simstudy.Band(rng.Intn(3))
		r.FastestMin = 1 + rng.Float64()*70
		for a := 0; a < NumApproaches; a++ {
			r.Ratings[a] = 1 + rng.Intn(5)
			r.Sim[a] = rng.Float64()
			r.NumRoutes[a] = 1 + rng.Intn(3)
		}
		recs[i] = r
	}
	return recs
}

func TestRecordsCSVRoundTrip(t *testing.T) {
	recs := fakeRecords(50, 1)
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		if a.City != b.City || a.Resident != b.Resident || a.Band != b.Band {
			t.Fatalf("record %d metadata differs: %+v vs %+v", i, a, b)
		}
		if a.Ratings != b.Ratings || a.NumRoutes != b.NumRoutes {
			t.Fatalf("record %d ratings differ", i)
		}
		for k := 0; k < NumApproaches; k++ {
			if diff := a.Sim[k] - b.Sim[k]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("record %d sim %d differs: %f vs %f", i, k, a.Sim[k], b.Sim[k])
			}
		}
	}
}

func TestReadRecordsCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "a,b,c\n1,2,3\n",
		"bad rating":  strings.Join(csvHeader, ",") + "\nMelbourne,true,Small,5.0,9,3,3,3,0.1,0.1,0.1,0.1,3,3,3,3\n",
		"bad band":    strings.Join(csvHeader, ",") + "\nMelbourne,true,Tiny,5.0,3,3,3,3,0.1,0.1,0.1,0.1,3,3,3,3\n",
		"bad sim":     strings.Join(csvHeader, ",") + "\nMelbourne,true,Small,5.0,3,3,3,3,2.5,0.1,0.1,0.1,3,3,3,3\n",
		"bad boolean": strings.Join(csvHeader, ",") + "\nMelbourne,maybe,Small,5.0,3,3,3,3,0.1,0.1,0.1,0.1,3,3,3,3\n",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadRecordsCSV(strings.NewReader(data)); err == nil {
				t.Error("should reject malformed CSV")
			}
		})
	}
}

func TestRMAnovaReport(t *testing.T) {
	recs := fakeRecords(200, 5)
	out := RMAnovaReport(recs, []string{"Melbourne", "Dhaka", "Copenhagen"})
	for _, want := range []string{
		"repeated-measures", "Melbourne (all)", "Copenhagen (residents)", "All cities (all)", "F(3, ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RM report missing %q", want)
		}
	}
	// Uniform random ratings: should not be significant.
	if strings.Count(out, "SIGNIFICANT") > 1 {
		t.Errorf("uniform ratings should rarely be significant:\n%s", out)
	}
}

func TestRMAnovaReportInsufficientData(t *testing.T) {
	out := RMAnovaReport(nil, []string{"Melbourne"})
	if !strings.Contains(out, "insufficient data") {
		t.Error("empty record set should report insufficient data")
	}
}
