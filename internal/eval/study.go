package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/simstudy"
)

// Study is a full run of the user study across the three cities.
type Study struct {
	Cities  map[string]*City
	Records []Record
}

// NewStudy generates the three city setups. seed controls networks and
// traffic; the per-cell response RNGs are derived from it.
func NewStudy(seed int64) (*Study, error) {
	return NewStudyOpts(seed, core.Options{})
}

// NewStudyOpts is NewStudy with explicit planner options, letting the
// serving commands pick e.g. the tree backend of the choice-routing
// planners.
func NewStudyOpts(seed int64, opts core.Options) (*Study, error) {
	s := &Study{Cities: make(map[string]*City, 3)}
	for i, p := range citygen.Profiles() {
		c, err := NewCityOpts(p, seed+int64(i)*1000, opts)
		if err != nil {
			return nil, err
		}
		s.Cities[p.Name] = c
	}
	return s, nil
}

// Run replays the given response schedule and stores the records. Results
// are deterministic in (study seed, schedule, params).
func (s *Study) Run(sched []simstudy.CellCount, params simstudy.RaterParams, seed int64) error {
	s.Records = s.Records[:0]
	for cellIdx, cc := range sched {
		city, ok := s.Cities[cc.City]
		if !ok {
			return fmt.Errorf("eval: schedule references unknown city %q", cc.City)
		}
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(cellIdx)*7919))
		recs, err := city.RunCell(cc.Cell, cc.N, params, rng)
		if err != nil {
			return err
		}
		s.Records = append(s.Records, recs...)
	}
	return nil
}

// Filter selects records matching the predicate.
func Filter(recs []Record, keep func(Record) bool) []Record {
	var out []Record
	for _, r := range recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// RatingsOf extracts one approach's ratings as float64s.
func RatingsOf(recs []Record, approach int) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = float64(r.Ratings[approach])
	}
	return out
}

// SimsOf extracts one approach's Sim(T) values, restricted to records
// where that approach reported exactly wantRoutes routes (Table II uses
// wantRoutes = 3).
func SimsOf(recs []Record, approach, wantRoutes int) []float64 {
	var out []float64
	for _, r := range recs {
		if r.NumRoutes[approach] == wantRoutes {
			out = append(out, r.Sim[approach])
		}
	}
	return out
}

// CityNames returns the study's cities in the paper's presentation order.
func (s *Study) CityNames() []string {
	order := map[string]int{"Melbourne": 0, "Dhaka": 1, "Copenhagen": 2}
	names := make([]string, 0, len(s.Cities))
	for n := range s.Cities {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return order[names[i]] < order[names[j]] })
	return names
}
