package eval

import (
	"fmt"
	"strings"

	"repro/internal/simstudy"
	"repro/internal/stats"
)

// boolPtr helpers for subset selection.
func ptr[T any](v T) *T { return &v }

// subset filters records by city (empty = all), residency (nil = both) and
// band (nil = all).
func subset(recs []Record, city string, resident *bool, band *simstudy.Band) []Record {
	return Filter(recs, func(r Record) bool {
		if city != "" && r.City != city {
			return false
		}
		if resident != nil && r.Resident != *resident {
			return false
		}
		if band != nil && r.Band != *band {
			return false
		}
		return true
	})
}

func bandLabel(city string, b simstudy.Band) string {
	lo, hi := simstudy.BandBounds(city, b)
	return fmt.Sprintf("%s Routes (%.0f, %.0f] (mins)", b, lo, hi)
}

// FormatTableI renders the paper's Table I: mean rating (sd) per approach
// for every (scope, residency, band) row, with the row's highest mean
// marked by '*'.
func FormatTableI(recs []Record, cities []string) string {
	var sb strings.Builder
	sb.WriteString("TABLE I: Average rating (AVG) and standard deviation sd for each approach shown as AVG (sd).\n")
	header := fmt.Sprintf("%-42s %-14s %-14s %-14s %-14s %s\n",
		"", "Google Maps", "Plateaus", "Dissimilarity", "Penalty", "#Responses")
	rule := strings.Repeat("-", len(header)) + "\n"

	scopes := append([]string{""}, cities...)
	for _, city := range scopes {
		name := city
		if name == "" {
			name = "All Cities"
		}
		sb.WriteString(rule)
		sb.WriteString(name + "\n")
		sb.WriteString(header)
		for _, res := range []*bool{nil, ptr(true), ptr(false)} {
			var groupLabel, allLabel string
			switch {
			case res == nil:
				groupLabel, allLabel = "All", "All responses"
			case *res:
				groupLabel, allLabel = "Residents", "All residents"
			default:
				groupLabel, allLabel = "Non-resd.", "All Non-residents"
			}
			sb.WriteString("  " + groupLabel + "\n")
			sb.WriteString(tableIRow(allLabel, subset(recs, city, res, nil)))
			for b := simstudy.Small; b < simstudy.NumBands; b++ {
				label := bandLabel(city, b)
				if city == "" {
					label = bandLabel("Melbourne", b) // all-cities rows use the 25-min split labels
				}
				sb.WriteString(tableIRow(label, subset(recs, city, res, ptr(b))))
			}
		}
	}
	return sb.String()
}

func tableIRow(label string, recs []Record) string {
	if len(recs) == 0 {
		return fmt.Sprintf("    %-38s %s\n", label, "(no responses)")
	}
	cells := make([]string, NumApproaches)
	best := -1
	bestMean := -1.0
	means := make([]float64, NumApproaches)
	for a := 0; a < NumApproaches; a++ {
		xs := RatingsOf(recs, a)
		means[a] = stats.Mean(xs)
		cells[a] = fmt.Sprintf("%.2f (%.2f)", means[a], stats.StdDev(xs))
		if means[a] > bestMean {
			bestMean, best = means[a], a
		}
	}
	cells[best] += "*"
	return fmt.Sprintf("    %-38s %-14s %-14s %-14s %-14s %d\n",
		label, cells[0], cells[1], cells[2], cells[3], len(recs))
}

// ANOVAReport renders the one-way ANOVA lines of §IV-A: for each city, the
// F statistic and p-value over all responses and over residents only.
func ANOVAReport(recs []Record, cities []string) string {
	var sb strings.Builder
	sb.WriteString("One-way ANOVA (null: the four approaches receive equal mean ratings)\n")
	line := func(label string, rs []Record) {
		groups := make([][]float64, NumApproaches)
		for a := 0; a < NumApproaches; a++ {
			groups[a] = RatingsOf(rs, a)
		}
		res, err := stats.OneWayANOVA(groups...)
		if err != nil {
			fmt.Fprintf(&sb, "  %-28s (insufficient data: %v)\n", label, err)
			return
		}
		verdict := "not significant at p<0.05"
		if res.P < 0.05 {
			verdict = "SIGNIFICANT at p<0.05"
		}
		fmt.Fprintf(&sb, "  %-28s F(%d, %d) = %.3f, p = %.3f  [%s]\n",
			label, res.DFBetwe, res.DFWithin, res.F, res.P, verdict)
	}
	for _, city := range cities {
		line(city+" (all)", subset(recs, city, nil, nil))
		line(city+" (residents)", subset(recs, city, ptr(true), nil))
	}
	line("All cities (all)", recs)
	return sb.String()
}

// FormatTableII renders the paper's Table II: average (sd) and maximum
// Sim(T) per approach, over the queries for which that approach reported
// 3 alternative routes.
func FormatTableII(recs []Record, cities []string) string {
	var sb strings.Builder
	sb.WriteString("TABLE II: Average (AVG) and maximum (MAX) Sim(T) for each approach\n")
	sb.WriteString("(queries where the approach reports 3 routes; sd in parentheses)\n")
	header := fmt.Sprintf("%-32s %-20s %-20s %-20s %-20s\n",
		"", "Google Maps", "Plateaus", "Dissimilarity", "Penalty")
	rule := strings.Repeat("-", len(header)) + "\n"

	scopes := append([]string{""}, cities...)
	for _, city := range scopes {
		name := city
		if name == "" {
			name = "All Cities"
		}
		sb.WriteString(rule)
		sb.WriteString(name + "\n")
		sb.WriteString(header)
		sb.WriteString(tableIIRow("All responses", subset(recs, city, nil, nil)))
		for b := simstudy.Small; b < simstudy.NumBands; b++ {
			sb.WriteString(tableIIRow(b.String()+" Routes", subset(recs, city, nil, ptr(b))))
		}
	}
	return sb.String()
}

func tableIIRow(label string, recs []Record) string {
	cells := make([]string, NumApproaches)
	for a := 0; a < NumApproaches; a++ {
		sims := SimsOf(recs, a, 3)
		if len(sims) == 0 {
			cells[a] = "(none)"
			continue
		}
		s := stats.Summarize(sims)
		sd := s.SD
		if len(sims) < 2 {
			sd = 0
		}
		cells[a] = fmt.Sprintf("%.3f (%.2f) %.3f", s.Mean, sd, s.Max)
	}
	return fmt.Sprintf("  %-30s %-20s %-20s %-20s %-20s\n",
		label, cells[0], cells[1], cells[2], cells[3])
}
