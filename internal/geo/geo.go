// Package geo provides geodesic primitives used throughout the road-network
// stack: points in WGS84 coordinates, haversine distances, bearings,
// bounding boxes and simple polyline utilities.
//
// All distances are in meters, all angles in degrees unless stated
// otherwise.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the haversine formula.
const EarthRadiusMeters = 6371000.0

// Point is a WGS84 coordinate pair.
type Point struct {
	Lat float64 // latitude in degrees, positive north
	Lon float64 // longitude in degrees, positive east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies within the WGS84 domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Radians returns the latitude and longitude converted to radians.
func (p Point) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Haversine returns the great-circle distance in meters between a and b.
func Haversine(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp to guard against floating-point drift slightly above 1.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(s))
}

// Bearing returns the initial great-circle bearing from a to b in degrees,
// normalized to [0, 360).
func Bearing(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	deg = math.Mod(deg+360, 360)
	return deg
}

// TurnAngle returns the absolute change of direction, in degrees within
// [0, 180], experienced when traveling a->b->c. 0 means straight ahead,
// 180 means a full U-turn.
func TurnAngle(a, b, c Point) float64 {
	in := Bearing(a, b)
	out := Bearing(b, c)
	d := math.Abs(out - in)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Midpoint returns the arithmetic midpoint of a and b. For the city-scale
// extents used in this project the planar approximation is sufficient.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// Offset returns the point reached from p by moving the given distances
// north and east (meters). Negative values move south/west. Uses the local
// tangent-plane approximation, accurate at city scale.
func Offset(p Point, northMeters, eastMeters float64) Point {
	dLat := northMeters / EarthRadiusMeters * 180 / math.Pi
	latRad := p.Lat * math.Pi / 180
	dLon := eastMeters / (EarthRadiusMeters * math.Cos(latRad)) * 180 / math.Pi
	return Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}

// BBox is an axis-aligned bounding box in WGS84 coordinates.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBBox returns the smallest box containing all the given points.
// It panics if pts is empty.
func NewBBox(pts ...Point) BBox {
	if len(pts) == 0 {
		panic("geo: NewBBox requires at least one point")
	}
	b := BBox{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLon: pts[0].Lon, MaxLon: pts[0].Lon,
	}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the box grown to include p.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// WidthMeters returns the east-west extent of the box at its central
// latitude, in meters.
func (b BBox) WidthMeters() float64 {
	c := b.Center()
	return Haversine(Point{c.Lat, b.MinLon}, Point{c.Lat, b.MaxLon})
}

// HeightMeters returns the north-south extent of the box in meters.
func (b BBox) HeightMeters() float64 {
	return Haversine(Point{b.MinLat, b.MinLon}, Point{b.MaxLat, b.MinLon})
}

// PolylineLength returns the summed haversine length, in meters, of the
// polyline through pts. A polyline with fewer than two points has length 0.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Haversine(pts[i-1], pts[i])
	}
	return total
}

// LowerBounder produces fast, provably admissible lower bounds on the
// haversine distance between points inside a fixed bounding box. It is
// built for goal-directed search pruning (sp.BuildPrunedTree), where the
// bound is evaluated once per edge relaxation and the full trigonometric
// haversine would dominate the search: MetersLB costs one square root.
//
// Derivation: haversine(a,b) = 2R·asin(√s) with
// s = sin²(Δφ/2) + cosφa·cosφb·sin²(Δλ/2). Using asin(x) ≥ x,
// sin(x) ≥ x·(1 − x²ₘₐₓ/6) for 0 ≤ x ≤ xₘₐₓ, and cosφ ≥ cosφₘₐₓ over the
// box's latitude range, every factor is replaced by a precomputed
// constant, leaving R·k·√(Δφ² + c²·Δλ²) ≤ haversine(a,b) for all a, b in
// the box. At city scale k is within 10⁻⁵ of 1, so the bound loses
// essentially no pruning power.
type LowerBounder struct {
	k float64 // R × sinc correction, meters per radian
	c float64 // min cos(lat) over the box
}

// NewLowerBounder derives the bound constants for points within bbox.
func NewLowerBounder(bbox BBox) LowerBounder {
	maxAbsLat := math.Max(math.Abs(bbox.MinLat), math.Abs(bbox.MaxLat))
	c := math.Cos(maxAbsLat * math.Pi / 180)
	if c < 0 {
		c = 0
	}
	// Largest half-angle either sin() argument can take inside the box.
	span := math.Max(bbox.MaxLat-bbox.MinLat, bbox.MaxLon-bbox.MinLon)
	xmax := span * math.Pi / 180 / 2
	sinc := 1 - xmax*xmax/6
	if sinc < 0 {
		sinc = 0
	}
	return LowerBounder{k: EarthRadiusMeters * sinc, c: c}
}

// MetersLB returns a lower bound on Haversine(a, b), valid whenever both
// points lie inside the bounder's box.
func (lb LowerBounder) MetersLB(a, b Point) float64 {
	dLat := (b.Lat - a.Lat) * (math.Pi / 180)
	dLon := (b.Lon - a.Lon) * (math.Pi / 180) * lb.c
	return lb.k * math.Sqrt(dLat*dLat+dLon*dLon)
}
