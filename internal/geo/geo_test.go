package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Melbourne CBD and Monash Clayton campus, ~18.5 km apart.
var (
	melbCBD = Point{Lat: -37.8136, Lon: 144.9631}
	monash  = Point{Lat: -37.9105, Lon: 145.1362}
	dhaka   = Point{Lat: 23.8103, Lon: 90.4125}
	cph     = Point{Lat: 55.6761, Lon: 12.5683}
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Point
		wantKM  float64
		slackKM float64
	}{
		{"zero", melbCBD, melbCBD, 0, 0.0001},
		{"melbourne-monash", melbCBD, monash, 18.5, 1.0},
		{"dhaka-copenhagen", dhaka, cph, 7100, 150},
		{"one-degree-equator", Point{0, 0}, Point{0, 1}, 111.19, 0.2},
		{"one-degree-meridian", Point{0, 0}, Point{1, 0}, 111.19, 0.2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Haversine(tc.a, tc.b) / 1000
			if math.Abs(got-tc.wantKM) > tc.slackKM {
				t.Errorf("Haversine(%v, %v) = %.2f km, want %.2f±%.2f km",
					tc.a, tc.b, got, tc.wantKM, tc.slackKM)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	if err := quick.Check(func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineNonNegativeAndIdentity(t *testing.T) {
	if err := quick.Check(func(lat, lon float64) bool {
		p := Point{clampLat(lat), clampLon(lon)}
		return Haversine(p, p) == 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	if err := quick.Check(func(l1, g1, l2, g2, l3, g3 float64) bool {
		a := Point{clampLat(l1), clampLon(g1)}
		b := Point{clampLat(l2), clampLon(g2)}
		c := Point{clampLat(l3), clampLon(g3)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 90)
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}

func TestBearingCardinal(t *testing.T) {
	origin := Point{0, 0}
	tests := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{1, 0}, 0},
		{"east", Point{0, 1}, 90},
		{"south", Point{-1, 0}, 180},
		{"west", Point{0, -1}, 270},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Bearing(origin, tc.to)
			if math.Abs(got-tc.want) > 0.01 {
				t.Errorf("Bearing to %s = %.3f, want %.3f", tc.name, got, tc.want)
			}
		})
	}
}

func TestBearingRange(t *testing.T) {
	if err := quick.Check(func(l1, g1, l2, g2 float64) bool {
		a := Point{clampLat(l1), clampLon(g1)}
		b := Point{clampLat(l2), clampLon(g2)}
		if a == b {
			return true
		}
		br := Bearing(a, b)
		return br >= 0 && br < 360
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTurnAngle(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 0.01}
	tests := []struct {
		name string
		c    Point
		want float64
	}{
		{"straight", Point{0, 0.02}, 0},
		{"left-90", Point{0.01, 0.01}, 90},
		{"right-90", Point{-0.01, 0.01}, 90},
		{"u-turn", Point{0, 0}, 180},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := TurnAngle(a, b, tc.c)
			if math.Abs(got-tc.want) > 0.5 {
				t.Errorf("TurnAngle %s = %.2f, want %.2f", tc.name, got, tc.want)
			}
		})
	}
}

func TestTurnAngleRange(t *testing.T) {
	if err := quick.Check(func(l1, g1, l2, g2, l3, g3 float64) bool {
		a := Point{clampLat(l1), clampLon(g1)}
		b := Point{clampLat(l2), clampLon(g2)}
		c := Point{clampLat(l3), clampLon(g3)}
		ang := TurnAngle(a, b, c)
		return ang >= 0 && ang <= 180
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	// Moving north then measuring should give back approximately the distance.
	for _, d := range []float64{10, 100, 1000, 5000} {
		q := Offset(melbCBD, d, 0)
		got := Haversine(melbCBD, q)
		if math.Abs(got-d) > d*0.01+0.5 {
			t.Errorf("Offset north %.0fm: haversine %.2fm", d, got)
		}
		q = Offset(melbCBD, 0, d)
		got = Haversine(melbCBD, q)
		if math.Abs(got-d) > d*0.01+0.5 {
			t.Errorf("Offset east %.0fm: haversine %.2fm", d, got)
		}
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox(melbCBD, monash)
	if !b.Contains(melbCBD) || !b.Contains(monash) {
		t.Fatal("bbox must contain its defining points")
	}
	if !b.Contains(Midpoint(melbCBD, monash)) {
		t.Error("bbox must contain midpoint")
	}
	if b.Contains(dhaka) {
		t.Error("melbourne bbox should not contain dhaka")
	}
	c := b.Center()
	if !b.Contains(c) {
		t.Error("bbox must contain its own center")
	}
	if b.WidthMeters() <= 0 || b.HeightMeters() <= 0 {
		t.Error("non-degenerate bbox must have positive extent")
	}
}

func TestBBoxExtendIsMonotone(t *testing.T) {
	if err := quick.Check(func(l1, g1, l2, g2 float64) bool {
		a := Point{clampLat(l1), clampLon(g1)}
		p := Point{clampLat(l2), clampLon(g2)}
		b := NewBBox(a).Extend(p)
		return b.Contains(a) && b.Contains(p)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestNewBBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBBox() with no points should panic")
		}
	}()
	NewBBox()
}

func TestPolylineLength(t *testing.T) {
	if got := PolylineLength(nil); got != 0 {
		t.Errorf("empty polyline length = %f, want 0", got)
	}
	if got := PolylineLength([]Point{melbCBD}); got != 0 {
		t.Errorf("single-point polyline length = %f, want 0", got)
	}
	direct := Haversine(melbCBD, monash)
	viaMid := PolylineLength([]Point{melbCBD, Midpoint(melbCBD, monash), monash})
	if viaMid < direct-1 {
		t.Errorf("polyline through midpoint (%f) shorter than direct (%f)", viaMid, direct)
	}
	// A dog-leg must be strictly longer than the direct leg.
	dog := PolylineLength([]Point{melbCBD, Offset(melbCBD, 5000, 5000), monash})
	if dog <= direct {
		t.Errorf("dog-leg (%f) should exceed direct (%f)", dog, direct)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {-90, 180}, {90, -180}, melbCBD, dhaka, cph}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {0, 181}, {-95, 0}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func BenchmarkHaversine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Haversine(melbCBD, monash)
	}
}

func TestLowerBounderAdmissibleAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		// Random city-scale box anywhere up to |lat| 70°.
		lat := rng.Float64()*140 - 70
		lon := rng.Float64()*360 - 180
		span := 0.01 + rng.Float64()*0.4 // degrees, up to ~44 km
		bbox := BBox{MinLat: lat, MinLon: lon, MaxLat: lat + span, MaxLon: lon + span}
		lb := NewLowerBounder(bbox)
		for i := 0; i < 200; i++ {
			a := Point{Lat: lat + rng.Float64()*span, Lon: lon + rng.Float64()*span}
			b := Point{Lat: lat + rng.Float64()*span, Lon: lon + rng.Float64()*span}
			h := Haversine(a, b)
			got := lb.MetersLB(a, b)
			if got > h+1e-9 {
				t.Fatalf("trial %d: bound %f exceeds haversine %f for %v-%v (box %+v)", trial, got, h, a, b, bbox)
			}
			// The bound should stay useful: within 5% at city scale.
			if h > 1 && got < 0.95*h {
				t.Fatalf("trial %d: bound %f too loose vs haversine %f for %v-%v", trial, got, h, a, b)
			}
		}
	}
}
