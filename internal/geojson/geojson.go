// Package geojson exports routes and road networks as GeoJSON
// FeatureCollections, the interchange format the demo UI and external map
// tools (geojson.io, QGIS, Leaflet) consume.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/path"
)

// Feature is a GeoJSON feature with a LineString geometry.
type Feature struct {
	Type       string         `json:"type"`
	Properties map[string]any `json:"properties"`
	Geometry   Geometry       `json:"geometry"`
}

// Geometry is a GeoJSON LineString. Coordinates are [lon, lat] pairs, per
// the GeoJSON specification (RFC 7946).
type Geometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// FeatureCollection is the top-level GeoJSON container.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewFeatureCollection returns an empty collection.
func NewFeatureCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection"}
}

// AddRoute appends a route as a LineString feature. The properties always
// include travel time in minutes and length in km; extra key/values (e.g.
// the approach name) are merged in.
func (fc *FeatureCollection) AddRoute(g *graph.Graph, p path.Path, extra map[string]any) {
	coords := make([][2]float64, 0, len(p.Nodes))
	for _, pt := range p.Points(g) {
		coords = append(coords, [2]float64{pt.Lon, pt.Lat})
	}
	props := map[string]any{
		"minutes": p.TimeS / 60,
		"km":      p.LengthM / 1000,
	}
	for k, v := range extra {
		props[k] = v
	}
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Properties: props,
		Geometry:   Geometry{Type: "LineString", Coordinates: coords},
	})
}

// AddRouteSet appends every route of an approach, numbering them rank 1..n.
func (fc *FeatureCollection) AddRouteSet(g *graph.Graph, approach string, routes []path.Path) {
	for i, r := range routes {
		fc.AddRoute(g, r, map[string]any{"approach": approach, "rank": i + 1})
	}
}

// Write serializes the collection as indented JSON.
func (fc *FeatureCollection) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("geojson: %w", err)
	}
	return nil
}

// Parse reads a FeatureCollection, for round-trip tests and tooling.
func Parse(r io.Reader) (*FeatureCollection, error) {
	var fc FeatureCollection
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("geojson: unexpected type %q", fc.Type)
	}
	return &fc, nil
}
