package geojson

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
)

func lineGraph(t *testing.T, n int) (*graph.Graph, path.Path) {
	t.Helper()
	b := graph.NewBuilder(n, n)
	o := geo.Point{Lat: -37.8, Lon: 144.9}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, 0, float64(i)*500))
	}
	var edges []graph.EdgeID
	for i := 0; i+1 < n; i++ {
		e, err := b.AddEdge(graph.EdgeSpec{From: graph.NodeID(i), To: graph.NodeID(i + 1), Class: graph.Primary})
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	g := b.Build()
	return g, path.MustNew(g, g.CopyWeights(), 0, edges)
}

func TestAddRouteProducesValidGeoJSON(t *testing.T) {
	g, p := lineGraph(t, 5)
	fc := NewFeatureCollection()
	fc.AddRoute(g, p, map[string]any{"approach": "Plateaus"})
	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"FeatureCollection"`, `"LineString"`, `"approach"`, `"minutes"`, `"km"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s", want)
		}
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Features) != 1 {
		t.Fatalf("features = %d, want 1", len(parsed.Features))
	}
	f := parsed.Features[0]
	if len(f.Geometry.Coordinates) != len(p.Nodes) {
		t.Errorf("coordinates = %d, want %d", len(f.Geometry.Coordinates), len(p.Nodes))
	}
	// GeoJSON is [lon, lat].
	first := f.Geometry.Coordinates[0]
	pt := g.Point(p.Nodes[0])
	if math.Abs(first[0]-pt.Lon) > 1e-9 || math.Abs(first[1]-pt.Lat) > 1e-9 {
		t.Errorf("coordinate order wrong: got %v for point %v", first, pt)
	}
	if got := f.Properties["minutes"].(float64); math.Abs(got-p.TimeS/60) > 1e-9 {
		t.Errorf("minutes = %f, want %f", got, p.TimeS/60)
	}
}

func TestAddRouteSetRanks(t *testing.T) {
	g, p := lineGraph(t, 4)
	fc := NewFeatureCollection()
	fc.AddRouteSet(g, "Penalty", []path.Path{p, p, p})
	if len(fc.Features) != 3 {
		t.Fatalf("features = %d, want 3", len(fc.Features))
	}
	for i, f := range fc.Features {
		if f.Properties["rank"].(int) != i+1 {
			t.Errorf("feature %d rank = %v", i, f.Properties["rank"])
		}
		if f.Properties["approach"].(string) != "Penalty" {
			t.Errorf("feature %d approach = %v", i, f.Properties["approach"])
		}
	}
}

func TestParseRejectsWrongType(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"type":"Feature"}`)); err == nil {
		t.Error("non-collection should be rejected")
	}
	if _, err := Parse(strings.NewReader(`garbage`)); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestEmptyCollection(t *testing.T) {
	fc := NewFeatureCollection()
	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Features) != 0 {
		t.Error("empty collection should round-trip empty")
	}
}
