// Package graph implements the directed, weighted road-network graph that
// all routing algorithms in this repository operate on.
//
// The graph is stored in compressed sparse row (CSR) form for both the
// forward and the reverse direction, which makes forward and backward
// Dijkstra searches (the building blocks of the Plateaus and Dissimilarity
// techniques) equally cheap. Edge weights are travel times in seconds,
// computed per the paper: length / maxspeed, scaled by 1.3 on non-freeway
// segments.
//
// Graphs are built through a Builder and are immutable afterwards;
// algorithms that need modified weights (the Penalty technique, the traffic
// simulation) work on their own weight slices obtained via CopyWeights.
package graph

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// NodeID identifies a vertex of the road network.
type NodeID int32

// EdgeID identifies a directed edge of the road network.
type EdgeID int32

// InvalidNode is returned by lookups that find no vertex.
const InvalidNode NodeID = -1

// Edge is a directed road segment.
type Edge struct {
	From     NodeID
	To       NodeID
	LengthM  float64   // geometric length in meters
	SpeedKmh float64   // assumed maximum speed
	Class    RoadClass // OSM highway class
	Lanes    uint8     // per-direction lane count
	TimeS    float64   // travel-time weight in seconds (the paper's edge weight)
}

// Graph is an immutable road network. Use a Builder to construct one.
type Graph struct {
	points []geo.Point
	edges  []Edge

	// Forward CSR: edges leaving node v are edgeIDs fwdAdj[fwdOff[v]:fwdOff[v+1]].
	fwdOff []int32
	fwdAdj []EdgeID
	// Reverse CSR: edges entering node v.
	revOff []int32
	revAdj []EdgeID
	// Packed relaxation arrays, aligned with fwdAdj/revAdj: fwdTo[i] is the
	// head of edge fwdAdj[i], revFrom[i] the tail of edge revAdj[i]. They
	// let Dijkstra-style relaxations read (edge, endpoint) pairs from two
	// sequential arrays instead of loading a full Edge struct per edge just
	// to extract one endpoint.
	fwdTo   []NodeID
	revFrom []NodeID

	// baseW caches the travel-time weight of every edge, indexed by
	// EdgeID — the public OSM-derived metric shared by every reader.
	baseW []float64

	bbox geo.BBox
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.points) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Point returns the coordinates of node v.
func (g *Graph) Point(v NodeID) geo.Point { return g.points[v] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// BBox returns the bounding box of all vertices.
func (g *Graph) BBox() geo.BBox { return g.bbox }

// OutEdges returns the IDs of the edges leaving v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutEdges(v NodeID) []EdgeID {
	return g.fwdAdj[g.fwdOff[v]:g.fwdOff[v+1]]
}

// InEdges returns the IDs of the edges entering v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) InEdges(v NodeID) []EdgeID {
	return g.revAdj[g.revOff[v]:g.revOff[v+1]]
}

// OutHeads returns the head (To) node of every edge leaving v, aligned
// index-for-index with OutEdges(v). The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) OutHeads(v NodeID) []NodeID {
	return g.fwdTo[g.fwdOff[v]:g.fwdOff[v+1]]
}

// InTails returns the tail (From) node of every edge entering v, aligned
// index-for-index with InEdges(v). The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) InTails(v NodeID) []NodeID {
	return g.revFrom[g.revOff[v]:g.revOff[v+1]]
}

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.fwdOff[v+1] - g.fwdOff[v])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.revOff[v+1] - g.revOff[v])
}

// FindEdge returns the ID of a directed edge from u to v, or -1 if none
// exists. If parallel edges exist the one with the smallest weight is
// returned.
func (g *Graph) FindEdge(u, v NodeID) EdgeID {
	best := EdgeID(-1)
	bestW := math.Inf(1)
	for _, e := range g.OutEdges(u) {
		if g.edges[e].To == v && g.edges[e].TimeS < bestW {
			best, bestW = e, g.edges[e].TimeS
		}
	}
	return best
}

// BaseWeights returns the graph's own travel-time weight vector, indexed
// by EdgeID. The returned slice aliases internal storage and must not be
// modified; it is the shared read-only metric that weight snapshots and
// planners resolve against without per-construction copies.
func (g *Graph) BaseWeights() []float64 { return g.baseW }

// CopyWeights returns a fresh slice holding the travel-time weight of every
// edge, indexed by EdgeID. Algorithms that perturb weights (Penalty,
// traffic simulation) operate on such copies so that the graph itself stays
// immutable and shareable across goroutines; read-only consumers should use
// BaseWeights instead.
func (g *Graph) CopyWeights() []float64 {
	w := make([]float64, len(g.baseW))
	copy(w, g.baseW)
	return w
}

// TotalLengthM returns the summed geometric length of all directed edges.
func (g *Graph) TotalLengthM() float64 {
	var sum float64
	for i := range g.edges {
		sum += g.edges[i].LengthM
	}
	return sum
}

// Builder incrementally assembles a Graph.
type Builder struct {
	points []geo.Point
	edges  []Edge
}

// NewBuilder returns an empty Builder. The capacity hints may be zero.
func NewBuilder(nodeHint, edgeHint int) *Builder {
	return &Builder{
		points: make([]geo.Point, 0, nodeHint),
		edges:  make([]Edge, 0, edgeHint),
	}
}

// AddNode appends a vertex at p and returns its ID.
func (b *Builder) AddNode(p geo.Point) NodeID {
	b.points = append(b.points, p)
	return NodeID(len(b.points) - 1)
}

// NumNodes returns the number of vertices added so far.
func (b *Builder) NumNodes() int { return len(b.points) }

// EdgeSpec describes a directed edge to add. A zero SpeedKmh selects the
// class default; a zero Lanes selects the class default; a zero LengthM
// computes the haversine distance between the endpoints.
type EdgeSpec struct {
	From, To NodeID
	LengthM  float64
	SpeedKmh float64
	Class    RoadClass
	Lanes    int
	TwoWay   bool // also add the reverse edge
}

// AddEdge adds the edge described by spec and returns the ID of the forward
// edge. It returns an error if an endpoint is out of range or the edge is a
// self-loop.
func (b *Builder) AddEdge(spec EdgeSpec) (EdgeID, error) {
	n := NodeID(len(b.points))
	if spec.From < 0 || spec.From >= n || spec.To < 0 || spec.To >= n {
		return -1, fmt.Errorf("graph: edge endpoint out of range: %d -> %d (have %d nodes)", spec.From, spec.To, n)
	}
	if spec.From == spec.To {
		return -1, fmt.Errorf("graph: self-loop at node %d rejected", spec.From)
	}
	if spec.LengthM <= 0 {
		spec.LengthM = geo.Haversine(b.points[spec.From], b.points[spec.To])
	}
	if spec.SpeedKmh <= 0 {
		spec.SpeedKmh = spec.Class.DefaultSpeedKmh()
	}
	if spec.Lanes <= 0 {
		spec.Lanes = spec.Class.DefaultLanes()
	}
	mk := func(from, to NodeID) Edge {
		return Edge{
			From:     from,
			To:       to,
			LengthM:  spec.LengthM,
			SpeedKmh: spec.SpeedKmh,
			Class:    spec.Class,
			Lanes:    uint8(spec.Lanes),
			TimeS:    TravelTimeSeconds(spec.LengthM, spec.SpeedKmh, spec.Class),
		}
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, mk(spec.From, spec.To))
	if spec.TwoWay {
		b.edges = append(b.edges, mk(spec.To, spec.From))
	}
	return id, nil
}

// Build freezes the builder into an immutable Graph. The builder must not
// be reused afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.points)
	g := &Graph{
		points:  b.points,
		edges:   b.edges,
		fwdOff:  make([]int32, n+1),
		revOff:  make([]int32, n+1),
		fwdAdj:  make([]EdgeID, len(b.edges)),
		revAdj:  make([]EdgeID, len(b.edges)),
		fwdTo:   make([]NodeID, len(b.edges)),
		revFrom: make([]NodeID, len(b.edges)),
	}
	for i := range g.edges {
		g.fwdOff[g.edges[i].From+1]++
		g.revOff[g.edges[i].To+1]++
	}
	for v := 0; v < n; v++ {
		g.fwdOff[v+1] += g.fwdOff[v]
		g.revOff[v+1] += g.revOff[v]
	}
	fwdNext := make([]int32, n)
	revNext := make([]int32, n)
	copy(fwdNext, g.fwdOff[:n])
	copy(revNext, g.revOff[:n])
	for i := range g.edges {
		e := &g.edges[i]
		g.fwdAdj[fwdNext[e.From]] = EdgeID(i)
		g.fwdTo[fwdNext[e.From]] = e.To
		fwdNext[e.From]++
		g.revAdj[revNext[e.To]] = EdgeID(i)
		g.revFrom[revNext[e.To]] = e.From
		revNext[e.To]++
	}
	g.baseW = make([]float64, len(g.edges))
	for i := range g.edges {
		g.baseW[i] = g.edges[i].TimeS
	}
	if n > 0 {
		g.bbox = geo.NewBBox(g.points...)
	}
	return g
}
