package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// buildDiamond creates the 4-node diamond used across tests:
//
//	    1
//	  /   \
//	0       3
//	  \   /
//	    2
//
// All edges are two-way residential streets.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 8)
	origin := geo.Point{Lat: -37.81, Lon: 144.96}
	n0 := b.AddNode(origin)
	n1 := b.AddNode(geo.Offset(origin, 500, 500))
	n2 := b.AddNode(geo.Offset(origin, -500, 500))
	n3 := b.AddNode(geo.Offset(origin, 0, 1000))
	for _, pair := range [][2]NodeID{{n0, n1}, {n0, n2}, {n1, n3}, {n2, n3}} {
		if _, err := b.AddEdge(EdgeSpec{From: pair[0], To: pair[1], Class: Residential, TwoWay: true}); err != nil {
			t.Fatalf("AddEdge(%v): %v", pair, err)
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := buildDiamond(t)
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 8 {
		t.Fatalf("NumEdges = %d, want 8 (4 two-way)", got)
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(3) = %d, want 2", got)
	}
}

func TestCSRConsistency(t *testing.T) {
	g := buildDiamond(t)
	// Every edge must appear exactly once in the out-list of its From node
	// and once in the in-list of its To node.
	seenOut := make(map[EdgeID]int)
	seenIn := make(map[EdgeID]int)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.OutEdges(v) {
			if g.Edge(e).From != v {
				t.Errorf("edge %d in OutEdges(%d) has From=%d", e, v, g.Edge(e).From)
			}
			seenOut[e]++
		}
		for _, e := range g.InEdges(v) {
			if g.Edge(e).To != v {
				t.Errorf("edge %d in InEdges(%d) has To=%d", e, v, g.Edge(e).To)
			}
			seenIn[e]++
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if seenOut[EdgeID(e)] != 1 || seenIn[EdgeID(e)] != 1 {
			t.Errorf("edge %d seen out=%d in=%d, want 1/1", e, seenOut[EdgeID(e)], seenIn[EdgeID(e)])
		}
	}
}

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(0, 0)
	n0 := b.AddNode(geo.Point{Lat: 0, Lon: 0})
	n1 := b.AddNode(geo.Point{Lat: 0, Lon: 0.01})
	if _, err := b.AddEdge(EdgeSpec{From: n0, To: 99, Class: Primary}); err == nil {
		t.Error("out-of-range To should error")
	}
	if _, err := b.AddEdge(EdgeSpec{From: -1, To: n1, Class: Primary}); err == nil {
		t.Error("negative From should error")
	}
	if _, err := b.AddEdge(EdgeSpec{From: n0, To: n0, Class: Primary}); err == nil {
		t.Error("self-loop should error")
	}
	if _, err := b.AddEdge(EdgeSpec{From: n0, To: n1, Class: Primary}); err != nil {
		t.Errorf("valid edge should not error: %v", err)
	}
}

func TestEdgeDefaults(t *testing.T) {
	b := NewBuilder(0, 0)
	n0 := b.AddNode(geo.Point{Lat: 0, Lon: 0})
	n1 := b.AddNode(geo.Point{Lat: 0, Lon: 0.01}) // ~1.11 km east
	if _, err := b.AddEdge(EdgeSpec{From: n0, To: n1, Class: Secondary}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	e := g.Edge(0)
	wantLen := geo.Haversine(g.Point(n0), g.Point(n1))
	if math.Abs(e.LengthM-wantLen) > 0.01 {
		t.Errorf("default length = %f, want haversine %f", e.LengthM, wantLen)
	}
	if e.SpeedKmh != Secondary.DefaultSpeedKmh() {
		t.Errorf("default speed = %f, want %f", e.SpeedKmh, Secondary.DefaultSpeedKmh())
	}
	if int(e.Lanes) != Secondary.DefaultLanes() {
		t.Errorf("default lanes = %d, want %d", e.Lanes, Secondary.DefaultLanes())
	}
}

func TestTravelTimeRule(t *testing.T) {
	// 1000 m at 50 km/h: raw 72 s; residential gets the 1.3 factor.
	got := TravelTimeSeconds(1000, 50, Residential)
	want := 1000 / (50 / 3.6) * 1.3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("residential travel time = %f, want %f", got, want)
	}
	// Motorways are exempt from the 1.3 factor.
	got = TravelTimeSeconds(1000, 100, Motorway)
	want = 1000 / (100 / 3.6)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("motorway travel time = %f, want %f", got, want)
	}
	// Zero speed falls back to the class default rather than dividing by zero.
	got = TravelTimeSeconds(1000, 0, Primary)
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Errorf("zero-speed travel time = %f, want finite positive", got)
	}
}

func TestFreewayFactorMakesMotorwayFaster(t *testing.T) {
	// Same length and speed: the motorway edge must be exactly 1.3× faster.
	mw := TravelTimeSeconds(5000, 80, Motorway)
	tr := TravelTimeSeconds(5000, 80, Trunk)
	if math.Abs(tr/mw-IntersectionDelayFactor) > 1e-9 {
		t.Errorf("trunk/motorway time ratio = %f, want %f", tr/mw, IntersectionDelayFactor)
	}
}

func TestFindEdge(t *testing.T) {
	g := buildDiamond(t)
	if e := g.FindEdge(0, 1); e < 0 {
		t.Error("edge 0->1 should exist")
	} else if g.Edge(e).From != 0 || g.Edge(e).To != 1 {
		t.Errorf("FindEdge(0,1) returned %d->%d", g.Edge(e).From, g.Edge(e).To)
	}
	if e := g.FindEdge(0, 3); e != -1 {
		t.Errorf("edge 0->3 should not exist, got %d", e)
	}
}

func TestFindEdgePicksCheapestParallel(t *testing.T) {
	b := NewBuilder(2, 2)
	n0 := b.AddNode(geo.Point{Lat: 0, Lon: 0})
	n1 := b.AddNode(geo.Point{Lat: 0, Lon: 0.01})
	if _, err := b.AddEdge(EdgeSpec{From: n0, To: n1, LengthM: 2000, Class: Residential}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEdge(EdgeSpec{From: n0, To: n1, LengthM: 1000, Class: Residential}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	e := g.FindEdge(n0, n1)
	if g.Edge(e).LengthM != 1000 {
		t.Errorf("FindEdge should pick the cheaper parallel edge, got length %f", g.Edge(e).LengthM)
	}
}

func TestCopyWeights(t *testing.T) {
	g := buildDiamond(t)
	w := g.CopyWeights()
	if len(w) != g.NumEdges() {
		t.Fatalf("CopyWeights length = %d, want %d", len(w), g.NumEdges())
	}
	for i, v := range w {
		if v != g.Edge(EdgeID(i)).TimeS {
			t.Errorf("weight %d = %f, want %f", i, v, g.Edge(EdgeID(i)).TimeS)
		}
	}
	// Mutating the copy must not affect the graph.
	w[0] *= 100
	if g.Edge(0).TimeS == w[0] {
		t.Error("mutating the weight copy changed the graph")
	}
}

func TestBBox(t *testing.T) {
	g := buildDiamond(t)
	bb := g.BBox()
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if !bb.Contains(g.Point(v)) {
			t.Errorf("bbox does not contain node %d at %v", v, g.Point(v))
		}
	}
}

func TestRoundTripSerialization(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Point(v) != g2.Point(v) {
			t.Errorf("node %d: %v vs %v", v, g.Point(v), g2.Point(v))
		}
	}
	for e := EdgeID(0); int(e) < g.NumEdges(); e++ {
		a, b := g.Edge(e), g2.Edge(e)
		if a != b {
			t.Errorf("edge %d: %+v vs %+v", e, a, b)
		}
	}
}

func TestRoundTripSerializationRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n, n*3)
		for i := 0; i < n; i++ {
			b.AddNode(geo.Point{
				Lat: -37.8 + rng.Float64()*0.1,
				Lon: 144.9 + rng.Float64()*0.1,
			})
		}
		for i := 0; i < n*2; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			b.AddEdge(EdgeSpec{
				From:     u,
				To:       v,
				Class:    RoadClass(rng.Intn(int(numRoadClasses))),
				SpeedKmh: 20 + rng.Float64()*80,
				Lanes:    1 + rng.Intn(3),
				TwoWay:   rng.Intn(2) == 0,
			})
		}
		g := b.Build()
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for e := EdgeID(0); int(e) < g.NumEdges(); e++ {
			if g.Edge(e) != g2.Edge(e) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOTAGRAPHFILE###"),
		"truncated":  append([]byte("ROADNET1"), 0xFF),
		"bad counts": append([]byte("ROADNET1"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Error("Read should reject corrupt input")
			}
		})
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := buildDiamond(t)
	path := t.TempDir() + "/net.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip size mismatch")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.bin"); err == nil {
		t.Error("LoadFile of missing file should error")
	}
}

func TestParseRoadClass(t *testing.T) {
	routable := map[string]RoadClass{
		"motorway":      Motorway,
		"motorway_link": MotorwayLink,
		"trunk":         Trunk,
		"trunk_link":    Trunk,
		"primary":       Primary,
		"secondary":     Secondary,
		"tertiary":      Tertiary,
		"residential":   Residential,
		"living_street": Residential,
		"unclassified":  Unclassified,
		"service":       Service,
	}
	for tag, want := range routable {
		got, ok := ParseRoadClass(tag)
		if !ok || got != want {
			t.Errorf("ParseRoadClass(%q) = %v,%v want %v,true", tag, got, ok, want)
		}
	}
	for _, tag := range []string{"footway", "cycleway", "path", "steps", "", "proposed"} {
		if _, ok := ParseRoadClass(tag); ok {
			t.Errorf("ParseRoadClass(%q) should be non-routable", tag)
		}
	}
}

func TestRoadClassStrings(t *testing.T) {
	for c := RoadClass(0); c < numRoadClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty string", c)
		}
		if c.DefaultSpeedKmh() <= 0 {
			t.Errorf("class %v has non-positive default speed", c)
		}
		if c.DefaultLanes() <= 0 {
			t.Errorf("class %v has non-positive default lanes", c)
		}
	}
	if RoadClass(200).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestTotalLength(t *testing.T) {
	g := buildDiamond(t)
	var want float64
	for e := EdgeID(0); int(e) < g.NumEdges(); e++ {
		want += g.Edge(e).LengthM
	}
	if got := g.TotalLengthM(); math.Abs(got-want) > 1e-6 {
		t.Errorf("TotalLengthM = %f, want %f", got, want)
	}
}
