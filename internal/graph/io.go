package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/geo"
)

// Binary road-network format:
//
//	magic    [8]byte  "ROADNET1"
//	numNodes uint32
//	numEdges uint32
//	nodes    numNodes × (lat float64, lon float64)
//	edges    numEdges × (from uint32, to uint32, lengthM float64,
//	                     speedKmh float64, class uint8, lanes uint8)
//
// All integers are little-endian. Travel times are recomputed on load so
// the weighting rule lives in exactly one place (TravelTimeSeconds).
var magic = [8]byte{'R', 'O', 'A', 'D', 'N', 'E', 'T', '1'}

// WriteTo serializes the graph in the binary road-network format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(len(g.points))); err != nil {
		return n, err
	}
	if err := write(uint32(len(g.edges))); err != nil {
		return n, err
	}
	for _, p := range g.points {
		if err := write(p.Lat); err != nil {
			return n, err
		}
		if err := write(p.Lon); err != nil {
			return n, err
		}
	}
	for i := range g.edges {
		e := &g.edges[i]
		if err := write(uint32(e.From)); err != nil {
			return n, err
		}
		if err := write(uint32(e.To)); err != nil {
			return n, err
		}
		if err := write(e.LengthM); err != nil {
			return n, err
		}
		if err := write(e.SpeedKmh); err != nil {
			return n, err
		}
		if err := write(uint8(e.Class)); err != nil {
			return n, err
		}
		if err := write(e.Lanes); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read deserializes a graph written by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("graph: bad magic %q, not a road-network file", gotMagic)
	}
	var numNodes, numEdges uint32
	if err := binary.Read(br, binary.LittleEndian, &numNodes); err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &numEdges); err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	const maxCount = 1 << 28 // sanity bound against corrupt headers
	if numNodes > maxCount || numEdges > maxCount {
		return nil, fmt.Errorf("graph: implausible counts nodes=%d edges=%d", numNodes, numEdges)
	}
	b := NewBuilder(int(numNodes), int(numEdges))
	for i := uint32(0); i < numNodes; i++ {
		var lat, lon float64
		if err := binary.Read(br, binary.LittleEndian, &lat); err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &lon); err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		p := geo.Point{Lat: lat, Lon: lon}
		if !p.Valid() {
			return nil, fmt.Errorf("graph: node %d has invalid coordinates %v", i, p)
		}
		b.AddNode(p)
	}
	for i := uint32(0); i < numEdges; i++ {
		var from, to uint32
		var lengthM, speedKmh float64
		var class, lanes uint8
		if err := binary.Read(br, binary.LittleEndian, &from); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &to); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &lengthM); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &speedKmh); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &class); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &lanes); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if class >= uint8(numRoadClasses) {
			return nil, fmt.Errorf("graph: edge %d has unknown road class %d", i, class)
		}
		if math.IsNaN(lengthM) || lengthM <= 0 || math.IsNaN(speedKmh) || speedKmh <= 0 {
			return nil, fmt.Errorf("graph: edge %d has invalid length/speed %f/%f", i, lengthM, speedKmh)
		}
		if _, err := b.AddEdge(EdgeSpec{
			From:     NodeID(from),
			To:       NodeID(to),
			LengthM:  lengthM,
			SpeedKmh: speedKmh,
			Class:    RoadClass(class),
			Lanes:    int(lanes),
		}); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// SaveFile writes the graph to the named file.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("graph: writing %s: %w", path, err)
	}
	return f.Close()
}

// LoadFile reads a graph from the named file.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return Read(f)
}
