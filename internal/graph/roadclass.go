package graph

import "fmt"

// RoadClass categorizes an edge by the OSM highway hierarchy. The class
// determines the default speed limit, the default number of lanes and
// whether the paper's 1.3 intersection-delay factor applies (it does not
// apply to freeways/motorways, see §III "Road Network Constructor").
type RoadClass uint8

// Road classes, ordered from most to least important.
const (
	Motorway RoadClass = iota
	MotorwayLink
	Trunk
	Primary
	Secondary
	Tertiary
	Residential
	Unclassified
	Service
	numRoadClasses
)

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	switch c {
	case Motorway:
		return "motorway"
	case MotorwayLink:
		return "motorway_link"
	case Trunk:
		return "trunk"
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	case Tertiary:
		return "tertiary"
	case Residential:
		return "residential"
	case Unclassified:
		return "unclassified"
	case Service:
		return "service"
	default:
		return fmt.Sprintf("RoadClass(%d)", uint8(c))
	}
}

// ParseRoadClass maps an OSM highway tag value to a RoadClass. The second
// return value reports whether the value denotes a routable road at all;
// footways, cycleways etc. return false.
func ParseRoadClass(highway string) (RoadClass, bool) {
	switch highway {
	case "motorway":
		return Motorway, true
	case "motorway_link":
		return MotorwayLink, true
	case "trunk", "trunk_link":
		return Trunk, true
	case "primary", "primary_link":
		return Primary, true
	case "secondary", "secondary_link":
		return Secondary, true
	case "tertiary", "tertiary_link":
		return Tertiary, true
	case "residential", "living_street":
		return Residential, true
	case "unclassified", "road":
		return Unclassified, true
	case "service":
		return Service, true
	default:
		return 0, false
	}
}

// DefaultSpeedKmh returns the assumed maximum speed for a class when the
// OSM way carries no maxspeed tag.
func (c RoadClass) DefaultSpeedKmh() float64 {
	switch c {
	case Motorway:
		return 100
	case MotorwayLink:
		return 60
	case Trunk:
		return 80
	case Primary:
		return 60
	case Secondary:
		return 50
	case Tertiary:
		return 50
	case Residential:
		return 40
	case Unclassified:
		return 40
	case Service:
		return 20
	default:
		return 40
	}
}

// DefaultLanes returns the assumed per-direction lane count for a class.
// Lane counts feed the "wider roads" ranking criterion that the simulated
// commercial provider applies (§IV-C of the paper).
func (c RoadClass) DefaultLanes() int {
	switch c {
	case Motorway:
		return 3
	case Trunk:
		return 2
	case Primary:
		return 2
	case Secondary:
		return 2
	default:
		return 1
	}
}

// IsFreeway reports whether the intersection-delay factor is skipped for
// this class. The paper multiplies travel time by 1.3 for every segment
// "that is not a freeway/motorway".
func (c RoadClass) IsFreeway() bool {
	return c == Motorway || c == MotorwayLink
}

// IntersectionDelayFactor is the paper's travel-time multiplier applied to
// all non-freeway edges to account for stops, lights and turns (§III).
const IntersectionDelayFactor = 1.3

// TravelTimeSeconds computes the edge weight the paper uses: length divided
// by the maximum speed, multiplied by 1.3 unless the class is a freeway.
func TravelTimeSeconds(lengthMeters, speedKmh float64, class RoadClass) float64 {
	if speedKmh <= 0 {
		speedKmh = class.DefaultSpeedKmh()
	}
	t := lengthMeters / (speedKmh / 3.6)
	if !class.IsFreeway() {
		t *= IntersectionDelayFactor
	}
	return t
}
