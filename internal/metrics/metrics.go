// Package metrics is a small, dependency-free metrics registry exposing
// the Prometheus text exposition format. It exists so the serving stack
// can report counters, gauges and latency histograms on GET /metrics
// without pulling the Prometheus client library into the build — the
// repository's constraint is a stdlib-only module.
//
// The model follows Prometheus closely where it matters for scrapers:
//
//   - Counters are monotone, gauges are set-anywhere, histograms carry
//     cumulative bucket counts, a _sum and a _count, with an implicit
//     +Inf bucket.
//   - Vec variants add fixed label dimensions; children are created on
//     first With and live forever (the label cardinality of this stack is
//     tiny: planner names, store names, city names).
//   - Collect registers a scrape-time callback that emits samples read
//     from state owned elsewhere (the serving layer's existing atomics) —
//     the pull-model equivalent of a Prometheus collector, used for
//     counters that must survive engine-internal resets.
//
// All instruments are safe for concurrent use; Observe/Add/Inc on the hot
// path are a handful of atomic operations and never allocate.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the fixed latency buckets (seconds) of this stack's
// query-path histograms: 100µs to 2.5s, the range between a warm cache
// hit and a cold customization on the demo networks.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets are the fixed buckets of count-valued histograms (selection
// sizes, matrix cells): powers of four from 16 up.
var SizeBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds a set of named metric families and renders them in the
// Prometheus text format.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func(*Emit)
}

// family is one named metric with a fixed type, help string, label
// dimension and (for histograms) bucket layout.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	labels  []string
	buckets []float64

	mu       sync.RWMutex
	children map[string]any // keyed by joined label values
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or re-fetches) a family, panicking on a name reused
// with a different shape — a registration bug, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) {
			panic("metrics: invalid label name " + l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("metrics: " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// child returns the instrument of one label-value tuple, creating it on
// first use via mk.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	return c
}

// Counter is a monotone float counter.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v < 0 panics — counters are monotone).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable float value.
type Gauge struct{ bits atomic.Uint64 }

// Set installs v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative allowed).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets hold the
// *per-bucket* counts internally; rendering emits the Prometheus
// cumulative form plus the implicit +Inf bucket, _sum and _count.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram over the given
// bucket upper bounds (ascending; nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, histBounds(buckets))
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil)}
}

// With returns the child counter of one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// With returns the child gauge of one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family (nil
// buckets selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, "histogram", labels, histBounds(buckets))}
}

// With returns the child histogram of one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

func histBounds(buckets []float64) []float64 {
	if buckets == nil {
		return DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must ascend")
		}
	}
	return append([]float64(nil), buckets...)
}

// Emit receives samples from a scrape-time collector. Every call appends
// one sample line; families are created on first use and merged with the
// statically registered ones at render time (same name + different type
// panics, as for static registration).
type Emit struct {
	samples []sample
}

type sample struct {
	name   string
	help   string
	typ    string
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// Counter emits one monotone sample. labelPairs alternate key, value.
func (e *Emit) Counter(name, help string, value float64, labelPairs ...string) {
	e.add(name, help, "counter", value, labelPairs)
}

// Gauge emits one gauge sample. labelPairs alternate key, value.
func (e *Emit) Gauge(name, help string, value float64, labelPairs ...string) {
	e.add(name, help, "gauge", value, labelPairs)
}

func (e *Emit) add(name, help, typ string, value float64, labelPairs []string) {
	if !nameRE.MatchString(name) {
		panic("metrics: invalid metric name " + name)
	}
	if len(labelPairs)%2 != 0 {
		panic("metrics: odd label pair list for " + name)
	}
	var sb strings.Builder
	for i := 0; i < len(labelPairs); i += 2 {
		if !nameRE.MatchString(labelPairs[i]) {
			panic("metrics: invalid label name " + labelPairs[i])
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labelPairs[i], escapeLabel(labelPairs[i+1]))
	}
	e.samples = append(e.samples, sample{name: name, help: help, typ: typ, labels: sb.String(), value: value})
}

// Collect registers a scrape-time callback; every WriteTo call invokes it
// with a fresh Emit. Use it to surface counters and gauges whose source
// of truth lives in the serving layer's own atomics.
func (r *Registry) Collect(fn func(*Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WriteTo renders the registry in the Prometheus text exposition format:
// families sorted by name, children sorted by label tuple, histograms as
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := append([]func(*Emit){}, r.collectors...)
	r.mu.Unlock()

	var e Emit
	for _, fn := range collectors {
		fn(&e)
	}

	type block struct {
		name, help, typ string
		lines           []string
	}
	blocks := make(map[string]*block)
	get := func(name, help, typ string) *block {
		b, ok := blocks[name]
		if !ok {
			b = &block{name: name, help: help, typ: typ}
			blocks[name] = b
			return b
		}
		if b.typ != typ {
			panic("metrics: " + name + " emitted as both " + b.typ + " and " + typ)
		}
		return b
	}

	for _, f := range fams {
		b := get(f.name, f.help, f.typ)
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			labels := renderLabels(f.labels, k)
			switch c := f.children[k].(type) {
			case *Counter:
				b.lines = append(b.lines, sampleLine(f.name, labels, "", c.Value()))
			case *Gauge:
				b.lines = append(b.lines, sampleLine(f.name, labels, "", c.Value()))
			case *Histogram:
				var cum uint64
				for i, bound := range c.bounds {
					cum += c.counts[i].Load()
					b.lines = append(b.lines, sampleLine(f.name+"_bucket", labels, `le="`+formatFloat(bound)+`"`, float64(cum)))
				}
				cum += c.counts[len(c.bounds)].Load()
				b.lines = append(b.lines, sampleLine(f.name+"_bucket", labels, `le="+Inf"`, float64(cum)))
				b.lines = append(b.lines, sampleLine(f.name+"_sum", labels, "", c.Sum()))
				b.lines = append(b.lines, sampleLine(f.name+"_count", labels, "", float64(cum)))
			}
		}
		f.mu.RUnlock()
	}
	for _, s := range e.samples {
		b := get(s.name, s.help, s.typ)
		b.lines = append(b.lines, sampleLine(s.name, s.labels, "", s.value))
	}

	names := make([]string, 0, len(blocks))
	for n := range blocks {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		b := blocks[n]
		if b.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", b.name, escapeHelp(b.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", b.name, b.typ)
		for _, l := range b.lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	nn, err := io.WriteString(w, sb.String())
	return int64(nn), err
}

// ContentType is the Prometheus text exposition format version the
// registry renders.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP implements http.Handler: the GET /metrics scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	r.WriteTo(w)
}

// renderLabels expands a joined child key back into {k="v",...} text.
func renderLabels(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	values := strings.Split(key, "\xff")
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", n, escapeLabel(values[i]))
	}
	return sb.String()
}

// sampleLine renders one sample; extra is an additional pre-rendered
// label (the histogram le).
func sampleLine(name, labels, extra string, v float64) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		return name + "{" + all + "} " + formatFloat(v)
	}
	return name + " " + formatFloat(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format. %q adds
// the quotes and escapes \ and "; the format additionally wants literal
// newlines as \n, which %q already produces.
func escapeLabel(v string) string {
	// %q on the caller side handles everything; this hook exists so the
	// escaping policy is centralized should it ever need to diverge.
	return v
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
