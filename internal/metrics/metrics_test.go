package metrics

import (
	"bufio"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseText is a strict-enough exposition-format parser for tests: it
// checks line shapes and returns name{labels} -> value.
func parseText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	sampleRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		key := m[1] + m[2]
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		out[key] = v
	}
	return out
}

func render(t *testing.T, r *Registry) (string, map[string]float64) {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return sb.String(), parseText(t, sb.String())
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2)
	g := r.Gauge("test_depth", "depth")
	g.Set(4.5)
	g.Add(-1.5)
	cv := r.CounterVec("test_by_kind_total", "by kind", "kind")
	cv.With("a").Add(3)
	cv.With("b").Inc()

	text, samples := render(t, r)
	if got := samples["test_ops_total"]; got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if got := samples["test_depth"]; got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	if got := samples[`test_by_kind_total{kind="a"}`]; got != 3 {
		t.Fatalf("labeled counter = %v, want 3", got)
	}
	for _, want := range []string{"# TYPE test_ops_total counter", "# TYPE test_depth gauge", "# HELP test_ops_total ops"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// Families must be sorted by name.
	if strings.Index(text, "test_by_kind_total") > strings.Index(text, "test_ops_total") {
		t.Fatalf("families not sorted by name:\n%s", text)
	}
}

// TestHistogramCumulative pins the histogram contract: bucket series are
// cumulative, monotone, end at +Inf, and the +Inf bucket equals _count.
func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.001, 0.01, 0.1})
	obs := []float64{0.0005, 0.001, 0.004, 0.05, 0.2, 7}
	for _, v := range obs {
		h.Observe(v)
	}
	_, samples := render(t, r)

	buckets := []struct {
		le   string
		want float64
	}{
		{"0.001", 2}, // 0.0005 and the boundary value 0.001 (le is inclusive)
		{"0.01", 3},
		{"0.1", 4},
		{"+Inf", 6},
	}
	prev := 0.0
	for _, b := range buckets {
		got := samples[`test_latency_seconds_bucket{le="`+b.le+`"}`]
		if got != b.want {
			t.Fatalf("bucket le=%s = %v, want %v", b.le, got, b.want)
		}
		if got < prev {
			t.Fatalf("bucket le=%s not cumulative (%v < %v)", b.le, got, prev)
		}
		prev = got
	}
	if got := samples["test_latency_seconds_count"]; got != 6 {
		t.Fatalf("_count = %v, want 6", got)
	}
	if got, want := samples["test_latency_seconds_sum"], 0.0005+0.001+0.004+0.05+0.2+7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("_sum = %v, want %v", got, want)
	}
	if h.Count() != 6 {
		t.Fatalf("Count() = %d, want 6", h.Count())
	}
}

func TestHistogramVecSharesBuckets(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_q_seconds", "per planner", nil, "planner")
	hv.With("Plateaus").Observe(0.002)
	hv.With("Penalty").Observe(1.7)
	_, samples := render(t, r)
	if got := samples[`test_q_seconds_bucket{planner="Plateaus",le="0.0025"}`]; got != 1 {
		t.Fatalf("Plateaus le=0.0025 = %v, want 1", got)
	}
	if got := samples[`test_q_seconds_count{planner="Penalty"}`]; got != 1 {
		t.Fatalf("Penalty count = %v, want 1", got)
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.Collect(func(e *Emit) {
		e.Counter("test_pub_total", "publishes", v, "store", "traffic")
		e.Gauge("test_step", "step", 7)
	})
	v = 42
	_, samples := render(t, r)
	if got := samples[`test_pub_total{store="traffic"}`]; got != 42 {
		t.Fatalf("collector counter = %v, want 42 (must read at scrape time)", got)
	}
	if got := samples["test_step"]; got != 7 {
		t.Fatalf("collector gauge = %v, want 7", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("test_esc", "", "name").With(`a"b\c` + "\nd").Set(1)
	text, _ := render(t, r)
	if !strings.Contains(text, `name="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", text)
	}
}

func TestReRegisterSameShape(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_x_total", "x")
	b := r.Counter("test_x_total", "x")
	if a != b {
		t.Fatalf("re-registration must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering as a different type must panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ok_total", "").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	parseText(t, rec.Body.String())
}

// TestConcurrentUse hammers every instrument kind from many goroutines
// while scraping — the -race coverage of the registry itself.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "")
	h := r.HistogramVec("test_h_seconds", "", nil, "p")
	g := r.Gauge("test_g", "")
	r.Collect(func(e *Emit) { e.Gauge("test_live", "", 1) })
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := strconv.Itoa(w % 3)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.With(name).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					r.WriteTo(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	_, samples := render(t, r)
	if got := samples["test_c_total"]; got != workers*per {
		t.Fatalf("counter = %v, want %d", got, workers*per)
	}
	var count float64
	for w := 0; w < 3; w++ {
		count += samples[`test_h_seconds_count{p="`+strconv.Itoa(w)+`"}`]
	}
	if count != workers*per {
		t.Fatalf("histogram total = %v, want %d", count, workers*per)
	}
}
