// Package osm implements the paper's "Road Network Constructor": it parses
// OpenStreetMap XML, filters the routable road ways inside a rectangular
// area, and assembles the weighted directed graph the routing techniques
// run on — travel time per edge computed as length over maximum speed,
// scaled by 1.3 on non-freeway segments (§III).
//
// The same in-memory model (Data) is also the output format of the
// synthetic city generator, so the full OSM→graph pipeline is exercised
// end-to-end without network access.
package osm

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Node is an OSM node: a point with a global ID.
type Node struct {
	ID  int64
	Lat float64
	Lon float64
}

// Way is an OSM way: an ordered node sequence with tags.
type Way struct {
	ID      int64
	NodeIDs []int64
	Tags    map[string]string
}

// Data is an in-memory OSM extract.
type Data struct {
	Nodes []Node
	Ways  []Way
}

// Tag returns the way's tag value and whether it is present.
func (w *Way) Tag(key string) (string, bool) {
	v, ok := w.Tags[key]
	return v, ok
}

// --- XML parsing -----------------------------------------------------------

type xmlTag struct {
	K string `xml:"k,attr"`
	V string `xml:"v,attr"`
}

type xmlNode struct {
	ID  int64   `xml:"id,attr"`
	Lat float64 `xml:"lat,attr"`
	Lon float64 `xml:"lon,attr"`
}

type xmlNd struct {
	Ref int64 `xml:"ref,attr"`
}

type xmlWay struct {
	ID   int64    `xml:"id,attr"`
	Nds  []xmlNd  `xml:"nd"`
	Tags []xmlTag `xml:"tag"`
}

// Parse reads OSM XML (the format served by Geofabrik exports) into Data.
// Elements other than node and way (relations, metadata) are skipped.
func Parse(r io.Reader) (*Data, error) {
	dec := xml.NewDecoder(r)
	data := &Data{}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("osm: reading XML: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "node":
			var n xmlNode
			if err := dec.DecodeElement(&n, &start); err != nil {
				return nil, fmt.Errorf("osm: decoding node: %w", err)
			}
			data.Nodes = append(data.Nodes, Node{ID: n.ID, Lat: n.Lat, Lon: n.Lon})
		case "way":
			var w xmlWay
			if err := dec.DecodeElement(&w, &start); err != nil {
				return nil, fmt.Errorf("osm: decoding way: %w", err)
			}
			way := Way{ID: w.ID, Tags: make(map[string]string, len(w.Tags))}
			for _, nd := range w.Nds {
				way.NodeIDs = append(way.NodeIDs, nd.Ref)
			}
			for _, tg := range w.Tags {
				way.Tags[tg.K] = tg.V
			}
			data.Ways = append(data.Ways, way)
		}
	}
	return data, nil
}

// WriteXML emits Data as OSM XML readable by Parse.
func (d *Data) WriteXML(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header+"<osm version=\"0.6\" generator=\"repro-citygen\">\n"); err != nil {
		return err
	}
	for _, n := range d.Nodes {
		if _, err := fmt.Fprintf(w, "  <node id=\"%d\" lat=\"%.7f\" lon=\"%.7f\"/>\n", n.ID, n.Lat, n.Lon); err != nil {
			return err
		}
	}
	for _, way := range d.Ways {
		if _, err := fmt.Fprintf(w, "  <way id=\"%d\">\n", way.ID); err != nil {
			return err
		}
		for _, ref := range way.NodeIDs {
			if _, err := fmt.Fprintf(w, "    <nd ref=\"%d\"/>\n", ref); err != nil {
				return err
			}
		}
		keys := make([]string, 0, len(way.Tags))
		for k := range way.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "    <tag k=%q v=%q/>\n", k, way.Tags[k]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "  </way>\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</osm>\n")
	return err
}

// --- Road network construction ----------------------------------------------

// ParseMaxspeed interprets an OSM maxspeed tag value in km/h. It accepts
// plain numbers, "NN km/h" and "NN mph"; anything else (e.g. "signals",
// "none") returns ok=false, selecting the class default.
func ParseMaxspeed(v string) (float64, bool) {
	v = strings.TrimSpace(strings.ToLower(v))
	if v == "" {
		return 0, false
	}
	mph := false
	switch {
	case strings.HasSuffix(v, "mph"):
		mph = true
		v = strings.TrimSpace(strings.TrimSuffix(v, "mph"))
	case strings.HasSuffix(v, "km/h"):
		v = strings.TrimSpace(strings.TrimSuffix(v, "km/h"))
	case strings.HasSuffix(v, "kmh"):
		v = strings.TrimSpace(strings.TrimSuffix(v, "kmh"))
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 || f > 200 {
		return 0, false
	}
	if mph {
		f *= 1.60934
	}
	return f, true
}

// onewayDirection interprets the oneway tag: +1 forward only, -1 backward
// only, 0 both directions.
func onewayDirection(w *Way) int {
	v, ok := w.Tag("oneway")
	if !ok {
		// Motorways are implicitly oneway in OSM.
		if hw, _ := w.Tag("highway"); hw == "motorway" || hw == "motorway_link" {
			return 1
		}
		return 0
	}
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "yes", "true", "1":
		return 1
	case "-1", "reverse":
		return -1
	default:
		return 0
	}
}

// BuildGraph assembles the road network from an extract. If bbox is
// non-nil, only nodes inside it are used (ways are clipped at the
// boundary, matching the paper's rectangular-area filter). Only the
// largest weakly connected component is kept so that every vertex pair in
// the returned graph is routable in at least one direction.
func BuildGraph(d *Data, bbox *geo.BBox) (*graph.Graph, error) {
	coords := make(map[int64]geo.Point, len(d.Nodes))
	for _, n := range d.Nodes {
		p := geo.Point{Lat: n.Lat, Lon: n.Lon}
		if !p.Valid() {
			return nil, fmt.Errorf("osm: node %d has invalid coordinates %v", n.ID, p)
		}
		if bbox != nil && !bbox.Contains(p) {
			continue
		}
		coords[n.ID] = p
	}

	type segment struct {
		a, b   int64
		class  graph.RoadClass
		speed  float64
		lanes  int
		oneway int
	}
	var segs []segment
	for i := range d.Ways {
		w := &d.Ways[i]
		hw, ok := w.Tag("highway")
		if !ok {
			continue
		}
		class, routable := graph.ParseRoadClass(hw)
		if !routable {
			continue
		}
		speed := 0.0
		if v, ok := w.Tag("maxspeed"); ok {
			if s, valid := ParseMaxspeed(v); valid {
				speed = s
			}
		}
		lanes := 0
		if v, ok := w.Tag("lanes"); ok {
			if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 && n < 20 {
				lanes = n
			}
		}
		dir := onewayDirection(w)
		for j := 0; j+1 < len(w.NodeIDs); j++ {
			a, b := w.NodeIDs[j], w.NodeIDs[j+1]
			if _, ok := coords[a]; !ok {
				continue
			}
			if _, ok := coords[b]; !ok {
				continue
			}
			if a == b {
				continue
			}
			segs = append(segs, segment{a: a, b: b, class: class, speed: speed, lanes: lanes, oneway: dir})
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("osm: extract contains no routable road segments")
	}

	// Union-find over OSM node IDs to locate the largest weak component.
	parent := make(map[int64]int64)
	var find func(x int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, s := range segs {
		union(s.a, s.b)
	}
	compSize := make(map[int64]int)
	for id := range parent {
		compSize[find(id)]++
	}
	var bigRoot int64
	bigSize := -1
	for root, size := range compSize {
		if size > bigSize || (size == bigSize && root < bigRoot) {
			bigRoot, bigSize = root, size
		}
	}

	// Assign graph node IDs in deterministic (sorted OSM ID) order.
	used := make([]int64, 0, bigSize)
	for id := range parent {
		if find(id) == bigRoot {
			used = append(used, id)
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	idmap := make(map[int64]graph.NodeID, len(used))
	b := graph.NewBuilder(len(used), len(segs)*2)
	for _, id := range used {
		idmap[id] = b.AddNode(coords[id])
	}
	for _, s := range segs {
		ga, okA := idmap[s.a]
		gb, okB := idmap[s.b]
		if !okA || !okB {
			continue
		}
		from, to := ga, gb
		if s.oneway == -1 {
			from, to = gb, ga
		}
		if _, err := b.AddEdge(graph.EdgeSpec{
			From:     from,
			To:       to,
			SpeedKmh: s.speed,
			Class:    s.class,
			Lanes:    s.lanes,
			TwoWay:   s.oneway == 0,
		}); err != nil {
			return nil, fmt.Errorf("osm: %w", err)
		}
	}
	return b.Build(), nil
}
