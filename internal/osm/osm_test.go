package osm

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
)

const sampleXML = `<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <node id="1" lat="-37.8100" lon="144.9600"/>
  <node id="2" lat="-37.8100" lon="144.9650"/>
  <node id="3" lat="-37.8150" lon="144.9650"/>
  <node id="4" lat="-37.8150" lon="144.9600"/>
  <node id="5" lat="-30.0000" lon="140.0000"/>
  <node id="6" lat="-30.0010" lon="140.0000"/>
  <way id="100">
    <nd ref="1"/>
    <nd ref="2"/>
    <tag k="highway" v="primary"/>
    <tag k="maxspeed" v="60"/>
    <tag k="lanes" v="2"/>
  </way>
  <way id="101">
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="102">
    <nd ref="3"/>
    <nd ref="4"/>
    <nd ref="1"/>
    <tag k="highway" v="residential"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="103">
    <nd ref="1"/>
    <nd ref="3"/>
    <tag k="highway" v="footway"/>
  </way>
  <way id="104">
    <nd ref="5"/>
    <nd ref="6"/>
    <tag k="highway" v="residential"/>
  </way>
  <relation id="200"><tag k="type" v="route"/></relation>
</osm>`

func TestParse(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 6 {
		t.Errorf("nodes = %d, want 6", len(d.Nodes))
	}
	if len(d.Ways) != 5 {
		t.Errorf("ways = %d, want 5", len(d.Ways))
	}
	if d.Nodes[0].ID != 1 || d.Nodes[0].Lat != -37.81 {
		t.Errorf("node[0] = %+v", d.Nodes[0])
	}
	w := d.Ways[0]
	if w.ID != 100 || len(w.NodeIDs) != 2 || w.Tags["highway"] != "primary" {
		t.Errorf("way[0] = %+v", w)
	}
}

func TestParseRejectsMalformedXML(t *testing.T) {
	if _, err := Parse(strings.NewReader("<osm><node id='1' lat='x'")); err == nil {
		t.Error("malformed XML should error")
	}
}

func TestBuildGraphBasic(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 5,6 are a smaller separate component; footway 103 is dropped.
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (largest component only)", g.NumNodes())
	}
	// Ways: 100 two-way (2 edges), 101 two-way (2), 102 oneway 2 segments (2).
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
}

func TestBuildGraphAppliesTags(t *testing.T) {
	d, _ := Parse(strings.NewReader(sampleXML))
	g, err := BuildGraph(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find the primary edge (way 100): speed 60, 2 lanes.
	found := false
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.Class == graph.Primary {
			found = true
			if ed.SpeedKmh != 60 {
				t.Errorf("primary speed = %f, want 60", ed.SpeedKmh)
			}
			if ed.Lanes != 2 {
				t.Errorf("primary lanes = %d, want 2", ed.Lanes)
			}
			wantTime := ed.LengthM / (60 / 3.6) * graph.IntersectionDelayFactor
			if math.Abs(ed.TimeS-wantTime) > 1e-9 {
				t.Errorf("primary travel time = %f, want %f", ed.TimeS, wantTime)
			}
		}
	}
	if !found {
		t.Fatal("primary edge missing")
	}
}

func TestBuildGraphOneway(t *testing.T) {
	d, _ := Parse(strings.NewReader(sampleXML))
	g, err := BuildGraph(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Way 102 is oneway 3->4->1. With sorted-ID node mapping: OSM 1,2,3,4 →
	// graph 0,1,2,3. So edges 2->3 and 3->0 exist, reverses don't.
	if g.FindEdge(2, 3) < 0 || g.FindEdge(3, 0) < 0 {
		t.Error("oneway forward edges missing")
	}
	if g.FindEdge(3, 2) >= 0 || g.FindEdge(0, 3) >= 0 {
		t.Error("oneway reverse edges should not exist")
	}
}

func TestBuildGraphBBoxClip(t *testing.T) {
	d, _ := Parse(strings.NewReader(sampleXML))
	// Box containing only nodes 1 and 2 (lat -37.812..-37.808).
	bb := geo.BBox{MinLat: -37.812, MinLon: 144.95, MaxLat: -37.808, MaxLon: 144.97}
	g, err := BuildGraph(d, &bb)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("clipped nodes = %d, want 2", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("clipped edges = %d, want 2 (two-way 1-2)", g.NumEdges())
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph(&Data{}, nil); err == nil {
		t.Error("empty extract should error")
	}
	// Only non-routable ways.
	d := &Data{
		Nodes: []Node{{ID: 1, Lat: 0, Lon: 0}, {ID: 2, Lat: 0, Lon: 0.001}},
		Ways:  []Way{{ID: 1, NodeIDs: []int64{1, 2}, Tags: map[string]string{"highway": "footway"}}},
	}
	if _, err := BuildGraph(d, nil); err == nil {
		t.Error("extract without roads should error")
	}
	// Invalid coordinates.
	d = &Data{
		Nodes: []Node{{ID: 1, Lat: 95, Lon: 0}, {ID: 2, Lat: 0, Lon: 0.001}},
		Ways:  []Way{{ID: 1, NodeIDs: []int64{1, 2}, Tags: map[string]string{"highway": "primary"}}},
	}
	if _, err := BuildGraph(d, nil); err == nil {
		t.Error("invalid coordinates should error")
	}
}

func TestBuildGraphSkipsMissingAndSelfRefs(t *testing.T) {
	d := &Data{
		Nodes: []Node{
			{ID: 1, Lat: 0, Lon: 0},
			{ID: 2, Lat: 0, Lon: 0.001},
		},
		Ways: []Way{{
			ID:      1,
			NodeIDs: []int64{1, 1, 2, 999}, // self-segment and dangling ref
			Tags:    map[string]string{"highway": "residential"},
		}},
	}
	g, err := BuildGraph(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Errorf("nodes/edges = %d/%d, want 2/2", g.NumNodes(), g.NumEdges())
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	d1, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparsing emitted XML: %v", err)
	}
	if len(d2.Nodes) != len(d1.Nodes) || len(d2.Ways) != len(d1.Ways) {
		t.Fatalf("round trip: %d/%d nodes, %d/%d ways",
			len(d2.Nodes), len(d1.Nodes), len(d2.Ways), len(d1.Ways))
	}
	for i := range d1.Ways {
		if len(d2.Ways[i].NodeIDs) != len(d1.Ways[i].NodeIDs) {
			t.Errorf("way %d node refs differ", i)
		}
		for k, v := range d1.Ways[i].Tags {
			if d2.Ways[i].Tags[k] != v {
				t.Errorf("way %d tag %s: %q vs %q", i, k, d2.Ways[i].Tags[k], v)
			}
		}
	}
	// Graphs built from both must be identical in size.
	g1, err1 := BuildGraph(d1, nil)
	g2, err2 := BuildGraph(d2, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Error("graphs from original and round-tripped XML differ")
	}
}

func TestParseMaxspeed(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"60", 60, true},
		{"50 km/h", 50, true},
		{"50km/h", 50, true},
		{"40 kmh", 40, true},
		{"30 mph", 48.2802, true},
		{" 80 ", 80, true},
		{"signals", 0, false},
		{"none", 0, false},
		{"", 0, false},
		{"-10", 0, false},
		{"1000", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseMaxspeed(c.in)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 0.001) {
			t.Errorf("ParseMaxspeed(%q) = %f,%v want %f,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestOnewayDirection(t *testing.T) {
	mk := func(tags map[string]string) *Way { return &Way{Tags: tags} }
	cases := []struct {
		tags map[string]string
		want int
	}{
		{map[string]string{"oneway": "yes"}, 1},
		{map[string]string{"oneway": "true"}, 1},
		{map[string]string{"oneway": "1"}, 1},
		{map[string]string{"oneway": "-1"}, -1},
		{map[string]string{"oneway": "no"}, 0},
		{map[string]string{}, 0},
		{map[string]string{"highway": "motorway"}, 1},
		{map[string]string{"highway": "motorway", "oneway": "no"}, 0},
	}
	for i, c := range cases {
		if got := onewayDirection(mk(c.tags)); got != c.want {
			t.Errorf("case %d %v: got %d, want %d", i, c.tags, got, c.want)
		}
	}
}
