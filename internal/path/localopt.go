package path

import (
	"repro/internal/graph"
	"repro/internal/sp"
)

// LocalOptimality quantifies the paper's "meaningful route" notion from
// Abraham et al. [2]: a route is locally optimal when every sufficiently
// short subpath is itself a shortest path — routes with small unnecessary
// detours fail this.
//
// CheckLocalOptimality tests every maximal subpath whose travel time does
// not exceed windowS and reports the worst (largest) ratio between the
// subpath's cost and the true shortest-path cost between its endpoints. A
// perfectly locally-optimal route returns 1. Ratios are computed with the
// same weights used to build the path.
//
// The check runs one pruned Dijkstra per window start, so it is intended
// for evaluation and tests, not for the hot query path.
func CheckLocalOptimality(g *graph.Graph, weights []float64, p Path, windowS float64) float64 {
	if len(p.Edges) < 2 {
		return 1
	}
	// Prefix sums of cumulative cost at each node of the path.
	cum := make([]float64, len(p.Nodes))
	for i, e := range p.Edges {
		cum[i+1] = cum[i] + weights[e]
	}
	worst := 1.0
	j := 0
	for i := 0; i < len(p.Nodes)-1; i++ {
		// Grow j to the farthest node within the window from i.
		if j < i+1 {
			j = i + 1
		}
		for j+1 < len(p.Nodes) && cum[j+1]-cum[i] <= windowS {
			j++
		}
		if j <= i+1 {
			continue // single edges are always optimal
		}
		subCost := cum[j] - cum[i]
		if subCost <= 0 {
			continue
		}
		_, optimal := sp.ShortestPath(g, weights, p.Nodes[i], p.Nodes[j])
		if optimal > 0 {
			if r := subCost / optimal; r > worst {
				worst = r
			}
		}
	}
	return worst
}

// IsLocallyOptimal reports whether every windowed subpath of p is within
// tolerance of a true shortest path (ratio ≤ 1+tolerance).
func IsLocallyOptimal(g *graph.Graph, weights []float64, p Path, windowS, tolerance float64) bool {
	return CheckLocalOptimality(g, weights, p, windowS) <= 1+tolerance
}
