// Package path provides the route representation shared by all
// alternative-route techniques plus the route analytics the paper's
// evaluation uses: the Sim(T) similarity measure of Eq. (1), turn counts,
// detour factors and local-optimality checks.
package path

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Path is a route through the road network: a contiguous sequence of
// directed edges together with cached aggregate measures.
type Path struct {
	Edges   []graph.EdgeID
	Nodes   []graph.NodeID // Nodes[i] precedes Edges[i]; len(Nodes) == len(Edges)+1
	TimeS   float64        // travel time under the weights passed to New
	LengthM float64        // geometric length in meters
}

// New assembles a Path from an edge sequence starting at s, validating
// contiguity and computing travel time under the given weights. An empty
// edge sequence yields the trivial path at s.
func New(g *graph.Graph, weights []float64, s graph.NodeID, edges []graph.EdgeID) (Path, error) {
	p := Path{
		Edges: edges,
		Nodes: make([]graph.NodeID, 0, len(edges)+1),
	}
	p.Nodes = append(p.Nodes, s)
	cur := s
	for i, e := range edges {
		ed := g.Edge(e)
		if ed.From != cur {
			return Path{}, fmt.Errorf("path: edge %d (%d->%d) does not continue from node %d", i, ed.From, ed.To, cur)
		}
		cur = ed.To
		p.Nodes = append(p.Nodes, cur)
		p.TimeS += weights[e]
		p.LengthM += ed.LengthM
	}
	return p, nil
}

// MustNew is New but panics on malformed input; for use with edge
// sequences produced by the sp package, which are contiguous by
// construction.
func MustNew(g *graph.Graph, weights []float64, s graph.NodeID, edges []graph.EdgeID) Path {
	p, err := New(g, weights, s, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the first node of the path.
func (p Path) Source() graph.NodeID { return p.Nodes[0] }

// Target returns the last node of the path.
func (p Path) Target() graph.NodeID { return p.Nodes[len(p.Nodes)-1] }

// Empty reports whether the path has no edges.
func (p Path) Empty() bool { return len(p.Edges) == 0 }

// TimeUnder returns the path's travel time evaluated under a different
// weight vector — the operation behind the paper's Fig. 4 analysis, where
// the same route is timed under OSM data and under the commercial
// provider's data.
func (p Path) TimeUnder(weights []float64) float64 {
	var t float64
	for _, e := range p.Edges {
		t += weights[e]
	}
	return t
}

// Points returns the coordinate polyline of the path.
func (p Path) Points(g *graph.Graph) []geo.Point {
	pts := make([]geo.Point, len(p.Nodes))
	for i, v := range p.Nodes {
		pts[i] = g.Point(v)
	}
	return pts
}

// Equal reports whether two paths traverse exactly the same edge sequence.
func Equal(a, b Path) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// segmentKey canonicalizes a directed edge to its undirected road segment
// so that overlap measurement treats the two directions of a street as the
// same physical road.
type segmentKey struct {
	lo, hi graph.NodeID
}

func segKey(e graph.Edge) segmentKey {
	if e.From < e.To {
		return segmentKey{e.From, e.To}
	}
	return segmentKey{e.To, e.From}
}

// Overlap returns the total length of road segments shared by a and b and
// the length of their union, both in meters, as used by Eq. (1).
func Overlap(g *graph.Graph, a, b Path) (interM, unionM float64) {
	seen := make(map[segmentKey]float64, len(a.Edges))
	var lenA float64
	for _, e := range a.Edges {
		ed := g.Edge(e)
		k := segKey(ed)
		if _, dup := seen[k]; !dup {
			seen[k] = ed.LengthM
		}
		lenA += ed.LengthM
	}
	var lenB float64
	counted := make(map[segmentKey]bool, len(b.Edges))
	for _, e := range b.Edges {
		ed := g.Edge(e)
		lenB += ed.LengthM
		k := segKey(ed)
		if counted[k] {
			continue
		}
		counted[k] = true
		if l, ok := seen[k]; ok {
			interM += l
		}
	}
	unionM = lenA + lenB - interM
	return interM, unionM
}

// Jaccard returns |X∩Y| / |X∪Y| over segment lengths, the pairwise
// similarity inside Eq. (1). Two empty paths have similarity 0.
func Jaccard(g *graph.Graph, a, b Path) float64 {
	inter, union := Overlap(g, a, b)
	if union <= 0 {
		return 0
	}
	return inter / union
}

// SimT implements Eq. (1) of the paper: the maximum pairwise Jaccard
// similarity over all distinct pairs in the route set T. Sets with fewer
// than two routes score 0.
func SimT(g *graph.Graph, routes []Path) float64 {
	var maxSim float64
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if s := Jaccard(g, routes[i], routes[j]); s > maxSim {
				maxSim = s
			}
		}
	}
	return maxSim
}

// MaxSimilarityTo returns the largest Jaccard similarity between p and any
// path in set; 0 for an empty set. This is the quantity the Dissimilarity
// technique thresholds: p is admissible iff MaxSimilarityTo(p, set) < θ.
func MaxSimilarityTo(g *graph.Graph, p Path, set []Path) float64 {
	var maxSim float64
	for i := range set {
		if s := Jaccard(g, p, set[i]); s > maxSim {
			maxSim = s
		}
	}
	return maxSim
}

// UnionShare returns the fraction of p's length that runs along road
// segments used by *any* path in set — the dissimilarity criterion of the
// SSVP family (Chondrogiannis et al.): a candidate is admitted only if
// UnionShare < θ, i.e. more than 1−θ of it is new road. It returns 0 for
// an empty set or an empty path.
func UnionShare(g *graph.Graph, p Path, set []Path) float64 {
	if len(set) == 0 || p.Empty() {
		return 0
	}
	used := make(map[segmentKey]bool)
	for i := range set {
		for _, e := range set[i].Edges {
			used[segKey(g.Edge(e))] = true
		}
	}
	var shared, total float64
	for _, e := range p.Edges {
		ed := g.Edge(e)
		total += ed.LengthM
		if used[segKey(ed)] {
			shared += ed.LengthM
		}
	}
	if total == 0 {
		return 0
	}
	return shared / total
}

// TurnCount returns the number of interior vertices at which the direction
// change exceeds thresholdDeg — the "less zig-zag" criterion participants
// mentioned in the study (§IV-C).
func TurnCount(g *graph.Graph, p Path, thresholdDeg float64) int {
	count := 0
	for i := 1; i+1 < len(p.Nodes); i++ {
		a := g.Point(p.Nodes[i-1])
		b := g.Point(p.Nodes[i])
		c := g.Point(p.Nodes[i+1])
		if geo.TurnAngle(a, b, c) > thresholdDeg {
			count++
		}
	}
	return count
}

// Stretch returns the detour factor of p relative to the fastest travel
// time: p.TimeS / fastest. The paper's upper-bound parameter constrains
// this to at most 1.4 for reported alternatives.
func Stretch(p Path, fastestTimeS float64) float64 {
	if fastestTimeS <= 0 {
		return math.Inf(1)
	}
	return p.TimeS / fastestTimeS
}

// MeanLanes returns the length-weighted average per-direction lane count of
// the path — the "wider roads" signal from §IV-C.
func MeanLanes(g *graph.Graph, p Path) float64 {
	if p.Empty() {
		return 0
	}
	var weighted, total float64
	for _, e := range p.Edges {
		ed := g.Edge(e)
		weighted += float64(ed.Lanes) * ed.LengthM
		total += ed.LengthM
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// SharedPrefixLen returns the number of leading edges a and b share.
func SharedPrefixLen(a, b Path) int {
	n := len(a.Edges)
	if len(b.Edges) < n {
		n = len(b.Edges)
	}
	for i := 0; i < n; i++ {
		if a.Edges[i] != b.Edges[i] {
			return i
		}
	}
	return n
}

// Dedup returns routes with exact duplicates (same edge sequence) removed,
// preserving first-seen order.
func Dedup(routes []Path) []Path {
	out := routes[:0:0]
	for _, r := range routes {
		dup := false
		for _, kept := range out {
			if Equal(r, kept) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}
