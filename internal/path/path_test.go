package path

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/sp"
)

// ladder builds a 2×n ladder graph (two parallel streets with rungs):
//
//	0 - 1 - 2 - ... - (n-1)        top street
//	|   |   |          |
//	n - n+1 - ...     (2n-1)       bottom street
func ladder(n int) *graph.Graph {
	b := graph.NewBuilder(2*n, 6*n)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, 200, float64(i)*200))
	}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(o, 0, float64(i)*200))
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.EdgeSpec{From: graph.NodeID(i), To: graph.NodeID(i + 1), Class: graph.Residential, TwoWay: true})
		b.AddEdge(graph.EdgeSpec{From: graph.NodeID(n + i), To: graph.NodeID(n + i + 1), Class: graph.Residential, TwoWay: true})
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.EdgeSpec{From: graph.NodeID(i), To: graph.NodeID(n + i), Class: graph.Residential, TwoWay: true})
	}
	return b.Build()
}

func topPath(t *testing.T, g *graph.Graph, n int) Path {
	t.Helper()
	w := g.CopyWeights()
	edges := make([]graph.EdgeID, 0, n-1)
	for i := 0; i+1 < n; i++ {
		e := g.FindEdge(graph.NodeID(i), graph.NodeID(i+1))
		if e < 0 {
			t.Fatalf("missing top edge %d->%d", i, i+1)
		}
		edges = append(edges, e)
	}
	return MustNew(g, w, 0, edges)
}

func bottomViaPath(t *testing.T, g *graph.Graph, n int) Path {
	t.Helper()
	// 0 -> n -> n+1 -> ... -> 2n-1 -> n-1 : down, along the bottom, up.
	w := g.CopyWeights()
	edges := []graph.EdgeID{g.FindEdge(0, graph.NodeID(n))}
	for i := 0; i+1 < n; i++ {
		edges = append(edges, g.FindEdge(graph.NodeID(n+i), graph.NodeID(n+i+1)))
	}
	edges = append(edges, g.FindEdge(graph.NodeID(2*n-1), graph.NodeID(n-1)))
	for i, e := range edges {
		if e < 0 {
			t.Fatalf("missing edge at index %d", i)
		}
	}
	return MustNew(g, w, 0, edges)
}

func TestNewValidatesContiguity(t *testing.T) {
	g := ladder(4)
	w := g.CopyWeights()
	e01 := g.FindEdge(0, 1)
	e23 := g.FindEdge(2, 3)
	if _, err := New(g, w, 0, []graph.EdgeID{e01, e23}); err == nil {
		t.Error("gap in edge sequence should be rejected")
	}
	if _, err := New(g, w, 1, []graph.EdgeID{e01}); err == nil {
		t.Error("wrong start node should be rejected")
	}
	p, err := New(g, w, 0, []graph.EdgeID{e01})
	if err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if p.Source() != 0 || p.Target() != 1 {
		t.Errorf("endpoints = %d,%d want 0,1", p.Source(), p.Target())
	}
}

func TestEmptyPath(t *testing.T) {
	g := ladder(3)
	w := g.CopyWeights()
	p := MustNew(g, w, 2, nil)
	if !p.Empty() || p.TimeS != 0 || p.LengthM != 0 {
		t.Error("empty path should have zero measures")
	}
	if p.Source() != 2 || p.Target() != 2 {
		t.Error("empty path endpoints should equal the start node")
	}
}

func TestTimeAndLengthAccumulate(t *testing.T) {
	g := ladder(5)
	w := g.CopyWeights()
	p := topPath(t, g, 5)
	var wantT, wantL float64
	for _, e := range p.Edges {
		wantT += w[e]
		wantL += g.Edge(e).LengthM
	}
	if math.Abs(p.TimeS-wantT) > 1e-9 || math.Abs(p.LengthM-wantL) > 1e-9 {
		t.Errorf("accumulated %f/%f, want %f/%f", p.TimeS, p.LengthM, wantT, wantL)
	}
}

func TestTimeUnderDifferentWeights(t *testing.T) {
	g := ladder(5)
	w := g.CopyWeights()
	p := topPath(t, g, 5)
	w2 := g.CopyWeights()
	for i := range w2 {
		w2[i] *= 2
	}
	if got := p.TimeUnder(w2); math.Abs(got-2*p.TimeS) > 1e-9 {
		t.Errorf("TimeUnder doubled weights = %f, want %f", got, 2*p.TimeS)
	}
	if got := p.TimeUnder(w); math.Abs(got-p.TimeS) > 1e-9 {
		t.Errorf("TimeUnder original weights = %f, want %f", got, p.TimeS)
	}
}

func TestJaccardIdenticalAndDisjoint(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n)
	bottom := bottomViaPath(t, g, n)
	if got := Jaccard(g, top, top); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %f, want 1", got)
	}
	got := Jaccard(g, top, bottom)
	if got != 0 {
		t.Errorf("disjoint paths similarity = %f, want 0", got)
	}
}

func TestJaccardCountsOppositeDirectionsAsSameRoad(t *testing.T) {
	g := ladder(4)
	w := g.CopyWeights()
	// Forward along the top vs backward along the top: same physical road.
	fwd := topPath(t, g, 4)
	var back []graph.EdgeID
	for i := 3; i > 0; i-- {
		back = append(back, g.FindEdge(graph.NodeID(i), graph.NodeID(i-1)))
	}
	bwd := MustNew(g, w, 3, back)
	if got := Jaccard(g, fwd, bwd); math.Abs(got-1) > 1e-9 {
		t.Errorf("opposite-direction same road similarity = %f, want 1", got)
	}
}

func TestJaccardSymmetricAndBounded(t *testing.T) {
	n := 8
	g := ladder(n)
	w := g.CopyWeights()
	rng := rand.New(rand.NewSource(5))
	randomWalkPath := func(start graph.NodeID, steps int) Path {
		edges := []graph.EdgeID{}
		cur := start
		for i := 0; i < steps; i++ {
			out := g.OutEdges(cur)
			if len(out) == 0 {
				break
			}
			e := out[rng.Intn(len(out))]
			edges = append(edges, e)
			cur = g.Edge(e).To
		}
		return MustNew(g, w, start, edges)
	}
	for i := 0; i < 50; i++ {
		a := randomWalkPath(graph.NodeID(rng.Intn(2*n)), rng.Intn(10))
		b := randomWalkPath(graph.NodeID(rng.Intn(2*n)), rng.Intn(10))
		s1, s2 := Jaccard(g, a, b), Jaccard(g, b, a)
		if math.Abs(s1-s2) > 1e-9 {
			t.Fatalf("similarity not symmetric: %f vs %f", s1, s2)
		}
		if s1 < 0 || s1 > 1+1e-9 {
			t.Fatalf("similarity out of range: %f", s1)
		}
	}
}

func TestSimT(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n)
	bottom := bottomViaPath(t, g, n)
	if got := SimT(g, nil); got != 0 {
		t.Errorf("SimT(empty) = %f, want 0", got)
	}
	if got := SimT(g, []Path{top}); got != 0 {
		t.Errorf("SimT(single) = %f, want 0", got)
	}
	if got := SimT(g, []Path{top, bottom}); got != 0 {
		t.Errorf("SimT(disjoint pair) = %f, want 0", got)
	}
	// Adding a duplicate raises SimT to 1 regardless of other members.
	if got := SimT(g, []Path{top, bottom, top}); math.Abs(got-1) > 1e-9 {
		t.Errorf("SimT with duplicate = %f, want 1", got)
	}
}

func TestMaxSimilarityTo(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n)
	bottom := bottomViaPath(t, g, n)
	if got := MaxSimilarityTo(g, top, nil); got != 0 {
		t.Errorf("empty set similarity = %f, want 0", got)
	}
	if got := MaxSimilarityTo(g, top, []Path{bottom, top}); math.Abs(got-1) > 1e-9 {
		t.Errorf("similarity to set containing itself = %f, want 1", got)
	}
}

func TestTurnCount(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n) // straight line: no turns
	if got := TurnCount(g, top, 45); got != 0 {
		t.Errorf("straight path turn count = %d, want 0", got)
	}
	bottom := bottomViaPath(t, g, n) // down, along, up: exactly 2 right angles
	if got := TurnCount(g, bottom, 45); got != 2 {
		t.Errorf("dog-leg path turn count = %d, want 2", got)
	}
}

func TestStretch(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n)
	if got := Stretch(top, top.TimeS); math.Abs(got-1) > 1e-9 {
		t.Errorf("stretch vs itself = %f, want 1", got)
	}
	if got := Stretch(top, 0); !math.IsInf(got, 1) {
		t.Errorf("stretch with zero baseline = %f, want +Inf", got)
	}
	bottom := bottomViaPath(t, g, n)
	if got := Stretch(bottom, top.TimeS); got <= 1 {
		t.Errorf("longer path stretch = %f, want > 1", got)
	}
}

func TestMeanLanes(t *testing.T) {
	b := graph.NewBuilder(3, 4)
	o := geo.Point{Lat: 0, Lon: 0}
	n0 := b.AddNode(o)
	n1 := b.AddNode(geo.Offset(o, 0, 1000))
	n2 := b.AddNode(geo.Offset(o, 0, 2000))
	b.AddEdge(graph.EdgeSpec{From: n0, To: n1, Class: graph.Motorway, Lanes: 3})
	b.AddEdge(graph.EdgeSpec{From: n1, To: n2, Class: graph.Residential, Lanes: 1})
	g := b.Build()
	w := g.CopyWeights()
	p := MustNew(g, w, n0, []graph.EdgeID{0, 1})
	// Equal lengths: mean of 3 and 1.
	if got := MeanLanes(g, p); math.Abs(got-2) > 0.01 {
		t.Errorf("mean lanes = %f, want 2", got)
	}
	if got := MeanLanes(g, MustNew(g, w, n0, nil)); got != 0 {
		t.Errorf("empty path mean lanes = %f, want 0", got)
	}
}

func TestSharedPrefixLen(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n)
	bottom := bottomViaPath(t, g, n)
	if got := SharedPrefixLen(top, top); got != len(top.Edges) {
		t.Errorf("self prefix = %d, want %d", got, len(top.Edges))
	}
	if got := SharedPrefixLen(top, bottom); got != 0 {
		t.Errorf("diverging-at-start prefix = %d, want 0", got)
	}
}

func TestDedup(t *testing.T) {
	n := 6
	g := ladder(n)
	top := topPath(t, g, n)
	bottom := bottomViaPath(t, g, n)
	got := Dedup([]Path{top, bottom, top, bottom, top})
	if len(got) != 2 {
		t.Fatalf("dedup kept %d, want 2", len(got))
	}
	if !Equal(got[0], top) || !Equal(got[1], bottom) {
		t.Error("dedup should preserve first-seen order")
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Error("dedup of nil should be empty")
	}
}

func TestOverlapPropertyRandomSubpaths(t *testing.T) {
	n := 10
	g := ladder(n)
	w := g.CopyWeights()
	full := topPath(t, g, n)
	if err := quick.Check(func(rawStart, rawLen uint8) bool {
		start := int(rawStart) % len(full.Edges)
		length := 1 + int(rawLen)%(len(full.Edges)-start)
		sub := MustNew(g, w, full.Nodes[start], full.Edges[start:start+length])
		inter, union := Overlap(g, full, sub)
		// A subpath's overlap with the full path is its own length.
		if math.Abs(inter-sub.LengthM) > 1e-6 {
			return false
		}
		return math.Abs(union-full.LengthM) < 1e-6
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnionShare(t *testing.T) {
	n := 6
	g := ladder(n)
	w := g.CopyWeights()
	top := topPath(t, g, n)
	bottom := bottomViaPath(t, g, n)
	if got := UnionShare(g, top, nil); got != 0 {
		t.Errorf("empty set share = %f, want 0", got)
	}
	if got := UnionShare(g, MustNew(g, w, 0, nil), []Path{top}); got != 0 {
		t.Errorf("empty path share = %f, want 0", got)
	}
	if got := UnionShare(g, top, []Path{top}); math.Abs(got-1) > 1e-9 {
		t.Errorf("self share = %f, want 1", got)
	}
	if got := UnionShare(g, top, []Path{bottom}); got != 0 {
		t.Errorf("disjoint share = %f, want 0", got)
	}
	// A path half on the top street, half new, against {top}: the shared
	// fraction equals the shared length over the path length.
	half := MustNew(g, w, 0, top.Edges[:len(top.Edges)/2])
	if got := UnionShare(g, half, []Path{top}); math.Abs(got-1) > 1e-9 {
		t.Errorf("subpath share = %f, want 1", got)
	}
	// Share against a set is monotone: adding paths can only increase it.
	s1 := UnionShare(g, bottom, []Path{top})
	s2 := UnionShare(g, bottom, []Path{top, bottom})
	if s2 < s1 {
		t.Errorf("adding a set member decreased share: %f -> %f", s1, s2)
	}
}

func TestUnionShareBoundsJaccard(t *testing.T) {
	// For any candidate p and set P: Jaccard(p, q) ≤ UnionShare(p, P) for
	// every q in P — the property the Dissimilarity planner relies on.
	n := 8
	g := ladder(n)
	w := g.CopyWeights()
	rng := rand.New(rand.NewSource(11))
	randomWalk := func(start graph.NodeID, steps int) Path {
		edges := []graph.EdgeID{}
		cur := start
		for i := 0; i < steps; i++ {
			out := g.OutEdges(cur)
			if len(out) == 0 {
				break
			}
			e := out[rng.Intn(len(out))]
			edges = append(edges, e)
			cur = g.Edge(e).To
		}
		return MustNew(g, w, start, edges)
	}
	for i := 0; i < 60; i++ {
		p := randomWalk(graph.NodeID(rng.Intn(2*n)), 1+rng.Intn(12))
		set := []Path{
			randomWalk(graph.NodeID(rng.Intn(2*n)), 1+rng.Intn(12)),
			randomWalk(graph.NodeID(rng.Intn(2*n)), 1+rng.Intn(12)),
		}
		share := UnionShare(g, p, set)
		for _, q := range set {
			if j := Jaccard(g, p, q); j > share+1e-9 {
				t.Fatalf("Jaccard %f exceeds union share %f", j, share)
			}
		}
	}
}

func TestLocalOptimality(t *testing.T) {
	n := 8
	g := ladder(n)
	w := g.CopyWeights()
	// The true shortest path is locally optimal at any window.
	edges, d := sp.ShortestPath(g, w, 0, graph.NodeID(n-1))
	best := MustNew(g, w, 0, edges)
	if got := CheckLocalOptimality(g, w, best, d); got > 1+1e-9 {
		t.Errorf("shortest path local-optimality ratio = %f, want 1", got)
	}
	if !IsLocallyOptimal(g, w, best, d, 0.001) {
		t.Error("shortest path must be locally optimal")
	}
	// A path with a pointless down-and-up detour is not.
	detourEdges := []graph.EdgeID{
		g.FindEdge(0, graph.NodeID(n)), // down
		g.FindEdge(graph.NodeID(n), graph.NodeID(n+1)),
		g.FindEdge(graph.NodeID(n+1), 1), // back up
	}
	for i := 1; i+1 < n; i++ {
		detourEdges = append(detourEdges, g.FindEdge(graph.NodeID(i), graph.NodeID(i+1)))
	}
	detour := MustNew(g, w, 0, detourEdges)
	if got := CheckLocalOptimality(g, w, detour, detour.TimeS); got <= 1+1e-9 {
		t.Errorf("detour path local-optimality ratio = %f, want > 1", got)
	}
	if IsLocallyOptimal(g, w, detour, detour.TimeS, 0.01) {
		t.Error("detour path must not be locally optimal at full window")
	}
	// Trivial paths are vacuously optimal.
	if got := CheckLocalOptimality(g, w, MustNew(g, w, 0, nil), 100); got != 1 {
		t.Errorf("empty path ratio = %f, want 1", got)
	}
}

func BenchmarkJaccard(b *testing.B) {
	n := 200
	g := ladder(n)
	w := g.CopyWeights()
	e1, _ := sp.ShortestPath(g, w, 0, graph.NodeID(n-1))
	p1 := MustNew(g, w, 0, e1)
	p2 := bottomViaPathBench(g, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(g, p1, p2)
	}
}

func bottomViaPathBench(g *graph.Graph, n int) Path {
	w := g.CopyWeights()
	edges := []graph.EdgeID{g.FindEdge(0, graph.NodeID(n))}
	for i := 0; i+1 < n; i++ {
		edges = append(edges, g.FindEdge(graph.NodeID(n+i), graph.NodeID(n+i+1)))
	}
	edges = append(edges, g.FindEdge(graph.NodeID(2*n-1), graph.NodeID(n-1)))
	return MustNew(g, w, 0, edges)
}
