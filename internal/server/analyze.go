package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Analysis of real rating submissions collected by the demo server: the
// same aggregation §IV-A applies to the study data — per-approach mean and
// standard deviation, split by residency, plus the one-way ANOVA.

// approachDisplay maps blinded display order (A-D) to technique names for
// the analysis output, as in the paper's footnote.
var approachDisplay = [4]string{"A (Google Maps)", "B (Plateaus)", "C (Dissimilarity)", "D (Penalty)"}

// LoadRatings reads a ratings JSON file written by the demo server.
func LoadRatings(path string) ([]RatingSubmission, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var subs []RatingSubmission
	if err := json.Unmarshal(data, &subs); err != nil {
		return nil, fmt.Errorf("server: parsing %s: %w", path, err)
	}
	for i, s := range subs {
		for _, v := range s.Ratings {
			if v < 1 || v > 5 {
				return nil, fmt.Errorf("server: submission %d has rating %d outside 1-5", i, v)
			}
		}
	}
	return subs, nil
}

// AnalyzeRatings renders the §IV-A analysis for collected submissions:
// per-city and overall mean (sd) per approach for all respondents,
// residents and non-residents, each with a one-way ANOVA when enough data
// exists.
func AnalyzeRatings(subs []RatingSubmission) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Collected responses: %d\n\n", len(subs))
	if len(subs) == 0 {
		return sb.String()
	}
	cities := map[string]bool{}
	for _, s := range subs {
		cities[s.City] = true
	}
	names := make([]string, 0, len(cities))
	for c := range cities {
		names = append(names, c)
	}
	sort.Strings(names)

	scopes := append([]string{""}, names...)
	for _, city := range scopes {
		label := city
		if label == "" {
			label = "All cities"
		}
		fmt.Fprintf(&sb, "== %s ==\n", label)
		for _, grp := range []struct {
			name string
			keep func(RatingSubmission) bool
		}{
			{"all", func(RatingSubmission) bool { return true }},
			{"residents", func(s RatingSubmission) bool { return s.Resident }},
			{"non-residents", func(s RatingSubmission) bool { return !s.Resident }},
		} {
			var sel []RatingSubmission
			for _, s := range subs {
				if (city == "" || s.City == city) && grp.keep(s) {
					sel = append(sel, s)
				}
			}
			if len(sel) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %s (%d responses):\n", grp.name, len(sel))
			groups := make([][]float64, 4)
			for a := 0; a < 4; a++ {
				xs := make([]float64, len(sel))
				for i, s := range sel {
					xs[i] = float64(s.Ratings[a])
				}
				groups[a] = xs
				fmt.Fprintf(&sb, "    %-20s %.2f (%.2f)\n", approachDisplay[a], stats.Mean(xs), stats.StdDev(xs))
			}
			if res, err := stats.OneWayANOVA(groups...); err == nil {
				fmt.Fprintf(&sb, "    ANOVA: F(%d, %d) = %.3f, p = %.3f\n",
					res.DFBetwe, res.DFWithin, res.F, res.P)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
