package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"testing"
)

func fakeSubmissions(n int, seed int64) []RatingSubmission {
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"Melbourne", "Dhaka", "Copenhagen"}
	subs := make([]RatingSubmission, n)
	for i := range subs {
		subs[i] = RatingSubmission{
			City:     cities[rng.Intn(3)],
			Resident: rng.Intn(2) == 0,
			Ratings:  [4]int{1 + rng.Intn(5), 1 + rng.Intn(5), 1 + rng.Intn(5), 1 + rng.Intn(5)},
		}
	}
	return subs
}

func TestAnalyzeRatings(t *testing.T) {
	subs := fakeSubmissions(120, 1)
	out := AnalyzeRatings(subs)
	for _, want := range []string{
		"Collected responses: 120",
		"All cities",
		"Melbourne", "Dhaka", "Copenhagen",
		"residents", "non-residents",
		"A (Google Maps)", "B (Plateaus)", "C (Dissimilarity)", "D (Penalty)",
		"ANOVA: F(3,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q", want)
		}
	}
}

func TestAnalyzeRatingsEmpty(t *testing.T) {
	out := AnalyzeRatings(nil)
	if !strings.Contains(out, "Collected responses: 0") {
		t.Error("empty analysis should report zero responses")
	}
}

func TestAnalyzeRatingsNullANOVACalibration(t *testing.T) {
	// Uniform random ratings per approach: ANOVA should rarely reject.
	subs := fakeSubmissions(400, 7)
	out := AnalyzeRatings(subs)
	// Just sanity: means land near 3 for uniform 1..5.
	if !strings.Contains(out, "3.") {
		t.Error("uniform ratings should average near 3")
	}
}

func TestLoadRatings(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.json"
	subs := fakeSubmissions(10, 3)
	data, _ := json.Marshal(subs)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRatings(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("loaded %d, want 10", len(got))
	}
	if _, err := LoadRatings(dir + "/missing.json"); err == nil {
		t.Error("missing file should error")
	}
	os.WriteFile(path, []byte("not json"), 0o644)
	if _, err := LoadRatings(path); err == nil {
		t.Error("bad JSON should error")
	}
	os.WriteFile(path, []byte(`[{"city":"X","ratings":[0,3,3,3]}]`), 0o644)
	if _, err := LoadRatings(path); err == nil {
		t.Error("out-of-range rating should error")
	}
}

func TestDemoToAnalysisRoundTrip(t *testing.T) {
	// Ratings submitted through the HTTP API must be loadable and
	// analyzable — the full §IV pipeline on live demo data.
	store := t.TempDir() + "/ratings.json"
	ts := newTestServer(t, store)
	for i := 0; i < 4; i++ {
		body := `{"city":"Copenhagen","resident":` + []string{"true", "false"}[i%2] +
			`,"ratings":[4,3,5,2]}`
		res, err := httpPost(ts.URL+"/api/rating", body)
		if err != nil {
			t.Fatal(err)
		}
		if res != 200 {
			t.Fatalf("rating %d status %d", i, res)
		}
	}
	subs, err := LoadRatings(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("loaded %d, want 4", len(subs))
	}
	out := AnalyzeRatings(subs)
	if !strings.Contains(out, "Collected responses: 4") || !strings.Contains(out, "Copenhagen") {
		t.Error("round-trip analysis incomplete")
	}
}

func httpPost(url, body string) (int, error) {
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	res.Body.Close()
	return res.StatusCode, nil
}
