package server

import (
	"encoding/json"
	"log"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/weights"
)

// Option configures a Server at construction (server.New is variadic, so
// existing two-argument callers are untouched).
type Option func(*Server)

// WithVerbose controls the per-query log lines of the hot handlers
// (/api/routes, /api/matrix). They are off by default: a log.Printf per
// query funnels every worker through the logger's mutex and the write(2)
// behind it, which serializes an otherwise concurrent serving path under
// load. Error logs stay unconditional either way. Interactive runs want
// them on — the demo server's -verbose flag decides.
func WithVerbose(v bool) Option {
	return func(s *Server) { s.verbose = v }
}

// WithMetrics equips the server with a metrics registry: GET /metrics
// serves the Prometheus text exposition, every city's router and matrix
// engine record per-query latency/cache/customization/selection/matrix
// histograms, and scrape-time collectors export the serving counters
// that already live in the stack's atomics (store versions and publish
// counts, versions served per planner, elimination-tree query counters,
// selection-cache hit rates, ingest state).
func WithMetrics() Option {
	return func(s *Server) {
		s.registry = metrics.NewRegistry()
		for name, c := range s.cities {
			if c.Router != nil {
				m := core.NewMetrics(s.registry, name)
				c.Router.SetMetrics(m)
				if c.Matrix != nil {
					c.Matrix.SetMetrics(m)
				}
			}
		}
		s.registry.Collect(s.collectServing)
	}
}

// WithIngest enables POST /api/observations, the telemetry ingest
// endpoint feeding each city's Ingest path. Without it the route is not
// registered (the demo server's -ingest flag).
func WithIngest() Option {
	return func(s *Server) { s.ingest = true }
}

// Registry returns the metrics registry (nil unless WithMetrics).
func (s *Server) Registry() *metrics.Registry { return s.registry }

// collectServing is the scrape-time collector: counters and gauges whose
// source of truth is the serving layer's own atomics. Everything read
// here is passive — ServingVersions and HierarchyStatus never nudge a
// rebuild, so scrapes cannot perturb what they measure.
func (s *Server) collectServing(e *metrics.Emit) {
	names := make([]string, 0, len(s.cities))
	for name := range s.cities {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := s.cities[name]
		if c.PublicStore != nil {
			emitStore(e, name, "public", c.PublicStore)
		}
		if c.TrafficStore != nil {
			emitStore(e, name, "traffic", c.TrafficStore)
		}
		if c.Seq != nil {
			e.Gauge("routing_traffic_step", "Current step of the rush-hour sequence.",
				float64(c.Seq.Step()), "city", name)
		}
		if c.Router != nil {
			versions := c.Router.ServingVersions()
			statuses := c.Router.HierarchyStatuses()
			for i, p := range c.Router.Planners() {
				e.Gauge("routing_serving_version", "Weight snapshot version currently installed, per planner.",
					float64(versions[i]), "city", name, "planner", p.Name())
				st := statuses[i]
				if st.Kind == "" {
					continue
				}
				e.Counter("routing_elim_queries_total", "Elimination-tree point-to-point queries (accumulated across publish swaps).",
					float64(st.ElimQueries), "city", name, "planner", p.Name())
				e.Counter("routing_elim_truncated_total", "Elimination-tree ascents truncated by the incumbent bound.",
					float64(st.ElimTruncated), "city", name, "planner", p.Name())
				e.Counter("routing_elim_ascent_nodes_total", "Ascent nodes settled by elimination-tree queries.",
					float64(st.ElimAscentNodes), "city", name, "planner", p.Name())
				e.Counter("routing_selection_cache_hits_total", "RPHAST selection-cache hits.",
					float64(st.SelectionHits), "city", name, "planner", p.Name())
				e.Counter("routing_selection_cache_misses_total", "RPHAST selection-cache misses.",
					float64(st.SelectionMisses), "city", name, "planner", p.Name())
				e.Counter("routing_selection_cache_evictions_total", "RPHAST selection-cache evictions.",
					float64(st.SelectionEvictions), "city", name, "planner", p.Name())
			}
			hits, misses := c.Router.Engine().CacheStats()
			e.Counter("routing_result_cache_entries_hits_total", "Result-cache hits as counted by the cache itself.",
				float64(hits), "city", name)
			e.Counter("routing_result_cache_entries_misses_total", "Result-cache misses as counted by the cache itself.",
				float64(misses), "city", name)
		}
		if c.Ingest != nil {
			st := c.Ingest.Stats()
			e.Counter("routing_ingest_observations_total", "Telemetry observations applied.",
				float64(st.Observations), "city", name)
			e.Counter("routing_ingest_closures_total", "Closure observations among them.",
				float64(st.Closures), "city", name)
			e.Counter("routing_ingest_publishes_total", "Snapshots published by the ingest path.",
				float64(st.Publishes), "city", name)
			e.Gauge("routing_ingest_perturbed_edges", "Edges currently deviating from baseline.",
				float64(c.Ingest.Perturbed()), "city", name)
			e.Gauge("routing_ingest_closed_edges", "Edges currently closed by ingest.",
				float64(len(c.Ingest.ClosedEdges())), "city", name)
		}
	}
}

// emitStore exports one weight store's serving state. Versions start at
// 1 and producer serialization keeps them gapless, so version-1 doubles
// as the publish count.
func emitStore(e *metrics.Emit, city, store string, st *weights.Store) {
	v := uint64(st.Version())
	e.Gauge("routing_store_version", "Latest snapshot version in the weight store.",
		float64(v), "city", city, "store", store)
	e.Counter("routing_store_publishes_total", "Publishes into the weight store (version minus the seed snapshot).",
		float64(v-1), "city", city, "store", store)
}

// observationsRequest is the POST /api/observations body: direct
// observations, a scenario replay step, or both (scenario observations
// are applied after the direct ones, all in one publish).
type observationsRequest struct {
	City         string                  `json:"city"`
	Observations []telemetry.Observation `json:"observations,omitempty"`
	// DecaySteps ages the standing deviations before applying this
	// batch's observations (0: no decay).
	DecaySteps float64 `json:"decaySteps,omitempty"`
	// Scenario, when set, generates Step's observation batch of the named
	// deterministic workload (rush-hour, incident-storm, sensor-noise).
	Scenario string  `json:"scenario,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Step     int     `json:"step,omitempty"`
	Edges    int     `json:"edges,omitempty"`
	Severity float64 `json:"severity,omitempty"`
	Period   int     `json:"period,omitempty"`
	CloseFor int     `json:"closeFor,omitempty"`
}

// handleObservations is the telemetry ingest endpoint: it folds the
// request's observation batch (and/or a deterministic scenario step)
// into the city's ingestor, which publishes one new snapshot into the
// traffic store — the same store the rush-hour sequence feeds, with
// producer serialization guaranteeing gapless versions between the two.
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	var req observationsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	c, ok := s.cities[req.City]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown city")
		return
	}
	if c.Ingest == nil {
		httpError(w, http.StatusConflict, "city has no ingest path")
		return
	}
	obs := req.Observations
	if req.Scenario != "" {
		kind, err := telemetry.ParseKind(req.Scenario)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		sc := telemetry.Scenario{
			Kind: kind, Seed: req.Seed, Edges: req.Edges,
			Severity: req.Severity, Period: req.Period, CloseFor: req.CloseFor,
		}
		obs = append(obs, sc.Observations(c.Graph, req.Step)...)
	}
	snap, err := c.Ingest.Advance(obs, req.DecaySteps)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.verbose {
		log.Printf("server: %s ingested %d observations (decay %.2g) -> weights v%d",
			req.City, len(obs), req.DecaySteps, snap.Version())
	}
	st := c.Ingest.Stats()
	closed := c.Ingest.ClosedEdges()
	closedIDs := make([]int, len(closed))
	for i, e := range closed {
		closedIDs[i] = int(e)
	}
	writeJSON(w, struct {
		City           string `json:"city"`
		Applied        int    `json:"applied"`
		WeightVersion  uint64 `json:"weightVersion"`
		PerturbedEdges int    `json:"perturbedEdges"`
		ClosedEdges    []int  `json:"closedEdges,omitempty"`
		Observations   uint64 `json:"observationsTotal"`
		Publishes      uint64 `json:"publishesTotal"`
	}{req.City, len(obs), uint64(snap.Version()), c.Ingest.Perturbed(), closedIDs, st.Observations, st.Publishes})
}
