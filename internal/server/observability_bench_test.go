package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// BenchmarkIngestPublish measures one telemetry batch end to end:
// decay the standing deviations, apply an 8-edge scenario step, rebuild
// the weight vector and publish it through the store (which swaps the
// serving snapshot). This is the cost a live feed pays per tick.
func BenchmarkIngestPublish(b *testing.B) {
	c := testCities(b)["Copenhagen"]
	sc := telemetry.Scenario{Kind: telemetry.RushHour, Seed: 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := sc.Observations(c.Graph, 1+i%24)
		if _, err := c.Ingest.Advance(obs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsScrape measures rendering the full exposition after
// the families carry samples — the steady-state GET /metrics cost.
func BenchmarkMetricsScrape(b *testing.B) {
	cities := testCities(b)
	s := New(cities, "", WithMetrics(), WithIngest())
	c := cities["Copenhagen"]
	bb := c.Graph.BBox()
	// Populate the event-driven families with a few real queries.
	routes := fmt.Sprintf("/api/routes?city=Copenhagen&s=%f,%f&t=%f,%f",
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon)
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", routes, nil))
		if rec.Code != 200 {
			b.Fatalf("routes: status %d", rec.Code)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if _, err := s.registry.WriteTo(&sb); err != nil {
			b.Fatal(err)
		}
		if sb.Len() == 0 {
			b.Fatal("empty scrape")
		}
	}
}
