package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
)

func newObservableServer(t testing.TB) (*httptest.Server, map[string]*eval.City) {
	t.Helper()
	cities := testCities(t)
	ts := httptest.NewServer(New(cities, "", WithMetrics(), WithIngest()))
	t.Cleanup(ts.Close)
	return ts, cities
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want Prometheus text format", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func postObservations(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	res, err := http.Post(ts.URL+"/api/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out map[string]any
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return res, out
}

// TestMetricsEndpoint exercises the full scrape surface: it drives
// queries, a publish, a matrix table and an ingest batch, then checks
// the exposition carries every family the stack records, in valid
// Prometheus text shape (help/type headers, cumulative buckets).
func TestMetricsEndpoint(t *testing.T) {
	ts, cities := newObservableServer(t)
	c := cities["Copenhagen"]
	bb := c.Graph.BBox()

	routesURL := ts.URL + fmt.Sprintf("/api/routes?city=Copenhagen&s=%f,%f&t=%f,%f",
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon)
	for i := 0; i < 2; i++ {
		res := getJSON(t, routesURL, nil)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("routes status = %d", res.StatusCode)
		}
	}
	postJSON(t, ts.URL+"/api/publish?city=Copenhagen", nil)
	matrixBody := fmt.Sprintf(`{"city":"Copenhagen","sources":[[%f,%f],[%f,%f]],"targets":[[%f,%f],[%f,%f]]}`,
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon, bb.MinLat, bb.MaxLon, bb.MaxLat, bb.MinLon)
	res, err := http.Post(ts.URL+"/api/matrix", "application/json", strings.NewReader(matrixBody))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("matrix status = %d", res.StatusCode)
	}
	if res, _ := postObservations(t, ts,
		`{"city":"Copenhagen","observations":[{"edge":3,"speed":0.5},{"edge":9,"closed":true}]}`); res.StatusCode != http.StatusOK {
		t.Fatalf("observations status = %d", res.StatusCode)
	}

	text := scrape(t, ts)
	for _, want := range []string{
		`routing_query_seconds_count{city="Copenhagen",planner="Plateaus"}`,
		`routing_query_seconds_bucket{city="Copenhagen",planner="GMaps",le="+Inf"}`,
		`routing_result_cache_hits_total{city="Copenhagen"}`,
		`routing_result_cache_misses_total{city="Copenhagen"}`,
		`routing_customize_seconds_count{city="Copenhagen",planner="GMaps"}`,
		`routing_matrix_cells_sum{city="Copenhagen"} 4`,
		`routing_store_version{city="Copenhagen",store="public"}`,
		`routing_store_publishes_total{city="Copenhagen",store="traffic"}`,
		`routing_serving_version{city="Copenhagen",planner="Plateaus"}`,
		`routing_traffic_step{city="Copenhagen"} 1`,
		`routing_ingest_observations_total{city="Copenhagen"} 2`,
		`routing_ingest_closures_total{city="Copenhagen"} 1`,
		`routing_ingest_publishes_total{city="Copenhagen"} 1`,
		`routing_ingest_closed_edges{city="Copenhagen"} 1`,
		"# TYPE routing_query_seconds histogram",
		"# TYPE routing_store_version gauge",
		"# TYPE routing_ingest_observations_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
}

// TestMetricsScrapeRacesPublishesAndQueries is the tentpole's -race
// test: scrapes, publish swaps, ingest batches and batch queries all
// run concurrently against one server. Nothing may race, and the
// monotone counters on consecutive scrapes may never step backwards.
func TestMetricsScrapeRacesPublishesAndQueries(t *testing.T) {
	ts, cities := newObservableServer(t)
	c := cities["Copenhagen"]
	bb := c.Graph.BBox()
	routesURL := ts.URL + fmt.Sprintf("/api/routes?city=Copenhagen&s=%f,%f&t=%f,%f",
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon)

	const rounds = 8
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // query stream
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			res, err := http.Get(routesURL)
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}
	}()
	go func() { // publish swaps
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			res, err := http.Post(ts.URL+"/api/publish?city=Copenhagen", "application/json", nil)
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}
	}()
	go func() { // ingest stream
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			body := fmt.Sprintf(`{"city":"Copenhagen","scenario":"sensor-noise","seed":5,"step":%d,"decaySteps":1}`, i+1)
			res, err := http.Post(ts.URL+"/api/observations", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}
	}()

	counter := func(text, name string) float64 {
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name) {
				var v float64
				fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%f", &v)
				return v
			}
		}
		return -1
	}
	var lastElim, lastObs float64
	for i := 0; i < 2*rounds; i++ {
		text := scrape(t, ts)
		if v := counter(text, `routing_elim_queries_total{city="Copenhagen",planner="Plateaus"}`); v >= 0 {
			if v < lastElim {
				t.Fatalf("scrape %d: elim queries went backwards: %f -> %f", i, lastElim, v)
			}
			lastElim = v
		}
		if v := counter(text, `routing_ingest_observations_total{city="Copenhagen"}`); v < lastObs {
			t.Fatalf("scrape %d: ingest observations went backwards: %f -> %f", i, lastObs, v)
		} else {
			lastObs = v
		}
	}
	wg.Wait()

	// Producer serialization (store.Update) must have kept the traffic
	// store's versions gapless across the two racing producers.
	var st trafficStatus
	getJSON(t, ts.URL+"/api/traffic?city=Copenhagen", &st)
	if want := uint64(1 + 2*rounds); st.TrafficVersion != want {
		t.Fatalf("traffic version = %d, want %d (publish or ingest dropped)", st.TrafficVersion, want)
	}
}

// TestObservationsEndpoint covers the ingest handler's request surface:
// direct observations, scenario generation, decay, and every error arm.
func TestObservationsEndpoint(t *testing.T) {
	ts, cities := newObservableServer(t)
	c := cities["Copenhagen"]

	res, out := postObservations(t, ts,
		`{"city":"Copenhagen","observations":[{"edge":7,"speed":0.25}]}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if out["applied"].(float64) != 1 || out["weightVersion"].(float64) != 2 || out["perturbedEdges"].(float64) != 1 {
		t.Fatalf("response = %v", out)
	}
	// The published snapshot is live: edge 7 now costs 4x its baseline.
	wantW := c.Ingest.Baseline()[7] / 0.25
	if got := c.TrafficStore.Latest().Weights()[7]; got != wantW {
		t.Fatalf("edge 7 weight = %f, want %f", got, wantW)
	}

	// Scenario generation on top of direct observations, one publish.
	res, out = postObservations(t, ts,
		`{"city":"Copenhagen","scenario":"rush-hour","seed":9,"step":3,"edges":4,"decaySteps":1}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("scenario status = %d", res.StatusCode)
	}
	if out["applied"].(float64) != 4 {
		t.Fatalf("scenario applied = %v, want 4", out["applied"])
	}
	if out["weightVersion"].(float64) != 3 {
		t.Fatalf("weightVersion = %v, want 3 (single publish per request)", out["weightVersion"])
	}

	// Closures round-trip through closedEdges and reopen.
	res, out = postObservations(t, ts,
		`{"city":"Copenhagen","observations":[{"edge":11,"closed":true}]}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("closure status = %d", res.StatusCode)
	}
	if closed, ok := out["closedEdges"].([]any); !ok || len(closed) != 1 || closed[0].(float64) != 11 {
		t.Fatalf("closedEdges = %v, want [11]", out["closedEdges"])
	}
	res, out = postObservations(t, ts,
		`{"city":"Copenhagen","observations":[{"edge":11,"reopen":true}]}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("reopen status = %d", res.StatusCode)
	}
	if _, ok := out["closedEdges"]; ok {
		t.Fatalf("closedEdges should be omitted after reopen, got %v", out["closedEdges"])
	}

	for _, bad := range []struct {
		body string
		code int
	}{
		{`{"city":"Nowhere"}`, http.StatusNotFound},
		{`not json`, http.StatusBadRequest},
		{`{"city":"Copenhagen","observations":[{"edge":999999,"speed":1}]}`, http.StatusBadRequest},
		{`{"city":"Copenhagen","observations":[{"edge":1,"speed":-2}]}`, http.StatusBadRequest},
		{`{"city":"Copenhagen","scenario":"earthquake"}`, http.StatusBadRequest},
	} {
		res, _ := postObservations(t, ts, bad.body)
		if res.StatusCode != bad.code {
			t.Errorf("%s: status = %d, want %d", bad.body, res.StatusCode, bad.code)
		}
	}

	// A rejected batch must be atomic: nothing above may have bumped the
	// version past the three good publishes.
	if v := uint64(c.TrafficStore.Version()); v != 5 {
		t.Fatalf("traffic version = %d, want 5 (failed batches must not publish)", v)
	}
}

// TestIngestRouteDisabledByDefault: without WithIngest the route does
// not exist, and without WithMetrics /metrics does not exist.
func TestIngestRouteDisabledByDefault(t *testing.T) {
	ts := newTestServer(t, "")
	res, err := http.Post(ts.URL+"/api/observations", "application/json",
		strings.NewReader(`{"city":"Copenhagen"}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Fatalf("observations should 404/405 without WithIngest, got %d", res.StatusCode)
	}
	res2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode == http.StatusOK {
		t.Fatalf("/metrics should 404 without WithMetrics, got %d", res2.StatusCode)
	}
}

// TestIngestNilOnHandAssembledCity: a City built by hand (no ingestor)
// answers 409, not a panic.
func TestIngestNilOnHandAssembledCity(t *testing.T) {
	cities := testCities(t)
	cities["Copenhagen"].Ingest = nil
	ts := httptest.NewServer(New(cities, "", WithIngest()))
	defer ts.Close()
	res, err := http.Post(ts.URL+"/api/observations", "application/json",
		strings.NewReader(`{"city":"Copenhagen","observations":[{"edge":1,"speed":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", res.StatusCode)
	}
}

// TestVerboseOption just pins that the option compiles and flips the
// flag; the gating itself is a plain branch around log.Printf.
func TestVerboseOption(t *testing.T) {
	s := New(testCities(t), "", WithVerbose(true))
	if !s.verbose {
		t.Fatal("WithVerbose(true) did not set verbose")
	}
	if New(testCities(t), "").verbose {
		t.Fatal("verbose must default to off")
	}
}
