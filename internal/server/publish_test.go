package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

type trafficStatus struct {
	City           string   `json:"city"`
	Step           int      `json:"step"`
	PublicVersion  uint64   `json:"publicVersion"`
	TrafficVersion uint64   `json:"trafficVersion"`
	BannedEdges    []int    `json:"bannedEdges"`
	Planners       []uint64 `json:"plannerVersions"`
}

func postJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	res, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

func TestTrafficStatusEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	var st trafficStatus
	res := getJSON(t, ts.URL+"/api/traffic?city=Copenhagen", &st)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if st.Step != 0 || st.PublicVersion != 1 || st.TrafficVersion != 1 {
		t.Fatalf("initial state = %+v, want step 0, versions 1/1", st)
	}
	if len(st.Planners) != 4 {
		t.Fatalf("planner versions = %v, want 4 entries", st.Planners)
	}
}

func TestPublishAdvancesTrafficAndBans(t *testing.T) {
	ts := newTestServer(t, "")

	var st trafficStatus
	res := postJSON(t, ts.URL+"/api/publish?city=Copenhagen", &st)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("publish status = %d", res.StatusCode)
	}
	if st.Step != 1 || st.TrafficVersion != 2 {
		t.Fatalf("after publish: %+v, want step 1, traffic v2", st)
	}
	if st.PublicVersion != 1 {
		t.Fatalf("publish moved the public metric to v%d", st.PublicVersion)
	}

	// A closure bans on both stores and then steps traffic again.
	res = postJSON(t, ts.URL+"/api/publish?city=Copenhagen&ban=0,1", &st)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("ban status = %d", res.StatusCode)
	}
	if len(st.BannedEdges) != 2 || st.BannedEdges[0] != 0 || st.BannedEdges[1] != 1 {
		t.Fatalf("banned edges = %v, want [0 1]", st.BannedEdges)
	}
	if st.PublicVersion != 2 || st.TrafficVersion != 4 {
		// public: v1 + ban republish = 2; traffic: v2 + ban + step = 4.
		t.Fatalf("after ban+step: %+v, want public v2, traffic v4", st)
	}

	// Routes still answer after the swaps, and report their versions.
	var rr struct {
		Approaches []struct {
			Label         string `json:"label"`
			WeightVersion uint64 `json:"weightVersion"`
		} `json:"approaches"`
	}
	bb := testCities(t)["Copenhagen"].Graph.BBox()
	res = getJSON(t, ts.URL+fmt.Sprintf("/api/routes?city=Copenhagen&s=%f,%f&t=%f,%f",
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon), &rr)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("routes after publish: status %d", res.StatusCode)
	}
	if len(rr.Approaches) != 4 {
		t.Fatalf("approaches = %d, want 4", len(rr.Approaches))
	}
	for _, a := range rr.Approaches {
		if a.WeightVersion == 0 {
			t.Errorf("approach %s reports no weight version", a.Label)
		}
	}

	res = postJSON(t, ts.URL+"/api/publish?city=Nowhere", nil)
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown city publish: status %d", res.StatusCode)
	}
	res = postJSON(t, ts.URL+"/api/publish?city=Copenhagen&ban=notanedge", nil)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ban id: status %d", res.StatusCode)
	}
}
