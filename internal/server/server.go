// Package server implements the web-based demonstration system of §III:
// a browser UI where a user picks source and target on a city map, sees up
// to three routes from each of the four (blinded) approaches, and submits
// a 1–5 rating per approach plus a residency flag (Figs. 2 and 3 of the
// paper).
//
// The paper's demo plots routes on Google Maps; offline, the UI renders
// the road network and routes on an SVG canvas instead. The query
// processor is the same three-step pipeline: geo-coordinate matching to
// the nearest vertices, alternative-route computation by every approach,
// and travel-time display using the public OSM-derived weights.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/path"
)

// Blinded display labels, fixed as in the paper: "The approaches are named
// A-D (A: Google Maps, B: Plateaus, C: Dissimilarity and D: Penalty)."
var displayLabels = [eval.NumApproaches]string{"A", "B", "C", "D"}

// Server serves the demo UI and API for one or more cities.
type Server struct {
	mux    *http.ServeMux
	cities map[string]*eval.City

	// registry backs GET /metrics when WithMetrics was given; nil
	// otherwise.
	registry *metrics.Registry
	// verbose turns on the per-query log lines of the hot handlers
	// (WithVerbose); errors are logged regardless.
	verbose bool
	// ingest registers POST /api/observations (WithIngest).
	ingest bool

	mu        sync.Mutex
	ratings   []RatingSubmission
	storePath string // optional JSON file the ratings are appended to
}

// RatingSubmission is one submitted feedback form (Fig. 3).
type RatingSubmission struct {
	City     string    `json:"city"`
	Resident bool      `json:"resident"`
	Ratings  [4]int    `json:"ratings"` // A-D display order
	Comment  string    `json:"comment,omitempty"`
	Time     time.Time `json:"time"`
}

// New creates a demo server over the given cities. storePath, if
// non-empty, is a JSON file ratings are persisted to. Options add the
// observability surfaces (WithMetrics, WithIngest, WithVerbose).
func New(cities map[string]*eval.City, storePath string, opts ...Option) *Server {
	s := &Server{
		mux:       http.NewServeMux(),
		cities:    cities,
		storePath: storePath,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /api/cities", s.handleCities)
	s.mux.HandleFunc("GET /api/network", s.handleNetwork)
	s.mux.HandleFunc("GET /api/routes", s.handleRoutes)
	s.mux.HandleFunc("POST /api/matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /api/rating", s.handleRating)
	s.mux.HandleFunc("POST /api/publish", s.handlePublish)
	s.mux.HandleFunc("GET /api/traffic", s.handleTraffic)
	if s.registry != nil {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.ingest {
		s.mux.HandleFunc("POST /api/observations", s.handleObservations)
	}
	return s
}

// handleMetrics serves the Prometheus text exposition of everything the
// serving stack measures: per-query latency histograms per planner,
// cache hit rates, customization latency, selection sizes, matrix table
// shapes, plus the scrape-time counters (store versions, publish
// counts, elimination-tree query totals, ingest state).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	if _, err := s.registry.WriteTo(w); err != nil {
		log.Printf("server: writing metrics: %v", err)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Ratings returns a copy of the submissions received so far.
func (s *Server) Ratings() []RatingSubmission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RatingSubmission(nil), s.ratings...)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *Server) handleCities(w http.ResponseWriter, _ *http.Request) {
	type cityInfo struct {
		Name   string  `json:"name"`
		MinLat float64 `json:"minLat"`
		MinLon float64 `json:"minLon"`
		MaxLat float64 `json:"maxLat"`
		MaxLon float64 `json:"maxLon"`
	}
	var out []cityInfo
	for _, name := range []string{"Melbourne", "Dhaka", "Copenhagen"} {
		c, ok := s.cities[name]
		if !ok {
			continue
		}
		bb := c.Graph.BBox()
		out = append(out, cityInfo{name, bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon})
	}
	writeJSON(w, out)
}

// handleNetwork returns a decimated line sample of the road network for
// background rendering.
func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cities[r.URL.Query().Get("city")]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown city")
		return
	}
	type seg struct {
		A [2]float64 `json:"a"`
		B [2]float64 `json:"b"`
		C int        `json:"c"` // 0 street, 1 arterial, 2 motorway
	}
	var segs []seg
	step := 1
	if c.Graph.NumEdges() > 30000 {
		step = c.Graph.NumEdges() / 30000
	}
	for e := 0; e < c.Graph.NumEdges(); e += step {
		ed := c.Graph.Edge(graph.EdgeID(e))
		a := c.Graph.Point(ed.From)
		b := c.Graph.Point(ed.To)
		cls := 0
		switch ed.Class {
		case graph.Motorway, graph.MotorwayLink:
			cls = 2
		case graph.Trunk, graph.Primary, graph.Secondary:
			cls = 1
		}
		segs = append(segs, seg{A: [2]float64{a.Lat, a.Lon}, B: [2]float64{b.Lat, b.Lon}, C: cls})
	}
	writeJSON(w, segs)
}

// routeJSON is one displayed route.
type routeJSON struct {
	Points  [][2]float64 `json:"points"`
	Minutes float64      `json:"minutes"`
	KM      float64      `json:"km"`
}

// handleRoutes is the query processor endpoint: it matches the clicked
// coordinates to graph vertices, runs all four approaches and returns
// their routes with OSM travel times, blinded as approaches A–D.
func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	c, ok := s.cities[q.Get("city")]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown city")
		return
	}
	var sp, tp geo.Point
	if _, err := fmt.Sscanf(q.Get("s"), "%f,%f", &sp.Lat, &sp.Lon); err != nil {
		httpError(w, http.StatusBadRequest, "bad s coordinate (want lat,lon)")
		return
	}
	if _, err := fmt.Sscanf(q.Get("t"), "%f,%f", &tp.Lat, &tp.Lon); err != nil {
		httpError(w, http.StatusBadRequest, "bad t coordinate (want lat,lon)")
		return
	}
	if !sp.Valid() || !tp.Valid() {
		httpError(w, http.StatusBadRequest, "coordinates out of range")
		return
	}
	// Geo-coordinate matching (query processor step 1).
	sv, _ := c.Index.Nearest(sp)
	tv, _ := c.Index.Nearest(tp)
	if sv == tv {
		httpError(w, http.StatusBadRequest, "source and target map to the same intersection")
		return
	}
	type approachJSON struct {
		Label string `json:"label"`
		// WeightVersion is the weight snapshot this approach's answer was
		// computed under — the observable half of a live swap.
		WeightVersion uint64      `json:"weightVersion"`
		Routes        []routeJSON `json:"routes"`
	}
	out := struct {
		SNode      [2]float64     `json:"sNode"`
		TNode      [2]float64     `json:"tNode"`
		Approaches []approachJSON `json:"approaches"`
	}{
		SNode: [2]float64{c.Graph.Point(sv).Lat, c.Graph.Point(sv).Lon},
		TNode: [2]float64{c.Graph.Point(tv).Lat, c.Graph.Point(tv).Lon},
	}
	// Alternative-route computation (query processor step 2): all four
	// approaches fan out concurrently over the city's engine.
	rs, err := c.RunPlanners(eval.Query{S: sv, T: tv})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "route computation failed")
		log.Printf("server: planners on %s %d->%d: %v", q.Get("city"), sv, tv, err)
		return
	}
	for i := range c.Planners {
		aj := approachJSON{Label: displayLabels[i], WeightVersion: uint64(rs.Versions[i])}
		for _, rt := range rs.Sets[i] {
			aj.Routes = append(aj.Routes, toRouteJSON(c, rt))
		}
		out.Approaches = append(out.Approaches, aj)
	}
	// Live-swap observability: which snapshot each approach answered
	// under, which hierarchy flavor served it (and how long its last
	// customization took), plus the serving cache's cumulative hit rate.
	// Verbose-only: this Printf (and the status formatting feeding it)
	// once ran per query, pushing every concurrent request through the
	// logger's mutex — under load the serving path serialized on it. The
	// same numbers are on GET /metrics without touching the hot path.
	if s.verbose && c.Router != nil {
		hits, misses := c.Router.Engine().CacheStats()
		log.Printf("server: %s %d->%d answered at weight versions A=%d B=%d C=%d D=%d%s (cache %d hits / %d misses)",
			q.Get("city"), sv, tv, rs.Versions[0], rs.Versions[1], rs.Versions[2], rs.Versions[3],
			formatHierarchies(c.Router.HierarchyStatuses()), hits, misses)
	}
	writeJSON(w, out)
}

// matrixLimit caps the endpoint set sizes of one /api/matrix request: a
// 128×128 table is ~2800 restricted sweeps' worth of work on the largest
// city, about the most a synchronous HTTP response should carry.
const matrixLimit = 128

// handleMatrix is the many-to-many endpoint: it snaps every source and
// target coordinate to the nearest vertex and computes the full
// travel-time table through the city's matrix engine — one shared RPHAST
// selection over the target set, one restricted sweep per source —
// under a single weight snapshot (the reported weightVersion).
// Unreachable cells are null (JSON has no +Inf).
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req struct {
		City    string       `json:"city"`
		Sources [][2]float64 `json:"sources"` // [lat,lon] each
		Targets [][2]float64 `json:"targets"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	c, ok := s.cities[req.City]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown city")
		return
	}
	if c.Matrix == nil {
		httpError(w, http.StatusConflict, "city has no matrix engine")
		return
	}
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		httpError(w, http.StatusBadRequest, "need at least one source and one target")
		return
	}
	if len(req.Sources) > matrixLimit || len(req.Targets) > matrixLimit {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("at most %d sources and %d targets per request", matrixLimit, matrixLimit))
		return
	}
	snap := func(pts [][2]float64, what string) ([]graph.NodeID, [][2]float64, bool) {
		ids := make([]graph.NodeID, len(pts))
		snapped := make([][2]float64, len(pts))
		for i, pt := range pts {
			p := geo.Point{Lat: pt[0], Lon: pt[1]}
			if !p.Valid() {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("%s %d out of range", what, i))
				return nil, nil, false
			}
			v, _ := c.Index.Nearest(p)
			ids[i] = v
			snapped[i] = [2]float64{c.Graph.Point(v).Lat, c.Graph.Point(v).Lon}
		}
		return ids, snapped, true
	}
	sources, sNodes, ok := snap(req.Sources, "source")
	if !ok {
		return
	}
	targets, tNodes, ok := snap(req.Targets, "target")
	if !ok {
		return
	}
	start := time.Now()
	tab, err := c.Matrix.Matrix(sources, targets)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "matrix computation failed")
		log.Printf("server: matrix on %s %dx%d: %v", req.City, len(sources), len(targets), err)
		return
	}
	// Seconds as pointers so unreachable cells serialize as null.
	seconds := make([][]*float64, len(sources))
	for i := range sources {
		row := make([]*float64, len(targets))
		for j := range targets {
			if v := tab.At(i, j); !math.IsInf(v, 1) {
				row[j] = &tab.Seconds[i*len(targets)+j]
			}
		}
		seconds[i] = row
	}
	if s.verbose { // per-table log line; the histograms cover the silent case
		sel := "full sweeps"
		if tab.Restricted {
			sel = fmt.Sprintf("sel %d (%s)", tab.SelectionTargets, hitMiss(tab.SelectionHit))
		}
		log.Printf("server: %s matrix %dx%d v%d %s in %s",
			req.City, len(sources), len(targets), tab.Version, sel, time.Since(start).Round(10*time.Microsecond))
	}
	writeJSON(w, struct {
		Sources       [][2]float64 `json:"sources"` // snapped coordinates
		Targets       [][2]float64 `json:"targets"`
		Seconds       [][]*float64 `json:"seconds"` // null = unreachable
		WeightVersion uint64       `json:"weightVersion"`
		Selection     int          `json:"selectionTargets,omitempty"`
		SelectionHit  bool         `json:"selectionHit"`
		Restricted    bool         `json:"restricted"`
	}{sNodes, tNodes, seconds, uint64(tab.Version), tab.SelectionTargets, tab.SelectionHit, tab.Restricted})
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// handlePublish is the live-traffic maintenance endpoint: it advances the
// city's rush-hour sequence one step and/or bans edges (road closures) on
// both metrics, then reports the resulting store versions. Bans are
// applied before the traffic step so a single call closes a road and
// publishes the jam that follows.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	c, ok := s.cities[q.Get("city")]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown city")
		return
	}
	if c.Seq == nil || c.TrafficStore == nil || c.PublicStore == nil {
		httpError(w, http.StatusConflict, "city has no live-traffic stores")
		return
	}
	if ban := q.Get("ban"); ban != "" {
		var edges []graph.EdgeID
		for _, f := range strings.Split(ban, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || id < 0 || id >= c.Graph.NumEdges() {
				httpError(w, http.StatusBadRequest, "bad ban edge id: "+f)
				return
			}
			edges = append(edges, graph.EdgeID(id))
		}
		// A closure affects both what the provider plans on and what the
		// public metric reports, so it is banned on both stores.
		c.PublicStore.Ban(edges...)
		c.TrafficStore.Ban(edges...)
		log.Printf("server: %s closed %d edges (public v%d, traffic v%d)",
			q.Get("city"), len(edges), c.PublicStore.Version(), c.TrafficStore.Version())
	}
	if q.Get("step") != "0" { // advancing is the default action
		snap := c.AdvanceTraffic()
		log.Printf("server: %s traffic advanced to step %d (weights v%d)",
			q.Get("city"), c.Seq.Step(), snap.Version())
	}
	s.writeTrafficStatus(w, q.Get("city"), c)
}

// handleTraffic reports the live-traffic state of one city.
func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("city")
	c, ok := s.cities[name]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown city")
		return
	}
	if c.TrafficStore == nil {
		httpError(w, http.StatusConflict, "city has no live-traffic stores")
		return
	}
	s.writeTrafficStatus(w, name, c)
}

func (s *Server) writeTrafficStatus(w http.ResponseWriter, name string, c *eval.City) {
	out := struct {
		City           string   `json:"city"`
		Step           int      `json:"step"`
		PublicVersion  uint64   `json:"publicVersion"`
		TrafficVersion uint64   `json:"trafficVersion"`
		BannedEdges    []int    `json:"bannedEdges,omitempty"`
		Planners       []uint64 `json:"plannerVersions,omitempty"`
	}{
		City:           name,
		Step:           c.Seq.Step(),
		PublicVersion:  uint64(c.PublicStore.Version()),
		TrafficVersion: uint64(c.TrafficStore.Version()),
	}
	for _, e := range c.TrafficStore.Banned() {
		out.BannedEdges = append(out.BannedEdges, int(e))
	}
	sort.Ints(out.BannedEdges)
	if c.Router != nil {
		for _, v := range c.Router.Versions() {
			out.Planners = append(out.Planners, uint64(v))
		}
	}
	writeJSON(w, out)
}

// formatHierarchies renders the hierarchy observability suffix of the
// per-query log line: flavor and last customization latency per approach
// running on a hierarchy backend, plus — on restricted-sweep backends —
// the last query's RPHAST selection size, whether it came out of the
// selection cache, and the tree-pair sweep time, with the cache's
// cumulative hit/miss/eviction counters, e.g.
// " hier A=cch(2.1ms)[sel 214 (hit), sweep 80µs, cache 31/2/0]
// B=cch(2.3ms)[full sweep 310µs]"; empty when no approach runs a
// hierarchy. Flavors running the elimination-tree query engine append a
// "[q=elimtree asc N trunc P%]" block: the last point-to-point ascent's
// settled-node count and the cumulative share of ascents the incumbent
// bound truncated early (since the last weight publish).
func formatHierarchies(statuses []core.HierarchyStatus) string {
	var sb strings.Builder
	for i, st := range statuses {
		if st.Kind == "" || i >= len(displayLabels) {
			continue
		}
		if sb.Len() == 0 {
			sb.WriteString(" hier")
		}
		fmt.Fprintf(&sb, " %s=%s(%s)", displayLabels[i], st.Kind, st.LastCustomize.Round(100*time.Microsecond))
		if st.LastSweep > 0 {
			if st.LastRestricted {
				fmt.Fprintf(&sb, "[sel %d (%s), sweep %s, cache %d/%d/%d]",
					st.LastSelection, hitMiss(st.LastHit), st.LastSweep.Round(10*time.Microsecond),
					st.SelectionHits, st.SelectionMisses, st.SelectionEvictions)
			} else {
				fmt.Fprintf(&sb, "[full sweep %s]", st.LastSweep.Round(10*time.Microsecond))
			}
		}
		if st.LastQueryEngine == "elimtree" {
			fmt.Fprintf(&sb, "[q=%s", st.LastQueryEngine)
			if st.ElimQueries > 0 {
				fmt.Fprintf(&sb, " asc %d trunc %.0f%%",
					st.LastAscent, 100*float64(st.ElimTruncated)/float64(st.ElimQueries))
			}
			sb.WriteString("]")
		}
	}
	return sb.String()
}

func toRouteJSON(c *eval.City, p path.Path) routeJSON {
	rj := routeJSON{
		// Travel time rounded to minutes for display, as in the paper.
		Minutes: float64(int(p.TimeS/60 + 0.5)),
		KM:      p.LengthM / 1000,
	}
	for _, pt := range p.Points(c.Graph) {
		rj.Points = append(rj.Points, [2]float64{pt.Lat, pt.Lon})
	}
	return rj
}

// handleRating accepts the feedback form (Fig. 3).
func (s *Server) handleRating(w http.ResponseWriter, r *http.Request) {
	var sub RatingSubmission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if _, ok := s.cities[sub.City]; !ok {
		httpError(w, http.StatusBadRequest, "unknown city")
		return
	}
	for _, v := range sub.Ratings {
		if v < 1 || v > 5 {
			httpError(w, http.StatusBadRequest, "ratings must be 1-5")
			return
		}
	}
	if len(sub.Comment) > 4096 {
		httpError(w, http.StatusBadRequest, "comment too long")
		return
	}
	sub.Time = time.Now().UTC()
	s.mu.Lock()
	s.ratings = append(s.ratings, sub)
	all := append([]RatingSubmission(nil), s.ratings...)
	s.mu.Unlock()
	if s.storePath != "" {
		if err := persistRatings(s.storePath, all); err != nil {
			log.Printf("server: persisting ratings: %v", err)
		}
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

func persistRatings(storePath string, all []RatingSubmission) error {
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	tmp := storePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, storePath)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
