package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/citygen"
	"repro/internal/eval"
)

// testCities builds one small city for fast handler tests.
func testCities(t testing.TB) map[string]*eval.City {
	t.Helper()
	p := citygen.Copenhagen()
	p.Rows, p.Cols = 20, 20 // shrink for test speed
	p.Motorway.Present = false
	c, err := eval.NewCity(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*eval.City{"Copenhagen": c}
}

func newTestServer(t testing.TB, store string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testCities(t), store))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

func TestIndexServesUI(t *testing.T) {
	ts := newTestServer(t, "")
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	body := buf.String()
	for _, want := range []string{"<svg", "Approach", "Submit Rating", "I live (or have lived)"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	// Unknown paths are 404, not the index.
	res2, _ := http.Get(ts.URL + "/nonsense")
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", res2.StatusCode)
	}
}

func TestCitiesEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	var cities []struct {
		Name   string  `json:"name"`
		MinLat float64 `json:"minLat"`
		MaxLat float64 `json:"maxLat"`
	}
	getJSON(t, ts.URL+"/api/cities", &cities)
	if len(cities) != 1 || cities[0].Name != "Copenhagen" {
		t.Fatalf("cities = %+v", cities)
	}
	if cities[0].MinLat >= cities[0].MaxLat {
		t.Error("bbox degenerate")
	}
}

func TestNetworkEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	var segs []struct {
		A [2]float64 `json:"a"`
		B [2]float64 `json:"b"`
		C int        `json:"c"`
	}
	getJSON(t, ts.URL+"/api/network?city=Copenhagen", &segs)
	if len(segs) < 100 {
		t.Fatalf("network returned only %d segments", len(segs))
	}
	res := getJSON(t, ts.URL+"/api/network?city=Nowhere", nil)
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown city status = %d, want 404", res.StatusCode)
	}
}

func TestRoutesEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	// Click two opposite corners of the network.
	cs := testCities(t)["Copenhagen"]
	bb := cs.Graph.BBox()
	u := ts.URL + fmt.Sprintf("/api/routes?city=Copenhagen&s=%f,%f&t=%f,%f",
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon)
	var out struct {
		SNode      [2]float64 `json:"sNode"`
		Approaches []struct {
			Label  string `json:"label"`
			Routes []struct {
				Points  [][2]float64 `json:"points"`
				Minutes float64      `json:"minutes"`
				KM      float64      `json:"km"`
			} `json:"routes"`
		} `json:"approaches"`
	}
	res := getJSON(t, u, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("routes status = %d", res.StatusCode)
	}
	if len(out.Approaches) != 4 {
		t.Fatalf("approaches = %d, want 4", len(out.Approaches))
	}
	wantLabels := []string{"A", "B", "C", "D"}
	for i, ap := range out.Approaches {
		if ap.Label != wantLabels[i] {
			t.Errorf("approach %d label %s, want %s (blinded order)", i, ap.Label, wantLabels[i])
		}
		if len(ap.Routes) == 0 {
			t.Errorf("approach %s returned no routes", ap.Label)
		}
		for _, r := range ap.Routes {
			if len(r.Points) < 2 || r.Minutes <= 0 || r.KM <= 0 {
				t.Errorf("approach %s has malformed route: %d points, %f min, %f km",
					ap.Label, len(r.Points), r.Minutes, r.KM)
			}
		}
	}
}

func TestRoutesEndpointErrors(t *testing.T) {
	ts := newTestServer(t, "")
	cases := []string{
		"/api/routes?city=Nowhere&s=55,12&t=55.1,12.1",
		"/api/routes?city=Copenhagen&s=bogus&t=55.1,12.1",
		"/api/routes?city=Copenhagen&s=55.67,12.56&t=junk",
		"/api/routes?city=Copenhagen&s=999,12&t=55.1,12.1",
		"/api/routes?city=Copenhagen&s=55.676,12.568&t=55.676,12.568", // same vertex
	}
	for _, u := range cases {
		res := getJSON(t, ts.URL+u, nil)
		if res.StatusCode == http.StatusOK {
			t.Errorf("%s should fail", u)
		}
	}
}

func TestRatingSubmission(t *testing.T) {
	store := t.TempDir() + "/ratings.json"
	ts := newTestServer(t, store)
	body := `{"city":"Copenhagen","resident":true,"ratings":[4,3,5,2],"comment":"no route using Blackburn rd"}`
	res, err := http.Post(ts.URL+"/api/rating", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("rating status = %d", res.StatusCode)
	}
	// Persisted to disk.
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("ratings store not written: %v", err)
	}
	var subs []RatingSubmission
	if err := json.Unmarshal(data, &subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Ratings != [4]int{4, 3, 5, 2} || !subs[0].Resident {
		t.Errorf("persisted = %+v", subs)
	}
	if subs[0].City != "Copenhagen" || subs[0].Comment == "" {
		t.Errorf("persisted fields wrong: %+v", subs[0])
	}
}

func TestRatingValidation(t *testing.T) {
	ts := newTestServer(t, "")
	bad := []string{
		`{"city":"Nowhere","ratings":[3,3,3,3]}`,
		`{"city":"Copenhagen","ratings":[0,3,3,3]}`,
		`{"city":"Copenhagen","ratings":[3,3,3,6]}`,
		`not json`,
		`{"city":"Copenhagen","ratings":[3,3,3,3],"comment":"` + strings.Repeat("x", 5000) + `"}`,
	}
	for i, body := range bad {
		res, err := http.Post(ts.URL+"/api/rating", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, res.StatusCode)
		}
	}
}

func TestRatingsAccessor(t *testing.T) {
	cities := testCities(t)
	s := New(cities, "")
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"city":"Copenhagen","ratings":[%d,3,3,3]}`, i+1)
		res, err := http.Post(ts.URL+"/api/rating", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
	}
	got := s.Ratings()
	if len(got) != 3 {
		t.Fatalf("Ratings() = %d entries, want 3", len(got))
	}
	// The returned slice is a copy.
	got[0].Ratings[0] = 99
	if s.Ratings()[0].Ratings[0] == 99 {
		t.Error("Ratings() must return a copy")
	}
}
