package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/citygen"
	"repro/internal/core"
	"repro/internal/eval"
)

// testCities builds one small city for fast handler tests.
func testCities(t testing.TB) map[string]*eval.City {
	t.Helper()
	p := citygen.Copenhagen()
	p.Rows, p.Cols = 20, 20 // shrink for test speed
	p.Motorway.Present = false
	c, err := eval.NewCity(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*eval.City{"Copenhagen": c}
}

func newTestServer(t testing.TB, store string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testCities(t), store))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

func TestIndexServesUI(t *testing.T) {
	ts := newTestServer(t, "")
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	body := buf.String()
	for _, want := range []string{"<svg", "Approach", "Submit Rating", "I live (or have lived)"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	// Unknown paths are 404, not the index.
	res2, _ := http.Get(ts.URL + "/nonsense")
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", res2.StatusCode)
	}
}

func TestCitiesEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	var cities []struct {
		Name   string  `json:"name"`
		MinLat float64 `json:"minLat"`
		MaxLat float64 `json:"maxLat"`
	}
	getJSON(t, ts.URL+"/api/cities", &cities)
	if len(cities) != 1 || cities[0].Name != "Copenhagen" {
		t.Fatalf("cities = %+v", cities)
	}
	if cities[0].MinLat >= cities[0].MaxLat {
		t.Error("bbox degenerate")
	}
}

func TestNetworkEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	var segs []struct {
		A [2]float64 `json:"a"`
		B [2]float64 `json:"b"`
		C int        `json:"c"`
	}
	getJSON(t, ts.URL+"/api/network?city=Copenhagen", &segs)
	if len(segs) < 100 {
		t.Fatalf("network returned only %d segments", len(segs))
	}
	res := getJSON(t, ts.URL+"/api/network?city=Nowhere", nil)
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown city status = %d, want 404", res.StatusCode)
	}
}

func TestRoutesEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	// Click two opposite corners of the network.
	cs := testCities(t)["Copenhagen"]
	bb := cs.Graph.BBox()
	u := ts.URL + fmt.Sprintf("/api/routes?city=Copenhagen&s=%f,%f&t=%f,%f",
		bb.MinLat, bb.MinLon, bb.MaxLat, bb.MaxLon)
	var out struct {
		SNode      [2]float64 `json:"sNode"`
		Approaches []struct {
			Label  string `json:"label"`
			Routes []struct {
				Points  [][2]float64 `json:"points"`
				Minutes float64      `json:"minutes"`
				KM      float64      `json:"km"`
			} `json:"routes"`
		} `json:"approaches"`
	}
	res := getJSON(t, u, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("routes status = %d", res.StatusCode)
	}
	if len(out.Approaches) != 4 {
		t.Fatalf("approaches = %d, want 4", len(out.Approaches))
	}
	wantLabels := []string{"A", "B", "C", "D"}
	for i, ap := range out.Approaches {
		if ap.Label != wantLabels[i] {
			t.Errorf("approach %d label %s, want %s (blinded order)", i, ap.Label, wantLabels[i])
		}
		if len(ap.Routes) == 0 {
			t.Errorf("approach %s returned no routes", ap.Label)
		}
		for _, r := range ap.Routes {
			if len(r.Points) < 2 || r.Minutes <= 0 || r.KM <= 0 {
				t.Errorf("approach %s has malformed route: %d points, %f min, %f km",
					ap.Label, len(r.Points), r.Minutes, r.KM)
			}
		}
	}
}

func TestRoutesEndpointErrors(t *testing.T) {
	ts := newTestServer(t, "")
	cases := []string{
		"/api/routes?city=Nowhere&s=55,12&t=55.1,12.1",
		"/api/routes?city=Copenhagen&s=bogus&t=55.1,12.1",
		"/api/routes?city=Copenhagen&s=55.67,12.56&t=junk",
		"/api/routes?city=Copenhagen&s=999,12&t=55.1,12.1",
		"/api/routes?city=Copenhagen&s=55.676,12.568&t=55.676,12.568", // same vertex
	}
	for _, u := range cases {
		res := getJSON(t, ts.URL+u, nil)
		if res.StatusCode == http.StatusOK {
			t.Errorf("%s should fail", u)
		}
	}
}

func TestRatingSubmission(t *testing.T) {
	store := t.TempDir() + "/ratings.json"
	ts := newTestServer(t, store)
	body := `{"city":"Copenhagen","resident":true,"ratings":[4,3,5,2],"comment":"no route using Blackburn rd"}`
	res, err := http.Post(ts.URL+"/api/rating", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("rating status = %d", res.StatusCode)
	}
	// Persisted to disk.
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("ratings store not written: %v", err)
	}
	var subs []RatingSubmission
	if err := json.Unmarshal(data, &subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Ratings != [4]int{4, 3, 5, 2} || !subs[0].Resident {
		t.Errorf("persisted = %+v", subs)
	}
	if subs[0].City != "Copenhagen" || subs[0].Comment == "" {
		t.Errorf("persisted fields wrong: %+v", subs[0])
	}
}

func TestRatingValidation(t *testing.T) {
	ts := newTestServer(t, "")
	bad := []string{
		`{"city":"Nowhere","ratings":[3,3,3,3]}`,
		`{"city":"Copenhagen","ratings":[0,3,3,3]}`,
		`{"city":"Copenhagen","ratings":[3,3,3,6]}`,
		`not json`,
		`{"city":"Copenhagen","ratings":[3,3,3,3],"comment":"` + strings.Repeat("x", 5000) + `"}`,
	}
	for i, body := range bad {
		res, err := http.Post(ts.URL+"/api/rating", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, res.StatusCode)
		}
	}
}

func TestRatingsAccessor(t *testing.T) {
	cities := testCities(t)
	s := New(cities, "")
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"city":"Copenhagen","ratings":[%d,3,3,3]}`, i+1)
		res, err := http.Post(ts.URL+"/api/rating", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
	}
	got := s.Ratings()
	if len(got) != 3 {
		t.Fatalf("Ratings() = %d entries, want 3", len(got))
	}
	// The returned slice is a copy.
	got[0].Ratings[0] = 99
	if s.Ratings()[0].Ratings[0] == 99 {
		t.Error("Ratings() must return a copy")
	}
}

// restrictedTestCities builds the test city on the restricted-sweep
// backend, so the matrix endpoint exercises the shared-selection path.
func restrictedTestCities(t testing.TB) map[string]*eval.City {
	t.Helper()
	p := citygen.Copenhagen()
	p.Rows, p.Cols = 20, 20
	p.Motorway.Present = false
	c, err := eval.NewCityOpts(p, 7, core.Options{TreeBackend: core.TreeCHRestricted, Hierarchy: core.HierarchyCCH})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*eval.City{"Copenhagen": c}
}

func postBodyJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

type matrixRequest struct {
	City    string       `json:"city"`
	Sources [][2]float64 `json:"sources"`
	Targets [][2]float64 `json:"targets"`
}

type matrixResponse struct {
	Sources       [][2]float64 `json:"sources"`
	Targets       [][2]float64 `json:"targets"`
	Seconds       [][]*float64 `json:"seconds"`
	WeightVersion uint64       `json:"weightVersion"`
	Selection     int          `json:"selectionTargets"`
	SelectionHit  bool         `json:"selectionHit"`
	Restricted    bool         `json:"restricted"`
}

func TestMatrixEndpoint(t *testing.T) {
	cities := restrictedTestCities(t)
	ts := httptest.NewServer(New(cities, ""))
	t.Cleanup(ts.Close)

	bb := cities["Copenhagen"].Graph.BBox()
	at := func(fLat, fLon float64) [2]float64 {
		return [2]float64{
			bb.MinLat + fLat*(bb.MaxLat-bb.MinLat),
			bb.MinLon + fLon*(bb.MaxLon-bb.MinLon),
		}
	}
	req := matrixRequest{
		City:    "Copenhagen",
		Sources: [][2]float64{at(0.2, 0.2), at(0.8, 0.3)},
		Targets: [][2]float64{at(0.7, 0.7), at(0.3, 0.8), at(0.5, 0.5)},
	}
	var out matrixResponse
	if res := postBodyJSON(t, ts.URL+"/api/matrix", req, &out); res.StatusCode != http.StatusOK {
		t.Fatalf("matrix status = %d", res.StatusCode)
	}
	if len(out.Seconds) != 2 || len(out.Seconds[0]) != 3 {
		t.Fatalf("seconds dims = %dx%d, want 2x3", len(out.Seconds), len(out.Seconds[0]))
	}
	if len(out.Sources) != 2 || len(out.Targets) != 3 {
		t.Fatalf("snapped endpoint counts = %d/%d", len(out.Sources), len(out.Targets))
	}
	reachable := 0
	for _, row := range out.Seconds {
		for _, cell := range row {
			if cell != nil {
				if *cell < 0 {
					t.Fatalf("negative travel time %v", *cell)
				}
				reachable++
			}
		}
	}
	if reachable == 0 {
		t.Fatal("no reachable cells on a connected test city")
	}
	if !out.Restricted || out.Selection == 0 {
		t.Fatalf("restricted backend served restricted=%v selectionTargets=%d", out.Restricted, out.Selection)
	}

	// The same request again must hit the selection cache and return the
	// same table.
	var out2 matrixResponse
	postBodyJSON(t, ts.URL+"/api/matrix", req, &out2)
	if !out2.SelectionHit {
		t.Error("repeat request missed the selection cache")
	}
	for i := range out.Seconds {
		for j := range out.Seconds[i] {
			a, b := out.Seconds[i][j], out2.Seconds[i][j]
			if (a == nil) != (b == nil) || (a != nil && *a != *b) {
				t.Fatalf("repeat request changed cell %d,%d", i, j)
			}
		}
	}
}

func TestMatrixEndpointErrors(t *testing.T) {
	ts := newTestServer(t, "")
	ok := [][2]float64{{55.68, 12.55}}
	cases := []struct {
		name string
		req  matrixRequest
		want int
	}{
		{"unknown-city", matrixRequest{City: "Atlantis", Sources: ok, Targets: ok}, http.StatusNotFound},
		{"no-sources", matrixRequest{City: "Copenhagen", Targets: ok}, http.StatusBadRequest},
		{"no-targets", matrixRequest{City: "Copenhagen", Sources: ok}, http.StatusBadRequest},
		{"bad-coord", matrixRequest{City: "Copenhagen", Sources: [][2]float64{{360, 12}}, Targets: ok}, http.StatusBadRequest},
		{"oversize", matrixRequest{City: "Copenhagen", Sources: make([][2]float64, matrixLimit+1), Targets: ok}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if res := postBodyJSON(t, ts.URL+"/api/matrix", c.req, nil); res.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, res.StatusCode, c.want)
		}
	}
	res, err := http.Post(ts.URL+"/api/matrix", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", res.StatusCode)
	}
}
