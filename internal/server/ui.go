package server

// indexHTML is the demo UI (Fig. 2 of the paper): an SVG map of the city's
// road network on which the user clicks source and target markers, a route
// overlay per blinded approach (A-D), and the Fig. 3 rating form.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Alternative Route Planning — Comparative Demo</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; display: flex; height: 100vh; }
  #side { width: 330px; padding: 14px; overflow-y: auto; border-right: 1px solid #ccc; }
  #map { flex: 1; background: #f6f4ef; cursor: crosshair; }
  h1 { font-size: 17px; margin: 0 0 8px; }
  h2 { font-size: 14px; margin: 14px 0 6px; }
  .approach { margin: 6px 0; padding: 6px; border-radius: 6px; border: 1px solid #ddd; }
  .swatch { display: inline-block; width: 12px; height: 12px; border-radius: 3px; margin-right: 6px; }
  .routeinfo { font-size: 12px; color: #444; margin-left: 18px; }
  button { padding: 6px 12px; margin-top: 6px; }
  select, textarea { width: 100%; }
  .stars input { width: 28px; }
  #status { font-size: 12px; color: #666; min-height: 18px; }
</style>
</head>
<body>
<div id="side">
  <h1>Comparing Alternative Route Planning Techniques</h1>
  <p style="font-size:12px">Click the map to place the <b>source</b>, click again for the
  <b>target</b>, then press Compute. Four anonymised approaches (A&ndash;D)
  each show up to 3 routes. Rate each approach 1&ndash;5 and submit.</p>
  <label>City:
    <select id="city"></select>
  </label>
  <div id="status"></div>
  <button id="compute">Compute routes</button>
  <button id="clear">Clear</button>
  <div id="approaches"></div>
  <h2>Submit rating (1&ndash;5, higher is better)</h2>
  <div class="stars" id="stars"></div>
  <label style="font-size:13px"><input type="checkbox" id="resident">
    I live (or have lived) in this city</label><br>
  <textarea id="comment" rows="2" placeholder="Optional comment"></textarea>
  <button id="submitRating">Submit Rating</button>
</div>
<svg id="map"></svg>
<script>
const COLORS = { A: "#d81b60", B: "#1e88e5", C: "#43a047", D: "#fb8c00" };
let cities = [], cur = null, sPt = null, tPt = null, lastRoutes = null;

const map = document.getElementById("map");
function project(lat, lon) {
  const r = map.getBoundingClientRect();
  const x = (lon - cur.minLon) / (cur.maxLon - cur.minLon) * r.width;
  const y = (1 - (lat - cur.minLat) / (cur.maxLat - cur.minLat)) * r.height;
  return [x, y];
}
function unproject(x, y) {
  const r = map.getBoundingClientRect();
  const lon = cur.minLon + x / r.width * (cur.maxLon - cur.minLon);
  const lat = cur.minLat + (1 - y / r.height) * (cur.maxLat - cur.minLat);
  return [lat, lon];
}
function el(name, attrs) {
  const e = document.createElementNS("http://www.w3.org/2000/svg", name);
  for (const k in attrs) e.setAttribute(k, attrs[k]);
  return e;
}
async function loadNetwork() {
  map.innerHTML = "";
  const segs = await (await fetch("/api/network?city=" + cur.name)).json();
  const g = el("g", {id: "net"});
  for (const s of segs) {
    const [x1, y1] = project(s.a[0], s.a[1]);
    const [x2, y2] = project(s.b[0], s.b[1]);
    const style = s.c === 2 ? "stroke:#9a8c98;stroke-width:2.2"
                : s.c === 1 ? "stroke:#c9bfc4;stroke-width:1.4"
                : "stroke:#e3dcd3;stroke-width:0.7";
    g.appendChild(el("line", {x1, y1, x2, y2, style}));
  }
  map.appendChild(g);
  map.appendChild(el("g", {id: "routes"}));
  map.appendChild(el("g", {id: "markers"}));
}
function drawMarkers() {
  const g = map.querySelector("#markers");
  g.innerHTML = "";
  if (sPt) {
    const [x, y] = project(sPt[0], sPt[1]);
    g.appendChild(el("circle", {cx: x, cy: y, r: 7, fill: "#2e7d32", stroke: "#fff", "stroke-width": 2}));
  }
  if (tPt) {
    const [x, y] = project(tPt[0], tPt[1]);
    g.appendChild(el("circle", {cx: x, cy: y, r: 7, fill: "#b71c1c", stroke: "#fff", "stroke-width": 2}));
  }
}
function drawRoutes() {
  const g = map.querySelector("#routes");
  g.innerHTML = "";
  if (!lastRoutes) return;
  const dash = {A: "", B: "8 3", C: "2 3", D: "12 4 2 4"};
  for (const ap of lastRoutes.approaches) {
    for (const r of ap.routes) {
      const pts = r.points.map(p => project(p[0], p[1]).join(",")).join(" ");
      g.appendChild(el("polyline", {
        points: pts, fill: "none", stroke: COLORS[ap.label],
        "stroke-width": 3, "stroke-opacity": 0.65,
        "stroke-dasharray": dash[ap.label],
      }));
    }
  }
}
map.addEventListener("click", ev => {
  const r = map.getBoundingClientRect();
  const pt = unproject(ev.clientX - r.left, ev.clientY - r.top);
  if (!sPt) sPt = pt; else if (!tPt) tPt = pt; else { sPt = pt; tPt = null; }
  drawMarkers();
  status(sPt && tPt ? "Source and target set — press Compute." : "Now click the target.");
});
function status(msg) { document.getElementById("status").textContent = msg; }
document.getElementById("compute").onclick = async () => {
  if (!sPt || !tPt) { status("Pick source and target first."); return; }
  status("Computing alternatives with all four approaches...");
  const res = await fetch("/api/routes?city=" + cur.name +
    "&s=" + sPt.join(",") + "&t=" + tPt.join(","));
  if (!res.ok) { status("Error: " + (await res.json()).error); return; }
  lastRoutes = await res.json();
  drawRoutes();
  const box = document.getElementById("approaches");
  box.innerHTML = "";
  for (const ap of lastRoutes.approaches) {
    const div = document.createElement("div");
    div.className = "approach";
    let html = '<span class="swatch" style="background:' + COLORS[ap.label] + '"></span>' +
      "<b>Approach " + ap.label + "</b> — " + ap.routes.length + " route(s)";
    for (const r of ap.routes) {
      html += '<div class="routeinfo">' + r.minutes + " min · " + r.km.toFixed(1) + " km</div>";
    }
    div.innerHTML = html;
    box.appendChild(div);
  }
  status("Routes displayed. Rate each approach below.");
};
document.getElementById("clear").onclick = () => {
  sPt = tPt = lastRoutes = null;
  drawMarkers(); drawRoutes();
  document.getElementById("approaches").innerHTML = "";
  status("Cleared.");
};
function buildStars() {
  const box = document.getElementById("stars");
  box.innerHTML = "";
  for (const label of ["A", "B", "C", "D"]) {
    const row = document.createElement("div");
    row.innerHTML = "Approach " + label + ': <input type="number" min="1" max="5" value="3" id="rate' + label + '">';
    box.appendChild(row);
  }
}
document.getElementById("submitRating").onclick = async () => {
  if (!lastRoutes) { status("Compute routes before rating."); return; }
  const ratings = ["A", "B", "C", "D"].map(l => +document.getElementById("rate" + l).value);
  const res = await fetch("/api/rating", {
    method: "POST",
    headers: {"Content-Type": "application/json"},
    body: JSON.stringify({
      city: cur.name,
      resident: document.getElementById("resident").checked,
      ratings: ratings,
      comment: document.getElementById("comment").value,
    }),
  });
  status(res.ok ? "Thank you — rating recorded." : "Error: " + (await res.json()).error);
};
async function init() {
  cities = await (await fetch("/api/cities")).json();
  const sel = document.getElementById("city");
  for (const c of cities) {
    const opt = document.createElement("option");
    opt.value = c.name; opt.textContent = c.name;
    sel.appendChild(opt);
  }
  sel.onchange = async () => {
    cur = cities.find(c => c.name === sel.value);
    sPt = tPt = lastRoutes = null;
    await loadNetwork();
    drawMarkers();
  };
  cur = cities[0];
  buildStars();
  await loadNetwork();
  status("Click the map to place the source.");
}
init();
</script>
</body>
</html>
`
