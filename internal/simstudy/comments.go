package simstudy

import (
	"fmt"
	"math/rand"
)

// Comment generation. §IV-C quotes free-text feedback the study received —
// "Approach C provides paths with less turns", "less zig-zag is better",
// "highest rated path follows wide roads", "no route using Blackburn rd",
// "I don't see these approaches as very distinct from each other." — and
// uses it to identify the rating factors. The simulated participants leave
// the same kinds of comments, triggered by the same feature patterns, so
// the demo pipeline (collect → analyze) sees realistic free text.

// displayLetters are the blinded approach names shown to participants.
var displayLetters = [4]string{"A", "B", "C", "D"}

// favoriteStreets seeds the "favorite route was missing" complaint, after
// the study's "no route using Blackburn rd" example.
var favoriteStreets = []string{
	"Blackburn Rd", "High St", "Station Rd", "Mirpur Rd", "Airport Rd",
	"Ring Rd", "Canal St", "Harbour Bridge", "Lake Rd", "University Ave",
}

// commentChance is the probability a participant leaves any comment;
// real studies see sparse free-text feedback.
const commentChance = 0.18

// Comment returns a free-text remark for the response, or "" (most of the
// time). feats holds the four approaches' features in display order A-D.
func Comment(rng *rand.Rand, feats [4]Features) string {
	if rng.Float64() > commentChance {
		return ""
	}
	// Candidate remarks triggered by the route sets actually shown.
	var candidates []string

	// Indistinct approaches: all four sets look alike in stretch and turns.
	if spread(feats, func(f Features) float64 { return f.StretchPublic }) < 0.04 &&
		spread(feats, func(f Features) float64 { return f.TurnsPerKm }) < 0.4 {
		candidates = append(candidates,
			"I don't see these approaches as very distinct from each other.",
			"finding it hard to rank the approaches since they all seem to be of similar quality")
	}
	// Fewest turns stands out.
	if i, ok := argminBy(feats, func(f Features) float64 { return f.TurnsPerKm }, 0.8); ok {
		candidates = append(candidates,
			fmt.Sprintf("Approach %s provides paths with less turns", displayLetters[i]))
	}
	// Zig-zag annoyance: someone shows high turn density.
	if maxBy(feats, func(f Features) float64 { return f.TurnsPerKm }) > 2.5 {
		candidates = append(candidates, "less zig-zag is better")
	}
	// Wide roads praised.
	if i, ok := argmaxBy(feats, func(f Features) float64 { return f.MeanLanes }, 0.3); ok {
		_ = i
		candidates = append(candidates, "highest rated path follows wide roads")
	}
	// Redundant routes.
	if maxBy(feats, func(f Features) float64 { return f.SimT }) > 0.85 {
		candidates = append(candidates, "two of the routes are basically the same road")
	}
	// The favorite-route complaint fires independently of features.
	candidates = append(candidates,
		fmt.Sprintf("no route using %s", favoriteStreets[rng.Intn(len(favoriteStreets))]))

	return candidates[rng.Intn(len(candidates))]
}

func spread(feats [4]Features, get func(Features) float64) float64 {
	lo, hi := get(feats[0]), get(feats[0])
	for _, f := range feats[1:] {
		v := get(f)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func maxBy(feats [4]Features, get func(Features) float64) float64 {
	m := get(feats[0])
	for _, f := range feats[1:] {
		if v := get(f); v > m {
			m = v
		}
	}
	return m
}

// argminBy returns the index of the strict minimum if it beats the runner-
// up by at least margin.
func argminBy(feats [4]Features, get func(Features) float64, margin float64) (int, bool) {
	best, bestV := 0, get(feats[0])
	secondV := get(feats[1])
	if secondV < bestV {
		best, bestV, secondV = 1, secondV, bestV
	}
	for i := 1; i < 4; i++ {
		v := get(feats[i])
		if i == best {
			continue
		}
		if v < bestV {
			best, secondV, bestV = i, bestV, v
		} else if v < secondV {
			secondV = v
		}
	}
	return best, secondV-bestV >= margin
}

func argmaxBy(feats [4]Features, get func(Features) float64, margin float64) (int, bool) {
	neg := func(f Features) float64 { return -get(f) }
	return argminBy(feats, neg, margin)
}
