package simstudy

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCommentRateIsSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	feats := [4]Features{}
	for i := range feats {
		feats[i] = Features{StretchPublic: 1.1, StretchPrivate: 1.1, TurnsPerKm: 1, MeanLanes: 1.5, NumRoutes: 3}
	}
	withComment := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if Comment(rng, feats) != "" {
			withComment++
		}
	}
	rate := float64(withComment) / n
	if rate < 0.10 || rate > 0.28 {
		t.Errorf("comment rate = %.3f, want near %.2f", rate, commentChance)
	}
}

func TestCommentIndistinctApproaches(t *testing.T) {
	// Nearly identical feature vectors across approaches must sometimes
	// produce the "not very distinct" remark the paper quotes.
	rng := rand.New(rand.NewSource(2))
	var feats [4]Features
	for i := range feats {
		feats[i] = Features{StretchPublic: 1.10, TurnsPerKm: 1.0, MeanLanes: 1.5, NumRoutes: 3}
	}
	found := false
	for i := 0; i < 3000 && !found; i++ {
		c := Comment(rng, feats)
		if strings.Contains(c, "distinct") || strings.Contains(c, "similar quality") {
			found = true
		}
	}
	if !found {
		t.Error("indistinct route sets never triggered the 'not distinct' comment")
	}
}

func TestCommentFewTurnsNamesTheRightApproach(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var feats [4]Features
	for i := range feats {
		feats[i] = Features{StretchPublic: 1.2 + 0.1*float64(i), TurnsPerKm: 4, MeanLanes: 1.5, NumRoutes: 3}
	}
	feats[2].TurnsPerKm = 0.5 // approach C clearly has fewest turns
	found := false
	for i := 0; i < 3000 && !found; i++ {
		if strings.Contains(Comment(rng, feats), "Approach C provides paths with less turns") {
			found = true
		}
	}
	if !found {
		t.Error("clear fewest-turns approach never named in a comment")
	}
	// No other approach is ever credited.
	for i := 0; i < 3000; i++ {
		c := Comment(rng, feats)
		for _, wrong := range []string{"Approach A provides", "Approach B provides", "Approach D provides"} {
			if strings.Contains(c, wrong) {
				t.Fatalf("wrong approach credited: %q", c)
			}
		}
	}
}

func TestCommentFavoriteStreet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var feats [4]Features
	for i := range feats {
		feats[i] = Features{StretchPublic: 1.2 + 0.2*float64(i), TurnsPerKm: 1 + float64(i), MeanLanes: 1.5, NumRoutes: 3}
	}
	found := false
	for i := 0; i < 3000 && !found; i++ {
		if strings.Contains(Comment(rng, feats), "no route using") {
			found = true
		}
	}
	if !found {
		t.Error("the favorite-route complaint never appeared")
	}
}

func TestCommentZigZagAndDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var feats [4]Features
	for i := range feats {
		feats[i] = Features{StretchPublic: 1.3, TurnsPerKm: 3.5, SimT: 0.95, MeanLanes: 1, NumRoutes: 3}
	}
	sawZig, sawDup := false, false
	for i := 0; i < 5000 && !(sawZig && sawDup); i++ {
		c := Comment(rng, feats)
		if strings.Contains(c, "zig-zag") {
			sawZig = true
		}
		if strings.Contains(c, "same road") {
			sawDup = true
		}
	}
	if !sawZig {
		t.Error("high turn density never triggered the zig-zag comment")
	}
	if !sawDup {
		t.Error("near-duplicate routes never triggered the same-road comment")
	}
}
