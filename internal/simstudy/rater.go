package simstudy

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/path"
)

// Features are the objective properties of one approach's route set that
// drive a simulated participant's perceived quality. They correspond to
// the factors the paper's participants mentioned (§IV-C): apparent
// detours, redundant (too similar) routes, zig-zag routes, and too few
// options.
type Features struct {
	// StretchPublic is the mean ratio of route travel time to the fastest
	// travel time, both under the public OSM weights — what the routes
	// *look like* on the map.
	StretchPublic float64
	// StretchPrivate is the same ratio under the provider-independent
	// "real traffic" weights — how the routes actually drive. Residents
	// know their roads, so their perception mixes this in.
	StretchPrivate float64
	// SimT is Eq. (1) of the paper: max pairwise similarity of the set.
	SimT float64
	// TurnsPerKm is the mean significant-turn density over the set.
	TurnsPerKm float64
	// MeanLanes is the length-weighted mean lane count over the set — the
	// "wider roads" signal of §IV-C.
	MeanLanes float64
	// NumRoutes is the number of routes displayed (1..3).
	NumRoutes int
}

// ExtractFeatures computes Features for one approach's route set.
// fastestPublic/fastestPrivate are the s–t fastest travel times under each
// weight vector; private is the real-traffic weight vector.
func ExtractFeatures(g *graph.Graph, private []float64, routes []path.Path, fastestPublic, fastestPrivate float64) Features {
	f := Features{NumRoutes: len(routes)}
	if len(routes) == 0 || fastestPublic <= 0 || fastestPrivate <= 0 {
		return f
	}
	// Participants look mostly at the primary route; alternatives carry
	// progressively less weight in the perceived quality.
	rankWeight := [3]float64{0.5, 0.3, 0.2}
	var sumPub, sumPriv, wsum, turns, km, lanes float64
	for i, r := range routes {
		w := 0.2
		if i < len(rankWeight) {
			w = rankWeight[i]
		}
		sumPub += w * r.TimeS / fastestPublic
		sumPriv += w * r.TimeUnder(private) / fastestPrivate
		wsum += w
		turns += float64(path.TurnCount(g, r, 45))
		km += r.LengthM / 1000
		lanes += path.MeanLanes(g, r)
	}
	f.StretchPublic = sumPub / wsum
	f.StretchPrivate = sumPriv / wsum
	f.MeanLanes = lanes / float64(len(routes))
	if km > 0 {
		f.TurnsPerKm = turns / km
	}
	f.SimT = path.SimT(g, routes)
	return f
}

// RaterParams are the coefficients of the perceived-quality model. The
// defaults are calibrated so the aggregate statistics land in the paper's
// regime: cell means ≈ 3.0–3.7, standard deviations ≈ 1.3, and one-way
// ANOVA p-values above 0.05.
type RaterParams struct {
	Base          float64 // baseline score for a perfect route set
	WStretch      float64 // penalty per unit of mean stretch above 1
	WSim          float64 // penalty per unit of Sim(T)
	WTurns        float64 // penalty per turn/km
	WFewRoutes    float64 // penalty per missing route below 3
	ResidentTrust float64 // residents' weight on real-traffic stretch (0..1)
	// NonResStretchBoost scales the stretch penalty for non-residents:
	// with no local knowledge, apparent detours on the map are judged more
	// harshly (§IV-C "Apparent detours that are not").
	NonResStretchBoost float64
	NoiseSD            float64 // sd of the participant's taste noise
}

// DefaultRaterParams returns the calibrated coefficients.
func DefaultRaterParams() RaterParams {
	return RaterParams{
		Base:               4.15,
		WStretch:           2.8,
		WSim:               0.55,
		WTurns:             0.06,
		WFewRoutes:         0.12,
		ResidentTrust:      0.55,
		NonResStretchBoost: 1.45,
		NoiseSD:            1.45,
	}
}

// Rater is one simulated participant.
type Rater struct {
	rng      *rand.Rand
	resident bool
	params   RaterParams
	// personal leniency: some participants rate everything higher/lower,
	// matching the per-respondent correlation in real rating data.
	leniency float64
}

// NewRater creates a participant. Residents judge routes partly by how
// they actually drive (private/traffic data); non-residents judge purely
// by map appearance (public data) — the mechanism behind the paper's
// observation that Google Maps "consistently received lower mean ratings
// from non-residents".
func NewRater(rng *rand.Rand, resident bool, params RaterParams) *Rater {
	return &Rater{
		rng:      rng,
		resident: resident,
		params:   params,
		leniency: rng.NormFloat64() * 0.35,
	}
}

// Rate scores one approach's route set on the study's 1–5 scale.
func (r *Rater) Rate(f Features) int {
	p := r.params
	if f.NumRoutes == 0 {
		return 1
	}
	stretch := f.StretchPublic
	wStretch := p.WStretch
	if r.resident {
		stretch = (1-p.ResidentTrust)*f.StretchPublic + p.ResidentTrust*f.StretchPrivate
	} else if p.NonResStretchBoost > 0 {
		wStretch *= p.NonResStretchBoost
	}
	score := p.Base
	if stretch > 1 {
		score -= wStretch * (stretch - 1)
	}
	score -= p.WSim * f.SimT
	score -= p.WTurns * f.TurnsPerKm
	if f.NumRoutes < 3 {
		score -= p.WFewRoutes * float64(3-f.NumRoutes)
	}
	score += r.leniency + r.rng.NormFloat64()*p.NoiseSD
	return clampRating(score)
}

func clampRating(score float64) int {
	v := int(math.Round(score))
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}

// Response is one submitted feedback form: a rating per approach, in the
// study's blinded display order A–D (A: Google Maps / Commercial,
// B: Plateaus, C: Dissimilarity, D: Penalty).
type Response struct {
	Cell
	FastestMin float64
	Ratings    [4]int
	// Comment is the participant's optional free-text remark ("" for most
	// responses), generated by Comment from the same route features.
	Comment string
}

// ApproachNames lists the four approaches in Table I column order.
var ApproachNames = [4]string{"GMaps", "Plateaus", "Dissimilarity", "Penalty"}
