// Package simstudy simulates the paper's 520-participant user study.
//
// Human ratings cannot be mechanically reproduced, so this package
// substitutes a behavioural rater model (see rater.go) driven by objective
// route features, and replays the paper's exact response schedule: how
// many responses each (city, residency, route-length band) cell received.
// The downstream statistical pipeline — per-cell means, standard
// deviations and one-way ANOVA — is identical to the paper's.
package simstudy

// Band is a route-length stratum defined by the fastest travel time
// between source and target (Table I): Small (0,10] min, Medium
// (10,25] min ((10,20] for Dhaka), Long (25,80] min ((20,80] for Dhaka).
type Band int

// Route-length bands in the paper's order.
const (
	Small Band = iota
	Medium
	Long
	NumBands
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Long:
		return "Long"
	default:
		return "?"
	}
}

// Cell identifies one stratum of the response schedule.
type Cell struct {
	City     string
	Resident bool
	Band     Band
}

// CellCount is a cell together with its response count.
type CellCount struct {
	Cell
	N int
}

// PaperSchedule returns the exact response counts of the paper's Table I:
// 520 responses total — Melbourne 237 (156 residents), Dhaka 155 (112),
// Copenhagen 128 (66) — broken down by route-length band.
func PaperSchedule() []CellCount {
	mk := func(city string, resident bool, small, medium, long int) []CellCount {
		return []CellCount{
			{Cell{city, resident, Small}, small},
			{Cell{city, resident, Medium}, medium},
			{Cell{city, resident, Long}, long},
		}
	}
	var out []CellCount
	out = append(out, mk("Melbourne", true, 37, 82, 37)...)
	out = append(out, mk("Melbourne", false, 26, 28, 27)...)
	out = append(out, mk("Dhaka", true, 53, 48, 11)...)
	out = append(out, mk("Dhaka", false, 5, 15, 23)...)
	out = append(out, mk("Copenhagen", true, 20, 37, 9)...)
	out = append(out, mk("Copenhagen", false, 2, 36, 24)...)
	return out
}

// ScaledSchedule returns PaperSchedule with every cell count multiplied by
// frac (minimum 1 response per cell) — used to keep test runs fast while
// exercising the full pipeline.
func ScaledSchedule(frac float64) []CellCount {
	sched := PaperSchedule()
	for i := range sched {
		n := int(float64(sched[i].N)*frac + 0.5)
		if n < 1 {
			n = 1
		}
		sched[i].N = n
	}
	return sched
}

// TotalResponses sums the schedule's counts.
func TotalResponses(sched []CellCount) int {
	total := 0
	for _, c := range sched {
		total += c.N
	}
	return total
}

// BandBounds returns the band's (lo, hi] boundaries in minutes of fastest
// travel time for the given city. Dhaka uses a 20-minute medium/long split
// (Table I); the other cities use 25.
func BandBounds(city string, b Band) (lo, hi float64) {
	split := 25.0
	if city == "Dhaka" {
		split = 20.0
	}
	switch b {
	case Small:
		return 0, 10
	case Medium:
		return 10, split
	default:
		return split, 80
	}
}

// BandOf classifies a fastest travel time (minutes) into a band, or
// ok=false if it exceeds the study's 80-minute cap.
func BandOf(city string, fastestMin float64) (Band, bool) {
	if fastestMin <= 0 || fastestMin > 80 {
		return 0, false
	}
	for b := Small; b < NumBands; b++ {
		lo, hi := BandBounds(city, b)
		if fastestMin > lo && fastestMin <= hi {
			return b, true
		}
	}
	return 0, false
}
