package simstudy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/stats"
)

func TestPaperScheduleTotals(t *testing.T) {
	sched := PaperSchedule()
	if got := TotalResponses(sched); got != 520 {
		t.Fatalf("total responses = %d, want 520", got)
	}
	byCity := map[string]int{}
	residents := 0
	for _, c := range sched {
		byCity[c.City] += c.N
		if c.Resident {
			residents += c.N
		}
	}
	if byCity["Melbourne"] != 237 || byCity["Dhaka"] != 155 || byCity["Copenhagen"] != 128 {
		t.Errorf("per-city totals = %v, want 237/155/128", byCity)
	}
	if residents != 334 {
		t.Errorf("residents = %d, want 334", residents)
	}
	// Band totals across cities: 143 small, 246 medium, 131 long.
	byBand := map[Band]int{}
	for _, c := range sched {
		byBand[c.Band] += c.N
	}
	if byBand[Small] != 143 || byBand[Medium] != 246 || byBand[Long] != 131 {
		t.Errorf("band totals = %v, want 143/246/131", byBand)
	}
}

func TestScaledSchedule(t *testing.T) {
	half := ScaledSchedule(0.5)
	full := PaperSchedule()
	for i := range half {
		if half[i].N < 1 {
			t.Errorf("cell %v scaled to %d, want ≥1", half[i].Cell, half[i].N)
		}
		if half[i].N > full[i].N {
			t.Errorf("cell %v scaled up: %d > %d", half[i].Cell, half[i].N, full[i].N)
		}
	}
	tiny := ScaledSchedule(0.001)
	for _, c := range tiny {
		if c.N != 1 {
			t.Errorf("tiny scale cell %v = %d, want 1", c.Cell, c.N)
		}
	}
}

func TestBandBoundsAndClassification(t *testing.T) {
	// Dhaka splits medium/long at 20 minutes, others at 25.
	if _, hi := BandBounds("Dhaka", Medium); hi != 20 {
		t.Errorf("Dhaka medium hi = %f, want 20", hi)
	}
	if _, hi := BandBounds("Melbourne", Medium); hi != 25 {
		t.Errorf("Melbourne medium hi = %f, want 25", hi)
	}
	cases := []struct {
		city string
		min  float64
		want Band
		ok   bool
	}{
		{"Melbourne", 5, Small, true},
		{"Melbourne", 10, Small, true},
		{"Melbourne", 10.01, Medium, true},
		{"Melbourne", 25, Medium, true},
		{"Melbourne", 25.01, Long, true},
		{"Melbourne", 80, Long, true},
		{"Melbourne", 80.5, 0, false},
		{"Melbourne", 0, 0, false},
		{"Dhaka", 22, Long, true},
		{"Dhaka", 19, Medium, true},
		{"Copenhagen", 30, Long, true},
	}
	for _, c := range cases {
		got, ok := BandOf(c.city, c.min)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("BandOf(%s, %.2f) = %v,%v want %v,%v", c.city, c.min, got, ok, c.want, c.ok)
		}
	}
}

func TestBandString(t *testing.T) {
	if Small.String() != "Small" || Medium.String() != "Medium" || Long.String() != "Long" {
		t.Error("band names wrong")
	}
	if Band(9).String() != "?" {
		t.Error("unknown band should render as ?")
	}
}

// featureGraph builds a short two-route corridor for feature extraction.
func featureGraph(t *testing.T) (*graph.Graph, path.Path, path.Path) {
	t.Helper()
	b := graph.NewBuilder(6, 0)
	o := geo.Point{Lat: 0, Lon: 0}
	n0 := b.AddNode(o)
	n1 := b.AddNode(geo.Offset(o, 0, 1000))
	n2 := b.AddNode(geo.Offset(o, 0, 2000))
	n3 := b.AddNode(geo.Offset(o, 800, 500))
	n4 := b.AddNode(geo.Offset(o, 800, 1500))
	b.AddEdge(graph.EdgeSpec{From: n0, To: n1, Class: graph.Primary, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: n1, To: n2, Class: graph.Primary, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: n0, To: n3, Class: graph.Residential, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: n3, To: n4, Class: graph.Residential, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: n4, To: n2, Class: graph.Residential, TwoWay: true})
	g := b.Build()
	w := g.CopyWeights()
	direct := path.MustNew(g, w, n0, []graph.EdgeID{0, 2})
	detour := path.MustNew(g, w, n0, []graph.EdgeID{g.FindEdge(n0, n3), g.FindEdge(n3, n4), g.FindEdge(n4, n2)})
	return g, direct, detour
}

func TestExtractFeatures(t *testing.T) {
	g, direct, detour := featureGraph(t)
	private := g.CopyWeights() // same data: stretches agree
	fast := direct.TimeS
	f := ExtractFeatures(g, private, []path.Path{direct, detour}, fast, fast)
	if f.NumRoutes != 2 {
		t.Errorf("NumRoutes = %d, want 2", f.NumRoutes)
	}
	if f.StretchPublic <= 1 {
		t.Errorf("mean stretch with a detour route should exceed 1, got %f", f.StretchPublic)
	}
	if math.Abs(f.StretchPublic-f.StretchPrivate) > 1e-9 {
		t.Errorf("same data should give equal stretches: %f vs %f", f.StretchPublic, f.StretchPrivate)
	}
	if f.SimT != 0 {
		t.Errorf("disjoint routes SimT = %f, want 0", f.SimT)
	}
	if f.TurnsPerKm <= 0 {
		t.Errorf("detour route should contribute turns, got %f", f.TurnsPerKm)
	}
	// Empty set.
	f = ExtractFeatures(g, private, nil, fast, fast)
	if f.NumRoutes != 0 || f.StretchPublic != 0 {
		t.Errorf("empty set features = %+v", f)
	}
}

func TestRaterRatingRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRater(rng, true, DefaultRaterParams())
	for i := 0; i < 1000; i++ {
		f := Features{
			StretchPublic:  1 + rng.Float64(),
			StretchPrivate: 1 + rng.Float64(),
			SimT:           rng.Float64(),
			TurnsPerKm:     rng.Float64() * 5,
			NumRoutes:      1 + rng.Intn(3),
		}
		if v := r.Rate(f); v < 1 || v > 5 {
			t.Fatalf("rating %d out of 1..5", v)
		}
	}
	if v := r.Rate(Features{}); v != 1 {
		t.Errorf("zero-route set rating = %d, want 1", v)
	}
}

func TestRaterPrefersBetterRoutes(t *testing.T) {
	// Averaged over many raters, a perfect set must outrate a poor set.
	params := DefaultRaterParams()
	good := Features{StretchPublic: 1.02, StretchPrivate: 1.02, SimT: 0.1, TurnsPerKm: 0.5, NumRoutes: 3}
	bad := Features{StretchPublic: 1.6, StretchPrivate: 1.6, SimT: 0.9, TurnsPerKm: 4, NumRoutes: 1}
	rng := rand.New(rand.NewSource(2))
	var sumGood, sumBad float64
	const n = 4000
	for i := 0; i < n; i++ {
		r := NewRater(rng, false, params)
		sumGood += float64(r.Rate(good))
		sumBad += float64(r.Rate(bad))
	}
	if sumGood/n <= sumBad/n+0.5 {
		t.Errorf("good set mean %.2f should clearly exceed bad set mean %.2f", sumGood/n, sumBad/n)
	}
}

func TestResidencyShapesPerception(t *testing.T) {
	// A set that drives well in real traffic but looks slow on the map
	// (the commercial provider's routes under OSM data) must be rated
	// higher by residents than by non-residents, on average.
	params := DefaultRaterParams()
	f := Features{StretchPublic: 1.35, StretchPrivate: 1.02, SimT: 0.3, TurnsPerKm: 1, NumRoutes: 3}
	rng := rand.New(rand.NewSource(3))
	var sumRes, sumNon float64
	const n = 6000
	for i := 0; i < n; i++ {
		sumRes += float64(NewRater(rng, true, params).Rate(f))
		sumNon += float64(NewRater(rng, false, params).Rate(f))
	}
	if (sumRes-sumNon)/n < 0.2 {
		t.Errorf("resident mean %.3f should exceed non-resident %.3f by ≥0.2",
			sumRes/n, sumNon/n)
	}
}

func TestRatingsDistributionMatchesPaperRegime(t *testing.T) {
	// Typical feature values must produce means ≈3.0–3.8 and sd ≈1.1–1.5,
	// the regime of every cell in the paper's Table I.
	params := DefaultRaterParams()
	f := Features{StretchPublic: 1.18, StretchPrivate: 1.15, SimT: 0.35, TurnsPerKm: 1.5, NumRoutes: 3}
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = float64(NewRater(rng, i%2 == 0, params).Rate(f))
	}
	m, sd := stats.Mean(xs), stats.StdDev(xs)
	if m < 3.0 || m > 3.8 {
		t.Errorf("mean rating %.3f outside the paper's regime [3.0, 3.8]", m)
	}
	if sd < 1.1 || sd > 1.5 {
		t.Errorf("rating sd %.3f outside the paper's regime [1.1, 1.5]", sd)
	}
}

func TestApproachNamesOrder(t *testing.T) {
	want := [4]string{"GMaps", "Plateaus", "Dissimilarity", "Penalty"}
	if ApproachNames != want {
		t.Errorf("ApproachNames = %v, want %v (Table I column order)", ApproachNames, want)
	}
}
