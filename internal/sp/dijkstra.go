// Package sp implements the shortest-path machinery all alternative-route
// techniques are built on: Dijkstra's algorithm, full shortest-path trees
// in both directions (the substrate of the Plateaus and Dissimilarity
// techniques), bidirectional Dijkstra, and A* with a haversine potential.
//
// All searches take an explicit weight slice indexed by EdgeID so that the
// Penalty technique and the traffic simulation can run on perturbed
// weights without copying the graph.
//
// # Workspaces and the epoch reset
//
// Every search exists in two forms: a convenience form (BuildTree,
// ShortestPath, ...) that returns independently owned results, and an
// allocation-free ...Into form taking an explicit *Workspace whose results
// alias workspace memory. The workspace holds the per-search dist/parent
// arrays, generation-stamp arrays and 4-ary heaps. Clearing between
// searches is O(1): instead of re-filling dist with +Inf, Begin bumps a
// generation counter and stale slots are treated as +Inf on read (see
// SearchState). Relaxations additionally read packed per-direction head
// arrays from the graph (OutHeads/InTails), so the hot loop touches two
// sequential int32/float64 arrays instead of loading a 40-byte Edge struct
// per edge. Under the serving layer (core.Engine) workspaces are pooled
// via sync.Pool, making steady-state query processing allocation-free.
package sp

import (
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Direction selects whether a tree grows along edges (Forward, rooted at a
// source) or against them (Backward, rooted at a target).
type Direction uint8

// Tree growth directions.
const (
	Forward Direction = iota
	Backward
)

// Tree is a complete shortest-path tree: for every node, the distance from
// (Forward) or to (Backward) the root, and the tree edge through which the
// node is reached.
type Tree struct {
	Root   graph.NodeID
	Dir    Direction
	Dist   []float64      // Dist[v] = shortest travel time root→v (or v→root)
	Parent []graph.EdgeID // Parent[v] = tree edge into v (Forward) / out of v (Backward); -1 at root and unreachable nodes
}

// Reached reports whether v is reachable from/to the root.
func (t *Tree) Reached(v graph.NodeID) bool {
	return !math.IsInf(t.Dist[v], 1)
}

// PathTo reconstructs the shortest path between the root and v as an edge
// sequence. For Forward trees the edges run root→v; for Backward trees they
// run v→root. It returns nil if v is unreachable.
func (t *Tree) PathTo(g *graph.Graph, v graph.NodeID) []graph.EdgeID {
	edges, ok := t.PathInto(make([]graph.EdgeID, 0, 32), g, v)
	if !ok {
		return nil
	}
	return edges
}

// PathInto is PathTo on caller-provided storage: the path's edges are
// appended to buf (in root→v order for Forward trees, v→root for
// Backward) and the extended slice is returned. ok is false when v is
// unreachable or the tree is broken, in which case buf is returned with
// nothing appended. Threading a workspace's PathBuf through repeated
// reconstructions makes route extraction allocation-free.
func (t *Tree) PathInto(buf []graph.EdgeID, g *graph.Graph, v graph.NodeID) ([]graph.EdgeID, bool) {
	if !t.Reached(v) {
		return buf, false
	}
	mark := len(buf)
	cur := v
	for cur != t.Root {
		e := t.Parent[cur]
		if e < 0 {
			return buf[:mark], false // defensive: broken tree
		}
		buf = append(buf, e)
		if t.Dir == Forward {
			cur = g.Edge(e).From
		} else {
			cur = g.Edge(e).To
		}
	}
	if t.Dir == Forward {
		reverse(buf[mark:])
	}
	return buf, true
}

// Clone returns an independently owned copy of a workspace-backed tree.
func (t *Tree) Clone() *Tree {
	return &Tree{
		Root:   t.Root,
		Dir:    t.Dir,
		Dist:   append([]float64(nil), t.Dist...),
		Parent: append([]graph.EdgeID(nil), t.Parent...),
	}
}

func reverse(e []graph.EdgeID) {
	for i, j := 0, len(e)-1; i < j; i, j = i+1, j-1 {
		e[i], e[j] = e[j], e[i]
	}
}

// copyEdges returns an independently owned copy of a workspace-backed edge
// sequence, preserving nil-ness.
func copyEdges(edges []graph.EdgeID) []graph.EdgeID {
	if edges == nil {
		return nil
	}
	return append(make([]graph.EdgeID, 0, len(edges)), edges...)
}

// BuildTree runs a full Dijkstra from root over the whole graph and returns
// the shortest-path tree. weights must have one entry per edge; pass
// g.CopyWeights() (or a perturbed copy) to choose the metric.
func BuildTree(g *graph.Graph, weights []float64, root graph.NodeID, dir Direction) *Tree {
	ws := GetWorkspace()
	defer ws.Release()
	return BuildTreeInto(ws, g, weights, root, dir).Clone()
}

// BuildTreeInto is BuildTree on workspace memory: the returned Tree aliases
// ws and is valid until the next search using the same slot (Forward trees
// and point-to-point searches share one slot, Backward trees the other).
func BuildTreeInto(ws *Workspace, g *graph.Graph, weights []float64, root graph.NodeID, dir Direction) *Tree {
	n := g.NumNodes()
	t, s := ws.treeSlot(dir)
	s.Begin(n)
	s.Update(root, 0, -1)
	s.Heap.Push(root, 0)
	dist, parent, stamp, cur := s.dist, s.parent, s.stamp, s.cur
	for s.Heap.Len() > 0 {
		u, du := s.Heap.Pop()
		if stamp[u] == cur+1 {
			continue // stale duplicate; already settled
		}
		stamp[u] = cur + 1
		var adj []graph.EdgeID
		var ends []graph.NodeID
		if dir == Forward {
			adj, ends = g.OutEdges(u), g.OutHeads(u)
		} else {
			adj, ends = g.InEdges(u), g.InTails(u)
		}
		for i, e := range adj {
			v := ends[i]
			nd := du + weights[e]
			if stamp[v] >= cur && nd >= dist[v] {
				continue
			}
			if math.IsInf(nd, 1) {
				continue // +Inf weights are bans; never traverse them
			}
			dist[v] = nd
			parent[v] = e
			if stamp[v] < cur {
				stamp[v] = cur
			}
			s.Heap.Push(v, nd)
		}
	}
	t.Root, t.Dir = root, dir
	t.Dist, t.Parent = s.Finalize(n)
	return t
}

// ShortestPath runs a target-pruned Dijkstra from s and returns the
// shortest s→t path as an edge sequence plus its travel time. It returns
// (nil, +Inf) when t is unreachable from s.
func ShortestPath(g *graph.Graph, weights []float64, s, t graph.NodeID) ([]graph.EdgeID, float64) {
	ws := GetWorkspace()
	defer ws.Release()
	edges, d := ShortestPathInto(ws, g, weights, s, t)
	return copyEdges(edges), d
}

// ShortestPathInto is ShortestPath on workspace memory: the returned edge
// slice aliases ws and is valid until its next use.
func ShortestPathInto(ws *Workspace, g *graph.Graph, weights []float64, s, t graph.NodeID) ([]graph.EdgeID, float64) {
	if s == t {
		return ws.pathBuf(), 0
	}
	st := &ws.F
	st.Begin(g.NumNodes())
	st.Update(s, 0, -1)
	st.Heap.Push(s, 0)
	dist, parent, stamp, cur := st.dist, st.parent, st.stamp, st.cur
	for st.Heap.Len() > 0 {
		u, du := st.Heap.Pop()
		if stamp[u] == cur+1 {
			continue // stale duplicate; already settled
		}
		if u == t {
			break
		}
		stamp[u] = cur + 1
		adj, heads := g.OutEdges(u), g.OutHeads(u)
		for i, e := range adj {
			v := heads[i]
			nd := du + weights[e]
			if stamp[v] >= cur && nd >= dist[v] {
				continue
			}
			if math.IsInf(nd, 1) {
				continue // +Inf weights are bans; never traverse them
			}
			dist[v] = nd
			parent[v] = e
			if stamp[v] < cur {
				stamp[v] = cur
			}
			st.Heap.Push(v, nd)
		}
	}
	if !st.Touched(t) {
		return nil, math.Inf(1)
	}
	edges := ws.pathBuf()
	for cur := t; cur != s; {
		e := st.parent[cur]
		edges = append(edges, e)
		cur = g.Edge(e).From
	}
	reverse(edges)
	ws.path = edges
	return edges, st.dist[t]
}

// BidirectionalShortestPath computes the shortest s→t path by running
// alternating forward and backward Dijkstra searches that meet in the
// middle. Returns the same result as ShortestPath but typically settles
// far fewer nodes on road networks.
func BidirectionalShortestPath(g *graph.Graph, weights []float64, s, t graph.NodeID) ([]graph.EdgeID, float64) {
	ws := GetWorkspace()
	defer ws.Release()
	edges, d := BidirectionalShortestPathInto(ws, g, weights, s, t)
	return copyEdges(edges), d
}

// BidirectionalShortestPathInto is BidirectionalShortestPath on workspace
// memory (both search slots): the returned edge slice aliases ws and is
// valid until its next use.
func BidirectionalShortestPathInto(ws *Workspace, g *graph.Graph, weights []float64, s, t graph.NodeID) ([]graph.EdgeID, float64) {
	if s == t {
		return ws.pathBuf(), 0
	}
	n := g.NumNodes()
	f, b := &ws.F, &ws.B
	f.Begin(n)
	b.Begin(n)
	f.Update(s, 0, -1)
	f.Heap.Push(s, 0)
	b.Update(t, 0, -1)
	b.Heap.Push(t, 0)

	best := math.Inf(1)
	var meet graph.NodeID = graph.InvalidNode

	distF, parF, stampF, curF := f.dist, f.parent, f.stamp, f.cur
	distB, parB, stampB, curB := b.dist, b.parent, b.stamp, b.cur

	for f.Heap.Len() > 0 || b.Heap.Len() > 0 {
		// Stop when the frontiers can no longer improve the best meeting.
		topF, topB := math.Inf(1), math.Inf(1)
		if f.Heap.Len() > 0 {
			topF = f.Heap.MinPrio()
		}
		if b.Heap.Len() > 0 {
			topB = b.Heap.MinPrio()
		}
		if topF+topB >= best {
			break
		}
		// Expand the smaller frontier.
		if topF <= topB && f.Heap.Len() > 0 {
			u, du := f.Heap.Pop()
			if stampF[u] == curF+1 {
				continue
			}
			stampF[u] = curF + 1
			adj, heads := g.OutEdges(u), g.OutHeads(u)
			for i, e := range adj {
				v := heads[i]
				nd := du + weights[e]
				if stampF[v] >= curF && nd >= distF[v] {
					continue
				}
				if math.IsInf(nd, 1) {
					continue // +Inf weights are bans; never traverse them
				}
				distF[v] = nd
				parF[v] = e
				if stampF[v] < curF {
					stampF[v] = curF
				}
				f.Heap.Push(v, nd)
				if stampB[v] >= curB {
					if d := nd + distB[v]; d < best {
						best = d
						meet = v
					}
				}
			}
		} else if b.Heap.Len() > 0 {
			u, du := b.Heap.Pop()
			if stampB[u] == curB+1 {
				continue
			}
			stampB[u] = curB + 1
			adj, tails := g.InEdges(u), g.InTails(u)
			for i, e := range adj {
				v := tails[i]
				nd := du + weights[e]
				if stampB[v] >= curB && nd >= distB[v] {
					continue
				}
				if math.IsInf(nd, 1) {
					continue // +Inf weights are bans; never traverse them
				}
				distB[v] = nd
				parB[v] = e
				if stampB[v] < curB {
					stampB[v] = curB
				}
				b.Heap.Push(v, nd)
				if stampF[v] >= curF {
					if d := nd + distF[v]; d < best {
						best = d
						meet = v
					}
				}
			}
		}
	}
	if meet == graph.InvalidNode {
		return nil, math.Inf(1)
	}
	// Stitch s→meet from the forward search with meet→t from the backward one.
	edges := ws.pathBuf()
	for cur := meet; cur != s; {
		e := f.parent[cur]
		edges = append(edges, e)
		cur = g.Edge(e).From
	}
	reverse(edges)
	for cur := meet; cur != t; {
		e := b.parent[cur]
		edges = append(edges, e)
		cur = g.Edge(e).To
	}
	ws.path = edges
	return edges, best
}

// AStarShortestPath computes the shortest s→t path using A* with an
// admissible haversine/TopSpeed potential. minSecondsPerMeter must be a
// lower bound on weight/length over all edges (see MinSecondsPerMeter);
// passing 0 disables the heuristic, degrading to plain Dijkstra.
func AStarShortestPath(g *graph.Graph, weights []float64, s, t graph.NodeID, minSecondsPerMeter float64) ([]graph.EdgeID, float64) {
	ws := GetWorkspace()
	defer ws.Release()
	edges, d := AStarShortestPathInto(ws, g, weights, s, t, minSecondsPerMeter)
	return copyEdges(edges), d
}

// AStarShortestPathInto is AStarShortestPath on workspace memory: the
// returned edge slice aliases ws and is valid until its next use.
func AStarShortestPathInto(ws *Workspace, g *graph.Graph, weights []float64, s, t graph.NodeID, minSecondsPerMeter float64) ([]graph.EdgeID, float64) {
	if s == t {
		return ws.pathBuf(), 0
	}
	st := &ws.F
	st.Begin(g.NumNodes())
	target := g.Point(t)
	h := func(v graph.NodeID) float64 {
		return geo.Haversine(g.Point(v), target) * minSecondsPerMeter
	}
	st.Update(s, 0, -1)
	st.Heap.Push(s, h(s))
	dist, parent, stamp, cur := st.dist, st.parent, st.stamp, st.cur
	for st.Heap.Len() > 0 {
		u, _ := st.Heap.Pop()
		if stamp[u] == cur+1 {
			continue // stale duplicate; already settled
		}
		if u == t {
			break
		}
		stamp[u] = cur + 1
		du := dist[u]
		adj, heads := g.OutEdges(u), g.OutHeads(u)
		for i, e := range adj {
			v := heads[i]
			nd := du + weights[e]
			if stamp[v] >= cur && nd >= dist[v] {
				continue
			}
			if math.IsInf(nd, 1) {
				continue // +Inf weights are bans; never traverse them
			}
			dist[v] = nd
			parent[v] = e
			if stamp[v] < cur {
				stamp[v] = cur
			}
			st.Heap.Push(v, nd+h(v))
		}
	}
	if !st.Touched(t) {
		return nil, math.Inf(1)
	}
	edges := ws.pathBuf()
	for cur := t; cur != s; {
		e := st.parent[cur]
		edges = append(edges, e)
		cur = g.Edge(e).From
	}
	reverse(edges)
	ws.path = edges
	return edges, st.dist[t]
}

// MinSecondsPerMeter returns the smallest weight/length ratio over all
// edges, the admissible A* potential scale for the given weights. It
// returns 0 for an edgeless graph.
func MinSecondsPerMeter(g *graph.Graph, weights []float64) float64 {
	minRatio := math.Inf(1)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.LengthM <= 0 {
			continue
		}
		if r := weights[e] / ed.LengthM; r < minRatio {
			minRatio = r
		}
	}
	if math.IsInf(minRatio, 1) {
		return 0
	}
	return minRatio
}
