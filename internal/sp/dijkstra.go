// Package sp implements the shortest-path machinery all alternative-route
// techniques are built on: Dijkstra's algorithm, full shortest-path trees
// in both directions (the substrate of the Plateaus and Dissimilarity
// techniques), bidirectional Dijkstra, and A* with a haversine potential.
//
// All searches take an explicit weight slice indexed by EdgeID so that the
// Penalty technique and the traffic simulation can run on perturbed
// weights without copying the graph.
package sp

import (
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Direction selects whether a tree grows along edges (Forward, rooted at a
// source) or against them (Backward, rooted at a target).
type Direction uint8

// Tree growth directions.
const (
	Forward Direction = iota
	Backward
)

// Tree is a complete shortest-path tree: for every node, the distance from
// (Forward) or to (Backward) the root, and the tree edge through which the
// node is reached.
type Tree struct {
	Root   graph.NodeID
	Dir    Direction
	Dist   []float64      // Dist[v] = shortest travel time root→v (or v→root)
	Parent []graph.EdgeID // Parent[v] = tree edge into v (Forward) / out of v (Backward); -1 at root and unreachable nodes
}

// Reached reports whether v is reachable from/to the root.
func (t *Tree) Reached(v graph.NodeID) bool {
	return !math.IsInf(t.Dist[v], 1)
}

// PathTo reconstructs the shortest path between the root and v as an edge
// sequence. For Forward trees the edges run root→v; for Backward trees they
// run v→root. It returns nil if v is unreachable.
func (t *Tree) PathTo(g *graph.Graph, v graph.NodeID) []graph.EdgeID {
	if !t.Reached(v) {
		return nil
	}
	if v == t.Root {
		return []graph.EdgeID{}
	}
	var edges []graph.EdgeID
	cur := v
	for cur != t.Root {
		e := t.Parent[cur]
		if e < 0 {
			return nil // defensive: broken tree
		}
		edges = append(edges, e)
		if t.Dir == Forward {
			cur = g.Edge(e).From
		} else {
			cur = g.Edge(e).To
		}
	}
	if t.Dir == Forward {
		reverse(edges)
	}
	return edges
}

func reverse(e []graph.EdgeID) {
	for i, j := 0, len(e)-1; i < j; i, j = i+1, j-1 {
		e[i], e[j] = e[j], e[i]
	}
}

// BuildTree runs a full Dijkstra from root over the whole graph and returns
// the shortest-path tree. weights must have one entry per edge; pass
// g.CopyWeights() (or a perturbed copy) to choose the metric.
func BuildTree(g *graph.Graph, weights []float64, root graph.NodeID, dir Direction) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Root:   root,
		Dir:    dir,
		Dist:   make([]float64, n),
		Parent: make([]graph.EdgeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = -1
	}
	t.Dist[root] = 0
	h := newNodeHeap(64)
	h.Push(root, 0)
	settled := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.Pop()
		if settled[u] {
			continue
		}
		settled[u] = true
		var adj []graph.EdgeID
		if dir == Forward {
			adj = g.OutEdges(u)
		} else {
			adj = g.InEdges(u)
		}
		for _, e := range adj {
			var v graph.NodeID
			if dir == Forward {
				v = g.Edge(e).To
			} else {
				v = g.Edge(e).From
			}
			if nd := du + weights[e]; nd < t.Dist[v] {
				t.Dist[v] = nd
				t.Parent[v] = e
				h.Push(v, nd)
			}
		}
	}
	return t
}

// ShortestPath runs a target-pruned Dijkstra from s and returns the
// shortest s→t path as an edge sequence plus its travel time. It returns
// (nil, +Inf) when t is unreachable from s.
func ShortestPath(g *graph.Graph, weights []float64, s, t graph.NodeID) ([]graph.EdgeID, float64) {
	if s == t {
		return []graph.EdgeID{}, 0
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[s] = 0
	h := newNodeHeap(64)
	h.Push(s, 0)
	settled := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.Pop()
		if settled[u] {
			continue
		}
		if u == t {
			break
		}
		settled[u] = true
		for _, e := range g.OutEdges(u) {
			v := g.Edge(e).To
			if nd := du + weights[e]; nd < dist[v] {
				dist[v] = nd
				parent[v] = e
				h.Push(v, nd)
			}
		}
	}
	if math.IsInf(dist[t], 1) {
		return nil, math.Inf(1)
	}
	edges := make([]graph.EdgeID, 0, 32)
	for cur := t; cur != s; {
		e := parent[cur]
		edges = append(edges, e)
		cur = g.Edge(e).From
	}
	reverse(edges)
	return edges, dist[t]
}

// BidirectionalShortestPath computes the shortest s→t path by running
// alternating forward and backward Dijkstra searches that meet in the
// middle. Returns the same result as ShortestPath but typically settles
// far fewer nodes on road networks.
func BidirectionalShortestPath(g *graph.Graph, weights []float64, s, t graph.NodeID) ([]graph.EdgeID, float64) {
	if s == t {
		return []graph.EdgeID{}, 0
	}
	n := g.NumNodes()
	distF := make([]float64, n)
	distB := make([]float64, n)
	parF := make([]graph.EdgeID, n)
	parB := make([]graph.EdgeID, n)
	for i := 0; i < n; i++ {
		distF[i] = math.Inf(1)
		distB[i] = math.Inf(1)
		parF[i] = -1
		parB[i] = -1
	}
	distF[s], distB[t] = 0, 0
	hf, hb := newNodeHeap(64), newNodeHeap(64)
	hf.Push(s, 0)
	hb.Push(t, 0)
	setF := make([]bool, n)
	setB := make([]bool, n)

	best := math.Inf(1)
	var meet graph.NodeID = graph.InvalidNode

	relaxMeeting := func(v graph.NodeID) {
		if !math.IsInf(distF[v], 1) && !math.IsInf(distB[v], 1) {
			if d := distF[v] + distB[v]; d < best {
				best = d
				meet = v
			}
		}
	}

	for hf.Len() > 0 || hb.Len() > 0 {
		// Stop when the frontiers can no longer improve the best meeting.
		topF, topB := math.Inf(1), math.Inf(1)
		if hf.Len() > 0 {
			topF = hf.prios[0]
		}
		if hb.Len() > 0 {
			topB = hb.prios[0]
		}
		if topF+topB >= best {
			break
		}
		// Expand the smaller frontier.
		if topF <= topB && hf.Len() > 0 {
			u, du := hf.Pop()
			if setF[u] {
				continue
			}
			setF[u] = true
			for _, e := range g.OutEdges(u) {
				v := g.Edge(e).To
				if nd := du + weights[e]; nd < distF[v] {
					distF[v] = nd
					parF[v] = e
					hf.Push(v, nd)
					relaxMeeting(v)
				}
			}
		} else if hb.Len() > 0 {
			u, du := hb.Pop()
			if setB[u] {
				continue
			}
			setB[u] = true
			for _, e := range g.InEdges(u) {
				v := g.Edge(e).From
				if nd := du + weights[e]; nd < distB[v] {
					distB[v] = nd
					parB[v] = e
					hb.Push(v, nd)
					relaxMeeting(v)
				}
			}
		}
	}
	if meet == graph.InvalidNode {
		return nil, math.Inf(1)
	}
	// Stitch s→meet from the forward search with meet→t from the backward one.
	var edges []graph.EdgeID
	for cur := meet; cur != s; {
		e := parF[cur]
		edges = append(edges, e)
		cur = g.Edge(e).From
	}
	reverse(edges)
	for cur := meet; cur != t; {
		e := parB[cur]
		edges = append(edges, e)
		cur = g.Edge(e).To
	}
	return edges, best
}

// AStarShortestPath computes the shortest s→t path using A* with an
// admissible haversine/TopSpeed potential. minSecondsPerMeter must be a
// lower bound on weight/length over all edges (see MinSecondsPerMeter);
// passing 0 disables the heuristic, degrading to plain Dijkstra.
func AStarShortestPath(g *graph.Graph, weights []float64, s, t graph.NodeID, minSecondsPerMeter float64) ([]graph.EdgeID, float64) {
	if s == t {
		return []graph.EdgeID{}, 0
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	target := g.Point(t)
	h := func(v graph.NodeID) float64 {
		return geo.Haversine(g.Point(v), target) * minSecondsPerMeter
	}
	dist[s] = 0
	pq := newNodeHeap(64)
	pq.Push(s, h(s))
	settled := make([]bool, n)
	for pq.Len() > 0 {
		u, _ := pq.Pop()
		if settled[u] {
			continue
		}
		if u == t {
			break
		}
		settled[u] = true
		du := dist[u]
		for _, e := range g.OutEdges(u) {
			v := g.Edge(e).To
			if nd := du + weights[e]; nd < dist[v] {
				dist[v] = nd
				parent[v] = e
				pq.Push(v, nd+h(v))
			}
		}
	}
	if math.IsInf(dist[t], 1) {
		return nil, math.Inf(1)
	}
	edges := make([]graph.EdgeID, 0, 32)
	for cur := t; cur != s; {
		e := parent[cur]
		edges = append(edges, e)
		cur = g.Edge(e).From
	}
	reverse(edges)
	return edges, dist[t]
}

// MinSecondsPerMeter returns the smallest weight/length ratio over all
// edges, the admissible A* potential scale for the given weights. It
// returns 0 for an edgeless graph.
func MinSecondsPerMeter(g *graph.Graph, weights []float64) float64 {
	minRatio := math.Inf(1)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.LengthM <= 0 {
			continue
		}
		if r := weights[e] / ed.LengthM; r < minRatio {
			minRatio = r
		}
	}
	if math.IsInf(minRatio, 1) {
		return 0
	}
	return minRatio
}
