package sp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/graph"
)

// gridGraph builds a rows×cols grid of two-way residential streets with
// ~100 m spacing, a worst case of many equal-cost paths.
func gridGraph(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, rows*cols*4)
	origin := geo.Point{Lat: -37.81, Lon: 144.96}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*100, float64(c)*100))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: graph.Residential, TwoWay: true})
			}
			if r+1 < rows {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}

// randGraph builds a random graph that may be disconnected.
func randGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	origin := geo.Point{Lat: -37.81, Lon: 144.96}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Offset(origin, rng.Float64()*5000, rng.Float64()*5000))
	}
	m := n * 3
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(graph.EdgeSpec{
			From:     u,
			To:       v,
			Class:    graph.RoadClass(rng.Intn(7)),
			SpeedKmh: 20 + rng.Float64()*80,
			TwoWay:   rng.Intn(3) > 0,
		})
	}
	return b.Build()
}

// bellmanFord is the O(V·E) reference distance computation.
func bellmanFord(g *graph.Graph, w []float64, s graph.NodeID) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	for iter := 0; iter < g.NumNodes(); iter++ {
		changed := false
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(graph.EdgeID(e))
			if nd := dist[ed.From] + w[e]; nd < dist[ed.To] {
				dist[ed.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func pathCost(w []float64, edges []graph.EdgeID) float64 {
	var c float64
	for _, e := range edges {
		c += w[e]
	}
	return c
}

// checkConnected verifies edges form a contiguous s->t walk.
func checkWalk(t *testing.T, g *graph.Graph, edges []graph.EdgeID, s, dst graph.NodeID) {
	t.Helper()
	cur := s
	for i, e := range edges {
		ed := g.Edge(e)
		if ed.From != cur {
			t.Fatalf("edge %d starts at %d, expected %d", i, ed.From, cur)
		}
		cur = ed.To
	}
	if cur != dst {
		t.Fatalf("walk ends at %d, expected %d", cur, dst)
	}
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randGraph(seed, 120)
		w := g.CopyWeights()
		s := graph.NodeID(int(seed) % g.NumNodes())
		want := bellmanFord(g, w, s)
		tree := BuildTree(g, w, s, Forward)
		for v := 0; v < g.NumNodes(); v++ {
			if math.Abs(tree.Dist[v]-want[v]) > 1e-6 &&
				!(math.IsInf(tree.Dist[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("seed %d: dist[%d] = %f, bellman-ford %f", seed, v, tree.Dist[v], want[v])
			}
		}
	}
}

func TestBackwardTreeEqualsForwardOnReverse(t *testing.T) {
	g := randGraph(3, 100)
	w := g.CopyWeights()
	root := graph.NodeID(17)
	back := BuildTree(g, w, root, Backward)
	// Backward dist[v] must equal forward shortest path v->root.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		_, d := ShortestPath(g, w, v, root)
		if math.Abs(back.Dist[v]-d) > 1e-6 && !(math.IsInf(back.Dist[v], 1) && math.IsInf(d, 1)) {
			t.Fatalf("backward dist[%d] = %f, want forward %f", v, back.Dist[v], d)
		}
	}
}

func TestTreePathReconstruction(t *testing.T) {
	g := gridGraph(8, 8)
	w := g.CopyWeights()
	s := graph.NodeID(0)
	dst := graph.NodeID(g.NumNodes() - 1)
	tree := BuildTree(g, w, s, Forward)
	edges := tree.PathTo(g, dst)
	if edges == nil {
		t.Fatal("grid should be connected")
	}
	checkWalk(t, g, edges, s, dst)
	if c := pathCost(w, edges); math.Abs(c-tree.Dist[dst]) > 1e-6 {
		t.Errorf("path cost %f != tree dist %f", c, tree.Dist[dst])
	}
	// Path to the root itself is empty, not nil.
	if p := tree.PathTo(g, s); p == nil || len(p) != 0 {
		t.Errorf("path to root should be empty, got %v", p)
	}
}

func TestBackwardTreePathReconstruction(t *testing.T) {
	g := gridGraph(6, 6)
	w := g.CopyWeights()
	root := graph.NodeID(g.NumNodes() - 1)
	tree := BuildTree(g, w, root, Backward)
	src := graph.NodeID(0)
	edges := tree.PathTo(g, src)
	if edges == nil {
		t.Fatal("grid should be connected")
	}
	// Backward tree paths run src -> root.
	checkWalk(t, g, edges, src, root)
	if c := pathCost(w, edges); math.Abs(c-tree.Dist[src]) > 1e-6 {
		t.Errorf("path cost %f != tree dist %f", c, tree.Dist[src])
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := gridGraph(3, 3)
	w := g.CopyWeights()
	p, d := ShortestPath(g, w, 4, 4)
	if d != 0 || p == nil || len(p) != 0 {
		t.Errorf("s==t should give empty path at cost 0, got %v at %f", p, d)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	// Two disconnected components.
	b := graph.NewBuilder(4, 2)
	o := geo.Point{Lat: 0, Lon: 0}
	n0 := b.AddNode(o)
	n1 := b.AddNode(geo.Offset(o, 100, 0))
	n2 := b.AddNode(geo.Offset(o, 0, 5000))
	n3 := b.AddNode(geo.Offset(o, 100, 5000))
	b.AddEdge(graph.EdgeSpec{From: n0, To: n1, Class: graph.Residential, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: n2, To: n3, Class: graph.Residential, TwoWay: true})
	g := b.Build()
	w := g.CopyWeights()
	p, d := ShortestPath(g, w, n0, n3)
	if p != nil || !math.IsInf(d, 1) {
		t.Errorf("unreachable target should give (nil, +Inf), got %v at %f", p, d)
	}
	p, d = BidirectionalShortestPath(g, w, n0, n3)
	if p != nil || !math.IsInf(d, 1) {
		t.Errorf("bidirectional: unreachable should give (nil, +Inf), got %v at %f", p, d)
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randGraph(100+seed, 150)
		w := g.CopyWeights()
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 30; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			_, want := ShortestPath(g, w, s, dst)
			got, gotD := BidirectionalShortestPath(g, w, s, dst)
			if math.IsInf(want, 1) {
				if !math.IsInf(gotD, 1) {
					t.Fatalf("seed %d q %d: bidi found %f, dijkstra says unreachable", seed, q, gotD)
				}
				continue
			}
			if math.Abs(gotD-want) > 1e-6 {
				t.Fatalf("seed %d q %d (%d->%d): bidi %f, dijkstra %f", seed, q, s, dst, gotD, want)
			}
			checkWalk(t, g, got, s, dst)
			if c := pathCost(w, got); math.Abs(c-gotD) > 1e-6 {
				t.Fatalf("bidi path cost %f != reported %f", c, gotD)
			}
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randGraph(200+seed, 150)
		w := g.CopyWeights()
		scale := MinSecondsPerMeter(g, w)
		if scale <= 0 {
			t.Fatalf("seed %d: expected positive heuristic scale", seed)
		}
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 20; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			_, want := ShortestPath(g, w, s, dst)
			got, gotD := AStarShortestPath(g, w, s, dst, scale)
			if math.IsInf(want, 1) != math.IsInf(gotD, 1) {
				t.Fatalf("seed %d q %d: reachability mismatch", seed, q)
			}
			if !math.IsInf(want, 1) {
				if math.Abs(gotD-want) > 1e-6 {
					t.Fatalf("seed %d q %d: A* %f, dijkstra %f", seed, q, gotD, want)
				}
				checkWalk(t, g, got, s, dst)
			}
		}
	}
}

func TestAStarZeroHeuristicIsDijkstra(t *testing.T) {
	g := gridGraph(5, 5)
	w := g.CopyWeights()
	_, want := ShortestPath(g, w, 0, 24)
	_, got := AStarShortestPath(g, w, 0, 24, 0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("A* with zero potential = %f, dijkstra = %f", got, want)
	}
}

func TestPerturbedWeightsChangeRoutes(t *testing.T) {
	g := gridGraph(5, 5)
	w := g.CopyWeights()
	base, baseD := ShortestPath(g, w, 0, 24)
	// Penalize every edge of the base path heavily: the new path must avoid
	// at least one of them (the grid offers alternatives).
	w2 := g.CopyWeights()
	for _, e := range base {
		w2[e] *= 10
	}
	alt, altD := ShortestPath(g, w2, 0, 24)
	if altD >= baseD*10 {
		t.Errorf("penalized route should dodge penalties: alt %f vs base %f", altD, baseD)
	}
	same := len(alt) == len(base)
	if same {
		for i := range alt {
			if alt[i] != base[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("route should change when its edges are penalized on a grid")
	}
}

func TestTreeDistMonotoneAlongPath(t *testing.T) {
	g := gridGraph(7, 7)
	w := g.CopyWeights()
	tree := BuildTree(g, w, 0, Forward)
	edges := tree.PathTo(g, graph.NodeID(g.NumNodes()-1))
	var acc float64
	cur := graph.NodeID(0)
	for _, e := range edges {
		acc += w[e]
		cur = g.Edge(e).To
		if math.Abs(tree.Dist[cur]-acc) > 1e-6 {
			t.Fatalf("prefix cost %f != tree dist %f at node %d", acc, tree.Dist[cur], cur)
		}
	}
}

func TestMinSecondsPerMeter(t *testing.T) {
	g := gridGraph(3, 3)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if w[e] < scale*ed.LengthM-1e-9 {
			t.Fatalf("edge %d violates lower bound: %f < %f", e, w[e], scale*ed.LengthM)
		}
	}
	empty := graph.NewBuilder(1, 0)
	empty.AddNode(geo.Point{})
	if got := MinSecondsPerMeter(empty.Build(), nil); got != 0 {
		t.Errorf("edgeless graph scale = %f, want 0", got)
	}
}

func TestHeapProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		h := newNodeHeap(len(vals))
		clean := make([]float64, 0, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Push(graph.NodeID(i), v)
			clean = append(clean, v)
		}
		sort.Float64s(clean)
		for _, want := range clean {
			_, got := h.Pop()
			if got != want {
				return false
			}
		}
		return h.Len() == 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapReset(t *testing.T) {
	h := newNodeHeap(4)
	h.Push(1, 5)
	h.Push(2, 3)
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("after Reset Len = %d, want 0", h.Len())
	}
	h.Push(3, 1)
	v, p := h.Pop()
	if v != 3 || p != 1 {
		t.Errorf("heap reuse after Reset broken: got (%d, %f)", v, p)
	}
}

func BenchmarkBuildTreeGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTree(g, w, 0, Forward)
	}
}

func BenchmarkShortestPathGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	dst := graph.NodeID(g.NumNodes() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPath(g, w, 0, dst)
	}
}

func BenchmarkBidirectionalGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	dst := graph.NodeID(g.NumNodes() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BidirectionalShortestPath(g, w, 0, dst)
	}
}

func BenchmarkAStarGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	dst := graph.NodeID(g.NumNodes() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AStarShortestPath(g, w, 0, dst, scale)
	}
}
