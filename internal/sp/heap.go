package sp

import "repro/internal/graph"

// nodeHeap is a binary min-heap of (node, priority) pairs with lazy
// duplicates: decrease-key is implemented by pushing again and skipping
// already-settled nodes on pop. This is the standard approach for Dijkstra
// on sparse road networks and avoids the bookkeeping of an indexed heap.
type nodeHeap struct {
	nodes []graph.NodeID
	prios []float64
}

func newNodeHeap(capHint int) *nodeHeap {
	return &nodeHeap{
		nodes: make([]graph.NodeID, 0, capHint),
		prios: make([]float64, 0, capHint),
	}
}

func (h *nodeHeap) Len() int { return len(h.nodes) }

func (h *nodeHeap) Push(v graph.NodeID, prio float64) {
	h.nodes = append(h.nodes, v)
	h.prios = append(h.prios, prio)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prios[parent] <= h.prios[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) Pop() (graph.NodeID, float64) {
	v, p := h.nodes[0], h.prios[0]
	last := len(h.nodes) - 1
	h.nodes[0], h.prios[0] = h.nodes[last], h.prios[last]
	h.nodes = h.nodes[:last]
	h.prios = h.prios[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.prios[l] < h.prios[smallest] {
			smallest = l
		}
		if r < last && h.prios[r] < h.prios[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return v, p
}

func (h *nodeHeap) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.prios[i], h.prios[j] = h.prios[j], h.prios[i]
}

func (h *nodeHeap) Reset() {
	h.nodes = h.nodes[:0]
	h.prios = h.prios[:0]
}
