package sp

import "repro/internal/graph"

// Heap is a 4-ary min-heap of (node, priority) pairs with lazy duplicates:
// decrease-key is implemented by pushing again and skipping already-settled
// nodes on pop. This is the standard approach for Dijkstra on sparse road
// networks and avoids the bookkeeping of an indexed heap. The 4-ary layout
// halves the tree depth of a binary heap and keeps sift-down children in
// one cache line, which measurably helps the pop-heavy Dijkstra workload.
//
// Heap is exported so other packages (contraction hierarchies, planners)
// can run their searches on the same machinery instead of boxing items
// through container/heap's interface{} API. The zero value is ready to use.
type Heap struct {
	nodes []graph.NodeID
	prios []float64
}

// Len returns the number of queued entries, counting lazy duplicates.
func (h *Heap) Len() int { return len(h.nodes) }

// MinPrio returns the smallest queued priority. It must not be called on
// an empty heap.
func (h *Heap) MinPrio() float64 { return h.prios[0] }

// Push queues v at the given priority. The sift-up moves a hole toward the
// root rather than swapping, halving the writes per level.
func (h *Heap) Push(v graph.NodeID, prio float64) {
	h.nodes = append(h.nodes, v)
	h.prios = append(h.prios, prio)
	nodes, prios := h.nodes, h.prios
	i := len(nodes) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if prios[parent] <= prio {
			break
		}
		nodes[i], prios[i] = nodes[parent], prios[parent]
		i = parent
	}
	nodes[i], prios[i] = v, prio
}

// Pop removes and returns the minimum-priority entry. The sift-down moves
// a hole toward the leaves, placing the displaced last element once at the
// end instead of swapping at every level.
func (h *Heap) Pop() (graph.NodeID, float64) {
	nodes, prios := h.nodes, h.prios
	v, p := nodes[0], prios[0]
	last := len(nodes) - 1
	h.nodes = nodes[:last]
	h.prios = prios[:last]
	if last == 0 {
		return v, p
	}
	vn, vp := nodes[last], prios[last]
	nodes, prios = nodes[:last], prios[:last]
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		mc, mp := first, prios[first]
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if prios[c] < mp {
				mc, mp = c, prios[c]
			}
		}
		if mp >= vp {
			break
		}
		nodes[i], prios[i] = nodes[mc], mp
		i = mc
	}
	nodes[i], prios[i] = vn, vp
	return v, p
}

// Reset empties the heap, keeping its backing storage for reuse.
func (h *Heap) Reset() {
	h.nodes = h.nodes[:0]
	h.prios = h.prios[:0]
}
