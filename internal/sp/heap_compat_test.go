package sp

import "repro/internal/graph"

// newNodeHeap is the test-suite constructor kept from before the heap was
// exported; the zero-value Heap is ready to use, this just pre-sizes it.
func newNodeHeap(capHint int) *Heap {
	return &Heap{
		nodes: make([]graph.NodeID, 0, capHint),
		prios: make([]float64, 0, capHint),
	}
}
