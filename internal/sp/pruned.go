package sp

import (
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// BuildPrunedTree builds a partial shortest-path tree for a known s-t
// query, exploring only the "ellipse" of nodes that can lie on a path
// within maxCost: a node v enters the tree only if dist(root, v) plus an
// admissible lower bound on the remaining distance to the other endpoint
// stays within maxCost.
//
// This is the optimisation §II-B of the paper describes for Choice
// Routing: "the trees will explore roughly elliptical areas with A and B
// as the foci of the ellipse. These trees must still cover all feasible
// routes... and so when they are combined, they still yield the same
// choice routes." Within the maxCost budget the pruned tree's distances
// equal the full tree's, so plateaus for routes under the alternative-
// route upper bound are preserved exactly.
//
// other is the query's other endpoint (t for a Forward tree rooted at s);
// minSecondsPerMeter scales the geometric lower bound and must satisfy
// weight(e) ≥ minSecondsPerMeter × length(e) for every edge (see
// MinSecondsPerMeter). The geometric bound itself is geo.LowerBounder —
// an admissible planar understatement of the haversine distance that
// costs one square root per relaxation instead of a trigonometric
// evaluation, which is what keeps the pruned build cheaper than the full
// one in wall time and not just in nodes explored. Unreached nodes keep
// Dist = +Inf.
func BuildPrunedTree(g *graph.Graph, weights []float64, root graph.NodeID, dir Direction, other graph.NodeID, maxCost, minSecondsPerMeter float64) *Tree {
	ws := GetWorkspace()
	defer ws.Release()
	return BuildPrunedTreeInto(ws, g, weights, root, dir, other, maxCost, minSecondsPerMeter).Clone()
}

// BuildPrunedTreeInto is BuildPrunedTree on workspace memory: the returned
// Tree aliases ws and is valid until the next search using the same slot.
func BuildPrunedTreeInto(ws *Workspace, g *graph.Graph, weights []float64, root graph.NodeID, dir Direction, other graph.NodeID, maxCost, minSecondsPerMeter float64) *Tree {
	n := g.NumNodes()
	t, s := ws.treeSlot(dir)
	s.Begin(n)
	otherPt := g.Point(other)
	lb := geo.NewLowerBounder(g.BBox())
	bound := func(v graph.NodeID) float64 {
		return lb.MetersLB(g.Point(v), otherPt) * minSecondsPerMeter
	}
	s.Update(root, 0, -1)
	s.Heap.Push(root, 0)
	dist, parent, stamp, cur := s.dist, s.parent, s.stamp, s.cur
	for s.Heap.Len() > 0 {
		u, du := s.Heap.Pop()
		if stamp[u] == cur+1 {
			continue // stale duplicate; already settled
		}
		if du > maxCost {
			break
		}
		stamp[u] = cur + 1
		var adj []graph.EdgeID
		var ends []graph.NodeID
		if dir == Forward {
			adj, ends = g.OutEdges(u), g.OutHeads(u)
		} else {
			adj, ends = g.InEdges(u), g.InTails(u)
		}
		for i, e := range adj {
			v := ends[i]
			nd := du + weights[e]
			if nd+bound(v) > maxCost {
				continue // outside the ellipse
			}
			if stamp[v] >= cur && nd >= dist[v] {
				continue
			}
			if math.IsInf(nd, 1) {
				continue // +Inf weights are bans; never traverse them
			}
			dist[v] = nd
			parent[v] = e
			if stamp[v] < cur {
				stamp[v] = cur
			}
			s.Heap.Push(v, nd)
		}
	}
	t.Root, t.Dir = root, dir
	t.Dist, t.Parent = s.Finalize(n)
	return t
}

// CountReached returns how many nodes a tree reaches — a measure of how
// much work the ellipse pruning saved.
func CountReached(t *Tree) int {
	n := 0
	for v := range t.Dist {
		if !math.IsInf(t.Dist[v], 1) {
			n++
		}
	}
	return n
}
