package sp

import (
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// BuildPrunedTree builds a partial shortest-path tree for a known s-t
// query, exploring only the "ellipse" of nodes that can lie on a path
// within maxCost: a node v enters the tree only if dist(root, v) plus an
// admissible lower bound on the remaining distance to the other endpoint
// stays within maxCost.
//
// This is the optimisation §II-B of the paper describes for Choice
// Routing: "the trees will explore roughly elliptical areas with A and B
// as the foci of the ellipse. These trees must still cover all feasible
// routes... and so when they are combined, they still yield the same
// choice routes." Within the maxCost budget the pruned tree's distances
// equal the full tree's, so plateaus for routes under the alternative-
// route upper bound are preserved exactly.
//
// other is the query's other endpoint (t for a Forward tree rooted at s);
// minSecondsPerMeter scales the haversine lower bound and must satisfy
// weight(e) ≥ minSecondsPerMeter × length(e) for every edge (see
// MinSecondsPerMeter). Unreached nodes keep Dist = +Inf.
func BuildPrunedTree(g *graph.Graph, weights []float64, root graph.NodeID, dir Direction, other graph.NodeID, maxCost, minSecondsPerMeter float64) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Root:   root,
		Dir:    dir,
		Dist:   make([]float64, n),
		Parent: make([]graph.EdgeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = -1
	}
	otherPt := g.Point(other)
	bound := func(v graph.NodeID) float64 {
		return geo.Haversine(g.Point(v), otherPt) * minSecondsPerMeter
	}
	t.Dist[root] = 0
	h := newNodeHeap(64)
	h.Push(root, 0)
	settled := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.Pop()
		if settled[u] {
			continue
		}
		if du > maxCost {
			break
		}
		settled[u] = true
		var adj []graph.EdgeID
		if dir == Forward {
			adj = g.OutEdges(u)
		} else {
			adj = g.InEdges(u)
		}
		for _, e := range adj {
			var v graph.NodeID
			if dir == Forward {
				v = g.Edge(e).To
			} else {
				v = g.Edge(e).From
			}
			nd := du + weights[e]
			if nd+bound(v) > maxCost {
				continue // outside the ellipse
			}
			if nd < t.Dist[v] {
				t.Dist[v] = nd
				t.Parent[v] = e
				h.Push(v, nd)
			}
		}
	}
	return t
}

// CountReached returns how many nodes a tree reaches — a measure of how
// much work the ellipse pruning saved.
func CountReached(t *Tree) int {
	n := 0
	for v := range t.Dist {
		if !math.IsInf(t.Dist[v], 1) {
			n++
		}
	}
	return n
}
