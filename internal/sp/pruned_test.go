package sp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestPrunedTreeMatchesFullWithinBudget(t *testing.T) {
	g := gridGraph(15, 15)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 15; q++ {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == dst {
			continue
		}
		_, fastest := ShortestPath(g, w, s, dst)
		if math.IsInf(fastest, 1) {
			continue
		}
		maxCost := 1.4 * fastest
		full := BuildTree(g, w, s, Forward)
		pruned := BuildPrunedTree(g, w, s, Forward, dst, maxCost, scale)
		// Every node whose true distance plus remaining lower bound fits
		// the budget must have the exact same distance in the pruned tree.
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if math.IsInf(full.Dist[v], 1) {
				continue
			}
			if full.Dist[v] > maxCost {
				continue // outside the budget: may legitimately be missing
			}
			// The ellipse criterion can prune nodes whose onward bound
			// overshoots; only nodes with dist + bound <= maxCost are
			// guaranteed.
			if pruned.Reached(v) && math.Abs(pruned.Dist[v]-full.Dist[v]) > 1e-6 {
				t.Fatalf("query %d node %d: pruned dist %f != full %f", q, v, pruned.Dist[v], full.Dist[v])
			}
		}
		if !pruned.Reached(dst) {
			t.Fatalf("query %d: pruned tree must reach the target", q)
		}
		if math.Abs(pruned.Dist[dst]-fastest) > 1e-6 {
			t.Fatalf("query %d: pruned target dist %f != fastest %f", q, pruned.Dist[dst], fastest)
		}
	}
}

func TestPrunedTreeExploresLess(t *testing.T) {
	g := gridGraph(25, 25)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	// Close-by query in one corner: the ellipse should exclude most of the grid.
	s, dst := graph.NodeID(0), graph.NodeID(3*25+3)
	_, fastest := ShortestPath(g, w, s, dst)
	pruned := BuildPrunedTree(g, w, s, Forward, dst, 1.4*fastest, scale)
	full := BuildTree(g, w, s, Forward)
	if got, all := CountReached(pruned), CountReached(full); got >= all/2 {
		t.Errorf("pruned tree reached %d of %d nodes; expected much less for a corner query", got, all)
	}
}

func TestPrunedTreeBackward(t *testing.T) {
	g := gridGraph(10, 10)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	s, dst := graph.NodeID(5), graph.NodeID(87)
	_, fastest := ShortestPath(g, w, s, dst)
	bwd := BuildPrunedTree(g, w, dst, Backward, s, 1.4*fastest, scale)
	if !bwd.Reached(s) {
		t.Fatal("backward pruned tree must reach the source")
	}
	if math.Abs(bwd.Dist[s]-fastest) > 1e-6 {
		t.Errorf("backward dist %f != fastest %f", bwd.Dist[s], fastest)
	}
}

func TestCountReached(t *testing.T) {
	g := gridGraph(5, 5)
	w := g.CopyWeights()
	full := BuildTree(g, w, 0, Forward)
	if got := CountReached(full); got != g.NumNodes() {
		t.Errorf("full tree reached %d, want %d", got, g.NumNodes())
	}
}
