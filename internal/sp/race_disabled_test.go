//go:build !race

package sp

const raceEnabled = false
