package sp

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// SearchState is the per-direction scratch state of one Dijkstra-style
// search: tentative distances, parent pointers and a priority queue. The
// arrays are never re-initialized between searches; instead every slot
// carries a generation stamp and Begin bumps the current generation, so
// clearing a search costs O(1) rather than an O(n) +Inf fill. A slot is
// meaningful only when its stamp belongs to the current generation:
//
//	stamp[v] <  cur   — v untouched this search (dist reads as +Inf)
//	stamp[v] == cur   — v reached (dist/parent valid)
//	stamp[v] == cur+1 — v settled (dist final)
//
// SearchState is exported so packages running their own search loops over
// different arc structures (contraction hierarchies) can reuse the exact
// same machinery; parent pointers are graph.EdgeID-typed but hold whatever
// arc identifier the search stores.
type SearchState struct {
	Heap   Heap
	dist   []float64
	parent []graph.EdgeID
	stamp  []uint32
	cur    uint32
}

// Begin readies the state for a new search over n nodes, invalidating all
// previous distances in O(1) (amortized: the stamp array is re-zeroed only
// on uint32 wraparound, once per ~2 billion searches).
func (s *SearchState) Begin(n int) {
	if len(s.stamp) < n {
		s.dist = append(s.dist, make([]float64, n-len(s.dist))...)
		s.parent = append(s.parent, make([]graph.EdgeID, n-len(s.parent))...)
		s.stamp = append(s.stamp, make([]uint32, n-len(s.stamp))...)
	}
	if s.cur >= math.MaxUint32-2 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 0
	}
	s.cur += 2
	s.Heap.Reset()
}

// DistOf returns v's tentative distance, +Inf if untouched this search.
func (s *SearchState) DistOf(v graph.NodeID) float64 {
	if s.stamp[v] >= s.cur {
		return s.dist[v]
	}
	return math.Inf(1)
}

// Touched reports whether v has been reached this search.
func (s *SearchState) Touched(v graph.NodeID) bool { return s.stamp[v] >= s.cur }

// Label returns v's distance and whether v has been reached this search,
// in a single stamp read — heap-free walk loops ask both questions for
// every path node, and the fused form halves their stamp traffic.
func (s *SearchState) Label(v graph.NodeID) (float64, bool) {
	if s.stamp[v] >= s.cur {
		return s.dist[v], true
	}
	return math.Inf(1), false
}

// Improve relaxes v to distance d via parent iff d beats v's current
// label. It fuses the Touched/DistOf/Update triple of heap-free relax
// loops into one stamp read. improved reports that d was written (so d is
// now v's label — meet-candidate peeks are valid against it); fresh that
// v was reached for the first time this search (callers count fresh
// labels to track their live frontier).
func (s *SearchState) Improve(v graph.NodeID, d float64, parent graph.EdgeID) (improved, fresh bool) {
	if s.stamp[v] >= s.cur {
		if d < s.dist[v] {
			s.dist[v] = d
			s.parent[v] = parent
			return true, false
		}
		return false, false
	}
	s.stamp[v] = s.cur
	s.dist[v] = d
	s.parent[v] = parent
	return true, true
}

// Settled reports whether v's distance is final this search.
func (s *SearchState) Settled(v graph.NodeID) bool { return s.stamp[v] == s.cur+1 }

// Settle marks v's distance as final.
func (s *SearchState) Settle(v graph.NodeID) { s.stamp[v] = s.cur + 1 }

// Update records a relaxation: v is reached at distance d via parent.
func (s *SearchState) Update(v graph.NodeID, d float64, parent graph.EdgeID) {
	s.dist[v] = d
	s.parent[v] = parent
	if s.stamp[v] < s.cur {
		s.stamp[v] = s.cur
	}
}

// ParentOf returns the parent recorded by the last Update of v. It is only
// meaningful while Touched(v) holds.
func (s *SearchState) ParentOf(v graph.NodeID) graph.EdgeID { return s.parent[v] }

// Finalize materializes the search result over the first n slots so the
// dist/parent arrays can be read directly (by Tree consumers) without
// stamp checks: untouched slots become +Inf / -1. The arrays then hold
// exactly the bytes a fresh full-initialization search would produce. It
// is exported for external tree builders (ch.TreeBuilder) that run their
// own search loops on the state and then post-process the dense arrays.
func (s *SearchState) Finalize(n int) ([]float64, []graph.EdgeID) {
	dist, parent, stamp := s.dist[:n], s.parent[:n], s.stamp[:n]
	inf := math.Inf(1)
	for v := range stamp {
		if stamp[v] < s.cur {
			dist[v] = inf
			parent[v] = -1
		}
	}
	return dist, parent
}

// DenseArrays starts a fresh generation and returns the state's backing
// dist/parent arrays sized for n nodes, for external tree builders
// (ch.TreeBuilder) that overwrite every slot rather than search
// incrementally. The caller must fill all n entries; the stamp protocol
// is bypassed, which is safe because Tree consumers read the returned
// slices directly.
func (s *SearchState) DenseArrays(n int) ([]float64, []graph.EdgeID) {
	s.Begin(n)
	return s.dist[:n], s.parent[:n]
}

// AscentScratch is the pending-frontier bookkeeping of a heap-free
// elimination-tree walk (package ch): a bitmap over tree depths marking
// which root-path nodes hold an unprocessed label, plus the lazily-filled
// map from depth to the node holding it. A root path has exactly one node
// per depth, so a depth identifies a pending node, and the highest set
// bit is always the next node to settle — the walk jumps from label to
// label instead of chasing parent pointers through unlabeled ancestors.
type AscentScratch struct {
	bits  []uint64
	chain []graph.NodeID
}

// Begin readies the scratch for a walk over depths [0, height]. Stale
// bits above height survive in higher words but are never scanned — the
// walk starts at height and descends.
func (a *AscentScratch) Begin(height int) {
	words := height>>6 + 1
	if len(a.bits) < words {
		a.bits = append(a.bits, make([]uint64, words-len(a.bits))...)
		a.chain = append(a.chain, make([]graph.NodeID, words*64-len(a.chain))...)
	}
	clear(a.bits[:words])
}

// Mark records a pending label on node v at its root-path depth. Marking
// an already-pending depth is a no-op (v is already the node there: one
// node per depth per root path).
func (a *AscentScratch) Mark(depth int, v graph.NodeID) {
	a.bits[depth>>6] |= 1 << uint(depth&63)
	a.chain[depth] = v
}

// Take consumes the pending label at depth, returning its node, or
// (0, false) when the depth holds none.
func (a *AscentScratch) Take(depth int) (graph.NodeID, bool) {
	w, m := depth>>6, uint64(1)<<uint(depth&63)
	if a.bits[w]&m == 0 {
		return 0, false
	}
	a.bits[w] &^= m
	return a.chain[depth], true
}

// Raw exposes the scratch's backing arrays — pending bitmap and
// depth-to-node chain — so fused walk loops can keep the slice headers in
// registers instead of re-loading them through the scratch on every mark.
// Valid after Begin, until the next Begin.
func (a *AscentScratch) Raw() (bitmap []uint64, chain []graph.NodeID) {
	return a.bits, a.chain
}

// NextPending returns the highest depth ≤ from at which either scratch
// holds a pending label, or -1 when both frontiers are exhausted. Callers
// walking one frontier pass the same scratch twice.
func NextPending(x, y *AscentScratch, from int) int {
	if from < 0 {
		return -1
	}
	w := from >> 6
	mask := uint64(2)<<uint(from&63) - 1 // low bits 0..from&63; from&63==63 wraps to all-ones
	for {
		if bs := (x.bits[w] | y.bits[w]) & mask; bs != 0 {
			return w<<6 + bits.Len64(bs) - 1
		}
		if w == 0 {
			return -1
		}
		w--
		mask = ^uint64(0)
	}
}

// Workspace bundles the reusable scratch memory of the search functions in
// this package: a forward and a backward SearchState plus tree headers and
// a path buffer. The ...Into search variants write their results into the
// workspace and return views of it, so a warmed-up workspace answers
// queries without allocating.
//
// Ownership rules: results returned by an ...Into call (Trees, edge
// slices) alias workspace memory and stay valid until the next search that
// uses the same slot — forward/unidirectional searches use one slot,
// Backward tree builds the other, bidirectional searches both. Callers
// that retain results across searches must copy them first.
//
// A Workspace is not safe for concurrent use; use one per goroutine,
// typically via GetWorkspace/Release which pool warm workspaces.
type Workspace struct {
	// F and B are the forward (or unidirectional) and backward search
	// states. They are exported for packages that drive their own search
	// loops on the shared machinery.
	F, B SearchState

	// FA and BA are the forward and backward pending frontiers of
	// heap-free elimination-tree walks (package ch), paired with F and B.
	FA, BA AscentScratch

	treeF, treeB Tree
	path         []graph.EdgeID
}

// NewWorkspace returns an empty workspace. Its arrays grow to fit the
// graphs it is used on.
func NewWorkspace() *Workspace { return &Workspace{} }

var workspacePool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace hands out a pooled workspace, warm if one is available.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// Release returns ws to the pool. The caller must not use ws, nor any
// Tree or edge slice obtained from its ...Into calls, afterwards.
func (ws *Workspace) Release() { workspacePool.Put(ws) }

// pathBuf returns the workspace's reusable edge buffer, emptied.
func (ws *Workspace) pathBuf() []graph.EdgeID {
	if ws.path == nil {
		ws.path = make([]graph.EdgeID, 0, 64)
	}
	return ws.path[:0]
}

// PathBuf hands out the workspace's reusable edge buffer, emptied. It is
// the scratch space behind Tree.PathInto-style route assembly: callers
// append into it and return the grown storage via KeepPathBuf so the next
// use starts with the accumulated capacity. The buffer is shared with the
// ...Into path searches, so it is free only between searches.
func (ws *Workspace) PathBuf() []graph.EdgeID { return ws.pathBuf() }

// KeepPathBuf stows buf (typically a grown PathBuf) back into the
// workspace for reuse.
func (ws *Workspace) KeepPathBuf(buf []graph.EdgeID) { ws.path = buf }

// treeSlot returns the reusable Tree header and SearchState for a build
// direction: Forward trees live in the F slot, Backward trees in B.
func (ws *Workspace) treeSlot(dir Direction) (*Tree, *SearchState) {
	if dir == Forward {
		return &ws.treeF, &ws.F
	}
	return &ws.treeB, &ws.B
}

// TreeSlot exposes treeSlot for external tree builders (ch.TreeBuilder)
// whose results should be drop-in workspace trees: drive the SearchState,
// fill the header, and the same aliasing rules as BuildTreeInto apply.
func (ws *Workspace) TreeSlot(dir Direction) (*Tree, *SearchState) { return ws.treeSlot(dir) }
