package sp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// treesEqual fails the test unless the two trees are byte-identical.
func treesEqual(t *testing.T, want, got *Tree, label string) {
	t.Helper()
	if want.Root != got.Root || want.Dir != got.Dir {
		t.Fatalf("%s: header mismatch: (%d,%d) vs (%d,%d)", label, want.Root, want.Dir, got.Root, got.Dir)
	}
	if len(want.Dist) != len(got.Dist) || len(want.Parent) != len(got.Parent) {
		t.Fatalf("%s: length mismatch", label)
	}
	for v := range want.Dist {
		wd, gd := want.Dist[v], got.Dist[v]
		if wd != gd && !(math.IsInf(wd, 1) && math.IsInf(gd, 1)) {
			t.Fatalf("%s: Dist[%d] = %v, want %v", label, v, gd, wd)
		}
		if want.Parent[v] != got.Parent[v] {
			t.Fatalf("%s: Parent[%d] = %d, want %d", label, v, got.Parent[v], want.Parent[v])
		}
	}
}

func edgesEqual(t *testing.T, want, got []graph.EdgeID, label string) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: nil-ness mismatch: want %v, got %v", label, want, got)
	}
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: edge %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestWorkspaceReuseMatchesFresh runs many repeated and interleaved
// searches on ONE workspace and requires every result to byte-match a
// fresh-allocation run — the core guarantee of the epoch-stamp reset.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	g := gridGraph(18, 18)
	w := g.CopyWeights()
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(7))
	n := g.NumNodes()
	for q := 0; q < 80; q++ {
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))

		// Interleave all search kinds on the same workspace so stale state
		// from any of them would poison the others.
		switch q % 4 {
		case 0:
			fresh := BuildTree(g, w, s, Forward)
			reused := BuildTreeInto(ws, g, w, s, Forward)
			treesEqual(t, fresh, reused, "forward tree")
		case 1:
			fresh := BuildTree(g, w, s, Backward)
			reused := BuildTreeInto(ws, g, w, s, Backward)
			treesEqual(t, fresh, reused, "backward tree")
		case 2:
			fe, fd := ShortestPath(g, w, s, d)
			re, rd := ShortestPathInto(ws, g, w, s, d)
			if fd != rd && !(math.IsInf(fd, 1) && math.IsInf(rd, 1)) {
				t.Fatalf("query %d: dist %v, want %v", q, rd, fd)
			}
			edgesEqual(t, fe, re, "shortest path")
		case 3:
			fe, fd := BidirectionalShortestPathInto(NewWorkspace(), g, w, s, d)
			re, rd := BidirectionalShortestPathInto(ws, g, w, s, d)
			if fd != rd && !(math.IsInf(fd, 1) && math.IsInf(rd, 1)) {
				t.Fatalf("query %d: bidi dist %v, want %v", q, rd, fd)
			}
			edgesEqual(t, fe, re, "bidirectional path")
		}
	}
}

// TestWorkspaceReuseDisconnected exercises reuse where large parts of the
// graph stay untouched between searches, the case the lazy reset could get
// wrong by leaking a previous query's distances.
func TestWorkspaceReuseDisconnected(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randGraph(seed, 120)
		w := g.CopyWeights()
		ws := NewWorkspace()
		rng := rand.New(rand.NewSource(seed + 99))
		for q := 0; q < 40; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			fresh := BuildTree(g, w, s, Forward)
			reused := BuildTreeInto(ws, g, w, s, Forward)
			treesEqual(t, fresh, reused, "disconnected tree")
		}
	}
}

// TestWorkspaceAStarAndPruned covers the two heuristic searches on a
// reused workspace.
func TestWorkspaceAStarAndPruned(t *testing.T) {
	g := gridGraph(15, 15)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(11))
	n := g.NumNodes()
	for q := 0; q < 40; q++ {
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d {
			continue
		}
		fe, fd := AStarShortestPath(g, w, s, d, scale)
		re, rd := AStarShortestPathInto(ws, g, w, s, d, scale)
		if fd != rd {
			t.Fatalf("A* dist %v, want %v", rd, fd)
		}
		edgesEqual(t, fe, re, "A* path")

		_, sp := ShortestPath(g, w, s, d)
		maxCost := 1.4 * sp
		fresh := BuildPrunedTree(g, w, s, Forward, d, maxCost, scale)
		reused := BuildPrunedTreeInto(ws, g, w, s, Forward, d, maxCost, scale)
		treesEqual(t, fresh, reused, "pruned tree")
	}
}

// TestWorkspaceTreeSlots verifies a forward and a backward tree built on
// one workspace coexist (they live in separate slots).
func TestWorkspaceTreeSlots(t *testing.T) {
	g := gridGraph(12, 12)
	w := g.CopyWeights()
	ws := NewWorkspace()
	s, d := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	fwd := BuildTreeInto(ws, g, w, s, Forward)
	bwd := BuildTreeInto(ws, g, w, d, Backward)
	treesEqual(t, BuildTree(g, w, s, Forward), fwd, "forward after backward")
	treesEqual(t, BuildTree(g, w, d, Backward), bwd, "backward")
	// Forward and backward sums accumulate in different orders, so allow
	// for float rounding when cross-checking the two trees.
	if math.Abs(fwd.Dist[d]-bwd.Dist[s]) > 1e-9 {
		t.Fatalf("tree distances disagree: %v vs %v", fwd.Dist[d], bwd.Dist[s])
	}
}

// TestIntoVariantsZeroAlloc asserts the workspace searches allocate
// nothing after warm-up — the property the serving layer's throughput
// rests on.
func TestIntoVariantsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := gridGraph(30, 30)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	ws := NewWorkspace()
	s, d := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)

	warmAndCheck := func(name string, fn func()) {
		t.Helper()
		fn() // warm up: grow arrays, heap and path buffer once
		if allocs := testing.AllocsPerRun(10, fn); allocs > 0 {
			t.Errorf("%s: %v allocs/op after warm-up, want 0", name, allocs)
		}
	}
	warmAndCheck("BuildTreeInto", func() { BuildTreeInto(ws, g, w, s, Forward) })
	warmAndCheck("ShortestPathInto", func() { ShortestPathInto(ws, g, w, s, d) })
	warmAndCheck("BidirectionalShortestPathInto", func() { BidirectionalShortestPathInto(ws, g, w, s, d) })
	warmAndCheck("AStarShortestPathInto", func() { AStarShortestPathInto(ws, g, w, s, d, scale) })
	warmAndCheck("BuildPrunedTreeInto", func() {
		BuildPrunedTreeInto(ws, g, w, s, Forward, d, math.Inf(1), scale)
	})
}

// TestInfWeightsAreWalls pins the ban semantics Yen and ESX rely on:
// setting an edge weight to +Inf must make it impassable, so a target
// only reachable through banned edges reports (nil, +Inf) and trees never
// cross banned edges — exactly as with the old +Inf-filled dist arrays.
func TestInfWeightsAreWalls(t *testing.T) {
	// A 2-row corridor: 0-1-2 on top, 3-4-5 below, rungs between. Banning
	// both edges out of node 0 cuts the source off entirely.
	g := gridGraph(2, 3)
	w := g.CopyWeights()
	for _, e := range g.OutEdges(0) {
		w[e] = math.Inf(1)
	}
	ws := NewWorkspace()
	dst := graph.NodeID(g.NumNodes() - 1)

	edges, d := ShortestPathInto(ws, g, w, 0, dst)
	if edges != nil || !math.IsInf(d, 1) {
		t.Fatalf("banned source: got (%v, %v), want (nil, +Inf)", edges, d)
	}
	if edges, d := BidirectionalShortestPathInto(ws, g, w, 0, dst); edges != nil || !math.IsInf(d, 1) {
		t.Fatalf("banned source (bidi): got (%v, %v), want (nil, +Inf)", edges, d)
	}
	if edges, d := AStarShortestPathInto(ws, g, w, 0, dst, 0); edges != nil || !math.IsInf(d, 1) {
		t.Fatalf("banned source (A*): got (%v, %v), want (nil, +Inf)", edges, d)
	}
	tree := BuildTreeInto(ws, g, w, 0, Forward)
	for v := graph.NodeID(1); int(v) < g.NumNodes(); v++ {
		if tree.Reached(v) {
			t.Fatalf("tree crossed a banned edge to reach node %d", v)
		}
	}
}

// TestEpochWraparound drives the generation counter across its uint32
// wraparound and checks results stay correct through the stamp-array
// re-zeroing.
func TestEpochWraparound(t *testing.T) {
	g := gridGraph(10, 10)
	w := g.CopyWeights()
	ws := NewWorkspace()
	BuildTreeInto(ws, g, w, 0, Forward) // size the arrays
	ws.F.cur = math.MaxUint32 - 8
	for i := 0; i < 8; i++ {
		s := graph.NodeID(i * 7 % g.NumNodes())
		treesEqual(t, BuildTree(g, w, s, Forward), BuildTreeInto(ws, g, w, s, Forward), "wraparound tree")
	}
}

// TestWorkspaceGrowsAcrossGraphs runs one workspace against graphs of
// different sizes; the arrays must grow without corrupting results.
func TestWorkspaceGrowsAcrossGraphs(t *testing.T) {
	ws := NewWorkspace()
	for _, dim := range []int{5, 20, 9, 30, 3} {
		g := gridGraph(dim, dim)
		w := g.CopyWeights()
		s := graph.NodeID(0)
		treesEqual(t, BuildTree(g, w, s, Forward), BuildTreeInto(ws, g, w, s, Forward), "grown tree")
	}
}

// --- workspace-variant microbenchmarks, mirroring the Grid50 set --------------

func BenchmarkBuildTreeIntoGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTreeInto(ws, g, w, 0, Forward)
	}
}

func BenchmarkShortestPathIntoGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	dst := graph.NodeID(g.NumNodes() - 1)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPathInto(ws, g, w, 0, dst)
	}
}

func BenchmarkBidirectionalIntoGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	dst := graph.NodeID(g.NumNodes() - 1)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BidirectionalShortestPathInto(ws, g, w, 0, dst)
	}
}

func BenchmarkAStarIntoGrid50(b *testing.B) {
	g := gridGraph(50, 50)
	w := g.CopyWeights()
	scale := MinSecondsPerMeter(g, w)
	dst := graph.NodeID(g.NumNodes() - 1)
	ws := NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AStarShortestPathInto(ws, g, w, 0, dst, scale)
	}
}
