// Package spatial provides a uniform-grid index over road-network vertices
// used for geo-coordinate matching: mapping a clicked map location to the
// nearest graph vertex, the first step of the paper's query processor.
package spatial

import (
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Index is a uniform grid over the graph's bounding box. Cells hold the
// vertices whose coordinates fall inside them; nearest-neighbour queries
// expand rings of cells around the query point until a best candidate is
// provably found.
type Index struct {
	g          *graph.Graph
	bbox       geo.BBox
	rows, cols int
	cellH      float64 // degrees latitude per cell
	cellW      float64 // degrees longitude per cell
	cells      [][]graph.NodeID
}

// NewIndex builds a grid index over all vertices of g. targetPerCell
// controls cell granularity; values around 8-32 work well. It panics if
// the graph has no vertices.
func NewIndex(g *graph.Graph, targetPerCell int) *Index {
	n := g.NumNodes()
	if n == 0 {
		panic("spatial: cannot index an empty graph")
	}
	if targetPerCell <= 0 {
		targetPerCell = 16
	}
	numCells := n/targetPerCell + 1
	side := int(math.Ceil(math.Sqrt(float64(numCells))))
	if side < 1 {
		side = 1
	}
	bbox := g.BBox()
	// Pad degenerate extents so that every point falls in a valid cell.
	const eps = 1e-9
	if bbox.MaxLat-bbox.MinLat < eps {
		bbox.MaxLat += eps
	}
	if bbox.MaxLon-bbox.MinLon < eps {
		bbox.MaxLon += eps
	}
	idx := &Index{
		g:     g,
		bbox:  bbox,
		rows:  side,
		cols:  side,
		cellH: (bbox.MaxLat - bbox.MinLat) / float64(side),
		cellW: (bbox.MaxLon - bbox.MinLon) / float64(side),
		cells: make([][]graph.NodeID, side*side),
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		c := idx.cellOf(g.Point(v))
		idx.cells[c] = append(idx.cells[c], v)
	}
	return idx
}

func (idx *Index) cellOf(p geo.Point) int {
	r := int((p.Lat - idx.bbox.MinLat) / idx.cellH)
	c := int((p.Lon - idx.bbox.MinLon) / idx.cellW)
	if r < 0 {
		r = 0
	}
	if r >= idx.rows {
		r = idx.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= idx.cols {
		c = idx.cols - 1
	}
	return r*idx.cols + c
}

// Nearest returns the vertex closest to p by haversine distance, together
// with that distance in meters. It never fails on a non-empty graph.
func (idx *Index) Nearest(p geo.Point) (graph.NodeID, float64) {
	centerCell := idx.cellOf(p)
	cr, cc := centerCell/idx.cols, centerCell%idx.cols

	best := graph.InvalidNode
	bestD := math.Inf(1)
	scanCell := func(r, c int) {
		if r < 0 || r >= idx.rows || c < 0 || c >= idx.cols {
			return
		}
		for _, v := range idx.cells[r*idx.cols+c] {
			if d := geo.Haversine(p, idx.g.Point(v)); d < bestD {
				best, bestD = v, d
			}
		}
	}

	maxRing := idx.rows
	if idx.cols > maxRing {
		maxRing = idx.cols
	}
	for ring := 0; ring <= maxRing; ring++ {
		if ring == 0 {
			scanCell(cr, cc)
		} else {
			for c := cc - ring; c <= cc+ring; c++ {
				scanCell(cr-ring, c)
				scanCell(cr+ring, c)
			}
			for r := cr - ring + 1; r <= cr+ring-1; r++ {
				scanCell(r, cc-ring)
				scanCell(r, cc+ring)
			}
		}
		if best != graph.InvalidNode {
			// The next unexplored ring starts at least ringDist away; if the
			// current best is closer than that lower bound we are done.
			ringDist := idx.ringLowerBoundMeters(p, ring)
			if bestD <= ringDist {
				return best, bestD
			}
		}
	}
	return best, bestD
}

// ringLowerBoundMeters returns a lower bound on the distance from p to any
// cell in ring ring+1 or beyond.
func (idx *Index) ringLowerBoundMeters(p geo.Point, ring int) float64 {
	// Distance to the edge of the explored square, conservatively using the
	// smaller of the two cell dimensions in meters.
	latMeters := idx.cellH * 111320
	lonMeters := idx.cellW * 111320 * math.Cos(p.Lat*math.Pi/180)
	cell := math.Min(math.Abs(latMeters), math.Abs(lonMeters))
	return float64(ring) * cell
}

// NearestWithin returns the closest vertex to p if it lies within maxMeters,
// otherwise (InvalidNode, +Inf).
func (idx *Index) NearestWithin(p geo.Point, maxMeters float64) (graph.NodeID, float64) {
	v, d := idx.Nearest(p)
	if d > maxMeters {
		return graph.InvalidNode, math.Inf(1)
	}
	return v, d
}

// InCell returns the number of vertices stored in the cell containing p.
// Exposed for testing and diagnostics.
func (idx *Index) InCell(p geo.Point) int {
	return len(idx.cells[idx.cellOf(p)])
}

// NumCells returns the number of grid cells (rows × cols). Cell ids are
// row-major in [0, NumCells).
func (idx *Index) NumCells() int { return idx.rows * idx.cols }

// CellOf returns the row-major id of the cell containing p (clamped to
// the border cells for points outside the indexed bounding box).
func (idx *Index) CellOf(p geo.Point) int { return idx.cellOf(p) }

// CellNodes returns the vertices stored in cell c. The slice is owned by
// the index and must not be modified.
func (idx *Index) CellNodes(c int) []graph.NodeID { return idx.cells[c] }

// cellRect returns cell c's coordinate rectangle. Border cells extend to
// the index bounding box, so every vertex assigned to a cell (including
// clamped boundary points) lies inside its rect up to float rounding.
func (idx *Index) cellRect(c int) geo.BBox {
	r, cc := c/idx.cols, c%idx.cols
	b := geo.BBox{
		MinLat: idx.bbox.MinLat + float64(r)*idx.cellH,
		MinLon: idx.bbox.MinLon + float64(cc)*idx.cellW,
	}
	b.MaxLat = b.MinLat + idx.cellH
	b.MaxLon = b.MinLon + idx.cellW
	if r == idx.rows-1 && b.MaxLat < idx.bbox.MaxLat {
		b.MaxLat = idx.bbox.MaxLat
	}
	if cc == idx.cols-1 && b.MaxLon < idx.bbox.MaxLon {
		b.MaxLon = idx.bbox.MaxLon
	}
	return b
}

// minLBToRect lower-bounds lb.MetersLB(p, q) over all q in rect. MetersLB
// is monotone in each absolute coordinate difference, so the minimum over
// the rectangle is attained at p clamped into it per axis.
func minLBToRect(lb geo.LowerBounder, p geo.Point, rect geo.BBox) float64 {
	q := p
	if q.Lat < rect.MinLat {
		q.Lat = rect.MinLat
	} else if q.Lat > rect.MaxLat {
		q.Lat = rect.MaxLat
	}
	if q.Lon < rect.MinLon {
		q.Lon = rect.MinLon
	} else if q.Lon > rect.MaxLon {
		q.Lon = rect.MaxLon
	}
	return lb.MetersLB(p, q)
}

// cellRectEps pads cell rects by this many degrees before the ellipse
// test, absorbing the float rounding of cellOf's division against
// cellRect's multiplication. Enlarged rects only lower the bound, so the
// padding keeps the covering conservative.
const cellRectEps = 1e-12

// EllipseCells appends to dst (reusing its backing) the ids of every
// non-empty cell that can contain a vertex v with
// lb.MetersLB(s,v) + lb.MetersLB(v,t) ≤ budgetMeters — a conservative
// cell-union covering of the elliptic region between s and t: each cell
// is admitted on the rectangle-clamped lower bounds, so no qualifying
// vertex is ever excluded (the union is a superset of the ellipse). Ids
// come out in ascending row-major order, which makes the result directly
// usable as a canonical cell signature.
func (idx *Index) EllipseCells(s, t geo.Point, budgetMeters float64, lb geo.LowerBounder, dst []int32) []int32 {
	dst = dst[:0]
	for c := range idx.cells {
		if len(idx.cells[c]) == 0 {
			continue
		}
		rect := idx.cellRect(c)
		rect.MinLat -= cellRectEps
		rect.MinLon -= cellRectEps
		rect.MaxLat += cellRectEps
		rect.MaxLon += cellRectEps
		if minLBToRect(lb, s, rect)+minLBToRect(lb, t, rect) <= budgetMeters {
			dst = append(dst, int32(c))
		}
	}
	return dst
}
