package spatial

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
)

func randomGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{
			Lat: -37.9 + rng.Float64()*0.2,
			Lon: 144.9 + rng.Float64()*0.3,
		})
	}
	return b.Build()
}

// bruteNearest is the O(n) reference implementation.
func bruteNearest(g *graph.Graph, p geo.Point) (graph.NodeID, float64) {
	best := graph.InvalidNode
	bestD := math.Inf(1)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := geo.Haversine(p, g.Point(v)); d < bestD {
			best, bestD = v, d
		}
	}
	return best, bestD
}

func TestNearestMatchesBruteForce(t *testing.T) {
	g := randomGraph(500, 42)
	idx := NewIndex(g, 16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := geo.Point{
			Lat: -37.95 + rng.Float64()*0.3,
			Lon: 144.85 + rng.Float64()*0.4,
		}
		gotV, gotD := idx.Nearest(p)
		_, wantD := bruteNearest(g, p)
		// Ties in distance may resolve to different vertices; distances must match.
		if math.Abs(gotD-wantD) > 1e-6 {
			t.Fatalf("query %d at %v: grid dist %f, brute dist %f (node %d)", i, p, gotD, wantD, gotV)
		}
	}
}

func TestNearestExactHit(t *testing.T) {
	g := randomGraph(100, 1)
	idx := NewIndex(g, 8)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		got, d := idx.Nearest(g.Point(v))
		if d > 1e-6 {
			t.Fatalf("querying node %d's own position returned node %d at %f m", v, got, d)
		}
	}
}

func TestNearestFarOutsideBBox(t *testing.T) {
	g := randomGraph(50, 3)
	idx := NewIndex(g, 8)
	// Query from Dhaka against a Melbourne graph: must still return something.
	v, d := idx.Nearest(geo.Point{Lat: 23.8, Lon: 90.4})
	if v == graph.InvalidNode {
		t.Fatal("Nearest must always succeed on a non-empty graph")
	}
	if d < 1000_000 {
		t.Errorf("distance to Melbourne should exceed 1000 km, got %f m", d)
	}
}

func TestNearestWithin(t *testing.T) {
	g := randomGraph(50, 5)
	idx := NewIndex(g, 8)
	p := g.Point(0)
	if v, _ := idx.NearestWithin(p, 10); v == graph.InvalidNode {
		t.Error("vertex at distance 0 should be within 10 m")
	}
	if v, _ := idx.NearestWithin(geo.Point{Lat: 23.8, Lon: 90.4}, 1000); v != graph.InvalidNode {
		t.Error("nothing should be within 1 km of Dhaka")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	b := graph.NewBuilder(1, 0)
	b.AddNode(geo.Point{Lat: -37.8, Lon: 144.9})
	g := b.Build()
	idx := NewIndex(g, 16)
	v, d := idx.Nearest(geo.Point{Lat: -37.0, Lon: 144.0})
	if v != 0 {
		t.Errorf("single-node graph must return node 0, got %d", v)
	}
	if d <= 0 {
		t.Errorf("distance should be positive, got %f", d)
	}
}

func TestDegenerateColinearGraph(t *testing.T) {
	// All nodes on one meridian: the bbox has zero width.
	b := graph.NewBuilder(10, 0)
	for i := 0; i < 10; i++ {
		b.AddNode(geo.Point{Lat: -37.8 + float64(i)*0.01, Lon: 144.9})
	}
	g := b.Build()
	idx := NewIndex(g, 4)
	v, _ := idx.Nearest(geo.Point{Lat: -37.75, Lon: 144.95})
	want, _ := bruteNearest(g, geo.Point{Lat: -37.75, Lon: 144.95})
	if v != want {
		t.Errorf("colinear graph: got node %d, want %d", v, want)
	}
}

func TestNewIndexPanicsOnEmptyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewIndex on empty graph should panic")
		}
	}()
	NewIndex(graph.NewBuilder(0, 0).Build(), 16)
}

func TestTargetPerCellDefaults(t *testing.T) {
	g := randomGraph(100, 9)
	idx := NewIndex(g, 0) // should fall back to a sane default
	v, _ := idx.Nearest(g.Point(5))
	if v == graph.InvalidNode {
		t.Error("index with default cell size must work")
	}
}

func BenchmarkNearest(b *testing.B) {
	g := randomGraph(20000, 11)
	idx := NewIndex(g, 16)
	rng := rand.New(rand.NewSource(13))
	pts := make([]geo.Point, 1024)
	for i := range pts {
		pts[i] = geo.Point{
			Lat: -37.9 + rng.Float64()*0.2,
			Lon: 144.9 + rng.Float64()*0.3,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Nearest(pts[i%len(pts)])
	}
}

// TestEllipseCellsConservative is the covering property behind selection
// sharing: every vertex satisfying the per-node ellipse test must live in
// a cell returned by EllipseCells, for random endpoint pairs and budgets.
func TestEllipseCellsConservative(t *testing.T) {
	g := randomGraph(400, 11)
	idx := NewIndex(g, 16)
	lb := geo.NewLowerBounder(g.BBox())
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 50; q++ {
		s := g.Point(graph.NodeID(rng.Intn(g.NumNodes())))
		tp := g.Point(graph.NodeID(rng.Intn(g.NumNodes())))
		budget := lb.MetersLB(s, tp) * (1 + rng.Float64())
		cells := idx.EllipseCells(s, tp, budget, lb, nil)
		inUnion := make(map[int]bool, len(cells))
		for i, c := range cells {
			if i > 0 && cells[i-1] >= c {
				t.Fatalf("query %d: cell ids not strictly ascending: %d then %d", q, cells[i-1], c)
			}
			inUnion[int(c)] = true
		}
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			p := g.Point(v)
			if lb.MetersLB(s, p)+lb.MetersLB(p, tp) <= budget && !inUnion[idx.CellOf(p)] {
				t.Fatalf("query %d: vertex %d inside the ellipse but its cell %d is not in the union",
					q, v, idx.CellOf(p))
			}
		}
	}
}

// TestCellNodesPartition: every vertex appears in exactly one cell, and
// CellOf agrees with the cell it was stored in.
func TestCellNodesPartition(t *testing.T) {
	g := randomGraph(300, 3)
	idx := NewIndex(g, 16)
	seen := make(map[graph.NodeID]int)
	for c := 0; c < idx.NumCells(); c++ {
		for _, v := range idx.CellNodes(c) {
			if prev, dup := seen[v]; dup {
				t.Fatalf("vertex %d in cells %d and %d", v, prev, c)
			}
			seen[v] = c
			if idx.CellOf(g.Point(v)) != c {
				t.Fatalf("vertex %d stored in cell %d but CellOf says %d", v, c, idx.CellOf(g.Point(v)))
			}
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("cells hold %d vertices, graph has %d", len(seen), g.NumNodes())
	}
}
