package stats

import "math"

// RMANOVAResult is the outcome of a one-way repeated-measures ANOVA.
type RMANOVAResult struct {
	F         float64
	P         float64
	DFTreat   int // k−1
	DFError   int // (n−1)(k−1)
	SSTreat   float64
	SSSubject float64
	SSError   float64
}

// RepeatedMeasuresANOVA runs the within-subjects one-way ANOVA the paper
// names in §IV-A: each subject (study participant) rates every treatment
// (approach), so subject-level variability is removed from the error term.
// data[i] holds subject i's ratings of all k treatments; every row must
// have the same length k ≥ 2 and there must be at least 2 subjects.
//
// Note the paper's printed degrees of freedom, e.g. F(3, 944) for 237
// Melbourne respondents, correspond to the between-subjects layout
// (OneWayANOVA); the repeated-measures layout for the same data is
// F(3, 708). Both tests are provided so either convention can be
// reproduced.
func RepeatedMeasuresANOVA(data [][]float64) (RMANOVAResult, error) {
	n := len(data)
	if n < 2 {
		return RMANOVAResult{}, ErrANOVA
	}
	k := len(data[0])
	if k < 2 {
		return RMANOVAResult{}, ErrANOVA
	}
	for _, row := range data {
		if len(row) != k {
			return RMANOVAResult{}, ErrANOVA
		}
	}
	var grand float64
	for _, row := range data {
		for _, x := range row {
			grand += x
		}
	}
	grand /= float64(n * k)

	// Treatment and subject means.
	treatMean := make([]float64, k)
	for _, row := range data {
		for j, x := range row {
			treatMean[j] += x
		}
	}
	for j := range treatMean {
		treatMean[j] /= float64(n)
	}
	var ssTreat float64
	for _, m := range treatMean {
		d := m - grand
		ssTreat += d * d
	}
	ssTreat *= float64(n)

	var ssSubject, ssTotal float64
	for _, row := range data {
		var rowSum float64
		for _, x := range row {
			rowSum += x
			d := x - grand
			ssTotal += d * d
		}
		d := rowSum/float64(k) - grand
		ssSubject += d * d
	}
	ssSubject *= float64(k)

	ssError := ssTotal - ssTreat - ssSubject
	if ssError < 0 {
		ssError = 0 // numerical guard; perfectly additive data
	}
	dfT := k - 1
	dfE := (n - 1) * (k - 1)
	res := RMANOVAResult{
		DFTreat:   dfT,
		DFError:   dfE,
		SSTreat:   ssTreat,
		SSSubject: ssSubject,
		SSError:   ssError,
	}
	msT := ssTreat / float64(dfT)
	msE := ssError / float64(dfE)
	if msE == 0 {
		if msT == 0 {
			res.F, res.P = 0, 1
			return res, nil
		}
		res.F, res.P = math.Inf(1), 0
		return res, nil
	}
	res.F = msT / msE
	res.P = FSurvival(res.F, float64(dfT), float64(dfE))
	return res, nil
}
