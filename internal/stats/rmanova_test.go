package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRMANOVAHandComputed(t *testing.T) {
	// 4 subjects × 3 treatments, worked by hand:
	// treatment means 2.5, 3.5, 4.25; grand 41/12.
	// SS_treat = 6.16667, SS_subject = 10.91667, SS_total = 20.91667,
	// SS_error = 3.83333; F(2, 6) = 3.08333/0.63889 = 4.8261.
	data := [][]float64{
		{1, 2, 4},
		{2, 3, 3},
		{3, 5, 4},
		{4, 4, 6},
	}
	res, err := RepeatedMeasuresANOVA(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.DFTreat != 2 || res.DFError != 6 {
		t.Errorf("df = (%d, %d), want (2, 6)", res.DFTreat, res.DFError)
	}
	if !almostEq(res.SSTreat, 6.166667, 1e-5) {
		t.Errorf("SS_treat = %f, want 6.16667", res.SSTreat)
	}
	if !almostEq(res.SSSubject, 10.916667, 1e-5) {
		t.Errorf("SS_subject = %f, want 10.91667", res.SSSubject)
	}
	if !almostEq(res.SSError, 3.833333, 1e-5) {
		t.Errorf("SS_error = %f, want 3.83333", res.SSError)
	}
	if !almostEq(res.F, 4.826087, 1e-4) {
		t.Errorf("F = %f, want 4.8261", res.F)
	}
	if res.P < 0.04 || res.P > 0.08 {
		t.Errorf("p = %f, want ≈0.056", res.P)
	}
}

func TestRMANOVARemovesSubjectVariance(t *testing.T) {
	// Strong subject effects (lenient vs harsh raters) with identical
	// treatment effects: between-subjects ANOVA is diluted, RM-ANOVA
	// detects the treatment cleanly.
	rng := rand.New(rand.NewSource(3))
	n := 40
	data := make([][]float64, n)
	groups := make([][]float64, 3)
	for i := 0; i < n; i++ {
		subject := rng.NormFloat64() * 3 // big leniency spread
		row := make([]float64, 3)
		for j := range row {
			row[j] = subject + float64(j)*0.4 + rng.NormFloat64()*0.3
			groups[j] = append(groups[j], row[j])
		}
		data[i] = row
	}
	rm, err := RepeatedMeasuresANOVA(data)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := OneWayANOVA(groups...)
	if err != nil {
		t.Fatal(err)
	}
	if rm.P > 0.001 {
		t.Errorf("RM-ANOVA p = %g, should detect the within-subject effect", rm.P)
	}
	if bw.F >= rm.F {
		t.Errorf("between-subjects F (%f) should be diluted below RM F (%f) with large subject variance", bw.F, rm.F)
	}
}

func TestRMANOVAPerfectlyAdditive(t *testing.T) {
	// Zero error: subject + treatment effects explain everything.
	data := [][]float64{
		{1, 2, 3},
		{2, 3, 4},
		{3, 4, 5},
	}
	res, err := RepeatedMeasuresANOVA(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.F, 1) || res.P != 0 {
		t.Errorf("additive data: F=%f p=%f, want +Inf/0", res.F, res.P)
	}
	// All-equal data: vacuous.
	res, err = RepeatedMeasuresANOVA([][]float64{{2, 2}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 || res.P != 1 {
		t.Errorf("constant data: F=%f p=%f, want 0/1", res.F, res.P)
	}
}

func TestRMANOVAErrors(t *testing.T) {
	if _, err := RepeatedMeasuresANOVA(nil); err == nil {
		t.Error("no subjects should error")
	}
	if _, err := RepeatedMeasuresANOVA([][]float64{{1, 2}}); err == nil {
		t.Error("single subject should error")
	}
	if _, err := RepeatedMeasuresANOVA([][]float64{{1}, {2}}); err == nil {
		t.Error("single treatment should error")
	}
	if _, err := RepeatedMeasuresANOVA([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestRMANOVADegreesOfFreedomMatchStudy(t *testing.T) {
	// 237 participants × 4 approaches → F(3, 708) in the RM layout.
	rng := rand.New(rand.NewSource(9))
	data := make([][]float64, 237)
	for i := range data {
		row := make([]float64, 4)
		for j := range row {
			row[j] = float64(1 + rng.Intn(5))
		}
		data[i] = row
	}
	res, err := RepeatedMeasuresANOVA(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.DFTreat != 3 || res.DFError != 708 {
		t.Errorf("df = (%d, %d), want (3, 708)", res.DFTreat, res.DFError)
	}
}

func TestRMANOVANullCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 300
	rejects := 0
	for tr := 0; tr < trials; tr++ {
		data := make([][]float64, 30)
		for i := range data {
			base := rng.NormFloat64()
			row := make([]float64, 4)
			for j := range row {
				row[j] = base + rng.NormFloat64()
			}
			data[i] = row
		}
		res, err := RepeatedMeasuresANOVA(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / float64(trials)
	if rate < 0.01 || rate > 0.11 {
		t.Errorf("null rejection rate = %f, want ≈0.05", rate)
	}
}
