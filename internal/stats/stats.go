// Package stats implements the descriptive statistics and the one-way
// ANOVA test the paper's evaluation uses (§IV-A): per-group mean ratings
// with standard deviations, and F-tests of the null hypothesis that the
// four approaches receive the same mean rating.
//
// The F-distribution CDF is computed via the regularized incomplete beta
// function (continued-fraction evaluation), so p-values need no external
// dependencies.
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator), or NaN
// if fewer than two observations are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, sd/√n.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the descriptive statistics reported in the paper's
// tables.
type Summary struct {
	N    int
	Mean float64
	SD   float64
	SE   float64
	Max  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		SD:   StdDev(xs),
		SE:   StdErr(xs),
		Max:  Max(xs),
	}
}

// ANOVAResult is the outcome of a one-way analysis of variance.
type ANOVAResult struct {
	F        float64 // F statistic
	P        float64 // p-value under the null of equal group means
	DFBetwe  int     // between-groups degrees of freedom (k−1)
	DFWithin int     // within-groups degrees of freedom (N−k)
	// Sums of squares, for reporting.
	SSBetween float64
	SSWithin  float64
}

// ErrANOVA is returned for degenerate inputs (fewer than two groups, any
// empty group, or fewer observations than groups+1).
var ErrANOVA = errors.New("stats: ANOVA requires ≥2 non-empty groups and N > k")

// OneWayANOVA tests whether the means of the given groups differ. This is
// the fixed-effects one-way ANOVA whose degrees of freedom (k−1, N−k)
// match the F values quoted in the paper, e.g. F(3, 944) for Melbourne's
// 237×4 ratings.
func OneWayANOVA(groups ...[]float64) (ANOVAResult, error) {
	k := len(groups)
	if k < 2 {
		return ANOVAResult{}, ErrANOVA
	}
	total := 0
	var grand float64
	for _, gr := range groups {
		if len(gr) == 0 {
			return ANOVAResult{}, ErrANOVA
		}
		total += len(gr)
		for _, x := range gr {
			grand += x
		}
	}
	if total <= k {
		return ANOVAResult{}, ErrANOVA
	}
	grand /= float64(total)

	var ssb, ssw float64
	for _, gr := range groups {
		m := Mean(gr)
		d := m - grand
		ssb += float64(len(gr)) * d * d
		for _, x := range gr {
			e := x - m
			ssw += e * e
		}
	}
	dfb := k - 1
	dfw := total - k
	msb := ssb / float64(dfb)
	msw := ssw / float64(dfw)
	res := ANOVAResult{
		DFBetwe:   dfb,
		DFWithin:  dfw,
		SSBetween: ssb,
		SSWithin:  ssw,
	}
	if msw == 0 {
		// All groups internally constant: F is +Inf unless the means are
		// also equal, in which case the test is vacuous (F = 0, p = 1).
		if msb == 0 {
			res.F, res.P = 0, 1
			return res, nil
		}
		res.F, res.P = math.Inf(1), 0
		return res, nil
	}
	res.F = msb / msw
	res.P = FSurvival(res.F, float64(dfb), float64(dfw))
	return res, nil
}

// FSurvival returns P(F_{d1,d2} > x), the upper-tail probability of the
// F-distribution — the ANOVA p-value.
func FSurvival(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 1
	}
	if math.IsInf(x, 1) {
		return 0
	}
	// P(F > x) = I_{d2/(d2+d1·x)}(d2/2, d1/2)
	z := d2 / (d2 + d1*x)
	return RegIncBeta(d2/2, d1/2, z)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the standard continued-fraction expansion (Numerical Recipes
// §6.4, Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case math.IsNaN(a) || math.IsNaN(b) || a <= 0 || b <= 0:
		return math.NaN()
	}
	// Prefactor x^a (1−x)^b / (a·B(a,b)), computed in log space.
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
