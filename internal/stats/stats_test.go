package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %f, want 5", got)
	}
	// Sample variance with n−1: SS = 32, 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %f, want %f", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %f", got)
	}
	if got := StdErr(xs); !almostEq(got, math.Sqrt(32.0/7)/math.Sqrt(8), 1e-12) {
		t.Errorf("StdErr = %f", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
	if !math.IsNaN(Max(nil)) {
		t.Error("Max(nil) should be NaN")
	}
	if !math.IsNaN(StdErr(nil)) {
		t.Error("StdErr(nil) should be NaN")
	}
}

func TestMax(t *testing.T) {
	if got := Max([]float64{3, -1, 7, 2}); got != 7 {
		t.Errorf("Max = %f, want 7", got)
	}
	if got := Max([]float64{-5}); got != -5 {
		t.Errorf("Max single = %f, want -5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEq(s.Mean, 3, 1e-12) || !almostEq(s.Max, 5, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEq(s.SD, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Summary.SD = %f", s.SD)
	}
}

func TestVarianceShiftInvariance(t *testing.T) {
	if err := quick.Check(func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = xs[i] + shift
		}
		return almostEq(Variance(xs), Variance(ys), 1e-6)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRegIncBetaKnownValues checks I_x(a,b) against closed forms:
// I_x(1,1) = x; I_x(1,b) = 1-(1-x)^b; I_x(a,1) = x^a; symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a).
func TestRegIncBetaKnownValues(t *testing.T) {
	for _, x := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%f(1,1) = %f, want %f", x, got, x)
		}
		for _, b := range []float64{0.5, 2, 5, 17} {
			want := 1 - math.Pow(1-x, b)
			if got := RegIncBeta(1, b, x); !almostEq(got, want, 1e-10) {
				t.Errorf("I_%f(1,%f) = %f, want %f", x, b, got, want)
			}
		}
		for _, a := range []float64{0.5, 2, 5, 17} {
			want := math.Pow(x, a)
			if got := RegIncBeta(a, 1, x); !almostEq(got, want, 1e-10) {
				t.Errorf("I_%f(%f,1) = %f, want %f", x, a, got, want)
			}
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	if err := quick.Check(func(ra, rb, rx float64) bool {
		a := 0.5 + math.Abs(math.Mod(ra, 20))
		b := 0.5 + math.Abs(math.Mod(rb, 20))
		x := math.Abs(math.Mod(rx, 1))
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) {
			return true
		}
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almostEq(lhs, rhs, 1e-9)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaMonotoneInX(t *testing.T) {
	prev := 0.0
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		v := RegIncBeta(3.5, 7.25, x)
		if v < prev-1e-12 {
			t.Fatalf("I_x not monotone at x=%f: %f < %f", x, v, prev)
		}
		prev = v
	}
	if !almostEq(RegIncBeta(3.5, 7.25, 1), 1, 1e-12) {
		t.Error("I_1 should be 1")
	}
	if RegIncBeta(3.5, 7.25, 0) != 0 {
		t.Error("I_0 should be 0")
	}
}

// TestFSurvivalKnownValues uses reference values computed with scipy
// (stats.f.sf): sf(1.0, 3, 944)=0.39169..., sf(2.197,3,944)=0.08665...,
// sf(2.58,3,508)=0.0527..., sf(0.502,3,616)=0.6810....
func TestFSurvivalKnownValues(t *testing.T) {
	cases := []struct {
		x, d1, d2, want, tol float64
	}{
		{1.0, 3, 944, 0.3917, 0.002},
		{2.197, 3, 944, 0.0866, 0.002},
		{0.502, 3, 616, 0.681, 0.002},
		{2.58, 3, 508, 0.0527, 0.002},
		{0.592, 3, 620, 0.620, 0.003},
		{0.843, 3, 444, 0.471, 0.003},
		{2.56, 3, 260, 0.0555, 0.003},
		{3.85, 1, 10, 0.0781, 0.002},
	}
	for _, c := range cases {
		if got := FSurvival(c.x, c.d1, c.d2); !almostEq(got, c.want, c.tol) {
			t.Errorf("FSurvival(%g, %g, %g) = %f, want %f", c.x, c.d1, c.d2, got, c.want)
		}
	}
	if got := FSurvival(0, 3, 100); got != 1 {
		t.Errorf("FSurvival(0) = %f, want 1", got)
	}
	if got := FSurvival(math.Inf(1), 3, 100); got != 0 {
		t.Errorf("FSurvival(+Inf) = %f, want 0", got)
	}
}

// TestFSurvivalPaperANOVAValues reproduces the (F, p) pairs quoted in
// §IV-A: the p-values must match the paper's to the printed precision.
func TestFSurvivalPaperANOVAValues(t *testing.T) {
	cases := []struct {
		name      string
		f         float64
		d2        float64
		wantP     float64
		tolerance float64
	}{
		{"melbourne-all", 2.197, 944, 0.087, 0.001},
		{"dhaka-all", 0.502, 616, 0.68, 0.005},
		{"copenhagen-all", 2.58, 508, 0.054, 0.002},
		{"melbourne-res", 0.592, 620, 0.62, 0.005},
		{"dhaka-res", 0.843, 444, 0.471, 0.002},
		{"copenhagen-res", 2.56, 260, 0.057, 0.003},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := FSurvival(c.f, 3, c.d2)
			if !almostEq(got, c.wantP, c.tolerance) {
				t.Errorf("p = %f, paper reports %f", got, c.wantP)
			}
		})
	}
}

func TestOneWayANOVAHandComputed(t *testing.T) {
	// Textbook example with known answer.
	g1 := []float64{6, 8, 4, 5, 3, 4}
	g2 := []float64{8, 12, 9, 11, 6, 8}
	g3 := []float64{13, 9, 11, 8, 7, 12}
	res, err := OneWayANOVA(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DFBetwe != 2 || res.DFWithin != 15 {
		t.Errorf("df = (%d, %d), want (2, 15)", res.DFBetwe, res.DFWithin)
	}
	// Group means 5, 9, 10; grand mean 8.
	// SSB = 6·(9+1+4) = 84; SSW = 16+24+28 = 68; F = 42/(68/15) ≈ 9.2647.
	if !almostEq(res.SSBetween, 84, 1e-9) {
		t.Errorf("SSB = %f, want 84", res.SSBetween)
	}
	if !almostEq(res.SSWithin, 68, 1e-9) {
		t.Errorf("SSW = %f, want 68", res.SSWithin)
	}
	wantF := (84.0 / 2) / (68.0 / 15)
	if !almostEq(res.F, wantF, 1e-9) || !almostEq(res.F, 9.2647, 0.001) {
		t.Errorf("F = %f, want 9.2647", res.F)
	}
	if !almostEq(res.P, 0.0024, 0.0005) {
		t.Errorf("p = %f, want ≈0.0024", res.P)
	}
}

func TestOneWayANOVAIdenticalGroups(t *testing.T) {
	g := []float64{3, 4, 5, 3, 4, 5}
	res, err := OneWayANOVA(g, g, g, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-9 {
		t.Errorf("identical groups F = %f, want 0", res.F)
	}
	if res.P < 0.999 {
		t.Errorf("identical groups p = %f, want ≈1", res.P)
	}
}

func TestOneWayANOVAConstantGroups(t *testing.T) {
	// Zero within-group variance, different means: F = +Inf, p = 0.
	res, err := OneWayANOVA([]float64{1, 1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.F, 1) || res.P != 0 {
		t.Errorf("constant distinct groups: F=%f p=%f, want +Inf/0", res.F, res.P)
	}
	// Zero variance, equal means: vacuous test.
	res, err = OneWayANOVA([]float64{2, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 || res.P != 1 {
		t.Errorf("constant equal groups: F=%f p=%f, want 0/1", res.F, res.P)
	}
}

func TestOneWayANOVAErrors(t *testing.T) {
	if _, err := OneWayANOVA([]float64{1, 2}); err == nil {
		t.Error("one group should error")
	}
	if _, err := OneWayANOVA([]float64{1, 2}, nil); err == nil {
		t.Error("empty group should error")
	}
	if _, err := OneWayANOVA([]float64{1}, []float64{2}); err == nil {
		t.Error("N == k should error")
	}
}

func TestANOVADegreesOfFreedomMatchPaper(t *testing.T) {
	// 237 responses × 4 approaches → F(3, 944) as printed for Melbourne.
	mk := func(n int, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(1 + rng.Intn(5))
		}
		return xs
	}
	res, err := OneWayANOVA(mk(237, 1), mk(237, 2), mk(237, 3), mk(237, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.DFBetwe != 3 || res.DFWithin != 944 {
		t.Errorf("df = (%d, %d), want (3, 944)", res.DFBetwe, res.DFWithin)
	}
}

func TestANOVANullDistributionCalibration(t *testing.T) {
	// Under the null (all groups from the same distribution), p-values are
	// uniform: rejecting at 0.05 should happen about 5% of the time.
	rng := rand.New(rand.NewSource(123))
	trials := 400
	rejects := 0
	for i := 0; i < trials; i++ {
		groups := make([][]float64, 4)
		for gidx := range groups {
			xs := make([]float64, 60)
			for j := range xs {
				xs[j] = rng.NormFloat64()
			}
			groups[gidx] = xs
		}
		res, err := OneWayANOVA(groups...)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / float64(trials)
	if rate < 0.01 || rate > 0.11 {
		t.Errorf("null rejection rate = %f, want ≈0.05", rate)
	}
}

func TestANOVADetectsLargeEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(mean float64) []float64 {
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = mean + rng.NormFloat64()
		}
		return xs
	}
	res, err := OneWayANOVA(mk(0), mk(0), mk(0), mk(1.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("large effect p = %g, want tiny", res.P)
	}
}

func BenchmarkOneWayANOVA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	groups := make([][]float64, 4)
	for i := range groups {
		xs := make([]float64, 520)
		for j := range xs {
			xs[j] = float64(1 + rng.Intn(5))
		}
		groups[i] = xs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OneWayANOVA(groups...)
	}
}
